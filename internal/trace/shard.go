package trace

// ShardKey hashes a BlockID into a well-distributed 32-bit key for
// partitioning per-block analysis state across parallel shards
// (internal/engine). Block IDs are small sequential integers, so a plain
// modulo would put neighbouring allocations on neighbouring shards and make
// the distribution depend on allocation order; the finalizer scrambles the
// bits first.
func ShardKey(b BlockID) uint32 {
	// MurmurHash3 fmix32.
	x := uint32(b)
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// Shard maps a BlockID onto one of n shards. n must be positive.
func Shard(b BlockID, n int) int {
	return int(ShardKey(b) % uint32(n))
}
