package trace

// This file holds the warning model shared by every analysis tool. It lives
// in trace (rather than internal/report, which re-exports it) so that tool
// factories can be described generically: a ToolSpec's constructor receives a
// Reporter without the trace package having to know about the collector
// machinery built on top.

// Kind classifies a warning.
type Kind uint8

// Warning kinds.
const (
	// KindRace is a possible data race (lock-set violation or unordered
	// conflicting accesses, depending on the tool).
	KindRace Kind = iota
	// KindDeadlock is a lock-order cycle or an observed deadlock.
	KindDeadlock
	// KindUseAfterFree is an access to freed guest memory.
	KindUseAfterFree
	// KindInvalidFree is a free of an already-freed block.
	KindInvalidFree
	// KindHighLevel is a high-level data race (view inconsistency, [1] in
	// the paper): every access is locked, but the lock granularity admits
	// inconsistent intermediate states.
	KindHighLevel
)

func (k Kind) String() string {
	switch k {
	case KindRace:
		return "possible data race"
	case KindDeadlock:
		return "lock order violation"
	case KindUseAfterFree:
		return "invalid access to freed memory"
	case KindHighLevel:
		return "high-level data race"
	default:
		return "invalid free"
	}
}

// Category returns the short token used in suppression files
// ("Helgrind:Race" matches KindRace).
func (k Kind) Category() string {
	switch k {
	case KindRace:
		return "Race"
	case KindDeadlock:
		return "Deadlock"
	case KindUseAfterFree:
		return "UseAfterFree"
	case KindHighLevel:
		return "HighLevelRace"
	default:
		return "InvalidFree"
	}
}

// Warning is a single tool finding. Stack identifies the reporting site and,
// together with Kind and Tool, forms the deduplication signature.
type Warning struct {
	Tool   string
	Kind   Kind
	Thread ThreadID
	Addr   Addr
	Block  BlockID
	Off    uint32
	Size   uint32
	Access AccessKind
	Stack  StackID
	// PrevStack is the other side of the conflict when the tool knows it
	// (happens-before detectors do; pure lock-set does not).
	PrevStack StackID
	// State describes the shadow state at the time of the report, e.g.
	// "shared RO, no locks" — mirroring Helgrind's "Previous state" line.
	State string
	// Count is the number of dynamic occurrences folded into this site.
	Count int
	// Seq is the global event sequence number of the first occurrence, when
	// a sequencer is installed on the collector (SetSequencer). The analysis
	// engine uses it to restore the single-pass first-seen order when merging
	// per-tool (and per-shard) collectors; it is 0 otherwise.
	Seq uint64
}

// Reporter receives tool warnings. report.Collector is the canonical
// implementation; tools hold a Reporter rather than the concrete collector so
// that their constructors can be packaged as ToolSpec factories without an
// import cycle.
type Reporter interface {
	// Add records one warning occurrence and reports whether it opened a new
	// site (neither folded into an existing one nor suppressed).
	Add(w Warning) bool
}
