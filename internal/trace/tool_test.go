package trace

import (
	"strings"
	"testing"
)

func TestRoutingStrings(t *testing.T) {
	want := map[Routing]string{
		RouteBlock:     "block-routed",
		RouteBroadcast: "broadcast",
		RouteSingle:    "single-shard",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Routing(%d) = %q, want %q", r, r.String(), s)
		}
	}
}

// finishingSink counts Finish calls; panicky variants panic there.
type finishingSink struct {
	BaseSink
	finished int
	explode  bool
}

func (f *finishingSink) ToolName() string { return "finishing" }

func (f *finishingSink) Finish() {
	f.finished++
	if f.explode {
		panic("finish bug")
	}
}

func TestSafeSinkFinishForwards(t *testing.T) {
	inner := &finishingSink{}
	s := NewSafeSink(inner)
	s.Finish()
	if inner.finished != 1 {
		t.Errorf("Finish forwarded %d times, want 1", inner.finished)
	}
	// A sink without Finish is a no-op, not a panic.
	NewSafeSink(BaseSink{}).Finish()
	NewSafeSink(nil).Finish()
}

func TestSafeSinkFinishPanicIsolated(t *testing.T) {
	s := NewSafeSink(&finishingSink{explode: true})
	s.Finish()
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "Finish") {
		t.Errorf("Finish panic not captured: %v", err)
	}
	// The sink is disabled after the panic: further events are dropped.
	s.Access(&Access{})
	s.Finish()
}

func TestKindCategoryRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindRace, KindDeadlock, KindUseAfterFree, KindInvalidFree, KindHighLevel} {
		if k.Category() == "" || k.String() == "" {
			t.Errorf("Kind %d missing string forms", k)
		}
	}
}
