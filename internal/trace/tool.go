package trace

// Routing classifies how the sharded analysis engine (internal/engine) must
// route events to a tool. The class is the tool's soundness contract with the
// engine: it states which slice of the event stream the tool needs in order
// to produce exactly the warnings a sequential single-pass run would produce.
type Routing uint8

// Routing classes.
const (
	// RouteBlock tools keep their mutable warning-producing state per heap
	// block and warn only from block-carrying events (accesses, allocations,
	// frees, client requests). The engine runs one independent instance per
	// shard: block events are partitioned by block hash, while
	// synchronisation, segment and thread events are broadcast so every
	// instance evolves the same thread/lock/segment picture. The race
	// detectors (lockset, DJIT, hybrid) and memcheck are block-routed.
	RouteBlock Routing = iota
	// RouteBroadcast tools warn from broadcast events only and need none of
	// the block-carrying stream (the lock-order deadlock detector: its input
	// is the global acquire/contended/release order, which every shard sees
	// anyway). The engine runs exactly one instance, pinned to one shard,
	// fed only the broadcast substream.
	RouteBroadcast
	// RouteSingle tools need the full, totally-ordered stream in one place —
	// their state spans blocks in ways no partition preserves (the
	// view-consistency checker correlates accesses to different blocks made
	// under one critical section). The engine runs exactly one instance,
	// pinned to one shard, and additionally forwards every block-carrying
	// event to that shard for it.
	RouteSingle
)

func (r Routing) String() string {
	switch r {
	case RouteBlock:
		return "block-routed"
	case RouteBroadcast:
		return "broadcast"
	default:
		return "single-shard"
	}
}

// ToolFactory builds one tool instance writing its warnings to col. The
// engine calls it once per shard for block-routed tools and exactly once for
// pinned (broadcast/single-shard) tools; every call must return a fresh
// instance sharing no mutable state with its siblings.
type ToolFactory func(col Reporter) Sink

// ToolSpec registers one analysis tool with the engine. Every detector
// package exports a Spec constructor returning its canonical entry:
// lockset.Spec, vectorclock.Spec, hybrid.Spec, deadlock.Spec, memcheck.Spec,
// highlevel.Spec. Any number of specs — several race detector configurations
// side by side, plus all auxiliary checkers — can run concurrently over a
// single decode of the stream.
type ToolSpec struct {
	// Name identifies the tool within a run; the engine rejects duplicate
	// names. It should equal the report name the tool stamps into warnings
	// (Warning.Tool), since that name keys warning deduplication.
	Name string
	// Routing is the tool's routing class (see Routing).
	Routing Routing
	// Factory builds the tool's instances. Required.
	Factory ToolFactory
}

// Finisher is implemented by tools that run an end-of-stream analysis pass
// (the view-consistency checker accumulates views during the run and compares
// them at the end). The engine invokes Finish after the last event and before
// merging reports; warnings added from Finish are sequenced after every
// stream event, so the merged order stays deterministic.
type Finisher interface {
	Finish()
}

// ToolSummary is a tool's end-of-run counter rollup, keyed by counter name
// (e.g. "errors", "leaked-blocks", "leaked-bytes"). Summaries exist so that
// dynamic counters survive sharding: warning sites merge through the report
// collectors, but plain counters would otherwise be stranded on whichever
// shard instance observed them.
type ToolSummary map[string]int64

// Merge adds every counter of other into s.
func (s ToolSummary) Merge(other ToolSummary) {
	for k, v := range other {
		s[k] += v
	}
}

// Snapshotter is the point-in-time checkpoint capability of the engine's
// snapshot lifecycle: a reporter (report.Collector is the canonical
// implementation) that can produce a deep, independent copy of everything it
// has accumulated so far. The engine quiesces its shard workers to a safe
// point — every dispatched event fully delivered, no delivery in flight —
// snapshots every instance collector through this interface, and resumes; the
// copies are then merged into an incremental mid-stream report while the
// originals keep accumulating, so taking a snapshot can never perturb the
// final end-of-stream report.
type Snapshotter interface {
	// SnapshotReport returns an independent deep copy of the accumulated
	// report state. The copy shares no mutable state with the original:
	// subsequent warnings added to the original must not be visible through
	// the copy, and vice versa.
	SnapshotReport() Reporter
}

// Summarizer is implemented by tools whose dynamic counters remain meaningful
// when summed across shard instances. For a block-routed tool that is exactly
// the per-block counters: each instance observes a disjoint block partition,
// so the per-instance sums equal the sequential totals. The engine collects
// SummaryCounts from every instance after the stream ends and adds them up
// per tool name, shard-count-independently.
type Summarizer interface {
	SummaryCounts() ToolSummary
}
