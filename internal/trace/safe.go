package trace

import "fmt"

// SafeSink wraps a Sink and guarantees that a panic inside any callback
// cannot propagate into the event source (the VM scheduler or a replay
// loop). The first panic disables the wrapped sink — subsequent events are
// dropped — and is reported through Err, so one buggy tool degrades to a
// no-op instead of killing the whole analysis run.
//
// SafeSink is not safe for concurrent use; like any Sink it expects the
// sequential event delivery the VM and the replay paths provide (the
// parallel engine gives every shard its own SafeSink).
type SafeSink struct {
	inner    Sink
	err      error
	disabled bool

	// OnPanic, when set, is called once — at the moment the first panic is
	// absorbed and the sink disabled. The engine points it at its
	// tool-panics counter so absorbed panics are observable instead of
	// silent until Close. It must not itself panic.
	OnPanic func()
}

// NewSafeSink wraps s. A nil s yields a permanently inert sink.
func NewSafeSink(s Sink) *SafeSink {
	ss := &SafeSink{inner: s}
	if s == nil {
		ss.disabled = true
	}
	return ss
}

// Err returns the error describing the first panic, or nil.
func (s *SafeSink) Err() error { return s.err }

// Unwrap returns the wrapped sink.
func (s *SafeSink) Unwrap() Sink { return s.inner }

// safely runs call, converting a panic into a sticky error.
func (s *SafeSink) safely(callback string, call func()) {
	if s.disabled {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			s.disabled = true
			s.err = fmt.Errorf("trace: sink %q panicked in %s: %v", s.inner.ToolName(), callback, r)
			if s.OnPanic != nil {
				s.OnPanic()
			}
		}
	}()
	call()
}

// ToolName implements Sink.
func (s *SafeSink) ToolName() string {
	if s.inner == nil {
		return "safe(nil)"
	}
	return s.inner.ToolName()
}

// Access implements Sink.
func (s *SafeSink) Access(a *Access) { s.safely("Access", func() { s.inner.Access(a) }) }

// Acquire implements Sink.
func (s *SafeSink) Acquire(t ThreadID, l LockID, k LockKind, st StackID) {
	s.safely("Acquire", func() { s.inner.Acquire(t, l, k, st) })
}

// Contended implements Sink.
func (s *SafeSink) Contended(t ThreadID, l LockID, st StackID) {
	s.safely("Contended", func() { s.inner.Contended(t, l, st) })
}

// Release implements Sink.
func (s *SafeSink) Release(t ThreadID, l LockID, k LockKind, st StackID) {
	s.safely("Release", func() { s.inner.Release(t, l, k, st) })
}

// Alloc implements Sink.
func (s *SafeSink) Alloc(b *Block) { s.safely("Alloc", func() { s.inner.Alloc(b) }) }

// Free implements Sink.
func (s *SafeSink) Free(b *Block, t ThreadID, st StackID) {
	s.safely("Free", func() { s.inner.Free(b, t, st) })
}

// Segment implements Sink.
func (s *SafeSink) Segment(ss *SegmentStart) { s.safely("Segment", func() { s.inner.Segment(ss) }) }

// Sync implements Sink.
func (s *SafeSink) Sync(ev *SyncEvent) { s.safely("Sync", func() { s.inner.Sync(ev) }) }

// Request implements Sink.
func (s *SafeSink) Request(r *Request) { s.safely("Request", func() { s.inner.Request(r) }) }

// ThreadStart implements Sink.
func (s *SafeSink) ThreadStart(t, parent ThreadID) {
	s.safely("ThreadStart", func() { s.inner.ThreadStart(t, parent) })
}

// ThreadExit implements Sink.
func (s *SafeSink) ThreadExit(t ThreadID) { s.safely("ThreadExit", func() { s.inner.ThreadExit(t) }) }

// Finish forwards the end-of-stream pass to the wrapped sink when it
// implements Finisher, with the same panic isolation as the event callbacks.
// It is a no-op otherwise, so callers can invoke it unconditionally.
func (s *SafeSink) Finish() {
	if f, ok := s.inner.(Finisher); ok {
		s.safely("Finish", func() { f.Finish() })
	}
}

var _ Sink = (*SafeSink)(nil)

// Fanout returns a Sink that forwards every event to each of the given
// sinks in order, so several tools can share one event stream slot (e.g.
// one engine shard running lockset and DJIT side by side).
func Fanout(sinks ...Sink) Sink { return fanout(sinks) }

type fanout []Sink

// ToolName implements Sink.
func (f fanout) ToolName() string { return "fanout" }

// Access implements Sink.
func (f fanout) Access(a *Access) {
	for _, s := range f {
		s.Access(a)
	}
}

// Acquire implements Sink.
func (f fanout) Acquire(t ThreadID, l LockID, k LockKind, st StackID) {
	for _, s := range f {
		s.Acquire(t, l, k, st)
	}
}

// Contended implements Sink.
func (f fanout) Contended(t ThreadID, l LockID, st StackID) {
	for _, s := range f {
		s.Contended(t, l, st)
	}
}

// Release implements Sink.
func (f fanout) Release(t ThreadID, l LockID, k LockKind, st StackID) {
	for _, s := range f {
		s.Release(t, l, k, st)
	}
}

// Alloc implements Sink.
func (f fanout) Alloc(b *Block) {
	for _, s := range f {
		s.Alloc(b)
	}
}

// Free implements Sink.
func (f fanout) Free(b *Block, t ThreadID, st StackID) {
	for _, s := range f {
		s.Free(b, t, st)
	}
}

// Segment implements Sink.
func (f fanout) Segment(ss *SegmentStart) {
	for _, s := range f {
		s.Segment(ss)
	}
}

// Sync implements Sink.
func (f fanout) Sync(ev *SyncEvent) {
	for _, s := range f {
		s.Sync(ev)
	}
}

// Request implements Sink.
func (f fanout) Request(r *Request) {
	for _, s := range f {
		s.Request(r)
	}
}

// ThreadStart implements Sink.
func (f fanout) ThreadStart(t, parent ThreadID) {
	for _, s := range f {
		s.ThreadStart(t, parent)
	}
}

// ThreadExit implements Sink.
func (f fanout) ThreadExit(t ThreadID) {
	for _, s := range f {
		s.ThreadExit(t)
	}
}

var _ Sink = fanout(nil)
