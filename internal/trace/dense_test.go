package trace

import (
	"testing"
)

func TestDenseAssignsContiguously(t *testing.T) {
	var d Dense
	ids := []int32{7, 3, 7, 100, 3, 1}
	want := []int{0, 1, 0, 2, 1, 3}
	for i, id := range ids {
		if got := d.Index(id); got != want[i] {
			t.Errorf("Index(%d) = %d, want %d", id, got, want[i])
		}
	}
	if d.Cap() != 4 || d.Live() != 4 {
		t.Errorf("Cap=%d Live=%d, want 4/4", d.Cap(), d.Live())
	}
}

func TestDenseLookupMissesUnmapped(t *testing.T) {
	var d Dense
	if got := d.Lookup(5); got != -1 {
		t.Errorf("Lookup(5) on empty = %d, want -1", got)
	}
	d.Index(5)
	if got := d.Lookup(5); got != 0 {
		t.Errorf("Lookup(5) = %d, want 0", got)
	}
	if got := d.Lookup(6); got != -1 {
		t.Errorf("Lookup(6) = %d, want -1", got)
	}
}

func TestDenseEvictRecycles(t *testing.T) {
	var d Dense
	a := d.Index(10)
	b := d.Index(20)
	if got := d.Evict(10); got != a {
		t.Errorf("Evict(10) = %d, want %d", got, a)
	}
	if got := d.Lookup(10); got != -1 {
		t.Errorf("Lookup(10) after evict = %d, want -1", got)
	}
	// The freed index is recycled before a new one is minted.
	if got := d.Index(30); got != a {
		t.Errorf("Index(30) = %d, want recycled %d", got, a)
	}
	if got := d.Index(40); got != 2 {
		t.Errorf("Index(40) = %d, want 2", got)
	}
	if got := d.Evict(99); got != -1 {
		t.Errorf("Evict(99) unmapped = %d, want -1", got)
	}
	_ = b
	if d.Cap() != 3 || d.Live() != 3 {
		t.Errorf("Cap=%d Live=%d, want 3/3", d.Cap(), d.Live())
	}
}

func TestDenseHostileIDs(t *testing.T) {
	var d Dense
	// Negative and beyond-window IDs take the map fallback; the direct window
	// must not be grown to cover them.
	hostile := []int32{-1, -2147483648, denseDirectLimit, 2147483647}
	seen := make(map[int]bool)
	for _, id := range hostile {
		idx := d.Index(id)
		if seen[idx] {
			t.Errorf("Index(%d) = %d already assigned", id, idx)
		}
		seen[idx] = true
		if got := d.Lookup(id); got != idx {
			t.Errorf("Lookup(%d) = %d, want %d", id, got, idx)
		}
	}
	if len(d.fwd) >= denseDirectLimit {
		t.Errorf("direct window grew to %d for hostile IDs", len(d.fwd))
	}
	for _, id := range hostile {
		if d.Evict(id) == -1 {
			t.Errorf("Evict(%d) = -1, want mapped", id)
		}
	}
	if d.Live() != 0 {
		t.Errorf("Live = %d after evicting all, want 0", d.Live())
	}
}

func TestDenseSteadyStateNoAllocs(t *testing.T) {
	var d Dense
	for i := int32(0); i < 64; i++ {
		d.Index(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := int32(0); i < 64; i++ {
			if d.Index(i) != int(i) {
				t.Fatal("remap changed")
			}
		}
		d.Evict(63)
		d.Index(63)
	})
	// Evict appends to the free list, which reaches steady capacity.
	if allocs != 0 {
		t.Errorf("steady-state Index/Evict allocated %.1f per run, want 0", allocs)
	}
}

func TestSlabRecyclesZeroed(t *testing.T) {
	var s Slab[int]
	c := s.Get(5)
	if len(c) != 5 {
		t.Fatalf("Get(5) len = %d", len(c))
	}
	for i := range c {
		c[i] = i + 1
	}
	base := &c[0]
	s.Put(c)
	r := s.Get(3) // smaller request still fits the recycled class-3 array? no: class(3)=2, class(5)=3
	_ = r
	c2 := s.Get(5)
	if &c2[0] != base {
		t.Errorf("Get(5) did not recycle the Put array")
	}
	for i, v := range c2 {
		if v != 0 {
			t.Errorf("recycled cell %d = %d, want 0", i, v)
		}
	}
	if got := s.Get(0); got != nil {
		t.Errorf("Get(0) = %v, want nil", got)
	}
	s.Put(nil) // must not panic
}

func TestSlabCapacityClasses(t *testing.T) {
	var s Slab[byte]
	c := s.Get(100) // class 7, cap 128
	if cap(c) != 128 || len(c) != 100 {
		t.Fatalf("Get(100): len=%d cap=%d", len(c), cap(c))
	}
	s.Put(c)
	// Any request up to the full class capacity reuses it.
	c2 := s.Get(128)
	if cap(c2) != 128 {
		t.Errorf("Get(128) after Put(cap 128): cap=%d, want recycled 128", cap(c2))
	}
}
