// Package trace defines the event model shared between the virtual machine
// (internal/vm) and the analysis tools (internal/lockset, internal/vectorclock,
// internal/deadlock, ...).
//
// The VM plays the role of the Valgrind core from the paper: it executes the
// guest program and emits a totally-ordered stream of events — memory
// accesses, synchronisation operations, allocations, thread-segment starts
// and client requests. Tools play the role of Valgrind "skins" (Helgrind,
// Memcheck): they observe the stream through the Sink interface and produce
// warnings. Because the VM runs at most one guest thread at a time, events
// are delivered strictly sequentially and tools need no locking of their own.
package trace

// ThreadID identifies a guest thread. The main thread is always 1.
type ThreadID int32

// SegmentID identifies a thread segment (Fig. 2 of the paper). Segments are
// maximal runs of a thread's execution not interrupted by a synchronisation
// point that creates a happens-before edge (thread create/join always; queue,
// condition-variable and semaphore operations additionally, so that tools can
// opt in to the paper's "higher level synchronisation" extension).
type SegmentID int32

// LockID identifies a guest mutex or read-write lock. ID 0 is reserved for
// the detector-internal pseudo bus lock that models the x86 LOCK prefix; the
// VM numbers real locks from 1.
type LockID int32

// BusLock is the reserved LockID for the hardware bus lock pseudo-lock.
const BusLock LockID = 0

// SyncID identifies a guest condition variable, semaphore or message queue.
type SyncID int32

// StackID is an index into the VM's interned call-stack table.
type StackID int32

// NoStack is the StackID used when no guest frames are recorded.
const NoStack StackID = 0

// BlockID identifies a guest heap allocation.
type BlockID int32

// Addr is a simulated guest address.
type Addr uint64

// AccessKind distinguishes reads from writes.
type AccessKind uint8

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Access describes one guest memory access.
type Access struct {
	Thread ThreadID
	Seg    SegmentID
	Block  BlockID
	Addr   Addr   // absolute guest address
	Off    uint32 // offset within the block
	Size   uint32 // access width in bytes
	Kind   AccessKind
	Atomic bool // true when the access is part of a bus-locked (LOCK-prefixed) instruction
	Stack  StackID
}

// LockKind distinguishes the mode in which a lock is held.
type LockKind uint8

// Lock modes. A plain mutex is always held in Mutex mode; a read-write lock
// is held in RLock or WLock mode.
const (
	Mutex LockKind = iota
	RLock
	WLock
)

func (k LockKind) String() string {
	switch k {
	case Mutex:
		return "mutex"
	case RLock:
		return "rdlock"
	default:
		return "wrlock"
	}
}

// EdgeKind labels a happens-before edge between two thread segments.
type EdgeKind uint8

// Edge kinds. Program is the sequential edge from a thread's previous
// segment; Create/Join arise from thread lifecycle; Queue/Cond/Sem arise from
// higher-level synchronisation and are only honoured by tools that enable the
// corresponding extension.
const (
	Program EdgeKind = 1 << iota
	Create
	Join
	Queue
	Cond
	Sem
)

// EdgeMask selects which edge kinds a tool honours when evaluating
// happens-before between segments.
type EdgeMask uint8

// Predefined edge masks.
const (
	// MaskHelgrind is what the paper's (Visual Threads-enhanced) Helgrind
	// understands: program order plus thread create/join.
	MaskHelgrind EdgeMask = EdgeMask(Program | Create | Join)
	// MaskFull additionally honours message-queue, condition-variable and
	// semaphore edges — the paper's future-work extension (§4.4, Fig. 11).
	MaskFull EdgeMask = EdgeMask(Program | Create | Join | Queue | Cond | Sem)
)

// Has reports whether the mask includes the given edge kind.
func (m EdgeMask) Has(k EdgeKind) bool { return EdgeMask(k)&m != 0 }

// SegmentEdge is one incoming happens-before edge of a new segment.
type SegmentEdge struct {
	From SegmentID
	Kind EdgeKind
}

// SegmentStart announces a new thread segment together with all of its
// incoming edges. All edges into a segment are known at the moment the
// segment begins, so tools can compute the segment's vector clock eagerly.
type SegmentStart struct {
	Seg    SegmentID
	Thread ThreadID
	In     []SegmentEdge
}

// SyncOp identifies the raw synchronisation operation behind a segment split.
type SyncOp uint8

// Raw synchronisation operations.
const (
	QueuePut SyncOp = iota
	QueueGet
	CondSignal
	CondBroadcast
	CondWaitDone // wait has returned (after reacquiring the mutex)
	SemPost
	SemWaitDone
)

func (op SyncOp) String() string {
	switch op {
	case QueuePut:
		return "queue-put"
	case QueueGet:
		return "queue-get"
	case CondSignal:
		return "cond-signal"
	case CondBroadcast:
		return "cond-broadcast"
	case CondWaitDone:
		return "cond-wait"
	case SemPost:
		return "sem-post"
	default:
		return "sem-wait"
	}
}

// SyncEvent is a raw higher-level synchronisation event. Msg pairs a QueueGet
// with the QueuePut that produced the message, enabling precise per-message
// happens-before in vector-clock tools.
type SyncEvent struct {
	Op     SyncOp
	Obj    SyncID
	Thread ThreadID
	Msg    int64 // message sequence number for QueuePut/QueueGet; 0 otherwise
	Stack  StackID
}

// Block describes a guest heap allocation.
type Block struct {
	ID     BlockID
	Base   Addr
	Size   uint32
	Tag    string // origin tag, e.g. "obj:InviteRequest" or "string-rep"
	Thread ThreadID
	Stack  StackID
	Freed  bool
}

// Contains reports whether the address range [a, a+size) lies in the block.
func (b *Block) Contains(a Addr, size uint32) bool {
	return a >= b.Base && a+Addr(size) <= b.Base+Addr(b.Size)
}

// RequestKind identifies a client request — the user-space calls that are
// no-ops under normal execution but are interpreted by the analysis tools
// (the paper's VALGRIND_HG_DESTRUCT mechanism, Fig. 4).
type RequestKind uint8

// Client request kinds.
const (
	// ReqDestruct marks an object's memory as exclusively owned by the
	// requesting thread just before its destructor chain runs.
	ReqDestruct RequestKind = iota
	// ReqBenign marks a range as intentionally racy; tools suppress
	// warnings for it.
	ReqBenign
	// ReqCleanMemory tells tools to reset shadow state for a range, as a
	// real allocator would via malloc/free. The pooled allocator does NOT
	// issue this on reuse, which is exactly the §4 allocator false-positive
	// family.
	ReqCleanMemory
)

func (k RequestKind) String() string {
	switch k {
	case ReqDestruct:
		return "HG_DESTRUCT"
	case ReqBenign:
		return "HG_BENIGN"
	default:
		return "HG_CLEAN_MEMORY"
	}
}

// Request is a client request event.
type Request struct {
	Kind   RequestKind
	Thread ThreadID
	Block  BlockID
	Off    uint32
	Size   uint32
	Stack  StackID
}

// Sink receives the VM event stream. Implementations must not retain the
// pointers they are handed beyond the call (the VM reuses event structs).
type Sink interface {
	// ToolName returns a short identifier used in reports.
	ToolName() string
	// Access is called for every guest memory access.
	Access(a *Access)
	// Acquire is called after a lock is acquired in the given mode.
	Acquire(t ThreadID, l LockID, k LockKind, s StackID)
	// Contended is called when a thread is about to BLOCK waiting for a
	// lock. Lock-order tools need the attempt, not just the grant: in an
	// actual deadlock the grant never happens.
	Contended(t ThreadID, l LockID, s StackID)
	// Release is called before a lock is released.
	Release(t ThreadID, l LockID, k LockKind, s StackID)
	// Alloc is called after a heap block is allocated.
	Alloc(b *Block)
	// Free is called before a heap block is freed.
	Free(b *Block, t ThreadID, s StackID)
	// Segment is called when a new thread segment starts.
	Segment(ss *SegmentStart)
	// Sync is called for raw higher-level synchronisation operations.
	Sync(ev *SyncEvent)
	// Request is called for client requests.
	Request(r *Request)
	// ThreadStart is called when a guest thread starts (parent 0 for main).
	ThreadStart(t, parent ThreadID)
	// ThreadExit is called when a guest thread finishes.
	ThreadExit(t ThreadID)
}

// BaseSink is a no-op Sink intended for embedding, so tools implement only
// the callbacks they need.
type BaseSink struct{}

// ToolName implements Sink.
func (BaseSink) ToolName() string { return "base" }

// Access implements Sink.
func (BaseSink) Access(*Access) {}

// Acquire implements Sink.
func (BaseSink) Acquire(ThreadID, LockID, LockKind, StackID) {}

// Contended implements Sink.
func (BaseSink) Contended(ThreadID, LockID, StackID) {}

// Release implements Sink.
func (BaseSink) Release(ThreadID, LockID, LockKind, StackID) {}

// Alloc implements Sink.
func (BaseSink) Alloc(*Block) {}

// Free implements Sink.
func (BaseSink) Free(*Block, ThreadID, StackID) {}

// Segment implements Sink.
func (BaseSink) Segment(*SegmentStart) {}

// Sync implements Sink.
func (BaseSink) Sync(*SyncEvent) {}

// Request implements Sink.
func (BaseSink) Request(*Request) {}

// ThreadStart implements Sink.
func (BaseSink) ThreadStart(t, parent ThreadID) {}

// ThreadExit implements Sink.
func (BaseSink) ThreadExit(ThreadID) {}

var _ Sink = BaseSink{}

// Frame is one guest call-stack frame. Guest code records frames explicitly
// (the VM has no real program counter); File/Line identify the simulated
// source location, mirroring the debug info Helgrind prints.
type Frame struct {
	Fn   string
	File string
	Line int
}

// Resolver resolves interned IDs back to human-readable data at reporting
// time. The VM implements it.
type Resolver interface {
	// Stack returns the frames for an interned stack, innermost first.
	Stack(id StackID) []Frame
	// BlockInfo returns the allocation descriptor for a block ID, or nil.
	BlockInfo(id BlockID) *Block
}
