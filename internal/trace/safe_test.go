package trace

import (
	"strings"
	"testing"
)

// bombSink counts events and panics on Access once armed.
type bombSink struct {
	BaseSink
	armed  bool
	events int
}

func (b *bombSink) ToolName() string { return "bomb" }

func (b *bombSink) Access(*Access) {
	if b.armed {
		panic("tool bug")
	}
	b.events++
}

func (b *bombSink) Alloc(*Block) { b.events++ }

func TestSafeSinkIsolatesPanic(t *testing.T) {
	bomb := &bombSink{}
	s := NewSafeSink(bomb)
	s.Alloc(&Block{ID: 1})
	s.Access(&Access{Block: 1})
	if s.Err() != nil {
		t.Fatalf("unexpected error before panic: %v", s.Err())
	}
	bomb.armed = true
	s.Access(&Access{Block: 1}) // must not propagate the panic
	err := s.Err()
	if err == nil {
		t.Fatal("panic not captured")
	}
	if !strings.Contains(err.Error(), "bomb") || !strings.Contains(err.Error(), "Access") {
		t.Errorf("error should name the tool and callback: %v", err)
	}
	// After the first panic the sink is disabled: no more deliveries, and
	// the first error sticks.
	bomb.armed = false
	before := bomb.events
	s.Access(&Access{Block: 1})
	s.Alloc(&Block{ID: 2})
	if bomb.events != before {
		t.Error("disabled sink still receives events")
	}
	if s.Err() != err {
		t.Error("first error must stick")
	}
}

func TestSafeSinkNilInner(t *testing.T) {
	s := NewSafeSink(nil)
	s.Access(&Access{}) // must not panic
	s.ThreadExit(1)
	if s.Err() != nil {
		t.Errorf("nil inner sink produced error: %v", s.Err())
	}
}

func TestFanoutDeliversToAllEvenWhenOneIsGuarded(t *testing.T) {
	healthy := &bombSink{}
	bomb := &bombSink{armed: true}
	// Panicking member wrapped, healthy member after it: the panic must not
	// prevent delivery to the rest.
	guarded := NewSafeSink(bomb)
	f := Fanout(guarded, healthy)
	f.Access(&Access{Block: 1})
	f.Access(&Access{Block: 1})
	if healthy.events != 2 {
		t.Errorf("healthy sink saw %d events, want 2", healthy.events)
	}
	if guarded.Err() == nil {
		t.Error("guarded sink should have captured the panic")
	}
}

func TestShardKeyDistributesSequentialIDs(t *testing.T) {
	const n = 8
	const ids = 4096
	var counts [n]int
	for b := BlockID(1); b <= ids; b++ {
		s := Shard(b, n)
		if s < 0 || s >= n {
			t.Fatalf("Shard(%d, %d) = %d out of range", b, n, s)
		}
		counts[s]++
	}
	// Sequential IDs must spread to every shard, reasonably evenly.
	for s, c := range counts {
		if c < ids/n/2 || c > ids/n*2 {
			t.Errorf("shard %d holds %d of %d ids; distribution too skewed", s, c, ids)
		}
	}
	if ShardKey(42) != ShardKey(42) {
		t.Error("ShardKey must be deterministic")
	}
}
