package trace

// Dense remaps sparse int32 identifiers (ThreadID, LockID, SyncID,
// SegmentID, BlockID — all int32 underneath) onto small contiguous indices,
// so detector state can live in flat slices indexed by the dense value
// instead of maps keyed by the sparse one. The VM numbers most identifiers
// contiguously from 1, so in practice the remap is near-identity — but the
// detectors must not rely on that: a hostile or merged log may carry
// arbitrary IDs, and long-lived sessions recycle none of them.
//
// The fast path is a single bounds check plus an array load. IDs outside the
// directly-indexable window (negative, or beyond denseDirectLimit) fall back
// to a lazily-allocated map, so one absurd ID cannot balloon the table.
//
// Dense is not safe for concurrent use; each detector instance owns its own
// remappers, matching the engine's share-nothing instance model.
type Dense struct {
	fwd  []int32 // sparse id -> dense index + 1; 0 = unmapped
	big  map[int32]int32
	next int32   // next never-used dense index
	free []int32 // recycled dense indices (Evict), reused LIFO
}

// denseDirectLimit bounds the array-indexed window. IDs at or above it (or
// below zero) go through the map fallback. 1<<21 int32 slots is 8 MiB worst
// case — reached only if the stream actually names an ID that large.
const denseDirectLimit = 1 << 21

// Index returns the dense index for id, assigning the next free one on first
// sight. Assigned indices are contiguous from 0 and recycle evicted slots.
func (d *Dense) Index(id int32) int {
	if uint32(id) < uint32(len(d.fwd)) {
		if v := d.fwd[id]; v != 0 {
			return int(v - 1)
		}
		idx := d.assign()
		d.fwd[id] = idx + 1
		return int(idx)
	}
	return d.indexSlow(id)
}

func (d *Dense) indexSlow(id int32) int {
	if id >= 0 && id < denseDirectLimit {
		// Grow the direct window to cover id (amortised doubling).
		n := int(id) + 1
		if n < 2*len(d.fwd) {
			n = 2 * len(d.fwd)
		}
		if n > denseDirectLimit {
			n = denseDirectLimit
		}
		grown := make([]int32, n)
		copy(grown, d.fwd)
		d.fwd = grown
		idx := d.assign()
		d.fwd[id] = idx + 1
		return int(idx)
	}
	if v, ok := d.big[id]; ok {
		return int(v)
	}
	if d.big == nil {
		d.big = make(map[int32]int32)
	}
	idx := d.assign()
	d.big[id] = idx
	return int(idx)
}

// Lookup returns the dense index for id, or -1 when id was never assigned
// (or has been evicted).
func (d *Dense) Lookup(id int32) int {
	if uint32(id) < uint32(len(d.fwd)) {
		return int(d.fwd[id]) - 1
	}
	if v, ok := d.big[id]; ok {
		return int(v)
	}
	return -1
}

// Evict unmaps id and recycles its dense index for a future Index call,
// returning the freed index (-1 when id was not mapped). The caller owns
// resetting whatever state the index addressed before the slot is reused.
func (d *Dense) Evict(id int32) int {
	if uint32(id) < uint32(len(d.fwd)) {
		v := d.fwd[id]
		if v == 0 {
			return -1
		}
		d.fwd[id] = 0
		d.free = append(d.free, v-1)
		return int(v - 1)
	}
	if v, ok := d.big[id]; ok {
		delete(d.big, id)
		d.free = append(d.free, v)
		return int(v)
	}
	return -1
}

func (d *Dense) assign() int32 {
	if n := len(d.free); n > 0 {
		idx := d.free[n-1]
		d.free = d.free[:n-1]
		return idx
	}
	idx := d.next
	d.next++
	return idx
}

// Cap returns one past the highest dense index ever assigned — the size a
// state slice indexed by this remapper must grow to.
func (d *Dense) Cap() int { return int(d.next) }

// Live returns the number of currently mapped IDs.
func (d *Dense) Live() int { return int(d.next) - len(d.free) }
