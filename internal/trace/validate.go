package trace

import "fmt"

// Validator is a Sink that checks well-formedness invariants of the event
// stream the VM promises to its tools:
//
//   - locks are released only by a holder, and in a mode they were taken in;
//   - accesses and sync operations mention only started, unfinished threads;
//   - a thread's segments are announced before events reference them;
//   - blocks are allocated before they are accessed and freed at most once
//     (double frees are delivered, flagged as DoubleFrees, not errors —
//     memcheck depends on seeing them);
//   - segment IDs strictly increase.
//
// Tests attach a Validator next to real tools; any violation is recorded and
// reported through Err.
type Validator struct {
	BaseSink
	errs        []string
	started     map[ThreadID]bool
	exited      map[ThreadID]bool
	held        map[ThreadID]map[LockID]LockKind
	blocks      map[BlockID]uint32 // size
	freed       map[BlockID]bool
	segOwner    map[SegmentID]ThreadID
	curSeg      map[ThreadID]SegmentID
	lastSeg     SegmentID
	DoubleFrees int
	Events      int64
}

// NewValidator creates an empty validator.
func NewValidator() *Validator {
	return &Validator{
		started:  map[ThreadID]bool{},
		exited:   map[ThreadID]bool{},
		held:     map[ThreadID]map[LockID]LockKind{},
		blocks:   map[BlockID]uint32{},
		freed:    map[BlockID]bool{},
		segOwner: map[SegmentID]ThreadID{},
		curSeg:   map[ThreadID]SegmentID{},
	}
}

// ToolName implements Sink.
func (v *Validator) ToolName() string { return "validator" }

// Err returns an error describing all recorded violations, or nil.
func (v *Validator) Err() error {
	if len(v.errs) == 0 {
		return nil
	}
	return fmt.Errorf("trace: %d violation(s), first: %s", len(v.errs), v.errs[0])
}

// Violations returns all recorded violation messages.
func (v *Validator) Violations() []string { return v.errs }

func (v *Validator) fail(format string, args ...any) {
	v.errs = append(v.errs, fmt.Sprintf(format, args...))
}

func (v *Validator) liveThread(t ThreadID, ctx string) {
	if !v.started[t] {
		v.fail("%s by unstarted thread %d", ctx, t)
	}
	if v.exited[t] {
		v.fail("%s by exited thread %d", ctx, t)
	}
}

// ThreadStart implements Sink.
func (v *Validator) ThreadStart(t, parent ThreadID) {
	v.Events++
	if v.started[t] {
		v.fail("thread %d started twice", t)
	}
	if parent != 0 {
		v.liveThread(parent, "thread create")
	}
	v.started[t] = true
}

// ThreadExit implements Sink.
func (v *Validator) ThreadExit(t ThreadID) {
	v.Events++
	v.liveThread(t, "thread exit")
	v.exited[t] = true
}

// Segment implements Sink.
func (v *Validator) Segment(ss *SegmentStart) {
	v.Events++
	if ss.Seg <= v.lastSeg {
		v.fail("segment %d not greater than previous %d", ss.Seg, v.lastSeg)
	}
	v.lastSeg = ss.Seg
	for _, e := range ss.In {
		if _, ok := v.segOwner[e.From]; !ok {
			v.fail("segment %d references unknown predecessor %d", ss.Seg, e.From)
		}
	}
	v.segOwner[ss.Seg] = ss.Thread
	v.curSeg[ss.Thread] = ss.Seg
}

// Acquire implements Sink.
func (v *Validator) Acquire(t ThreadID, l LockID, k LockKind, _ StackID) {
	v.Events++
	v.liveThread(t, "lock acquire")
	m := v.held[t]
	if m == nil {
		m = map[LockID]LockKind{}
		v.held[t] = m
	}
	if _, dup := m[l]; dup {
		v.fail("thread %d acquired lock %d twice", t, l)
	}
	m[l] = k
}

// Release implements Sink.
func (v *Validator) Release(t ThreadID, l LockID, k LockKind, _ StackID) {
	v.Events++
	v.liveThread(t, "lock release")
	m := v.held[t]
	got, ok := m[l]
	if !ok {
		v.fail("thread %d released lock %d it does not hold", t, l)
		return
	}
	if got != k {
		v.fail("thread %d released lock %d in mode %v, held in %v", t, l, k, got)
	}
	delete(m, l)
}

// Contended implements Sink.
func (v *Validator) Contended(t ThreadID, l LockID, _ StackID) {
	v.Events++
	v.liveThread(t, "lock contention")
	if _, dup := v.held[t][l]; dup {
		v.fail("thread %d contends on lock %d it already holds", t, l)
	}
}

// Alloc implements Sink.
func (v *Validator) Alloc(b *Block) {
	v.Events++
	if _, dup := v.blocks[b.ID]; dup {
		v.fail("block %d allocated twice", b.ID)
	}
	if b.Size == 0 {
		v.fail("block %d has zero size", b.ID)
	}
	v.blocks[b.ID] = b.Size
}

// Free implements Sink.
func (v *Validator) Free(b *Block, t ThreadID, _ StackID) {
	v.Events++
	v.liveThread(t, "free")
	if _, ok := v.blocks[b.ID]; !ok {
		v.fail("free of unknown block %d", b.ID)
		return
	}
	if v.freed[b.ID] {
		v.DoubleFrees++
		return
	}
	v.freed[b.ID] = true
}

// Access implements Sink.
func (v *Validator) Access(a *Access) {
	v.Events++
	v.liveThread(a.Thread, "access")
	size, ok := v.blocks[a.Block]
	if !ok {
		v.fail("access to unknown block %d", a.Block)
		return
	}
	if a.Off+a.Size > size {
		v.fail("access beyond block %d: off=%d size=%d blocksize=%d", a.Block, a.Off, a.Size, size)
	}
	if cur, ok := v.curSeg[a.Thread]; !ok || cur != a.Seg {
		v.fail("access by thread %d carries segment %d, current is %d", a.Thread, a.Seg, cur)
	}
}

// Sync implements Sink.
func (v *Validator) Sync(ev *SyncEvent) {
	v.Events++
	v.liveThread(ev.Thread, "sync op")
}

// Request implements Sink.
func (v *Validator) Request(r *Request) {
	v.Events++
	v.liveThread(r.Thread, "client request")
	if _, ok := v.blocks[r.Block]; !ok {
		v.fail("client request for unknown block %d", r.Block)
	}
}

var _ Sink = (*Validator)(nil)
