package trace

import "math/bits"

// Slab recycles per-block shadow-cell arrays for the block-routed detectors,
// the same free-on-evict discipline the decoder's block table applies to its
// descriptors: a freed block's cells go back on a free list instead of to
// the garbage collector, so steady-state alloc/free traffic reallocates
// nothing and detector shadow memory is bounded by the live set rather than
// the allocation history.
//
// Arrays are bucketed by capacity class (powers of two), handed out zeroed
// at the requested length. Slab is not safe for concurrent use; each
// detector instance owns its own.
type Slab[C any] struct {
	buckets [32][][]C
}

// Get returns a zeroed slice of length n, reusing a recycled array of
// sufficient capacity when one is free.
func (s *Slab[C]) Get(n int) []C {
	if n <= 0 {
		return nil
	}
	class := bits.Len(uint(n - 1)) // ceil(log2 n)
	if free := s.buckets[class]; len(free) > 0 {
		c := free[len(free)-1]
		free[len(free)-1] = nil
		s.buckets[class] = free[:len(free)-1]
		c = c[:n]
		clear(c)
		return c
	}
	return make([]C, n, 1<<class)
}

// Put recycles a cell array for a future Get. Nil or zero-capacity slices
// are ignored.
func (s *Slab[C]) Put(c []C) {
	if cap(c) == 0 {
		return
	}
	class := bits.Len(uint(cap(c))) - 1 // floor(log2 cap): Get(n) for any n <= 1<<class fits
	s.buckets[class] = append(s.buckets[class], c[:0])
}
