package trace

import (
	"strings"
	"testing"
)

func TestValidatorCleanStream(t *testing.T) {
	v := NewValidator()
	v.ThreadStart(1, 0)
	v.Segment(&SegmentStart{Seg: 1, Thread: 1})
	v.Alloc(&Block{ID: 1, Size: 16})
	v.Acquire(1, 5, Mutex, 0)
	v.Access(&Access{Thread: 1, Seg: 1, Block: 1, Off: 0, Size: 4})
	v.Release(1, 5, Mutex, 0)
	v.Free(&Block{ID: 1, Size: 16}, 1, 0)
	v.ThreadExit(1)
	if err := v.Err(); err != nil {
		t.Errorf("clean stream flagged: %v", err)
	}
	if v.Events != 8 {
		t.Errorf("events = %d, want 8", v.Events)
	}
}

func TestValidatorCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		feed func(v *Validator)
		want string
	}{
		{"unstarted thread", func(v *Validator) {
			v.Access(&Access{Thread: 3, Block: 1, Size: 4})
		}, "unstarted"},
		{"double start", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.ThreadStart(1, 0)
		}, "started twice"},
		{"release without hold", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Release(1, 9, Mutex, 0)
		}, "does not hold"},
		{"release wrong mode", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Acquire(1, 9, RLock, 0)
			v.Release(1, 9, WLock, 0)
		}, "mode"},
		{"double acquire", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Acquire(1, 9, Mutex, 0)
			v.Acquire(1, 9, Mutex, 0)
		}, "twice"},
		{"unknown block access", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Segment(&SegmentStart{Seg: 1, Thread: 1})
			v.Access(&Access{Thread: 1, Seg: 1, Block: 7, Size: 4})
		}, "unknown block"},
		{"out of range access", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Segment(&SegmentStart{Seg: 1, Thread: 1})
			v.Alloc(&Block{ID: 1, Size: 8})
			v.Access(&Access{Thread: 1, Seg: 1, Block: 1, Off: 8, Size: 4})
		}, "beyond block"},
		{"segment regression", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Segment(&SegmentStart{Seg: 5, Thread: 1})
			v.Segment(&SegmentStart{Seg: 4, Thread: 1})
		}, "not greater"},
		{"unknown predecessor", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Segment(&SegmentStart{Seg: 1, Thread: 1, In: []SegmentEdge{{From: 99, Kind: Join}}})
		}, "unknown predecessor"},
		{"stale segment on access", func(v *Validator) {
			v.ThreadStart(1, 0)
			v.Segment(&SegmentStart{Seg: 1, Thread: 1})
			v.Segment(&SegmentStart{Seg: 2, Thread: 1, In: []SegmentEdge{{From: 1, Kind: Program}}})
			v.Alloc(&Block{ID: 1, Size: 8})
			v.Access(&Access{Thread: 1, Seg: 1, Block: 1, Size: 4})
		}, "carries segment"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := NewValidator()
			c.feed(v)
			err := v.Err()
			if err == nil {
				t.Fatalf("violation not caught")
			}
			all := strings.Join(v.Violations(), "; ")
			if !strings.Contains(all, c.want) {
				t.Errorf("violations %q do not mention %q", all, c.want)
			}
		})
	}
}

func TestValidatorDoubleFreeCounted(t *testing.T) {
	v := NewValidator()
	v.ThreadStart(1, 0)
	v.Alloc(&Block{ID: 1, Size: 8})
	v.Free(&Block{ID: 1, Size: 8}, 1, 0)
	v.Free(&Block{ID: 1, Size: 8}, 1, 0)
	if err := v.Err(); err != nil {
		t.Errorf("double free must not be a stream violation (memcheck's business): %v", err)
	}
	if v.DoubleFrees != 1 {
		t.Errorf("DoubleFrees = %d, want 1", v.DoubleFrees)
	}
}
