package report

import (
	"testing"

	"repro/internal/trace"
)

func wireCollector() *Collector {
	var seq uint64
	c := NewCollector(frameResolver{3: framesMain}, nil)
	c.SetSequencer(func() uint64 { return seq })
	seq = 4
	c.Add(Warning{
		Tool: "helgrind", Kind: KindRace, Thread: 2, Addr: 0x1040, Block: 7,
		Off: 8, Size: 4, Access: trace.Write, Stack: 3, PrevStack: 5,
		State: "shared RO, no locks",
	})
	seq = 9
	c.Add(Warning{Tool: "memcheck", Kind: KindUseAfterFree, Stack: 11, Addr: 0x2000})
	c.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 3, Thread: 2, Addr: 0x1040, Block: 7,
		Off: 8, Size: 4, Access: trace.Write, PrevStack: 5, State: "shared RO, no locks"})
	return c
}

// TestWireRoundTrip: a decoded collector is merge- and manifest-equivalent to
// the original — the property the router's fleet fold depends on.
func TestWireRoundTrip(t *testing.T) {
	c := wireCollector()
	dec, err := DecodeWire(c.AppendWire(nil))
	if err != nil {
		t.Fatalf("DecodeWire: %v", err)
	}
	if got, want := dec.Manifest(), c.Manifest(); got != want {
		t.Errorf("decoded manifest differs:\n%s\nvs\n%s", got, want)
	}
	if dec.Locations() != c.Locations() || dec.Occurrences() != c.Occurrences() ||
		dec.SuppressedSites() != c.SuppressedSites() {
		t.Errorf("decoded totals %d/%d/%d, want %d/%d/%d",
			dec.Locations(), dec.Occurrences(), dec.SuppressedSites(),
			c.Locations(), c.Occurrences(), c.SuppressedSites())
	}
	if dec.Keys()[0] != c.Keys()[0] {
		t.Error("site keys did not survive the wire")
	}
	// Exemplar details survive too.
	w, orig := dec.Sites()[0], c.Sites()[0]
	if *w != *orig {
		t.Errorf("decoded exemplar %+v, want %+v", *w, *orig)
	}
	// Folding a decoded copy with a fresh original folds by key, not by
	// pointer identity or session-local IDs.
	m := Merge(nil, nil, dec, wireCollector())
	if m.Locations() != 2 {
		t.Errorf("decoded+original merged to %d sites, want 2", m.Locations())
	}
}

// TestWireEmptyCollector round-trips the zero case.
func TestWireEmptyCollector(t *testing.T) {
	dec, err := DecodeWire(NewCollector(nil, nil).AppendWire(nil))
	if err != nil {
		t.Fatalf("DecodeWire(empty): %v", err)
	}
	if dec.Locations() != 0 || dec.Occurrences() != 0 || dec.Manifest() != "" {
		t.Error("decoded empty collector not empty")
	}
}

// TestWireHostileInputs: the decoder must reject — never panic on or
// over-allocate for — truncations, bad versions, implausible counts,
// duplicate keys and trailing garbage.
func TestWireHostileInputs(t *testing.T) {
	good := wireCollector().AppendWire(nil)
	// Every proper prefix is a truncation and must error.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeWire(good[:i]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", i, len(good))
		}
	}
	// Trailing garbage.
	if _, err := DecodeWire(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Wrong version.
	bad := append([]byte(nil), good...)
	bad[0] = 0x7F
	if _, err := DecodeWire(bad); err == nil {
		t.Error("unknown version accepted")
	}
	// A claimed site count far beyond the payload.
	hostile := []byte{wireVersion}
	hostile = append(hostile, 0, 0)             // total, suppressed
	hostile = append(hostile, 0xFF, 0xFF, 0x7F) // ~2M sites, no bytes
	if _, err := DecodeWire(hostile); err == nil {
		t.Error("implausible site count accepted")
	}
	// Duplicate site key: encode one site twice by doubling the count and
	// splicing the site bytes. Simpler: two identical collectors' single
	// sites hand-assembled.
	c := NewCollector(nil, nil)
	c.Add(Warning{Tool: "t", Kind: KindRace, Stack: 1})
	one := c.AppendWire(nil)
	// one = [ver][total][suppressed][nsites=1][site...]; build a payload
	// claiming 2 sites with the same site bytes twice.
	site := one[4:]
	dup := []byte{wireVersion, 2, 0, 2}
	dup = append(dup, site...)
	dup = append(dup, site...)
	if _, err := DecodeWire(dup); err == nil {
		t.Error("duplicate site key accepted")
	}
}
