package report

import (
	"testing"

	"repro/internal/trace"
)

// frameResolver is a test resolver mapping stack IDs to fixed frame lists.
type frameResolver map[trace.StackID][]trace.Frame

func (r frameResolver) Stack(id trace.StackID) []trace.Frame { return r[id] }
func (r frameResolver) BlockInfo(trace.BlockID) *trace.Block { return nil }

var (
	framesMain = []trace.Frame{
		{Fn: "worker", File: "pool.cc", Line: 120},
		{Fn: "handle_request", File: "server.cc", Line: 88},
	}
	framesOther = []trace.Frame{
		{Fn: "worker", File: "pool.cc", Line: 121},
		{Fn: "handle_request", File: "server.cc", Line: 88},
	}
)

// TestLocKeyContentIdentity pins the digest semantics: equal frames give
// equal keys regardless of the session-local stack ID, different frames (even
// by one line) give different keys, and the unresolved fallback can never
// collide with a resolved digest.
func TestLocKeyContentIdentity(t *testing.T) {
	if LocKeyFor(10, framesMain) != LocKeyFor(99, framesMain) {
		t.Error("same frames, different stack IDs: keys differ")
	}
	if LocKeyFor(10, framesMain) == LocKeyFor(10, framesOther) {
		t.Error("different frames hash to the same key")
	}
	if LocKeyFor(10, nil) != LocKeyFor(10, nil) {
		t.Error("raw fallback not deterministic")
	}
	if LocKeyFor(10, nil) == LocKeyFor(11, nil) {
		t.Error("distinct raw stacks share a key")
	}
	// A hostile/degenerate resolved stack must not collide with the raw form
	// of any ID (domain separation).
	if LocKeyFor(10, []trace.Frame{{}}) == LocKeyFor(10, nil) {
		t.Error("resolved and raw forms collide")
	}
}

// TestCrossSessionFold is the heart of the refactor: the same bug observed by
// two sessions that interned its stack under different IDs folds into one
// site when merged, because both collectors derived the same content key.
func TestCrossSessionFold(t *testing.T) {
	// Session A interned the racing stack as 7, session B as 42.
	a := NewCollector(frameResolver{7: framesMain}, nil)
	b := NewCollector(frameResolver{42: framesMain, 43: framesOther}, nil)

	a.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 7, Thread: 1})
	b.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 42, Thread: 2})
	b.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 42, Thread: 2}) // dup in B
	b.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 43, Thread: 2}) // distinct site

	m := Merge(nil, nil, a, b)
	if m.Locations() != 2 {
		t.Fatalf("merged %d sites, want 2 (cross-session fold)", m.Locations())
	}
	if m.Occurrences() != 4 {
		t.Errorf("occurrences = %d, want 4", m.Occurrences())
	}
	var folded *Warning
	for i, k := range m.Keys() {
		if k.Loc == LocKeyFor(0, framesMain) {
			folded = m.Sites()[i]
		}
	}
	if folded == nil {
		t.Fatal("folded site's key is not the content digest of its frames")
	}
	if folded.Count != 3 {
		t.Errorf("folded site count = %d, want 3", folded.Count)
	}

	// Merge order must not change the result: commutativity of the fold.
	m2 := Merge(nil, nil, b, a)
	if m.Manifest() != m2.Manifest() {
		t.Errorf("merge not commutative:\n%s\nvs\n%s", m.Manifest(), m2.Manifest())
	}
}

// TestMergeAssociativity pins the property the router's progressive fold
// rests on: merging in any grouping — one shot, or incrementally as sessions
// finish on different backends — yields byte-identical manifests.
func TestMergeAssociativity(t *testing.T) {
	mk := func(id trace.StackID, thread trace.ThreadID) *Collector {
		c := NewCollector(frameResolver{id: framesMain, id + 1: framesOther}, nil)
		c.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: id, Thread: thread})
		c.Add(Warning{Tool: "djit", Kind: KindRace, Stack: id + 1, Thread: thread})
		return c
	}
	a, b, c := mk(5, 1), mk(50, 2), mk(500, 3)

	oneShot := Merge(nil, nil, a, b, c)
	leftFold := Merge(nil, nil, Merge(nil, nil, a, b), c)
	rightFold := Merge(nil, nil, a, Merge(nil, nil, b, c))
	reversed := Merge(nil, nil, c, b, a)

	want := oneShot.Manifest()
	for name, m := range map[string]*Collector{
		"left-fold": leftFold, "right-fold": rightFold, "reversed": reversed,
	} {
		if got := m.Manifest(); got != want {
			t.Errorf("%s manifest differs from one-shot:\n%s\nvs\n%s", name, got, want)
		}
		if m.Occurrences() != oneShot.Occurrences() {
			t.Errorf("%s occurrences = %d, want %d", name, m.Occurrences(), oneShot.Occurrences())
		}
	}
}

// TestLocKeyFrozenAtFirstUse pins the memoisation contract: a site keyed
// before its stack resolved keeps the raw-fallback key even if the resolver
// learns the stack later, so a snapshot manifest stays a prefix of the final.
func TestLocKeyFrozenAtFirstUse(t *testing.T) {
	res := frameResolver{}
	c := NewCollector(res, nil)
	c.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 9})
	res[9] = framesMain // metadata arrives late
	c.Add(Warning{Tool: "helgrind", Kind: KindRace, Stack: 9})
	if c.Locations() != 1 {
		t.Fatalf("late resolution split one site into %d", c.Locations())
	}
	if c.Keys()[0].Loc != LocKeyFor(9, nil) {
		t.Error("site key silently re-derived after late resolution")
	}
}
