package report

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

func testWarning(tool string, kind Kind, stack trace.StackID) Warning {
	return Warning{Tool: tool, Kind: kind, Stack: stack, Thread: 1, Addr: 0x1000}
}

// TestCloneIndependence pins the trace.Snapshotter contract: a clone is a
// frozen checkpoint — warnings added to the original afterwards (new sites
// and count bumps alike) are invisible to it, and vice versa.
func TestCloneIndependence(t *testing.T) {
	var seq uint64
	c := NewCollector(nil, nil)
	c.SetSequencer(func() uint64 { return seq })
	seq = 1
	c.Add(testWarning("helgrind", KindRace, 10))
	seq = 2
	c.Add(testWarning("memcheck", KindUseAfterFree, 20))

	snap := trace.Snapshotter(c).SnapshotReport().(*Collector)
	if snap.Locations() != 2 || snap.Occurrences() != 2 {
		t.Fatalf("clone = %d locations / %d occurrences, want 2/2", snap.Locations(), snap.Occurrences())
	}

	seq = 3
	c.Add(testWarning("helgrind", KindRace, 10)) // folds into the existing site
	c.Add(testWarning("helgrind", KindRace, 30)) // new site
	if c.Locations() != 3 || snap.Locations() != 2 {
		t.Errorf("after original grew: original %d sites, clone %d — want 3, 2", c.Locations(), snap.Locations())
	}
	if got := snap.Sites()[0].Count; got != 1 {
		t.Errorf("clone count mutated by original fold: %d, want 1", got)
	}
	snap.Add(testWarning("clone-only", KindRace, 40))
	if c.Locations() != 3 {
		t.Error("adding to the clone leaked into the original")
	}
}

// TestManifestFormat pins the manifest line shape the ingest "snapshots"
// query exchanges.
func TestManifestFormat(t *testing.T) {
	var seq uint64
	c := NewCollector(nil, nil)
	c.SetSequencer(func() uint64 { return seq })
	seq = 5
	c.Add(testWarning("helgrind", KindRace, 12))
	seq = 9
	c.Add(testWarning("helgrind", KindRace, 12))
	got := c.Manifest()
	want := fmt.Sprintf("seq=5 tool=helgrind kind=Race site=%s count=2\n", LocKeyFor(12, nil))
	if got != want {
		t.Errorf("Manifest = %q, want %q", got, want)
	}
	if (&Collector{}).Manifest() != "" {
		t.Error("empty collector manifest not empty")
	}
}

// TestPrefixConsistent exercises the snapshot-vs-final check on the accepting
// and on every rejecting axis.
func TestPrefixConsistent(t *testing.T) {
	final := strings.Join([]string{
		"seq=3 tool=helgrind kind=Race site=1 count=4",
		"seq=7 tool=memcheck kind=UseAfterFree site=2 count=1",
		"seq=9 tool=djit kind=Race site=3 count=2",
	}, "\n") + "\n"

	ok := []string{
		"", // empty snapshot: trivially consistent
		"seq=3 tool=helgrind kind=Race site=1 count=2\n",
		"seq=3 tool=helgrind kind=Race site=1 count=4\nseq=7 tool=memcheck kind=UseAfterFree site=2 count=1\n",
		final,
	}
	for i, snap := range ok {
		if err := PrefixConsistent(snap, final); err != nil {
			t.Errorf("consistent snapshot %d rejected: %v", i, err)
		}
	}

	bad := map[string]string{
		"site-mismatch":  "seq=3 tool=djit kind=Race site=1 count=1\n",
		"not-a-prefix":   "seq=7 tool=memcheck kind=UseAfterFree site=2 count=1\n",
		"count-exceeds":  "seq=3 tool=helgrind kind=Race site=1 count=5\n",
		"longer":         final + "seq=11 tool=djit kind=Race site=4 count=1\n",
		"malformed-line": "what even is this\n",
	}
	for name, snap := range bad {
		if err := PrefixConsistent(snap, final); err == nil {
			t.Errorf("%s: inconsistent snapshot accepted", name)
		}
	}
}
