package report

import (
	"testing"

	"repro/internal/trace"
)

func warn(tool string, stack trace.StackID) Warning {
	return Warning{Tool: tool, Kind: KindRace, Stack: stack, Access: trace.Write}
}

// TestMergeRestoresGlobalOrder: two collectors, each fed a (disjoint)
// substream of one sequenced event stream, merge back into the global
// first-seen order.
func TestMergeRestoresGlobalOrder(t *testing.T) {
	var seqA, seqB uint64
	a := NewCollector(nil, nil)
	a.SetSequencer(func() uint64 { return seqA })
	b := NewCollector(nil, nil)
	b.SetSequencer(func() uint64 { return seqB })

	// Global stream: stack 10 at seq 1 (shard B), stack 20 at seq 2
	// (shard A), stack 30 at seq 3 (shard B), stack 20 again at seq 4 on
	// shard B (cross-shard duplicate of the same site).
	seqB = 1
	b.Add(warn("t", 10))
	seqA = 2
	a.Add(warn("t", 20))
	seqB = 3
	b.Add(warn("t", 30))
	seqB = 4
	b.Add(warn("t", 20))

	m := Merge(nil, nil, a, b)
	sites := m.Sites()
	if len(sites) != 3 {
		t.Fatalf("merged %d sites, want 3", len(sites))
	}
	wantOrder := []trace.StackID{10, 20, 30}
	for i, w := range sites {
		if w.Stack != wantOrder[i] {
			t.Errorf("site %d has stack %d, want %d", i, w.Stack, wantOrder[i])
		}
	}
	// The duplicate site keeps the earliest details (Seq 2) and sums counts.
	if sites[1].Count != 2 || sites[1].Seq != 2 {
		t.Errorf("folded site: count=%d seq=%d, want count=2 seq=2", sites[1].Count, sites[1].Seq)
	}
	if m.Occurrences() != 4 || m.Locations() != 3 {
		t.Errorf("occurrences=%d locations=%d, want 4/3", m.Occurrences(), m.Locations())
	}
}

// TestMergeEarlierShardWinsDetails: when the later-merged collector saw the
// site first (lower Seq), its details replace the earlier-merged ones.
func TestMergeEarlierShardWinsDetails(t *testing.T) {
	var seqA, seqB uint64
	a := NewCollector(nil, nil)
	a.SetSequencer(func() uint64 { return seqA })
	b := NewCollector(nil, nil)
	b.SetSequencer(func() uint64 { return seqB })

	seqA = 9
	wa := warn("t", 10)
	wa.State = "late"
	a.Add(wa)
	seqB = 2
	wb := warn("t", 10)
	wb.State = "early"
	b.Add(wb)

	m := Merge(nil, nil, a, b)
	sites := m.Sites()
	if len(sites) != 1 {
		t.Fatalf("merged %d sites, want 1", len(sites))
	}
	if sites[0].State != "early" || sites[0].Seq != 2 || sites[0].Count != 2 {
		t.Errorf("got state=%q seq=%d count=%d; want early/2/2", sites[0].State, sites[0].Seq, sites[0].Count)
	}
}

// TestMergeWithoutSequencer still yields a deterministic (tool, kind,
// location digest) order, independent of merge input order.
func TestMergeWithoutSequencer(t *testing.T) {
	a := NewCollector(nil, nil)
	b := NewCollector(nil, nil)
	a.Add(warn("z", 5))
	a.Add(warn("a", 9))
	b.Add(warn("a", 2))

	m1 := Merge(nil, nil, a, b)
	m2 := Merge(nil, nil, b, a)
	if len(m1.Sites()) != 3 || len(m2.Sites()) != 3 {
		t.Fatalf("want 3 sites in both merges")
	}
	for i := range m1.Sites() {
		w1, w2 := m1.Sites()[i], m2.Sites()[i]
		if w1.Tool != w2.Tool || w1.Stack != w2.Stack {
			t.Errorf("site %d differs across merge orders: %v vs %v", i, w1, w2)
		}
	}
	// Tool is the leading comparator at equal Seq, so both "a" sites precede
	// the "z" site; their relative order is the location-digest order, which
	// is deterministic but not meaningful to pin here.
	if m1.Sites()[0].Tool != "a" || m1.Sites()[1].Tool != "a" || m1.Sites()[2].Tool != "z" {
		t.Errorf("expected tools [a a z], got [%s %s %s]",
			m1.Sites()[0].Tool, m1.Sites()[1].Tool, m1.Sites()[2].Tool)
	}
}

// TestMergeNilAndEmptyInputs.
func TestMergeNilAndEmptyInputs(t *testing.T) {
	a := NewCollector(nil, nil)
	a.Add(warn("t", 1))
	m := Merge(nil, nil, nil, a, NewCollector(nil, nil))
	if m.Locations() != 1 || m.Occurrences() != 1 {
		t.Errorf("locations=%d occurrences=%d, want 1/1", m.Locations(), m.Occurrences())
	}
}
