package report

import (
	"fmt"
	"strings"
)

// The site manifest is the machine-checkable face of a report: one line per
// warning site, in merged order, carrying exactly the deduplication identity
// (tool, kind, location digest), the first-seen sequence and the folded
// occurrence count. Incremental snapshot reports are verified against final
// reports through manifests — rendered text cannot be compared directly,
// because a site's occurrence count keeps growing after the snapshot.

// Manifest renders one line per site in the collector's order:
//
//	seq=<first-seen> tool=<name> kind=<category> site=<hex digest> count=<n>
//
// The site token is the content-derived location digest (LocKey), so
// manifest identities are stable across sessions and processes: the same bug
// observed by two backends renders the same site= token on both. An empty
// collector renders as the empty string. The manifest is the exchange format
// of the ingest server's "snapshots" query and the input to
// PrefixConsistent.
func (c *Collector) Manifest() string {
	var b strings.Builder
	for _, k := range c.order {
		w := c.sites[k]
		fmt.Fprintf(&b, "seq=%d tool=%s kind=%s site=%s count=%d\n",
			w.Seq, w.Tool, w.Kind.Category(), k.Loc, w.Count)
	}
	return b.String()
}

// PrefixConsistent checks that a mid-stream snapshot manifest is a
// prefix-consistent subset of the final manifest of the same analysis run:
// the snapshot's site lines must equal the first len(snapshot) lines of the
// final manifest on every field except count, and each snapshot count must
// not exceed the final count. This is exactly what engine determinism
// guarantees — sites are ordered by first-seen sequence, so analysing a
// prefix of the stream yields a prefix of the site list with
// not-yet-complete counts. It returns nil on success and a description of
// the first violation otherwise.
func PrefixConsistent(snapshot, final string) error {
	snapLines := manifestLines(snapshot)
	finalLines := manifestLines(final)
	if len(snapLines) > len(finalLines) {
		return fmt.Errorf("report: snapshot has %d site(s), final only %d", len(snapLines), len(finalLines))
	}
	for i, sl := range snapLines {
		sid, scount, err := splitManifestLine(sl)
		if err != nil {
			return fmt.Errorf("report: snapshot line %d: %w", i+1, err)
		}
		fid, fcount, err := splitManifestLine(finalLines[i])
		if err != nil {
			return fmt.Errorf("report: final line %d: %w", i+1, err)
		}
		if sid != fid {
			return fmt.Errorf("report: snapshot site %d is %q, final has %q — not a prefix", i+1, sid, fid)
		}
		if scount > fcount {
			return fmt.Errorf("report: snapshot site %d (%s) counts %d occurrence(s), final only %d", i+1, sid, scount, fcount)
		}
	}
	return nil
}

func manifestLines(m string) []string {
	var out []string
	for _, l := range strings.Split(m, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

// splitManifestLine separates a manifest line into its site identity (every
// field but the trailing count) and the count.
func splitManifestLine(l string) (id string, count int, err error) {
	idx := strings.LastIndex(l, " count=")
	if idx < 0 {
		return "", 0, fmt.Errorf("malformed manifest line %q", l)
	}
	if _, err := fmt.Sscanf(l[idx+1:], "count=%d", &count); err != nil {
		return "", 0, fmt.Errorf("malformed manifest count in %q", l)
	}
	return l[:idx], count, nil
}
