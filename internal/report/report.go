// Package report collects, deduplicates, formats and classifies the warnings
// produced by the analysis tools. It corresponds to the log-file output and
// "Analysis" step of the paper's debugging process (§3.2, Fig. 3).
//
// Helgrind's headline metric — the numbers in Fig. 5 and Fig. 6 — is the
// count of distinct *reported locations*: warnings are deduplicated by their
// call-stack signature, not counted per dynamic occurrence. The Collector
// implements exactly that.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Kind classifies a warning. The type and its values live in internal/trace
// (shared with the tool-registry machinery); these aliases keep report the
// canonical vocabulary for everything that formats or classifies warnings.
type Kind = trace.Kind

// Warning kinds.
const (
	KindRace         = trace.KindRace
	KindDeadlock     = trace.KindDeadlock
	KindUseAfterFree = trace.KindUseAfterFree
	KindInvalidFree  = trace.KindInvalidFree
	KindHighLevel    = trace.KindHighLevel
)

// Warning is a single tool finding; see trace.Warning for the field
// contract. The warning's stack — digested to a content-derived LocKey —
// identifies the reporting site and, together with Kind and Tool, forms the
// deduplication signature (see sitekey.go).
type Warning = trace.Warning

// Suppressor decides whether a warning should be suppressed given its
// resolved stack. internal/suppress implements it.
type Suppressor interface {
	Suppressed(kind string, frames []trace.Frame) bool
}

// Collector accumulates warnings with per-site deduplication.
type Collector struct {
	res        trace.Resolver
	sup        Suppressor
	seq        func() uint64
	sites      map[SiteKey]*Warning
	order      []SiteKey
	locs       map[trace.StackID]LocKey
	suppressed int
	total      int
}

// NewCollector creates a collector. res resolves stacks and blocks for
// formatting and suppression matching; sup may be nil.
func NewCollector(res trace.Resolver, sup Suppressor) *Collector {
	return &Collector{
		res:   res,
		sup:   sup,
		sites: make(map[SiteKey]*Warning),
	}
}

// SetSequencer installs a callback returning the current global event
// sequence number. When set, every new site is stamped with the sequence of
// its first occurrence (Warning.Seq), which is what lets Merge reconstruct
// the sequential first-seen order from per-shard collectors.
func (c *Collector) SetSequencer(fn func() uint64) { c.seq = fn }

// Add records a warning occurrence, implementing trace.Reporter. The first
// occurrence at a site retains its details; later ones only bump the count.
// Add reports whether the warning was a new site (neither folded nor
// suppressed).
func (c *Collector) Add(w Warning) bool {
	c.total++
	key := SiteKey{Tool: w.Tool, Kind: w.Kind, Loc: c.locKey(w.Stack)}
	if prev, ok := c.sites[key]; ok {
		prev.Count++
		return false
	}
	if c.seq != nil {
		w.Seq = c.seq()
	}
	if c.sup != nil && c.res != nil {
		if c.sup.Suppressed(w.Kind.Category(), c.res.Stack(w.Stack)) {
			c.suppressed++
			return false
		}
	}
	w.Count = 1
	c.sites[key] = &w
	c.order = append(c.order, key)
	return true
}

var _ trace.Reporter = (*Collector)(nil)

// Clone returns a deep, independent point-in-time copy of the collector:
// same sites, order, counts and totals, sharing no mutable state with the
// original. Warnings added to either side afterwards are invisible to the
// other. The clone carries no sequencer — it is a frozen checkpoint meant for
// formatting and merging, not for further collection on a live stream.
func (c *Collector) Clone() *Collector {
	out := &Collector{
		res:        c.res,
		sup:        c.sup,
		sites:      make(map[SiteKey]*Warning, len(c.sites)),
		order:      append([]SiteKey(nil), c.order...),
		suppressed: c.suppressed,
		total:      c.total,
	}
	for k, w := range c.sites {
		cp := *w
		out.sites[k] = &cp
	}
	if len(c.locs) > 0 {
		out.locs = make(map[trace.StackID]LocKey, len(c.locs))
		for id, lk := range c.locs {
			out.locs[id] = lk
		}
	}
	return out
}

// SnapshotReport implements trace.Snapshotter: the capability the analysis
// engine's snapshot lifecycle requires of every instance collector.
func (c *Collector) SnapshotReport() trace.Reporter { return c.Clone() }

var _ trace.Snapshotter = (*Collector)(nil)

// CompactTail bounds the collector to its first max sites in order,
// discarding the tail. It returns how many sites were discarded and how many
// dynamic occurrences they carried; the discarded occurrences leave the
// Occurrences total too, so a compacted collector stays internally
// consistent and the caller can disclose exactly what was dropped. The
// retained set is a prefix of the site order, so prefix-consistency
// reasoning over merged collectors carries over. A max <= 0 or >= Locations
// is a no-op.
//
// This exists for the ingest retention fold: a month-long daemon folding
// every terminal session into one merged collector needs a bound on distinct
// sites, and an explicit tally of what the bound cost beats a silently
// shrinking report.
func (c *Collector) CompactTail(max int) (sites, occurrences int) {
	if max <= 0 || len(c.order) <= max {
		return 0, 0
	}
	tail := c.order[max:]
	for _, k := range tail {
		occurrences += c.sites[k].Count
		delete(c.sites, k)
	}
	sites = len(tail)
	c.order = c.order[:max:max]
	c.total -= occurrences
	return sites, occurrences
}

// Sites returns the distinct warning sites in first-seen order.
func (c *Collector) Sites() []*Warning {
	out := make([]*Warning, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.sites[k])
	}
	return out
}

// Locations returns the number of distinct reported locations — the Fig. 5/6
// metric.
func (c *Collector) Locations() int { return len(c.order) }

// Occurrences returns the total number of dynamic warnings observed,
// including folded duplicates but excluding suppressed sites.
func (c *Collector) Occurrences() int { return c.total - c.suppressed }

// SuppressedSites returns the number of sites dropped by suppressions.
func (c *Collector) SuppressedSites() int { return c.suppressed }

// LocationsByTool returns the number of distinct sites per tool report name
// — the per-tool breakdown of Locations for multi-tool runs.
func (c *Collector) LocationsByTool() map[string]int {
	m := make(map[string]int)
	for _, w := range c.Sites() {
		m[w.Tool]++
	}
	return m
}

// CountByKind returns the number of distinct sites per warning kind.
func (c *Collector) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, k := range c.order {
		m[k.Kind]++
	}
	return m
}

// Keys returns the site keys in first-seen order, parallel to Sites. The
// keys are the cross-process identity of each site — equal keys from
// different sessions denote the same bug.
func (c *Collector) Keys() []SiteKey {
	return append([]SiteKey(nil), c.order...)
}

// Format renders all warning sites in a Helgrind-like textual format.
func (c *Collector) Format() string {
	var b strings.Builder
	for _, w := range c.Sites() {
		b.WriteString(FormatWarning(w, c.res))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "== %d distinct location(s), %d occurrence(s), %d suppressed site(s)\n",
		c.Locations(), c.Occurrences(), c.suppressed)
	return b.String()
}

// FormatWarning renders one warning in a Helgrind-like format (cf. Fig. 9 of
// the paper).
func FormatWarning(w *Warning, res trace.Resolver) string {
	var b strings.Builder
	switch w.Kind {
	case KindRace:
		fmt.Fprintf(&b, "==%s== Possible data race %s variable at 0x%X\n", w.Tool, w.Access, w.Addr)
	case KindDeadlock:
		fmt.Fprintf(&b, "==%s== Lock order violation involving address 0x%X\n", w.Tool, w.Addr)
	case KindUseAfterFree:
		fmt.Fprintf(&b, "==%s== Invalid %s of size %d at 0x%X (freed block)\n", w.Tool, w.Access, w.Size, w.Addr)
	case KindInvalidFree:
		fmt.Fprintf(&b, "==%s== Invalid free at 0x%X\n", w.Tool, w.Addr)
	case KindHighLevel:
		fmt.Fprintf(&b, "==%s== High-level data race (inconsistent lock granularity)\n", w.Tool)
	}
	writeStack(&b, w.Stack, res, "   ")
	if res != nil {
		if blk := res.BlockInfo(w.Block); blk != nil {
			fmt.Fprintf(&b, "==%s== Address 0x%X is %d bytes inside a block of size %d (%s) alloc'd by thread %d\n",
				w.Tool, w.Addr, w.Off, blk.Size, blk.Tag, blk.Thread)
			writeStack(&b, blk.Stack, res, "   ")
		}
	}
	if w.PrevStack != trace.NoStack {
		fmt.Fprintf(&b, "==%s== Conflicts with a previous access\n", w.Tool)
		writeStack(&b, w.PrevStack, res, "   ")
	}
	if w.State != "" {
		fmt.Fprintf(&b, "==%s== Previous state: %s\n", w.Tool, w.State)
	}
	if w.Count > 1 {
		fmt.Fprintf(&b, "==%s== (%d occurrences at this site)\n", w.Tool, w.Count)
	}
	return b.String()
}

func writeStack(b *strings.Builder, id trace.StackID, res trace.Resolver, indent string) {
	if res == nil || id == trace.NoStack {
		return
	}
	frames := res.Stack(id)
	for i := len(frames) - 1; i >= 0; i-- { // innermost first, like Helgrind
		f := frames[i]
		pos := i == len(frames)-1
		prefix := "by"
		if pos {
			prefix = "at"
		}
		fmt.Fprintf(b, "%s%s %s (%s:%d)\n", indent, prefix, f.Fn, f.File, f.Line)
	}
}

// Summary is a compact per-kind rollup.
func (c *Collector) Summary() string {
	counts := c.CountByKind()
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s: %d", k, counts[k]))
	}
	if len(parts) == 0 {
		return "no warnings"
	}
	return strings.Join(parts, ", ")
}
