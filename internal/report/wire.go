package report

// Wire codec for collectors. A backend analyzer finishes a session and ships
// the session's collector — site keys, exemplar warnings, totals — to the
// router inside one backend-report frame; the router decodes it and folds it
// into the fleet aggregate with Merge. The encoding carries the SiteKeys
// verbatim, so a site's cross-process identity survives the hop bit-for-bit:
// folding decoded collectors on the router is byte-identical to folding the
// originals in one process.
//
// The decoder follows the metadata decoder's hostile-input discipline: no
// allocation is sized from a claimed count or length without checking it
// against the bytes actually remaining, and every string is interned
// process-wide (tool names and shadow-state strings repeat across every
// session a router ever sees).

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/intern"
	"repro/internal/trace"
)

const (
	// wireVersion tags the collector encoding; a decoder rejects versions it
	// does not speak instead of misparsing them.
	wireVersion = 1
	// maxWireString bounds one encoded string (tool name or shadow-state
	// description).
	maxWireString = 1 << 16
)

// AppendWire appends the collector's portable encoding to b and returns the
// extended slice. Only merge-relevant state travels: site keys with their
// exemplar warnings in first-seen order, plus the occurrence totals. The
// resolver, suppressor and sequencer are session-local machinery and stay
// behind; raw stack IDs inside the exemplars are carried for honesty (they
// still render as opaque IDs) but the fold identity is the SiteKey alone.
func (c *Collector) AppendWire(b []byte) []byte {
	b = append(b, wireVersion)
	b = binary.AppendUvarint(b, uint64(c.total))
	b = binary.AppendUvarint(b, uint64(c.suppressed))
	b = binary.AppendUvarint(b, uint64(len(c.order)))
	for _, k := range c.order {
		w := c.sites[k]
		b = appendWireString(b, k.Tool)
		b = append(b, byte(k.Kind))
		b = append(b, k.Loc[:]...)
		b = binary.AppendUvarint(b, uint64(uint32(w.Thread)))
		b = binary.AppendUvarint(b, uint64(w.Addr))
		b = binary.AppendUvarint(b, uint64(uint32(w.Block)))
		b = binary.AppendUvarint(b, uint64(w.Off))
		b = binary.AppendUvarint(b, uint64(w.Size))
		b = append(b, byte(w.Access))
		b = binary.AppendUvarint(b, uint64(uint32(w.Stack)))
		b = binary.AppendUvarint(b, uint64(uint32(w.PrevStack)))
		b = appendWireString(b, w.State)
		b = binary.AppendUvarint(b, uint64(w.Count))
		b = binary.AppendUvarint(b, w.Seq)
	}
	return b
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeWire parses one AppendWire encoding into a fresh collector with no
// resolver or suppressor — the shape every cross-session fold already
// renders with. The decoded collector merges (and manifests) exactly like
// the original.
func DecodeWire(payload []byte) (*Collector, error) {
	r := bytes.NewReader(payload)
	readU := func() (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("report: corrupt collector encoding: %w", io.ErrUnexpectedEOF)
		}
		return v, nil
	}
	var sbuf []byte
	readS := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > maxWireString || n > uint64(r.Len()) {
			return "", fmt.Errorf("report: corrupt collector string length %d", n)
		}
		if uint64(cap(sbuf)) < n {
			sbuf = make([]byte, n)
		}
		sbuf = sbuf[:n]
		if _, err := io.ReadFull(r, sbuf); err != nil {
			return "", fmt.Errorf("report: corrupt collector encoding: %w", io.ErrUnexpectedEOF)
		}
		return intern.Bytes(sbuf), nil
	}
	readByte := func() (byte, error) {
		v, err := r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("report: corrupt collector encoding: %w", io.ErrUnexpectedEOF)
		}
		return v, nil
	}

	ver, err := readByte()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("report: unsupported collector encoding version %d", ver)
	}
	total, err := readU()
	if err != nil {
		return nil, err
	}
	suppressed, err := readU()
	if err != nil {
		return nil, err
	}
	if total > 1<<62 || suppressed > total {
		return nil, fmt.Errorf("report: implausible collector totals %d/%d", suppressed, total)
	}
	nsites, err := readU()
	if err != nil {
		return nil, err
	}
	// Every encoded site consumes well over one byte; a count exceeding the
	// remaining payload is corrupt, not just large.
	if nsites > uint64(r.Len()) {
		return nil, fmt.Errorf("report: collector claims %d sites in %d bytes", nsites, r.Len())
	}

	out := NewCollector(nil, nil)
	out.total = int(total)
	out.suppressed = int(suppressed)
	for i := uint64(0); i < nsites; i++ {
		var k SiteKey
		if k.Tool, err = readS(); err != nil {
			return nil, err
		}
		kind, err := readByte()
		if err != nil {
			return nil, err
		}
		k.Kind = Kind(kind)
		if _, err := io.ReadFull(r, k.Loc[:]); err != nil {
			return nil, fmt.Errorf("report: corrupt collector encoding: %w", io.ErrUnexpectedEOF)
		}
		f, err := readN(readU, 5)
		if err != nil {
			return nil, err
		}
		access, err := readByte()
		if err != nil {
			return nil, err
		}
		g, err := readN(readU, 2)
		if err != nil {
			return nil, err
		}
		state, err := readS()
		if err != nil {
			return nil, err
		}
		h, err := readN(readU, 2)
		if err != nil {
			return nil, err
		}
		if h[0] > 1<<62 {
			return nil, fmt.Errorf("report: implausible site count %d", h[0])
		}
		if _, dup := out.sites[k]; dup {
			return nil, fmt.Errorf("report: duplicate site key in collector encoding")
		}
		w := &Warning{
			Tool:      k.Tool,
			Kind:      k.Kind,
			Thread:    trace.ThreadID(int32(uint32(f[0]))),
			Addr:      trace.Addr(f[1]),
			Block:     trace.BlockID(int32(uint32(f[2]))),
			Off:       uint32(f[3]),
			Size:      uint32(f[4]),
			Access:    trace.AccessKind(access),
			Stack:     trace.StackID(int32(uint32(g[0]))),
			PrevStack: trace.StackID(int32(uint32(g[1]))),
			State:     state,
			Count:     int(h[0]),
			Seq:       h[1],
		}
		out.sites[k] = w
		out.order = append(out.order, k)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("report: %d trailing byte(s) after collector encoding", r.Len())
	}
	return out, nil
}

// readN reads n consecutive uvarints.
func readN(readU func() (uint64, error), n int) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := readU()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
