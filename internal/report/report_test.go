package report

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// fakeResolver implements trace.Resolver for tests.
type fakeResolver struct {
	stacks map[trace.StackID][]trace.Frame
	blocks map[trace.BlockID]*trace.Block
}

func (f *fakeResolver) Stack(id trace.StackID) []trace.Frame { return f.stacks[id] }
func (f *fakeResolver) BlockInfo(id trace.BlockID) *trace.Block {
	return f.blocks[id]
}

func newResolver() *fakeResolver {
	return &fakeResolver{
		stacks: map[trace.StackID][]trace.Frame{
			1: {{Fn: "main", File: "main.cpp", Line: 10}, {Fn: "worker", File: "w.cpp", Line: 20}},
			2: {{Fn: "main", File: "main.cpp", Line: 11}},
		},
		blocks: map[trace.BlockID]*trace.Block{
			7: {ID: 7, Base: 0x1000, Size: 24, Tag: "string-rep", Thread: 1, Stack: 2},
		},
	}
}

func TestDedupBySite(t *testing.T) {
	c := NewCollector(newResolver(), nil)
	w := Warning{Tool: "helgrind", Kind: KindRace, Stack: 1, Addr: 0x1000, Block: 7}
	if !c.Add(w) {
		t.Error("first occurrence should be a new site")
	}
	if c.Add(w) {
		t.Error("second occurrence should fold")
	}
	w2 := w
	w2.Stack = 2
	if !c.Add(w2) {
		t.Error("different stack should be a new site")
	}
	if c.Locations() != 2 {
		t.Errorf("locations = %d, want 2", c.Locations())
	}
	if c.Occurrences() != 3 {
		t.Errorf("occurrences = %d, want 3", c.Occurrences())
	}
	if c.Sites()[0].Count != 2 {
		t.Errorf("site count = %d, want 2", c.Sites()[0].Count)
	}
}

func TestKindsSeparateSites(t *testing.T) {
	c := NewCollector(newResolver(), nil)
	c.Add(Warning{Tool: "x", Kind: KindRace, Stack: 1})
	c.Add(Warning{Tool: "x", Kind: KindUseAfterFree, Stack: 1})
	if c.Locations() != 2 {
		t.Errorf("locations = %d, want 2 (different kinds)", c.Locations())
	}
	byKind := c.CountByKind()
	if byKind[KindRace] != 1 || byKind[KindUseAfterFree] != 1 {
		t.Errorf("byKind = %v", byKind)
	}
}

func TestFormatHelgrindStyle(t *testing.T) {
	c := NewCollector(newResolver(), nil)
	c.Add(Warning{
		Tool: "helgrind", Kind: KindRace, Thread: 2,
		Addr: 0x1008, Block: 7, Off: 8, Size: 4,
		Access: trace.Write, Stack: 1, State: "shared RO, no locks",
	})
	out := c.Format()
	for _, want := range []string{
		"Possible data race write variable at 0x1008",
		"at worker (w.cpp:20)",
		"by main (main.cpp:10)",
		"8 bytes inside a block of size 24 (string-rep) alloc'd by thread 1",
		"Previous state: shared RO, no locks",
		"1 distinct location(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

type muteAll struct{}

func (muteAll) Suppressed(string, []trace.Frame) bool { return true }

func TestSuppressorApplies(t *testing.T) {
	c := NewCollector(newResolver(), muteAll{})
	if c.Add(Warning{Tool: "x", Kind: KindRace, Stack: 1}) {
		t.Error("suppressed warning reported as new site")
	}
	if c.Locations() != 0 || c.SuppressedSites() != 1 {
		t.Errorf("locations=%d suppressed=%d, want 0/1", c.Locations(), c.SuppressedSites())
	}
}

func TestSummary(t *testing.T) {
	c := NewCollector(newResolver(), nil)
	if c.Summary() != "no warnings" {
		t.Errorf("empty summary = %q", c.Summary())
	}
	c.Add(Warning{Tool: "x", Kind: KindRace, Stack: 1})
	if !strings.Contains(c.Summary(), "possible data race: 1") {
		t.Errorf("summary = %q", c.Summary())
	}
}

func TestFormatHighLevelWarning(t *testing.T) {
	c := NewCollector(newResolver(), nil)
	c.Add(Warning{
		Tool: "highlevel", Kind: KindHighLevel,
		Stack: 1, PrevStack: 2,
		State: "lock L1: a view of 2 variable(s) is split inconsistently by another thread",
	})
	out := c.Format()
	for _, want := range []string{
		"High-level data race",
		"Conflicts with a previous access",
		"at main (main.cpp:11)", // the PrevStack frames
		"split inconsistently",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("high-level warning missing %q:\n%s", want, out)
		}
	}
}

func TestKindCategories(t *testing.T) {
	want := map[Kind]string{
		KindRace:         "Race",
		KindDeadlock:     "Deadlock",
		KindUseAfterFree: "UseAfterFree",
		KindInvalidFree:  "InvalidFree",
		KindHighLevel:    "HighLevelRace",
	}
	for k, cat := range want {
		if k.Category() != cat {
			t.Errorf("Category(%v) = %q, want %q", k, k.Category(), cat)
		}
	}
}

// TestCompactTail pins the bounded-fold compaction primitive: the kept sites
// are a prefix of first-seen order, the discarded tail is tallied exactly,
// the occurrence total stays consistent, and the compacted manifest remains
// a prefix-consistent subset of the original.
func TestCompactTail(t *testing.T) {
	c := NewCollector(newResolver(), nil)
	for i := 1; i <= 5; i++ {
		w := Warning{Tool: "x", Kind: KindRace, Stack: trace.StackID(i)}
		c.Add(w)
		if i == 1 {
			c.Add(w) // the first site occurs twice
		}
	}
	before := c.Manifest()
	if n, occ := c.CompactTail(0); n != 0 || occ != 0 {
		t.Errorf("CompactTail(0) = (%d, %d), want no-op", n, occ)
	}
	sites, occ := c.CompactTail(2)
	if sites != 3 || occ != 3 {
		t.Errorf("CompactTail(2) = (%d sites, %d occurrences), want (3, 3)", sites, occ)
	}
	if c.Locations() != 2 || c.Occurrences() != 3 {
		t.Errorf("after compaction: %d locations, %d occurrences, want 2 and 3",
			c.Locations(), c.Occurrences())
	}
	kept := c.Sites()
	if len(kept) != 2 || kept[0].Stack != 1 || kept[1].Stack != 2 {
		t.Error("kept sites are not the first-seen prefix")
	}
	if err := PrefixConsistent(c.Manifest(), before); err != nil {
		t.Errorf("compacted manifest not a prefix-consistent subset of the original: %v", err)
	}
	if n, occ := c.CompactTail(2); n != 0 || occ != 0 {
		t.Errorf("second CompactTail(2) = (%d, %d), want no-op", n, occ)
	}
	// Survivors keep folding new occurrences.
	if c.Add(Warning{Tool: "x", Kind: KindRace, Stack: 1}) {
		t.Error("occurrence at a kept site opened a new site after compaction")
	}
}
