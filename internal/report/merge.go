package report

import (
	"sort"

	"repro/internal/trace"
)

// Merge combines several collectors into one, deterministically. It exists
// for the parallel analysis engine (internal/engine): each shard worker
// accumulates warnings into its own collector, and Merge reassembles a
// result that is independent of goroutine scheduling.
//
// Sites that appear in more than one input (the same call stack racing on
// blocks that hashed to different shards) are folded exactly as a single
// sequential collector would have folded them: the occurrence counts are
// summed and the details of the earliest first occurrence win. Ordering is
// by Warning.Seq — the global event sequence stamped by SetSequencer — so
// when the inputs were fed disjoint substreams of one totally-ordered event
// stream, the merged first-seen order equals the sequential one. Inputs
// without a sequencer (Seq 0 everywhere) still merge deterministically,
// ordered by (tool, kind, stack).
//
// The totals are additive: Merge assumes every dynamic warning occurrence
// was observed by exactly one input, which holds when warnings arise only
// from partitioned events (memory accesses and client requests). Tools that
// warn from broadcast events (e.g. the lock-order detector) must not be run
// on more than one shard, or their occurrences will be double-counted.
func Merge(res trace.Resolver, sup Suppressor, parts ...*Collector) *Collector {
	out := NewCollector(res, sup)
	for _, c := range parts {
		if c == nil {
			continue
		}
		out.total += c.total
		out.suppressed += c.suppressed
		for _, k := range c.order {
			w := c.sites[k]
			prev, ok := out.sites[k]
			if !ok {
				cp := *w
				out.sites[k] = &cp
				out.order = append(out.order, k)
				continue
			}
			prev.Count += w.Count
			if w.Seq < prev.Seq {
				// The other shard saw this site first: keep its details,
				// but preserve the summed count.
				cp := *w
				cp.Count = prev.Count
				*prev = cp
			}
		}
	}
	sort.SliceStable(out.order, func(i, j int) bool {
		a, b := out.sites[out.order[i]], out.sites[out.order[j]]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Stack < b.Stack
	})
	return out
}
