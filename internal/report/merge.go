package report

import (
	"bytes"
	"sort"

	"repro/internal/trace"
)

// Merge combines several collectors into one, deterministically. It exists
// for the parallel analysis engine (internal/engine) — each shard worker
// accumulates warnings into its own collector and Merge reassembles a result
// independent of goroutine scheduling — and for every cross-session fold
// above it: the ingest retention fold, the per-server aggregate, and the
// router's fleet aggregate all reduce to Merge over collectors from
// different sessions or processes.
//
// Sites are folded by SiteKey — the content-derived (tool, kind, location)
// identity — so equal keys fold whether they came from two shards of one
// stream or two sessions on two backend processes: the occurrence counts are
// summed and the details of the earliest first occurrence win, with a
// content tie-break (exemplarBefore) when first occurrences carry equal
// sequence numbers, as cross-session ones always do. The tie-break makes
// Merge commutative and associative: any grouping or ordering of the same
// inputs — one big merge, or progressive merges on different routers with
// different backend assignments — yields byte-identical output.
//
// Ordering is by Warning.Seq — the global event sequence stamped by
// SetSequencer — so when the inputs were fed disjoint substreams of one
// totally-ordered event stream, the merged first-seen order equals the
// sequential one. Inputs without a sequencer (Seq 0 everywhere) still merge
// deterministically, ordered by (tool, kind, location digest).
//
// The totals are additive: Merge assumes every dynamic warning occurrence
// was observed by exactly one input, which holds when warnings arise only
// from partitioned events (memory accesses and client requests). Tools that
// warn from broadcast events (e.g. the lock-order detector) must not be run
// on more than one shard, or their occurrences will be double-counted.
func Merge(res trace.Resolver, sup Suppressor, parts ...*Collector) *Collector {
	out := NewCollector(res, sup)
	for _, c := range parts {
		if c == nil {
			continue
		}
		out.total += c.total
		out.suppressed += c.suppressed
		for _, k := range c.order {
			w := c.sites[k]
			prev, ok := out.sites[k]
			if !ok {
				cp := *w
				out.sites[k] = &cp
				out.order = append(out.order, k)
				continue
			}
			prev.Count += w.Count
			if w.Seq < prev.Seq || (w.Seq == prev.Seq && exemplarBefore(w, prev)) {
				// The other input saw this site first (or ties on sequence
				// and wins the content tie-break): keep its details, but
				// preserve the summed count.
				cp := *w
				cp.Count = prev.Count
				*prev = cp
			}
		}
	}
	sort.SliceStable(out.order, func(i, j int) bool {
		a, b := out.order[i], out.order[j]
		wa, wb := out.sites[a], out.sites[b]
		if wa.Seq != wb.Seq {
			return wa.Seq < wb.Seq
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return bytes.Compare(a.Loc[:], b.Loc[:]) < 0
	})
	return out
}

// exemplarBefore is an arbitrary but total content order over two warnings
// at the same site with equal first-seen sequence numbers, used to pick a
// deterministic exemplar. Cross-session merges hit this constantly (every
// session restarts its sequence), and without a deterministic winner the
// exemplar would depend on merge input order — which backend a session
// happened to land on. Count is excluded: it is an accumulator, not content.
func exemplarBefore(a, b *Warning) bool {
	if a.Thread != b.Thread {
		return a.Thread < b.Thread
	}
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	if a.Size != b.Size {
		return a.Size < b.Size
	}
	if a.Access != b.Access {
		return a.Access < b.Access
	}
	if a.Stack != b.Stack {
		return a.Stack < b.Stack
	}
	if a.PrevStack != b.PrevStack {
		return a.PrevStack < b.PrevStack
	}
	return a.State < b.State
}
