package report

// Cross-session site identity. The paper counts distinct *reported
// locations*; a location is a call stack, and a call stack is content — the
// function/file/line frames — not the session-local integer the VM happened
// to intern it under. Keying sites by content is what lets identical bugs
// observed by different processes (different sessions, different backend
// analyzers, different machines) fold into one site in a fleet-wide
// aggregate: the stack IDs differ, the frames do not.
//
// A SiteKey is (tool, kind, location digest). The digest is computed from the
// resolved frames when the collector's resolver knows the stack at the time
// the warning is recorded — live sessions stream their interned tables ahead
// of the events that reference them, so resolution at Add time matches
// resolution at report time — and falls back to the raw session-local stack
// ID otherwise. The fallback keeps sessions without metadata exactly as
// discriminating as the old (tool, kind, stack-ID) identity: two sessions
// replaying byte-identical traces still share raw IDs and still fold.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/trace"
)

// LocKey is the content digest of a warning site's location: a truncated
// SHA-256 over the resolved frames (or over the raw stack ID when
// unresolved). It is stable across sessions, processes and machines for the
// same resolved stack, which is the property every cross-process fold in the
// system rests on.
type LocKey [16]byte

// String renders the digest as lowercase hex — the `site=` token in
// manifests.
func (k LocKey) String() string { return hex.EncodeToString(k[:]) }

// SiteKey is the deduplication identity of a warning site: the reporting
// tool, the warning kind, and the content-derived location digest. It is a
// comparable value type, usable directly as a map key, and — unlike the
// session-local stack ID it replaced — means the same thing in every process.
type SiteKey struct {
	Tool string
	Kind Kind
	Loc  LocKey
}

// Domain separators for the two digest forms. Hashing the form tag first
// means a resolved stack can never collide with a raw fallback, whatever the
// frame contents.
const (
	locResolved = 0x01
	locRaw      = 0x02
)

// LocKeyFor computes the location digest for a stack: over the resolved
// frames when any are supplied, over the raw session-local ID otherwise. The
// canonical encoding length-prefixes every field, so distinct frame lists
// cannot collide by concatenation.
func LocKeyFor(stack trace.StackID, frames []trace.Frame) LocKey {
	h := sha256.New()
	var scratch [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		h.Write(scratch[:n])
	}
	writeS := func(s string) {
		writeU(uint64(len(s)))
		h.Write([]byte(s))
	}
	if len(frames) == 0 {
		h.Write([]byte{locRaw})
		writeU(uint64(uint32(stack)))
	} else {
		h.Write([]byte{locResolved})
		writeU(uint64(len(frames)))
		for _, f := range frames {
			writeS(f.Fn)
			writeS(f.File)
			writeU(uint64(f.Line))
		}
	}
	var k LocKey
	sum := h.Sum(scratch[:0])
	copy(k[:], sum)
	return k
}

// locKey resolves and digests one stack through the collector's per-stack
// memo. The memo serves two purposes: it keeps the occurrence-folding hot
// path at two map lookups (no re-resolution, no re-hashing per duplicate
// warning), and it freezes each stack's key at its first use — a resolver
// that learns a stack mid-stream cannot split one site across two keys
// between a snapshot and the final report, which is what keeps snapshot
// manifests prefix-consistent.
func (c *Collector) locKey(stack trace.StackID) LocKey {
	if k, ok := c.locs[stack]; ok {
		return k
	}
	var frames []trace.Frame
	if c.res != nil && stack != trace.NoStack {
		frames = c.res.Stack(stack)
	}
	k := LocKeyFor(stack, frames)
	if c.locs == nil {
		c.locs = make(map[trace.StackID]LocKey)
	}
	c.locs[stack] = k
	return k
}
