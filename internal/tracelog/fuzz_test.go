package tracelog_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// FuzzDecoder feeds arbitrary (corrupt, truncated, hostile) bytes through
// the trace-log decoder. The contract under test: Next never panics and
// never allocates from an attacker-controlled length — it either decodes an
// event, returns io.EOF at a clean end, or returns an error. Seeds come from
// the committed golden scenario corpus (real, well-formed logs whose
// prefixes and mutations make the best corrupt inputs) plus a few synthetic
// edge cases.
func FuzzDecoder(f *testing.F) {
	// Golden corpus traces as seeds.
	golden, err := filepath.Glob(filepath.Join("..", "scenario", "testdata", "golden", "*.trace"))
	if err != nil {
		f.Fatal(err)
	}
	if len(golden) == 0 {
		f.Fatal("no golden corpus traces found (internal/scenario/testdata/golden)")
	}
	for _, path := range golden {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and single-byte corruptions of real logs.
		f.Add(data[:len(data)/2])
		if len(data) > 10 {
			mut := bytes.Clone(data)
			mut[len(mut)/3] ^= 0xff
			f.Add(mut)
		}
	}
	// A freshly recorded stream (ties the fuzz corpus to the live encoder
	// even if the golden files ever lag behind an encoding change), plus its
	// framed forms: a framed stream — with or without metadata frames — is
	// hostile garbage to the raw decoder and must be rejected, not misparsed.
	s := scenario.Generate(scenario.GenConfig{Seed: 12345})
	if v, live, err := scenario.Record(s, true, 1); err == nil {
		f.Add(live)
		if framed, err := tracelog.EncodeFramed("fuzz", live); err == nil {
			f.Add(framed)
		}
		if framed, err := tracelog.EncodeFramedMeta("fuzz", scenario.CaptureMetadata(v), live); err == nil {
			f.Add(framed)
		}
	}
	// Synthetic edge cases: empty, unknown opcode, huge claimed lengths.
	f.Add([]byte{})
	f.Add([]byte{0xfe})
	f.Add([]byte{7, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // segment with absurd edge count
	f.Add([]byte{5, 1, 1, 4, 1, 1, 0xff, 0xff, 0xff, 0xff, 0x0f})                // alloc with absurd tag length

	f.Fuzz(func(t *testing.T, data []byte) {
		d := tracelog.NewDecoder(bytes.NewReader(data))
		var ev tracelog.Event
		for {
			err := d.Next(&ev)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // any non-EOF error is a valid rejection
			}
			// Decoded events must still be deliverable without panicking.
			ev.Deliver(trace.BaseSink{})
		}
	})
}

// FuzzFramedStream feeds arbitrary bytes through the full framed ingest
// surface: handshake, frame layer, and the event decoder stacked on top —
// exactly what the live server runs against an untrusted connection. The
// contract: never panic, never hang, never allocate from a hostile length
// claim; truncation anywhere is io.ErrUnexpectedEOF or a syntax error, and a
// clean io.EOF can only follow an explicit end frame. Seeds are framed
// encodings of the golden corpus plus mutations.
func FuzzFramedStream(f *testing.F) {
	golden, err := filepath.Glob(filepath.Join("..", "scenario", "testdata", "golden", "*.trace"))
	if err != nil {
		f.Fatal(err)
	}
	if len(golden) == 0 {
		f.Fatal("no golden corpus traces found (internal/scenario/testdata/golden)")
	}
	for i, path := range golden {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		framed, err := tracelog.EncodeFramed("seed", data)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(framed)
		f.Add(framed[:len(framed)/2]) // truncated mid-stream
		if i == 0 {
			mut := bytes.Clone(framed)
			mut[len(mut)/3] ^= 0xff
			f.Add(mut)
		}
	}
	// Metadata-frame seeds: a well-formed metadata-carrying session stream
	// plus hostile metadata payloads (absurd counts, truncated strings,
	// trailing bytes) behind a valid hello.
	sm := scenario.Generate(scenario.GenConfig{Seed: 54321})
	if v, live, err := scenario.Record(sm, true, 2); err == nil {
		if framed, err := tracelog.EncodeFramedMeta("meta-seed", scenario.CaptureMetadata(v), live); err == nil {
			f.Add(framed)
			f.Add(framed[:len(framed)*2/3]) // truncated inside/after the metadata frames
			mut := bytes.Clone(framed)
			mut[len(mut)/4] ^= 0xff
			f.Add(mut)
		}
	}
	helloMeta := []byte{'T', 'L', 'F', '1', 1, 1, 'x', byte(tracelog.FrameMetadata)}
	f.Add(append(bytes.Clone(helloMeta), 5, 0xff, 0xff, 0xff, 0xff, 0x0f)) // absurd stack count
	f.Add(append(bytes.Clone(helloMeta), 7, 1, 1, 0xff, 0xff, 0xff, 0x0f)) // absurd frame count
	f.Add(append(bytes.Clone(helloMeta), 5, 1, 1, 1, 10, 'x'))             // truncated string
	f.Add(append(bytes.Clone(helloMeta), 0xff, 0xff, 0xff, 0xff, 0x7f))    // oversized metadata claim
	f.Add(append(bytes.Clone(helloMeta), 5, 0, 0, 1, 2, 3))                // trailing bytes after tables

	// Router↔backend frame-kind seeds: an assign-opened session stream (the
	// router→backend forwarding form of a hello stream), a backend-stats
	// request, and hostile openers — a backend-report with an oversized
	// claim, and a truncated assign stream.
	if s := scenario.Generate(scenario.GenConfig{Seed: 2718}); true {
		if _, live, err := scenario.Record(s, true, 1); err == nil {
			var ab bytes.Buffer
			aw := tracelog.NewFrameWriter(&ab)
			if aw.Assign("fuzz-assign") == nil && aw.Events(live) == nil && aw.End() == nil {
				f.Add(bytes.Clone(ab.Bytes()))
				f.Add(ab.Bytes()[:ab.Len()*2/3])
			}
		}
	}
	f.Add([]byte{'T', 'L', 'F', '1', byte(tracelog.FrameBackendStats), 0})
	f.Add([]byte{'T', 'L', 'F', '1', byte(tracelog.FrameBackendReport), 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{'T', 'L', 'F', '1', byte(tracelog.FrameAssign), 2, 'x'})

	// Synthetic edges: bare magic, hello-only, oversized claims, raw log
	// without framing.
	f.Add([]byte("TLF1"))
	f.Add([]byte{'T', 'L', 'F', '1', 1, 0})
	f.Add([]byte{'T', 'L', 'F', '1', 2, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The router pump: CopyFrame over arbitrary bytes must never panic,
		// hang, or allocate from a hostile claim — same contract as reading.
		cfr := tracelog.NewFrameReader(bytes.NewReader(data))
		cfw := tracelog.NewFrameWriter(io.Discard)
		for {
			if _, err := tracelog.CopyFrame(cfw, cfr); err != nil {
				break
			}
		}

		fr := tracelog.NewFrameReader(bytes.NewReader(data))
		kind, _, err := fr.Handshake()
		if err != nil {
			return
		}
		if kind != tracelog.FrameHello && kind != tracelog.FrameAssign {
			return // queries and stats requests carry no event stream
		}
		d := tracelog.NewDecoder(fr)
		var ev tracelog.Event
		for {
			err := d.Next(&ev)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // any non-EOF error is a valid rejection
			}
			ev.Deliver(trace.BaseSink{})
		}
	})
}

// TestDecoderBounds pins the hardening the fuzz target relies on: claimed
// lengths beyond the corruption bounds are rejected as errors, not
// allocated.
func TestDecoderBounds(t *testing.T) {
	cases := map[string][]byte{
		"segment-edges": {7, 1, 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"alloc-tag":     {5, 1, 1, 4, 1, 1, 0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		d := tracelog.NewDecoder(bytes.NewReader(data))
		var ev tracelog.Event
		err := d.Next(&ev)
		if err == nil || err == io.EOF {
			t.Errorf("%s: Next = %v, want corruption error", name, err)
		}
	}
}
