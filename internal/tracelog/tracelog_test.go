package tracelog

import (
	"bytes"
	"testing"

	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vm"
)

// racyWorkload is a guest program with both real races and FP-family
// patterns, used to compare online vs offline analysis.
func racyWorkload(main *vm.Thread) {
	v := main.VM()
	m := v.NewMutex("m")
	shared := main.Alloc(16, "shared")
	atomicCtr := main.Alloc(4, "refcount")
	w := func(t *vm.Thread) {
		defer t.Func("worker", "workload.cpp", 10)()
		for i := 0; i < 5; i++ {
			t.SetLine(12)
			shared.Store32(t, 0, shared.Load32(t, 0)+1) // unlocked: race
			m.Lock(t)
			t.SetLine(14)
			shared.Store32(t, 4, uint32(i)) // locked: fine
			m.Unlock(t)
			t.SetLine(16)
			atomicCtr.Load32(t, 0) // plain read
			t.SetLine(17)
			atomicCtr.AtomicAdd32(t, 0, 1) // LOCKed write
		}
	}
	a := main.Go("a", w)
	b := main.Go("b", w)
	main.Join(a)
	main.Join(b)
	blk := main.Alloc(8, "freed")
	blk.Free(main)
}

// run executes the workload with the given sinks attached and returns the VM.
func run(t *testing.T, sinks ...trace.Sink) *vm.VM {
	t.Helper()
	v := vm.New(vm.Options{Seed: 3})
	for _, s := range sinks {
		v.AddTool(s)
	}
	if err := v.Run(racyWorkload); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return v
}

func TestRecordReplayMatchesOnline(t *testing.T) {
	// Online analysis.
	vOnline := vm.New(vm.Options{Seed: 3})
	colOnline := report.NewCollector(vOnline, nil)
	vOnline.AddTool(lockset.New(lockset.ConfigOriginal(), colOnline))
	if err := vOnline.Run(racyWorkload); err != nil {
		t.Fatalf("online run: %v", err)
	}

	// Record, then replay offline into an identical detector.
	var log bytes.Buffer
	rec := NewRecorder(&log)
	vRec := run(t, rec)
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	colOffline := report.NewCollector(vRec, nil) // resolver from the recording VM
	offline := lockset.New(lockset.ConfigOriginal(), colOffline)
	events, err := Replay(bytes.NewReader(log.Bytes()), offline)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if events != rec.Events() {
		t.Errorf("replayed %d events, recorded %d", events, rec.Events())
	}
	if colOffline.Locations() != colOnline.Locations() {
		t.Errorf("offline locations = %d, online = %d", colOffline.Locations(), colOnline.Locations())
	}
	if colOffline.Occurrences() != colOnline.Occurrences() {
		t.Errorf("offline occurrences = %d, online = %d", colOffline.Occurrences(), colOnline.Occurrences())
	}
}

func TestReplayIntoMultipleToolsAtOnce(t *testing.T) {
	var log bytes.Buffer
	rec := NewRecorder(&log)
	vRec := run(t, rec)
	rec.Flush()

	colA := report.NewCollector(vRec, nil)
	colB := report.NewCollector(vRec, nil)
	a := lockset.New(lockset.ConfigOriginal(), colA)
	b := lockset.New(lockset.ConfigHWLC(), colB)
	if _, err := Replay(bytes.NewReader(log.Bytes()), a, b); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// The refcount FP must separate the two configurations on the same log.
	if colA.Locations() <= colB.Locations() {
		t.Errorf("Original (%d) should report more than HWLC (%d) on this log",
			colA.Locations(), colB.Locations())
	}
}

func TestLogGrowsWithTrace(t *testing.T) {
	size := func(iters int) int64 {
		var log bytes.Buffer
		rec := NewRecorder(&log)
		v := vm.New(vm.Options{Seed: 1})
		v.AddTool(rec)
		if err := v.Run(func(main *vm.Thread) {
			b := main.Alloc(8, "x")
			for i := 0; i < iters; i++ {
				b.Store32(main, 0, uint32(i))
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		rec.Flush()
		return int64(log.Len())
	}
	small := size(10)
	big := size(1000)
	if big < small*10 {
		t.Errorf("log should grow ~linearly with the trace: %d vs %d bytes", small, big)
	}
}

func TestReplayTruncatedLogFails(t *testing.T) {
	var log bytes.Buffer
	rec := NewRecorder(&log)
	run(t, rec)
	rec.Flush()
	if log.Len() < 20 {
		t.Fatal("log unexpectedly small")
	}
	truncated := log.Bytes()[:log.Len()/2]
	if _, err := Replay(bytes.NewReader(truncated), &trace.BaseSink{}); err == nil {
		// Truncation may coincidentally cut at an event boundary; cut again
		// mid-varint to be sure.
		if _, err := Replay(bytes.NewReader(truncated[:len(truncated)-1]), &trace.BaseSink{}); err == nil {
			t.Skip("truncation landed on event boundaries twice; acceptable")
		}
	}
}

func TestReplayGarbageFails(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte{0xFF, 0x01, 0x02}), &trace.BaseSink{}); err == nil {
		t.Error("garbage log replayed without error")
	}
}

func TestRecorderCountsBytes(t *testing.T) {
	var log bytes.Buffer
	rec := NewRecorder(&log)
	run(t, rec)
	rec.Flush()
	if rec.Bytes() == 0 || rec.Events() == 0 {
		t.Errorf("recorder counters empty: %d bytes, %d events", rec.Bytes(), rec.Events())
	}
	if int64(log.Len()) < rec.Bytes()/2 {
		t.Errorf("emitted bytes (%d) inconsistent with buffer (%d)", rec.Bytes(), log.Len())
	}
}
