// Package tracelog implements offline (post-mortem) analysis, the
// alternative execution mode discussed in §2.2 and §4.5 of the paper:
// "Principally, on-the-fly checkers can work post mortem and hence reduce
// the performance impact due to the online calculations. But they still
// need logging of the execution trace. Hence, offline techniques suffer
// from their need for large amount of data."
//
// A Recorder is a trace.Sink that serialises the full event stream into a
// compact binary log; Replay feeds a recorded log back into any set of
// tools, producing bit-identical analysis results. The trade-off the paper
// describes is directly measurable: recording is cheaper per event than
// lock-set analysis, but the log grows linearly with the execution trace
// (Recorder.Bytes).
package tracelog

import (
	"bufio"
	"encoding/binary"
	"io"

	"repro/internal/trace"
)

// Event opcodes in the binary log.
const (
	opAccess byte = iota + 1
	opAcquire
	opRelease
	opContended
	opAlloc
	opFree
	opSegment
	opSync
	opRequest
	opThreadStart
	opThreadExit
)

// Recorder serialises the event stream. It implements trace.Sink.
type Recorder struct {
	w      *bufio.Writer
	events int64
	bytes  int64
	err    error
	buf    []byte
}

// NewRecorder creates a recorder writing the binary log to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w), buf: make([]byte, 0, 64)}
}

// ToolName implements trace.Sink.
func (r *Recorder) ToolName() string { return "tracelog" }

// Events returns the number of events recorded.
func (r *Recorder) Events() int64 { return r.events }

// Bytes returns the number of payload bytes emitted so far (excluding
// anything still buffered).
func (r *Recorder) Bytes() int64 { return r.bytes }

// Err returns the first write error, if any.
func (r *Recorder) Err() error { return r.err }

// Flush drains the internal buffer to the underlying writer.
func (r *Recorder) Flush() error {
	if err := r.w.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Recorder) emit(op byte, fields ...uint64) {
	if r.err != nil {
		return
	}
	r.buf = r.buf[:0]
	r.buf = append(r.buf, op)
	for _, f := range fields {
		r.buf = binary.AppendUvarint(r.buf, f)
	}
	n, err := r.w.Write(r.buf)
	r.bytes += int64(n)
	r.events++
	if err != nil {
		r.err = err
	}
}

// emitString writes a length-prefixed string.
func (r *Recorder) emitString(s string) {
	if r.err != nil {
		return
	}
	r.buf = binary.AppendUvarint(r.buf[:0], uint64(len(s)))
	if _, err := r.w.Write(r.buf); err != nil {
		r.err = err
		return
	}
	n, err := r.w.WriteString(s)
	r.bytes += int64(n) + 1
	if err != nil {
		r.err = err
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Access implements trace.Sink.
func (r *Recorder) Access(a *trace.Access) {
	r.emit(opAccess, uint64(a.Thread), uint64(a.Seg), uint64(a.Block), uint64(a.Addr),
		uint64(a.Off), uint64(a.Size), uint64(a.Kind), b2u(a.Atomic), uint64(a.Stack))
}

// Acquire implements trace.Sink.
func (r *Recorder) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, s trace.StackID) {
	r.emit(opAcquire, uint64(t), uint64(l), uint64(k), uint64(s))
}

// Release implements trace.Sink.
func (r *Recorder) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, s trace.StackID) {
	r.emit(opRelease, uint64(t), uint64(l), uint64(k), uint64(s))
}

// Contended implements trace.Sink.
func (r *Recorder) Contended(t trace.ThreadID, l trace.LockID, s trace.StackID) {
	r.emit(opContended, uint64(t), uint64(l), uint64(s))
}

// Alloc implements trace.Sink.
func (r *Recorder) Alloc(b *trace.Block) {
	r.emit(opAlloc, uint64(b.ID), uint64(b.Base), uint64(b.Size), uint64(b.Thread), uint64(b.Stack))
	r.emitString(b.Tag)
}

// Free implements trace.Sink.
func (r *Recorder) Free(b *trace.Block, t trace.ThreadID, s trace.StackID) {
	r.emit(opFree, uint64(b.ID), uint64(t), uint64(s))
}

// Segment implements trace.Sink.
func (r *Recorder) Segment(ss *trace.SegmentStart) {
	fields := []uint64{uint64(ss.Seg), uint64(ss.Thread), uint64(len(ss.In))}
	for _, e := range ss.In {
		fields = append(fields, uint64(e.From), uint64(e.Kind))
	}
	r.emit(opSegment, fields...)
}

// Sync implements trace.Sink.
func (r *Recorder) Sync(ev *trace.SyncEvent) {
	r.emit(opSync, uint64(ev.Op), uint64(ev.Obj), uint64(ev.Thread), uint64(ev.Msg), uint64(ev.Stack))
}

// Request implements trace.Sink.
func (r *Recorder) Request(req *trace.Request) {
	r.emit(opRequest, uint64(req.Kind), uint64(req.Thread), uint64(req.Block),
		uint64(req.Off), uint64(req.Size), uint64(req.Stack))
}

// ThreadStart implements trace.Sink.
func (r *Recorder) ThreadStart(t, parent trace.ThreadID) {
	r.emit(opThreadStart, uint64(t), uint64(parent))
}

// ThreadExit implements trace.Sink.
func (r *Recorder) ThreadExit(t trace.ThreadID) {
	r.emit(opThreadExit, uint64(t))
}

var _ trace.Sink = (*Recorder)(nil)

// Replay reads a binary log and delivers every event to the given sinks, in
// order. Blocks are reconstructed so that Free events carry the matching
// descriptor. It returns the number of events replayed.
//
// Replay is the sequential analysis path; internal/engine consumes the same
// Decoder to fan a log out across shard workers.
func Replay(rd io.Reader, sinks ...trace.Sink) (int64, error) {
	d := NewDecoder(rd)
	var ev Event
	for {
		err := d.Next(&ev)
		if err == io.EOF {
			return d.Events(), nil
		}
		if err != nil {
			return d.Events(), err
		}
		for _, s := range sinks {
			ev.Deliver(s)
		}
	}
}

// readN collects n uvarint fields through the given read callback. The
// event decode hot path uses Decoder.readFields (fixed scratch, no per-call
// slice) instead; this remains for the cold metadata decode.
func readN(read func() (uint64, error), n int) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := read()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
