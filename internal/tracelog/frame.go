package tracelog

// The streaming frame layer: length-framed transport for trace logs over a
// byte stream (a socket), used by the live ingest server (internal/ingest).
//
// A framed stream is a 4-byte magic followed by frames of the form
//
//	[kind byte][uvarint payload length][payload bytes]
//
// The payload of an events frame is the ordinary binary log encoding — the
// existing offline format is exactly one frame kind, chunked at arbitrary
// boundaries (events may span frames; frames are pure transport). A clean
// stream ends with an explicit end frame, which is what lets a reader
// distinguish "the sender finished" from "the connection died mid-trace":
// running out of bytes anywhere before the end frame is io.ErrUnexpectedEOF,
// never a clean EOF and never an unbounded allocation.
//
// Client → server: hello (session name), then any interleaving of metadata
// (interned stack/block tables) and events frames, then end.
// Client → server (query connection): query, end of request.
// Server → client: report (rendered analysis report) or error, as the
// response to either a drained session or a query.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// FrameKind identifies a frame in a framed trace stream.
type FrameKind uint8

// Frame kinds.
const (
	// FrameHello opens a trace-ingest session; the payload is the client's
	// session name (informational, shows up in the server registry).
	FrameHello FrameKind = 1 + iota
	// FrameEvents carries a chunk of binary trace log (the offline format).
	FrameEvents
	// FrameEnd marks the clean end of the stream.
	FrameEnd
	// FrameReport carries a rendered analysis report (server → client).
	FrameReport
	// FrameError carries a failure description (server → client).
	FrameError
	// FrameQuery asks the server a question instead of opening a session;
	// the payload names the query (e.g. "aggregate").
	FrameQuery
	// FrameMetadata carries interned stack/block tables (see Metadata) so
	// the receiver resolves warning sites like an offline replay does. Any
	// number may appear between the hello and the end frame, interleaved
	// with events frames; each is standalone and they accumulate.
	FrameMetadata
	// FrameAssign opens a forwarded session on a backend analyzer
	// (router → backend); the payload is the session name, as in a hello.
	// A backend answers the session's end with a backend-report frame
	// instead of a rendered report, so the router can fold the result.
	FrameAssign
	// FrameBackendReport carries a structured per-session result
	// (backend → router): the session outcome plus the portable collector
	// encoding (report.AppendWire) the router folds into the fleet
	// aggregate. It shares the events/report payload bound.
	FrameBackendReport
	// FrameBackendStats is the backend census exchange: an empty request
	// (router → backend, in place of a hello) answered by a stats payload
	// (backend → router) describing the backend's live sessions and totals.
	FrameBackendStats
)

func (k FrameKind) String() string {
	switch k {
	case FrameHello:
		return "hello"
	case FrameEvents:
		return "events"
	case FrameEnd:
		return "end"
	case FrameReport:
		return "report"
	case FrameError:
		return "error"
	case FrameQuery:
		return "query"
	case FrameMetadata:
		return "metadata"
	case FrameAssign:
		return "assign"
	case FrameBackendReport:
		return "backend-report"
	case FrameBackendStats:
		return "backend-stats"
	default:
		return fmt.Sprintf("frame(%d)", uint8(k))
	}
}

// frameMagic opens every framed stream (one per direction).
var frameMagic = [4]byte{'T', 'L', 'F', '1'}

// bigFrame reports whether a kind carries bulk payloads under the large
// events bound rather than the control bound: events chunks, rendered
// reports (a whole possibly-cross-session analysis), and structured backend
// reports (which embed a session's collector encoding).
func bigFrame(kind FrameKind) bool {
	return kind == FrameEvents || kind == FrameReport || kind == FrameBackendReport
}

// Framing bounds. Like the decoder's corruption bounds, these exist so a
// corrupt or hostile length claim is rejected instead of allocated.
const (
	// MaxFramePayload bounds one events chunk and one report frame. The
	// FrameWriter splits larger events writes (and refuses larger reports);
	// the reader rejects larger claims.
	MaxFramePayload = 1 << 24
	// maxControlPayload bounds hello/query/error payloads.
	maxControlPayload = 1 << 20
)

// ErrRemote wraps a failure reported by the peer through a FrameError frame.
var ErrRemote = errors.New("tracelog: remote error")

// ErrBusy marks a server-side admission rejection: the server refused the
// session before reading any of its stream (no analysis slot, admission rate
// exceeded). A busy rejection travels as an ordinary error frame whose
// payload carries the busyPrefix convention below, so it needs no new frame
// kind and older readers still surface it as a plain ErrRemote. Match with
// errors.Is(err, ErrBusy); the retry hint, when the server sent one, is
// recoverable via RetryAfterHint.
var ErrBusy = errors.New("tracelog: server busy")

// busyPrefix is the error-frame payload convention for admission rejections:
// "busy: <reason>" optionally followed by "; retry-after=<duration>".
const busyPrefix = "busy: "

// BusyMessage renders an admission-rejection error-frame payload in the
// convention remoteError parses back: the reason under the busy prefix, plus
// the retry hint when positive.
func BusyMessage(reason string, retryAfter time.Duration) string {
	if retryAfter > 0 {
		return fmt.Sprintf("%s%s; retry-after=%s", busyPrefix, reason, retryAfter)
	}
	return busyPrefix + reason
}

// BusyError is the decoded form of a busy rejection. It matches both ErrBusy
// and ErrRemote under errors.Is, so existing "remote failure" handling keeps
// working while admission-aware clients can branch on the rejection.
type BusyError struct {
	Reason string
	// RetryAfter is the server's backoff hint; 0 when the server sent none.
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("tracelog: server busy: %s (retry after %s)", e.Reason, e.RetryAfter)
	}
	return "tracelog: server busy: " + e.Reason
}

// Is reports the sentinel identities of a busy rejection.
func (e *BusyError) Is(target error) bool { return target == ErrBusy || target == ErrRemote }

// RetryAfterHint extracts the server's backoff hint from a busy rejection.
// ok is false when err is not a busy rejection or carries no hint.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var be *BusyError
	if errors.As(err, &be) && be.RetryAfter > 0 {
		return be.RetryAfter, true
	}
	return 0, false
}

// remoteError converts an error-frame payload into its typed error: a
// *BusyError for admission rejections, the plain ErrRemote wrap otherwise.
func remoteError(msg string) error {
	rest, isBusy := strings.CutPrefix(msg, busyPrefix)
	if !isBusy {
		return fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	be := &BusyError{Reason: rest}
	if reason, hint, ok := strings.Cut(rest, "; retry-after="); ok {
		if d, err := time.ParseDuration(hint); err == nil && d > 0 {
			be.Reason, be.RetryAfter = reason, d
		}
	}
	return be
}

// FrameWriter writes one direction of a framed trace stream. The magic is
// emitted before the first frame; output is buffered, and the frames that
// end an exchange (End, Report, Error) flush implicitly.
type FrameWriter struct {
	w          *bufio.Writer
	wroteMagic bool
	err        error
	buf        []byte
}

// NewFrameWriter creates a frame writer on w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, 16)}
}

// Err returns the first write error, if any.
func (fw *FrameWriter) Err() error { return fw.err }

// Flush drains the internal buffer to the underlying writer.
func (fw *FrameWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if err := fw.w.Flush(); err != nil {
		fw.err = err
	}
	return fw.err
}

func (fw *FrameWriter) frame(kind FrameKind, payload []byte) error {
	if fw.err != nil {
		return fw.err
	}
	// Enforce the reader's bounds on the writer side too: sending an
	// oversized frame would only make the peer reject it unread. Events
	// frames are pre-split by Events; reports pre-checked by Report and
	// BackendReport.
	if !bigFrame(kind) && len(payload) > maxControlPayload {
		return fmt.Errorf("tracelog: %s frame payload of %d bytes exceeds the limit %d", kind, len(payload), maxControlPayload)
	}
	if !fw.wroteMagic {
		fw.wroteMagic = true
		if _, err := fw.w.Write(frameMagic[:]); err != nil {
			fw.err = err
			return err
		}
	}
	fw.buf = append(fw.buf[:0], byte(kind))
	fw.buf = binary.AppendUvarint(fw.buf, uint64(len(payload)))
	if _, err := fw.w.Write(fw.buf); err != nil {
		fw.err = err
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		fw.err = err
		return err
	}
	return nil
}

// frameStream writes a frame header for n payload bytes and streams the
// payload from r, for forwarding without materialising the payload
// (CopyFrame). The caller has already bounds-checked n via the reader's
// header parse. A source that runs dry before n bytes is a truncation
// (io.ErrUnexpectedEOF) and poisons the writer — a half-written frame cannot
// be recovered on a byte stream.
func (fw *FrameWriter) frameStream(kind FrameKind, n int, r io.Reader) error {
	if fw.err != nil {
		return fw.err
	}
	if !fw.wroteMagic {
		fw.wroteMagic = true
		if _, err := fw.w.Write(frameMagic[:]); err != nil {
			fw.err = err
			return err
		}
	}
	fw.buf = append(fw.buf[:0], byte(kind))
	fw.buf = binary.AppendUvarint(fw.buf, uint64(n))
	if _, err := fw.w.Write(fw.buf); err != nil {
		fw.err = err
		return err
	}
	if _, err := io.CopyN(fw.w, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		fw.err = err
		return err
	}
	return nil
}

// Hello opens a session stream under the given session name.
func (fw *FrameWriter) Hello(name string) error {
	if err := fw.frame(FrameHello, []byte(name)); err != nil {
		return err
	}
	return fw.Flush()
}

// Query opens a query exchange (no session) for the named question.
func (fw *FrameWriter) Query(q string) error {
	if err := fw.frame(FrameQuery, []byte(q)); err != nil {
		return err
	}
	return fw.Flush()
}

// Events writes a chunk of binary trace log, splitting it into frames of at
// most MaxFramePayload bytes.
func (fw *FrameWriter) Events(p []byte) error {
	for len(p) > MaxFramePayload {
		if err := fw.frame(FrameEvents, p[:MaxFramePayload]); err != nil {
			return err
		}
		p = p[MaxFramePayload:]
	}
	return fw.frame(FrameEvents, p)
}

// Metadata writes the interned stack/block tables and flushes, splitting
// large tables across several metadata frames (each standalone; the receiver
// accumulates them). A nil or empty Metadata writes nothing, so callers
// without tables need no special case.
func (fw *FrameWriter) Metadata(md *Metadata) error {
	if md.Empty() {
		return nil
	}
	for _, chunk := range encodeMetadataChunks(md) {
		if err := fw.frame(FrameMetadata, chunk); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// Assign opens a forwarded session stream on a backend analyzer under the
// given session name (router → backend).
func (fw *FrameWriter) Assign(name string) error {
	if err := fw.frame(FrameAssign, []byte(name)); err != nil {
		return err
	}
	return fw.Flush()
}

// BackendReport sends a structured per-session result (backend → router) and
// flushes. Like Report, an oversized payload is refused here, where the
// caller can still answer with an error frame.
func (fw *FrameWriter) BackendReport(payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("tracelog: backend report of %d bytes exceeds the frame limit %d", len(payload), MaxFramePayload)
	}
	if err := fw.frame(FrameBackendReport, payload); err != nil {
		return err
	}
	return fw.Flush()
}

// BackendStats sends one side of the backend census exchange and flushes: an
// empty payload as the request (router → backend, in place of a hello), the
// encoded census as the response (backend → router).
func (fw *FrameWriter) BackendStats(payload []byte) error {
	if err := fw.frame(FrameBackendStats, payload); err != nil {
		return err
	}
	return fw.Flush()
}

// End marks the clean end of the stream and flushes.
func (fw *FrameWriter) End() error {
	if err := fw.frame(FrameEnd, nil); err != nil {
		return err
	}
	return fw.Flush()
}

// Report sends a rendered analysis report and flushes. A report beyond
// MaxFramePayload is refused here, where the caller can still answer with an
// error frame — sending it would make the peer reject the frame unread.
func (fw *FrameWriter) Report(text string) error {
	if len(text) > MaxFramePayload {
		return fmt.Errorf("tracelog: report of %d bytes exceeds the frame limit %d", len(text), MaxFramePayload)
	}
	if err := fw.frame(FrameReport, []byte(text)); err != nil {
		return err
	}
	return fw.Flush()
}

// Error sends a failure description and flushes.
func (fw *FrameWriter) Error(msg string) error {
	if err := fw.frame(FrameError, []byte(msg)); err != nil {
		return err
	}
	return fw.Flush()
}

// FrameReader reads one direction of a framed trace stream. After Handshake,
// it doubles as the io.Reader over the concatenated events payloads — feed it
// to NewDecoder (or Replay) to consume the embedded event stream: a clean
// io.EOF is returned only after an end frame, while a transport EOF anywhere
// else (mid-header, mid-payload, before the end frame) is io.ErrUnexpectedEOF.
// Payloads are streamed through, so a hostile length claim never allocates.
type FrameReader struct {
	br        *bufio.Reader
	readMagic bool
	remaining int  // unread bytes of the current events frame
	ended     bool // end frame seen
	err       error
	tables    *TableResolver // accumulated metadata-frame tables
	observe   func(kind FrameKind, payloadBytes int)
}

// SetObserver installs a callback invoked once per frame header read (after
// its length claim passed the bounds check), with the frame kind and its
// payload size. The ingest server points it at its per-kind frame and byte
// counters. Install before Handshake to observe the hello/query frame too;
// the callback must be cheap and must not retain references.
func (fr *FrameReader) SetObserver(fn func(kind FrameKind, payloadBytes int)) {
	fr.observe = fn
}

// NewFrameReader creates a frame reader on r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Err returns the reader's sticky error: the first read-side failure
// (truncation, bounds violation, a peer's error frame). A forwarding pump
// (CopyFrame) uses it to tell an inbound truncation from an outbound write
// failure — the two sides of a relay fail for different parties.
func (fr *FrameReader) Err() error { return fr.err }

// Tables returns the resolver accumulating the stream's metadata frames. It
// starts empty (resolving nothing — indistinguishable from a stream without
// metadata) and fills in as Read passes metadata frames; it is safe to hand
// to a report pipeline before any frame has arrived.
func (fr *FrameReader) Tables() *TableResolver {
	if fr.tables == nil {
		fr.tables = NewTableResolver()
	}
	return fr.tables
}

// checkMagic consumes and validates the stream magic once.
func (fr *FrameReader) checkMagic() error {
	if fr.readMagic {
		return nil
	}
	var got [4]byte
	if _, err := io.ReadFull(fr.br, got[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if got != frameMagic {
		return fmt.Errorf("tracelog: bad stream magic %q", got[:])
	}
	fr.readMagic = true
	return nil
}

// header reads the next frame header. A transport EOF before a complete
// header is io.ErrUnexpectedEOF: a framed stream always announces its end
// with an end frame.
func (fr *FrameReader) header() (FrameKind, int, error) {
	if err := fr.checkMagic(); err != nil {
		return 0, 0, err
	}
	k, err := fr.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, err
	}
	n, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, err
	}
	kind := FrameKind(k)
	limit := uint64(maxControlPayload)
	if bigFrame(kind) {
		limit = MaxFramePayload
	}
	if n > limit {
		return 0, 0, fmt.Errorf("tracelog: %s frame claims %d payload bytes (limit %d)", kind, n, limit)
	}
	if fr.observe != nil {
		fr.observe(kind, int(n))
	}
	return kind, int(n), nil
}

// control reads a bounded control payload as a string.
func (fr *FrameReader) control(n int) (string, error) {
	buf := make([]byte, n)
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	return string(buf), nil
}

// Handshake reads the stream opening: the magic plus the first frame, which
// must be a hello (session), a query, an assign (forwarded session), or a
// backend-stats request. It returns the kind and the payload; whether a
// given opener is acceptable on this connection is the server's policy
// decision, not the frame layer's.
func (fr *FrameReader) Handshake() (FrameKind, string, error) {
	kind, n, err := fr.header()
	if err != nil {
		return 0, "", err
	}
	switch kind {
	case FrameHello, FrameQuery, FrameAssign, FrameBackendStats:
		meta, err := fr.control(n)
		return kind, meta, err
	default:
		return 0, "", fmt.Errorf("tracelog: stream opens with %s frame, want hello, query, assign or backend-stats", kind)
	}
}

// Read implements io.Reader over the events payloads, between the handshake
// and the end frame. It returns io.EOF only after an end frame; any transport
// truncation surfaces as io.ErrUnexpectedEOF, and a peer's error frame as
// ErrRemote.
func (fr *FrameReader) Read(p []byte) (int, error) {
	if fr.err != nil {
		return 0, fr.err
	}
	for fr.remaining == 0 {
		if fr.ended {
			return 0, io.EOF
		}
		kind, n, err := fr.header()
		if err != nil {
			fr.err = err
			return 0, err
		}
		switch kind {
		case FrameEvents:
			fr.remaining = n
		case FrameMetadata:
			buf := make([]byte, n)
			if _, err := io.ReadFull(fr.br, buf); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				fr.err = err
				return 0, err
			}
			// Decoded through the process-wide payload cache: identical table
			// dumps from concurrent sessions of one instrumented binary share
			// a single decoded fragment (see payloadCache).
			md, err := decodeMetadataShared(buf)
			if err != nil {
				fr.err = err
				return 0, err
			}
			fr.Tables().AddMetadata(md)
		case FrameEnd:
			fr.ended = true
			if n != 0 {
				fr.err = fmt.Errorf("tracelog: end frame with %d payload bytes", n)
				return 0, fr.err
			}
		case FrameError:
			msg, err := fr.control(n)
			if err != nil {
				fr.err = err
			} else {
				fr.err = remoteError(msg)
			}
			return 0, fr.err
		default:
			fr.err = fmt.Errorf("tracelog: unexpected %s frame inside event stream", kind)
			return 0, fr.err
		}
	}
	if len(p) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.br.Read(p)
	fr.remaining -= n
	if err == io.EOF {
		if fr.remaining > 0 {
			// Transport ended with payload still owed: truncation.
			err = io.ErrUnexpectedEOF
		} else {
			// Payload complete; the next Read parses the following header
			// (and reports the truncation if the stream ended there).
			err = nil
		}
	}
	if err != nil {
		fr.err = err
	}
	return n, err
}

// Response reads a server response frame: a report (returned as text) or an
// error frame (returned as an ErrRemote-wrapped error).
func (fr *FrameReader) Response() (string, error) {
	kind, n, err := fr.header()
	if err != nil {
		return "", err
	}
	payload, err := fr.control(n)
	if err != nil {
		return "", err
	}
	switch kind {
	case FrameReport:
		return payload, nil
	case FrameError:
		return "", remoteError(payload)
	default:
		return "", fmt.Errorf("tracelog: unexpected %s frame, want report or error", kind)
	}
}

// binaryResponse reads one response frame that must be of the wanted kind
// (returning its raw payload) or an error frame (returning its typed error).
func (fr *FrameReader) binaryResponse(want FrameKind) ([]byte, error) {
	kind, n, err := fr.header()
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	switch kind {
	case want:
		return payload, nil
	case FrameError:
		return nil, remoteError(string(payload))
	default:
		return nil, fmt.Errorf("tracelog: unexpected %s frame, want %s or error", kind, want)
	}
}

// BackendResponse reads a backend's answer to a forwarded session: the
// structured backend-report payload, or the backend's error frame as a typed
// error.
func (fr *FrameReader) BackendResponse() ([]byte, error) {
	return fr.binaryResponse(FrameBackendReport)
}

// BackendStatsResponse reads a backend's census payload, or its error frame
// as a typed error.
func (fr *FrameReader) BackendStatsResponse() ([]byte, error) {
	return fr.binaryResponse(FrameBackendStats)
}

// CopyFrame forwards the next frame from fr to fw verbatim — header and
// payload, without decoding or buffering the whole payload — and returns the
// forwarded kind. This is the router's pump: after reading a client's
// handshake it streams every subsequent frame (metadata, events, end) to the
// assigned backend unchanged, so the backend decodes exactly the bytes the
// client sent. The payload is streamed through a bounded stack buffer, so a
// 16 MB events frame costs no allocation proportional to its size; the
// length claim is bounds-checked by the reader's header parse before any
// copying. CopyFrame does not flush — callers flush per frame (to preserve
// the client's pacing) or at their own cadence.
func CopyFrame(fw *FrameWriter, fr *FrameReader) (FrameKind, error) {
	if fr.err != nil {
		return 0, fr.err
	}
	if fr.remaining != 0 {
		return 0, errors.New("tracelog: CopyFrame mid-payload")
	}
	kind, n, err := fr.header()
	if err != nil {
		fr.err = err
		return 0, err
	}
	if err := fw.frameStream(kind, n, fr.br); err != nil {
		// A short source read is the inbound stream's truncation, not the
		// outbound writer's fault; account it on the reader.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			fr.err = err
		}
		return kind, err
	}
	if kind == FrameEnd {
		fr.ended = true
	}
	return kind, nil
}

var _ io.Reader = (*FrameReader)(nil)

// EncodeFramed wraps an ordinary binary trace log into a framed session
// stream (hello + events + end) — what a minimal ingest client sends.
func EncodeFramed(name string, log []byte) ([]byte, error) {
	return EncodeFramedMeta(name, nil, log)
}

// EncodeFramedMeta wraps a binary trace log and its stream metadata into a
// framed session stream: hello, the metadata frames (when md carries any
// tables), the events, end — what a resolving ingest client sends.
func EncodeFramedMeta(name string, md *Metadata, log []byte) ([]byte, error) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	if err := fw.Hello(name); err != nil {
		return nil, err
	}
	if err := fw.Metadata(md); err != nil {
		return nil, err
	}
	if err := fw.Events(log); err != nil {
		return nil, err
	}
	if err := fw.End(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
