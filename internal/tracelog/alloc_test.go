package tracelog_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracelog"
)

// recordAllOps encodes a log exercising every opcode in steady-state shape:
// repeated tags (intern hits), balanced alloc/free pairs (slab recycling) and
// multi-edge segments (edge-buffer reuse).
func recordAllOps(t *testing.T, rounds int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	tags := []string{"obj:Request", "string-rep", "obj:Dialog"}
	for i := 0; i < rounds; i++ {
		th := trace.ThreadID(i%4 + 1)
		rec.ThreadStart(th, 1)
		rec.Segment(&trace.SegmentStart{
			Seg: trace.SegmentID(i + 2), Thread: th,
			In: []trace.SegmentEdge{
				{From: trace.SegmentID(i + 1), Kind: trace.Program},
				{From: trace.SegmentID(i), Kind: trace.Create},
			},
		})
		id := trace.BlockID(i + 1)
		rec.Alloc(&trace.Block{ID: id, Base: trace.Addr(0x1000 + i), Size: 64, Thread: th, Stack: 1, Tag: tags[i%len(tags)]})
		rec.Access(&trace.Access{Thread: th, Seg: trace.SegmentID(i + 2), Block: id, Addr: trace.Addr(0x1000 + i), Size: 8, Kind: trace.Write, Stack: 2})
		rec.Acquire(th, 7, trace.Mutex, 3)
		rec.Contended(th, 7, 3)
		rec.Release(th, 7, trace.Mutex, 3)
		rec.Sync(&trace.SyncEvent{Op: trace.CondSignal, Obj: 9, Thread: th, Stack: 4})
		rec.Request(&trace.Request{Kind: trace.ReqBenign, Thread: th, Block: id, Size: 8, Stack: 5})
		rec.Free(&trace.Block{ID: id}, th, 6)
		rec.ThreadExit(th)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain decodes the whole stream, returning the event count.
func drain(t *testing.T, dec *tracelog.Decoder) int {
	t.Helper()
	var ev tracelog.Event
	n := 0
	for {
		err := dec.Next(&ev)
		if err == io.EOF {
			return n
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

// TestZeroAllocDecode pins the tentpole claim: once warmed (slab chunks
// grown, tags interned, edge buffer sized), decoding a stream through every
// opcode allocates nothing at all. GC is disabled during the measurement so
// a collection cannot shrink reused buffers mid-run (AllocsPerRun already
// pins GOMAXPROCS to 1).
func TestZeroAllocDecode(t *testing.T) {
	log := recordAllOps(t, 256)
	r := bytes.NewReader(log)
	dec := tracelog.NewDecoder(r)
	events := drain(t, dec) // warm pass

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(10, func() {
		r.Reset(log)
		dec.Reset(r)
		var ev tracelog.Event
		for dec.Next(&ev) != io.EOF {
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state decode: %.2f allocs per %d-event pass, want 0", allocs, events)
	}
}

// TestGoldenCorpusAllocBudget holds the committed golden corpus to the
// per-event budget: ≤ 0.01 allocs/event across every trace, decoded
// back-to-back through one reused decoder — the long-lived server shape.
func TestGoldenCorpusAllocBudget(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "scenario", "testdata", "golden", "*.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no golden corpus traces found (internal/scenario/testdata/golden)")
	}
	logs := make([][]byte, len(paths))
	for i, p := range paths {
		if logs[i], err = os.ReadFile(p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(nil)
	dec := tracelog.NewDecoder(r)
	events := 0
	for _, log := range logs { // warm pass
		r.Reset(log)
		dec.Reset(r)
		events += drain(t, dec)
	}
	if events == 0 {
		t.Fatal("golden corpus decoded to zero events")
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(5, func() {
		var ev tracelog.Event
		for _, log := range logs {
			r.Reset(log)
			dec.Reset(r)
			for dec.Next(&ev) != io.EOF {
			}
		}
	})
	if perEvent := allocs / float64(events); perEvent > 0.01 {
		t.Errorf("golden corpus: %.4f allocs/event over %d events (%.1f allocs/pass), budget 0.01",
			perEvent, events, allocs)
	}
}

// TestBlockTableEviction is the regression test for the unbounded block-map
// leak: a month-long stream of alloc/free pairs with ever-fresh IDs must not
// grow the decoder. 1M pairs once retained ~1M descriptors (tens of MB);
// with eviction the table tracks the live set (here: one block), so decoder
// heap growth stays under a ceiling far below the leaking footprint.
func TestBlockTableEviction(t *testing.T) {
	const pairs = 1_000_000
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	for i := 1; i <= pairs; i++ {
		id := trace.BlockID(i)
		rec.Alloc(&trace.Block{ID: id, Base: trace.Addr(i) << 4, Size: 32, Thread: 1, Stack: 1, Tag: "obj:churn"})
		rec.Free(&trace.Block{ID: id}, 1, 2)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	log := buf.Bytes()

	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	dec := tracelog.NewDecoder(bytes.NewReader(log))
	if n := drain(t, dec); n != 2*pairs {
		t.Fatalf("decoded %d events, want %d", n, 2*pairs)
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	growth := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	// The live decoder is a bufio buffer, one slab chunk and an
	// almost-empty map — well under 1 MB. The ceiling leaves room for
	// allocator noise while sitting far below the ~70 MB a retained table
	// would hold live.
	const ceiling = 8 << 20
	if growth > ceiling {
		t.Errorf("decoder retains %d bytes after %d alloc/free pairs (ceiling %d): block table not evicting", growth, pairs, ceiling)
	}
	runtime.KeepAlive(dec)
	runtime.KeepAlive(log)
}
