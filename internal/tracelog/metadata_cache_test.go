package tracelog

import (
	"testing"
	"unsafe"

	"repro/internal/trace"
)

// TestPayloadCacheShares pins the cross-session dedupe: byte-identical
// metadata payloads decode to the very same shared fragment, so N sessions
// from one instrumented binary hold one table copy, not N.
func TestPayloadCacheShares(t *testing.T) {
	md := &Metadata{
		Stacks: map[trace.StackID][]trace.Frame{
			1: {{Fn: "proxy_loop", File: "proxy.cpp", Line: 88}},
		},
		Blocks: map[trace.BlockID]trace.Block{
			2: {ID: 2, Base: 0x2000, Size: 32, Thread: 1, Stack: 1, Tag: "obj:Dialog"},
		},
	}
	chunks := encodeMetadataChunks(md)
	if len(chunks) != 1 {
		t.Fatalf("sample encodes to %d chunks, want 1", len(chunks))
	}
	a, err := decodeMetadataShared(chunks[0])
	if err != nil {
		t.Fatal(err)
	}
	// A fresh byte copy of the payload (a second session's read buffer).
	b, err := decodeMetadataShared(append([]byte(nil), chunks[0]...))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical payloads decoded to distinct fragments; cache missed")
	}
	if !a.sendable {
		t.Error("wire-decoded fragment not marked sendable")
	}

	// Two resolvers over the shared fragment must not copy it either.
	ra, rb := NewTableResolver(), NewTableResolver()
	ra.AddMetadata(a)
	rb.AddMetadata(b)
	if ra.frags[0] != rb.frags[0] {
		t.Error("resolvers copied the shared fragment")
	}
	if got := ra.BlockInfo(2); got == nil || got.Tag != "obj:Dialog" {
		t.Errorf("BlockInfo(2) = %+v", got)
	}
}

// TestDecodeInternsStrings pins that decoding routes tag and frame strings
// through the process-wide intern table: two decodes of payloads carrying
// the same vocabulary yield strings with one backing array.
func TestDecodeInternsStrings(t *testing.T) {
	mk := func(line int) []byte {
		md := &Metadata{Stacks: map[trace.StackID][]trace.Frame{
			1: {{Fn: "shared_symbol_name", File: "shared_file.cpp", Line: line}},
		}}
		chunks := encodeMetadataChunks(md)
		return chunks[0]
	}
	// Different lines → different payloads → both really decoded, no
	// payload-cache shortcut.
	a, err := decodeMetadataShared(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := decodeMetadataShared(mk(2))
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Stacks[1][0], b.Stacks[1][0]
	if unsafe.StringData(fa.Fn) != unsafe.StringData(fb.Fn) {
		t.Error("Fn strings not interned across payloads")
	}
	if unsafe.StringData(fa.File) != unsafe.StringData(fb.File) {
		t.Error("File strings not interned across payloads")
	}
}

// TestResolverNewestFirst pins override semantics under the fragment walk: a
// later fragment's entry for an ID shadows an earlier one's.
func TestResolverNewestFirst(t *testing.T) {
	r := NewTableResolver()
	r.AddMetadata(&Metadata{Blocks: map[trace.BlockID]trace.Block{
		5: {ID: 5, Size: 8, Tag: "old"},
	}})
	r.AddMetadata(&Metadata{Blocks: map[trace.BlockID]trace.Block{
		5: {ID: 5, Size: 16, Tag: "new"},
	}})
	got := r.BlockInfo(5)
	if got == nil || got.Tag != "new" || got.Size != 16 {
		t.Errorf("BlockInfo(5) = %+v, want the later fragment's entry", got)
	}
	if s, b := r.Counts(); s != 0 || b != 1 {
		t.Errorf("Counts = %d stacks / %d blocks, want 0 / 1 (union, not sum)", s, b)
	}
}
