package tracelog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/intern"
	"repro/internal/trace"
)

// Op identifies the kind of a decoded event. The values coincide with the
// on-disk opcodes.
type Op uint8

// Decoded event kinds.
const (
	OpAccess      Op = Op(opAccess)
	OpAcquire     Op = Op(opAcquire)
	OpRelease     Op = Op(opRelease)
	OpContended   Op = Op(opContended)
	OpAlloc       Op = Op(opAlloc)
	OpFree        Op = Op(opFree)
	OpSegment     Op = Op(opSegment)
	OpSync        Op = Op(opSync)
	OpRequest     Op = Op(opRequest)
	OpThreadStart Op = Op(opThreadStart)
	OpThreadExit  Op = Op(opThreadExit)
)

// Event is one decoded log event in a uniform representation. Only the
// fields relevant to Op are meaningful. Holding events as values (rather
// than delivering them straight into sinks, as Replay does) is what lets the
// parallel engine decode a log once and dispatch the same event to several
// shard workers.
type Event struct {
	Op Op
	// Access is set for OpAccess.
	Access trace.Access
	// Block is set for OpAlloc and OpFree. It is a value copy: for OpFree it
	// carries the descriptor of the matching allocation, reconstructed by the
	// Decoder. The Tag string is interned process-wide (internal/intern), so
	// repeated tags share one allocation across every decoder and session.
	Block trace.Block
	// Segment is set for OpSegment. Its In slice points into a buffer the
	// Decoder reuses: it is valid only until the next call to Next (or
	// Reset). A consumer that retains segment events beyond that must copy
	// the slice — copy-on-retain, the same discipline trace.Sink already
	// demands for event pointers. The engine copies edges into its
	// batch-owned arenas; inline replay delivers before the next decode.
	Segment trace.SegmentStart
	// Sync is set for OpSync.
	Sync trace.SyncEvent
	// Request is set for OpRequest.
	Request trace.Request
	// Thread is set for OpAcquire, OpRelease, OpContended, OpFree,
	// OpThreadStart and OpThreadExit.
	Thread trace.ThreadID
	// Parent is set for OpThreadStart.
	Parent trace.ThreadID
	// Lock and LockKind are set for OpAcquire, OpRelease and OpContended
	// (LockKind only for the first two).
	Lock     trace.LockID
	LockKind trace.LockKind
	// Stack is set for OpAcquire, OpRelease, OpContended and OpFree.
	Stack trace.StackID
}

// Deliver invokes the Sink callback corresponding to the event. Pointers
// passed to the sink point into the Event itself, so the usual trace.Sink
// contract applies: the sink must not retain them beyond the call.
func (e *Event) Deliver(s trace.Sink) {
	switch e.Op {
	case OpAccess:
		s.Access(&e.Access)
	case OpAcquire:
		s.Acquire(e.Thread, e.Lock, e.LockKind, e.Stack)
	case OpRelease:
		s.Release(e.Thread, e.Lock, e.LockKind, e.Stack)
	case OpContended:
		s.Contended(e.Thread, e.Lock, e.Stack)
	case OpAlloc:
		s.Alloc(&e.Block)
	case OpFree:
		s.Free(&e.Block, e.Thread, e.Stack)
	case OpSegment:
		s.Segment(&e.Segment)
	case OpSync:
		s.Sync(&e.Sync)
	case OpRequest:
		s.Request(&e.Request)
	case OpThreadStart:
		s.ThreadStart(e.Thread, e.Parent)
	case OpThreadExit:
		s.ThreadExit(e.Thread)
	}
}

// Corruption bounds: a decoder must fail cleanly on a corrupt or hostile
// log, never allocate from an attacker-controlled length. The VM caps stacks
// far below these, so no legitimate log comes near them.
const (
	// maxSegmentEdges bounds a segment's incoming-edge count. Real segments
	// have a handful of edges (program order plus create/join/queue/...).
	maxSegmentEdges = 1 << 16
	// maxTagLen bounds an allocation tag's byte length.
	maxTagLen = 1 << 20
)

// maxEventFields is the most uvarint fields any opcode carries outside the
// variable segment-edge list (OpAccess, with 9); the decode scratch array is
// sized to it with headroom for future opcodes.
const maxEventFields = 16

// blockChunk is the slab granule: live block descriptors are allocated 256
// at a time and recycled through a free list, so steady-state alloc/free
// traffic touches the heap only when the live set reaches a new high-water
// mark.
const blockChunk = 256

// blockSlab hands out *trace.Block descriptors from fixed-size chunks plus a
// free list of evicted descriptors. Chunks are never individually released
// (pointers into them live in the Decoder's block map), but reset rewinds
// the cursor so a reused Decoder recycles all of them.
type blockSlab struct {
	chunks [][]trace.Block
	ci     int // current chunk index
	next   int // next unused slot in chunks[ci]
	free   []*trace.Block
}

func (s *blockSlab) get() *trace.Block {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		return b
	}
	for {
		if s.ci == len(s.chunks) {
			s.chunks = append(s.chunks, make([]trace.Block, blockChunk))
		}
		if c := s.chunks[s.ci]; s.next < len(c) {
			b := &c[s.next]
			s.next++
			return b
		}
		s.ci++
		s.next = 0
	}
}

func (s *blockSlab) put(b *trace.Block) {
	*b = trace.Block{}
	s.free = append(s.free, b)
}

func (s *blockSlab) reset() {
	s.ci, s.next = 0, 0
	s.free = s.free[:0]
}

// Decoder reads a binary trace log event by event. It reconstructs block
// descriptors so that OpFree events carry the matching allocation, exactly
// as Replay does.
//
// The steady-state decode path is allocation-free: fixed-size field scratch,
// slab-recycled block descriptors (an OpFree evicts and recycles its
// descriptor, so the block table is bounded by the live set, not the event
// count), process-wide interned allocation tags, and a reused segment-edge
// buffer (see Event.Segment). A Decoder is not safe for concurrent use.
type Decoder struct {
	br     *bufio.Reader
	blocks map[trace.BlockID]*trace.Block
	slab   blockSlab
	events int64

	scratch [maxEventFields]uint64 // per-event field decode, no per-call slice
	tagBuf  []byte                 // reused tag read buffer; interned before use
	edges   []trace.SegmentEdge    // reused Segment.In backing; see Event.Segment
}

// NewDecoder creates a decoder reading the binary log from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{
		br:     bufio.NewReader(r),
		blocks: make(map[trace.BlockID]*trace.Block),
	}
}

// Reset rewires the decoder to a new log, recycling its buffers, block slab
// and table: a decoder in a long-lived server (or a benchmark loop) decodes
// any number of streams with no per-stream allocation beyond what a larger
// live set or a new tag vocabulary demands.
func (d *Decoder) Reset(r io.Reader) {
	d.br.Reset(r)
	clear(d.blocks)
	d.slab.reset()
	d.events = 0
}

// Events returns the number of events decoded so far, counting an event
// whose payload turned out to be truncated.
func (d *Decoder) Events() int64 { return d.events }

// readFields decodes n uvarint fields into the fixed scratch array. Running
// out of input mid-payload is a truncated log, not a clean end, and must not
// look like io.EOF.
func (d *Decoder) readFields(n int) ([]uint64, error) {
	out := d.scratch[:n]
	for i := range out {
		v, err := binary.ReadUvarint(d.br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// readTag reads a length-prefixed allocation tag into the reused buffer and
// interns it, so a repeated tag costs no allocation.
func (d *Decoder) readTag() (string, error) {
	n, err := binary.ReadUvarint(d.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	if n > maxTagLen {
		return "", fmt.Errorf("tracelog: corrupt string length %d", n)
	}
	if uint64(cap(d.tagBuf)) < n {
		d.tagBuf = make([]byte, n)
	}
	buf := d.tagBuf[:n]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	return intern.Bytes(buf), nil
}

// Next decodes the next event into *ev, overwriting all fields. It returns
// io.EOF at a clean end of log; any other error means a corrupt or truncated
// log.
func (d *Decoder) Next(ev *Event) error {
	op, err := d.br.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return err
	}
	d.events++
	switch op {
	case opAccess:
		f, err := d.readFields(9)
		if err != nil {
			return err
		}
		ev.Op = OpAccess
		ev.Access = trace.Access{
			Thread: trace.ThreadID(f[0]), Seg: trace.SegmentID(f[1]),
			Block: trace.BlockID(f[2]), Addr: trace.Addr(f[3]),
			Off: uint32(f[4]), Size: uint32(f[5]),
			Kind: trace.AccessKind(f[6]), Atomic: f[7] != 0,
			Stack: trace.StackID(f[8]),
		}
	case opAcquire, opRelease:
		f, err := d.readFields(4)
		if err != nil {
			return err
		}
		if op == opAcquire {
			ev.Op = OpAcquire
		} else {
			ev.Op = OpRelease
		}
		ev.Thread = trace.ThreadID(f[0])
		ev.Lock = trace.LockID(f[1])
		ev.LockKind = trace.LockKind(f[2])
		ev.Stack = trace.StackID(f[3])
	case opContended:
		f, err := d.readFields(3)
		if err != nil {
			return err
		}
		ev.Op = OpContended
		ev.Thread = trace.ThreadID(f[0])
		ev.Lock = trace.LockID(f[1])
		ev.Stack = trace.StackID(f[2])
	case opAlloc:
		f, err := d.readFields(5)
		if err != nil {
			return err
		}
		tag, err := d.readTag()
		if err != nil {
			return err
		}
		id := trace.BlockID(f[0])
		blk := d.blocks[id]
		if blk == nil {
			blk = d.slab.get()
			d.blocks[id] = blk
		}
		*blk = trace.Block{
			ID: id, Base: trace.Addr(f[1]), Size: uint32(f[2]),
			Thread: trace.ThreadID(f[3]), Stack: trace.StackID(f[4]), Tag: tag,
		}
		ev.Op = OpAlloc
		ev.Block = *blk
	case opFree:
		f, err := d.readFields(3)
		if err != nil {
			return err
		}
		id := trace.BlockID(f[0])
		ev.Op = OpFree
		if blk := d.blocks[id]; blk != nil {
			// Evict: the free event carries the value copy, so nothing needs
			// the table entry afterwards — keeping it (as earlier revisions
			// did) leaks the whole history of freed blocks over a long
			// stream. A later double free of the same ID resolves to the bare
			// ID, which is all the tools use from it (memcheck records the
			// base itself at first free, exactly as it must on the live path).
			ev.Block = *blk
			delete(d.blocks, id)
			d.slab.put(blk)
		} else {
			ev.Block = trace.Block{ID: id}
		}
		ev.Thread = trace.ThreadID(f[1])
		ev.Stack = trace.StackID(f[2])
	case opSegment:
		f, err := d.readFields(3)
		if err != nil {
			return err
		}
		if f[2] > maxSegmentEdges {
			return fmt.Errorf("tracelog: corrupt segment event: %d incoming edges", f[2])
		}
		// The header fields live in the shared scratch array the edge reads
		// below overwrite; take them out first.
		seg, thr, n := trace.SegmentID(f[0]), trace.ThreadID(f[1]), int(f[2])
		d.edges = d.edges[:0]
		for i := 0; i < n; i++ {
			ef, err := d.readFields(2)
			if err != nil {
				return err
			}
			d.edges = append(d.edges, trace.SegmentEdge{From: trace.SegmentID(ef[0]), Kind: trace.EdgeKind(ef[1])})
		}
		ev.Op = OpSegment
		ev.Segment = trace.SegmentStart{Seg: seg, Thread: thr, In: d.edges}
	case opSync:
		f, err := d.readFields(5)
		if err != nil {
			return err
		}
		ev.Op = OpSync
		ev.Sync = trace.SyncEvent{
			Op: trace.SyncOp(f[0]), Obj: trace.SyncID(f[1]),
			Thread: trace.ThreadID(f[2]), Msg: int64(f[3]), Stack: trace.StackID(f[4]),
		}
	case opRequest:
		f, err := d.readFields(6)
		if err != nil {
			return err
		}
		ev.Op = OpRequest
		ev.Request = trace.Request{
			Kind: trace.RequestKind(f[0]), Thread: trace.ThreadID(f[1]),
			Block: trace.BlockID(f[2]), Off: uint32(f[3]), Size: uint32(f[4]),
			Stack: trace.StackID(f[5]),
		}
	case opThreadStart:
		f, err := d.readFields(2)
		if err != nil {
			return err
		}
		ev.Op = OpThreadStart
		ev.Thread = trace.ThreadID(f[0])
		ev.Parent = trace.ThreadID(f[1])
	case opThreadExit:
		f, err := d.readFields(1)
		if err != nil {
			return err
		}
		ev.Op = OpThreadExit
		ev.Thread = trace.ThreadID(f[0])
	default:
		return fmt.Errorf("tracelog: unknown opcode %d", op)
	}
	return nil
}
