package tracelog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Op identifies the kind of a decoded event. The values coincide with the
// on-disk opcodes.
type Op uint8

// Decoded event kinds.
const (
	OpAccess      Op = Op(opAccess)
	OpAcquire     Op = Op(opAcquire)
	OpRelease     Op = Op(opRelease)
	OpContended   Op = Op(opContended)
	OpAlloc       Op = Op(opAlloc)
	OpFree        Op = Op(opFree)
	OpSegment     Op = Op(opSegment)
	OpSync        Op = Op(opSync)
	OpRequest     Op = Op(opRequest)
	OpThreadStart Op = Op(opThreadStart)
	OpThreadExit  Op = Op(opThreadExit)
)

// Event is one decoded log event in a uniform representation. Only the
// fields relevant to Op are meaningful. Holding events as values (rather
// than delivering them straight into sinks, as Replay does) is what lets the
// parallel engine decode a log once and dispatch the same event to several
// shard workers.
type Event struct {
	Op Op
	// Access is set for OpAccess.
	Access trace.Access
	// Block is set for OpAlloc and OpFree. It is a value copy: for OpFree it
	// carries the descriptor of the matching allocation, reconstructed by the
	// Decoder.
	Block trace.Block
	// Segment is set for OpSegment. Its In slice is freshly allocated per
	// event and never reused, so it may be retained (read-only) by consumers.
	Segment trace.SegmentStart
	// Sync is set for OpSync.
	Sync trace.SyncEvent
	// Request is set for OpRequest.
	Request trace.Request
	// Thread is set for OpAcquire, OpRelease, OpContended, OpFree,
	// OpThreadStart and OpThreadExit.
	Thread trace.ThreadID
	// Parent is set for OpThreadStart.
	Parent trace.ThreadID
	// Lock and LockKind are set for OpAcquire, OpRelease and OpContended
	// (LockKind only for the first two).
	Lock     trace.LockID
	LockKind trace.LockKind
	// Stack is set for OpAcquire, OpRelease, OpContended and OpFree.
	Stack trace.StackID
}

// Deliver invokes the Sink callback corresponding to the event. Pointers
// passed to the sink point into the Event itself, so the usual trace.Sink
// contract applies: the sink must not retain them beyond the call.
func (e *Event) Deliver(s trace.Sink) {
	switch e.Op {
	case OpAccess:
		s.Access(&e.Access)
	case OpAcquire:
		s.Acquire(e.Thread, e.Lock, e.LockKind, e.Stack)
	case OpRelease:
		s.Release(e.Thread, e.Lock, e.LockKind, e.Stack)
	case OpContended:
		s.Contended(e.Thread, e.Lock, e.Stack)
	case OpAlloc:
		s.Alloc(&e.Block)
	case OpFree:
		s.Free(&e.Block, e.Thread, e.Stack)
	case OpSegment:
		s.Segment(&e.Segment)
	case OpSync:
		s.Sync(&e.Sync)
	case OpRequest:
		s.Request(&e.Request)
	case OpThreadStart:
		s.ThreadStart(e.Thread, e.Parent)
	case OpThreadExit:
		s.ThreadExit(e.Thread)
	}
}

// Corruption bounds: a decoder must fail cleanly on a corrupt or hostile
// log, never allocate from an attacker-controlled length. The VM caps stacks
// far below these, so no legitimate log comes near them.
const (
	// maxSegmentEdges bounds a segment's incoming-edge count. Real segments
	// have a handful of edges (program order plus create/join/queue/...).
	maxSegmentEdges = 1 << 16
	// maxTagLen bounds an allocation tag's byte length.
	maxTagLen = 1 << 20
)

// Decoder reads a binary trace log event by event. It reconstructs block
// descriptors so that OpFree events carry the matching allocation, exactly
// as Replay does.
type Decoder struct {
	br     *bufio.Reader
	blocks map[trace.BlockID]*trace.Block
	events int64
}

// NewDecoder creates a decoder reading the binary log from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{
		br:     bufio.NewReader(r),
		blocks: make(map[trace.BlockID]*trace.Block),
	}
}

// Events returns the number of events decoded so far, counting an event
// whose payload turned out to be truncated.
func (d *Decoder) Events() int64 { return d.events }

// Next decodes the next event into *ev, overwriting all fields. It returns
// io.EOF at a clean end of log; any other error means a corrupt or truncated
// log.
func (d *Decoder) Next(ev *Event) error {
	op, err := d.br.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return err
	}
	d.events++
	// From here on the event has started: running out of input mid-payload
	// is a truncated log, not a clean end, and must not look like io.EOF.
	readU := func() (uint64, error) {
		v, err := binary.ReadUvarint(d.br)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return v, err
	}
	switch op {
	case opAccess:
		f, err := readN(readU, 9)
		if err != nil {
			return err
		}
		ev.Op = OpAccess
		ev.Access = trace.Access{
			Thread: trace.ThreadID(f[0]), Seg: trace.SegmentID(f[1]),
			Block: trace.BlockID(f[2]), Addr: trace.Addr(f[3]),
			Off: uint32(f[4]), Size: uint32(f[5]),
			Kind: trace.AccessKind(f[6]), Atomic: f[7] != 0,
			Stack: trace.StackID(f[8]),
		}
	case opAcquire, opRelease:
		f, err := readN(readU, 4)
		if err != nil {
			return err
		}
		if op == opAcquire {
			ev.Op = OpAcquire
		} else {
			ev.Op = OpRelease
		}
		ev.Thread = trace.ThreadID(f[0])
		ev.Lock = trace.LockID(f[1])
		ev.LockKind = trace.LockKind(f[2])
		ev.Stack = trace.StackID(f[3])
	case opContended:
		f, err := readN(readU, 3)
		if err != nil {
			return err
		}
		ev.Op = OpContended
		ev.Thread = trace.ThreadID(f[0])
		ev.Lock = trace.LockID(f[1])
		ev.Stack = trace.StackID(f[2])
	case opAlloc:
		f, err := readN(readU, 5)
		if err != nil {
			return err
		}
		tag, err := readString(d.br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		blk := trace.Block{
			ID: trace.BlockID(f[0]), Base: trace.Addr(f[1]), Size: uint32(f[2]),
			Thread: trace.ThreadID(f[3]), Stack: trace.StackID(f[4]), Tag: tag,
		}
		own := blk
		d.blocks[blk.ID] = &own
		ev.Op = OpAlloc
		ev.Block = blk
	case opFree:
		f, err := readN(readU, 3)
		if err != nil {
			return err
		}
		id := trace.BlockID(f[0])
		ev.Op = OpFree
		if blk := d.blocks[id]; blk != nil {
			ev.Block = *blk
			blk.Freed = true
		} else {
			ev.Block = trace.Block{ID: id}
		}
		ev.Thread = trace.ThreadID(f[1])
		ev.Stack = trace.StackID(f[2])
	case opSegment:
		f, err := readN(readU, 3)
		if err != nil {
			return err
		}
		if f[2] > maxSegmentEdges {
			return fmt.Errorf("tracelog: corrupt segment event: %d incoming edges", f[2])
		}
		n := int(f[2])
		edges := make([]trace.SegmentEdge, 0, n)
		for i := 0; i < n; i++ {
			ef, err := readN(readU, 2)
			if err != nil {
				return err
			}
			edges = append(edges, trace.SegmentEdge{From: trace.SegmentID(ef[0]), Kind: trace.EdgeKind(ef[1])})
		}
		ev.Op = OpSegment
		ev.Segment = trace.SegmentStart{Seg: trace.SegmentID(f[0]), Thread: trace.ThreadID(f[1]), In: edges}
	case opSync:
		f, err := readN(readU, 5)
		if err != nil {
			return err
		}
		ev.Op = OpSync
		ev.Sync = trace.SyncEvent{
			Op: trace.SyncOp(f[0]), Obj: trace.SyncID(f[1]),
			Thread: trace.ThreadID(f[2]), Msg: int64(f[3]), Stack: trace.StackID(f[4]),
		}
	case opRequest:
		f, err := readN(readU, 6)
		if err != nil {
			return err
		}
		ev.Op = OpRequest
		ev.Request = trace.Request{
			Kind: trace.RequestKind(f[0]), Thread: trace.ThreadID(f[1]),
			Block: trace.BlockID(f[2]), Off: uint32(f[3]), Size: uint32(f[4]),
			Stack: trace.StackID(f[5]),
		}
	case opThreadStart:
		f, err := readN(readU, 2)
		if err != nil {
			return err
		}
		ev.Op = OpThreadStart
		ev.Thread = trace.ThreadID(f[0])
		ev.Parent = trace.ThreadID(f[1])
	case opThreadExit:
		f, err := readN(readU, 1)
		if err != nil {
			return err
		}
		ev.Op = OpThreadExit
		ev.Thread = trace.ThreadID(f[0])
	default:
		return fmt.Errorf("tracelog: unknown opcode %d", op)
	}
	return nil
}
