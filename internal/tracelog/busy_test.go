package tracelog_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/tracelog"
)

// readBusy writes one error frame with the given payload and decodes it back
// through the response path, as a rejected client would.
func readBusy(t *testing.T, payload string) error {
	t.Helper()
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Error(payload); err != nil {
		t.Fatal(err)
	}
	_, err := tracelog.NewFrameReader(&buf).Response()
	if err == nil {
		t.Fatal("error frame decoded without error")
	}
	return err
}

// TestBusyErrorRoundTrip pins the busy-rejection wire convention: the typed
// error survives the frame round-trip with its reason and retry hint, and
// matches both ErrBusy and ErrRemote so admission-unaware callers keep
// treating it as a remote failure.
func TestBusyErrorRoundTrip(t *testing.T) {
	err := readBusy(t, tracelog.BusyMessage("no analysis slot within 250ms (4 in use)", 1500*time.Millisecond))
	if !errors.Is(err, tracelog.ErrBusy) {
		t.Fatalf("decoded error = %v, want ErrBusy", err)
	}
	if !errors.Is(err, tracelog.ErrRemote) {
		t.Error("busy rejection does not match ErrRemote")
	}
	if d, ok := tracelog.RetryAfterHint(err); !ok || d != 1500*time.Millisecond {
		t.Errorf("RetryAfterHint = (%v, %v), want (1.5s, true)", d, ok)
	}
	if !strings.Contains(err.Error(), "no analysis slot within 250ms") {
		t.Errorf("reason lost in round-trip: %v", err)
	}

	// Without a hint: still busy, no retry-after.
	err = readBusy(t, tracelog.BusyMessage("admission rate 5/s exceeded", 0))
	if !errors.Is(err, tracelog.ErrBusy) {
		t.Fatalf("hintless busy error = %v, want ErrBusy", err)
	}
	if _, ok := tracelog.RetryAfterHint(err); ok {
		t.Error("hintless busy rejection reports a retry-after hint")
	}

	// A plain error frame stays a plain remote error.
	err = readBusy(t, "stream: unexpected EOF")
	if errors.Is(err, tracelog.ErrBusy) {
		t.Errorf("plain remote error matches ErrBusy: %v", err)
	}
	if !errors.Is(err, tracelog.ErrRemote) {
		t.Errorf("plain remote error does not match ErrRemote: %v", err)
	}
}
