package tracelog_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/tracelog"
	"repro/internal/vm"
)

// recordFrameLog records a small guest trace for framing round-trips.
func recordFrameLog(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	v := vm.New(vm.Options{Seed: 3})
	v.AddTool(rec)
	err := v.Run(func(main *vm.Thread) {
		mu := v.NewMutex("m")
		b := main.Alloc(16, "blk")
		w := main.Go("w", func(th *vm.Thread) {
			mu.Lock(th)
			b.Store64(th, 0, 1)
			mu.Unlock(th)
		})
		mu.Lock(main)
		b.Store64(main, 8, 2)
		mu.Unlock(main)
		main.Join(w)
		b.Free(main)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// frameSession builds a framed session stream from a raw log, chunked at the
// given size to exercise events spanning frame boundaries.
func frameSession(t testing.TB, name string, log []byte, chunk int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Hello(name); err != nil {
		t.Fatal(err)
	}
	for len(log) > 0 {
		n := chunk
		if n > len(log) {
			n = len(log)
		}
		if err := fw.Events(log[:n]); err != nil {
			t.Fatal(err)
		}
		log = log[n:]
	}
	if err := fw.End(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeFramed runs a framed stream through handshake + decoder and returns
// the session name, the decoded event count, and the terminal decode error.
func decodeFramed(t testing.TB, stream []byte) (string, int64, error) {
	t.Helper()
	fr := tracelog.NewFrameReader(bytes.NewReader(stream))
	kind, name, err := fr.Handshake()
	if err != nil {
		return "", 0, err
	}
	if kind != tracelog.FrameHello {
		t.Fatalf("handshake kind = %v, want hello", kind)
	}
	dec := tracelog.NewDecoder(fr)
	var ev tracelog.Event
	for {
		err := dec.Next(&ev)
		if err != nil {
			if err == io.EOF {
				return name, dec.Events(), nil
			}
			return name, dec.Events(), err
		}
	}
}

// TestFrameRoundTrip pins that framing is pure transport: any chunking of the
// same log decodes to the same events, and the offline format is exactly one
// events frame (the chunk >= len(log) case).
func TestFrameRoundTrip(t *testing.T) {
	log := recordFrameLog(t)
	raw, err := tracelog.Replay(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, len(log), len(log) * 2} {
		stream := frameSession(t, "s1", log, chunk)
		name, events, err := decodeFramed(t, stream)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if name != "s1" {
			t.Errorf("chunk %d: session name %q", chunk, name)
		}
		if events != raw {
			t.Errorf("chunk %d: %d events, want %d", chunk, events, raw)
		}
	}
	// EncodeFramed is the one-frame shorthand for the same stream.
	enc, err := tracelog.EncodeFramed("s1", log)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, frameSession(t, "s1", log, len(log)+1)) {
		t.Error("EncodeFramed differs from a single-chunk FrameWriter stream")
	}
}

// TestFrameTruncation pins the hardening contract: a framed stream cut
// anywhere — mid-magic, mid-header, mid-payload, or just missing its end
// frame — fails with io.ErrUnexpectedEOF, never a clean EOF, never a hang.
func TestFrameTruncation(t *testing.T) {
	log := recordFrameLog(t)
	stream := frameSession(t, "sess", log, 32)
	for cut := 0; cut < len(stream); cut++ {
		_, _, err := decodeFramed(t, stream[:cut])
		if err == nil {
			t.Fatalf("cut %d/%d: truncated stream decoded cleanly", cut, len(stream))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			// Some cuts corrupt rather than truncate (a torn uvarint can
			// still be a syntax error); both are failures, but a cut that
			// only removes bytes must never read as a clean end.
			continue
		}
	}
}

// TestFrameBadMagic pins rejection of non-framed input.
func TestFrameBadMagic(t *testing.T) {
	for _, in := range [][]byte{
		[]byte("XXXX"),
		[]byte("TLF2rest"),
		recordFrameLog(t), // a raw (unframed) log is not a framed stream
	} {
		fr := tracelog.NewFrameReader(bytes.NewReader(in))
		if _, _, err := fr.Handshake(); err == nil {
			t.Errorf("handshake accepted %q...", in[:4])
		}
	}
}

// TestFrameOversizedClaim pins that hostile length claims are rejected
// before allocation, for both control and events frames.
func TestFrameOversizedClaim(t *testing.T) {
	// hello frame claiming ~1 GiB payload.
	in := append(append([]byte("TLF1"), 1), 0xff, 0xff, 0xff, 0xff, 0x04)
	fr := tracelog.NewFrameReader(bytes.NewReader(in))
	if _, _, err := fr.Handshake(); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("oversized hello claim: err = %v, want limit error", err)
	}
	// events frame (after a valid hello) claiming > MaxFramePayload.
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Hello("x"); err != nil {
		t.Fatal(err)
	}
	evil := append(buf.Bytes(), 2)
	evil = append(evil, 0xff, 0xff, 0xff, 0xff, 0x7f) // ~34 GB claim
	fr = tracelog.NewFrameReader(bytes.NewReader(evil))
	if _, _, err := fr.Handshake(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, fr); err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("oversized events claim: err = %v, want limit error", err)
	}
}

// TestFrameErrorFrame pins that a peer error frame surfaces as ErrRemote.
func TestFrameErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Error("session rejected"); err != nil {
		t.Fatal(err)
	}
	fr := tracelog.NewFrameReader(bytes.NewReader(buf.Bytes()))
	if _, err := fr.Response(); !errors.Is(err, tracelog.ErrRemote) {
		t.Errorf("Response error = %v, want ErrRemote", err)
	}
	// ... and mid-event-stream too.
	var s bytes.Buffer
	fw = tracelog.NewFrameWriter(&s)
	fw.Hello("x")
	fw.Error("died")
	stream := s.Bytes()
	if _, _, err := decodeFramed(t, stream); !errors.Is(err, tracelog.ErrRemote) {
		t.Errorf("stream error frame = %v, want ErrRemote", err)
	}
}

// TestFrameAssignHandshake pins the router→backend session opener: an assign
// frame opens a stream exactly like a hello, carrying the session name, and
// the events behind it decode unchanged.
func TestFrameAssignHandshake(t *testing.T) {
	log := recordFrameLog(t)
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Assign("fwd-7"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Events(log); err != nil {
		t.Fatal(err)
	}
	if err := fw.End(); err != nil {
		t.Fatal(err)
	}
	fr := tracelog.NewFrameReader(bytes.NewReader(buf.Bytes()))
	kind, name, err := fr.Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if kind != tracelog.FrameAssign || name != "fwd-7" {
		t.Fatalf("handshake = (%v, %q), want (assign, fwd-7)", kind, name)
	}
	if _, err := io.Copy(io.Discard, fr); err != nil {
		t.Fatalf("event stream behind assign: %v", err)
	}
}

// TestBackendReportRoundTrip pins the structured response path: payload bytes
// survive verbatim, error frames surface typed, oversized sends are refused
// writer-side.
func TestBackendReportRoundTrip(t *testing.T) {
	payload := []byte{0x01, 0xfe, 0x00, 0x42}
	var buf bytes.Buffer
	if err := tracelog.NewFrameWriter(&buf).BackendReport(payload); err != nil {
		t.Fatal(err)
	}
	got, err := tracelog.NewFrameReader(bytes.NewReader(buf.Bytes())).BackendResponse()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("BackendResponse = %x, want %x", got, payload)
	}

	var ebuf bytes.Buffer
	tracelog.NewFrameWriter(&ebuf).Error("backend lost session")
	if _, err := tracelog.NewFrameReader(bytes.NewReader(ebuf.Bytes())).BackendResponse(); !errors.Is(err, tracelog.ErrRemote) {
		t.Errorf("error frame = %v, want ErrRemote", err)
	}

	if err := tracelog.NewFrameWriter(io.Discard).BackendReport(make([]byte, tracelog.MaxFramePayload+1)); err == nil {
		t.Error("oversized backend report accepted by writer")
	}
}

// TestBackendStatsRoundTrip pins the census exchange: an empty request opens
// the stream, the encoded census comes back verbatim.
func TestBackendStatsRoundTrip(t *testing.T) {
	var req bytes.Buffer
	if err := tracelog.NewFrameWriter(&req).BackendStats(nil); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := tracelog.NewFrameReader(bytes.NewReader(req.Bytes())).Handshake()
	if err != nil {
		t.Fatal(err)
	}
	if kind != tracelog.FrameBackendStats || payload != "" {
		t.Fatalf("handshake = (%v, %q), want (backend-stats, \"\")", kind, payload)
	}

	census := []byte("backend=b1 sessions=3")
	var resp bytes.Buffer
	if err := tracelog.NewFrameWriter(&resp).BackendStats(census); err != nil {
		t.Fatal(err)
	}
	got, err := tracelog.NewFrameReader(bytes.NewReader(resp.Bytes())).BackendStatsResponse()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, census) {
		t.Errorf("BackendStatsResponse = %q, want %q", got, census)
	}
}

// TestCopyFrameVerbatim pins the router pump: copying a whole framed stream
// frame-by-frame reproduces it byte-for-byte, so the backend decodes exactly
// what the client sent.
func TestCopyFrameVerbatim(t *testing.T) {
	log := recordFrameLog(t)
	stream := frameSession(t, "sess", log, 48)

	fr := tracelog.NewFrameReader(bytes.NewReader(stream))
	var out bytes.Buffer
	fw := tracelog.NewFrameWriter(&out)
	for {
		kind, err := tracelog.CopyFrame(fw, fr)
		if err != nil {
			t.Fatal(err)
		}
		if kind == tracelog.FrameEnd {
			break
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), stream) {
		t.Error("copied stream differs from the original")
	}

	// Truncation mid-payload surfaces as io.ErrUnexpectedEOF, and the
	// oversized-claim bound applies before any copying.
	fr = tracelog.NewFrameReader(bytes.NewReader(stream[:len(stream)-3]))
	for {
		kind, err := tracelog.CopyFrame(tracelog.NewFrameWriter(io.Discard), fr)
		if err != nil {
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("truncated copy error = %v, want unexpected EOF", err)
			}
			break
		}
		if kind == tracelog.FrameEnd {
			t.Fatal("truncated stream copied to a clean end")
		}
	}
}

// TestFrameResponseRoundTrip pins the report response path.
func TestFrameResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	const report = "== 3 distinct location(s)\n"
	if err := fw.Report(report); err != nil {
		t.Fatal(err)
	}
	fr := tracelog.NewFrameReader(bytes.NewReader(buf.Bytes()))
	got, err := fr.Response()
	if err != nil {
		t.Fatal(err)
	}
	if got != report {
		t.Errorf("Response = %q, want %q", got, report)
	}
}
