package tracelog

// Stream metadata: the interned stack and block tables that let a receiver
// resolve warning sites the way an in-process run resolves them against the
// VM. The binary event log deliberately carries only interned IDs (that is
// what keeps recording cheap), which meant live ingest sessions rendered
// reports without call stacks. A metadata frame closes that gap: the client
// dumps its tables into the stream — once up front, or incrementally as its
// tables grow — and the server accumulates them into a TableResolver, so
// live reports resolve stacks and blocks exactly like an offline replay with
// the recording VM in hand.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Metadata decoding bounds, in the spirit of the decoder's corruption bounds:
// no allocation from a hostile claimed count or length.
const (
	// maxStackFrames bounds one interned stack's frame count. Guest stacks
	// are a handful of frames deep; the VM caps them far below this.
	maxStackFrames = 1 << 12
	// metadataChunk is the soft payload target the writer packs entries into
	// before starting the next metadata frame; it stays well under the
	// reader's control-payload bound.
	metadataChunk = 256 << 10
	// maxMetadataEntry is the hard bound on one encoded table entry: an
	// entry must fit a single metadata frame (control-payload limit, minus
	// room for the chunk's two table counts). The encoder drops larger
	// entries — the receiver simply cannot resolve that one ID, which beats
	// failing the whole session over a pathological tag or frame string.
	maxMetadataEntry = maxControlPayload - 16
)

// Metadata carries interned stack and block tables for one trace stream.
// Every table entry is self-contained, so a stream may carry any number of
// metadata frames, each holding any subset of the tables; the receiver
// accumulates them (later entries for the same ID overwrite earlier ones).
type Metadata struct {
	// Stacks maps an interned stack ID to its frames, innermost last — the
	// same shape trace.Resolver.Stack returns.
	Stacks map[trace.StackID][]trace.Frame
	// Blocks maps a block ID to its allocation descriptor (tag, size,
	// allocating thread and stack), the data trace.Resolver.BlockInfo serves.
	Blocks map[trace.BlockID]trace.Block
}

// Empty reports whether the metadata carries no entries at all.
func (md *Metadata) Empty() bool {
	return md == nil || (len(md.Stacks) == 0 && len(md.Blocks) == 0)
}

// appendMetaString appends a length-prefixed string.
func appendMetaString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeStackEntry and encodeBlockEntry are the per-entry encodings. They
// are shared between the chunk writer and TableResolver.AddMetadata so that
// "which entries are sendable" (maxMetadataEntry) is decided identically on
// both sides: an entry the wire would drop is also dropped from a resolver
// built directly from the same Metadata, keeping offline reference reports
// byte-identical to live ones.
func encodeStackEntry(id trace.StackID, frames []trace.Frame) []byte {
	e := binary.AppendUvarint(nil, uint64(id))
	e = binary.AppendUvarint(e, uint64(len(frames)))
	for _, f := range frames {
		e = appendMetaString(e, f.Fn)
		e = appendMetaString(e, f.File)
		e = binary.AppendUvarint(e, uint64(f.Line))
	}
	return e
}

func encodeBlockEntry(id trace.BlockID, blk trace.Block) []byte {
	e := binary.AppendUvarint(nil, uint64(id))
	e = binary.AppendUvarint(e, uint64(blk.Base))
	e = binary.AppendUvarint(e, uint64(blk.Size))
	e = binary.AppendUvarint(e, uint64(blk.Thread))
	e = binary.AppendUvarint(e, uint64(blk.Stack))
	e = binary.AppendUvarint(e, b2u(blk.Freed))
	return appendMetaString(e, blk.Tag)
}

// encodeMetadataChunks serialises the tables into one or more standalone
// frame payloads of roughly metadataChunk bytes each. Entries are emitted in
// sorted ID order, so the encoding is deterministic.
func encodeMetadataChunks(md *Metadata) [][]byte {
	stackIDs := make([]trace.StackID, 0, len(md.Stacks))
	for id := range md.Stacks {
		stackIDs = append(stackIDs, id)
	}
	sort.Slice(stackIDs, func(i, j int) bool { return stackIDs[i] < stackIDs[j] })
	blockIDs := make([]trace.BlockID, 0, len(md.Blocks))
	for id := range md.Blocks {
		blockIDs = append(blockIDs, id)
	}
	sort.Slice(blockIDs, func(i, j int) bool { return blockIDs[i] < blockIDs[j] })

	var chunks [][]byte
	var stacks, blocks [][]byte // encoded entries for the current chunk
	size := 0
	flush := func() {
		if len(stacks) == 0 && len(blocks) == 0 {
			return
		}
		payload := binary.AppendUvarint(nil, uint64(len(stacks)))
		for _, e := range stacks {
			payload = append(payload, e...)
		}
		payload = binary.AppendUvarint(payload, uint64(len(blocks)))
		for _, e := range blocks {
			payload = append(payload, e...)
		}
		chunks = append(chunks, payload)
		stacks, blocks, size = nil, nil, 0
	}
	add := func(entry []byte, block bool) {
		if len(entry) > maxMetadataEntry {
			return // unsendable entry; see maxMetadataEntry
		}
		// Flush before appending, so a chunk never grows past the soft
		// target by more than one entry and a single large (but legal)
		// entry travels in its own frame, under the frame layer's bound.
		if size > 0 && size+len(entry) > metadataChunk {
			flush()
		}
		if block {
			blocks = append(blocks, entry)
		} else {
			stacks = append(stacks, entry)
		}
		size += len(entry)
	}

	for _, id := range stackIDs {
		add(encodeStackEntry(id, md.Stacks[id]), false)
	}
	for _, id := range blockIDs {
		add(encodeBlockEntry(id, md.Blocks[id]), true)
	}
	flush()
	return chunks
}

// decodeMetadata parses one metadata frame payload. It never allocates from
// a claimed count: counts are sanity-checked against the bytes actually
// remaining (every entry consumes at least one byte).
func decodeMetadata(payload []byte) (*Metadata, error) {
	r := bytes.NewReader(payload)
	readU := func() (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("tracelog: corrupt metadata frame: %w", io.ErrUnexpectedEOF)
		}
		return v, nil
	}
	readS := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > maxTagLen || n > uint64(r.Len()) {
			return "", fmt.Errorf("tracelog: corrupt metadata string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", fmt.Errorf("tracelog: corrupt metadata frame: %w", io.ErrUnexpectedEOF)
		}
		return string(buf), nil
	}

	md := &Metadata{
		Stacks: make(map[trace.StackID][]trace.Frame),
		Blocks: make(map[trace.BlockID]trace.Block),
	}
	nstacks, err := readU()
	if err != nil {
		return nil, err
	}
	if nstacks > uint64(r.Len()) {
		return nil, fmt.Errorf("tracelog: metadata claims %d stacks in %d bytes", nstacks, r.Len())
	}
	for i := uint64(0); i < nstacks; i++ {
		id, err := readU()
		if err != nil {
			return nil, err
		}
		nframes, err := readU()
		if err != nil {
			return nil, err
		}
		if nframes > maxStackFrames {
			return nil, fmt.Errorf("tracelog: metadata stack with %d frames", nframes)
		}
		frames := make([]trace.Frame, 0, min(int(nframes), 64))
		for j := uint64(0); j < nframes; j++ {
			fn, err := readS()
			if err != nil {
				return nil, err
			}
			file, err := readS()
			if err != nil {
				return nil, err
			}
			line, err := readU()
			if err != nil {
				return nil, err
			}
			frames = append(frames, trace.Frame{Fn: fn, File: file, Line: int(line)})
		}
		md.Stacks[trace.StackID(id)] = frames
	}
	nblocks, err := readU()
	if err != nil {
		return nil, err
	}
	if nblocks > uint64(r.Len()) {
		return nil, fmt.Errorf("tracelog: metadata claims %d blocks in %d bytes", nblocks, r.Len())
	}
	for i := uint64(0); i < nblocks; i++ {
		f, err := readN(readU, 6)
		if err != nil {
			return nil, err
		}
		tag, err := readS()
		if err != nil {
			return nil, err
		}
		id := trace.BlockID(f[0])
		md.Blocks[id] = trace.Block{
			ID: id, Base: trace.Addr(f[1]), Size: uint32(f[2]),
			Thread: trace.ThreadID(f[3]), Stack: trace.StackID(f[4]),
			Freed: f[5] != 0, Tag: tag,
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("tracelog: %d trailing byte(s) after metadata tables", r.Len())
	}
	return md, nil
}

// TableResolver is a trace.Resolver backed by tables received in metadata
// frames — the receiving side's stand-in for the VM a live client has in
// hand. It starts empty (resolving nothing, exactly like a nil resolver)
// and accumulates every metadata frame the stream carries.
//
// It is safe for concurrent use: the connection goroutine merges tables
// while report formatting resolves against them.
type TableResolver struct {
	mu     sync.RWMutex
	stacks map[trace.StackID][]trace.Frame
	blocks map[trace.BlockID]*trace.Block
}

// NewTableResolver creates an empty resolver.
func NewTableResolver() *TableResolver {
	return &TableResolver{
		stacks: make(map[trace.StackID][]trace.Frame),
		blocks: make(map[trace.BlockID]*trace.Block),
	}
}

// AddMetadata merges the tables of one metadata payload; later entries for
// the same ID overwrite earlier ones. Entries too large for any metadata
// frame are skipped, mirroring the wire encoder exactly — a resolver built
// directly from captured Metadata holds the same tables a peer receives
// through frames.
func (r *TableResolver) AddMetadata(md *Metadata) {
	if md.Empty() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, frames := range md.Stacks {
		if len(encodeStackEntry(id, frames)) > maxMetadataEntry {
			continue
		}
		r.stacks[id] = frames
	}
	for id, blk := range md.Blocks {
		if len(encodeBlockEntry(id, blk)) > maxMetadataEntry {
			continue
		}
		cp := blk
		r.blocks[id] = &cp
	}
}

// Stack implements trace.Resolver.
func (r *TableResolver) Stack(id trace.StackID) []trace.Frame {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stacks[id]
}

// BlockInfo implements trace.Resolver.
func (r *TableResolver) BlockInfo(id trace.BlockID) *trace.Block {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.blocks[id]
}

// Counts returns the number of resolvable stacks and blocks.
func (r *TableResolver) Counts() (stacks, blocks int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.stacks), len(r.blocks)
}

var _ trace.Resolver = (*TableResolver)(nil)
