package tracelog

// Stream metadata: the interned stack and block tables that let a receiver
// resolve warning sites the way an in-process run resolves them against the
// VM. The binary event log deliberately carries only interned IDs (that is
// what keeps recording cheap), which meant live ingest sessions rendered
// reports without call stacks. A metadata frame closes that gap: the client
// dumps its tables into the stream — once up front, or incrementally as its
// tables grow — and the server accumulates them into a TableResolver, so
// live reports resolve stacks and blocks exactly like an offline replay with
// the recording VM in hand.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/intern"
	"repro/internal/trace"
)

// Metadata decoding bounds, in the spirit of the decoder's corruption bounds:
// no allocation from a hostile claimed count or length.
const (
	// maxStackFrames bounds one interned stack's frame count. Guest stacks
	// are a handful of frames deep; the VM caps them far below this.
	maxStackFrames = 1 << 12
	// metadataChunk is the soft payload target the writer packs entries into
	// before starting the next metadata frame; it stays well under the
	// reader's control-payload bound.
	metadataChunk = 256 << 10
	// maxMetadataEntry is the hard bound on one encoded table entry: an
	// entry must fit a single metadata frame (control-payload limit, minus
	// room for the chunk's two table counts). The encoder drops larger
	// entries — the receiver simply cannot resolve that one ID, which beats
	// failing the whole session over a pathological tag or frame string.
	maxMetadataEntry = maxControlPayload - 16
)

// Metadata carries interned stack and block tables for one trace stream.
// Every table entry is self-contained, so a stream may carry any number of
// metadata frames, each holding any subset of the tables; the receiver
// accumulates them (later entries for the same ID overwrite earlier ones).
type Metadata struct {
	// Stacks maps an interned stack ID to its frames, innermost last — the
	// same shape trace.Resolver.Stack returns.
	Stacks map[trace.StackID][]trace.Frame
	// Blocks maps a block ID to its allocation descriptor (tag, size,
	// allocating thread and stack), the data trace.Resolver.BlockInfo serves.
	Blocks map[trace.BlockID]trace.Block

	// sendable records that every entry is known to fit a metadata frame
	// (≤ maxMetadataEntry). The decoder sets it from measured wire sizes;
	// for hand-built Metadata it stays false and TableResolver.AddMetadata
	// verifies by encoding.
	sendable bool
}

// Empty reports whether the metadata carries no entries at all.
func (md *Metadata) Empty() bool {
	return md == nil || (len(md.Stacks) == 0 && len(md.Blocks) == 0)
}

// appendMetaString appends a length-prefixed string.
func appendMetaString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeStackEntry and encodeBlockEntry are the per-entry encodings. They
// are shared between the chunk writer and TableResolver.AddMetadata so that
// "which entries are sendable" (maxMetadataEntry) is decided identically on
// both sides: an entry the wire would drop is also dropped from a resolver
// built directly from the same Metadata, keeping offline reference reports
// byte-identical to live ones.
func encodeStackEntry(id trace.StackID, frames []trace.Frame) []byte {
	e := binary.AppendUvarint(nil, uint64(id))
	e = binary.AppendUvarint(e, uint64(len(frames)))
	for _, f := range frames {
		e = appendMetaString(e, f.Fn)
		e = appendMetaString(e, f.File)
		e = binary.AppendUvarint(e, uint64(f.Line))
	}
	return e
}

func encodeBlockEntry(id trace.BlockID, blk trace.Block) []byte {
	e := binary.AppendUvarint(nil, uint64(id))
	e = binary.AppendUvarint(e, uint64(blk.Base))
	e = binary.AppendUvarint(e, uint64(blk.Size))
	e = binary.AppendUvarint(e, uint64(blk.Thread))
	e = binary.AppendUvarint(e, uint64(blk.Stack))
	e = binary.AppendUvarint(e, b2u(blk.Freed))
	return appendMetaString(e, blk.Tag)
}

// encodeMetadataChunks serialises the tables into one or more standalone
// frame payloads of roughly metadataChunk bytes each. Entries are emitted in
// sorted ID order, so the encoding is deterministic.
func encodeMetadataChunks(md *Metadata) [][]byte {
	stackIDs := make([]trace.StackID, 0, len(md.Stacks))
	for id := range md.Stacks {
		stackIDs = append(stackIDs, id)
	}
	sort.Slice(stackIDs, func(i, j int) bool { return stackIDs[i] < stackIDs[j] })
	blockIDs := make([]trace.BlockID, 0, len(md.Blocks))
	for id := range md.Blocks {
		blockIDs = append(blockIDs, id)
	}
	sort.Slice(blockIDs, func(i, j int) bool { return blockIDs[i] < blockIDs[j] })

	var chunks [][]byte
	var stacks, blocks [][]byte // encoded entries for the current chunk
	size := 0
	flush := func() {
		if len(stacks) == 0 && len(blocks) == 0 {
			return
		}
		payload := binary.AppendUvarint(nil, uint64(len(stacks)))
		for _, e := range stacks {
			payload = append(payload, e...)
		}
		payload = binary.AppendUvarint(payload, uint64(len(blocks)))
		for _, e := range blocks {
			payload = append(payload, e...)
		}
		chunks = append(chunks, payload)
		stacks, blocks, size = nil, nil, 0
	}
	add := func(entry []byte, block bool) {
		if len(entry) > maxMetadataEntry {
			return // unsendable entry; see maxMetadataEntry
		}
		// Flush before appending, so a chunk never grows past the soft
		// target by more than one entry and a single large (but legal)
		// entry travels in its own frame, under the frame layer's bound.
		if size > 0 && size+len(entry) > metadataChunk {
			flush()
		}
		if block {
			blocks = append(blocks, entry)
		} else {
			stacks = append(stacks, entry)
		}
		size += len(entry)
	}

	for _, id := range stackIDs {
		add(encodeStackEntry(id, md.Stacks[id]), false)
	}
	for _, id := range blockIDs {
		add(encodeBlockEntry(id, md.Blocks[id]), true)
	}
	flush()
	return chunks
}

// decodeMetadata parses one metadata frame payload. It never allocates from
// a claimed count: counts are sanity-checked against the bytes actually
// remaining (every entry consumes at least one byte). Strings are interned
// through the process-wide table, so the symbol vocabulary shared by
// concurrent sessions from the same instrumented binary is stored once.
func decodeMetadata(payload []byte) (*Metadata, error) {
	r := bytes.NewReader(payload)
	readU := func() (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("tracelog: corrupt metadata frame: %w", io.ErrUnexpectedEOF)
		}
		return v, nil
	}
	var sbuf []byte
	readS := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > maxTagLen || n > uint64(r.Len()) {
			return "", fmt.Errorf("tracelog: corrupt metadata string length %d", n)
		}
		if uint64(cap(sbuf)) < n {
			sbuf = make([]byte, n)
		}
		sbuf = sbuf[:n]
		if _, err := io.ReadFull(r, sbuf); err != nil {
			return "", fmt.Errorf("tracelog: corrupt metadata frame: %w", io.ErrUnexpectedEOF)
		}
		return intern.Bytes(sbuf), nil
	}

	md := &Metadata{
		Stacks:   make(map[trace.StackID][]trace.Frame),
		Blocks:   make(map[trace.BlockID]trace.Block),
		sendable: true,
	}
	// An entry's wire size is the bytes the reader consumed for it; if any
	// entry exceeds maxMetadataEntry (possible only from a foreign encoder —
	// ours never emits one), the fragment loses its sendable mark and
	// AddMetadata re-filters it.
	entryStart := 0
	entryDone := func() {
		if entryStart-r.Len() > maxMetadataEntry {
			md.sendable = false
		}
	}
	nstacks, err := readU()
	if err != nil {
		return nil, err
	}
	if nstacks > uint64(r.Len()) {
		return nil, fmt.Errorf("tracelog: metadata claims %d stacks in %d bytes", nstacks, r.Len())
	}
	for i := uint64(0); i < nstacks; i++ {
		entryStart = r.Len()
		id, err := readU()
		if err != nil {
			return nil, err
		}
		nframes, err := readU()
		if err != nil {
			return nil, err
		}
		if nframes > maxStackFrames {
			return nil, fmt.Errorf("tracelog: metadata stack with %d frames", nframes)
		}
		frames := make([]trace.Frame, 0, min(int(nframes), 64))
		for j := uint64(0); j < nframes; j++ {
			fn, err := readS()
			if err != nil {
				return nil, err
			}
			file, err := readS()
			if err != nil {
				return nil, err
			}
			line, err := readU()
			if err != nil {
				return nil, err
			}
			frames = append(frames, trace.Frame{Fn: fn, File: file, Line: int(line)})
		}
		md.Stacks[trace.StackID(id)] = frames
		entryDone()
	}
	nblocks, err := readU()
	if err != nil {
		return nil, err
	}
	if nblocks > uint64(r.Len()) {
		return nil, fmt.Errorf("tracelog: metadata claims %d blocks in %d bytes", nblocks, r.Len())
	}
	for i := uint64(0); i < nblocks; i++ {
		entryStart = r.Len()
		f, err := readN(readU, 6)
		if err != nil {
			return nil, err
		}
		tag, err := readS()
		if err != nil {
			return nil, err
		}
		id := trace.BlockID(f[0])
		md.Blocks[id] = trace.Block{
			ID: id, Base: trace.Addr(f[1]), Size: uint32(f[2]),
			Thread: trace.ThreadID(f[3]), Stack: trace.StackID(f[4]),
			Freed: f[5] != 0, Tag: tag,
		}
		entryDone()
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("tracelog: %d trailing byte(s) after metadata tables", r.Len())
	}
	return md, nil
}

// payloadCache dedupes decoded metadata payloads process-wide, keyed by
// content hash. N sessions streaming from the same instrumented binary send
// byte-identical table dumps; each payload is decoded once and every
// session's TableResolver shares the one immutable fragment instead of
// holding its own copy of the tables. Like the intern table it is
// deliberately append-only: distinct payloads are bounded by the distinct
// binaries (and table-growth increments) seen, not by session count or
// event volume. Failed decodes are never cached — a corrupt payload is
// re-reported per stream.
var payloadCache = struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*Metadata
}{m: make(map[[sha256.Size]byte]*Metadata)}

// decodeMetadataShared is decodeMetadata behind the process-wide payload
// cache. The returned Metadata is shared across sessions and must be treated
// as immutable.
func decodeMetadataShared(payload []byte) (*Metadata, error) {
	key := sha256.Sum256(payload)
	payloadCache.mu.Lock()
	md, ok := payloadCache.m[key]
	payloadCache.mu.Unlock()
	if ok {
		return md, nil
	}
	md, err := decodeMetadata(payload)
	if err != nil {
		return nil, err
	}
	payloadCache.mu.Lock()
	if prev, ok := payloadCache.m[key]; ok {
		md = prev // lost a decode race; share the winner
	} else {
		payloadCache.m[key] = md
	}
	payloadCache.mu.Unlock()
	return md, nil
}

// TableResolver is a trace.Resolver backed by tables received in metadata
// frames — the receiving side's stand-in for the VM a live client has in
// hand. It starts empty (resolving nothing, exactly like a nil resolver)
// and accumulates every metadata frame the stream carries.
//
// It does not copy tables: each AddMetadata retains the Metadata fragment
// itself, and lookups walk the fragments newest-first so a later fragment's
// entry overrides an earlier one's. Combined with the process-wide payload
// cache, N concurrent sessions from one instrumented binary resolve against
// a single shared table copy instead of each re-building its own under its
// own lock. The flip side is a contract: a Metadata passed to AddMetadata
// must not be mutated afterwards.
//
// It is safe for concurrent use: the connection goroutine merges tables
// while report formatting resolves against them.
type TableResolver struct {
	mu    sync.RWMutex
	frags []*Metadata // shared, immutable; only sendable entries
}

// NewTableResolver creates an empty resolver.
func NewTableResolver() *TableResolver {
	return &TableResolver{}
}

// AddMetadata merges the tables of one metadata payload; later entries for
// the same ID overwrite earlier ones. The fragment is retained, not copied:
// md must not be mutated after the call. Entries too large for any metadata
// frame are skipped, mirroring the wire encoder exactly — a resolver built
// directly from captured Metadata holds the same tables a peer receives
// through frames.
func (r *TableResolver) AddMetadata(md *Metadata) {
	if md.Empty() {
		return
	}
	frag := sendableFragment(md)
	if frag.Empty() {
		return
	}
	r.mu.Lock()
	r.frags = append(r.frags, frag)
	r.mu.Unlock()
}

// sendableFragment returns md itself when every entry fits a metadata frame
// (always true for wire-decoded fragments, which carry the decoder's
// sendable mark), else a filtered copy without the unsendable entries. Only
// the copy path allocates, and only for hand-built tables holding an entry
// the wire could not deliver anyway.
func sendableFragment(md *Metadata) *Metadata {
	if md.sendable {
		return md
	}
	oversized := false
	for id, frames := range md.Stacks {
		if len(encodeStackEntry(id, frames)) > maxMetadataEntry {
			oversized = true
			break
		}
	}
	if !oversized {
		for id, blk := range md.Blocks {
			if len(encodeBlockEntry(id, blk)) > maxMetadataEntry {
				oversized = true
				break
			}
		}
	}
	if !oversized {
		return md
	}
	cp := &Metadata{
		Stacks:   make(map[trace.StackID][]trace.Frame, len(md.Stacks)),
		Blocks:   make(map[trace.BlockID]trace.Block, len(md.Blocks)),
		sendable: true,
	}
	for id, frames := range md.Stacks {
		if len(encodeStackEntry(id, frames)) <= maxMetadataEntry {
			cp.Stacks[id] = frames
		}
	}
	for id, blk := range md.Blocks {
		if len(encodeBlockEntry(id, blk)) <= maxMetadataEntry {
			cp.Blocks[id] = blk
		}
	}
	return cp
}

// Stack implements trace.Resolver.
func (r *TableResolver) Stack(id trace.StackID) []trace.Frame {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := len(r.frags) - 1; i >= 0; i-- {
		if frames, ok := r.frags[i].Stacks[id]; ok {
			return frames
		}
	}
	return nil
}

// BlockInfo implements trace.Resolver. The returned descriptor is the
// caller's to keep: it is copied out of the shared fragment.
func (r *TableResolver) BlockInfo(id trace.BlockID) *trace.Block {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := len(r.frags) - 1; i >= 0; i-- {
		if blk, ok := r.frags[i].Blocks[id]; ok {
			cp := blk
			return &cp
		}
	}
	return nil
}

// Counts returns the number of resolvable stacks and blocks — the size of
// the ID union across fragments, so repeated deliveries of one table do not
// inflate it.
func (r *TableResolver) Counts() (stacks, blocks int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ss := make(map[trace.StackID]struct{})
	bs := make(map[trace.BlockID]struct{})
	for _, f := range r.frags {
		for id := range f.Stacks {
			ss[id] = struct{}{}
		}
		for id := range f.Blocks {
			bs[id] = struct{}{}
		}
	}
	return len(ss), len(bs)
}

var _ trace.Resolver = (*TableResolver)(nil)
