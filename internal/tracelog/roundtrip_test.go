package tracelog

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// captureSink renders every callback's encoded payload to a canonical
// string, so a recorded-then-replayed stream can be compared field by field
// against direct delivery.
type captureSink struct {
	got []string
}

func (c *captureSink) ToolName() string { return "capture" }

func (c *captureSink) Access(a *trace.Access) {
	c.got = append(c.got, fmt.Sprintf("access t=%d seg=%d blk=%d addr=%#x off=%d size=%d kind=%d atomic=%v stack=%d",
		a.Thread, a.Seg, a.Block, a.Addr, a.Off, a.Size, a.Kind, a.Atomic, a.Stack))
}

func (c *captureSink) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, s trace.StackID) {
	c.got = append(c.got, fmt.Sprintf("acquire t=%d l=%d k=%d stack=%d", t, l, k, s))
}

func (c *captureSink) Contended(t trace.ThreadID, l trace.LockID, s trace.StackID) {
	c.got = append(c.got, fmt.Sprintf("contended t=%d l=%d stack=%d", t, l, s))
}

func (c *captureSink) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, s trace.StackID) {
	c.got = append(c.got, fmt.Sprintf("release t=%d l=%d k=%d stack=%d", t, l, k, s))
}

func (c *captureSink) Alloc(b *trace.Block) {
	c.got = append(c.got, fmt.Sprintf("alloc id=%d base=%#x size=%d tag=%q t=%d stack=%d",
		b.ID, b.Base, b.Size, b.Tag, b.Thread, b.Stack))
}

func (c *captureSink) Free(b *trace.Block, t trace.ThreadID, s trace.StackID) {
	// Only the encoded fields: the replayed descriptor is reconstructed.
	c.got = append(c.got, fmt.Sprintf("free id=%d t=%d stack=%d", b.ID, t, s))
}

func (c *captureSink) Segment(ss *trace.SegmentStart) {
	line := fmt.Sprintf("segment seg=%d t=%d in=[", ss.Seg, ss.Thread)
	for _, e := range ss.In {
		line += fmt.Sprintf("(%d,%d)", e.From, e.Kind)
	}
	c.got = append(c.got, line+"]")
}

func (c *captureSink) Sync(ev *trace.SyncEvent) {
	c.got = append(c.got, fmt.Sprintf("sync op=%d obj=%d t=%d msg=%d stack=%d",
		ev.Op, ev.Obj, ev.Thread, ev.Msg, ev.Stack))
}

func (c *captureSink) Request(r *trace.Request) {
	c.got = append(c.got, fmt.Sprintf("request kind=%d t=%d blk=%d off=%d size=%d stack=%d",
		r.Kind, r.Thread, r.Block, r.Off, r.Size, r.Stack))
}

func (c *captureSink) ThreadStart(t, parent trace.ThreadID) {
	c.got = append(c.got, fmt.Sprintf("thread-start t=%d parent=%d", t, parent))
}

func (c *captureSink) ThreadExit(t trace.ThreadID) {
	c.got = append(c.got, fmt.Sprintf("thread-exit t=%d", t))
}

var _ trace.Sink = (*captureSink)(nil)

// allOpcodeEvents delivers one event of every opcode (two for the
// acquire/release pair) with distinctive non-zero field values, including a
// non-ASCII allocation tag and a multi-edge segment.
func allOpcodeEvents(s trace.Sink) {
	s.ThreadStart(2, 1)
	s.Segment(&trace.SegmentStart{Seg: 5, Thread: 2, In: []trace.SegmentEdge{
		{From: 1, Kind: trace.Create}, {From: 3, Kind: trace.Queue},
	}})
	s.Acquire(2, 7, trace.RLock, 11)
	s.Contended(3, 7, 12)
	s.Release(2, 7, trace.RLock, 13)
	s.Alloc(&trace.Block{ID: 9, Base: 0xdead_beef, Size: 48, Tag: "obj:Größe", Thread: 2, Stack: 14})
	s.Access(&trace.Access{Thread: 2, Seg: 5, Block: 9, Addr: 0xdead_beef + 8, Off: 8, Size: 4,
		Kind: trace.Write, Atomic: true, Stack: 15})
	s.Sync(&trace.SyncEvent{Op: trace.QueueGet, Obj: 3, Thread: 2, Msg: 77, Stack: 16})
	s.Request(&trace.Request{Kind: trace.ReqBenign, Thread: 2, Block: 9, Off: 4, Size: 16, Stack: 17})
	s.Free(&trace.Block{ID: 9}, 3, 18)
	s.ThreadExit(2)
}

// TestAllOpcodesRoundTrip asserts that every opcode survives encode→decode
// bit-identically: the replayed callback sequence equals direct delivery.
func TestAllOpcodesRoundTrip(t *testing.T) {
	var want captureSink
	allOpcodeEvents(&want)

	var log bytes.Buffer
	rec := NewRecorder(&log)
	allOpcodeEvents(rec)
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	var got captureSink
	events, err := Replay(bytes.NewReader(log.Bytes()), &got)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if events != rec.Events() {
		t.Errorf("replayed %d events, recorded %d", events, rec.Events())
	}
	if len(got.got) != len(want.got) {
		t.Fatalf("replayed %d callbacks, want %d", len(got.got), len(want.got))
	}
	for i := range want.got {
		if got.got[i] != want.got[i] {
			t.Errorf("event %d:\n got %s\nwant %s", i, got.got[i], want.got[i])
		}
	}
}

// TestEveryOpcodeTruncationFails replays each opcode's encoding with the
// last byte cut off; every case must surface an error rather than silently
// succeed or hang.
func TestEveryOpcodeTruncationFails(t *testing.T) {
	singles := map[string]func(trace.Sink){
		"thread-start": func(s trace.Sink) { s.ThreadStart(200, 1) },
		"thread-exit":  func(s trace.Sink) { s.ThreadExit(200) },
		"segment": func(s trace.Sink) {
			s.Segment(&trace.SegmentStart{Seg: 300, Thread: 2, In: []trace.SegmentEdge{{From: 299, Kind: trace.Program}}})
		},
		"acquire":   func(s trace.Sink) { s.Acquire(2, 300, trace.WLock, 400) },
		"release":   func(s trace.Sink) { s.Release(2, 300, trace.WLock, 400) },
		"contended": func(s trace.Sink) { s.Contended(2, 300, 400) },
		"alloc":     func(s trace.Sink) { s.Alloc(&trace.Block{ID: 300, Base: 0x1000, Size: 8, Tag: "tag"}) },
		"free":      func(s trace.Sink) { s.Free(&trace.Block{ID: 300}, 2, 400) },
		"access":    func(s trace.Sink) { s.Access(&trace.Access{Thread: 2, Seg: 3, Block: 300, Size: 4, Stack: 400}) },
		"sync":      func(s trace.Sink) { s.Sync(&trace.SyncEvent{Op: trace.SemPost, Obj: 300, Thread: 2, Stack: 400}) },
		"request": func(s trace.Sink) {
			s.Request(&trace.Request{Kind: trace.ReqCleanMemory, Thread: 2, Block: 300, Size: 4})
		},
	}
	for name, emit := range singles {
		var log bytes.Buffer
		rec := NewRecorder(&log)
		emit(rec)
		if err := rec.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", name, err)
		}
		if log.Len() < 2 {
			t.Fatalf("%s: implausibly small encoding (%d bytes)", name, log.Len())
		}
		truncated := log.Bytes()[:log.Len()-1]
		if _, err := Replay(bytes.NewReader(truncated), trace.BaseSink{}); err == nil {
			t.Errorf("%s: truncated event replayed without error", name)
		}
	}
}
