package tracelog_test

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tracelog"
)

// sampleMetadata builds a small two-stack, two-block table set.
func sampleMetadata() *tracelog.Metadata {
	return &tracelog.Metadata{
		Stacks: map[trace.StackID][]trace.Frame{
			1: {{Fn: "main", File: "main.cpp", Line: 10}, {Fn: "worker", File: "pool.cpp", Line: 42}},
			7: {{Fn: "handler", File: "sip.cpp", Line: 333}},
		},
		Blocks: map[trace.BlockID]trace.Block{
			1: {ID: 1, Base: 0x1000_0000, Size: 64, Thread: 2, Stack: 1, Tag: "obj:Request"},
			3: {ID: 3, Base: 0x1000_0400, Size: 16, Thread: 1, Stack: 7, Freed: true, Tag: "string-rep"},
		},
	}
}

// TestMetadataRoundTrip pins that tables written as metadata frames come back
// intact through the frame reader's accumulated TableResolver, with the
// event payload around them undisturbed.
func TestMetadataRoundTrip(t *testing.T) {
	md := sampleMetadata()
	log := recordFrameLog(t)
	framed, err := tracelog.EncodeFramedMeta("meta", md, log)
	if err != nil {
		t.Fatal(err)
	}

	fr := tracelog.NewFrameReader(bytes.NewReader(framed))
	kind, name, err := fr.Handshake()
	if err != nil || kind != tracelog.FrameHello || name != "meta" {
		t.Fatalf("handshake = %v %q %v", kind, name, err)
	}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	if !bytes.Equal(got, log) {
		t.Error("events payload differs after interleaved metadata frames")
	}
	res := fr.Tables()
	if s, b := res.Counts(); s != len(md.Stacks) || b != len(md.Blocks) {
		t.Fatalf("resolver holds %d stacks / %d blocks, want %d / %d", s, b, len(md.Stacks), len(md.Blocks))
	}
	for id, frames := range md.Stacks {
		if !reflect.DeepEqual(res.Stack(id), frames) {
			t.Errorf("stack %d = %+v, want %+v", id, res.Stack(id), frames)
		}
	}
	for id, blk := range md.Blocks {
		got := res.BlockInfo(id)
		if got == nil || *got != blk {
			t.Errorf("block %d = %+v, want %+v", id, got, blk)
		}
	}
	if res.Stack(99) != nil || res.BlockInfo(99) != nil {
		t.Error("unknown IDs resolve to non-nil")
	}
}

// TestMetadataChunking forces the writer to split a large table across
// several metadata frames and checks the receiver reassembles all of it.
func TestMetadataChunking(t *testing.T) {
	md := &tracelog.Metadata{Stacks: map[trace.StackID][]trace.Frame{}, Blocks: map[trace.BlockID]trace.Block{}}
	for i := 1; i <= 4000; i++ {
		md.Stacks[trace.StackID(i)] = []trace.Frame{{
			Fn:   fmt.Sprintf("functionfunctionfunctionfunction_%04d", i),
			File: fmt.Sprintf("some/deeply/nested/source/file_%04d.cpp", i),
			Line: i,
		}}
	}
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Hello("big"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Metadata(md); err != nil {
		t.Fatal(err)
	}
	if err := fw.End(); err != nil {
		t.Fatal(err)
	}

	fr := tracelog.NewFrameReader(bytes.NewReader(buf.Bytes()))
	if _, _, err := fr.Handshake(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(fr); err != nil {
		t.Fatal(err)
	}
	if s, _ := fr.Tables().Counts(); s != len(md.Stacks) {
		t.Fatalf("resolver holds %d stacks, want %d", s, len(md.Stacks))
	}
	if got := fr.Tables().Stack(4000); len(got) != 1 || got[0].Line != 4000 {
		t.Errorf("stack 4000 = %+v", got)
	}
}

// TestMetadataOversizedEntry pins the entry bounds: a single entry too large
// for any metadata frame is dropped (that one ID stays unresolvable — the
// session must not fail), while a large-but-legal entry travels alone in its
// own frame and round-trips.
func TestMetadataOversizedEntry(t *testing.T) {
	big := strings.Repeat("f", 700<<10) // one ~700KB frame string: legal, own frame
	huge := strings.Repeat("x", 1<<20)  // pushes the entry past any frame's limit
	md := &tracelog.Metadata{
		Stacks: map[trace.StackID][]trace.Frame{
			1: {{Fn: "ok", File: "a.cpp", Line: 1}},
			2: {{Fn: big, File: "b.cpp", Line: 2}},
			3: {{Fn: huge, File: "c.cpp", Line: 3}},
		},
	}
	var buf bytes.Buffer
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Hello("big-entries"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Metadata(md); err != nil {
		t.Fatalf("Metadata with oversized entry must not fail the stream: %v", err)
	}
	if err := fw.End(); err != nil {
		t.Fatal(err)
	}
	fr := tracelog.NewFrameReader(bytes.NewReader(buf.Bytes()))
	if _, _, err := fr.Handshake(); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(fr); err != nil {
		t.Fatal(err)
	}
	res := fr.Tables()
	if got := res.Stack(1); len(got) != 1 || got[0].Fn != "ok" {
		t.Errorf("stack 1 = %+v", got)
	}
	if got := res.Stack(2); len(got) != 1 || got[0].Fn != big {
		t.Errorf("large-but-legal stack 2 lost (len %d)", len(got))
	}
	if got := res.Stack(3); got != nil {
		t.Error("unsendable stack 3 should have been dropped by the encoder")
	}

	// Symmetry: a resolver built directly from the same Metadata (the
	// offline-reference path) must hold exactly the wire-delivered tables —
	// same drop decision — or live and offline reports would diverge.
	direct := tracelog.NewTableResolver()
	direct.AddMetadata(md)
	ds, db := direct.Counts()
	ws, wb := res.Counts()
	if ds != ws || db != wb {
		t.Errorf("direct resolver holds %d/%d entries, wire resolver %d/%d — drop decisions diverge", ds, db, ws, wb)
	}
	if direct.Stack(3) != nil {
		t.Error("direct resolver kept the unsendable entry the wire drops")
	}
}

// TestMetadataEmpty pins that nil/empty metadata writes no frame at all:
// EncodeFramedMeta(nil) is byte-identical to EncodeFramed.
func TestMetadataEmpty(t *testing.T) {
	log := recordFrameLog(t)
	plain, err := tracelog.EncodeFramed("x", log)
	if err != nil {
		t.Fatal(err)
	}
	withNil, err := tracelog.EncodeFramedMeta("x", nil, log)
	if err != nil {
		t.Fatal(err)
	}
	empty := &tracelog.Metadata{}
	withEmpty, err := tracelog.EncodeFramedMeta("x", empty, log)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, withNil) || !bytes.Equal(plain, withEmpty) {
		t.Error("empty metadata changed the encoded stream")
	}
}

// TestMetadataCorrupt pins the hostile-input contract: corrupt metadata
// payloads are rejected as errors, never allocated from claimed counts.
func TestMetadataCorrupt(t *testing.T) {
	// A valid framed prefix up to a hand-built metadata frame payload.
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		fw := tracelog.NewFrameWriter(&buf)
		if err := fw.Hello("c"); err != nil {
			t.Fatal(err)
		}
		out := buf.Bytes()
		out = append(out, byte(tracelog.FrameMetadata))
		out = append(out, byte(len(payload)))
		return append(out, payload...)
	}
	cases := map[string][]byte{
		"huge-stack-count": frame([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}),
		"huge-frame-count": frame([]byte{1, 1, 0xff, 0xff, 0xff, 0xff, 0x0f}),
		"truncated-string": frame([]byte{1, 1, 1, 10, 'x'}),
		"trailing-bytes":   frame([]byte{0, 0, 1, 2, 3}),
	}
	for name, data := range cases {
		fr := tracelog.NewFrameReader(bytes.NewReader(data))
		if _, _, err := fr.Handshake(); err != nil {
			t.Fatalf("%s: handshake: %v", name, err)
		}
		if _, err := io.ReadAll(fr); err == nil {
			t.Errorf("%s: corrupt metadata accepted", name)
		}
	}
}
