package vm

import (
	"testing"

	"repro/internal/segments"
	"repro/internal/trace"
)

func TestBarrierRendezvous(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		v := New(Options{Seed: seed})
		bar := v.NewBarrier("b", 3)
		phase := make([]int, 3)
		var serials int
		err := v.Run(func(main *Thread) {
			ths := make([]*Thread, 3)
			for i := range ths {
				i := i
				ths[i] = main.Go("w", func(th *Thread) {
					phase[i] = 1
					if bar.Wait(th) {
						serials++
					}
					// After the barrier every party must observe phase 1
					// everywhere.
					for j, p := range phase {
						if p != 1 {
							t.Errorf("seed %d: worker %d saw phase[%d]=%d after barrier", seed, i, j, p)
						}
					}
				})
			}
			for _, th := range ths {
				main.Join(th)
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if serials != 1 {
			t.Errorf("seed %d: %d serial threads, want 1", seed, serials)
		}
	}
}

func TestBarrierMultipleWaves(t *testing.T) {
	v := New(Options{Seed: 4})
	bar := v.NewBarrier("b", 2)
	count := 0
	err := v.Run(func(main *Thread) {
		a := main.Go("a", func(th *Thread) {
			for i := 0; i < 3; i++ {
				bar.Wait(th)
				count++
			}
		})
		b := main.Go("b", func(th *Thread) {
			for i := 0; i < 3; i++ {
				bar.Wait(th)
				count++
			}
		})
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 6 {
		t.Errorf("count = %d, want 6 (three waves of two)", count)
	}
}

func TestBarrierEmitsAllToAllEdges(t *testing.T) {
	v := New(Options{Seed: 1})
	rec := &recorder{}
	v.AddTool(rec)
	bar := v.NewBarrier("b", 2)
	err := v.Run(func(main *Thread) {
		a := main.Go("a", func(th *Thread) { bar.Wait(th) })
		b := main.Go("b", func(th *Thread) { bar.Wait(th) })
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Each post-wave segment must carry a Sem edge from the OTHER party.
	var crossEdges int
	for _, s := range rec.segments {
		for _, e := range s.In {
			if e.Kind == trace.Sem {
				crossEdges++
			}
		}
	}
	if crossEdges != 2 {
		t.Errorf("cross edges = %d, want 2 (one per party)", crossEdges)
	}
}

func TestBarrierDeadlockWhenUnderfilled(t *testing.T) {
	v := New(Options{Seed: 1})
	bar := v.NewBarrier("b", 3)
	err := v.Run(func(main *Thread) {
		a := main.Go("a", func(th *Thread) { bar.Wait(th) })
		b := main.Go("b", func(th *Thread) { bar.Wait(th) })
		main.Join(a)
		main.Join(b)
	})
	if err == nil {
		t.Fatal("two of three parties should deadlock")
	}
}

func TestBarrierOrdersPhasesForFullMaskDetector(t *testing.T) {
	// A phase-structured computation: thread A writes in phase 1, thread B
	// reads in phase 2 after the barrier. With Sem edges honoured the
	// accesses are ordered; with the Helgrind mask they are not.
	run := func(mask trace.EdgeMask) int {
		v := New(Options{Seed: 2})
		rec := &segGraphProbe{mask: mask}
		v.AddTool(rec)
		bar := v.NewBarrier("phase", 2)
		var aSeg, bSeg trace.SegmentID
		err := v.Run(func(main *Thread) {
			blk := main.Alloc(4, "phase-data")
			a := main.Go("a", func(th *Thread) {
				blk.Store32(th, 0, 42)
				aSeg = th.Segment()
				bar.Wait(th)
			})
			b := main.Go("b", func(th *Thread) {
				bar.Wait(th)
				bSeg = th.Segment()
				blk.Load32(th, 0)
			})
			main.Join(a)
			main.Join(b)
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if rec.g.HappensBefore(aSeg, bSeg) {
			return 1
		}
		return 0
	}
	if run(trace.MaskFull) != 1 {
		t.Error("full mask should order pre-barrier write before post-barrier read")
	}
	if run(trace.MaskHelgrind) != 0 {
		t.Error("Helgrind mask must not order across the barrier")
	}
}

// segGraphProbe builds a segment graph from the event stream, for
// happens-before assertions in tests.
type segGraphProbe struct {
	trace.BaseSink
	mask trace.EdgeMask
	g    *segments.Graph
}

func (p *segGraphProbe) ToolName() string { return "seg-probe" }
func (p *segGraphProbe) Segment(ss *trace.SegmentStart) {
	if p.g == nil {
		p.g = segments.NewGraph(p.mask)
	}
	p.g.Add(ss)
}
