package vm

import "repro/internal/trace"

// Barrier is a guest pthread_barrier-style rendezvous for a fixed number of
// parties. Each wave establishes all-to-all happens-before: every arrival
// segment gets Sem-kind edges from every pre-wait segment of the wave, so
// detectors honouring semaphore edges order the phases while the stock
// Helgrind mask does not — the same higher-level-synchronisation blind spot
// as the Fig. 11 queue.
type Barrier struct {
	vm      *VM
	id      trace.SyncID
	name    string
	parties int
	arrived []*barrierWaiter
}

type barrierWaiter struct {
	t        *Thread
	preSeg   trace.SegmentID
	released bool
	waveSegs []trace.SegmentID
}

// NewBarrier creates a barrier for the given number of parties.
func (vm *VM) NewBarrier(name string, parties int) *Barrier {
	if parties <= 0 {
		parties = 1
	}
	b := &Barrier{vm: vm, name: name, parties: parties, id: vm.nextSync}
	vm.nextSync++
	return b
}

// Parties returns the rendezvous size.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks until all parties of the current wave have arrived. It reports
// true for exactly one caller per wave (the "serial thread", as
// PTHREAD_BARRIER_SERIAL_THREAD does).
func (b *Barrier) Wait(t *Thread) bool {
	t.vm.emitSync(t, trace.SemPost, b.id, 0)
	pre := t.vm.splitSegment(t)
	w := &barrierWaiter{t: t, preSeg: pre}
	b.arrived = append(b.arrived, w)

	if len(b.arrived) == b.parties {
		// Last arrival releases the wave.
		wave := b.arrived
		b.arrived = nil
		segs := make([]trace.SegmentID, len(wave))
		for i, x := range wave {
			segs[i] = x.preSeg
		}
		for _, x := range wave {
			x.waveSegs = segs
			x.released = true
			if x.t != t {
				x.t.makeRunnable()
			}
		}
		b.finishWait(t, w)
		return true
	}
	t.block("barrier "+b.name, func() { b.removeWaiter(w) })
	if !w.released {
		t.vm.guestFail(t, "barrier %q wakeup without release", b.name)
	}
	b.finishWait(t, w)
	return false
}

// finishWait emits the post-wave segment with edges from every arrival.
func (b *Barrier) finishWait(t *Thread, w *barrierWaiter) {
	t.vm.emitSync(t, trace.SemWaitDone, b.id, 0)
	extra := make([]trace.SegmentEdge, 0, len(w.waveSegs))
	for _, s := range w.waveSegs {
		if s != w.preSeg {
			extra = append(extra, trace.SegmentEdge{From: s, Kind: trace.Sem})
		}
	}
	t.vm.splitSegment(t, extra...)
	t.vm.step(t)
}

func (b *Barrier) removeWaiter(w *barrierWaiter) {
	for i, x := range b.arrived {
		if x == w {
			b.arrived = append(b.arrived[:i], b.arrived[i+1:]...)
			return
		}
	}
}
