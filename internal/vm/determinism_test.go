package vm_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/tracelog"
	"repro/internal/vm"
)

// The VM's two scheduling guarantees, swept across 50 seeds:
//
//  1. determinism — the same (program, seed) pair always produces the
//     bit-identical event stream (the foundation under offline replay, the
//     golden corpus and every conformance assertion), and
//  2. diversity — different seeds genuinely explore different interleavings
//     (the foundation under the paper's §2.3.2 repeated-runs methodology);
//     a scheduler that collapsed to one schedule would pass every
//     determinism test while silently gutting the seed sweeps.

// sweepBody is a contended workload: three workers mix locked increments,
// unlocked scratch writes and yields, so nearly every scheduling decision
// changes the event order.
func sweepBody(v *vm.VM) func(*vm.Thread) {
	return func(main *vm.Thread) {
		mu := v.NewMutex("sweep")
		shared := main.Alloc(8, "sweep-shared")
		workers := make([]*vm.Thread, 3)
		for w := range workers {
			w := w
			workers[w] = main.Go(fmt.Sprintf("w%d", w), func(t *vm.Thread) {
				scratch := t.Alloc(8, fmt.Sprintf("scratch%d", w))
				for i := 0; i < 20; i++ {
					mu.Lock(t)
					shared.Store32(t, 0, shared.Load32(t, 0)+1)
					mu.Unlock(t)
					scratch.Store32(t, 4, uint32(i))
					if i%3 == w%3 {
						t.Yield()
					}
				}
			})
		}
		for _, t := range workers {
			main.Join(t)
		}
	}
}

// recordSweep runs the workload at one seed and returns the serialised
// event stream.
func recordSweep(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	v := vm.New(vm.Options{Seed: seed})
	v.AddTool(rec)
	if err := v.Run(sweepBody(v)); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("seed %d: flush: %v", seed, err)
	}
	return buf.Bytes()
}

func TestSeedSweepDeterminismAndDiversity(t *testing.T) {
	const seeds = 50
	// Well below the plausible distinct-schedule count for this workload,
	// far above any degenerate scheduler: at least half the seeds must
	// produce a unique interleaving.
	const diversityFloor = seeds / 2

	hashes := make(map[[sha256.Size]byte][]int64)
	for seed := int64(1); seed <= seeds; seed++ {
		first := recordSweep(t, seed)
		second := recordSweep(t, seed)
		if !bytes.Equal(first, second) {
			t.Fatalf("seed %d: two runs with the same seed produced different event streams", seed)
		}
		h := sha256.Sum256(first)
		hashes[h] = append(hashes[h], seed)
	}
	if len(hashes) < diversityFloor {
		var collisions []string
		for _, group := range hashes {
			if len(group) > 1 {
				collisions = append(collisions, fmt.Sprint(group))
			}
		}
		t.Fatalf("only %d distinct interleavings across %d seeds (floor %d); colliding seed groups: %v",
			len(hashes), seeds, diversityFloor, collisions)
	}
	t.Logf("%d distinct interleavings across %d seeds", len(hashes), seeds)
}
