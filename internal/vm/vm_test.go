package vm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// recorder is a test Sink that captures the event stream.
type recorder struct {
	trace.BaseSink
	accesses []trace.Access
	acquires []trace.LockID
	releases []trace.LockID
	segments []trace.SegmentStart
	syncs    []trace.SyncEvent
	allocs   []trace.Block
	frees    []trace.BlockID
	requests []trace.Request
	starts   []trace.ThreadID
	exits    []trace.ThreadID
}

func (r *recorder) ToolName() string       { return "recorder" }
func (r *recorder) Access(a *trace.Access) { r.accesses = append(r.accesses, *a) }
func (r *recorder) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, s trace.StackID) {
	r.acquires = append(r.acquires, l)
}
func (r *recorder) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, s trace.StackID) {
	r.releases = append(r.releases, l)
}
func (r *recorder) Segment(ss *trace.SegmentStart) {
	cp := *ss
	cp.In = append([]trace.SegmentEdge(nil), ss.In...)
	r.segments = append(r.segments, cp)
}
func (r *recorder) Sync(ev *trace.SyncEvent) { r.syncs = append(r.syncs, *ev) }
func (r *recorder) Alloc(b *trace.Block)     { r.allocs = append(r.allocs, *b) }
func (r *recorder) Free(b *trace.Block, t trace.ThreadID, s trace.StackID) {
	r.frees = append(r.frees, b.ID)
}
func (r *recorder) Request(req *trace.Request)      { r.requests = append(r.requests, *req) }
func (r *recorder) ThreadStart(t, p trace.ThreadID) { r.starts = append(r.starts, t) }
func (r *recorder) ThreadExit(t trace.ThreadID)     { r.exits = append(r.exits, t) }

func TestRunSingleThread(t *testing.T) {
	v := New(Options{Seed: 1})
	rec := &recorder{}
	v.AddTool(rec)
	ran := false
	err := v.Run(func(th *Thread) {
		b := th.Alloc(16, "test")
		b.Store32(th, 0, 42)
		if got := b.Load32(th, 0); got != 42 {
			t.Errorf("Load32 = %d, want 42", got)
		}
		ran = true
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("guest body did not run")
	}
	if len(rec.accesses) != 2 {
		t.Fatalf("got %d accesses, want 2", len(rec.accesses))
	}
	if rec.accesses[0].Kind != trace.Write || rec.accesses[1].Kind != trace.Read {
		t.Errorf("access kinds = %v, %v; want write, read", rec.accesses[0].Kind, rec.accesses[1].Kind)
	}
	if len(rec.allocs) != 1 || rec.allocs[0].Tag != "test" {
		t.Errorf("allocs = %+v, want one block tagged 'test'", rec.allocs)
	}
}

func TestThreadCreateJoinSegments(t *testing.T) {
	v := New(Options{Seed: 7})
	rec := &recorder{}
	v.AddTool(rec)
	err := v.Run(func(main *Thread) {
		child := main.Go("child", func(c *Thread) {
			c.Yield()
		})
		main.Join(child)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Expected segments: main TS1; child TS (Create edge from TS1);
	// main TS after create (Program edge); main TS after join (Program + Join).
	if len(rec.segments) != 4 {
		t.Fatalf("got %d segments, want 4: %+v", len(rec.segments), rec.segments)
	}
	childSeg := rec.segments[1]
	if len(childSeg.In) != 1 || childSeg.In[0].Kind != trace.Create {
		t.Errorf("child segment edges = %+v, want single Create edge", childSeg.In)
	}
	joinSeg := rec.segments[3]
	var haveJoin bool
	for _, e := range joinSeg.In {
		if e.Kind == trace.Join {
			haveJoin = true
		}
	}
	if !haveJoin {
		t.Errorf("post-join segment edges = %+v, want a Join edge", joinSeg.In)
	}
}

func TestMutexExclusion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		v := New(Options{Seed: seed})
		m := v.NewMutex("m")
		counter := 0
		inCrit := 0
		body := func(th *Thread) {
			for i := 0; i < 10; i++ {
				m.Lock(th)
				inCrit++
				if inCrit != 1 {
					t.Fatalf("seed %d: mutual exclusion violated", seed)
				}
				th.Yield()
				counter++
				inCrit--
				m.Unlock(th)
			}
		}
		err := v.Run(func(main *Thread) {
			a := main.Go("a", body)
			b := main.Go("b", body)
			main.Join(a)
			main.Join(b)
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if counter != 20 {
			t.Fatalf("seed %d: counter = %d, want 20", seed, counter)
		}
	}
}

func TestMutexFIFOAndTimeout(t *testing.T) {
	v := New(Options{Seed: 3})
	m := v.NewMutex("m")
	var timedOut bool
	err := v.Run(func(main *Thread) {
		m.Lock(main)
		w := main.Go("waiter", func(th *Thread) {
			timedOut = !m.LockTimeout(th, 5)
		})
		main.Sleep(50) // hold the lock well past the waiter's deadline
		m.Unlock(main)
		main.Join(w)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !timedOut {
		t.Error("LockTimeout should have timed out while main held the lock")
	}
}

func TestTryLock(t *testing.T) {
	v := New(Options{Seed: 3})
	m := v.NewMutex("m")
	err := v.Run(func(main *Thread) {
		if !m.TryLock(main) {
			t.Error("TryLock on free mutex should succeed")
		}
		done := main.Go("other", func(th *Thread) {
			if m.TryLock(th) {
				t.Error("TryLock on held mutex should fail")
			}
		})
		main.Join(done)
		m.Unlock(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		v := New(Options{Seed: seed})
		rw := v.NewRWMutex("rw")
		readers, writers := 0, 0
		check := func(th *Thread) {
			if writers > 1 || (writers == 1 && readers > 0) {
				t.Fatalf("seed %d: rwlock invariant violated (r=%d w=%d)", seed, readers, writers)
			}
		}
		reader := func(th *Thread) {
			for i := 0; i < 5; i++ {
				rw.RLock(th)
				readers++
				check(th)
				th.Yield()
				readers--
				rw.RUnlock(th)
			}
		}
		writer := func(th *Thread) {
			for i := 0; i < 5; i++ {
				rw.WLock(th)
				writers++
				check(th)
				th.Yield()
				writers--
				rw.WUnlock(th)
			}
		}
		err := v.Run(func(main *Thread) {
			ts := []*Thread{
				main.Go("r1", reader),
				main.Go("r2", reader),
				main.Go("w1", writer),
			}
			for _, th := range ts {
				main.Join(th)
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCondSignalWakesWaiter(t *testing.T) {
	v := New(Options{Seed: 11})
	m := v.NewMutex("m")
	c := v.NewCond("c", m)
	ready := false
	observed := false
	err := v.Run(func(main *Thread) {
		w := main.Go("waiter", func(th *Thread) {
			m.Lock(th)
			for !ready {
				c.Wait(th)
			}
			observed = true
			m.Unlock(th)
		})
		main.Sleep(5)
		m.Lock(main)
		ready = true
		c.Signal(main)
		m.Unlock(main)
		main.Join(w)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !observed {
		t.Error("waiter never observed the condition")
	}
}

func TestCondWaitTimeout(t *testing.T) {
	v := New(Options{Seed: 11})
	m := v.NewMutex("m")
	c := v.NewCond("c", m)
	var ok bool
	err := v.Run(func(main *Thread) {
		m.Lock(main)
		ok = c.WaitTimeout(main, 10)
		if m.Owner() != main {
			t.Error("mutex not reacquired after timed-out wait")
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ok {
		t.Error("WaitTimeout with no signaller should time out")
	}
}

func TestSemaphore(t *testing.T) {
	v := New(Options{Seed: 5})
	s := v.NewSemaphore("s", 0)
	order := []string{}
	err := v.Run(func(main *Thread) {
		w := main.Go("consumer", func(th *Thread) {
			s.Wait(th)
			order = append(order, "consumed")
		})
		order = append(order, "produced")
		s.Post(main)
		main.Join(w)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "produced" || order[1] != "consumed" {
		t.Errorf("order = %v, want [produced consumed]", order)
	}
	if !errors.Is(nil, nil) { // keep errors import honest
		t.Fatal("unreachable")
	}
}

func TestQueuePutGetFIFO(t *testing.T) {
	v := New(Options{Seed: 9})
	q := v.NewQueue("q", 0)
	var got []int
	err := v.Run(func(main *Thread) {
		c := main.Go("consumer", func(th *Thread) {
			for {
				msg, ok := q.Get(th)
				if !ok {
					return
				}
				got = append(got, msg.(int))
			}
		})
		for i := 0; i < 5; i++ {
			q.Put(main, i)
		}
		q.Close(main)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d messages, want 5", len(got))
	}
	for i, msg := range got {
		if msg != i {
			t.Errorf("message %d = %d, want %d (FIFO order)", i, msg, i)
		}
	}
}

func TestQueueBoundedBlocksPutter(t *testing.T) {
	v := New(Options{Seed: 2})
	q := v.NewQueue("q", 2)
	var delivered int
	err := v.Run(func(main *Thread) {
		p := main.Go("producer", func(th *Thread) {
			for i := 0; i < 10; i++ {
				q.Put(th, i)
			}
		})
		c := main.Go("consumer", func(th *Thread) {
			for i := 0; i < 10; i++ {
				_, ok := q.Get(th)
				if ok {
					delivered++
				}
			}
		})
		main.Join(p)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 10 {
		t.Errorf("delivered = %d, want 10", delivered)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	v := New(Options{Seed: 2})
	q := v.NewQueue("q", 0)
	err := v.Run(func(main *Thread) {
		if _, ok := q.GetTimeout(main, 5); ok {
			t.Error("GetTimeout on empty queue should time out")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueSegmentEdges(t *testing.T) {
	v := New(Options{Seed: 4})
	rec := &recorder{}
	v.AddTool(rec)
	q := v.NewQueue("q", 0)
	err := v.Run(func(main *Thread) {
		w := main.Go("worker", func(th *Thread) {
			q.Get(th)
		})
		q.Put(main, "job")
		main.Join(w)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var queueEdges int
	for _, s := range rec.segments {
		for _, e := range s.In {
			if e.Kind == trace.Queue {
				queueEdges++
			}
		}
	}
	if queueEdges != 1 {
		t.Errorf("queue edges = %d, want 1", queueEdges)
	}
	var puts, gets int
	for _, s := range rec.syncs {
		switch s.Op {
		case trace.QueuePut:
			puts++
		case trace.QueueGet:
			gets++
		}
	}
	if puts != 1 || gets != 1 {
		t.Errorf("puts=%d gets=%d, want 1 and 1", puts, gets)
	}
}

func TestGlobalDeadlockDetected(t *testing.T) {
	v := New(Options{Seed: 1})
	m1 := v.NewMutex("m1")
	m2 := v.NewMutex("m2")
	err := v.Run(func(main *Thread) {
		a := main.Go("a", func(th *Thread) {
			m1.Lock(th)
			th.Sleep(10)
			m2.Lock(th)
		})
		b := main.Go("b", func(th *Thread) {
			m2.Lock(th)
			th.Sleep(10)
			m1.Lock(th)
		})
		main.Join(a)
		main.Join(b)
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run err = %v, want DeadlockError", err)
	}
	if len(dl.Info.Blocked) != 3 { // a, b and the joining main
		t.Errorf("blocked threads = %d, want 3: %v", len(dl.Info.Blocked), dl.Info)
	}
}

func TestGuestPanicPropagates(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		w := main.Go("w", func(th *Thread) {
			panic("boom")
		})
		main.Join(w)
	})
	if err == nil || err.Error() == "" {
		t.Fatalf("Run err = %v, want guest panic error", err)
	}
}

func TestGuestErrorUnlockByNonOwner(t *testing.T) {
	v := New(Options{Seed: 1})
	m := v.NewMutex("m")
	err := v.Run(func(main *Thread) {
		m.Unlock(main)
	})
	if err == nil {
		t.Fatal("unlock by non-owner should fail the run")
	}
}

func TestStepLimit(t *testing.T) {
	v := New(Options{Seed: 1, MaxSteps: 100})
	err := v.Run(func(main *Thread) {
		for {
			main.Yield()
		}
	})
	if err == nil {
		t.Fatal("step limit should abort the run")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []trace.Access {
		v := New(Options{Seed: seed})
		rec := &recorder{}
		v.AddTool(rec)
		var cells [4]*Cell[int]
		err := v.Run(func(main *Thread) {
			for i := range cells {
				cells[i] = NewCell(main, fmt.Sprintf("c%d", i), 0)
			}
			ths := make([]*Thread, 3)
			for i := range ths {
				i := i
				ths[i] = main.Go(fmt.Sprintf("t%d", i), func(th *Thread) {
					for j := 0; j < 20; j++ {
						c := cells[(i+j)%len(cells)]
						c.Set(th, c.Get(th)+1)
					}
				})
			}
			for _, th := range ths {
				main.Join(th)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rec.accesses
	}
	a := run(42)
	b := run(42)
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	schedule := func(seed int64) string {
		v := New(Options{Seed: seed})
		var order string
		err := v.Run(func(main *Thread) {
			ths := make([]*Thread, 3)
			for i := range ths {
				name := string(rune('a' + i))
				ths[i] = main.Go(name, func(th *Thread) {
					for j := 0; j < 5; j++ {
						order += th.Name()
						th.Yield()
					}
				})
			}
			for _, th := range ths {
				main.Join(th)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return order
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 10; seed++ {
		distinct[schedule(seed)] = true
	}
	if len(distinct) < 2 {
		t.Error("10 seeds produced a single schedule; scheduler is not exploring interleavings")
	}
}

func TestSleepFastForward(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		before := main.Now()
		main.Sleep(1000)
		if main.Now()-before < 1000 {
			t.Errorf("virtual clock advanced %d, want >= 1000", main.Now()-before)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStackRecording(t *testing.T) {
	v := New(Options{Seed: 1})
	rec := &recorder{}
	v.AddTool(rec)
	err := v.Run(func(main *Thread) {
		defer main.Func("outer", "file.cpp", 10)()
		b := main.Alloc(8, "x")
		func() {
			defer main.Func("inner", "file.cpp", 20)()
			main.SetLine(21)
			b.Store32(main, 0, 1)
		}()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.accesses) != 1 {
		t.Fatalf("accesses = %d, want 1", len(rec.accesses))
	}
	frames := v.Stack(rec.accesses[0].Stack)
	if len(frames) != 2 {
		t.Fatalf("frames = %+v, want 2", frames)
	}
	if frames[0].Fn != "outer" || frames[1].Fn != "inner" || frames[1].Line != 21 {
		t.Errorf("frames = %+v, want outer/inner with SetLine applied", frames)
	}
}

func TestStackInterningStable(t *testing.T) {
	st := NewStackTable()
	f := []trace.Frame{{Fn: "a", File: "f", Line: 1}, {Fn: "b", File: "f", Line: 2}}
	id1 := st.Intern(f)
	id2 := st.Intern(f)
	if id1 != id2 {
		t.Errorf("same frames interned to %d and %d", id1, id2)
	}
	g := []trace.Frame{{Fn: "a", File: "f", Line: 1}, {Fn: "b", File: "f", Line: 3}}
	if st.Intern(g) == id1 {
		t.Error("different frames interned to same ID")
	}
}

func TestStackInternProperty(t *testing.T) {
	st := NewStackTable()
	fn := func(fns []string, lines []int16) bool {
		frames := make([]trace.Frame, 0, len(fns))
		for i, f := range fns {
			line := 0
			if i < len(lines) {
				line = int(lines[i])
			}
			frames = append(frames, trace.Frame{Fn: f, File: "f.cpp", Line: line})
		}
		id := st.Intern(frames)
		got := st.Frames(id)
		if len(frames) == 0 {
			return id == trace.NoStack
		}
		return framesEqual(got, frames) && st.Intern(frames) == id
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAtomicOps(t *testing.T) {
	v := New(Options{Seed: 1})
	rec := &recorder{}
	v.AddTool(rec)
	err := v.Run(func(main *Thread) {
		b := main.Alloc(8, "ctr")
		a := AtomicI32At(b, 0)
		if got := a.Add(main, 5); got != 5 {
			t.Errorf("Add = %d, want 5", got)
		}
		if got := a.Add(main, -2); got != 3 {
			t.Errorf("Add = %d, want 3", got)
		}
		if got := a.Load(main); got != 3 {
			t.Errorf("Load = %d, want 3", got)
		}
		if !b.AtomicCAS32(main, 0, 3, 7) {
			t.Error("CAS(3,7) should succeed")
		}
		if b.AtomicCAS32(main, 0, 3, 9) {
			t.Error("CAS(3,9) should fail")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two atomic adds: read+write each, both atomic. One plain load. CAS ok:
	// read+write; CAS fail: read only.
	var atomicReads, atomicWrites, plainReads int
	for _, a := range rec.accesses {
		switch {
		case a.Atomic && a.Kind == trace.Read:
			atomicReads++
		case a.Atomic && a.Kind == trace.Write:
			atomicWrites++
		case a.Kind == trace.Read:
			plainReads++
		}
	}
	if atomicReads != 4 || atomicWrites != 3 || plainReads != 1 {
		t.Errorf("atomicReads=%d atomicWrites=%d plainReads=%d, want 4/3/1",
			atomicReads, atomicWrites, plainReads)
	}
}

func TestFreeMarksBlockAndEmitsEvents(t *testing.T) {
	v := New(Options{Seed: 1})
	rec := &recorder{}
	v.AddTool(rec)
	err := v.Run(func(main *Thread) {
		b := main.Alloc(8, "x")
		b.Free(main)
		if !b.Freed() {
			t.Error("block not marked freed")
		}
		b.Free(main) // double free: tolerated by the VM, reported by memcheck
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.frees) != 2 {
		t.Errorf("free events = %d, want 2 (tools must see the double free)", len(rec.frees))
	}
}

func TestVirtualAddressesUnique(t *testing.T) {
	v := New(Options{Seed: 1})
	seen := map[trace.Addr]bool{}
	err := v.Run(func(main *Thread) {
		for i := 0; i < 100; i++ {
			b := main.Alloc(24, "x")
			if seen[b.Base()] {
				t.Fatalf("address %#x reused", b.Base())
			}
			seen[b.Base()] = true
			b.Free(main)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQuantumBatchesOps(t *testing.T) {
	// With a large quantum the run must still complete and be deterministic.
	v := New(Options{Seed: 1, Quantum: 50})
	total := 0
	err := v.Run(func(main *Thread) {
		c := NewCell(main, "c", 0)
		ths := make([]*Thread, 2)
		for i := range ths {
			ths[i] = main.Go("w", func(th *Thread) {
				for j := 0; j < 100; j++ {
					c.Set(th, c.Get(th)+1)
				}
			})
		}
		for _, th := range ths {
			main.Join(th)
		}
		total = c.Peek()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if total != 200 {
		t.Errorf("total = %d, want 200 (single-baton execution cannot lose updates)", total)
	}
}

func TestBenignRequestEmitted(t *testing.T) {
	v := New(Options{Seed: 1})
	rec := &recorder{}
	v.AddTool(rec)
	err := v.Run(func(main *Thread) {
		b := main.Alloc(8, "x")
		b.Request(main, trace.ReqBenign, 0, 8)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rec.requests) != 1 || rec.requests[0].Kind != trace.ReqBenign {
		t.Errorf("requests = %+v, want one ReqBenign", rec.requests)
	}
}

func TestEventStreamWellFormed(t *testing.T) {
	// Exercise every primitive with a validator attached: the VM's event
	// stream must satisfy all well-formedness invariants on every schedule.
	for seed := int64(0); seed < 8; seed++ {
		v := New(Options{Seed: seed})
		val := trace.NewValidator()
		v.AddTool(val)
		m := v.NewMutex("m")
		rw := v.NewRWMutex("rw")
		cond := v.NewCond("c", m)
		sem := v.NewSemaphore("s", 1)
		q := v.NewQueue("q", 2)
		bar := v.NewBarrier("b", 2)
		err := v.Run(func(main *Thread) {
			blk := main.Alloc(32, "state")
			ready := false
			producer := main.Go("producer", func(th *Thread) {
				for i := 0; i < 4; i++ {
					m.Lock(th)
					blk.Store32(th, 0, uint32(i))
					m.Unlock(th)
					q.Put(th, i)
					rw.RLock(th)
					blk.Load32(th, 4)
					rw.RUnlock(th)
				}
				m.Lock(th)
				ready = true
				cond.Signal(th)
				m.Unlock(th)
				bar.Wait(th)
			})
			consumer := main.Go("consumer", func(th *Thread) {
				for i := 0; i < 4; i++ {
					q.Get(th)
					sem.Wait(th)
					rw.WLock(th)
					blk.Store32(th, 4, uint32(i))
					rw.WUnlock(th)
					sem.Post(th)
				}
				m.Lock(th)
				for !ready {
					cond.Wait(th)
				}
				m.Unlock(th)
				bar.Wait(th)
			})
			main.Join(producer)
			main.Join(consumer)
			blk.Request(main, trace.ReqBenign, 0, 4)
			blk.Free(main)
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if verr := val.Err(); verr != nil {
			t.Errorf("seed %d: %v\nall: %v", seed, verr, val.Violations())
		}
	}
}
