package vm

import (
	"hash/fnv"
	"strconv"
	"sync"

	"repro/internal/trace"
)

// StackTable interns guest call stacks. Stack IDs are stable for the life of
// the VM; ID 0 is the empty stack.
//
// The table is safe for concurrent use: the guest VM goroutine interns
// stacks while parallel-engine shard workers resolve them (suppression
// matching and report formatting go through trace.Resolver mid-run).
type StackTable struct {
	mu     sync.RWMutex
	byHash map[uint64][]trace.StackID
	stacks [][]trace.Frame
}

// NewStackTable creates an empty table with the empty stack pre-interned.
func NewStackTable() *StackTable {
	st := &StackTable{byHash: make(map[uint64][]trace.StackID)}
	st.stacks = append(st.stacks, nil) // ID 0
	return st
}

// Intern returns the ID for the given frames (innermost last), creating a new
// entry when the stack has not been seen before.
func (st *StackTable) Intern(frames []trace.Frame) trace.StackID {
	if len(frames) == 0 {
		return trace.NoStack
	}
	h := hashFrames(frames)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, id := range st.byHash[h] {
		if framesEqual(st.stacks[id], frames) {
			return id
		}
	}
	cp := make([]trace.Frame, len(frames))
	copy(cp, frames)
	id := trace.StackID(len(st.stacks))
	st.stacks = append(st.stacks, cp)
	st.byHash[h] = append(st.byHash[h], id)
	return id
}

// Frames returns the frames of an interned stack, innermost last. The
// returned slice must not be modified.
func (st *StackTable) Frames(id trace.StackID) []trace.Frame {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if id < 0 || int(id) >= len(st.stacks) {
		return nil
	}
	return st.stacks[id]
}

// Len returns the number of distinct interned stacks (including the empty
// stack).
func (st *StackTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.stacks)
}

func hashFrames(frames []trace.Frame) uint64 {
	h := fnv.New64a()
	for _, f := range frames {
		h.Write([]byte(f.Fn))
		h.Write([]byte{0})
		h.Write([]byte(f.File))
		h.Write([]byte{0})
		h.Write([]byte(strconv.Itoa(f.Line)))
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

func framesEqual(a, b []trace.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
