package vm

import (
	"fmt"

	"repro/internal/trace"
)

// Thread is a guest thread. Guest code receives a *Thread and passes it to
// every VM operation; this is the analogue of the implicit current thread in
// a real POSIX program.
type Thread struct {
	vm      *VM
	id      trace.ThreadID
	name    string
	state   threadState
	wake    chan struct{}
	body    func(*Thread)
	quantum int

	// Call-stack recording.
	frames     []trace.Frame
	stackCache trace.StackID
	stackDirty bool

	// Segment tracking.
	curSeg  trace.SegmentID
	lastSeg trace.SegmentID

	// Blocking bookkeeping.
	waitDesc    string
	hasDeadline bool
	deadline    int64
	timedOut    bool
	cancelWait  func()

	// Join support.
	joinWaiters []*Thread
	finished    bool
}

// ID returns the thread's identifier.
func (t *Thread) ID() trace.ThreadID { return t.id }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// VM returns the owning virtual machine.
func (t *Thread) VM() *VM { return t.vm }

// Segment returns the thread's current segment.
func (t *Thread) Segment() trace.SegmentID { return t.curSeg }

func (t *Thread) trampoline() {
	defer t.vm.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSentinelType); ok {
				return
			}
			t.vm.mu.Lock()
			if t.vm.err == nil {
				t.vm.err = fmt.Errorf("guest panic in thread %d (%s): %v", t.id, t.name, r)
			}
			t.vm.mu.Unlock()
			t.state = tsFinished
			t.finished = true
			t.vm.abortAll(t)
		}
	}()
	t.park()
	t.body(t)
	t.finish()
}

// park waits for the baton. It panics with the abort sentinel when the VM is
// tearing down.
func (t *Thread) park() {
	<-t.wake
	if t.vm.aborted {
		panic(abortSentinel)
	}
}

// finish marks the thread done, wakes joiners and hands the baton on.
func (t *Thread) finish() {
	t.lastSeg = t.curSeg
	t.state = tsFinished
	t.finished = true
	for _, tool := range t.vm.tools {
		tool.ThreadExit(t.id)
	}
	for _, j := range t.joinWaiters {
		j.makeRunnable()
	}
	t.joinWaiters = nil
	t.vm.reschedule(t)
}

// block parks the thread until it is made runnable again. desc describes what
// it waits on; cancel (optional) removes it from the wait queue on timeout.
func (t *Thread) block(desc string, cancel func()) {
	t.state = tsBlocked
	t.waitDesc = desc
	t.cancelWait = cancel
	t.vm.reschedule(t)
	t.waitDesc = ""
	t.cancelWait = nil
}

// blockTimeout is block with a deadline (in virtual ticks from now). It
// reports false when the wait timed out.
func (t *Thread) blockTimeout(desc string, ticks int64, cancel func()) bool {
	t.hasDeadline = true
	t.deadline = t.vm.clock + ticks
	t.block(desc, cancel)
	t.hasDeadline = false
	if t.timedOut {
		t.timedOut = false
		return false
	}
	return true
}

// makeRunnable transitions a blocked or sleeping thread back to runnable.
// The thread resumes when the scheduler next picks it.
func (t *Thread) makeRunnable() {
	t.state = tsRunnable
	t.hasDeadline = false
	t.cancelWait = nil
}

// Go spawns a new guest thread running body and returns its handle. The
// parent's timeline is split (Fig. 2): the child's first segment
// happens-after the parent's segment before the create.
func (t *Thread) Go(name string, body func(*Thread)) *Thread {
	child := t.vm.newThread(name, t, body)
	t.vm.splitSegment(t)
	t.vm.step(t)
	return child
}

// Join blocks until the given thread finishes. The joiner's new segment
// happens-after the joined thread's last segment (Fig. 2).
func (t *Thread) Join(other *Thread) {
	if other == t {
		t.vm.guestFail(t, "thread join on self")
	}
	for !other.finished {
		other.joinWaiters = append(other.joinWaiters, t)
		t.block(fmt.Sprintf("join of thread %d (%s)", other.id, other.name), func() {
			other.removeJoinWaiter(t)
		})
	}
	t.vm.splitSegment(t, trace.SegmentEdge{From: other.lastSeg, Kind: trace.Join})
	t.vm.step(t)
}

func (t *Thread) removeJoinWaiter(w *Thread) {
	for i, j := range t.joinWaiters {
		if j == w {
			t.joinWaiters = append(t.joinWaiters[:i], t.joinWaiters[i+1:]...)
			return
		}
	}
}

// Yield gives the scheduler an explicit preemption opportunity.
func (t *Thread) Yield() {
	t.quantum = 0
	t.vm.step(t)
}

// Sleep suspends the thread for the given number of virtual ticks. When every
// thread is asleep the clock fast-forwards, so sleeps are cheap.
func (t *Thread) Sleep(ticks int64) {
	if ticks <= 0 {
		t.Yield()
		return
	}
	t.hasDeadline = true
	t.deadline = t.vm.clock + ticks
	t.state = tsSleeping
	t.waitDesc = fmt.Sprintf("sleep(%d)", ticks)
	t.vm.reschedule(t)
	t.waitDesc = ""
	t.hasDeadline = false
}

// Now returns the current virtual time.
func (t *Thread) Now() int64 { return t.vm.clock }

// PushFrame pushes a call-stack frame (innermost last).
func (t *Thread) PushFrame(fn, file string, line int) {
	if len(t.frames) < t.vm.opt.StackDepth {
		t.frames = append(t.frames, trace.Frame{Fn: fn, File: file, Line: line})
	} else {
		// Depth cap reached: keep counting virtually so pops balance.
		t.frames = append(t.frames, trace.Frame{})
	}
	t.stackDirty = true
}

// PopFrame pops the innermost frame.
func (t *Thread) PopFrame() {
	if len(t.frames) == 0 {
		t.vm.guestFail(t, "frame pop on empty stack")
	}
	t.frames = t.frames[:len(t.frames)-1]
	t.stackDirty = true
}

// Func pushes a frame and returns the matching pop, for use as
//
//	defer t.Func("Server.handle", "server.go", 42)()
func (t *Thread) Func(fn, file string, line int) func() {
	t.PushFrame(fn, file, line)
	return t.PopFrame
}

// SetLine updates the line number of the innermost frame, giving individual
// statements distinct report locations.
func (t *Thread) SetLine(line int) {
	if n := len(t.frames); n > 0 && n <= t.vm.opt.StackDepth {
		if t.frames[n-1].Line != line {
			t.frames[n-1].Line = line
			t.stackDirty = true
		}
	}
}

// stackID interns the current call stack.
func (t *Thread) stackID() trace.StackID {
	if !t.stackDirty {
		return t.stackCache
	}
	n := len(t.frames)
	if n > t.vm.opt.StackDepth {
		n = t.vm.opt.StackDepth
	}
	t.stackCache = t.vm.stacks.Intern(t.frames[:n])
	t.stackDirty = false
	return t.stackCache
}
