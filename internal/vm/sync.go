package vm

import (
	"fmt"

	"repro/internal/trace"
)

// Mutex is a guest POSIX-style mutex. Lock/unlock operations are reported to
// the tools and are scheduling points.
type Mutex struct {
	vm      *VM
	id      trace.LockID
	name    string
	owner   *Thread
	waiters []*Thread
}

// NewMutex creates a named guest mutex.
func (vm *VM) NewMutex(name string) *Mutex {
	m := &Mutex{vm: vm, name: name, id: vm.nextLock}
	vm.nextLock++
	return m
}

// ID returns the lock's identifier.
func (m *Mutex) ID() trace.LockID { return m.id }

// Name returns the lock's name.
func (m *Mutex) Name() string { return m.name }

// Owner returns the thread currently holding the mutex, or nil.
func (m *Mutex) Owner() *Thread { return m.owner }

func (vm *VM) emitAcquire(t *Thread, l trace.LockID, k trace.LockKind) {
	s := t.stackID()
	for _, tool := range vm.tools {
		tool.Acquire(t.id, l, k, s)
	}
}

func (vm *VM) emitContended(t *Thread, l trace.LockID) {
	s := t.stackID()
	for _, tool := range vm.tools {
		tool.Contended(t.id, l, s)
	}
}

func (vm *VM) emitRelease(t *Thread, l trace.LockID, k trace.LockKind) {
	s := t.stackID()
	for _, tool := range vm.tools {
		tool.Release(t.id, l, k, s)
	}
}

// Lock acquires the mutex, blocking until it is available.
func (m *Mutex) Lock(t *Thread) {
	if m.owner == t {
		t.vm.guestFail(t, "recursive lock of mutex %q", m.name)
	}
	if m.owner == nil {
		m.owner = t
	} else {
		t.vm.emitContended(t, m.id)
		m.waiters = append(m.waiters, t)
		t.block("mutex "+m.name, func() { m.removeWaiter(t) })
		if m.owner != t {
			t.vm.guestFail(t, "mutex %q wakeup without ownership", m.name)
		}
	}
	t.vm.emitAcquire(t, m.id, trace.Mutex)
	t.vm.step(t)
}

// TryLock acquires the mutex if it is free, reporting success.
func (m *Mutex) TryLock(t *Thread) bool {
	if m.owner != nil {
		t.vm.step(t)
		return false
	}
	m.owner = t
	t.vm.emitAcquire(t, m.id, trace.Mutex)
	t.vm.step(t)
	return true
}

// LockTimeout tries to acquire the mutex within the given number of virtual
// ticks, reporting success. This is the primitive behind the application's
// own deadlock detection in §3.3 ("a timeout while trying to acquire a lock
// inside the lock-function").
func (m *Mutex) LockTimeout(t *Thread, ticks int64) bool {
	if m.owner == t {
		t.vm.guestFail(t, "recursive lock of mutex %q", m.name)
	}
	if m.owner == nil {
		m.owner = t
		t.vm.emitAcquire(t, m.id, trace.Mutex)
		t.vm.step(t)
		return true
	}
	t.vm.emitContended(t, m.id)
	m.waiters = append(m.waiters, t)
	if !t.blockTimeout("mutex "+m.name, ticks, func() { m.removeWaiter(t) }) {
		t.vm.step(t)
		return false
	}
	if m.owner != t {
		t.vm.guestFail(t, "mutex %q wakeup without ownership", m.name)
	}
	t.vm.emitAcquire(t, m.id, trace.Mutex)
	t.vm.step(t)
	return true
}

// Unlock releases the mutex. Ownership is transferred FIFO to the oldest
// waiter, if any.
func (m *Mutex) Unlock(t *Thread) {
	if m.owner != t {
		t.vm.guestFail(t, "unlock of mutex %q by non-owner", m.name)
	}
	t.vm.emitRelease(t, m.id, trace.Mutex)
	m.owner = nil
	m.grantNext()
	t.vm.step(t)
}

func (m *Mutex) grantNext() {
	if m.owner != nil || len(m.waiters) == 0 {
		return
	}
	w := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = w
	w.makeRunnable()
}

func (m *Mutex) removeWaiter(t *Thread) {
	for i, w := range m.waiters {
		if w == t {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// RWMutex is a guest POSIX-style read-write lock. The paper added rwlock
// support to Helgrind as part of the bus-lock correction (§3.1); the VM
// exposes the corresponding guest API.
type RWMutex struct {
	vm      *VM
	id      trace.LockID
	name    string
	readers map[*Thread]struct{}
	writer  *Thread
	waiters []rwWaiter
}

type rwWaiter struct {
	t     *Thread
	write bool
}

// NewRWMutex creates a named guest read-write lock.
func (vm *VM) NewRWMutex(name string) *RWMutex {
	rw := &RWMutex{vm: vm, name: name, id: vm.nextLock, readers: make(map[*Thread]struct{})}
	vm.nextLock++
	return rw
}

// ID returns the lock's identifier.
func (rw *RWMutex) ID() trace.LockID { return rw.id }

// Name returns the lock's name.
func (rw *RWMutex) Name() string { return rw.name }

// RLock acquires the lock in read mode. FIFO fairness: a reader queues behind
// any earlier waiter (reader or writer).
func (rw *RWMutex) RLock(t *Thread) {
	if _, dup := rw.readers[t]; dup || rw.writer == t {
		t.vm.guestFail(t, "recursive rlock of rwlock %q", rw.name)
	}
	if rw.writer == nil && len(rw.waiters) == 0 {
		rw.readers[t] = struct{}{}
	} else {
		t.vm.emitContended(t, rw.id)
		rw.waiters = append(rw.waiters, rwWaiter{t: t, write: false})
		t.block("rdlock "+rw.name, func() { rw.removeWaiter(t) })
		if _, ok := rw.readers[t]; !ok {
			t.vm.guestFail(t, "rwlock %q reader wakeup without grant", rw.name)
		}
	}
	t.vm.emitAcquire(t, rw.id, trace.RLock)
	t.vm.step(t)
}

// WLock acquires the lock in write mode.
func (rw *RWMutex) WLock(t *Thread) {
	if _, dup := rw.readers[t]; dup || rw.writer == t {
		t.vm.guestFail(t, "recursive wlock of rwlock %q", rw.name)
	}
	if rw.writer == nil && len(rw.readers) == 0 && len(rw.waiters) == 0 {
		rw.writer = t
	} else {
		t.vm.emitContended(t, rw.id)
		rw.waiters = append(rw.waiters, rwWaiter{t: t, write: true})
		t.block("wrlock "+rw.name, func() { rw.removeWaiter(t) })
		if rw.writer != t {
			t.vm.guestFail(t, "rwlock %q writer wakeup without grant", rw.name)
		}
	}
	t.vm.emitAcquire(t, rw.id, trace.WLock)
	t.vm.step(t)
}

// RUnlock releases a read hold.
func (rw *RWMutex) RUnlock(t *Thread) {
	if _, ok := rw.readers[t]; !ok {
		t.vm.guestFail(t, "runlock of rwlock %q by non-reader", rw.name)
	}
	t.vm.emitRelease(t, rw.id, trace.RLock)
	delete(rw.readers, t)
	rw.grant()
	t.vm.step(t)
}

// WUnlock releases the write hold.
func (rw *RWMutex) WUnlock(t *Thread) {
	if rw.writer != t {
		t.vm.guestFail(t, "wunlock of rwlock %q by non-writer", rw.name)
	}
	t.vm.emitRelease(t, rw.id, trace.WLock)
	rw.writer = nil
	rw.grant()
	t.vm.step(t)
}

func (rw *RWMutex) grant() {
	for len(rw.waiters) > 0 {
		head := rw.waiters[0]
		if head.write {
			if rw.writer != nil || len(rw.readers) > 0 {
				return
			}
			rw.waiters = rw.waiters[1:]
			rw.writer = head.t
			head.t.makeRunnable()
			return
		}
		if rw.writer != nil {
			return
		}
		rw.waiters = rw.waiters[1:]
		rw.readers[head.t] = struct{}{}
		head.t.makeRunnable()
	}
}

func (rw *RWMutex) removeWaiter(t *Thread) {
	for i, w := range rw.waiters {
		if w.t == t {
			rw.waiters = append(rw.waiters[:i], rw.waiters[i+1:]...)
			return
		}
	}
}

// Cond is a guest POSIX-style condition variable bound to a mutex. Signal and
// wait create segment edges of kind trace.Cond; as the paper notes (§2.2),
// treating these as strict happens-before is unsound in general, which is why
// the Helgrind lock-set configuration ignores them by default.
type Cond struct {
	vm      *VM
	id      trace.SyncID
	name    string
	m       *Mutex
	waiters []*condWaiter
}

type condWaiter struct {
	t       *Thread
	wakeSeg trace.SegmentID
	woken   bool
}

// NewCond creates a condition variable bound to m.
func (vm *VM) NewCond(name string, m *Mutex) *Cond {
	c := &Cond{vm: vm, name: name, m: m, id: vm.nextSync}
	vm.nextSync++
	return c
}

func (vm *VM) emitSync(t *Thread, op trace.SyncOp, obj trace.SyncID, msg int64) {
	ev := trace.SyncEvent{Op: op, Obj: obj, Thread: t.id, Msg: msg, Stack: t.stackID()}
	for _, tool := range vm.tools {
		tool.Sync(&ev)
	}
}

// Wait atomically releases the mutex and suspends the thread until signalled,
// then reacquires the mutex before returning.
func (c *Cond) Wait(t *Thread) {
	if c.m.owner != t {
		t.vm.guestFail(t, "cond %q wait without holding mutex", c.name)
	}
	t.vm.emitRelease(t, c.m.id, trace.Mutex)
	c.m.owner = nil
	c.m.grantNext()
	w := &condWaiter{t: t}
	c.waiters = append(c.waiters, w)
	t.block("cond "+c.name, func() { c.removeWaiter(w) })
	c.reacquire(t)
	t.vm.emitSync(t, trace.CondWaitDone, c.id, 0)
	extra := []trace.SegmentEdge{}
	if w.woken {
		extra = append(extra, trace.SegmentEdge{From: w.wakeSeg, Kind: trace.Cond})
	}
	t.vm.splitSegment(t, extra...)
	t.vm.step(t)
}

// WaitTimeout is Wait with a deadline in virtual ticks; it reports false on
// timeout. The mutex is reacquired in either case, as in pthreads.
func (c *Cond) WaitTimeout(t *Thread, ticks int64) bool {
	if c.m.owner != t {
		t.vm.guestFail(t, "cond %q wait without holding mutex", c.name)
	}
	t.vm.emitRelease(t, c.m.id, trace.Mutex)
	c.m.owner = nil
	c.m.grantNext()
	w := &condWaiter{t: t}
	c.waiters = append(c.waiters, w)
	ok := t.blockTimeout("cond "+c.name, ticks, func() { c.removeWaiter(w) })
	c.reacquire(t)
	t.vm.emitSync(t, trace.CondWaitDone, c.id, 0)
	extra := []trace.SegmentEdge{}
	if w.woken {
		extra = append(extra, trace.SegmentEdge{From: w.wakeSeg, Kind: trace.Cond})
	}
	t.vm.splitSegment(t, extra...)
	t.vm.step(t)
	return ok
}

// reacquire takes the bound mutex back after a wait, queueing if contended.
func (c *Cond) reacquire(t *Thread) {
	if c.m.owner == nil {
		c.m.owner = t
	} else {
		c.m.waiters = append(c.m.waiters, t)
		t.block("mutex "+c.m.name+" (cond reacquire)", func() { c.m.removeWaiter(t) })
	}
	t.vm.emitAcquire(t, c.m.id, trace.Mutex)
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal(t *Thread) {
	t.vm.emitSync(t, trace.CondSignal, c.id, 0)
	pre := t.vm.splitSegment(t)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.wakeSeg = pre
		w.woken = true
		w.t.makeRunnable()
	}
	t.vm.step(t)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *Thread) {
	t.vm.emitSync(t, trace.CondBroadcast, c.id, 0)
	pre := t.vm.splitSegment(t)
	for _, w := range c.waiters {
		w.wakeSeg = pre
		w.woken = true
		w.t.makeRunnable()
	}
	c.waiters = nil
	t.vm.step(t)
}

func (c *Cond) removeWaiter(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Semaphore is a guest counting semaphore. Post/wait create segment edges of
// kind trace.Sem.
type Semaphore struct {
	vm      *VM
	id      trace.SyncID
	name    string
	tokens  []trace.SegmentID // one producing segment per available count
	waiters []*semWaiter
}

type semWaiter struct {
	t       *Thread
	postSeg trace.SegmentID
	granted bool
}

// NewSemaphore creates a semaphore with the given initial count.
func (vm *VM) NewSemaphore(name string, initial int) *Semaphore {
	s := &Semaphore{vm: vm, name: name, id: vm.nextSync}
	vm.nextSync++
	for i := 0; i < initial; i++ {
		s.tokens = append(s.tokens, 0)
	}
	return s
}

// Post increments the semaphore, waking one waiter if present.
func (s *Semaphore) Post(t *Thread) {
	t.vm.emitSync(t, trace.SemPost, s.id, 0)
	pre := t.vm.splitSegment(t)
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.postSeg = pre
		w.granted = true
		w.t.makeRunnable()
	} else {
		s.tokens = append(s.tokens, pre)
	}
	t.vm.step(t)
}

// Wait decrements the semaphore, blocking while the count is zero.
func (s *Semaphore) Wait(t *Thread) {
	var postSeg trace.SegmentID
	if len(s.tokens) > 0 {
		postSeg = s.tokens[0]
		s.tokens = s.tokens[1:]
	} else {
		w := &semWaiter{t: t}
		s.waiters = append(s.waiters, w)
		t.block("semaphore "+s.name, func() { s.removeWaiter(w) })
		if !w.granted {
			t.vm.guestFail(t, "semaphore %q wakeup without grant", s.name)
		}
		postSeg = w.postSeg
	}
	t.vm.emitSync(t, trace.SemWaitDone, s.id, 0)
	extra := []trace.SegmentEdge{}
	if postSeg != 0 {
		extra = append(extra, trace.SegmentEdge{From: postSeg, Kind: trace.Sem})
	}
	t.vm.splitSegment(t, extra...)
	t.vm.step(t)
}

// TryWait decrements the semaphore if the count is positive, reporting
// success.
func (s *Semaphore) TryWait(t *Thread) bool {
	if len(s.tokens) == 0 {
		t.vm.step(t)
		return false
	}
	postSeg := s.tokens[0]
	s.tokens = s.tokens[1:]
	t.vm.emitSync(t, trace.SemWaitDone, s.id, 0)
	extra := []trace.SegmentEdge{}
	if postSeg != 0 {
		extra = append(extra, trace.SegmentEdge{From: postSeg, Kind: trace.Sem})
	}
	t.vm.splitSegment(t, extra...)
	t.vm.step(t)
	return true
}

func (s *Semaphore) removeWaiter(w *semWaiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

func (s *Semaphore) String() string {
	return fmt.Sprintf("semaphore %q (count %d, %d waiters)", s.name, len(s.tokens), len(s.waiters))
}
