package vm

import (
	"testing"
)

func TestCondBroadcastWakesAll(t *testing.T) {
	v := New(Options{Seed: 6})
	m := v.NewMutex("m")
	c := v.NewCond("c", m)
	ready := false
	woken := 0
	err := v.Run(func(main *Thread) {
		waiters := make([]*Thread, 3)
		for i := range waiters {
			waiters[i] = main.Go("waiter", func(th *Thread) {
				m.Lock(th)
				for !ready {
					c.Wait(th)
				}
				woken++
				m.Unlock(th)
			})
		}
		main.Sleep(10)
		m.Lock(main)
		ready = true
		c.Broadcast(main)
		m.Unlock(main)
		for _, w := range waiters {
			main.Join(w)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestCondSignalWithoutWaitersIsLost(t *testing.T) {
	v := New(Options{Seed: 1})
	m := v.NewMutex("m")
	c := v.NewCond("c", m)
	err := v.Run(func(main *Thread) {
		m.Lock(main)
		c.Signal(main) // nobody waiting: lost, as in pthreads
		m.Unlock(main)
		m.Lock(main)
		if c.WaitTimeout(main, 5) {
			t.Error("a lost signal must not satisfy a later wait")
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCondWaitWithoutMutexIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	m := v.NewMutex("m")
	c := v.NewCond("c", m)
	err := v.Run(func(main *Thread) {
		c.Wait(main) // mutex not held
	})
	if err == nil {
		t.Fatal("cond wait without holding the mutex must fail the guest")
	}
}

func TestMultipleJoiners(t *testing.T) {
	v := New(Options{Seed: 8})
	joined := 0
	err := v.Run(func(main *Thread) {
		slow := main.Go("slow", func(th *Thread) { th.Sleep(20) })
		a := main.Go("joinerA", func(th *Thread) {
			th.Join(slow)
			joined++
		})
		b := main.Go("joinerB", func(th *Thread) {
			th.Join(slow)
			joined++
		})
		main.Join(a)
		main.Join(b)
		main.Join(slow) // joining a finished thread returns immediately
		joined++
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joined != 3 {
		t.Errorf("joined = %d, want 3", joined)
	}
}

func TestJoinSelfIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		main.Join(main)
	})
	if err == nil {
		t.Fatal("self-join must fail the guest")
	}
}

func TestSemaphoreTryWait(t *testing.T) {
	v := New(Options{Seed: 1})
	s := v.NewSemaphore("s", 1)
	err := v.Run(func(main *Thread) {
		if !s.TryWait(main) {
			t.Error("TryWait with count 1 should succeed")
		}
		if s.TryWait(main) {
			t.Error("TryWait with count 0 should fail")
		}
		s.Post(main)
		if !s.TryWait(main) {
			t.Error("TryWait after post should succeed")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueueGetTimeoutDelivers(t *testing.T) {
	v := New(Options{Seed: 2})
	q := v.NewQueue("q", 0)
	err := v.Run(func(main *Thread) {
		p := main.Go("producer", func(th *Thread) {
			th.Sleep(5)
			q.Put(th, "late")
		})
		msg, ok := q.GetTimeout(main, 100)
		if !ok || msg.(string) != "late" {
			t.Errorf("GetTimeout = %v/%v, want late/true", msg, ok)
		}
		main.Join(p)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestQueuePutOnClosedIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	q := v.NewQueue("q", 0)
	err := v.Run(func(main *Thread) {
		q.Close(main)
		q.Put(main, 1)
	})
	if err == nil {
		t.Fatal("put on closed queue must fail the guest")
	}
}

func TestQueueCloseWakesBlockedGetters(t *testing.T) {
	v := New(Options{Seed: 3})
	q := v.NewQueue("q", 0)
	var exits int
	err := v.Run(func(main *Thread) {
		getters := make([]*Thread, 2)
		for i := range getters {
			getters[i] = main.Go("getter", func(th *Thread) {
				if _, ok := q.Get(th); !ok {
					exits++
				}
			})
		}
		main.Sleep(10)
		q.Close(main)
		for _, g := range getters {
			main.Join(g)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if exits != 2 {
		t.Errorf("exits = %d, want 2", exits)
	}
}

func TestQueueDrainAfterClose(t *testing.T) {
	v := New(Options{Seed: 1})
	q := v.NewQueue("q", 8)
	err := v.Run(func(main *Thread) {
		q.Put(main, 1)
		q.Put(main, 2)
		q.Close(main)
		if msg, ok := q.Get(main); !ok || msg.(int) != 1 {
			t.Error("closed queue must drain buffered messages in order")
		}
		if msg, ok := q.Get(main); !ok || msg.(int) != 2 {
			t.Error("second buffered message lost")
		}
		if _, ok := q.Get(main); ok {
			t.Error("drained closed queue must report !ok")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecursiveLockIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	m := v.NewMutex("m")
	err := v.Run(func(main *Thread) {
		m.Lock(main)
		m.Lock(main)
	})
	if err == nil {
		t.Fatal("recursive lock must fail the guest")
	}
}

func TestRWLockMisuseIsGuestError(t *testing.T) {
	cases := []func(*Thread, *RWMutex){
		func(th *Thread, rw *RWMutex) { rw.RUnlock(th) },               // unlock without hold
		func(th *Thread, rw *RWMutex) { rw.WUnlock(th) },               // wunlock without hold
		func(th *Thread, rw *RWMutex) { rw.RLock(th); rw.RLock(th) },   // recursive read
		func(th *Thread, rw *RWMutex) { rw.WLock(th); rw.RLock(th) },   // read while writing
		func(th *Thread, rw *RWMutex) { rw.RLock(th); rw.WUnlock(th) }, // wrong-mode unlock
	}
	for i, bad := range cases {
		v := New(Options{Seed: 1})
		rw := v.NewRWMutex("rw")
		err := v.Run(func(main *Thread) { bad(main, rw) })
		if err == nil {
			t.Errorf("case %d: rwlock misuse must fail the guest", i)
		}
	}
}

func TestLockTimeoutImmediateSuccess(t *testing.T) {
	v := New(Options{Seed: 1})
	m := v.NewMutex("m")
	err := v.Run(func(main *Thread) {
		if !m.LockTimeout(main, 10) {
			t.Error("timed lock on a free mutex should succeed")
		}
		m.Unlock(main)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestLockTimeoutGrantBeforeDeadline(t *testing.T) {
	v := New(Options{Seed: 1})
	m := v.NewMutex("m")
	var got bool
	err := v.Run(func(main *Thread) {
		m.Lock(main)
		w := main.Go("waiter", func(th *Thread) {
			got = m.LockTimeout(th, 1000)
			if got {
				m.Unlock(th)
			}
		})
		main.Sleep(5) // release well before the deadline
		m.Unlock(main)
		main.Join(w)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !got {
		t.Error("waiter should win the lock before its deadline")
	}
}

func TestSetLineBeyondDepthCapIsSafe(t *testing.T) {
	v := New(Options{Seed: 1, StackDepth: 2})
	err := v.Run(func(main *Thread) {
		for i := 0; i < 5; i++ {
			main.PushFrame("f", "f.cpp", i)
		}
		main.SetLine(99) // beyond the cap: must not panic
		b := main.Alloc(4, "x")
		b.Store32(main, 0, 1)
		for i := 0; i < 5; i++ {
			main.PopFrame()
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPopFrameUnderflowIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		main.PopFrame()
	})
	if err == nil {
		t.Fatal("frame underflow must fail the guest")
	}
}

func TestAllocZeroIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		main.Alloc(0, "empty")
	})
	if err == nil {
		t.Fatal("zero-size alloc must fail the guest")
	}
}

func TestOutOfRangeAccessIsGuestError(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		b := main.Alloc(4, "x")
		b.Load64(main, 0) // 8-byte read of a 4-byte block
	})
	if err == nil {
		t.Fatal("out-of-range access must fail the guest")
	}
}

func TestSleepZeroYields(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		main.Sleep(0)
		main.Sleep(-5)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCellRoundTrip(t *testing.T) {
	v := New(Options{Seed: 1})
	err := v.Run(func(main *Thread) {
		c := NewCell(main, "greeting", "hello")
		if c.Get(main) != "hello" {
			t.Error("initial value lost")
		}
		c.Set(main, "world")
		if c.Peek() != "world" {
			t.Error("set value lost")
		}
		c.Poke("direct")
		if c.Get(main) != "direct" {
			t.Error("poked value lost")
		}
		blk := main.Alloc(16, "struct")
		f := CellAt(blk, 8, 4, 7)
		if f.Get(main) != 7 || f.Block() != blk {
			t.Error("field cell misbehaves")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
