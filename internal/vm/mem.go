package vm

import (
	"encoding/binary"

	"repro/internal/trace"
)

// Block is a guest heap allocation. Every access through a Block emits an
// event to the attached tools before taking effect, mirroring Valgrind's
// per-access instrumentation.
type Block struct {
	vm   *VM
	info trace.Block
	data []byte
}

// Alloc allocates size bytes of guest memory with the given origin tag.
// Addresses are never reused at the VM level (the simulated brk only grows),
// so shadow-state confusion can only come from guest-level allocators that
// recycle blocks themselves — exactly the paper's §4 allocator issue.
func (t *Thread) Alloc(size int, tag string) *Block {
	if size <= 0 {
		t.vm.guestFail(t, "alloc of non-positive size %d", size)
	}
	vm := t.vm
	base := vm.nextAddr
	vm.nextAddr += trace.Addr((size+15)&^15) + 16 // 16-byte align plus red zone
	b := &Block{
		vm: vm,
		info: trace.Block{
			ID:     trace.BlockID(len(vm.blocks) + 1),
			Base:   base,
			Size:   uint32(size),
			Tag:    tag,
			Thread: t.id,
			Stack:  t.stackID(),
		},
		data: make([]byte, size),
	}
	vm.blocks = append(vm.blocks, b)
	for _, tool := range vm.tools {
		tool.Alloc(&b.info)
	}
	vm.step(t)
	return b
}

// Free releases the block. Further accesses — and double frees — are
// tolerated by the VM but reported by the memcheck tool, which is what makes
// the destructor annotation safe (§4.2.1).
func (b *Block) Free(t *Thread) {
	for _, tool := range b.vm.tools {
		tool.Free(&b.info, t.id, t.stackID())
	}
	b.info.Freed = true
	b.vm.step(t)
}

// ID returns the block's identifier.
func (b *Block) ID() trace.BlockID { return b.info.ID }

// Base returns the block's guest base address.
func (b *Block) Base() trace.Addr { return b.info.Base }

// Size returns the block's size in bytes.
func (b *Block) Size() int { return int(b.info.Size) }

// Tag returns the block's origin tag.
func (b *Block) Tag() string { return b.info.Tag }

// Freed reports whether the block has been freed.
func (b *Block) Freed() bool { return b.info.Freed }

// access emits an access event and accounts a step.
func (b *Block) access(t *Thread, off, size int, kind trace.AccessKind, atomic bool) {
	if off < 0 || size <= 0 || off+size > len(b.data) {
		t.vm.guestFail(t, "out-of-range access to block %d (%s): off=%d size=%d blocksize=%d",
			b.info.ID, b.info.Tag, off, size, len(b.data))
	}
	ev := trace.Access{
		Thread: t.id,
		Seg:    t.curSeg,
		Block:  b.info.ID,
		Addr:   b.info.Base + trace.Addr(off),
		Off:    uint32(off),
		Size:   uint32(size),
		Kind:   kind,
		Atomic: atomic,
		Stack:  t.stackID(),
	}
	for _, tool := range b.vm.tools {
		tool.Access(&ev)
	}
	b.vm.step(t)
}

// Read emits a plain read event of the given width without touching data.
func (b *Block) Read(t *Thread, off, size int) { b.access(t, off, size, trace.Read, false) }

// Write emits a plain write event of the given width without touching data.
func (b *Block) Write(t *Thread, off, size int) { b.access(t, off, size, trace.Write, false) }

// Load32 reads a 32-bit word.
func (b *Block) Load32(t *Thread, off int) uint32 {
	b.access(t, off, 4, trace.Read, false)
	return binary.LittleEndian.Uint32(b.data[off:])
}

// Store32 writes a 32-bit word.
func (b *Block) Store32(t *Thread, off int, v uint32) {
	b.access(t, off, 4, trace.Write, false)
	binary.LittleEndian.PutUint32(b.data[off:], v)
}

// Load64 reads a 64-bit word.
func (b *Block) Load64(t *Thread, off int) uint64 {
	b.access(t, off, 8, trace.Read, false)
	return binary.LittleEndian.Uint64(b.data[off:])
}

// Store64 writes a 64-bit word.
func (b *Block) Store64(t *Thread, off int, v uint64) {
	b.access(t, off, 8, trace.Write, false)
	binary.LittleEndian.PutUint64(b.data[off:], v)
}

// AtomicAdd32 performs a bus-locked (LOCK-prefixed) read-modify-write of the
// 32-bit word at off, returning the new value. Both the read and the write
// carry the Atomic flag, as the x86 LOCK prefix covers the whole instruction.
func (b *Block) AtomicAdd32(t *Thread, off int, delta int32) int32 {
	if off < 0 || off+4 > len(b.data) {
		t.vm.guestFail(t, "out-of-range atomic access to block %d off=%d", b.info.ID, off)
	}
	stack := t.stackID()
	ev := trace.Access{
		Thread: t.id, Seg: t.curSeg, Block: b.info.ID,
		Addr: b.info.Base + trace.Addr(off), Off: uint32(off), Size: 4,
		Kind: trace.Read, Atomic: true, Stack: stack,
	}
	for _, tool := range b.vm.tools {
		tool.Access(&ev)
	}
	ev.Kind = trace.Write
	for _, tool := range b.vm.tools {
		tool.Access(&ev)
	}
	v := int32(binary.LittleEndian.Uint32(b.data[off:])) + delta
	binary.LittleEndian.PutUint32(b.data[off:], uint32(v))
	b.vm.step(t)
	return v
}

// AtomicLoad32 performs a bus-locked read of the 32-bit word at off.
func (b *Block) AtomicLoad32(t *Thread, off int) uint32 {
	b.access(t, off, 4, trace.Read, true)
	return binary.LittleEndian.Uint32(b.data[off:])
}

// AtomicCAS32 performs a bus-locked compare-and-swap, reporting success.
func (b *Block) AtomicCAS32(t *Thread, off int, old, new uint32) bool {
	if off < 0 || off+4 > len(b.data) {
		t.vm.guestFail(t, "out-of-range atomic access to block %d off=%d", b.info.ID, off)
	}
	stack := t.stackID()
	ev := trace.Access{
		Thread: t.id, Seg: t.curSeg, Block: b.info.ID,
		Addr: b.info.Base + trace.Addr(off), Off: uint32(off), Size: 4,
		Kind: trace.Read, Atomic: true, Stack: stack,
	}
	for _, tool := range b.vm.tools {
		tool.Access(&ev)
	}
	cur := binary.LittleEndian.Uint32(b.data[off:])
	ok := cur == old
	if ok {
		ev.Kind = trace.Write
		for _, tool := range b.vm.tools {
			tool.Access(&ev)
		}
		binary.LittleEndian.PutUint32(b.data[off:], new)
	}
	b.vm.step(t)
	return ok
}

// Request emits a client request covering [off, off+size) of the block — the
// user-space call mechanism of Fig. 4 (VALGRIND_HG_DESTRUCT and friends). A
// no-op for execution, it only informs the tools.
func (b *Block) Request(t *Thread, kind trace.RequestKind, off, size int) {
	r := trace.Request{
		Kind:   kind,
		Thread: t.id,
		Block:  b.info.ID,
		Off:    uint32(off),
		Size:   uint32(size),
		Stack:  t.stackID(),
	}
	for _, tool := range b.vm.tools {
		tool.Request(&r)
	}
	b.vm.step(t)
}

// Cell is a typed guest memory location of a fixed width. The value lives on
// the Go side; the simulated address exists so that the analysis tools see
// realistic per-field accesses.
type Cell[T any] struct {
	b    *Block
	off  int
	size int
	v    T
}

// CellAt binds a typed cell to [off, off+size) of an existing block.
func CellAt[T any](b *Block, off, size int, init T) *Cell[T] {
	return &Cell[T]{b: b, off: off, size: size, v: init}
}

// NewCell allocates a standalone 8-byte guest location holding a typed value.
func NewCell[T any](t *Thread, tag string, init T) *Cell[T] {
	b := t.Alloc(8, tag)
	return CellAt(b, 0, 8, init)
}

// Get reads the cell (emitting a read access).
func (c *Cell[T]) Get(t *Thread) T {
	c.b.access(t, c.off, c.size, trace.Read, false)
	return c.v
}

// Set writes the cell (emitting a write access).
func (c *Cell[T]) Set(t *Thread, v T) {
	c.b.access(t, c.off, c.size, trace.Write, false)
	c.v = v
}

// Peek returns the value without emitting an access. For test assertions and
// harness bookkeeping only.
func (c *Cell[T]) Peek() T { return c.v }

// Poke sets the value without emitting an access. For harness setup only.
func (c *Cell[T]) Poke(v T) { c.v = v }

// Block returns the underlying block.
func (c *Cell[T]) Block() *Block { return c.b }

// AtomicI32 is a 32-bit guest counter supporting both bus-locked and plain
// accesses — the access mix of the libstdc++ string reference counter
// (Fig. 8/9): increments and decrements use the LOCK prefix, while
// "is-shared" checks are plain reads.
type AtomicI32 struct {
	b   *Block
	off int
}

// AtomicI32At binds an atomic counter to offset off of a block.
func AtomicI32At(b *Block, off int) *AtomicI32 { return &AtomicI32{b: b, off: off} }

// Add performs a bus-locked add and returns the new value.
func (a *AtomicI32) Add(t *Thread, delta int32) int32 { return a.b.AtomicAdd32(t, a.off, delta) }

// Load performs a PLAIN (non-bus-locked) read, as the libstdc++ leak and
// uniqueness checks do.
func (a *AtomicI32) Load(t *Thread) int32 { return int32(a.b.Load32(t, a.off)) }

// AtomicLoad performs a bus-locked read.
func (a *AtomicI32) AtomicLoad(t *Thread) int32 { return int32(a.b.AtomicLoad32(t, a.off)) }

// Store performs a plain write.
func (a *AtomicI32) Store(t *Thread, v int32) { a.b.Store32(t, a.off, uint32(v)) }

// Peek returns the value without emitting an access.
func (a *AtomicI32) Peek() int32 {
	return int32(binary.LittleEndian.Uint32(a.b.data[a.off:]))
}
