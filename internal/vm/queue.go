package vm

import "repro/internal/trace"

// Queue is a guest FIFO message queue — the higher-level synchronisation
// construct behind the thread-pool pattern of Fig. 11. Put and get create
// segment edges of kind trace.Queue from the putter's segment before the put
// to the getter's segment after the get; the stock Helgrind configuration
// ignores those edges (producing the ownership-transfer false positives),
// while the paper's future-work extension honours them.
type Queue struct {
	vm         *VM
	id         trace.SyncID
	name       string
	capacity   int // <= 0 means unbounded
	msgs       []qmsg
	getWaiters []*qGetWaiter
	putWaiters []*qPutWaiter
	closed     bool
}

type qmsg struct {
	v       any
	fromSeg trace.SegmentID
	id      int64
}

type qGetWaiter struct {
	t   *Thread
	msg qmsg
	got bool
}

type qPutWaiter struct {
	t        *Thread
	msg      qmsg
	accepted bool
}

// NewQueue creates a message queue. capacity <= 0 means unbounded.
func (vm *VM) NewQueue(name string, capacity int) *Queue {
	q := &Queue{vm: vm, name: name, capacity: capacity, id: vm.nextSync}
	vm.nextSync++
	return q
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Len returns the number of buffered messages.
func (q *Queue) Len() int { return len(q.msgs) }

// Closed reports whether the queue has been closed.
func (q *Queue) Closed() bool { return q.closed }

// Put appends a message, blocking while a bounded queue is full.
func (q *Queue) Put(t *Thread, v any) {
	if q.closed {
		t.vm.guestFail(t, "put on closed queue %q", q.name)
	}
	q.vm.nextMsg++
	id := q.vm.nextMsg
	t.vm.emitSync(t, trace.QueuePut, q.id, id)
	pre := t.vm.splitSegment(t)
	msg := qmsg{v: v, fromSeg: pre, id: id}

	if len(q.getWaiters) > 0 {
		w := q.getWaiters[0]
		q.getWaiters = q.getWaiters[1:]
		w.msg = msg
		w.got = true
		w.t.makeRunnable()
		t.vm.step(t)
		return
	}
	if q.capacity <= 0 || len(q.msgs) < q.capacity {
		q.msgs = append(q.msgs, msg)
		t.vm.step(t)
		return
	}
	w := &qPutWaiter{t: t, msg: msg}
	q.putWaiters = append(q.putWaiters, w)
	t.block("queue-put "+q.name, func() { q.removePutWaiter(w) })
	if !w.accepted {
		t.vm.guestFail(t, "queue %q put wakeup without acceptance", q.name)
	}
	t.vm.step(t)
}

// Get removes and returns the oldest message, blocking while the queue is
// empty. ok is false when the queue is closed and drained.
func (q *Queue) Get(t *Thread) (v any, ok bool) {
	return q.get(t, -1)
}

// GetTimeout is Get with a deadline in virtual ticks; ok is false on timeout
// or when the queue is closed and drained.
func (q *Queue) GetTimeout(t *Thread, ticks int64) (v any, ok bool) {
	return q.get(t, ticks)
}

func (q *Queue) get(t *Thread, ticks int64) (any, bool) {
	for {
		if len(q.msgs) > 0 {
			msg := q.msgs[0]
			q.msgs = q.msgs[1:]
			q.shiftBlockedPut()
			q.finishGet(t, msg)
			return msg.v, true
		}
		if q.closed {
			t.vm.step(t)
			return nil, false
		}
		w := &qGetWaiter{t: t}
		q.getWaiters = append(q.getWaiters, w)
		if ticks >= 0 {
			if !t.blockTimeout("queue-get "+q.name, ticks, func() { q.removeGetWaiter(w) }) {
				t.vm.step(t)
				return nil, false
			}
		} else {
			t.block("queue-get "+q.name, func() { q.removeGetWaiter(w) })
		}
		if w.got {
			q.finishGet(t, w.msg)
			return w.msg.v, true
		}
		// Woken by Close: loop to drain anything left, then return !ok.
	}
}

// finishGet emits the get event and the segment edge from the producing put.
func (q *Queue) finishGet(t *Thread, msg qmsg) {
	t.vm.emitSync(t, trace.QueueGet, q.id, msg.id)
	t.vm.splitSegment(t, trace.SegmentEdge{From: msg.fromSeg, Kind: trace.Queue})
	t.vm.step(t)
}

// shiftBlockedPut moves the oldest blocked putter's message into the buffer
// after a get made room.
func (q *Queue) shiftBlockedPut() {
	if len(q.putWaiters) == 0 {
		return
	}
	w := q.putWaiters[0]
	q.putWaiters = q.putWaiters[1:]
	q.msgs = append(q.msgs, w.msg)
	w.accepted = true
	w.t.makeRunnable()
}

// Close marks the queue closed. Blocked getters wake and observe ok=false
// once the buffer drains. Putting on a closed queue is a guest error.
func (q *Queue) Close(t *Thread) {
	q.closed = true
	for _, w := range q.getWaiters {
		w.t.makeRunnable()
	}
	q.getWaiters = nil
	t.vm.step(t)
}

func (q *Queue) removeGetWaiter(w *qGetWaiter) {
	for i, x := range q.getWaiters {
		if x == w {
			q.getWaiters = append(q.getWaiters[:i], q.getWaiters[i+1:]...)
			return
		}
	}
}

func (q *Queue) removePutWaiter(w *qPutWaiter) {
	for i, x := range q.putWaiters {
		if x == w {
			q.putWaiters = append(q.putWaiters[:i], q.putWaiters[i+1:]...)
			return
		}
	}
}
