// Package vm implements the deterministic virtual machine that plays the
// role of the Valgrind core in the paper (§2.3.1, Fig. 3). Guest programs are
// written against the VM API (threads, mutexes, read-write locks, condition
// variables, semaphores, message queues, a simulated heap) and every
// operation is reported to attached analysis tools (trace.Sink) before it
// takes effect.
//
// Guest threads are goroutines, but at most one runs at any instant: a baton
// is handed from thread to thread by a scheduler that picks the next runnable
// thread with a seeded PRNG at every preemption point (by default, every VM
// operation). Given the same seed the interleaving is bit-for-bit
// reproducible; different seeds explore different schedules, which is how the
// paper's schedule-dependent effects (§4.1.1, §4.3) are reproduced.
//
// The VM also maintains thread segments (Fig. 2): a thread's execution is
// split at create/join and at higher-level synchronisation operations, and
// every new segment is announced to tools together with its incoming
// happens-before edges.
package vm

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Options configures a VM.
type Options struct {
	// Seed drives the scheduler PRNG. Runs with equal seeds and equal guest
	// programs produce identical interleavings and event streams.
	Seed int64
	// Quantum is the number of guest operations a thread may execute before
	// the scheduler considers a preemption. 1 (the default) reschedules at
	// every operation — maximal interleaving sensitivity; larger values trade
	// sensitivity for speed in long benchmark runs.
	Quantum int
	// MaxSteps aborts the run after this many guest operations, as a guard
	// against runaway guest programs. Defaults to 50 million.
	MaxSteps int64
	// StackDepth caps the number of frames recorded per event stack.
	// Defaults to 16.
	StackDepth int
}

func (o Options) withDefaults() Options {
	if o.Quantum <= 0 {
		o.Quantum = 1
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 50_000_000
	}
	if o.StackDepth <= 0 {
		o.StackDepth = 16
	}
	return o
}

type threadState uint8

const (
	tsRunnable threadState = iota
	tsBlocked
	tsSleeping
	tsFinished
)

func (s threadState) String() string {
	switch s {
	case tsRunnable:
		return "runnable"
	case tsBlocked:
		return "blocked"
	case tsSleeping:
		return "sleeping"
	default:
		return "finished"
	}
}

// abortSentinel is panicked through guest goroutines to unwind them when the
// VM aborts (global deadlock, guest panic or step-limit overrun).
type abortSentinelType struct{}

var abortSentinel = abortSentinelType{}

// DeadlockInfo describes a global guest deadlock: every live thread is
// blocked with no pending timeout.
type DeadlockInfo struct {
	Clock   int64
	Blocked []BlockedThread
}

// BlockedThread is one thread participating in a global deadlock.
type BlockedThread struct {
	ID    trace.ThreadID
	Name  string
	State string
	On    string // description of what it is blocked on
}

func (d *DeadlockInfo) String() string {
	s := fmt.Sprintf("global deadlock at tick %d:", d.Clock)
	for _, b := range d.Blocked {
		s += fmt.Sprintf("\n  thread %d (%s) %s on %s", b.ID, b.Name, b.State, b.On)
	}
	return s
}

// DeadlockError is returned by Run when the guest program deadlocks.
type DeadlockError struct{ Info *DeadlockInfo }

func (e *DeadlockError) Error() string { return e.Info.String() }

// VM is the virtual machine. Create one with New, attach tools with AddTool,
// then call Run with the guest program's main function.
type VM struct {
	opt   Options
	rng   *rand.Rand
	tools []trace.Sink

	mu      sync.Mutex // protects err for the Run goroutine; guest side is single-batoned
	threads []*Thread
	running *Thread
	wg      sync.WaitGroup

	stacks *StackTable
	blocks []*Block // index = BlockID-1

	nextAddr trace.Addr
	nextLock trace.LockID
	nextSync trace.SyncID
	nextSeg  trace.SegmentID
	nextMsg  int64

	clock    int64
	steps    int64
	aborted  bool
	err      error
	deadlock *DeadlockInfo

	// scratch buffer reused by the scheduler to avoid per-step allocation.
	runnableScratch []*Thread
}

// New creates a VM with the given options.
func New(opt Options) *VM {
	opt = opt.withDefaults()
	return &VM{
		opt:      opt,
		rng:      rand.New(rand.NewSource(opt.Seed)),
		stacks:   NewStackTable(),
		nextAddr: 0x1000_0000, // distinctive, non-zero guest base
		nextLock: 1,           // 0 is the bus-lock pseudo-lock
		nextSync: 1,
	}
}

// AddTool attaches an analysis tool. Tools must be attached before Run.
func (vm *VM) AddTool(t trace.Sink) { vm.tools = append(vm.tools, t) }

// Stacks returns the VM's interned stack table (for report resolution).
func (vm *VM) Stacks() *StackTable { return vm.stacks }

// Stack resolves an interned stack ID; part of trace.Resolver.
func (vm *VM) Stack(id trace.StackID) []trace.Frame { return vm.stacks.Frames(id) }

// BlockInfo resolves a block ID; part of trace.Resolver.
func (vm *VM) BlockInfo(id trace.BlockID) *trace.Block {
	if id < 1 || int(id) > len(vm.blocks) {
		return nil
	}
	return &vm.blocks[id-1].info
}

// Steps returns the number of guest operations executed so far.
func (vm *VM) Steps() int64 { return vm.steps }

// Clock returns the current virtual time in ticks.
func (vm *VM) Clock() int64 { return vm.clock }

// Deadlock returns information about a global guest deadlock, or nil.
func (vm *VM) Deadlock() *DeadlockInfo { return vm.deadlock }

// Seed returns the scheduler seed the VM was created with.
func (vm *VM) Seed() int64 { return vm.opt.Seed }

// Run executes the guest program to completion (or abort) and returns the
// first fatal error: a guest panic, the step limit, or a *DeadlockError.
// Run may be called only once per VM.
func (vm *VM) Run(body func(*Thread)) error {
	main := vm.newThread("main", nil, body)
	vm.running = main
	main.wake <- struct{}{}
	vm.wg.Wait()
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.err != nil {
		return vm.err
	}
	if vm.deadlock != nil {
		return &DeadlockError{Info: vm.deadlock}
	}
	return nil
}

// newThread creates a thread, emits its start events and first segment, and
// launches its goroutine (parked until scheduled). parent is nil for main.
func (vm *VM) newThread(name string, parent *Thread, body func(*Thread)) *Thread {
	t := &Thread{
		vm:      vm,
		id:      trace.ThreadID(len(vm.threads) + 1),
		name:    name,
		state:   tsRunnable,
		wake:    make(chan struct{}, 1),
		body:    body,
		quantum: vm.opt.Quantum,
	}
	vm.threads = append(vm.threads, t)
	var parentID trace.ThreadID
	var edges []trace.SegmentEdge
	if parent != nil {
		parentID = parent.id
		edges = []trace.SegmentEdge{{From: parent.curSeg, Kind: trace.Create}}
	}
	for _, tool := range vm.tools {
		tool.ThreadStart(t.id, parentID)
	}
	vm.newSegment(t, edges)
	vm.wg.Add(1)
	go t.trampoline()
	return t
}

// newSegment starts a fresh segment for t with the given incoming edges and
// announces it to the tools.
func (vm *VM) newSegment(t *Thread, edges []trace.SegmentEdge) {
	vm.nextSeg++
	t.curSeg = vm.nextSeg
	ss := trace.SegmentStart{Seg: t.curSeg, Thread: t.id, In: edges}
	for _, tool := range vm.tools {
		tool.Segment(&ss)
	}
}

// splitSegment ends t's current segment and starts a new one linked by a
// Program edge plus the given extra edges. It returns the segment that was
// current before the split.
func (vm *VM) splitSegment(t *Thread, extra ...trace.SegmentEdge) trace.SegmentID {
	pre := t.curSeg
	edges := make([]trace.SegmentEdge, 0, 1+len(extra))
	edges = append(edges, trace.SegmentEdge{From: pre, Kind: trace.Program})
	edges = append(edges, extra...)
	vm.newSegment(t, edges)
	return pre
}

// step accounts one guest operation and reschedules if the quantum expired.
func (vm *VM) step(t *Thread) {
	vm.steps++
	if vm.steps > vm.opt.MaxSteps {
		vm.fatal(t, fmt.Errorf("vm: step limit exceeded (%d)", vm.opt.MaxSteps))
	}
	t.quantum--
	if t.quantum <= 0 {
		vm.reschedule(t)
	}
}

// reschedule picks the next thread to run. Called with the baton held by
// cur's goroutine (cur may be runnable, blocked, sleeping or finished).
func (vm *VM) reschedule(cur *Thread) {
	vm.clock++
	vm.wakeExpired()
	for {
		runnable := vm.runnableScratch[:0]
		for _, t := range vm.threads {
			if t.state == tsRunnable {
				runnable = append(runnable, t)
			}
		}
		vm.runnableScratch = runnable
		if len(runnable) > 0 {
			next := runnable[0]
			if len(runnable) > 1 {
				next = runnable[vm.rng.Intn(len(runnable))]
			}
			if next == cur {
				cur.quantum = vm.opt.Quantum
				return
			}
			// All shared-state work (including reading cur.state) must
			// happen before the baton is handed over: the wake send is the
			// happens-before edge to the next thread, and anything cur
			// touches after it would race with the new baton holder.
			vm.running = next
			needPark := cur.state != tsFinished
			cur.quantum = vm.opt.Quantum
			next.wake <- struct{}{}
			if needPark {
				cur.park()
			}
			return
		}
		if vm.fastForward() {
			continue
		}
		live := 0
		for _, t := range vm.threads {
			if t.state != tsFinished {
				live++
			}
		}
		if live == 0 {
			return
		}
		vm.recordDeadlock()
		vm.abortAll(cur)
		if cur.state != tsFinished {
			panic(abortSentinel)
		}
		return
	}
}

// wakeExpired moves threads whose deadlines have passed back to runnable.
func (vm *VM) wakeExpired() {
	for _, t := range vm.threads {
		if (t.state == tsBlocked || t.state == tsSleeping) && t.hasDeadline && t.deadline <= vm.clock {
			if t.cancelWait != nil {
				t.cancelWait()
				t.cancelWait = nil
			}
			if t.state == tsBlocked {
				t.timedOut = true
			}
			t.hasDeadline = false
			t.state = tsRunnable
		}
	}
}

// fastForward advances the virtual clock to the earliest pending deadline.
// It returns false when no thread has a deadline.
func (vm *VM) fastForward() bool {
	var min int64
	found := false
	for _, t := range vm.threads {
		if (t.state == tsBlocked || t.state == tsSleeping) && t.hasDeadline {
			if !found || t.deadline < min {
				min = t.deadline
				found = true
			}
		}
	}
	if !found {
		return false
	}
	if min > vm.clock {
		vm.clock = min
	}
	vm.wakeExpired()
	return true
}

func (vm *VM) recordDeadlock() {
	info := &DeadlockInfo{Clock: vm.clock}
	for _, t := range vm.threads {
		if t.state == tsFinished {
			continue
		}
		info.Blocked = append(info.Blocked, BlockedThread{
			ID:    t.id,
			Name:  t.name,
			State: t.state.String(),
			On:    t.waitDesc,
		})
	}
	sort.Slice(info.Blocked, func(i, j int) bool { return info.Blocked[i].ID < info.Blocked[j].ID })
	vm.deadlock = info
}

// abortAll tears the VM down: every parked guest goroutine is woken and
// unwinds via the abort sentinel.
func (vm *VM) abortAll(cur *Thread) {
	vm.aborted = true
	for _, t := range vm.threads {
		if t == cur || t.state == tsFinished {
			continue
		}
		t.wake <- struct{}{}
	}
}

// fatal records a fatal error and aborts the VM. It does not return.
func (vm *VM) fatal(t *Thread, err error) {
	vm.mu.Lock()
	if vm.err == nil {
		vm.err = err
	}
	vm.mu.Unlock()
	t.state = tsFinished
	vm.abortAll(t)
	panic(abortSentinel)
}

// guestFail reports a guest programming error (e.g. unlocking a mutex the
// thread does not own). It aborts the run.
func (vm *VM) guestFail(t *Thread, format string, args ...any) {
	vm.fatal(t, fmt.Errorf("guest error in thread %d (%s): %s", t.id, t.name, fmt.Sprintf(format, args...)))
}

var _ trace.Resolver = (*VM)(nil)
