// Package sipp is the traffic generator of the paper's test bed (§3.3): a
// SIPp-like driver that replays scripted request scenarios against the SIP
// server. The eight test cases T1–T8 correspond to the rows of Fig. 5/6;
// each exercises a different mix of code paths and volume, which is what
// produces the per-row variation in reported locations.
package sipp

import (
	"fmt"

	"repro/internal/sip"
	"repro/internal/vm"
)

// Scenario generates the wire messages of one protocol exchange for one
// simulated user agent.
type Scenario struct {
	Name string
	// Messages produces the exchange for call i of client user.
	Messages func(user, domain string, i int) []string
}

// RegisterScenario is a REGISTER/200 exchange.
var RegisterScenario = Scenario{
	Name: "register",
	Messages: func(user, domain string, i int) []string {
		return []string{registerMsg(user, domain, i)}
	},
}

// CallScenario is a complete INVITE/180/200 - ACK - BYE/200 call.
var CallScenario = Scenario{
	Name: "call",
	Messages: func(user, domain string, i int) []string {
		callID := fmt.Sprintf("%s-call-%d@client.invalid", user, i)
		return []string{
			inviteMsg(user, domain, callID, 1),
			ackMsg(user, domain, callID, 1),
			byeMsg(user, domain, callID, 2),
		}
	},
}

// OptionsScenario is an OPTIONS keepalive probe.
var OptionsScenario = Scenario{
	Name: "options",
	Messages: func(user, domain string, i int) []string {
		return []string{optionsMsg(user, domain, i)}
	},
}

// AbandonedCallScenario is an INVITE immediately CANCELled.
var AbandonedCallScenario = Scenario{
	Name: "abandoned",
	Messages: func(user, domain string, i int) []string {
		callID := fmt.Sprintf("%s-abort-%d@client.invalid", user, i)
		return []string{
			inviteMsg(user, domain, callID, 1),
			cancelMsg(user, domain, callID, 1),
		}
	},
}

// ReRegisterScenario registers the same user twice (binding replacement).
var ReRegisterScenario = Scenario{
	Name: "reregister",
	Messages: func(user, domain string, i int) []string {
		return []string{
			registerMsg(user, domain, 2*i),
			registerMsg(user, domain, 2*i+1),
		}
	},
}

// MalformedScenario sends garbage to exercise the error path.
var MalformedScenario = Scenario{
	Name: "malformed",
	Messages: func(user, domain string, i int) []string {
		return []string{"NOTAMETHOD sip:x SIP/1.0\r\n\r\n"}
	},
}

// Step is one weighted scenario within a test case.
type Step struct {
	Scenario Scenario
	// Repeat is how many exchanges each client performs.
	Repeat int
}

// TestCase is one row of Fig. 5/6.
type TestCase struct {
	ID   string
	Name string
	// Clients is the number of concurrent driver threads.
	Clients int
	// Steps run sequentially per client.
	Steps []Step
	// PaceTicks is the virtual-time gap between injected messages.
	PaceTicks int64
}

// Cases returns the eight test cases T1–T8 (§3.3: "eight of eleven test
// cases used for the experiments on the SIP proxy server ran without
// changes"). The mixes are reconstructed from the paper's description of the
// application (registrations, call setup, keepalives, abandoned calls,
// churn, shutdown under load).
func Cases() []TestCase {
	return []TestCase{
		{
			ID: "T1", Name: "registration storm", Clients: 4, PaceTicks: 400,
			Steps: []Step{{RegisterScenario, 6}, {ReRegisterScenario, 3}},
		},
		{
			ID: "T2", Name: "basic calls", Clients: 2, PaceTicks: 500,
			Steps: []Step{{RegisterScenario, 1}, {CallScenario, 4}},
		},
		{
			ID: "T3", Name: "keepalive probes", Clients: 2, PaceTicks: 450,
			Steps: []Step{{OptionsScenario, 8}, {CallScenario, 1}},
		},
		{
			ID: "T4", Name: "concurrent dialogs", Clients: 5, PaceTicks: 350,
			Steps: []Step{{RegisterScenario, 1}, {CallScenario, 4}},
		},
		{
			ID: "T5", Name: "mixed load", Clients: 5, PaceTicks: 350,
			Steps: []Step{{RegisterScenario, 2}, {CallScenario, 3}, {OptionsScenario, 3}, {ReRegisterScenario, 2}},
		},
		{
			ID: "T6", Name: "churn stress", Clients: 6, PaceTicks: 300,
			Steps: []Step{{ReRegisterScenario, 3}, {CallScenario, 3}, {AbandonedCallScenario, 2}, {MalformedScenario, 1}},
		},
		{
			ID: "T7", Name: "multi-domain routing", Clients: 3, PaceTicks: 450,
			Steps: []Step{{RegisterScenario, 1}, {CallScenario, 3}, {OptionsScenario, 2}},
		},
		{
			ID: "T8", Name: "shutdown under load", Clients: 4, PaceTicks: 250,
			Steps: []Step{{RegisterScenario, 2}, {CallScenario, 2}, {AbandonedCallScenario, 1}},
		},
	}
}

// CaseByID looks a test case up ("T1".."T8").
func CaseByID(id string) (TestCase, bool) {
	for _, tc := range Cases() {
		if tc.ID == id {
			return tc, true
		}
	}
	return TestCase{}, false
}

// MessageCount returns the number of messages the case injects.
func (tc TestCase) MessageCount() int {
	perClient := 0
	for _, st := range tc.Steps {
		for i := 0; i < st.Repeat; i++ {
			perClient += len(st.Scenario.Messages("u", "d", i))
		}
	}
	return perClient * tc.Clients
}

// Drive injects the test case's traffic into the server from Clients
// concurrent guest threads, with a sink thread draining responses. It
// returns once every client finished, handing back the sink thread: the
// caller stops the server (which closes the response queue) and then joins
// the sink.
func (tc TestCase) Drive(t *vm.Thread, srv *sip.Server, domains []string) *vm.Thread {
	sink := t.Go("sipp-sink", func(th *vm.Thread) {
		for {
			if _, ok := srv.Responses().Get(th); !ok {
				return
			}
		}
	})
	clients := make([]*vm.Thread, tc.Clients)
	for c := 0; c < tc.Clients; c++ {
		c := c
		clients[c] = t.Go(fmt.Sprintf("sipp-client-%d", c), func(th *vm.Thread) {
			user := fmt.Sprintf("user%d", c)
			domain := domains[c%len(domains)]
			for _, st := range tc.Steps {
				for i := 0; i < st.Repeat; i++ {
					for _, raw := range st.Scenario.Messages(user, domain, i) {
						srv.Inject(th, raw)
						th.Sleep(tc.PaceTicks)
					}
				}
			}
		})
	}
	for _, c := range clients {
		t.Join(c)
	}
	return sink
}

// ---- wire message builders ----

func registerMsg(user, domain string, i int) string {
	m := sip.NewRequest(sip.REGISTER, "sip:"+domain)
	m.SetHeader("Via", "SIP/2.0/UDP client.invalid")
	m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("To", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("Call-ID", fmt.Sprintf("%s-reg-%d@client.invalid", user, i))
	m.SetHeader("CSeq", fmt.Sprintf("%d REGISTER", i+1))
	m.SetHeader("Contact", fmt.Sprintf("sip:%s@client-%d.invalid", user, i))
	m.SetHeader("Expires", "3600")
	return m.Serialize()
}

func inviteMsg(user, domain, callID string, seq int) string {
	m := sip.NewRequest(sip.INVITE, fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Via", "SIP/2.0/UDP client.invalid")
	m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("To", fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Call-ID", callID)
	m.SetHeader("CSeq", fmt.Sprintf("%d INVITE", seq))
	m.SetHeader("Contact", fmt.Sprintf("sip:%s@client.invalid", user))
	m.Body = "v=0 o=- s=call"
	return m.Serialize()
}

func ackMsg(user, domain, callID string, seq int) string {
	m := sip.NewRequest(sip.ACK, fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Via", "SIP/2.0/UDP client.invalid")
	m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("To", fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Call-ID", callID)
	m.SetHeader("CSeq", fmt.Sprintf("%d ACK", seq))
	return m.Serialize()
}

func byeMsg(user, domain, callID string, seq int) string {
	m := sip.NewRequest(sip.BYE, fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Via", "SIP/2.0/UDP client.invalid")
	m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("To", fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Call-ID", callID)
	m.SetHeader("CSeq", fmt.Sprintf("%d BYE", seq))
	return m.Serialize()
}

func cancelMsg(user, domain, callID string, seq int) string {
	m := sip.NewRequest(sip.CANCEL, fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Via", "SIP/2.0/UDP client.invalid")
	m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("To", fmt.Sprintf("sip:peer@%s", domain))
	m.SetHeader("Call-ID", callID)
	m.SetHeader("CSeq", fmt.Sprintf("%d CANCEL", seq))
	return m.Serialize()
}

func optionsMsg(user, domain string, i int) string {
	m := sip.NewRequest(sip.OPTIONS, "sip:"+domain)
	m.SetHeader("Via", "SIP/2.0/UDP client.invalid")
	m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, domain))
	m.SetHeader("To", "sip:"+domain)
	m.SetHeader("Call-ID", fmt.Sprintf("%s-opt-%d@client.invalid", user, i))
	m.SetHeader("CSeq", fmt.Sprintf("%d OPTIONS", i+1))
	return m.Serialize()
}
