package sipp

import (
	"testing"

	"repro/internal/sip"
)

func TestCasesWellFormed(t *testing.T) {
	cases := Cases()
	if len(cases) != 8 {
		t.Fatalf("got %d cases, want 8 (T1..T8)", len(cases))
	}
	seen := map[string]bool{}
	for i, tc := range cases {
		want := "T" + string(rune('1'+i))
		if tc.ID != want {
			t.Errorf("case %d ID = %s, want %s", i, tc.ID, want)
		}
		if seen[tc.ID] {
			t.Errorf("duplicate case %s", tc.ID)
		}
		seen[tc.ID] = true
		if tc.Clients <= 0 || len(tc.Steps) == 0 || tc.PaceTicks <= 0 {
			t.Errorf("case %s badly formed: %+v", tc.ID, tc)
		}
		if tc.MessageCount() <= 0 {
			t.Errorf("case %s has no messages", tc.ID)
		}
	}
}

func TestCaseByID(t *testing.T) {
	if _, ok := CaseByID("T5"); !ok {
		t.Error("T5 not found")
	}
	if _, ok := CaseByID("T9"); ok {
		t.Error("T9 should not exist")
	}
}

func TestScenarioMessagesParse(t *testing.T) {
	scenarios := []Scenario{
		RegisterScenario, CallScenario, OptionsScenario,
		AbandonedCallScenario, ReRegisterScenario,
	}
	for _, sc := range scenarios {
		for i := 0; i < 3; i++ {
			for _, raw := range sc.Messages("alice", "a.example.com", i) {
				if _, err := sip.Parse(raw); err != nil {
					t.Errorf("scenario %s message %d unparseable: %v\n%s", sc.Name, i, err, raw)
				}
			}
		}
	}
}

func TestMalformedScenarioIsMalformed(t *testing.T) {
	for _, raw := range MalformedScenario.Messages("u", "d", 0) {
		if _, err := sip.Parse(raw); err == nil {
			t.Error("malformed scenario parsed successfully")
		}
	}
}

func TestCallScenarioSharesCallID(t *testing.T) {
	msgs := CallScenario.Messages("alice", "d", 7)
	if len(msgs) != 3 {
		t.Fatalf("call = %d messages, want 3", len(msgs))
	}
	var ids []string
	for _, raw := range msgs {
		m, err := sip.Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.CallID())
	}
	if ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("call legs have different Call-IDs: %v", ids)
	}
	// Distinct calls get distinct IDs.
	other, _ := sip.Parse(CallScenario.Messages("alice", "d", 8)[0])
	if other.CallID() == ids[0] {
		t.Error("different calls share a Call-ID")
	}
}

func TestMessageCountMatchesSteps(t *testing.T) {
	tc := TestCase{
		ID: "X", Clients: 3, PaceTicks: 1,
		Steps: []Step{{RegisterScenario, 2}, {CallScenario, 1}},
	}
	// register: 1 msg x2, call: 3 msgs x1 => 5 per client, 15 total.
	if got := tc.MessageCount(); got != 15 {
		t.Errorf("MessageCount = %d, want 15", got)
	}
}
