package ingest

import (
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// sampleResult builds a representative backend result: a collector with two
// sites, summaries, shed tools, non-trivial counters.
func sampleResult() *BackendResult {
	col := report.NewCollector(nil, nil)
	col.Add(trace.Warning{Tool: "lockset", Kind: trace.KindRace, Stack: 7, Block: 3, Off: 16, Size: 4})
	col.Add(trace.Warning{Tool: "lockset", Kind: trace.KindRace, Stack: 7, Block: 3, Off: 16, Size: 4})
	col.Add(trace.Warning{Tool: "memcheck", Kind: trace.KindUseAfterFree, Stack: 9, Block: 5})
	return &BackendResult{
		Name:       "sess-1",
		Events:     12345,
		SampledOut: 67,
		Shed:       []string{"deadlock", "highlevel"},
		Report:     "== report text ==\nwith lines\n",
		Sums: map[string]trace.ToolSummary{
			"memcheck": {"errors": 2, "leaks": 1},
			"lockset":  {"races": 2},
		},
		Col: col,
	}
}

func TestBackendResultRoundTrip(t *testing.T) {
	res := sampleResult()
	got, err := decodeBackendResult(res.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != res.Name || got.Events != res.Events || got.SampledOut != res.SampledOut ||
		got.Report != res.Report {
		t.Errorf("scalar fields drifted: %+v", got)
	}
	if len(got.Shed) != 2 || got.Shed[0] != "deadlock" || got.Shed[1] != "highlevel" {
		t.Errorf("shed = %v", got.Shed)
	}
	if got.Sums["memcheck"]["errors"] != 2 || got.Sums["lockset"]["races"] != 2 {
		t.Errorf("sums = %v", got.Sums)
	}
	if got.Col.Manifest() != res.Col.Manifest() {
		t.Errorf("collector manifest drifted:\n%s\nvs\n%s", got.Col.Manifest(), res.Col.Manifest())
	}
	// Encoding is a pure function of content (sorted summaries), so two
	// encodes agree byte for byte.
	if string(res.encode(nil)) != string(res.encode(nil)) {
		t.Error("encode not deterministic")
	}
}

func TestBackendResultHostile(t *testing.T) {
	good := sampleResult().encode(nil)
	cases := map[string][]byte{
		"empty":         {},
		"bad version":   {99},
		"truncated":     good[:len(good)/2],
		"trailing byte": append(append([]byte{}, good...), 0),
		// version, name len 0, events 0, sampledOut 0, then a shed count far
		// beyond the remaining bytes.
		"implausible shed count": {backendWireVersion, 0, 0, 0, 0xFF, 0xFF, 0x7F},
	}
	for name, payload := range cases {
		if _, err := decodeBackendResult(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Every truncation point must error, never panic or misparse.
	for i := 0; i < len(good); i++ {
		if _, err := decodeBackendResult(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestBackendCensusRoundTrip(t *testing.T) {
	c := &BackendCensus{Sessions: 10, Reported: 7, Failed: 1, Active: 2, Folded: 4, Events: 99999}
	got, err := decodeBackendCensus(c.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *c {
		t.Errorf("round trip drifted: %+v != %+v", got, c)
	}
	for _, hostile := range [][]byte{{}, {99}, {backendWireVersion, 1, 2}} {
		if _, err := decodeBackendCensus(hostile); err == nil {
			t.Errorf("hostile census %v accepted", hostile)
		}
	}
	if _, err := decodeBackendCensus(append(c.encode(nil), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestQueueLoadTightensAdmission pins the queue-load feedback: with any live
// pipeline past the tighten threshold, one admission costs two tokens, so a
// bucket that would have admitted rejects — under the distinct "rate-queue"
// reason.
func TestQueueLoadTightensAdmission(t *testing.T) {
	mkServer := func(load float64) *Server {
		s := &Server{
			cfg:      Config{AdmitRate: 1, AdmitBurst: 1},
			bucket:   newTokenBucket(1, 1),
			sem:      make(chan struct{}, 4),
			shutdown: make(chan struct{}),
			loads:    map[uint64]func() float64{1: func() float64 { return load }},
		}
		return s
	}

	// Calm pipeline: one token admits.
	if _, err := mkServer(0.2).admit(); err != nil {
		t.Fatalf("admission rejected with a calm queue: %v", err)
	}
	// Backed-up pipeline: the same bucket state rejects at doubled cost.
	_, err := mkServer(queueLoadTighten).admit()
	if err == nil {
		t.Fatal("admission accepted with a backed-up queue at one-token budget")
	}
	rej, ok := err.(*rejectError)
	if !ok || rej.reason != "rate-queue" {
		t.Errorf("rejection = %v (reason %q), want rate-queue", err, rej.reason)
	}
	// The probe maximum governs: one calm pipeline plus one backed-up one
	// still tightens.
	s := mkServer(0.1)
	s.loads[2] = func() float64 { return 0.9 }
	if s.maxQueueLoad() < queueLoadTighten {
		t.Errorf("maxQueueLoad = %v, want >= %v", s.maxQueueLoad(), queueLoadTighten)
	}
}

// TestBackoffGovernor pins the cooperative client backoff: busy rejections
// grow the governed delay (seeded by the server hint), successes decay it
// back to zero, and non-busy errors never engage it.
func TestBackoffGovernor(t *testing.T) {
	busy := func(hint time.Duration) error {
		return decodeRemote(t, tracelog.BusyMessage("full", hint))
	}
	b := NewBackoff(400 * time.Millisecond)
	if d := b.OnBusy(busy(0)); d != backoffFloor {
		t.Errorf("first hintless rejection delay = %v, want floor %v", d, backoffFloor)
	}
	if d := b.OnBusy(busy(300 * time.Millisecond)); d != 300*time.Millisecond {
		t.Errorf("hinted rejection delay = %v, want the 300ms hint", d)
	}
	if d := b.OnBusy(busy(0)); d != 400*time.Millisecond {
		t.Errorf("doubled delay = %v, want the 400ms cap", d)
	}
	for i := 0; i < 4; i++ {
		b.OnSuccess()
	}
	if d := b.Delay(); d != 0 {
		t.Errorf("delay after sustained success = %v, want 0", d)
	}
	if d := b.OnBusy(decodeRemote(t, "plain failure")); d != 0 || b.Delay() != 0 {
		t.Errorf("non-busy error engaged the governor: %v / %v", d, b.Delay())
	}
}

// decodeRemote turns an error-frame payload into the typed error a client
// would see, via a real frame exchange.
func decodeRemote(t *testing.T, msg string) error {
	t.Helper()
	var buf strings.Builder
	fw := tracelog.NewFrameWriter(&buf)
	if err := fw.Error(msg); err != nil {
		t.Fatal(err)
	}
	_, err := tracelog.NewFrameReader(strings.NewReader(buf.String())).Response()
	if err == nil {
		t.Fatal("error frame decoded as success")
	}
	return err
}
