package ingest_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/scenario"
	"repro/internal/tracelog"
)

// startBackend runs a backend-mode analyzer server and returns it with its
// dialable spec.
func startBackend(t testing.TB, cfg ingest.Config) (*ingest.Server, string) {
	t.Helper()
	cfg.BackendMode = true
	return startServer(t, cfg)
}

// startRouter runs a router over the given backend specs on a loopback
// listener. The router is shut down at test end.
func startRouter(t testing.TB, backends []string) (*ingest.Router, string) {
	t.Helper()
	rt, err := ingest.NewRouter(ingest.RouterConfig{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("router Serve: %v", err)
		}
	})
	return rt, "tcp:" + ln.Addr().String()
}

// TestRouterConformance is the multi-process acceptance run: the golden
// scenario corpus streamed through a router sharding across three backend
// processes must yield, per session, exactly the report a single-process
// server (and an offline replay) produces — and the fleet aggregate must
// carry the same SiteKeys, per-tool counts and summaries as the one-process
// aggregate over the same sessions. CI runs this under -race.
func TestRouterConformance(t *testing.T) {
	corpus := buildCorpus(t, 7)

	var backends []string
	for i := 0; i < 3; i++ {
		_, spec := startBackend(t, ingest.Config{})
		backends = append(backends, spec)
	}
	rt, raddr := startRouter(t, backends)
	single, saddr := startServer(t, ingest.Config{})

	for _, entry := range corpus {
		for _, target := range []string{raddr, saddr} {
			c, err := ingest.Dial(target)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.StreamTrace(entry.name, entry.log, 512)
			c.Close()
			if err != nil {
				t.Fatalf("%s via %s: %v", entry.name, target, err)
			}
			if got != entry.want {
				t.Errorf("%s via %s: report != offline replay:\n%s", entry.name, target, got)
			}
		}
	}

	fleet := rt.FleetAggregate()
	agg := single.Aggregate()
	if fleet.Sessions != len(corpus) || fleet.Reported != len(corpus) ||
		fleet.Failed != 0 || fleet.Lost != 0 {
		t.Errorf("fleet = %d sessions / %d reported / %d failed / %d lost, want %d/%d/0/0",
			fleet.Sessions, fleet.Reported, fleet.Failed, fleet.Lost, len(corpus), len(corpus))
	}
	if fleet.Events != agg.Events {
		t.Errorf("fleet events = %d, single-process = %d", fleet.Events, agg.Events)
	}
	// The cross-process fold must carry exactly the single process's merged
	// sites: same SiteKeys, same order, same counts — the manifest pins all
	// three.
	if got, want := fleet.Merged.Manifest(), agg.Merged.Manifest(); got != want {
		t.Errorf("fleet merged manifest != single-process manifest:\n--- fleet ---\n%s--- single ---\n%s", got, want)
	}
	if got, want := fmt.Sprint(fleet.ByTool), fmt.Sprint(agg.ByTool); got != want {
		t.Errorf("fleet ByTool = %s, single-process = %s", got, want)
	}
	for name, want := range agg.Summaries {
		if got := fmt.Sprint(fleet.Summaries[name]); got != fmt.Sprint(want) {
			t.Errorf("fleet summary %q = %s, single-process = %v", name, got, want)
		}
	}
	// All three backends should have seen work across 14 corpus sessions;
	// rendezvous hashing spreads distinct names with overwhelming odds.
	used := 0
	for _, st := range fleet.Backends {
		if st.Dead {
			t.Errorf("backend %s dead after a clean run", st.Spec)
		}
		if st.Assigned > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d backend(s) used for %d sessions", used, len(corpus))
	}
}

// TestRouterFoldAcrossBackends pins the site-identity property the SiteKey
// layer exists for: the same bug streamed as many sessions through different
// backend processes folds to ONE site in the fleet aggregate — and the
// aggregate is byte-identical regardless of which backend analysed which
// session. CI runs this under -race.
func TestRouterFoldAcrossBackends(t *testing.T) {
	log := recordScenario(t, 1, true)
	offline, err := scenario.RunOffline(nil, log, 1)
	if err != nil {
		t.Fatal(err)
	}

	var backends []string
	for i := 0; i < 2; i++ {
		_, spec := startBackend(t, ingest.Config{})
		backends = append(backends, spec)
	}
	// Two routers over the SAME backends: each fleet tally is the router's
	// own, and different session names shard differently, so the two runs
	// exercise different backend assignments of the same traces.
	const n = 16
	var formats []string
	for run, prefix := range []string{"alpha", "beta"} {
		rt, raddr := startRouter(t, backends)
		for i := 0; i < n; i++ {
			c, err := ingest.Dial(raddr)
			if err != nil {
				t.Fatal(err)
			}
			_, err = c.StreamTrace(fmt.Sprintf("%s-%d", prefix, i), log, 512)
			c.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
		fleet := rt.FleetAggregate()
		// Every session carried the identical bugs: cross-session,
		// cross-process dedup must fold them to the offline replay's site
		// set, counted n times.
		if got, want := fleet.Merged.Locations(), offline.Locations(); got != want {
			t.Errorf("run %d: fleet has %d distinct sites, offline replay of one session has %d", run, got, want)
		}
		for _, w := range fleet.Merged.Sites() {
			if w.Count%n != 0 {
				t.Errorf("run %d: site %s/%s count %d not a multiple of %d sessions", run, w.Tool, w.Kind, w.Count, n)
			}
		}
		used := 0
		for _, st := range fleet.Backends {
			if st.Assigned > 0 {
				used++
			}
		}
		if used != 2 {
			t.Logf("run %d: all sessions landed on one backend (possible but vanishingly rare)", run)
		}
		formats = append(formats, fleet.Merged.Format())
	}
	if formats[0] != formats[1] {
		t.Errorf("fleet merged report depends on backend assignment:\n--- alpha ---\n%s--- beta ---\n%s",
			formats[0], formats[1])
	}
}

// TestRouterBackendDeath kills one backend mid-session and checks the blast
// radius: the in-flight session on that backend fails with an honest loss
// report, the fleet aggregate counts it as lost (not silently dropped), and
// every future session re-shards onto the survivor and completes.
func TestRouterBackendDeath(t *testing.T) {
	log := recordScenario(t, 2, true)

	servers := make(map[string]*ingest.Server)
	var backends []string
	for i := 0; i < 2; i++ {
		srv, spec := startBackend(t, ingest.Config{})
		servers[spec] = srv
		backends = append(backends, spec)
	}
	rt, raddr := startRouter(t, backends)

	// Open a session and hold it mid-stream so it is in flight on exactly
	// one backend.
	c, err := ingest.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("victim"); err != nil {
		t.Fatal(err)
	}
	if err := c.SendEvents(log[:256]); err != nil {
		t.Fatal(err)
	}

	// Find which backend holds it, then kill that process.
	var victimSpec string
	deadline := time.Now().Add(5 * time.Second)
	for victimSpec == "" && time.Now().Before(deadline) {
		for _, st := range rt.FleetAggregate().Backends {
			if st.Inflight > 0 {
				victimSpec = st.Spec
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if victimSpec == "" {
		t.Fatal("no backend shows the in-flight session")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired: force-close the backend's connections immediately
	servers[victimSpec].Shutdown(ctx)

	// The held session must now fail with the router's loss report, not hang.
	var lossErr error
	for i := 0; i < 200; i++ {
		if lossErr = c.SendEvents(log[256:512]); lossErr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lossErr == nil {
		_, lossErr = c.Finish()
	}
	if lossErr == nil {
		t.Fatal("session survived its backend's death")
	}
	if errors.Is(lossErr, tracelog.ErrRemote) && !strings.Contains(lossErr.Error(), "lost") {
		t.Errorf("loss error does not name the loss: %v", lossErr)
	}

	// Future sessions re-shard across the survivor and complete.
	for i := 0; i < 8; i++ {
		c2, err := ingest.Dial(raddr)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c2.StreamTrace(fmt.Sprintf("after-%d", i), log, 512)
		c2.Close()
		if err != nil {
			t.Fatalf("session %d after backend death: %v", i, err)
		}
		if rep == "" {
			t.Fatalf("session %d: empty report", i)
		}
	}

	fleet := rt.FleetAggregate()
	if fleet.Lost != 1 {
		t.Errorf("fleet lost = %d, want 1", fleet.Lost)
	}
	if fleet.Reported != 8 {
		t.Errorf("fleet reported = %d, want 8", fleet.Reported)
	}
	deadSeen, aliveSeen := 0, 0
	for _, st := range fleet.Backends {
		switch {
		case st.Spec == victimSpec:
			if !st.Dead {
				t.Errorf("victim backend %s not marked dead", st.Spec)
			}
			if st.Lost != 1 {
				t.Errorf("victim backend lost = %d, want 1", st.Lost)
			}
			deadSeen++
		default:
			if st.Dead {
				t.Errorf("survivor backend %s marked dead", st.Spec)
			}
			aliveSeen++
		}
	}
	if deadSeen != 1 || aliveSeen != 1 {
		t.Errorf("backend census dead=%d alive=%d, want 1/1", deadSeen, aliveSeen)
	}
	text := fleet.Format()
	if !strings.Contains(text, "lost: 1 session(s)") {
		t.Errorf("fleet format does not disclose the loss:\n%s", text)
	}
}

// TestRouterBusyRelay pins busy-error relay semantics: a backend admission
// rejection travels through the router as the same typed busy error — hint
// included — the backend produced, the session counts as rejected (not lost),
// and the backend stays in rotation.
func TestRouterBusyRelay(t *testing.T) {
	log := recordScenario(t, 1, true)
	_, spec := startBackend(t, ingest.Config{
		MaxSessions: 1, AdmitTimeout: 30 * time.Millisecond, RetryAfter: 250 * time.Millisecond,
	})
	rt, raddr := startRouter(t, []string{spec})

	// Occupy the backend's only slot with a held session.
	holder, err := ingest.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Hello("holder"); err != nil {
		t.Fatal(err)
	}
	// The whole trace, but no End yet: the slot stays held until Finish.
	if err := holder.SendEvents(log); err != nil {
		t.Fatal(err)
	}
	// Wait until the backend actually holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if agg := rt.FleetAggregate(); agg.Active > 0 && agg.Backends[0].Inflight > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	c, err := ingest.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.StreamTrace("crowded", log, 512)
	c.Close()
	if err == nil {
		t.Fatal("second session admitted past a full backend")
	}
	if !errors.Is(err, tracelog.ErrBusy) {
		t.Fatalf("relayed rejection is not a typed busy error: %v", err)
	}
	if hint, ok := tracelog.RetryAfterHint(err); !ok || hint != 250*time.Millisecond {
		t.Errorf("retry-after hint = %v (ok=%v), want 250ms", hint, ok)
	}

	// Release the holder; its session must still complete cleanly.
	if _, err := holder.Finish(); err != nil {
		t.Fatalf("holder session after the rejection: %v", err)
	}

	fleet := rt.FleetAggregate()
	if fleet.Rejected != 1 || fleet.Lost != 0 || fleet.Reported != 1 {
		t.Errorf("fleet = %d rejected / %d lost / %d reported, want 1/0/1", fleet.Rejected, fleet.Lost, fleet.Reported)
	}
	if fleet.Backends[0].Dead {
		t.Error("backend marked dead by an admission rejection")
	}
}

// TestRouterQueries covers the router's query surface: the fleet aggregate
// and per-backend census render, per-session queries are redirected to the
// tier that owns them, and non-backend servers refuse backend handshakes.
func TestRouterQueries(t *testing.T) {
	log := recordScenario(t, 1, true)
	_, spec := startBackend(t, ingest.Config{})
	_, raddr := startRouter(t, []string{spec})

	c, err := ingest.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTrace("one", log, 512); err != nil {
		t.Fatal(err)
	}
	c.Close()

	query := func(q string) (string, error) {
		t.Helper()
		qc, err := ingest.Dial(raddr)
		if err != nil {
			t.Fatal(err)
		}
		defer qc.Close()
		return qc.Query(q)
	}
	agg, err := query("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(agg, "== fleet aggregate: 1 session(s) — 1 reported") {
		t.Errorf("aggregate header missing:\n%s", agg)
	}
	if !strings.Contains(agg, "== backend "+spec+": state=alive") {
		t.Errorf("aggregate misses backend line:\n%s", agg)
	}
	bk, err := query("backends")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bk, "census: 1 session(s), 1 reported") {
		t.Errorf("backends census probe missing:\n%s", bk)
	}
	sess, err := query("sessions")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sess, "name=one") || !strings.Contains(sess, "outcome=reported") {
		t.Errorf("sessions listing missing the routed session:\n%s", sess)
	}
	if _, err := query("session one"); err == nil || !strings.Contains(err.Error(), "backend analyzers") {
		t.Errorf("per-session query not redirected: %v", err)
	}
	if _, err := query("nonsense"); err == nil {
		t.Error("unknown query accepted")
	}

	// A plain (non-backend) server must refuse backend handshakes.
	_, plain := startServer(t, ingest.Config{})
	conn, err := ingest.DialSpec(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := tracelog.NewFrameWriter(conn)
	if err := fw.Assign("sneaky"); err != nil {
		t.Fatal(err)
	}
	if _, err := tracelog.NewFrameReader(conn).BackendResponse(); err == nil ||
		!strings.Contains(err.Error(), "not a backend analyzer") {
		t.Errorf("plain server accepted an assign handshake: %v", err)
	}
}

// TestRetentionFoldSiteIdentity pins the retention fold under content-derived
// SiteKeys: the same bug from many evicted sessions folds to one site whose
// count sums across sessions, byte-identical to a server that retained every
// session individually.
func TestRetentionFoldSiteIdentity(t *testing.T) {
	log := recordScenario(t, 1, true)
	const n = 6
	run := func(cfg ingest.Config) *ingest.Server {
		srv, addr := startServer(t, cfg)
		for i := 0; i < n; i++ {
			c, err := ingest.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.StreamTrace(fmt.Sprintf("same-%d", i), log, 0); err != nil {
				t.Fatal(err)
			}
			c.Close()
		}
		return srv
	}
	folded := run(ingest.Config{RetainSessions: 1})
	whole := run(ingest.Config{})

	deadline := time.Now().Add(10 * time.Second)
	for len(folded.Sessions()) > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("registry still holds %d sessions", len(folded.Sessions()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	a, b := folded.Aggregate(), whole.Aggregate()
	if a.Merged.Format() != b.Merged.Format() {
		t.Errorf("folded aggregate != fully retained aggregate:\n--- folded ---\n%s--- whole ---\n%s",
			a.Merged.Format(), b.Merged.Format())
	}
	if got, want := a.Merged.Locations(), b.Merged.Locations(); got != want || got == 0 {
		t.Errorf("folded sites = %d, want %d (> 0)", got, want)
	}
	for _, w := range a.Merged.Sites() {
		if w.Count%n != 0 {
			t.Errorf("site %s/%s count %d not a multiple of %d identical sessions", w.Tool, w.Kind, w.Count, n)
		}
	}
}

// TestAdaptiveReportInterval pins the pressure-adaptive snapshot cadence: at
// sustained high pressure (a full one-slot server) most ticks are deferred
// (one in snapshotDeferStride taken), the deferral count is surfaced in the
// session's snapshot listing, and at zero pressure the cadence is untouched.
func TestAdaptiveReportInterval(t *testing.T) {
	log := recordScenario(t, 1, true)

	stream := func(srv *ingest.Server, addr, name string) {
		t.Helper()
		c, err := ingest.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Hello(name); err != nil {
			t.Fatal(err)
		}
		// ~10 report-interval ticks while the stream is live.
		for i := 0; i < 10; i++ {
			end := (i + 1) * 64
			if end > len(log) {
				end = len(log)
			}
			if err := c.SendEvents(log[i*64 : end]); err != nil {
				t.Fatal(err)
			}
			time.Sleep(25 * time.Millisecond)
		}
		if _, err := c.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	// One slot: the session itself saturates the server, pressure is full
	// for its whole life, so the stride must defer most ticks.
	srv, addr := startServer(t, ingest.Config{
		MaxSessions: 1, ReportInterval: 20 * time.Millisecond, AdaptiveReportInterval: true,
	})
	stream(srv, addr, "pressured")
	sess := srv.SessionByName("pressured")
	if sess == nil {
		t.Fatal("session not registered")
	}
	deferred := sess.SnapshotsDeferred()
	if deferred == 0 {
		t.Error("no snapshot ticks deferred at full pressure")
	}
	if !strings.Contains(sess.FormatSnapshots(), "deferred under pressure") {
		t.Errorf("snapshot listing does not disclose deferrals:\n%s", sess.FormatSnapshots())
	}

	// Plenty of slots: zero pressure, the adaptive cadence must be inert.
	calm, caddr := startServer(t, ingest.Config{
		MaxSessions: 8, ReportInterval: 20 * time.Millisecond, AdaptiveReportInterval: true,
	})
	stream(calm, caddr, "calm")
	if sess := calm.SessionByName("calm"); sess.SnapshotsDeferred() != 0 {
		t.Errorf("%d ticks deferred at zero pressure, want 0", sess.SnapshotsDeferred())
	}
}
