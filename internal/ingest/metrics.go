package ingest

import (
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/tracelog"
)

// serverMetrics is the ingest daemon's self-observability surface, resolved
// once at NewServer from Config.Metrics. The engine metrics are shared across
// every session pipeline, so the engine_* series aggregate the whole daemon.
// A nil *serverMetrics disables all ingest instrumentation (every call site
// nil-checks), and instrumentation never influences analysis: session and
// aggregate reports are byte-identical with or without a registry attached.
type serverMetrics struct {
	engine *engine.Metrics

	// states holds one gauge per lifecycle state (ingest_sessions{state=}),
	// indexed by SessionState — the live census of the registry plus
	// in-flight handlers.
	states [StateFailed + 1]*obs.Gauge

	sessionsOpened *obs.Counter
	eventsTotal    *obs.Counter

	// frames and frameBytes index by FrameKind (ingest_frames_read_total and
	// ingest_frame_bytes_read_total, labelled by kind name), pre-resolved for
	// the known kinds so the per-frame hook is two plain increments; the vecs
	// are kept for the (hostile-input) kinds outside the known range.
	frames        [tracelog.FrameBackendStats + 1]*obs.Counter
	frameBytes    [tracelog.FrameBackendStats + 1]*obs.Counter
	frameVec      *obs.CounterVec
	frameBytesVec *obs.CounterVec

	slotWaitNs     *obs.Histogram
	idleKills      *obs.Counter
	folds          *obs.Counter
	snapshotsTaken *obs.Counter

	// Overload-survival surface: admission refusals by reason, the live
	// slot-waiter census and pressure level, what the sampler and the
	// degradation ladder shed, failed incremental snapshots, and what the
	// bounded retention fold compacted away.
	admissionRejects   *obs.CounterVec
	slotWaiters        *obs.Gauge
	pressure           *obs.Gauge
	sampledOut         *obs.Counter
	shedTools          *obs.CounterVec
	degradedSessions   *obs.Counter
	snapshotErrors     *obs.Counter
	snapshotsDeferred  *obs.Counter
	foldCompactedSites *obs.Counter

	// warnings counts distinct warning sites per tool, accumulated from each
	// session's final report as it lands.
	warnings *obs.CounterVec
}

// newServerMetrics registers the ingest metric families (plus the shared
// engine families) on reg; nil reg yields nil, the disabled surface.
func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	m := &serverMetrics{
		engine:         engine.NewMetrics(reg),
		sessionsOpened: reg.Counter("ingest_sessions_opened_total", "Client sessions accepted and registered."),
		eventsTotal:    reg.Counter("ingest_events_total", "Trace events analysed across all sessions (final per-session counts)."),
		slotWaitNs: reg.Histogram("ingest_slot_wait_ns",
			"Time sessions waited for a MaxSessions analysis slot, nanoseconds.", obs.LatencyBuckets()),
		idleKills:      reg.Counter("ingest_idle_timeout_kills_total", "Sessions failed by the IdleTimeout rolling deadline."),
		folds:          reg.Counter("ingest_retention_folds_total", "Terminal sessions folded into the aggregate and evicted by RetainSessions."),
		snapshotsTaken: reg.Counter("ingest_snapshots_taken_total", "Incremental session snapshots taken (ReportInterval)."),
		warnings:       reg.CounterVec("ingest_tool_warning_sites_total", "Distinct warning sites in final session reports, per tool.", "tool"),
		admissionRejects: reg.CounterVec("ingest_admission_rejected_total",
			"Session connections refused with a busy error, by reason (rate, rate-queue, slots, shutdown).", "reason"),
		slotWaiters:       reg.Gauge("ingest_slot_waiters", "Connections currently parked waiting for a MaxSessions slot."),
		pressure:          reg.Gauge("ingest_pressure_level", "Overload pressure level at the last probe (0 none .. 3 full)."),
		sampledOut:        reg.Counter("ingest_sampled_events_total", "Access events shed by adaptive sampling under overload pressure."),
		shedTools:         reg.CounterVec("ingest_shed_tools_total", "Tools shed from sessions by the degradation ladder, per tool.", "tool"),
		degradedSessions:  reg.Counter("ingest_degraded_sessions_total", "Sessions that analysed less than their stream carried (sampling or shed tools)."),
		snapshotErrors:    reg.Counter("ingest_snapshot_errors_total", "Failed incremental snapshot attempts (recorded on the session, stream continues)."),
		snapshotsDeferred: reg.Counter("ingest_snapshots_deferred_total", "Snapshot ticks skipped by the pressure-adaptive cadence (AdaptiveReportInterval)."),
		foldCompactedSites: reg.Counter("ingest_fold_compacted_sites_total",
			"Warning sites discarded from the retention fold by FoldSiteCap."),
	}
	stateGauges := reg.GaugeVec("ingest_sessions", "Sessions currently in each lifecycle state.", "state")
	for st := StateOpen; st <= StateFailed; st++ {
		m.states[st] = stateGauges.With(st.String())
	}
	m.frameVec = reg.CounterVec("ingest_frames_read_total", "Frames read from client connections, per kind.", "kind")
	m.frameBytesVec = reg.CounterVec("ingest_frame_bytes_read_total", "Frame payload bytes read from client connections, per kind.", "kind")
	for k := tracelog.FrameHello; k <= tracelog.FrameBackendStats; k++ {
		m.frames[k] = m.frameVec.With(k.String())
		m.frameBytes[k] = m.frameBytesVec.With(k.String())
	}
	return m
}

// observeFrame is the FrameReader observer hook: one frame header decoded.
func (m *serverMetrics) observeFrame(kind tracelog.FrameKind, payloadBytes int) {
	i := int(kind)
	if i == 0 || i >= len(m.frames) {
		// A kind outside the protocol range (hostile or corrupt input): count
		// it under its own label through the slower vec path.
		m.frameVec.With(kind.String()).Inc()
		m.frameBytesVec.With(kind.String()).Add(int64(payloadBytes))
		return
	}
	m.frames[i].Inc()
	m.frameBytes[i].Add(int64(payloadBytes))
}
