package ingest_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/scenario"
	"repro/internal/tracelog"
)

// startServer runs a server on a loopback TCP listener and returns it with
// its dialable "network:address" spec. The server is shut down at test end.
func startServer(t testing.TB, cfg ingest.Config) (*ingest.Server, string) {
	t.Helper()
	if cfg.Tools == nil {
		cfg.Tools = scenario.AllTools
	}
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, "tcp:" + ln.Addr().String()
}

// recordScenario records one scenario variant and returns its trace.
func recordScenario(t testing.TB, genSeed int64, buggy bool) []byte {
	t.Helper()
	s := scenario.Generate(scenario.GenConfig{Seed: genSeed})
	_, log, err := scenario.Record(s, buggy, 1)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// offlineReport replays a trace offline through the same six-tool registry
// the server runs, with the server's (nil) resolver — the byte-identity
// reference for every session report.
func offlineReport(t testing.TB, log []byte) string {
	t.Helper()
	col, err := scenario.RunOffline(nil, log, 1)
	if err != nil {
		t.Fatal(err)
	}
	return col.Format()
}

// waitSession polls until the session reaches a terminal state.
func waitSession(t testing.TB, sess *ingest.Session) ingest.SessionState {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := sess.State()
		if st == ingest.StateReported || st == ingest.StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %d stuck in state %v", sess.ID, sess.State())
	return 0
}

// TestSessionLifecycle drives one full session and checks the registry entry
// walks open → streaming → drained → reported, the event count matches the
// trace, and the returned report equals the offline replay.
func TestSessionLifecycle(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{})
	log := recordScenario(t, 1, true)
	want := offlineReport(t, log)

	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.StreamTrace("lifecycle", log, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("session report != offline replay:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	sessions := srv.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("registry has %d sessions, want 1", len(sessions))
	}
	sess := sessions[0]
	if st := waitSession(t, sess); st != ingest.StateReported {
		t.Errorf("state = %v (err %v), want reported", st, sess.Err())
	}
	if sess.Name != "lifecycle" {
		t.Errorf("session name = %q", sess.Name)
	}
	events, err := scenario.CountEvents(log)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Events() != events {
		t.Errorf("session events = %d, want %d", sess.Events(), events)
	}
}

// TestAggregate streams a small mixed corpus and checks the cross-session
// rollup: counts, per-tool locations, memcheck summaries, and that the
// rendered aggregate a query connection receives matches Server.Aggregate.
func TestAggregate(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{})
	var total int64
	for i, spec := range []struct {
		seed  int64
		buggy bool
	}{{1, true}, {2, true}, {1, false}} {
		log := recordScenario(t, spec.seed, spec.buggy)
		events, err := scenario.CountEvents(log)
		if err != nil {
			t.Fatal(err)
		}
		total += events
		c, err := ingest.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.StreamTrace(fmt.Sprintf("s%d", i), log, 0); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	for _, sess := range srv.Sessions() {
		waitSession(t, sess)
	}

	agg := srv.Aggregate()
	if agg.Sessions != 3 || agg.Reported != 3 || agg.Failed != 0 || agg.Active != 0 {
		t.Errorf("aggregate counts = %d/%d/%d/%d, want 3 sessions all reported",
			agg.Sessions, agg.Reported, agg.Failed, agg.Active)
	}
	if agg.Events != total {
		t.Errorf("aggregate events = %d, want %d", agg.Events, total)
	}
	if agg.Merged.Locations() == 0 {
		t.Error("aggregate merged report empty despite buggy sessions")
	}
	if len(agg.ByTool) == 0 {
		t.Error("aggregate ByTool empty")
	}
	if _, ok := agg.Summaries[scenario.ToolMemcheck]; !ok {
		t.Error("aggregate missing memcheck summary")
	}

	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	text, err := c.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "3 session(s) — 3 reported, 0 failed, 0 active") {
		t.Errorf("aggregate header missing counts:\n%s", text)
	}
	if text != srv.Aggregate().Format() {
		t.Error("queried aggregate differs from Server.Aggregate().Format()")
	}
}

// TestTruncatedSession cuts the connection mid-stream and checks the session
// fails (it must never report on a prefix) while the server stays healthy.
func TestTruncatedSession(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{})
	log := recordScenario(t, 3, true)

	conn, err := ingest.DialSpec(addr)
	if err != nil {
		t.Fatal(err)
	}
	fw := tracelog.NewFrameWriter(conn)
	if err := fw.Hello("torn"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Events(log[:len(log)/2]); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.Close() // no end frame: the stream is torn

	deadline := time.Now().Add(10 * time.Second)
	for {
		if sessions := srv.Sessions(); len(sessions) == 1 {
			if st := sessions[0].State(); st == ingest.StateFailed {
				if sessions[0].Err() == nil {
					t.Error("failed session has nil Err")
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("session never failed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The server must still serve new sessions afterwards.
	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.StreamTrace("after", log, 0); err != nil {
		t.Fatalf("session after a torn one: %v", err)
	}
	agg := srv.Aggregate()
	if agg.Failed != 1 || agg.Reported != 1 {
		t.Errorf("aggregate = %d failed / %d reported, want 1/1", agg.Failed, agg.Reported)
	}
}

// TestUnknownQuery checks a bad query surfaces as a remote error.
func TestUnknownQuery(t *testing.T) {
	_, addr := startServer(t, ingest.Config{})
	conn, err := ingest.DialSpec(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := tracelog.NewFrameWriter(conn)
	if err := fw.Query("bogus"); err != nil {
		t.Fatal(err)
	}
	fr := tracelog.NewFrameReader(conn)
	if _, err := fr.Response(); !errors.Is(err, tracelog.ErrRemote) {
		t.Errorf("unknown query error = %v, want ErrRemote", err)
	}
}

// TestMaxSessionsBackpressure pins that the session cap delays, not drops:
// with one slot, concurrent sessions serialize and all report.
func TestMaxSessionsBackpressure(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{MaxSessions: 1})
	log := recordScenario(t, 4, true)
	want := offlineReport(t, log)

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := ingest.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			got, err := c.StreamTrace(fmt.Sprintf("bp%d", i), log, 256)
			if err != nil {
				errs[i] = err
				return
			}
			if got != want {
				errs[i] = fmt.Errorf("report mismatch")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	if agg := srv.Aggregate(); agg.Reported != n {
		t.Errorf("reported = %d, want %d", agg.Reported, n)
	}
}

// TestShutdownGraceful checks Shutdown with headroom drains cleanly, and
// that a server refuses new work afterwards.
func TestShutdownGraceful(t *testing.T) {
	cfg := ingest.Config{Tools: scenario.AllTools}
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := "tcp:" + ln.Addr().String()

	log := recordScenario(t, 5, true)
	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTrace("pre-shutdown", log, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if agg := srv.Aggregate(); agg.Reported != 1 {
		t.Errorf("reported = %d, want 1", agg.Reported)
	}
	if _, err := ingest.Dial(addr); err == nil {
		t.Error("dial succeeded after shutdown")
	}
}

// TestShutdownForcesStuckSession pins the flush contract's other half: a
// session that never sends its end frame holds shutdown until the grace
// period, then is force-closed and marked failed — not silently reported.
func TestShutdownForcesStuckSession(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{Tools: scenario.AllTools})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := tracelog.NewFrameWriter(conn)
	if err := fw.Hello("stuck"); err != nil {
		t.Fatal(err)
	}
	log := recordScenario(t, 6, true)
	if err := fw.Events(log[:len(log)/3]); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has registered the session.
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.Sessions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded (forced)", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	sessions := srv.Sessions()
	if len(sessions) != 1 || sessions[0].State() != ingest.StateFailed {
		t.Fatalf("stuck session state = %v, want failed", sessions[0].State())
	}
}
