package ingest

// Wire codecs for the router↔backend tier: the structured per-session result
// a backend ships inside a backend-report frame, and the census it answers a
// backend-stats request with. Both follow the hostile-input discipline of the
// metadata and collector codecs — nothing is allocated from a claimed count
// or length without checking it against the bytes actually remaining, and a
// decoder rejects versions it does not speak instead of misparsing them.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/intern"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

const (
	// backendWireVersion tags both backend payload encodings.
	backendWireVersion = 1
	// maxBackendString bounds one encoded short string (session name, shed
	// tool name, summary key).
	maxBackendString = 1 << 16
	// maxBackendCount caps any decoded counter; beyond it the payload is
	// corrupt, not just large.
	maxBackendCount = 1 << 62
)

// BackendResult is one forwarded session's outcome, shipped backend → router
// when the session reports: the rendered report text the router relays to the
// client verbatim, plus the structured state — the portable collector and the
// tool summaries — the router folds into the fleet aggregate. Folding decoded
// results is byte-identical to folding the originals in one process, because
// the collector encoding carries the SiteKeys verbatim.
type BackendResult struct {
	Name       string
	Events     int64
	SampledOut int64    // access events the backend's sampler shed
	Shed       []string // tools the backend's degradation ladder shed
	Report     string   // rendered final report, degraded header included
	Sums       map[string]trace.ToolSummary
	Col        *report.Collector
}

// encode appends the result's wire form to b and returns the extended slice.
func (res *BackendResult) encode(b []byte) []byte {
	b = append(b, backendWireVersion)
	b = appendBackendString(b, res.Name)
	b = binary.AppendUvarint(b, uint64(res.Events))
	b = binary.AppendUvarint(b, uint64(res.SampledOut))
	b = binary.AppendUvarint(b, uint64(len(res.Shed)))
	for _, tool := range res.Shed {
		b = appendBackendString(b, tool)
	}
	b = appendBackendString(b, res.Report)
	// Summaries in sorted name/key order: the encoding of a result is a pure
	// function of its content, never of map iteration order.
	names := make([]string, 0, len(res.Sums))
	for name := range res.Sums {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		sum := res.Sums[name]
		b = appendBackendString(b, name)
		keys := make([]string, 0, len(sum))
		for k := range sum {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = binary.AppendUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			b = appendBackendString(b, k)
			b = binary.AppendUvarint(b, uint64(sum[k]))
		}
	}
	col := res.Col.AppendWire(nil)
	b = binary.AppendUvarint(b, uint64(len(col)))
	return append(b, col...)
}

// decodeBackendResult parses one encode payload.
func decodeBackendResult(payload []byte) (*BackendResult, error) {
	r := bytes.NewReader(payload)
	if err := checkBackendVersion(r); err != nil {
		return nil, err
	}
	res := &BackendResult{}
	var err error
	if res.Name, err = readBackendString(r, maxBackendString); err != nil {
		return nil, err
	}
	counts, err := readBackendCounts(r, 3)
	if err != nil {
		return nil, err
	}
	res.Events, res.SampledOut = int64(counts[0]), int64(counts[1])
	if nshed := counts[2]; nshed > 0 {
		if nshed > uint64(r.Len()) {
			return nil, fmt.Errorf("ingest: backend result claims %d shed tools in %d bytes", nshed, r.Len())
		}
		res.Shed = make([]string, nshed)
		for i := range res.Shed {
			if res.Shed[i], err = readBackendString(r, maxBackendString); err != nil {
				return nil, err
			}
		}
	}
	// The rendered report is the one big field: it shares the backend-report
	// frame's payload bound rather than the short-string bound.
	if res.Report, err = readBackendString(r, tracelog.MaxFramePayload); err != nil {
		return nil, err
	}
	nsums, err := readBackendCounts(r, 1)
	if err != nil {
		return nil, err
	}
	if nsums[0] > uint64(r.Len()) {
		return nil, fmt.Errorf("ingest: backend result claims %d summaries in %d bytes", nsums[0], r.Len())
	}
	for i := uint64(0); i < nsums[0]; i++ {
		name, err := readBackendString(r, maxBackendString)
		if err != nil {
			return nil, err
		}
		nkeys, err := readBackendCounts(r, 1)
		if err != nil {
			return nil, err
		}
		if nkeys[0] > uint64(r.Len()) {
			return nil, fmt.Errorf("ingest: backend summary claims %d keys in %d bytes", nkeys[0], r.Len())
		}
		sum := make(trace.ToolSummary, nkeys[0])
		for j := uint64(0); j < nkeys[0]; j++ {
			k, err := readBackendString(r, maxBackendString)
			if err != nil {
				return nil, err
			}
			v, err := readBackendCounts(r, 1)
			if err != nil {
				return nil, err
			}
			sum[k] = int64(v[0])
		}
		if res.Sums == nil {
			res.Sums = make(map[string]trace.ToolSummary, nsums[0])
		}
		if _, dup := res.Sums[name]; dup {
			return nil, fmt.Errorf("ingest: duplicate summary %q in backend result", name)
		}
		res.Sums[name] = sum
	}
	ncol, err := readBackendCounts(r, 1)
	if err != nil {
		return nil, err
	}
	if ncol[0] > uint64(r.Len()) {
		return nil, fmt.Errorf("ingest: backend result claims %d collector bytes, %d remain", ncol[0], r.Len())
	}
	colBytes := make([]byte, ncol[0])
	if _, err := io.ReadFull(r, colBytes); err != nil {
		return nil, fmt.Errorf("ingest: corrupt backend result: %w", io.ErrUnexpectedEOF)
	}
	if res.Col, err = report.DecodeWire(colBytes); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ingest: %d trailing byte(s) after backend result", r.Len())
	}
	return res, nil
}

// BackendCensus is a backend's answer to a backend-stats request: its live
// registry counts, the cheap health/occupancy view the router's "backends"
// query renders without forcing a full aggregate merge on every backend.
type BackendCensus struct {
	Sessions int // all registered sessions, including folded ones
	Reported int
	Failed   int
	Active   int
	Folded   int
	Events   int64
}

// encode appends the census wire form to b.
func (c *BackendCensus) encode(b []byte) []byte {
	b = append(b, backendWireVersion)
	for _, v := range [...]uint64{
		uint64(c.Sessions), uint64(c.Reported), uint64(c.Failed),
		uint64(c.Active), uint64(c.Folded), uint64(c.Events),
	} {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

// decodeBackendCensus parses one census payload.
func decodeBackendCensus(payload []byte) (*BackendCensus, error) {
	r := bytes.NewReader(payload)
	if err := checkBackendVersion(r); err != nil {
		return nil, err
	}
	v, err := readBackendCounts(r, 6)
	if err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ingest: %d trailing byte(s) after backend census", r.Len())
	}
	return &BackendCensus{
		Sessions: int(v[0]), Reported: int(v[1]), Failed: int(v[2]),
		Active: int(v[3]), Folded: int(v[4]), Events: int64(v[5]),
	}, nil
}

func appendBackendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func checkBackendVersion(r *bytes.Reader) error {
	ver, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("ingest: corrupt backend payload: %w", io.ErrUnexpectedEOF)
	}
	if ver != backendWireVersion {
		return fmt.Errorf("ingest: unsupported backend payload version %d", ver)
	}
	return nil
}

// readBackendCounts reads n consecutive uvarints, each bounded by
// maxBackendCount.
func readBackendCounts(r *bytes.Reader, n int) ([]uint64, error) {
	out := make([]uint64, n)
	for i := range out {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("ingest: corrupt backend payload: %w", io.ErrUnexpectedEOF)
		}
		if v > maxBackendCount {
			return nil, fmt.Errorf("ingest: implausible backend count %d", v)
		}
		out[i] = v
	}
	return out, nil
}

// readBackendString reads one length-prefixed string bounded by limit,
// interned process-wide (tool and summary names repeat across every session a
// router ever sees; the rendered report is the one string too large and too
// unique to intern, so it is returned as a fresh copy).
func readBackendString(r *bytes.Reader, limit int) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", fmt.Errorf("ingest: corrupt backend payload: %w", io.ErrUnexpectedEOF)
	}
	if n > uint64(limit) || n > uint64(r.Len()) {
		return "", fmt.Errorf("ingest: backend string length %d exceeds payload", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("ingest: corrupt backend payload: %w", io.ErrUnexpectedEOF)
	}
	if limit <= maxBackendString {
		return intern.Bytes(buf), nil
	}
	return string(buf), nil
}
