package ingest

import (
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
)

// TestAggregateFormatGolden pins the aggregate rendering byte for byte:
// header, retention line, tool-location and summary blocks, then the merged
// warnings — the shape every "aggregate" query and the traced shutdown dump
// rely on.
func TestAggregateFormatGolden(t *testing.T) {
	merged := report.NewCollector(nil, nil)
	merged.Add(report.Warning{Tool: "lockset", Kind: report.KindRace, Block: 7, Stack: 3})
	a := &Aggregate{
		Sessions: 5,
		Reported: 3,
		Failed:   1,
		Active:   1,
		Folded:   2,
		Events:   1234,
		ByTool:   map[string]int{"lockset": 1},
		Summaries: map[string]trace.ToolSummary{
			"memcheck": {"errors": 2, "leaks": 1},
		},
		Merged: merged,
	}
	want := "== ingest aggregate: 5 session(s) — 3 reported, 1 failed, 1 active; 1234 event(s)\n" +
		"== retention: 2 session(s) folded into the aggregate\n" +
		"== tool locations: lockset=1\n" +
		"== memcheck summary: errors=2 leaks=1\n" +
		merged.Format()
	if got := a.Format(); got != want {
		t.Errorf("Aggregate.Format:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestAggregateFormatEmpty pins the degenerate rendering: no sessions, no
// optional blocks — just the header and an empty merged report.
func TestAggregateFormatEmpty(t *testing.T) {
	a := &Aggregate{Merged: report.NewCollector(nil, nil)}
	want := "== ingest aggregate: 0 session(s) — 0 reported, 0 failed, 0 active; 0 event(s)\n" +
		a.Merged.Format()
	if got := a.Format(); got != want {
		t.Errorf("empty Aggregate.Format:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFormatSessionsGolden pins the "sessions" listing rendering with an
// injected clock: the events/snaps/age columns and the retained/folded
// header.
func TestFormatSessionsGolden(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	sessions := []*Session{
		{
			ID: 3, Name: "live", Opened: now.Add(-90 * time.Second),
			state: StateStreaming, events: 4200,
			snaps: []Snapshot{{Events: 2000}, {Events: 4200}},
		},
		{
			ID: 4, Name: "done", Opened: now.Add(-2*time.Minute - 499*time.Millisecond),
			state: StateReported, events: 10,
		},
	}
	want := "== sessions: 2 retained, 7 folded\n" +
		"id=3 name=live state=streaming events=4200 snaps=2 age=1m30s\n" +
		"id=4 name=done state=reported events=10 snaps=0 age=2m0s\n"
	if got := formatSessionsAt(sessions, 7, now); got != want {
		t.Errorf("formatSessionsAt:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
