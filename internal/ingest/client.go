package ingest

import (
	"fmt"
	"net"

	"repro/internal/tracelog"
)

// Client is one connection to a trace-ingest server: either a session (one
// streamed trace, one returned report) or a query exchange. It is the
// programmatic face of what an instrumented server process — or the
// cmd/traceload replay client — speaks over the wire.
//
// A session is either the one-call StreamTrace/StreamTraceMeta, or the
// step-wise Hello → SendMetadata/SendEvents... → Finish sequence open-loop
// producers use to pace their stream.
type Client struct {
	conn  net.Conn
	fw    *tracelog.FrameWriter
	fr    *tracelog.FrameReader
	pacer *Backoff
}

// Dial connects to a server at a "network:address" spec (see Listen).
func Dial(spec string) (*Client, error) {
	conn, err := DialSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		fw:   tracelog.NewFrameWriter(conn),
		fr:   tracelog.NewFrameReader(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetPacer attaches a shared cooperative-backoff governor: while it is hot
// (a recent busy rejection anywhere in the process), SendEvents pauses
// Backoff.Pace before each chunk, lowering this client's send rate instead
// of competing at full speed. nil detaches.
func (c *Client) SetPacer(b *Backoff) { c.pacer = b }

// Hello opens a session under the given name.
func (c *Client) Hello(name string) error {
	if err := c.fw.Hello(name); err != nil {
		return fmt.Errorf("ingest: hello: %w", err)
	}
	return nil
}

// SendMetadata streams the interned stack/block tables (nil is a no-op), so
// the server resolves this session's warning sites like an offline replay
// would. Tables may be sent once up front or incrementally as they grow.
func (c *Client) SendMetadata(md *tracelog.Metadata) error {
	if err := c.fw.Metadata(md); err != nil {
		return fmt.Errorf("ingest: metadata: %w", err)
	}
	return nil
}

// SendEvents streams one chunk of binary trace log and flushes it to the
// wire — the flush is what makes open-loop pacing real, and what lets the
// server's backpressure (a full pipeline) block this call.
func (c *Client) SendEvents(chunk []byte) error {
	if c.pacer != nil {
		c.pacer.Pace()
	}
	if err := c.fw.Events(chunk); err != nil {
		return fmt.Errorf("ingest: events: %w", err)
	}
	if err := c.fw.Flush(); err != nil {
		return fmt.Errorf("ingest: events: %w", err)
	}
	return nil
}

// Finish ends the stream and blocks for the server's rendered report.
func (c *Client) Finish() (string, error) {
	if err := c.fw.End(); err != nil {
		return "", fmt.Errorf("ingest: end: %w", err)
	}
	text, err := c.fr.Response()
	if err != nil {
		return "", fmt.Errorf("ingest: response: %w", err)
	}
	return text, nil
}

// StreamTrace runs one full session: hello, the trace in chunked events
// frames, end — then blocks for the server's rendered report. chunk bounds
// the frame payload size (<= 0 takes 64 KiB), exercising event batches that
// span frame boundaries exactly as a live producer would.
func (c *Client) StreamTrace(name string, log []byte, chunk int) (string, error) {
	return c.StreamTraceMeta(name, nil, log, chunk)
}

// StreamTraceMeta is StreamTrace with the session's stream metadata sent up
// front (nil metadata degrades to StreamTrace): the resolving-session shape,
// whose returned report carries stacks and block provenance.
func (c *Client) StreamTraceMeta(name string, md *tracelog.Metadata, log []byte, chunk int) (string, error) {
	if chunk <= 0 {
		chunk = 64 << 10
	}
	if err := c.Hello(name); err != nil {
		return "", err
	}
	if err := c.SendMetadata(md); err != nil {
		return "", err
	}
	for len(log) > 0 {
		n := chunk
		if n > len(log) {
			n = len(log)
		}
		if err := c.SendEvents(log[:n]); err != nil {
			return "", err
		}
		log = log[n:]
	}
	return c.Finish()
}

// Query runs one query exchange (e.g. "aggregate", "sessions", "stats",
// "session <name>", "snapshots <name>") and returns the server's rendered
// response.
func (c *Client) Query(q string) (string, error) {
	if err := c.fw.Query(q); err != nil {
		return "", fmt.Errorf("ingest: query: %w", err)
	}
	text, err := c.fr.Response()
	if err != nil {
		return "", fmt.Errorf("ingest: response: %w", err)
	}
	return text, nil
}

// Aggregate asks the server for its cross-session aggregate report.
func (c *Client) Aggregate() (string, error) {
	return c.Query("aggregate")
}

// Snapshots asks the server for the named session's incremental snapshot
// manifests (see Session.FormatSnapshots).
func (c *Client) Snapshots(name string) (string, error) {
	return c.Query("snapshots " + name)
}

// Stats asks the server for its metrics snapshot (Prometheus text format).
// It fails if the server has no metrics registry attached.
func (c *Client) Stats() (string, error) {
	return c.Query("stats")
}
