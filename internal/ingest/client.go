package ingest

import (
	"fmt"
	"net"

	"repro/internal/tracelog"
)

// Client is one connection to a trace-ingest server: either a session (one
// streamed trace, one returned report) or a query exchange. It is the
// programmatic face of what an instrumented server process — or the
// cmd/traceload replay client — speaks over the wire.
type Client struct {
	conn net.Conn
	fw   *tracelog.FrameWriter
	fr   *tracelog.FrameReader
}

// Dial connects to a server at a "network:address" spec (see Listen).
func Dial(spec string) (*Client, error) {
	conn, err := DialSpec(spec)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		fw:   tracelog.NewFrameWriter(conn),
		fr:   tracelog.NewFrameReader(conn),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// StreamTrace runs one full session: hello, the trace in chunked events
// frames, end — then blocks for the server's rendered report. chunk bounds
// the frame payload size (<= 0 takes 64 KiB), exercising event batches that
// span frame boundaries exactly as a live producer would.
func (c *Client) StreamTrace(name string, log []byte, chunk int) (string, error) {
	if chunk <= 0 {
		chunk = 64 << 10
	}
	if err := c.fw.Hello(name); err != nil {
		return "", fmt.Errorf("ingest: hello: %w", err)
	}
	for len(log) > 0 {
		n := chunk
		if n > len(log) {
			n = len(log)
		}
		if err := c.fw.Events(log[:n]); err != nil {
			return "", fmt.Errorf("ingest: events: %w", err)
		}
		log = log[n:]
	}
	if err := c.fw.End(); err != nil {
		return "", fmt.Errorf("ingest: end: %w", err)
	}
	text, err := c.fr.Response()
	if err != nil {
		return "", fmt.Errorf("ingest: response: %w", err)
	}
	return text, nil
}

// Aggregate asks the server for its cross-session aggregate report.
func (c *Client) Aggregate() (string, error) {
	if err := c.fw.Query("aggregate"); err != nil {
		return "", fmt.Errorf("ingest: query: %w", err)
	}
	text, err := c.fr.Response()
	if err != nil {
		return "", fmt.Errorf("ingest: response: %w", err)
	}
	return text, nil
}
