package ingest_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/tracelog"
)

// TestIncrementalReports streams one session in paced parts against a server
// with a short report interval and pins the incremental-report contract:
// snapshots are taken mid-stream, each manifest is a prefix-consistent
// subset of the final report's manifest, the final report is byte-identical
// to an offline replay (snapshots never perturb it), and the query surface
// ("session", "snapshots", "sessions") serves the same data over the wire.
func TestIncrementalReports(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{ReportInterval: time.Millisecond})
	log := recordScenario(t, 1, true)
	want := offlineReport(t, log)
	finalCol, err := scenario.RunOffline(nil, log, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantManifest := finalCol.Manifest()
	total, err := scenario.CountEvents(log)
	if err != nil {
		t.Fatal(err)
	}

	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("inc"); err != nil {
		t.Fatal(err)
	}
	// Four parts with inter-part pauses longer than the report interval:
	// every pause arms the ticker, so the server snapshots at each following
	// part boundary — genuinely mid-stream.
	quarter := len(log) / 4
	for i := 0; i < 4; i++ {
		end := (i + 1) * quarter
		if i == 3 {
			end = len(log)
		}
		if err := c.SendEvents(log[i*quarter : end]); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	got, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("final report with snapshots != offline replay:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	sessions := srv.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("registry has %d sessions", len(sessions))
	}
	sess := sessions[0]
	waitSession(t, sess)
	snaps := sess.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no incremental snapshots despite paced stream and 1ms interval")
	}
	midStream := false
	for i, sn := range snaps {
		if err := report.PrefixConsistent(sn.Manifest, wantManifest); err != nil {
			t.Errorf("snapshot %d: %v", i+1, err)
		}
		if sn.Events <= 0 || sn.Events > total {
			t.Errorf("snapshot %d events = %d (trace has %d)", i+1, sn.Events, total)
		}
		if sn.Events < total {
			midStream = true
		}
	}
	if !midStream {
		t.Error("every snapshot saw the full stream; none was mid-stream")
	}

	// The query surface serves the same data over the wire.
	q, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	text, err := q.Snapshots("inc")
	q.Close()
	if err != nil {
		t.Fatal(err)
	}
	if text != sess.FormatSnapshots() {
		t.Error("snapshots query differs from Session.FormatSnapshots")
	}
	if !strings.Contains(text, fmt.Sprintf("%d snapshot(s)", len(snaps))) {
		t.Errorf("snapshots response header wrong:\n%s", text)
	}
	q, err = ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	text, err = q.Query("session inc")
	q.Close()
	if err != nil {
		t.Fatal(err)
	}
	if text != want {
		t.Error("session query != final report")
	}
	q, err = ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	text, err = q.Query("sessions")
	q.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "name=inc state=reported") {
		t.Errorf("sessions listing missing the session:\n%s", text)
	}
}

// TestIdleTimeout pins the stalled-client contract: a client that handshakes
// and then stops sending is failed after Config.IdleTimeout and releases its
// MaxSessions slot — a subsequent session on the single-slot server must go
// through without waiting for shutdown.
func TestIdleTimeout(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{MaxSessions: 1, IdleTimeout: 50 * time.Millisecond})
	log := recordScenario(t, 2, true)

	stalled, err := ingest.DialSpec(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	fw := tracelog.NewFrameWriter(stalled)
	if err := fw.Hello("stalled"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Events(log[:len(log)/3]); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	// ... and now the client goes silent, holding the only session slot.

	deadline := time.Now().Add(10 * time.Second)
	for {
		sessions := srv.Sessions()
		if len(sessions) == 1 && sessions[0].State() == ingest.StateFailed {
			if sessions[0].Err() == nil {
				t.Error("timed-out session has nil Err")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled session never failed (idle timeout did not fire)")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The slot must be free again: a live session completes normally.
	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.StreamTrace("after-stall", log, 0); err != nil {
		t.Fatalf("session after a timed-out one: %v", err)
	}
	if agg := srv.Aggregate(); agg.Failed != 1 || agg.Reported != 1 {
		t.Errorf("aggregate = %d failed / %d reported, want 1/1", agg.Failed, agg.Reported)
	}
}

// TestMetadataResolvedSession pins the streaming-resolver contract: a
// session that sends its interned stack/block tables as metadata frames gets
// a report that (a) is byte-identical to an offline replay resolving against
// the same tables and (b) actually contains resolved stack frames — closing
// the "server-side reports render without stack resolution" gap.
func TestMetadataResolvedSession(t *testing.T) {
	_, addr := startServer(t, ingest.Config{Shards: 2})
	s := scenario.Generate(scenario.GenConfig{Seed: 1})
	v, log, err := scenario.Record(s, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	md := scenario.CaptureMetadata(v)
	if md.Empty() {
		t.Fatal("captured metadata is empty; scenario guests should intern stacks")
	}
	col, err := scenario.RunOffline(scenario.Resolver(md), log, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := col.Format()

	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.StreamTraceMeta("resolved", md, log, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resolved live report != resolved offline replay:\n--- live ---\n%s--- offline ---\n%s", got, want)
	}
	if !strings.Contains(got, "   at ") {
		t.Errorf("live report carries no resolved frames:\n%s", got)
	}

	// Control: the same trace without metadata renders unresolved, exactly
	// like the nil-resolver offline replay.
	c2, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	plain, err := c2.StreamTrace("unresolved", log, 512)
	if err != nil {
		t.Fatal(err)
	}
	if plain != offlineReport(t, log) {
		t.Error("metadata-free live report != nil-resolver offline replay")
	}
	if strings.Contains(plain, "   at ") {
		t.Error("metadata-free report unexpectedly resolved frames")
	}
}

// TestRetentionFold pins that the retention policy is aggregate-preserving:
// a server bounded to 2 retained terminal sessions serves the byte-exact
// same merged warnings, counts, and summaries over 6 sessions (one torn) as
// an unbounded server — while its registry holds only the retained tail.
func TestRetentionFold(t *testing.T) {
	logs := make([][]byte, 5)
	for i := range logs {
		logs[i] = recordScenario(t, int64(i%3+1), true)
	}
	run := func(cfg ingest.Config) (*ingest.Server, string) {
		srv, addr := startServer(t, cfg)
		// One torn session first (it folds as failed), then five clean ones,
		// strictly sequentially so both servers see the same open order.
		conn, err := ingest.DialSpec(addr)
		if err != nil {
			t.Fatal(err)
		}
		fw := tracelog.NewFrameWriter(conn)
		if err := fw.Hello("torn"); err != nil {
			t.Fatal(err)
		}
		if err := fw.Events(logs[0][:len(logs[0])/2]); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		conn.Close()
		for {
			if sessions := srv.Sessions(); len(sessions) > 0 {
				all := srv.Aggregate()
				if all.Failed == 1 {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		for i, log := range logs {
			c, err := ingest.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.StreamTrace(fmt.Sprintf("r%d", i), log, 0); err != nil {
				t.Fatal(err)
			}
			c.Close()
		}
		return srv, addr
	}

	bounded, boundedAddr := run(ingest.Config{RetainSessions: 2})
	unbounded, _ := run(ingest.Config{})

	// Eviction runs in each handler's epilogue; give the last one a moment.
	deadline := time.Now().Add(10 * time.Second)
	for len(bounded.Sessions()) > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("registry still holds %d sessions, want <= 2", len(bounded.Sessions()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := len(unbounded.Sessions()); n != 6 {
		t.Fatalf("unbounded registry holds %d sessions, want 6", n)
	}

	a, b := bounded.Aggregate(), unbounded.Aggregate()
	if a.Sessions != b.Sessions || a.Reported != b.Reported || a.Failed != b.Failed || a.Events != b.Events {
		t.Errorf("aggregate counts diverge: retained %d/%d/%d/%d vs unbounded %d/%d/%d/%d",
			a.Sessions, a.Reported, a.Failed, a.Events, b.Sessions, b.Reported, b.Failed, b.Events)
	}
	if a.Folded != 4 {
		t.Errorf("folded = %d, want 4 (6 terminal - 2 retained)", a.Folded)
	}
	if !reflect.DeepEqual(a.ByTool, b.ByTool) {
		t.Errorf("ByTool diverges: %v vs %v", a.ByTool, b.ByTool)
	}
	if !reflect.DeepEqual(a.Summaries, b.Summaries) {
		t.Errorf("Summaries diverge: %v vs %v", a.Summaries, b.Summaries)
	}
	if a.Merged.Format() != b.Merged.Format() {
		t.Errorf("merged reports diverge after folding:\n--- retained ---\n%s--- unbounded ---\n%s",
			a.Merged.Format(), b.Merged.Format())
	}

	// Folded sessions are gone from the per-session surfaces.
	if bounded.SessionByName("torn") != nil {
		t.Error("folded session still resolvable by name")
	}
	q, err := ingest.Dial(boundedAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Snapshots("torn"); !errors.Is(err, tracelog.ErrRemote) {
		t.Errorf("snapshots query for folded session = %v, want remote error", err)
	}
}
