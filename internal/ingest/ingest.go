// Package ingest is the live trace-ingest server: a long-running analysis
// daemon that accepts many concurrent client connections, each carrying one
// length-framed trace stream (tracelog's frame layer), and multiplexes them
// into independent per-session analysis pipelines.
//
// This is the step from one-shot replay to the paper's actual deployment
// shape: the tools monitored a long-running SIP server in production, not a
// single recorded run. A traced process (or a replay client such as
// cmd/traceload) connects, streams its events, and receives the rendered
// report for exactly its stream; the daemon additionally keeps a session
// registry and serves an aggregated cross-session report.
//
// Design notes:
//
//   - One connection is one session is one engine pipeline
//     (engine.NewPipeline): sequential per session by default, or sharded
//     across Config.Shards workers. Reports are therefore byte-identical to
//     an offline replay of the same trace through the same registry — the
//     conformance suite pins this.
//   - Memory is bounded per session by the engine's batch/backpressure
//     machinery (bounded channels between decode and shards) and across
//     sessions by Config.MaxSessions: beyond the cap, accepted connections
//     wait before their stream is read, which stalls the client through
//     transport flow control instead of queueing unbounded input.
//   - Session lifecycle: open (accepted, handshaking) → streaming (events
//     flowing) → drained (end frame seen, pipeline closing) → reported
//     (report delivered) — or failed, from any state. Completed sessions
//     stay in the registry for the aggregate report until the retention
//     policy (Config.RetainSessions) folds them into the running aggregate
//     and evicts their per-session state.
//   - Live sessions resolve like offline ones: metadata frames
//     (tracelog.FrameMetadata) carry the client's interned stack/block
//     tables, accumulated into a per-session tracelog.TableResolver that the
//     session pipeline renders reports against.
//   - Incremental reporting: with Config.ReportInterval set, a streaming
//     session periodically quiesces its pipeline (engine Snapshot — a
//     non-perturbing checkpoint) and stores the rendered mid-stream report
//     plus its site manifest; query connections fetch them ("session
//     <name>", "snapshots <name>") while the stream is still flowing. Every
//     snapshot manifest is a prefix-consistent subset of the session's final
//     manifest (report.PrefixConsistent) — the final report is unaffected.
//   - Shutdown stops accepting, then flushes: in-flight sessions are given
//     the context's grace period to drain and report; after that their
//     connections are force-closed, which surfaces to the session as a
//     truncated (failed) stream, never as a silently-dropped report.
//   - Scale-out: the same server with Config.BackendMode set becomes a
//     backend analyzer — after each session it additionally returns a
//     structured BackendResult (counters, summaries, the session collector
//     in wire form) and answers census probes. Router (traced -router)
//     shards ordinary client sessions across N such backends by rendezvous
//     hashing and folds their results into a fleet aggregate that is
//     byte-identical to a single-process run, because report.SiteKey is
//     content-derived and report.Merge is commutative over it. See the
//     repo-root doc.go ("Cross-session site identity and the router tier")
//     and README's "The router tier" section.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// Config configures a Server.
type Config struct {
	// Tools builds the per-session tool registry. Every session gets fresh
	// instances (the engine calls each spec's Factory anew), so sessions
	// share no mutable analysis state. Required.
	Tools func() []trace.ToolSpec
	// Shards is the per-session engine worker count; <= 1 runs each session
	// on the inline sequential pipeline. Either way the session report is
	// byte-identical (engine determinism).
	Shards int
	// MaxSessions bounds concurrently-analysed sessions (default 64).
	// Further connections are accepted but wait their turn before any of
	// their stream is read.
	MaxSessions int
	// AdmitTimeout bounds how long an accepted connection may wait for a
	// MaxSessions slot before the server rejects it with a typed busy error
	// frame (tracelog.ErrBusy) carrying a retry-after hint. 0 keeps the
	// delay-not-drop default: the connection waits until a slot frees or the
	// server shuts down (the wait is always bounded by Shutdown, and by
	// IdleTimeout when set — a parked waiter is an idle connection).
	AdmitTimeout time.Duration
	// AdmitRate > 0 enables token-bucket admission pacing: sessions are
	// admitted at this sustained rate (sessions/second) with bursts up to
	// AdmitBurst (default MaxSessions). A connection arriving on an empty
	// bucket is rejected immediately with a typed busy error and a
	// retry-after hint sized to the bucket's refill. 0 disables the gate.
	AdmitRate  float64
	AdmitBurst int
	// RetryAfter is the backoff hint attached to slot-timeout rejections
	// (default 1s). Rate rejections compute their own hint from the bucket.
	RetryAfter time.Duration
	// AdaptiveSampling lets sessions admitted under overload pressure shed a
	// deterministic per-block fraction of memory-access events before
	// analysis (see the sampler in admission.go). Exact sampled-out counts
	// are carried on the session, stamped into its report header, and summed
	// into the aggregate, so degraded output is honest. At zero pressure the
	// sampler keeps everything and reports are byte-identical to a server
	// with sampling off — the overload conformance test pins this.
	AdaptiveSampling bool
	// DegradationLadder sheds auxiliary tools from sessions admitted under
	// pressure — single-shard tools (highlevel) first, broadcast tools (the
	// lock-order detector) above that; block-routed tools (lockset, djit,
	// hybrid, memcheck) are never shed. Shed tool names are recorded on the
	// session and stamped into its report header. Off, every session runs
	// the full registry regardless of pressure.
	DegradationLadder bool
	// FoldSiteCap > 0 bounds the distinct warning sites the retention fold
	// retains: after each fold the merged collector keeps only the first cap
	// sites (in cross-session first-seen order) and the aggregate discloses
	// exactly how many sites and occurrences were compacted away. This is
	// what keeps a month-long daemon's aggregate memory bounded. 0 keeps
	// every folded site forever.
	FoldSiteCap int
	// BatchSize and QueueDepth tune the per-session engine (see
	// engine.Options); zero values take the engine defaults.
	BatchSize  int
	QueueDepth int
	// ReportInterval > 0 enables periodic incremental reports: roughly every
	// interval (checked as the session's stream is read, so an idle stream —
	// whose report cannot have changed — takes no snapshot), the session
	// pipeline is quiesced via its Snapshot lifecycle and the rendered
	// mid-stream report is stored on the Session, served to "session" and
	// "snapshots" query connections. Snapshots never perturb the final
	// report.
	ReportInterval time.Duration
	// AdaptiveReportInterval lets overload pressure stretch the snapshot
	// cadence: at pressure >= high a streaming session defers snapshot ticks,
	// taking only every snapshotDeferStride'th (a pipeline quiesce is exactly
	// the work an overloaded daemon should not amplify); the configured
	// cadence is restored the moment pressure drops below high. Deferrals are
	// counted on the session and disclosed by the "snapshots" query, so a
	// sparse snapshot history is attributable, never silent. Off, the cadence
	// is fixed regardless of pressure.
	AdaptiveReportInterval bool
	// BackendMode makes this server a backend analyzer in a router tier: in
	// addition to ordinary hello sessions it accepts assign-opened sessions —
	// router-forwarded client streams, answered with a structured
	// backend-report frame (BackendResult) instead of rendered text — and
	// backend-stats census requests. Off (the default), both openers are
	// refused with an error frame: a plain daemon never half-speaks the
	// router↔backend protocol by accident.
	BackendMode bool
	// RetainSessions > 0 bounds how many terminal (reported or failed)
	// sessions the registry keeps individually: beyond the bound, the oldest
	// terminal sessions are folded into a running aggregate collector —
	// their warning sites, summaries and lifecycle counts stay in Aggregate
	// forever — and their per-session state (collector, snapshots, registry
	// entry) is evicted. 0 keeps every session forever, the pre-retention
	// behaviour.
	RetainSessions int
	// IdleTimeout > 0 fails a session whose connection delivers no bytes for
	// the duration — a client that handshakes and then stalls would
	// otherwise hold one of the MaxSessions slots until shutdown. The
	// deadline is rolling: it rearms on every read, so slow-but-moving
	// streams are unaffected. It also covers the handshake itself.
	IdleTimeout time.Duration
	// Metrics, when non-nil, receives the daemon's self-observability
	// series (ingest_* families plus the shared engine_* families of every
	// session pipeline) and enables the "stats" query. Instrumentation never
	// influences analysis: session and aggregate reports are byte-identical
	// with or without a registry attached — the obs conformance test pins
	// this.
	Metrics *obs.Registry
}

// SessionState is a session's lifecycle position.
type SessionState uint8

// Session lifecycle states.
const (
	// StateOpen: connection accepted, handshake pending.
	StateOpen SessionState = iota
	// StateStreaming: events are being decoded into the pipeline.
	StateStreaming
	// StateDrained: end frame received; pipeline closing.
	StateDrained
	// StateReported: analysis complete, report produced and being (or
	// already) delivered to the client; terminal unless delivery fails,
	// which downgrades the session to failed.
	StateReported
	// StateFailed: handshake, stream, pipeline or write failure; terminal.
	StateFailed
)

func (s SessionState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateStreaming:
		return "streaming"
	case StateDrained:
		return "drained"
	case StateReported:
		return "reported"
	default:
		return "failed"
	}
}

// Snapshot is one periodic incremental report of a streaming session: the
// pipeline's mid-stream merged report, rendered, together with its site
// manifest (report.Collector.Manifest) — the machine-checkable form clients
// verify against the final report.
type Snapshot struct {
	// Events is the number of stream events analysed when the snapshot was
	// taken.
	Events int64
	// Report is the rendered incremental report, resolved against the
	// metadata tables received so far.
	Report string
	// Manifest is the snapshot's site manifest; it is always a
	// prefix-consistent subset of the session's final manifest.
	Manifest string
}

// Session is one client stream's registry entry.
type Session struct {
	ID   uint64
	Name string
	// Opened is when the session was registered; the "sessions" query
	// renders each entry's age from it.
	Opened time.Time

	met *serverMetrics // lifecycle gauge census; nil when no registry is attached

	mu      sync.Mutex
	state   SessionState
	events  int64
	err     error
	col     *report.Collector // set in StateReported
	sums    map[string]trace.ToolSummary
	report  string     // rendered final report (StateReported)
	snaps   []Snapshot // retained incremental reports, oldest first
	dropped int        // older snapshots discarded by the retention cap
	done    bool       // handler finished: report delivered or failure final

	// Overload bookkeeping: what this session's analysis gave up under
	// pressure (exact counts — degraded reports are honest), and snapshot
	// failures that would otherwise vanish.
	sampledOut   int64    // access events shed by the adaptive sampler
	shed         []string // tools shed by the degradation ladder at admission
	snapErrs     int      // failed incremental snapshot attempts
	snapErr      error    // the most recent of them
	snapDeferred int      // snapshot ticks deferred under pressure (AdaptiveReportInterval)
}

// maxSessionSnapshots bounds one session's retained incremental reports: a
// never-ending stream takes a snapshot every ReportInterval forever, so
// without a cap the session would grow without limit and the "snapshots"
// query response would eventually exceed the frame-payload bound. The oldest
// snapshots are discarded first — the freshest ones are the ones a live
// observer wants, and every retained snapshot individually keeps the
// prefix-consistency guarantee.
const maxSessionSnapshots = 64

// snapshotDeferStride is the pressure-adaptive snapshot cadence
// (Config.AdaptiveReportInterval): at pressure >= high only every stride'th
// tick takes a snapshot, so an overloaded daemon spends a quarter of the
// configured quiesce work while streams still checkpoint. The stride resets
// the moment a tick observes pressure below high.
const snapshotDeferStride = 4

// State returns the current lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Events returns the number of events the session's stream carried. It is
// set when the stream ends (drained or failed) and, with incremental
// reporting enabled (Config.ReportInterval), additionally refreshed at every
// snapshot — so a long-lived streaming session shows its progress instead of
// 0.
func (s *Session) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// SampledOut returns the exact number of access events the adaptive sampler
// shed from this session: Events() + SampledOut() is what the stream carried.
func (s *Session) SampledOut() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampledOut
}

// ShedTools returns the tools the degradation ladder removed from this
// session's registry at admission; nil for a full-coverage session.
func (s *Session) ShedTools() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.shed...)
}

// Degraded reports whether the session's analysis gave anything up under
// overload pressure (sampled events or shed tools).
func (s *Session) Degraded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampledOut > 0 || len(s.shed) > 0
}

// SnapshotErrs returns how many incremental snapshot attempts failed, and
// the most recent failure.
func (s *Session) SnapshotErrs() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapErrs, s.snapErr
}

// noteSnapshotError records one failed incremental snapshot attempt. The
// stream goes on — a failed snapshot loses one checkpoint, not the session —
// but the failure is counted and kept instead of dropped on the floor.
func (s *Session) noteSnapshotError(err error) {
	s.mu.Lock()
	s.snapErrs++
	s.snapErr = err
	s.mu.Unlock()
}

// SnapshotsDeferred returns how many snapshot ticks the pressure-adaptive
// cadence skipped for this session (Config.AdaptiveReportInterval).
func (s *Session) SnapshotsDeferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapDeferred
}

// noteSnapshotDeferred records one snapshot tick skipped under pressure.
func (s *Session) noteSnapshotDeferred() {
	s.mu.Lock()
	s.snapDeferred++
	s.mu.Unlock()
}

// degradedHeader renders the honesty annotation prepended to the reports of
// a session that analysed less than its stream carried. Empty for a
// full-coverage session, so undegraded reports are byte-identical to a
// server without overload handling.
func degradedHeader(sampledOut int64, shed []string) string {
	if sampledOut == 0 && len(shed) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("== degraded:")
	if sampledOut > 0 {
		fmt.Fprintf(&b, " sampled-out=%d event(s)", sampledOut)
	}
	if len(shed) > 0 {
		fmt.Fprintf(&b, " tools-shed=%s", strings.Join(shed, ","))
	}
	b.WriteByte('\n')
	return b.String()
}

// Snapshots returns the session's incremental reports so far, oldest first.
func (s *Session) Snapshots() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Snapshot(nil), s.snaps...)
}

// addSnapshot records one incremental report, discarding the oldest beyond
// maxSessionSnapshots, and refreshes the live event count.
func (s *Session) addSnapshot(sn Snapshot) {
	s.mu.Lock()
	if len(s.snaps) >= maxSessionSnapshots {
		n := copy(s.snaps, s.snaps[1:])
		s.snaps = s.snaps[:n]
		s.dropped++
	}
	s.snaps = append(s.snaps, sn)
	s.events = sn.Events
	s.mu.Unlock()
}

// LatestReport returns the freshest rendered report the session has: the
// final report once reported, otherwise the newest incremental snapshot,
// otherwise a status line. This is what a "session <name>" query receives.
func (s *Session) LatestReport() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.state == StateReported:
		return s.report
	case len(s.snaps) > 0:
		return s.snaps[len(s.snaps)-1].Report
	default:
		return fmt.Sprintf("== session %s: state=%s, no incremental report yet\n", s.Name, s.state)
	}
}

// FormatSnapshots renders the session's snapshot manifests — the response to
// a "snapshots <name>" query, and the input clients feed to
// report.PrefixConsistent against the final report's manifest.
func (s *Session) FormatSnapshots() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "== session %s: %d snapshot(s)", s.Name, len(s.snaps))
	if s.dropped > 0 {
		fmt.Fprintf(&b, " (%d older discarded)", s.dropped)
	}
	if s.snapErrs > 0 {
		fmt.Fprintf(&b, " (%d failed, last: %v)", s.snapErrs, s.snapErr)
	}
	if s.snapDeferred > 0 {
		fmt.Fprintf(&b, " (%d tick(s) deferred under pressure)", s.snapDeferred)
	}
	b.WriteByte('\n')
	for i, sn := range s.snaps {
		fmt.Fprintf(&b, "== snapshot %d: events=%d\n%s", s.dropped+i+1, sn.Events, sn.Manifest)
	}
	return b.String()
}

// Err returns the terminal failure of a failed session.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// markDone records that the session's handler has finished: its state can no
// longer change, so the retention policy may fold it.
func (s *Session) markDone() {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
}

// foldable reports whether the session has reached a state the retention
// policy may fold: terminal AND with its handler finished — a session marked
// reported whose report is still being written can yet downgrade to failed,
// and folding it early would freeze the wrong lifecycle count.
func (s *Session) foldable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done && (s.state == StateReported || s.state == StateFailed)
}

// transitionLocked advances the lifecycle and moves the state-gauge census
// with it. Callers hold s.mu.
func (s *Session) transitionLocked(st SessionState) {
	if s.met != nil && st != s.state {
		s.met.states[s.state].Add(-1)
		s.met.states[st].Add(1)
	}
	s.state = st
}

// setState advances the lifecycle under the session lock.
func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	s.transitionLocked(st)
	s.mu.Unlock()
}

func (s *Session) fail(err error) {
	s.mu.Lock()
	s.transitionLocked(StateFailed)
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Server is the multiplexed trace-ingest daemon.
type Server struct {
	cfg Config
	met *serverMetrics // nil when Config.Metrics is nil

	draining atomic.Bool // set at Shutdown entry; health endpoints read it

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*Session
	order    []uint64 // session IDs in open order (deterministic aggregate)
	nextID   uint64
	conns    map[net.Conn]struct{}
	closed   bool
	folded   foldedState // retention rollup of evicted sessions
	drain    DrainSummary

	sem         chan struct{} // MaxSessions slots
	slotWaiters atomic.Int64  // connections parked waiting for a slot
	bucket      *tokenBucket  // admission pacing; nil when AdmitRate is 0
	shutdown    chan struct{} // closed at Shutdown entry; unparks slot waiters
	wg          sync.WaitGroup

	// loads holds the queue-load probes of live session pipelines, keyed by
	// session ID: the backlog signal admission feeds back into the token
	// bucket (see admit), under its own lock so the probe never contends with
	// the registry.
	loadMu sync.Mutex
	loads  map[uint64]func() float64
}

// DrainSummary is the outcome of a Shutdown flush: how many sessions were
// still in flight when the drain began, and how they ended — flushed to a
// clean report within the grace period, or force-failed by the connection
// close after it.
type DrainSummary struct {
	InFlight int // sessions not yet terminal when Shutdown began
	Flushed  int // of those, ended reported
	Forced   int // of those, ended failed (grace expired) or still not terminal
}

// Draining reports whether Shutdown has begun — the state a health endpoint
// distinguishes from live serving.
func (s *Server) Draining() bool { return s.draining.Load() }

// LastDrain returns the drain outcome of the completed Shutdown; the zero
// summary before Shutdown has run.
func (s *Server) LastDrain() DrainSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drain
}

// foldedState is the running aggregate of sessions the retention policy has
// evicted from the registry: their lifecycle counts, event totals, summed
// tool summaries and one merged collector holding every folded reported
// session's warning sites. Folding is an aggregate-preserving operation —
// Aggregate over (folded state + remaining registry) equals Aggregate over
// the unretained registry, because report.Merge is associative for inputs
// merged in session open order.
type foldedState struct {
	sessions int
	reported int
	failed   int
	events   int64
	col      *report.Collector // merged folded reported sessions; nil until the first fold
	sums     map[string]trace.ToolSummary

	sampledOut int64 // summed exact sampler drops of folded sessions
	degraded   int   // folded sessions that analysed less than their stream

	// Compaction tallies (Config.FoldSiteCap): what the bounded fold has
	// discarded, disclosed by the aggregate so the cap never silently
	// shrinks the numbers.
	compactedSites int
	compactedOccs  int
}

// NewServer creates a server; call Serve with a listener to start it.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Tools == nil {
		return nil, errors.New("ingest: Config.Tools is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	s := &Server{
		cfg:      cfg,
		met:      newServerMetrics(cfg.Metrics),
		sessions: make(map[uint64]*Session),
		conns:    make(map[net.Conn]struct{}),
		sem:      make(chan struct{}, cfg.MaxSessions),
		shutdown: make(chan struct{}),
		loads:    make(map[uint64]func() float64),
	}
	if cfg.AdmitRate > 0 {
		burst := cfg.AdmitBurst
		if burst <= 0 {
			burst = cfg.MaxSessions
		}
		s.bucket = newTokenBucket(cfg.AdmitRate, burst)
	}
	return s, nil
}

// Serve accepts connections on ln until Shutdown (or a listener error) and
// blocks while doing so. Each connection is served on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// Shutdown stops accepting and flushes in-flight sessions: it waits for them
// to drain and report until ctx expires, then force-closes the remaining
// connections (their sessions fail with a truncated stream) and waits for
// the handlers to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		// Unpark every connection still waiting for a MaxSessions slot:
		// they are rejected through the normal error path instead of
		// outliving the server on the semaphore.
		close(s.shutdown)
	}
	ln := s.ln
	// In-flight census before any flushing: these are the sessions the drain
	// summary tracks to their terminal state.
	var inflight []*Session
	for _, id := range s.order {
		sess := s.sessions[id]
		if st := sess.State(); st != StateReported && st != StateFailed {
			inflight = append(inflight, sess)
		}
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	sum := DrainSummary{InFlight: len(inflight)}
	for _, sess := range inflight {
		if sess.State() == StateReported {
			sum.Flushed++
		} else {
			sum.Forced++
		}
	}
	s.mu.Lock()
	s.drain = sum
	s.mu.Unlock()
	return err
}

// register creates a new session registry entry.
func (s *Server) register(name string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess := &Session{ID: s.nextID, Name: name, Opened: time.Now(), met: s.met, state: StateOpen}
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	if s.met != nil {
		s.met.sessionsOpened.Inc()
		s.met.states[StateOpen].Add(1)
	}
	return sess
}

// serveConn runs one connection: a query exchange or a full session.
func (s *Server) serveConn(conn net.Conn) {
	// The idle deadline wraps the raw connection, underneath the frame
	// layer, so it covers the handshake and every stream read alike.
	var rd io.Reader = conn
	if s.cfg.IdleTimeout > 0 {
		rd = idleReader{conn: conn, timeout: s.cfg.IdleTimeout}
	}
	fr := tracelog.NewFrameReader(rd)
	if s.met != nil {
		fr.SetObserver(s.met.observeFrame)
	}
	fw := tracelog.NewFrameWriter(conn)
	kind, meta, err := fr.Handshake()
	if err != nil {
		fw.Error(fmt.Sprintf("bad handshake: %v", err))
		return
	}
	assigned := false
	switch kind {
	case tracelog.FrameQuery:
		s.serveQuery(fw, meta)
		return
	case tracelog.FrameBackendStats:
		if !s.cfg.BackendMode {
			fw.Error("backend-stats: this server is not a backend analyzer (Config.BackendMode)")
			return
		}
		s.serveBackendStats(fw)
		return
	case tracelog.FrameAssign:
		if !s.cfg.BackendMode {
			fw.Error("assign: this server is not a backend analyzer (Config.BackendMode)")
			return
		}
		// A router-forwarded session: analysed exactly like a hello session,
		// but answered with a structured backend-report frame the router
		// folds and relays.
		assigned = true
	}

	// A session occupies an analysis slot for its whole pipeline lifetime;
	// waiting here (before any stream is read) is the cross-session
	// backpressure described in the package comment. The wait is bounded
	// (admission.go): past the rate gate or the slot deadline the client is
	// answered with a typed busy frame instead of parking forever.
	waited, err := s.admit()
	if err != nil {
		var rej *rejectError
		if errors.As(err, &rej) {
			s.reject(conn, fw, rej)
		} else {
			fw.Error(fmt.Sprintf("admission: %v", err))
		}
		return
	}
	defer func() { <-s.sem }()

	// The degradation ladder and the sampler both key off the pressure
	// level observed now, at admission — the moment the slot was contended.
	// A session that had to park for its slot saw demand exceed capacity
	// first-hand: that is full pressure regardless of what the occupancy
	// probe says a moment later. At zero pressure both mechanisms are inert
	// and the session is analysed exactly as it would be with the features
	// off.
	level := pressureNone
	if s.cfg.DegradationLadder || s.cfg.AdaptiveSampling {
		if level = s.pressureLevel(); waited {
			level = pressureFull
		}
	}
	specs := s.cfg.Tools()
	var shed []string
	if s.cfg.DegradationLadder {
		specs, shed = shedSpecs(specs, level)
	}

	sess := s.register(meta)
	if len(shed) > 0 {
		sess.mu.Lock()
		sess.shed = shed
		sess.mu.Unlock()
		if s.met != nil {
			for _, tool := range shed {
				s.met.shedTools.With(tool).Inc()
			}
		}
	}
	sess.setState(StateStreaming)
	// Whatever way the session ends, give the retention policy a chance to
	// fold and evict the oldest terminal sessions. LIFO defers: the done
	// mark lands first, so this handler's own session is foldable — while a
	// session another handler is still delivering a report for (marked
	// reported before the write, and downgraded to failed if the write
	// fails) stays unfoldable until its state is final.
	defer s.retire()
	defer sess.markDone()

	// The frame reader's table resolver starts empty and fills in as the
	// stream's metadata frames arrive; every report this session renders —
	// incremental and final — resolves against it, exactly like an offline
	// replay resolving against the recording VM.
	var em *engine.Metrics
	if s.met != nil {
		em = s.met.engine
	}
	pipe, err := engine.NewPipeline(engine.Options{
		Tools:      specs,
		Shards:     s.cfg.Shards,
		BatchSize:  s.cfg.BatchSize,
		QueueDepth: s.cfg.QueueDepth,
		Resolver:   fr.Tables(),
		Metrics:    em,
	})
	if err != nil {
		sess.fail(err)
		fw.Error(fmt.Sprintf("pipeline: %v", err))
		return
	}
	// Publish the pipeline's backlog probe for admission's queue-load
	// feedback; withdrawn when the handler ends, whatever way.
	s.trackLoad(sess.ID, pipe.QueueLoad)
	defer s.untrackLoad(sess.ID)

	// Incremental reporting: a ticker arms a flag, and the next stream read
	// on the decode goroutine takes the snapshot — the pipeline's Snapshot
	// contract requires the dispatching goroutine, and between reads no
	// event delivery is in flight. An idle stream takes no snapshot, but an
	// idle stream's report cannot have changed either.
	// The sampler exists before the snapshot trigger wraps the stream so
	// incremental reports can carry the dropped-so-far count; both the
	// trigger callback and the sampler run on the decode goroutine, so the
	// counter needs no synchronisation.
	var sam *sampler
	if s.cfg.AdaptiveSampling {
		sam = newSampler(level, s.pressureLevel, pipe.QueueLoad)
	}
	var stream io.Reader = fr
	if s.cfg.ReportInterval > 0 {
		// deferredRun tracks consecutive ticks skipped by the
		// pressure-adaptive cadence; it lives on the decode goroutine (the
		// only caller of the trigger callback), so no synchronisation.
		deferredRun := 0
		trig, stop := newSnapshotTrigger(fr, s.cfg.ReportInterval, func() {
			if s.cfg.AdaptiveReportInterval && deferredRun < snapshotDeferStride-1 &&
				s.pressureLevel() >= pressureHigh {
				deferredRun++
				sess.noteSnapshotDeferred()
				if s.met != nil {
					s.met.snapshotsDeferred.Inc()
				}
				return
			}
			deferredRun = 0
			col, err := pipe.Snapshot()
			if err != nil {
				// A failed snapshot loses one checkpoint, not the session —
				// but it is recorded and counted, not swallowed.
				sess.noteSnapshotError(err)
				if s.met != nil {
					s.met.snapshotErrors.Inc()
				}
				return
			}
			var droppedSoFar int64
			if sam != nil {
				droppedSoFar = sam.dropped
			}
			sess.addSnapshot(Snapshot{
				Events:   pipe.Events(),
				Report:   degradedHeader(droppedSoFar, shed) + col.Format(),
				Manifest: col.Manifest(),
			})
			if s.met != nil {
				s.met.snapshotsTaken.Inc()
			}
		})
		defer stop()
		stream = trig
	}

	var events int64
	if sam != nil {
		// Sampled replay: ingest owns the decode loop, dropping events
		// before dispatch; events counts what was analysed, the remainder is
		// the exact sampled-out tally.
		var sent int64
		sent, err = replaySampled(pipe, stream, sam)
		events = sent - sam.dropped
	} else {
		events, err = pipe.ReplayLog(stream)
	}
	sess.mu.Lock()
	sess.events = events
	if sam != nil {
		sess.sampledOut = sam.dropped
	}
	degraded := sess.sampledOut > 0 || len(sess.shed) > 0
	sess.mu.Unlock()
	if s.met != nil {
		s.met.eventsTotal.Add(events)
		if sam != nil && sam.dropped > 0 {
			s.met.sampledOut.Add(sam.dropped)
		}
		if degraded {
			s.met.degradedSessions.Inc()
		}
	}
	if err != nil {
		pipe.Close() // join workers; no report by the mid-stream contract
		if s.met != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.met.idleKills.Inc()
			}
		}
		sess.fail(err)
		fw.Error(fmt.Sprintf("stream: %v", err))
		return
	}

	sess.setState(StateDrained)
	col, cerr := pipe.Close()
	if cerr != nil {
		sess.fail(cerr)
		fw.Error(fmt.Sprintf("analysis: %v", cerr))
		return
	}
	// Mark reported before the response write: the moment the client has
	// its report in hand, a follow-up aggregate query must already account
	// for this session (write-then-mark would race that query). A failed
	// delivery downgrades the session to failed afterwards. A degraded
	// session's report says so up front — exact counts, never silently.
	var sampledOut int64
	if sam != nil {
		sampledOut = sam.dropped
	}
	text := degradedHeader(sampledOut, shed) + col.Format()
	sums := pipe.Summaries()
	sess.mu.Lock()
	sess.transitionLocked(StateReported)
	sess.col = col
	sess.sums = sums
	sess.report = text
	sess.mu.Unlock()
	if s.met != nil {
		for tool, n := range col.LocationsByTool() {
			s.met.warnings.With(tool).Add(int64(n))
		}
	}
	var werr error
	if assigned {
		// The router gets the structured result: the rendered text it relays
		// to the client, plus the portable collector and summaries it folds
		// into the fleet aggregate.
		res := &BackendResult{
			Name: sess.Name, Events: events, SampledOut: sampledOut,
			Shed: shed, Report: text, Sums: sums, Col: col,
		}
		werr = fw.BackendReport(res.encode(nil))
	} else {
		werr = fw.Report(text)
	}
	if werr != nil {
		sess.fail(werr)
		// Best effort: an oversized report is refused before any bytes hit
		// the wire, so the client can still be told why.
		fw.Error(fmt.Sprintf("report: %v", werr))
	}
}

// serveBackendStats answers a census request (backend mode only).
func (s *Server) serveBackendStats(fw *tracelog.FrameWriter) {
	c := s.census()
	if err := fw.BackendStats(c.encode(nil)); err != nil {
		fw.Error(fmt.Sprintf("backend-stats: %v", err))
	}
}

// census computes the cheap registry rollup behind a backend-stats response:
// lifecycle counts and event totals only — no collector merge, so a router
// polling every backend costs the fleet nothing measurable.
func (s *Server) census() BackendCensus {
	s.mu.Lock()
	c := BackendCensus{
		Sessions: s.folded.sessions, Reported: s.folded.reported,
		Failed: s.folded.failed, Folded: s.folded.sessions,
		Events: s.folded.events,
	}
	s.mu.Unlock()
	for _, sess := range s.Sessions() {
		sess.mu.Lock()
		c.Sessions++
		c.Events += sess.events
		switch sess.state {
		case StateReported:
			c.Reported++
		case StateFailed:
			c.Failed++
		default:
			c.Active++
		}
		sess.mu.Unlock()
	}
	return c
}

// trackLoad publishes one live pipeline's queue-load probe for admission's
// feedback loop; untrackLoad withdraws it when the session's handler ends.
func (s *Server) trackLoad(id uint64, probe func() float64) {
	s.loadMu.Lock()
	s.loads[id] = probe
	s.loadMu.Unlock()
}

func (s *Server) untrackLoad(id uint64) {
	s.loadMu.Lock()
	delete(s.loads, id)
	s.loadMu.Unlock()
}

// maxQueueLoad probes the most backed-up live session pipeline (0 when none
// are live). This is the backlog signal admission reads: slot occupancy says
// how many sessions run, queue load says whether the ones running are keeping
// up.
func (s *Server) maxQueueLoad() float64 {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	var max float64
	for _, probe := range s.loads {
		if l := probe(); l > max {
			max = l
		}
	}
	return max
}

// idleReader applies a rolling read deadline to a session connection: every
// read rearms Config.IdleTimeout, so only a genuinely stalled peer times
// out. The resulting net timeout error fails the session through the normal
// stream-error path, freeing its MaxSessions slot.
type idleReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r idleReader) Read(p []byte) (int, error) {
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}

// snapshotTrigger interposes on a session's stream reads to take pipeline
// snapshots at a safe point: the ticker goroutine only arms a flag, and the
// decode goroutine — the pipeline's dispatching goroutine, with no event
// delivery in flight while it is reading input — fires the callback before
// its next read.
type snapshotTrigger struct {
	r     io.Reader
	fired atomic.Bool
	snap  func()
}

// newSnapshotTrigger wraps r; the returned stop function ends the ticker
// goroutine and is safe to call more than once.
func newSnapshotTrigger(r io.Reader, interval time.Duration, snap func()) (io.Reader, func()) {
	t := &snapshotTrigger{r: r, snap: snap}
	tk := time.NewTicker(interval)
	stop := make(chan struct{})
	go func() {
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				t.fired.Store(true)
			case <-stop:
				return
			}
		}
	}()
	var once sync.Once
	return t, func() { once.Do(func() { close(stop) }) }
}

func (t *snapshotTrigger) Read(p []byte) (int, error) {
	if t.fired.CompareAndSwap(true, false) {
		t.snap()
	}
	return t.r.Read(p)
}

// serveQuery answers a query connection.
func (s *Server) serveQuery(fw *tracelog.FrameWriter, q string) {
	reply := func(what, text string) {
		if err := fw.Report(text); err != nil {
			// An oversized response is refused before any bytes hit the
			// wire, so the client can still be told why.
			fw.Error(fmt.Sprintf("%s: %v", what, err))
		}
	}
	name, sessionQ := strings.CutPrefix(q, "session ")
	manifestName, snapshotsQ := strings.CutPrefix(q, "snapshots ")
	switch {
	case q == "aggregate":
		reply("aggregate", s.Aggregate().Format())
	case q == "sessions":
		reply("sessions", s.formatSessions())
	case q == "stats":
		if s.cfg.Metrics == nil {
			fw.Error("stats: no metrics registry attached (Config.Metrics)")
			return
		}
		reply("stats", s.cfg.Metrics.Snapshot())
	case sessionQ:
		sess := s.SessionByName(strings.TrimSpace(name))
		if sess == nil {
			fw.Error(fmt.Sprintf("unknown session %q (never opened, or already folded into the aggregate)", strings.TrimSpace(name)))
			return
		}
		reply("session", sess.LatestReport())
	case snapshotsQ:
		sess := s.SessionByName(strings.TrimSpace(manifestName))
		if sess == nil {
			fw.Error(fmt.Sprintf("unknown session %q (never opened, or already folded into the aggregate)", strings.TrimSpace(manifestName)))
			return
		}
		reply("snapshots", sess.FormatSnapshots())
	default:
		fw.Error(fmt.Sprintf("unknown query %q (known: aggregate, sessions, stats, session <name>, snapshots <name>)", q))
	}
}

// SessionByName returns the most recently opened retained session with the
// given name, or nil.
func (s *Server) SessionByName(name string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		if sess := s.sessions[s.order[i]]; sess.Name == name {
			return sess
		}
	}
	return nil
}

// formatSessions renders the registry listing a "sessions" query receives.
func (s *Server) formatSessions() string {
	sessions := s.Sessions()
	s.mu.Lock()
	folded := s.folded.sessions
	s.mu.Unlock()
	return formatSessionsAt(sessions, folded, time.Now())
}

// formatSessionsAt is the clock-injected rendering behind formatSessions:
// one line per retained session with its lifecycle state, progress counters
// and age at the given instant.
func formatSessionsAt(sessions []*Session, folded int, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== sessions: %d retained, %d folded\n", len(sessions), folded)
	for _, sess := range sessions {
		sess.mu.Lock()
		fmt.Fprintf(&b, "id=%d name=%s state=%s events=%d snaps=%d age=%s\n",
			sess.ID, sess.Name, sess.state, sess.events, len(sess.snaps),
			now.Sub(sess.Opened).Round(time.Second))
		sess.mu.Unlock()
	}
	return b.String()
}

// retire enforces Config.RetainSessions: while more terminal sessions than
// the bound are retained, the oldest ones are folded into the running
// aggregate and evicted from the registry. In-flight sessions are never
// touched.
func (s *Server) retire() {
	if s.cfg.RetainSessions <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var terminal []uint64
	for _, id := range s.order {
		if s.sessions[id].foldable() {
			terminal = append(terminal, id)
		}
	}
	excess := len(terminal) - s.cfg.RetainSessions
	if excess <= 0 {
		return
	}
	evict := make(map[uint64]bool, excess)
	for _, id := range terminal[:excess] {
		s.fold(s.sessions[id])
		evict[id] = true
		delete(s.sessions, id)
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if !evict[id] {
			kept = append(kept, id)
		}
	}
	s.order = kept
}

// fold merges one terminal session into the retention rollup. Called with
// s.mu held.
func (s *Server) fold(sess *Session) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if s.met != nil {
		// Eviction removes the session from the census the state gauges
		// cover; the folds counter keeps the running total observable.
		s.met.folds.Inc()
		s.met.states[sess.state].Add(-1)
	}
	s.folded.sessions++
	s.folded.events += sess.events
	s.folded.sampledOut += sess.sampledOut
	if sess.sampledOut > 0 || len(sess.shed) > 0 {
		s.folded.degraded++
	}
	if sess.state != StateReported {
		s.folded.failed++
		return
	}
	s.folded.reported++
	// Merge produces a fresh collector every fold; the previous one is never
	// mutated again, so an Aggregate holding it concurrently stays sound.
	// With FoldSiteCap set, the fresh collector is compacted before it is
	// published: the retained sites are a prefix of the merged first-seen
	// order, and the discarded tail is tallied for the aggregate to
	// disclose. Compacting pre-publication keeps a concurrent Aggregate
	// sound — it only ever holds collectors that will never mutate again.
	merged := report.Merge(nil, nil, s.folded.col, sess.col)
	if s.cfg.FoldSiteCap > 0 {
		sites, occs := merged.CompactTail(s.cfg.FoldSiteCap)
		s.folded.compactedSites += sites
		s.folded.compactedOccs += occs
		if s.met != nil && sites > 0 {
			s.met.foldCompactedSites.Add(int64(sites))
		}
	}
	s.folded.col = merged
	for name, sum := range sess.sums {
		if s.folded.sums == nil {
			s.folded.sums = make(map[string]trace.ToolSummary)
		}
		t := s.folded.sums[name]
		if t == nil {
			t = make(trace.ToolSummary)
			s.folded.sums[name] = t
		}
		t.Merge(sum)
	}
}

// Sessions returns the registry entries in open order.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Aggregate is the cross-session rollup: lifecycle counts, total analysed
// events, per-tool warning-site counts, summed tool summaries, and the
// merged deduplicated report of every reported session. Sessions the
// retention policy has folded stay fully accounted for — only their
// per-session state is gone.
type Aggregate struct {
	Sessions int // all registered sessions, including folded ones
	Reported int
	Failed   int
	Active   int // open/streaming/drained
	Folded   int // sessions no longer individually retained (RetainSessions)
	Events   int64
	// SampledOut sums the exact per-session sampler drops: Events +
	// SampledOut is what the streams carried; Degraded counts the sessions
	// that analysed under overload (sampled events or shed tools).
	SampledOut int64
	Degraded   int
	// CompactedSites/CompactedOccurrences disclose what the bounded
	// retention fold (Config.FoldSiteCap) has discarded from Merged.
	CompactedSites       int
	CompactedOccurrences int
	// ByTool counts distinct warning sites per tool across the merged
	// report.
	ByTool map[string]int
	// Summaries sums the per-tool counter rollups of every reported
	// session (trace.Summarizer tools, e.g. memcheck's errors and leaks).
	Summaries map[string]trace.ToolSummary
	// Merged is the deduplicated cross-session report (report.Merge):
	// identical sites from different sessions fold with summed counts.
	Merged *report.Collector
}

// Aggregate computes the cross-session rollup at this instant. Sessions
// still in flight contribute their lifecycle state only — their event
// counts and warnings arrive when the stream ends (or, with incremental
// reporting on, advance at every snapshot; see Session.Events). Folding
// (RetainSessions) is invisible here: the rollup over folded state plus the
// remaining registry equals the rollup an unretained registry would give.
func (s *Server) Aggregate() *Aggregate {
	agg := &Aggregate{
		ByTool:    make(map[string]int),
		Summaries: make(map[string]trace.ToolSummary),
	}
	var cols []*report.Collector
	// Start from the retention rollup, copied under the lock (later folds
	// mutate the summary maps in place; the collector is never mutated).
	s.mu.Lock()
	agg.Sessions = s.folded.sessions
	agg.Reported = s.folded.reported
	agg.Failed = s.folded.failed
	agg.Folded = s.folded.sessions
	agg.Events = s.folded.events
	agg.SampledOut = s.folded.sampledOut
	agg.Degraded = s.folded.degraded
	agg.CompactedSites = s.folded.compactedSites
	agg.CompactedOccurrences = s.folded.compactedOccs
	for name, sum := range s.folded.sums {
		t := make(trace.ToolSummary)
		t.Merge(sum)
		agg.Summaries[name] = t
	}
	if s.folded.col != nil {
		cols = append(cols, s.folded.col)
	}
	s.mu.Unlock()
	for _, sess := range s.Sessions() {
		sess.mu.Lock()
		agg.Sessions++
		agg.Events += sess.events
		agg.SampledOut += sess.sampledOut
		if sess.sampledOut > 0 || len(sess.shed) > 0 {
			agg.Degraded++
		}
		switch sess.state {
		case StateReported:
			agg.Reported++
			cols = append(cols, sess.col)
			for name, sum := range sess.sums {
				t := agg.Summaries[name]
				if t == nil {
					t = make(trace.ToolSummary)
					agg.Summaries[name] = t
				}
				t.Merge(sum)
			}
		case StateFailed:
			agg.Failed++
		default:
			agg.Active++
		}
		sess.mu.Unlock()
	}
	agg.Merged = report.Merge(nil, nil, cols...)
	for tool, n := range agg.Merged.LocationsByTool() {
		agg.ByTool[tool] = n
	}
	return agg
}

// Format renders the aggregate in the report idiom: a header block with the
// session and per-tool counts, then the merged warnings.
func (a *Aggregate) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== ingest aggregate: %d session(s) — %d reported, %d failed, %d active; %d event(s)\n",
		a.Sessions, a.Reported, a.Failed, a.Active, a.Events)
	if a.Folded > 0 {
		fmt.Fprintf(&b, "== retention: %d session(s) folded into the aggregate\n", a.Folded)
	}
	if a.Degraded > 0 {
		fmt.Fprintf(&b, "== degraded: %d session(s) analysed under overload — %d event(s) sampled out\n",
			a.Degraded, a.SampledOut)
	}
	if a.CompactedSites > 0 {
		fmt.Fprintf(&b, "== compaction: %d warning site(s) (%d occurrence(s)) discarded beyond the fold site cap\n",
			a.CompactedSites, a.CompactedOccurrences)
	}
	tools := make([]string, 0, len(a.ByTool))
	for tool := range a.ByTool {
		tools = append(tools, tool)
	}
	sort.Strings(tools)
	if len(tools) > 0 {
		b.WriteString("== tool locations:")
		for _, tool := range tools {
			fmt.Fprintf(&b, " %s=%d", tool, a.ByTool[tool])
		}
		b.WriteByte('\n')
	}
	sums := make([]string, 0, len(a.Summaries))
	for name := range a.Summaries {
		sums = append(sums, name)
	}
	sort.Strings(sums)
	for _, name := range sums {
		counts := a.Summaries[name]
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "== %s summary:", name)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, counts[k])
		}
		b.WriteByte('\n')
	}
	b.WriteString(a.Merged.Format())
	return b.String()
}

// Listen opens a listener from a "network:address" spec: "tcp:127.0.0.1:0"
// or "unix:/path/to.sock".
func Listen(spec string) (net.Listener, error) {
	network, addr, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	return net.Listen(network, addr)
}

// DialSpec connects to a "network:address" spec (see Listen).
func DialSpec(spec string) (net.Conn, error) {
	network, addr, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	return net.Dial(network, addr)
}

func splitSpec(spec string) (network, addr string, err error) {
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || addr == "" {
		return "", "", fmt.Errorf("ingest: bad address %q, want network:address (e.g. tcp:127.0.0.1:7433 or unix:/tmp/traced.sock)", spec)
	}
	switch network {
	case "tcp", "tcp4", "tcp6", "unix":
		return network, addr, nil
	default:
		return "", "", fmt.Errorf("ingest: unsupported network %q", network)
	}
}
