// Package ingest is the live trace-ingest server: a long-running analysis
// daemon that accepts many concurrent client connections, each carrying one
// length-framed trace stream (tracelog's frame layer), and multiplexes them
// into independent per-session analysis pipelines.
//
// This is the step from one-shot replay to the paper's actual deployment
// shape: the tools monitored a long-running SIP server in production, not a
// single recorded run. A traced process (or a replay client such as
// cmd/traceload) connects, streams its events, and receives the rendered
// report for exactly its stream; the daemon additionally keeps a session
// registry and serves an aggregated cross-session report.
//
// Design notes:
//
//   - One connection is one session is one engine pipeline
//     (engine.NewPipeline): sequential per session by default, or sharded
//     across Config.Shards workers. Reports are therefore byte-identical to
//     an offline replay of the same trace through the same registry — the
//     conformance suite pins this.
//   - Memory is bounded per session by the engine's batch/backpressure
//     machinery (bounded channels between decode and shards) and across
//     sessions by Config.MaxSessions: beyond the cap, accepted connections
//     wait before their stream is read, which stalls the client through
//     transport flow control instead of queueing unbounded input.
//   - Session lifecycle: open (accepted, handshaking) → streaming (events
//     flowing) → drained (end frame seen, pipeline closing) → reported
//     (report delivered) — or failed, from any state. Completed sessions
//     stay in the registry for the aggregate report.
//   - Shutdown stops accepting, then flushes: in-flight sessions are given
//     the context's grace period to drain and report; after that their
//     connections are force-closed, which surfaces to the session as a
//     truncated (failed) stream, never as a silently-dropped report.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// Config configures a Server.
type Config struct {
	// Tools builds the per-session tool registry. Every session gets fresh
	// instances (the engine calls each spec's Factory anew), so sessions
	// share no mutable analysis state. Required.
	Tools func() []trace.ToolSpec
	// Shards is the per-session engine worker count; <= 1 runs each session
	// on the inline sequential pipeline. Either way the session report is
	// byte-identical (engine determinism).
	Shards int
	// MaxSessions bounds concurrently-analysed sessions (default 64).
	// Further connections are accepted but wait their turn before any of
	// their stream is read.
	MaxSessions int
	// BatchSize and QueueDepth tune the per-session engine (see
	// engine.Options); zero values take the engine defaults.
	BatchSize  int
	QueueDepth int
}

// SessionState is a session's lifecycle position.
type SessionState uint8

// Session lifecycle states.
const (
	// StateOpen: connection accepted, handshake pending.
	StateOpen SessionState = iota
	// StateStreaming: events are being decoded into the pipeline.
	StateStreaming
	// StateDrained: end frame received; pipeline closing.
	StateDrained
	// StateReported: analysis complete, report produced and being (or
	// already) delivered to the client; terminal unless delivery fails,
	// which downgrades the session to failed.
	StateReported
	// StateFailed: handshake, stream, pipeline or write failure; terminal.
	StateFailed
)

func (s SessionState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateStreaming:
		return "streaming"
	case StateDrained:
		return "drained"
	case StateReported:
		return "reported"
	default:
		return "failed"
	}
}

// Session is one client stream's registry entry.
type Session struct {
	ID   uint64
	Name string

	mu     sync.Mutex
	state  SessionState
	events int64
	err    error
	col    *report.Collector // set in StateReported
	sums   map[string]trace.ToolSummary
}

// State returns the current lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Events returns the number of events the session's stream carried. It is
// set when the stream ends (drained or failed) and is 0 while the session is
// still streaming: the decode loop runs lock-free, so there is no cheap live
// counter to expose (see the ROADMAP's incremental-reporting item).
func (s *Session) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// Err returns the terminal failure of a failed session.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// setState advances the lifecycle under the session lock.
func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

func (s *Session) fail(err error) {
	s.mu.Lock()
	s.state = StateFailed
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Server is the multiplexed trace-ingest daemon.
type Server struct {
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[uint64]*Session
	order    []uint64 // session IDs in open order (deterministic aggregate)
	nextID   uint64
	conns    map[net.Conn]struct{}
	closed   bool

	sem chan struct{} // MaxSessions slots
	wg  sync.WaitGroup
}

// NewServer creates a server; call Serve with a listener to start it.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Tools == nil {
		return nil, errors.New("ingest: Config.Tools is required")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	return &Server{
		cfg:      cfg,
		sessions: make(map[uint64]*Session),
		conns:    make(map[net.Conn]struct{}),
		sem:      make(chan struct{}, cfg.MaxSessions),
	}, nil
}

// Serve accepts connections on ln until Shutdown (or a listener error) and
// blocks while doing so. Each connection is served on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// Shutdown stops accepting and flushes in-flight sessions: it waits for them
// to drain and report until ctx expires, then force-closes the remaining
// connections (their sessions fail with a truncated stream) and waits for
// the handlers to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// register creates a new session registry entry.
func (s *Server) register(name string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sess := &Session{ID: s.nextID, Name: name, state: StateOpen}
	s.sessions[sess.ID] = sess
	s.order = append(s.order, sess.ID)
	return sess
}

// serveConn runs one connection: a query exchange or a full session.
func (s *Server) serveConn(conn net.Conn) {
	fr := tracelog.NewFrameReader(conn)
	fw := tracelog.NewFrameWriter(conn)
	kind, meta, err := fr.Handshake()
	if err != nil {
		fw.Error(fmt.Sprintf("bad handshake: %v", err))
		return
	}
	if kind == tracelog.FrameQuery {
		s.serveQuery(fw, meta)
		return
	}

	// A session occupies an analysis slot for its whole pipeline lifetime;
	// waiting here (before any stream is read) is the cross-session
	// backpressure described in the package comment.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	sess := s.register(meta)
	sess.setState(StateStreaming)

	pipe, err := engine.NewPipeline(engine.Options{
		Tools:      s.cfg.Tools(),
		Shards:     s.cfg.Shards,
		BatchSize:  s.cfg.BatchSize,
		QueueDepth: s.cfg.QueueDepth,
	})
	if err != nil {
		sess.fail(err)
		fw.Error(fmt.Sprintf("pipeline: %v", err))
		return
	}

	events, err := pipe.ReplayLog(fr)
	sess.mu.Lock()
	sess.events = events
	sess.mu.Unlock()
	if err != nil {
		pipe.Close() // join workers; no report by the mid-stream contract
		sess.fail(err)
		fw.Error(fmt.Sprintf("stream: %v", err))
		return
	}

	sess.setState(StateDrained)
	col, cerr := pipe.Close()
	if cerr != nil {
		sess.fail(cerr)
		fw.Error(fmt.Sprintf("analysis: %v", cerr))
		return
	}
	// Mark reported before the response write: the moment the client has
	// its report in hand, a follow-up aggregate query must already account
	// for this session (write-then-mark would race that query). A failed
	// delivery downgrades the session to failed afterwards.
	sess.mu.Lock()
	sess.state = StateReported
	sess.col = col
	sess.sums = pipe.Summaries()
	sess.mu.Unlock()
	if err := fw.Report(col.Format()); err != nil {
		sess.fail(err)
		// Best effort: an oversized report is refused before any bytes hit
		// the wire, so the client can still be told why.
		fw.Error(fmt.Sprintf("report: %v", err))
	}
}

// serveQuery answers a query connection.
func (s *Server) serveQuery(fw *tracelog.FrameWriter, q string) {
	switch q {
	case "aggregate":
		if err := fw.Report(s.Aggregate().Format()); err != nil {
			// An oversized aggregate is refused before any bytes hit the
			// wire, so the client can still be told why.
			fw.Error(fmt.Sprintf("aggregate: %v", err))
		}
	default:
		fw.Error(fmt.Sprintf("unknown query %q (known: aggregate)", q))
	}
}

// Sessions returns the registry entries in open order.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Aggregate is the cross-session rollup: lifecycle counts, total analysed
// events, per-tool warning-site counts, summed tool summaries, and the
// merged deduplicated report of every reported session.
type Aggregate struct {
	Sessions int // all registered sessions
	Reported int
	Failed   int
	Active   int // open/streaming/drained
	Events   int64
	// ByTool counts distinct warning sites per tool across the merged
	// report.
	ByTool map[string]int
	// Summaries sums the per-tool counter rollups of every reported
	// session (trace.Summarizer tools, e.g. memcheck's errors and leaks).
	Summaries map[string]trace.ToolSummary
	// Merged is the deduplicated cross-session report (report.Merge):
	// identical sites from different sessions fold with summed counts.
	Merged *report.Collector
}

// Aggregate computes the cross-session rollup at this instant. Sessions
// still in flight contribute their lifecycle state only — their event
// counts and warnings arrive when the stream ends (see Session.Events).
func (s *Server) Aggregate() *Aggregate {
	agg := &Aggregate{
		ByTool:    make(map[string]int),
		Summaries: make(map[string]trace.ToolSummary),
	}
	var cols []*report.Collector
	for _, sess := range s.Sessions() {
		sess.mu.Lock()
		agg.Sessions++
		agg.Events += sess.events
		switch sess.state {
		case StateReported:
			agg.Reported++
			cols = append(cols, sess.col)
			for name, sum := range sess.sums {
				t := agg.Summaries[name]
				if t == nil {
					t = make(trace.ToolSummary)
					agg.Summaries[name] = t
				}
				t.Merge(sum)
			}
		case StateFailed:
			agg.Failed++
		default:
			agg.Active++
		}
		sess.mu.Unlock()
	}
	agg.Merged = report.Merge(nil, nil, cols...)
	for tool, n := range agg.Merged.LocationsByTool() {
		agg.ByTool[tool] = n
	}
	return agg
}

// Format renders the aggregate in the report idiom: a header block with the
// session and per-tool counts, then the merged warnings.
func (a *Aggregate) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== ingest aggregate: %d session(s) — %d reported, %d failed, %d active; %d event(s)\n",
		a.Sessions, a.Reported, a.Failed, a.Active, a.Events)
	tools := make([]string, 0, len(a.ByTool))
	for tool := range a.ByTool {
		tools = append(tools, tool)
	}
	sort.Strings(tools)
	if len(tools) > 0 {
		b.WriteString("== tool locations:")
		for _, tool := range tools {
			fmt.Fprintf(&b, " %s=%d", tool, a.ByTool[tool])
		}
		b.WriteByte('\n')
	}
	sums := make([]string, 0, len(a.Summaries))
	for name := range a.Summaries {
		sums = append(sums, name)
	}
	sort.Strings(sums)
	for _, name := range sums {
		counts := a.Summaries[name]
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "== %s summary:", name)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, counts[k])
		}
		b.WriteByte('\n')
	}
	b.WriteString(a.Merged.Format())
	return b.String()
}

// Listen opens a listener from a "network:address" spec: "tcp:127.0.0.1:0"
// or "unix:/path/to.sock".
func Listen(spec string) (net.Listener, error) {
	network, addr, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	return net.Listen(network, addr)
}

// DialSpec connects to a "network:address" spec (see Listen).
func DialSpec(spec string) (net.Conn, error) {
	network, addr, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	return net.Dial(network, addr)
}

func splitSpec(spec string) (network, addr string, err error) {
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || addr == "" {
		return "", "", fmt.Errorf("ingest: bad address %q, want network:address (e.g. tcp:127.0.0.1:7433 or unix:/tmp/traced.sock)", spec)
	}
	switch network {
	case "tcp", "tcp4", "tcp6", "unix":
		return network, addr, nil
	default:
		return "", "", fmt.Errorf("ingest: unsupported network %q", network)
	}
}
