package ingest

import (
	"fmt"
	"strings"
	"testing"
)

// TestSnapshotRetentionCap pins the per-session snapshot bound: a
// never-ending stream snapshotting forever keeps only the newest
// maxSessionSnapshots entries, numbering in FormatSnapshots stays global,
// and the live event count tracks the latest snapshot.
func TestSnapshotRetentionCap(t *testing.T) {
	sess := &Session{ID: 1, Name: "long"}
	const total = maxSessionSnapshots + 37
	for i := 1; i <= total; i++ {
		sess.addSnapshot(Snapshot{
			Events:   int64(i * 10),
			Report:   fmt.Sprintf("report %d", i),
			Manifest: fmt.Sprintf("seq=%d tool=t kind=Race stack=1 count=1\n", i),
		})
	}
	snaps := sess.Snapshots()
	if len(snaps) != maxSessionSnapshots {
		t.Fatalf("retained %d snapshots, want %d", len(snaps), maxSessionSnapshots)
	}
	if snaps[len(snaps)-1].Events != total*10 {
		t.Errorf("newest snapshot events = %d, want %d", snaps[len(snaps)-1].Events, total*10)
	}
	if snaps[0].Events != int64(total-maxSessionSnapshots+1)*10 {
		t.Errorf("oldest retained snapshot events = %d", snaps[0].Events)
	}
	if sess.Events() != total*10 {
		t.Errorf("live events = %d, want %d", sess.Events(), total*10)
	}
	text := sess.FormatSnapshots()
	if !strings.Contains(text, fmt.Sprintf("%d snapshot(s) (%d older discarded)", maxSessionSnapshots, total-maxSessionSnapshots)) {
		t.Errorf("header does not account for discards:\n%s", strings.SplitN(text, "\n", 2)[0])
	}
	if !strings.Contains(text, fmt.Sprintf("== snapshot %d: events=%d\n", total, total*10)) {
		t.Error("global snapshot numbering lost after discards")
	}
}

// TestFoldableRequiresDone pins the retire/delivery race fix: a session
// marked reported whose handler has not yet finished delivering (it can
// still downgrade to failed) must not be foldable.
func TestFoldableRequiresDone(t *testing.T) {
	sess := &Session{ID: 2, Name: "in-delivery", state: StateReported}
	if sess.foldable() {
		t.Error("reported-but-undelivered session is foldable")
	}
	sess.fail(fmt.Errorf("client went away mid-report"))
	sess.markDone()
	if !sess.foldable() {
		t.Error("failed+done session not foldable")
	}
	if sess.State() != StateFailed {
		t.Errorf("state = %v, want failed", sess.State())
	}

	streaming := &Session{ID: 3, Name: "live", state: StateStreaming}
	streaming.markDone() // done alone is not enough either
	if streaming.foldable() {
		t.Error("non-terminal session is foldable")
	}
}
