package ingest

// The router tier: a front process that accepts ordinary client sessions and
// shards them across N backend analyzer processes (Server instances running
// with Config.BackendMode), turning the single-process daemon into the
// paper's fleet shape — one crash no longer loses every live session, and
// analysis throughput scales with backend count.
//
// The router never analyses anything itself. Per session it picks a backend
// by rendezvous hashing over the live backend set (deterministic for a given
// session name and backend set, and a backend's death only moves that
// backend's sessions), opens the forwarded stream with an assign frame, and
// pumps every client frame to the backend verbatim (tracelog.CopyFrame, one
// flush per frame so the client's pacing — and the backend's backpressure —
// survive the hop). The backend answers with a structured BackendResult: the
// rendered report the router relays to the client unchanged, plus the
// portable collector and summaries the router folds progressively into the
// fleet aggregate. Because Merge is commutative and associative over the
// content-derived SiteKeys (report/merge.go), the fold is byte-identical
// regardless of which backend analysed which session or in what order they
// finished — the property the cross-process conformance test pins.
//
// Failure honesty: a backend that cannot be dialed or written to is marked
// dead permanently — its in-flight sessions are the only ones lost (counted
// as such, never silently), and future sessions re-shard across the
// survivors. A backend's *refusal* (admission busy, analysis error) is an
// answer, not a death: the typed error is relayed to the client and the
// backend stays in rotation.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Backends lists the backend analyzer specs ("network:address", see
	// Listen) the router shards sessions across. Required, fixed for the
	// router's lifetime; a backend that fails is marked dead and its spec is
	// never retried.
	Backends []string
	// IdleTimeout > 0 fails a forwarded session whose client delivers no
	// bytes for the duration (rolling, like the Server's).
	IdleTimeout time.Duration
	// RetainResults bounds the recent per-session outcome records the
	// "sessions" query renders (default 256; the fleet tally is unaffected).
	RetainResults int
	// Metrics, when non-nil, receives the router_* series and enables the
	// "stats" query.
	Metrics *obs.Registry
}

// Router is the session-sharding front tier.
type Router struct {
	cfg RouterConfig
	met *routerMetrics

	draining atomic.Bool

	backends []*routerBackend

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	shutdown chan struct{}
	wg       sync.WaitGroup
	nextID   uint64
	recs     []routedRecord // recent session outcomes, oldest first
	tally    fleetTally
}

// routerBackend is one backend's live accounting.
type routerBackend struct {
	spec     string
	dead     atomic.Bool
	lastErr  atomic.Pointer[error] // the failure that killed it
	assigned atomic.Int64          // sessions ever routed here
	inflight atomic.Int64
	reported atomic.Int64
	lost     atomic.Int64 // sessions this backend's death failed
}

// routedRecord is one finished (or in-flight) session's outcome line.
type routedRecord struct {
	id      uint64
	name    string
	backend string
	outcome string // reported, failed, lost, rejected
	events  int64
	opened  time.Time
}

// fleetTally is the router's running cross-backend rollup, folded
// progressively as sessions complete. Guarded by Router.mu; the collector is
// replaced, never mutated, so a concurrent FleetAggregate stays sound.
type fleetTally struct {
	sessions   int // every routed session
	reported   int
	failed     int // client-side stream failures and backend refusals
	lost       int // failed because their backend died
	rejected   int // refused busy by backend admission
	active     int
	events     int64
	sampledOut int64
	degraded   int
	col        *report.Collector
	sums       map[string]trace.ToolSummary
}

// routerMetrics is the router's self-observability surface.
type routerMetrics struct {
	sessionsRouted  *obs.Counter
	sessionsLost    *obs.Counter
	backendsAlive   *obs.Gauge
	backendDeaths   *obs.Counter
	framesForwarded *obs.Counter
	bytesForwarded  *obs.Counter
}

func newRouterMetrics(reg *obs.Registry, backends int) *routerMetrics {
	if reg == nil {
		return nil
	}
	m := &routerMetrics{
		sessionsRouted:  reg.Counter("router_sessions_routed_total", "Client sessions accepted and routed to a backend."),
		sessionsLost:    reg.Counter("router_sessions_lost_total", "Sessions failed because their backend died mid-session."),
		backendsAlive:   reg.Gauge("router_backends_alive", "Backend analyzers currently in rotation."),
		backendDeaths:   reg.Counter("router_backend_deaths_total", "Backends marked dead after a dial or transport failure."),
		framesForwarded: reg.Counter("router_frames_forwarded_total", "Client frames pumped to backends verbatim."),
		bytesForwarded:  reg.Counter("router_frame_bytes_forwarded_total", "Client frame payload bytes pumped to backends."),
	}
	m.backendsAlive.Set(int64(backends))
	return m
}

// NewRouter creates a router over the given backend set.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("ingest: RouterConfig.Backends is required")
	}
	if cfg.RetainResults <= 0 {
		cfg.RetainResults = 256
	}
	r := &Router{
		cfg:      cfg,
		met:      newRouterMetrics(cfg.Metrics, len(cfg.Backends)),
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
	for _, spec := range cfg.Backends {
		if _, _, err := splitSpec(spec); err != nil {
			return nil, err
		}
		r.backends = append(r.backends, &routerBackend{spec: spec})
	}
	return r, nil
}

// Draining reports whether Shutdown has begun.
func (r *Router) Draining() bool { return r.draining.Load() }

// Serve accepts connections on ln until Shutdown (or a listener error) and
// blocks while doing so.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		ln.Close()
		return nil
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
				conn.Close()
			}()
			r.serveConn(conn)
		}()
	}
}

// Shutdown stops accepting and waits for in-flight forwarded sessions to
// finish until ctx expires, then force-closes the remaining connections
// (their sessions fail on both sides as truncated streams).
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.shutdown)
	}
	ln := r.ln
	r.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		r.mu.Lock()
		for conn := range r.conns {
			conn.Close()
		}
		r.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// serveConn runs one client connection: a query exchange or a forwarded
// session.
func (r *Router) serveConn(conn net.Conn) {
	var rd io.Reader = conn
	if r.cfg.IdleTimeout > 0 {
		rd = idleReader{conn: conn, timeout: r.cfg.IdleTimeout}
	}
	fr := tracelog.NewFrameReader(rd)
	fw := tracelog.NewFrameWriter(conn)
	kind, meta, err := fr.Handshake()
	if err != nil {
		fw.Error(fmt.Sprintf("bad handshake: %v", err))
		return
	}
	switch kind {
	case tracelog.FrameQuery:
		r.serveQuery(fw, meta)
	case tracelog.FrameHello:
		r.routeSession(fw, fr, meta)
	default:
		fw.Error(fmt.Sprintf("%s: a router accepts hello sessions and queries", kind))
	}
}

// pick chooses the backend for a session name by rendezvous hashing over the
// live set: every (name, backend) pair scores independently, the highest live
// score wins. A given name maps to the same backend for as long as that
// backend lives, and a death re-shards only the dead backend's names — the
// survivors' assignments are untouched. nil when no backend is left.
func (r *Router) pick(name string) *routerBackend {
	var best *routerBackend
	var bestScore uint64
	for _, b := range r.backends {
		if b.dead.Load() {
			continue
		}
		h := fnv.New64a()
		io.WriteString(h, name)
		h.Write([]byte{0})
		io.WriteString(h, b.spec)
		score := h.Sum64()
		if best == nil || score > bestScore || (score == bestScore && b.spec < best.spec) {
			best, bestScore = b, score
		}
	}
	return best
}

// markDead retires a backend permanently after a dial or transport failure.
func (r *Router) markDead(b *routerBackend, err error) {
	if b.dead.CompareAndSwap(false, true) {
		b.lastErr.Store(&err)
		if r.met != nil {
			r.met.backendsAlive.Add(-1)
			r.met.backendDeaths.Inc()
		}
	}
}

// alive counts backends still in rotation.
func (r *Router) alive() int {
	n := 0
	for _, b := range r.backends {
		if !b.dead.Load() {
			n++
		}
	}
	return n
}

// routeSession forwards one client session to its backend and relays the
// outcome: the backend's rendered report, its typed refusal, or the router's
// own loss report when the backend dies underneath the session.
func (r *Router) routeSession(fw *tracelog.FrameWriter, fr *tracelog.FrameReader, name string) {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.tally.sessions++
	r.tally.active++
	r.mu.Unlock()
	if r.met != nil {
		r.met.sessionsRouted.Inc()
		fr.SetObserver(func(_ tracelog.FrameKind, payloadBytes int) {
			r.met.framesForwarded.Inc()
			r.met.bytesForwarded.Add(int64(payloadBytes))
		})
	}

	// Pick-and-dial loop: a backend that cannot even be dialed is dead, and
	// the session re-shards immediately — only sessions already streaming to
	// a backend are lost with it.
	var b *routerBackend
	var bc net.Conn
	for {
		if b = r.pick(name); b == nil {
			r.finish(id, name, "", "failed", 0)
			fw.Error("router: no live backend analyzers")
			return
		}
		c, err := DialSpec(b.spec)
		if err != nil {
			r.markDead(b, err)
			continue
		}
		bc = c
		break
	}
	defer bc.Close()
	b.assigned.Add(1)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	bw := tracelog.NewFrameWriter(bc)
	brd := tracelog.NewFrameReader(bc)
	if err := bw.Assign(name); err != nil {
		r.loseSession(fw, b, id, name, err)
		return
	}

	// The pump: every client frame to the backend verbatim, flushed per frame
	// so the client's pacing and the backend's backpressure both survive the
	// hop. The frame layer bounds every length claim before any copying.
	for {
		kind, err := tracelog.CopyFrame(bw, fr)
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			if fr.Err() != nil {
				// The inbound client stream broke (truncation, idle timeout,
				// a malformed frame): the session fails exactly as it would
				// at a plain server, and closing the backend conn surfaces
				// the same truncation there. The backend is not at fault.
				r.finish(id, name, b.spec, "failed", 0)
				fw.Error(fmt.Sprintf("stream: %v", err))
				return
			}
			// The outbound write failed. Either the backend died, or it
			// refused the session and closed its side after answering —
			// a buffered response frame tells the two apart.
			r.settleEarlyClose(fw, bc, brd, b, id, name, err)
			return
		}
		if kind == tracelog.FrameEnd {
			break
		}
	}

	payload, err := brd.BackendResponse()
	if err != nil {
		if errors.Is(err, tracelog.ErrRemote) {
			// The backend answered with a refusal (admission busy) or its own
			// session failure — an answer, not a death.
			r.relayRefusal(fw, id, name, b.spec, err)
			return
		}
		r.loseSession(fw, b, id, name, err)
		return
	}
	res, err := decodeBackendResult(payload)
	if err != nil {
		r.finish(id, name, b.spec, "failed", 0)
		fw.Error(fmt.Sprintf("router: bad backend result: %v", err))
		return
	}
	r.fold(b, id, name, res)
	fw.Report(res.Report)
}

// settleEarlyClose disambiguates a mid-pump write failure: a backend that
// refused the session sends its error frame before closing its side (the
// admission reject path answers first, then drains), so a readable response
// frame means refusal; anything else means the backend died.
func (r *Router) settleEarlyClose(fw *tracelog.FrameWriter, bc net.Conn, brd *tracelog.FrameReader, b *routerBackend, id uint64, name string, werr error) {
	bc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := brd.BackendResponse(); err != nil && errors.Is(err, tracelog.ErrRemote) {
		r.relayRefusal(fw, id, name, b.spec, err)
		return
	}
	r.loseSession(fw, b, id, name, werr)
}

// relayRefusal forwards a backend's typed refusal to the client in the exact
// error-frame convention the backend used, so busy semantics (the retry-after
// hint, the ErrBusy identity) survive the relay.
func (r *Router) relayRefusal(fw *tracelog.FrameWriter, id uint64, name, spec string, err error) {
	var be *tracelog.BusyError
	if errors.As(err, &be) {
		r.finish(id, name, spec, "rejected", 0)
		fw.Error(tracelog.BusyMessage(be.Reason, be.RetryAfter))
		return
	}
	r.finish(id, name, spec, "failed", 0)
	fw.Error(strings.TrimPrefix(err.Error(), "tracelog: remote error: "))
}

// loseSession accounts one session failed by its backend's death and marks
// the backend dead; future sessions re-shard across the survivors.
func (r *Router) loseSession(fw *tracelog.FrameWriter, b *routerBackend, id uint64, name string, err error) {
	r.markDead(b, err)
	b.lost.Add(1)
	if r.met != nil {
		r.met.sessionsLost.Inc()
	}
	r.finish(id, name, b.spec, "lost", 0)
	fw.Error(fmt.Sprintf("router: backend %s lost mid-session: %v", b.spec, err))
}

// finish records one session's terminal outcome in the tally and the bounded
// recent-record list.
func (r *Router) finish(id uint64, name, spec, outcome string, events int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tally.active--
	switch outcome {
	case "reported":
		r.tally.reported++
	case "lost":
		r.tally.lost++
	case "rejected":
		r.tally.rejected++
	default:
		r.tally.failed++
	}
	r.recs = append(r.recs, routedRecord{
		id: id, name: name, backend: spec, outcome: outcome,
		events: events, opened: time.Now(),
	})
	if len(r.recs) > r.cfg.RetainResults {
		r.recs = append(r.recs[:0], r.recs[len(r.recs)-r.cfg.RetainResults:]...)
	}
}

// fold merges one backend result into the fleet tally. Merge over the
// content-derived SiteKeys is commutative and associative, so the progressive
// fold — sessions completing on different backends in arbitrary order — is
// byte-identical to a one-shot merge, and to the same sessions analysed by a
// single-process server.
func (r *Router) fold(b *routerBackend, id uint64, name string, res *BackendResult) {
	b.reported.Add(1)
	r.mu.Lock()
	t := &r.tally
	t.events += res.Events
	t.sampledOut += res.SampledOut
	if res.SampledOut > 0 || len(res.Shed) > 0 {
		t.degraded++
	}
	t.col = report.Merge(nil, nil, t.col, res.Col)
	for sumName, sum := range res.Sums {
		if t.sums == nil {
			t.sums = make(map[string]trace.ToolSummary)
		}
		dst := t.sums[sumName]
		if dst == nil {
			dst = make(trace.ToolSummary)
			t.sums[sumName] = dst
		}
		dst.Merge(sum)
	}
	r.mu.Unlock()
	r.finish(id, name, b.spec, "reported", res.Events)
}

// BackendStatus is one backend's line in the fleet aggregate.
type BackendStatus struct {
	Spec     string
	Dead     bool
	LastErr  error // the failure that killed it; nil while alive
	Assigned int64
	Inflight int64
	Reported int64
	Lost     int64
}

// FleetAggregate is the router's cross-backend rollup: session accounting
// (losses disclosed, never folded into plain failures), the merged
// deduplicated report over every backend's results, and per-backend status.
type FleetAggregate struct {
	Sessions   int
	Reported   int
	Failed     int
	Lost       int // sessions failed because their backend died
	Rejected   int // sessions refused busy by backend admission
	Active     int
	Events     int64
	SampledOut int64
	Degraded   int
	ByTool     map[string]int
	Summaries  map[string]trace.ToolSummary
	Merged     *report.Collector
	Backends   []BackendStatus
}

// FleetAggregate computes the rollup at this instant.
func (r *Router) FleetAggregate() *FleetAggregate {
	agg := &FleetAggregate{
		ByTool:    make(map[string]int),
		Summaries: make(map[string]trace.ToolSummary),
	}
	r.mu.Lock()
	t := &r.tally
	agg.Sessions = t.sessions
	agg.Reported = t.reported
	agg.Failed = t.failed
	agg.Lost = t.lost
	agg.Rejected = t.rejected
	agg.Active = t.active
	agg.Events = t.events
	agg.SampledOut = t.sampledOut
	agg.Degraded = t.degraded
	col := t.col
	for name, sum := range t.sums {
		dst := make(trace.ToolSummary)
		dst.Merge(sum)
		agg.Summaries[name] = dst
	}
	r.mu.Unlock()
	agg.Merged = report.Merge(nil, nil, col)
	for tool, n := range agg.Merged.LocationsByTool() {
		agg.ByTool[tool] = n
	}
	for _, b := range r.backends {
		st := BackendStatus{
			Spec: b.spec, Dead: b.dead.Load(),
			Assigned: b.assigned.Load(), Inflight: b.inflight.Load(),
			Reported: b.reported.Load(), Lost: b.lost.Load(),
		}
		if p := b.lastErr.Load(); p != nil {
			st.LastErr = *p
		}
		agg.Backends = append(agg.Backends, st)
	}
	return agg
}

// Format renders the fleet aggregate in the report idiom. The header keeps
// the single-process aggregate's "N reported" token so existing accounting
// parsers work unchanged, and losses get their own disclosure line.
func (a *FleetAggregate) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet aggregate: %d session(s) — %d reported, %d failed, %d active; %d event(s)\n",
		a.Sessions, a.Reported, a.Failed+a.Lost, a.Active, a.Events)
	if a.Lost > 0 {
		fmt.Fprintf(&b, "== lost: %d session(s) failed with their backend\n", a.Lost)
	}
	if a.Rejected > 0 {
		fmt.Fprintf(&b, "== rejected: %d session(s) refused busy by backend admission\n", a.Rejected)
	}
	if a.Degraded > 0 {
		fmt.Fprintf(&b, "== degraded: %d session(s) analysed under overload — %d event(s) sampled out\n",
			a.Degraded, a.SampledOut)
	}
	for _, st := range a.Backends {
		state := "alive"
		if st.Dead {
			state = "dead"
		}
		fmt.Fprintf(&b, "== backend %s: state=%s assigned=%d inflight=%d reported=%d lost=%d",
			st.Spec, state, st.Assigned, st.Inflight, st.Reported, st.Lost)
		if st.LastErr != nil {
			fmt.Fprintf(&b, " err=%v", st.LastErr)
		}
		b.WriteByte('\n')
	}
	tools := make([]string, 0, len(a.ByTool))
	for tool := range a.ByTool {
		tools = append(tools, tool)
	}
	sort.Strings(tools)
	if len(tools) > 0 {
		b.WriteString("== tool locations:")
		for _, tool := range tools {
			fmt.Fprintf(&b, " %s=%d", tool, a.ByTool[tool])
		}
		b.WriteByte('\n')
	}
	sums := make([]string, 0, len(a.Summaries))
	for name := range a.Summaries {
		sums = append(sums, name)
	}
	sort.Strings(sums)
	for _, name := range sums {
		counts := a.Summaries[name]
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "== %s summary:", name)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, counts[k])
		}
		b.WriteByte('\n')
	}
	b.WriteString(a.Merged.Format())
	return b.String()
}

// serveQuery answers a router query connection. Per-session state (snapshots,
// individual reports) lives on the backends, so the router serves the fleet
// views and points session queries at the tier that has them.
func (r *Router) serveQuery(fw *tracelog.FrameWriter, q string) {
	reply := func(what, text string) {
		if err := fw.Report(text); err != nil {
			fw.Error(fmt.Sprintf("%s: %v", what, err))
		}
	}
	switch {
	case q == "aggregate":
		reply("aggregate", r.FleetAggregate().Format())
	case q == "backends":
		reply("backends", r.formatBackends())
	case q == "sessions":
		reply("sessions", r.formatSessions())
	case q == "stats":
		if r.cfg.Metrics == nil {
			fw.Error("stats: no metrics registry attached (RouterConfig.Metrics)")
			return
		}
		reply("stats", r.cfg.Metrics.Snapshot())
	case strings.HasPrefix(q, "session "), strings.HasPrefix(q, "snapshots "):
		fw.Error(fmt.Sprintf("%q: per-session state lives on the backend analyzers; query them directly", q))
	default:
		fw.Error(fmt.Sprintf("unknown query %q (known: aggregate, backends, sessions, stats)", q))
	}
}

// formatSessions renders the bounded recent-outcome listing.
func (r *Router) formatSessions() string {
	r.mu.Lock()
	recs := append([]routedRecord(nil), r.recs...)
	active, total := r.tally.active, r.tally.sessions
	r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "== routed sessions: %d total, %d active, last %d outcome(s)\n", total, active, len(recs))
	for _, rec := range recs {
		fmt.Fprintf(&b, "id=%d name=%s backend=%s outcome=%s events=%d\n",
			rec.id, rec.name, rec.backend, rec.outcome, rec.events)
	}
	return b.String()
}

// formatBackends renders per-backend status, probing each live backend for
// its census over a short-deadline backend-stats exchange.
func (r *Router) formatBackends() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== backends: %d configured, %d alive\n", len(r.backends), r.alive())
	for _, bk := range r.backends {
		if bk.dead.Load() {
			errText := ""
			if p := bk.lastErr.Load(); p != nil {
				errText = fmt.Sprintf(" err=%v", *p)
			}
			fmt.Fprintf(&b, "backend %s: dead assigned=%d reported=%d lost=%d%s\n",
				bk.spec, bk.assigned.Load(), bk.reported.Load(), bk.lost.Load(), errText)
			continue
		}
		census, err := probeBackend(bk.spec)
		if err != nil {
			// A failed probe is reported, not acted on: the probe is a read,
			// and only the session path decides life and death.
			fmt.Fprintf(&b, "backend %s: alive assigned=%d inflight=%d reported=%d (census probe failed: %v)\n",
				bk.spec, bk.assigned.Load(), bk.inflight.Load(), bk.reported.Load(), err)
			continue
		}
		fmt.Fprintf(&b, "backend %s: alive assigned=%d inflight=%d reported=%d census: %d session(s), %d reported, %d failed, %d active, %d folded, %d event(s)\n",
			bk.spec, bk.assigned.Load(), bk.inflight.Load(), bk.reported.Load(),
			census.Sessions, census.Reported, census.Failed, census.Active, census.Folded, census.Events)
	}
	return b.String()
}

// probeBackend runs one backend-stats exchange with a short deadline.
func probeBackend(spec string) (*BackendCensus, error) {
	conn, err := DialSpec(spec)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	bw := tracelog.NewFrameWriter(conn)
	if err := bw.BackendStats(nil); err != nil {
		return nil, err
	}
	payload, err := tracelog.NewFrameReader(conn).BackendStatsResponse()
	if err != nil {
		return nil, err
	}
	return decodeBackendCensus(payload)
}
