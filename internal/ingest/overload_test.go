package ingest_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/tracelog"
)

// stallHolder handshakes a raw session connection and then goes silent, so
// it occupies one MaxSessions slot indefinitely (until the test closes it or
// the server shuts down). It returns once the server has registered the
// session — i.e. once the slot is definitely held.
func stallHolder(t *testing.T, srv *ingest.Server, addr, name string) net.Conn {
	t.Helper()
	conn, err := ingest.DialSpec(addr)
	if err != nil {
		t.Fatal(err)
	}
	fw := tracelog.NewFrameWriter(conn)
	if err := fw.Hello(name); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.SessionByName(name) == nil {
		if time.Now().After(deadline) {
			t.Fatal("stalled holder session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return conn
}

// TestSlotWaitBounded is the regression test for the MaxSessions stall: with
// AdmitTimeout set, a connection that cannot get an analysis slot is answered
// with a typed busy error (carrying a retry-after hint) within the bound,
// instead of parking on the semaphore until the holder goes away.
func TestSlotWaitBounded(t *testing.T) {
	srv, addr := startServer(t, ingest.Config{
		MaxSessions:  1,
		AdmitTimeout: 100 * time.Millisecond,
	})
	holder := stallHolder(t, srv, addr, "holder")
	defer holder.Close()

	log := recordScenario(t, 1, true)
	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.StreamTrace("late", log, 0)
	waited := time.Since(start)
	if !errors.Is(err, tracelog.ErrBusy) {
		t.Fatalf("slot-starved session error = %v, want ErrBusy", err)
	}
	if !errors.Is(err, tracelog.ErrRemote) {
		t.Error("busy rejection does not match ErrRemote (older callers must keep working)")
	}
	if d, ok := tracelog.RetryAfterHint(err); !ok || d <= 0 {
		t.Errorf("busy rejection carries no retry-after hint (got %v, ok=%v): %v", d, ok, err)
	}
	// Generous bound: the point is "within the admission deadline", not
	// "parked until the holder leaves" (which here would be forever).
	if waited > 10*time.Second {
		t.Errorf("busy answer took %v, want roughly the 100ms admission bound", waited)
	}
}

// TestShutdownReleasesSlotWaiter pins the other half of the stall bugfix: a
// connection parked waiting for a slot with no deadline configured (the
// legacy delay-not-drop mode) must be unparked by Shutdown instead of
// outliving the server on the semaphore — the seed hung here forever.
func TestShutdownReleasesSlotWaiter(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := ingest.NewServer(ingest.Config{
		Tools:       scenario.AllTools,
		MaxSessions: 1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := "tcp:" + ln.Addr().String()

	holder := stallHolder(t, srv, addr, "holder")
	defer holder.Close()

	// The waiter handshakes and parks on the full semaphore (AdmitTimeout
	// and IdleTimeout are both zero: unbounded wait, minus shutdown).
	waiter, err := ingest.DialSpec(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	wfw := tracelog.NewFrameWriter(waiter)
	if err := wfw.Hello("waiter"); err != nil {
		t.Fatal(err)
	}
	if err := wfw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Series()["ingest_slot_waiters"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked on the slot semaphore")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Shutdown must return: the grace expires on the stalled holder, and the
	// parked waiter is unparked through the rejection path rather than
	// keeping the handler (and so Shutdown's wait) alive forever.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(ctx) }()
	select {
	case err := <-shutdownErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("Shutdown = %v, want deadline exceeded (stalled holder forced)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on a parked slot waiter")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := reg.Series()[`ingest_admission_rejected_total{reason="shutdown"}`]; got != 1 {
		t.Errorf("shutdown rejections = %d, want 1", got)
	}
}

// TestAdmissionRateRejects pins the token-bucket gate: past the burst, a
// session is refused immediately with a typed busy error whose retry hint is
// sized to the bucket's refill, and the refusal is observable.
func TestAdmissionRateRejects(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startServer(t, ingest.Config{
		AdmitRate:  0.001, // refill far slower than the test
		AdmitBurst: 1,
		Metrics:    reg,
	})
	log := recordScenario(t, 1, true)

	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTrace("first", log, 0); err != nil {
		t.Fatalf("first session (within burst): %v", err)
	}
	c.Close()

	c2, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.StreamTrace("second", log, 0)
	if !errors.Is(err, tracelog.ErrBusy) {
		t.Fatalf("over-rate session error = %v, want ErrBusy", err)
	}
	if d, ok := tracelog.RetryAfterHint(err); !ok || d <= 0 {
		t.Errorf("rate rejection carries no retry-after hint: %v", err)
	}
	if got := reg.Series()[`ingest_admission_rejected_total{reason="rate"}`]; got != 1 {
		t.Errorf("rate rejections = %d, want 1", got)
	}
}

// TestOverloadFlood is the overload conformance run: 64 sessions flood a
// 4-slot server with bounded admission, adaptive sampling and the
// degradation ladder on. Every session either completes or is rejected with
// a typed busy error; for every completed session the shed accounting is
// exact (events analysed + sampled out = events the stream carried), a
// degraded report says so up front, and an undegraded report is still
// byte-identical to the offline replay. CI runs this under -race.
func TestOverloadFlood(t *testing.T) {
	log := recordScenario(t, 2, true)
	want := offlineReport(t, log)
	total, err := scenario.CountEvents(log)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	// The rate gate's burst (12) exceeds the slots (4), so some sessions are
	// admitted with waiters parked — full pressure, degraded analysis —
	// while the burst is far below the flood (64), so most sessions are
	// rejected busy regardless of how fast slots turn over. Either fate is
	// valid for any individual session — the assertions below hold for every
	// split.
	srv, addr := startServer(t, ingest.Config{
		MaxSessions:       4,
		AdmitTimeout:      10 * time.Millisecond,
		AdmitRate:         1,
		AdmitBurst:        12,
		AdaptiveSampling:  true,
		DegradationLadder: true,
		Metrics:           reg,
	})

	const n = 64
	reports := make([]string, n)
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			c, err := ingest.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			reports[i], errs[i] = c.StreamTrace(fmt.Sprintf("flood-%d", i), log, 4<<10)
			durs[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()

	completed, rejected := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, tracelog.ErrBusy):
			rejected++
			if d, ok := tracelog.RetryAfterHint(err); !ok || d <= 0 {
				t.Errorf("session %d: busy rejection without retry-after hint: %v", i, err)
			}
			if durs[i] > 30*time.Second {
				t.Errorf("session %d: busy answer took %v — the admission wait was not bounded", i, durs[i])
			}
		default:
			t.Errorf("session %d: unexpected error under flood: %v", i, err)
		}
	}
	if completed+rejected != n {
		t.Fatalf("completed %d + rejected %d != %d sessions", completed, rejected, n)
	}
	if completed < 1 {
		t.Fatal("no session completed under flood")
	}
	if rejected < 1 {
		t.Fatal("no session rejected under flood (64 arrivals vs an admission burst of 12)")
	}
	t.Logf("flood: %d completed, %d rejected busy", completed, rejected)

	sessByName := make(map[string]*ingest.Session)
	for _, sess := range srv.Sessions() {
		sessByName[sess.Name] = sess
	}
	var sampledSum int64
	degraded := 0
	for i := range errs {
		if errs[i] != nil {
			continue
		}
		sess := sessByName[fmt.Sprintf("flood-%d", i)]
		if sess == nil {
			t.Fatalf("completed session flood-%d missing from the registry", i)
		}
		waitSession(t, sess)
		if got := sess.Events() + sess.SampledOut(); got != total {
			t.Errorf("flood-%d: analysed %d + sampled-out %d = %d, want the stream's %d — shed accounting must be exact",
				i, sess.Events(), sess.SampledOut(), got, total)
		}
		sampledSum += sess.SampledOut()
		if sess.Degraded() {
			degraded++
			if !strings.HasPrefix(reports[i], "== degraded:") {
				t.Errorf("flood-%d: degraded session's report lacks the degraded header:\n%s",
					i, strings.SplitN(reports[i], "\n", 2)[0])
			}
		} else if reports[i] != want {
			t.Errorf("flood-%d: undegraded report differs from the offline replay", i)
		}
	}

	agg := srv.Aggregate()
	if agg.Reported != completed {
		t.Errorf("aggregate reported = %d, want %d (rejected sessions never register)", agg.Reported, completed)
	}
	if agg.SampledOut != sampledSum {
		t.Errorf("aggregate sampled-out = %d, want the per-session sum %d", agg.SampledOut, sampledSum)
	}
	if agg.Degraded != degraded {
		t.Errorf("aggregate degraded = %d, want %d", agg.Degraded, degraded)
	}
	if degraded > 0 && !strings.Contains(agg.Format(), "== degraded:") {
		t.Error("aggregate with degraded sessions does not disclose them")
	}
	series := reg.Series()
	gotRejects := series[`ingest_admission_rejected_total{reason="rate"}`] +
		series[`ingest_admission_rejected_total{reason="slots"}`]
	if gotRejects != int64(rejected) {
		t.Errorf("admission rejections metric = %d, want %d", gotRejects, rejected)
	}
	if got := series["ingest_sampled_events_total"]; got != sampledSum {
		t.Errorf("sampled events metric = %d, want %d", got, sampledSum)
	}
}

// TestOverloadFeaturesZeroPressureIdentity pins the hard invariant: with
// bounded admission, adaptive sampling, the degradation ladder and a fold
// site cap all configured but no pressure applied (sessions one at a time,
// slots to spare), every report is byte-identical to the offline replay —
// i.e. to the report of a server without any overload machinery. Both
// pipeline shapes, like the main conformance suite; CI runs this under
// -race.
func TestOverloadFeaturesZeroPressureIdentity(t *testing.T) {
	corpus := buildCorpus(t, 4)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			reg := obs.NewRegistry()
			_, addr := startServer(t, ingest.Config{
				Shards:            shards,
				MaxSessions:       64,
				AdmitTimeout:      time.Second,
				AdmitRate:         10000,
				AdmitBurst:        64,
				AdaptiveSampling:  true,
				DegradationLadder: true,
				FoldSiteCap:       8,
				Metrics:           reg,
			})
			for _, entry := range corpus {
				c, err := ingest.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.StreamTrace(entry.name, entry.log, 512)
				c.Close()
				if err != nil {
					t.Fatalf("%s: %v", entry.name, err)
				}
				if got != entry.want {
					t.Errorf("%s: report with overload features enabled differs at zero pressure:\n--- live ---\n%s--- offline ---\n%s",
						entry.name, got, entry.want)
				}
			}
			series := reg.Series()
			for _, name := range []string{
				"ingest_sampled_events_total",
				"ingest_degraded_sessions_total",
			} {
				if series[name] != 0 {
					t.Errorf("%s = %d at zero pressure, want 0", name, series[name])
				}
			}
		})
	}
}

// TestFoldSiteCapCompaction drives the bounded retention fold end to end:
// with a site cap of 1 and three distinct buggy sessions folded, the
// aggregate must disclose exactly what the compaction discarded.
func TestFoldSiteCapCompaction(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr := startServer(t, ingest.Config{
		RetainSessions: 1,
		FoldSiteCap:    1,
		Metrics:        reg,
	})
	for seed := int64(1); seed <= 3; seed++ {
		log := recordScenario(t, seed, true)
		c, err := ingest.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.StreamTrace(fmt.Sprintf("fold-%d", seed), log, 0); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	// Folding runs on the handler goroutine after report delivery; poll.
	deadline := time.Now().Add(10 * time.Second)
	var agg *ingest.Aggregate
	for {
		agg = srv.Aggregate()
		if agg.CompactedSites > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if agg.CompactedSites == 0 {
		t.Fatal("fold site cap 1 over three distinct buggy sessions compacted nothing")
	}
	if agg.CompactedOccurrences < agg.CompactedSites {
		t.Errorf("compacted %d site(s) but only %d occurrence(s)", agg.CompactedSites, agg.CompactedOccurrences)
	}
	if !strings.Contains(agg.Format(), "== compaction:") {
		t.Error("aggregate does not disclose the compaction")
	}
	if got := reg.Series()["ingest_fold_compacted_sites_total"]; got != int64(agg.CompactedSites) {
		t.Errorf("compaction metric = %d, want %d", got, agg.CompactedSites)
	}
}
