package ingest

import (
	"errors"
	"sync"
	"time"

	"repro/internal/tracelog"
)

// Backoff is the cooperative send-rate governor a client process shares
// across its sessions. When the server answers busy, a well-behaved client
// does not redial blindly at full speed — it lowers its own send rate first,
// seeded by the server's retry-after hint, and recovers multiplicatively as
// sessions start succeeding again. One governor per client process: any
// session's rejection slows every concurrent session's stream, which is what
// actually relieves the server.
//
// Two knobs come out of the governed delay:
//
//   - Wait() is the pause before redialling a rejected session (instead of
//     hammering the admission gate).
//   - Pace() is the much smaller per-chunk pause SendEvents inserts while the
//     governor is hot, spreading the rate reduction over the stream itself.
//     At zero delay Pace is free, so an uncontended client is unaffected.
type Backoff struct {
	mu    sync.Mutex
	delay time.Duration
	max   time.Duration
}

// Backoff tuning: floor seeds the first rejection when the server sent no
// hint, paceDiv scales the redial delay down to a per-chunk pause, and
// paceCap bounds that pause so a long retry-after hint cannot freeze a
// stream mid-flight.
const (
	backoffFloor   = 50 * time.Millisecond
	backoffPaceDiv = 32
	backoffPaceCap = 25 * time.Millisecond
)

// NewBackoff creates a governor whose redial delay never exceeds max
// (<= 0 takes 5s, matching the server's bounded drain window).
func NewBackoff(max time.Duration) *Backoff {
	if max <= 0 {
		max = 5 * time.Second
	}
	return &Backoff{max: max}
}

// OnBusy records one busy rejection and returns the redial delay to honour:
// the server's retry-after hint when it gave one, otherwise double the
// current delay, floored and capped. err may be any error chain — the typed
// busy error is extracted from it, and a non-busy error leaves the governor
// untouched (zero delay returned means "not a busy rejection").
func (b *Backoff) OnBusy(err error) time.Duration {
	if !errors.Is(err, tracelog.ErrBusy) {
		return 0
	}
	hint, _ := tracelog.RetryAfterHint(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	next := 2 * b.delay
	if next < backoffFloor {
		next = backoffFloor
	}
	if hint > next {
		next = hint
	}
	if next > b.max {
		next = b.max
	}
	b.delay = next
	return next
}

// OnSuccess records one successfully reported session: the delay halves, and
// below the floor it snaps back to zero — full rate restored.
func (b *Backoff) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.delay /= 2
	if b.delay < backoffFloor {
		b.delay = 0
	}
}

// Delay returns the current redial delay (zero when uncontended).
func (b *Backoff) Delay() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.delay
}

// Wait sleeps the current redial delay.
func (b *Backoff) Wait() {
	if d := b.Delay(); d > 0 {
		time.Sleep(d)
	}
}

// Pace sleeps the per-chunk pause: Delay()/backoffPaceDiv capped at
// backoffPaceCap, zero (no sleep at all) when the governor is cold.
func (b *Backoff) Pace() {
	d := b.Delay() / backoffPaceDiv
	if d == 0 {
		return
	}
	if d > backoffPaceCap {
		d = backoffPaceCap
	}
	time.Sleep(d)
}
