package ingest_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/tracelog"
)

// TestObsConformance pins the hard observability requirement on the live
// path: a server with a metrics registry attached produces byte-identical
// session reports to one without, for sequential and sharded per-session
// pipelines alike, and both match the offline replay of the same trace.
// (The offline half of the matrix is TestEngineMetricsConformance.)
func TestObsConformance(t *testing.T) {
	log := recordScenario(t, 3, true)
	want := offlineReport(t, log)
	for _, shards := range []int{0, 4} {
		run := func(reg *obs.Registry) string {
			t.Helper()
			_, addr := startServer(t, ingest.Config{Shards: shards, Metrics: reg})
			c, err := ingest.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rep, err := c.StreamTrace("conf", log, 0)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		plain := run(nil)
		instrumented := run(obs.NewRegistry())
		if plain != instrumented {
			t.Errorf("shards=%d: live report changed when metrics attached", shards)
		}
		if plain != want {
			t.Errorf("shards=%d: live report differs from offline replay", shards)
		}
	}
}

// TestStatsQuery pins the "stats" query: a metrics-enabled server answers
// with its Prometheus-text snapshot carrying the series a session must have
// moved, and a server without a registry answers with a useful error.
func TestStatsQuery(t *testing.T) {
	reg := obs.NewRegistry()
	// Sharded per-session pipelines, so the batch counter moves too (the
	// sequential pipeline delivers inline and flushes no batches).
	srv, addr := startServer(t, ingest.Config{Metrics: reg, Shards: 2})
	log := recordScenario(t, 4, true)

	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTrace("stats-sess", log, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitSession(t, srv.Sessions()[0])

	q, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	text, err := q.Stats()
	if err != nil {
		t.Fatalf("stats query: %v", err)
	}
	series := parseSeries(t, text)
	for name, min := range map[string]int64{
		"engine_events_decoded_total":                  1,
		"engine_batches_flushed_total":                 1,
		"ingest_sessions_opened_total":                 1,
		"ingest_events_total":                          1,
		`ingest_sessions{state="reported"}`:            1,
		`ingest_frames_read_total{kind="hello"}`:       1,
		`ingest_frames_read_total{kind="events"}`:      1,
		`ingest_frames_read_total{kind="end"}`:         1,
		`ingest_frame_bytes_read_total{kind="events"}`: int64(len(log)),
		"ingest_slot_wait_ns_count":                    1,
	} {
		if got := series[name]; got < min {
			t.Errorf("stats series %s = %d, want >= %d", name, got, min)
		}
	}
	if got := series[`ingest_sessions{state="streaming"}`]; got != 0 {
		t.Errorf("streaming gauge = %d after session completed, want 0", got)
	}

	// Unconfigured server: the query fails with a pointer at the cause.
	_, addr2 := startServer(t, ingest.Config{})
	q2, err := ingest.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if _, err := q2.Stats(); err == nil || !strings.Contains(err.Error(), "no metrics registry") {
		t.Errorf("stats without registry: err = %v, want 'no metrics registry'", err)
	}
}

// parseSeries flattens a Prometheus text snapshot into name -> value,
// skipping chrome lines. Values in this codebase's registry are integers.
func parseSeries(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad exposition line %q", line)
		}
		var v int64
		if _, err := fmt.Sscanf(line[i+1:], "%d", &v); err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestSessionsQueryColumns pins the extended "sessions" listing: every entry
// carries events=, snaps= and age= columns.
func TestSessionsQueryColumns(t *testing.T) {
	_, addr := startServer(t, ingest.Config{})
	log := recordScenario(t, 5, false)
	c, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StreamTrace("cols", log, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()

	q, err := ingest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	text, err := q.Query("sessions")
	if err != nil {
		t.Fatal(err)
	}
	line := ""
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, "id=") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no session line in listing:\n%s", text)
	}
	for _, col := range []string{"name=cols", "state=reported", "events=", "snaps=", "age="} {
		if !strings.Contains(line, col) {
			t.Errorf("session line %q missing %q", line, col)
		}
	}
}

// TestDrainSummaryFlushed: a session mid-stream when Shutdown begins that
// completes within the grace period is counted as flushed.
func TestDrainSummaryFlushed(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{Tools: scenario.AllTools})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := tracelog.NewFrameWriter(conn)
	fr := tracelog.NewFrameReader(conn)
	log := recordScenario(t, 6, true)
	if err := fw.Hello("late-finisher"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Events(log[:len(log)/2]); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.Sessions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	// The drain has begun with our session in flight; now finish it.
	if err := fw.Events(log[len(log)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := fw.End(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Response(); err != nil {
		t.Fatalf("report after drain began: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	<-done
	if d := srv.LastDrain(); d != (ingest.DrainSummary{InFlight: 1, Flushed: 1, Forced: 0}) {
		t.Errorf("drain summary = %+v, want 1 in-flight flushed", d)
	}
}

// TestDrainSummaryForced: a session that never finishes is force-failed when
// the grace period expires, and the summary says so.
func TestDrainSummaryForced(t *testing.T) {
	srv, err := ingest.NewServer(ingest.Config{Tools: scenario.AllTools})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := tracelog.NewFrameWriter(conn)
	log := recordScenario(t, 7, true)
	if err := fw.Hello("stuck"); err != nil {
		t.Fatal(err)
	}
	if err := fw.Events(log[:len(log)/3]); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(srv.Sessions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown should report the forced drain")
	}
	<-done
	if d := srv.LastDrain(); d != (ingest.DrainSummary{InFlight: 1, Flushed: 0, Forced: 1}) {
		t.Errorf("drain summary = %+v, want 1 in-flight forced", d)
	}
}
