package ingest_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ingest"
	"repro/internal/scenario"
)

// corpusEntry is one scenario trace with its offline reference report.
type corpusEntry struct {
	name string
	log  []byte
	want string
}

// buildCorpus records both variants of a run of generated scenarios and
// computes each trace's offline six-tool reference report (nil resolver, as
// the server resolves nothing). Seeds 1..7 cover the whole planted-bug
// catalog (see scenario.GenConfig).
func buildCorpus(t testing.TB, seeds int) []corpusEntry {
	t.Helper()
	var out []corpusEntry
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, buggy := range []bool{true, false} {
			log := recordScenario(t, seed, buggy)
			out = append(out, corpusEntry{
				name: fmt.Sprintf("s%d-buggy-%v", seed, buggy),
				log:  log,
				want: offlineReport(t, log),
			})
		}
	}
	return out
}

// TestIngestConformance is the live-vs-offline byte-identity suite: every
// scenario trace streamed through a live server session must yield exactly
// the report an offline engine replay of the same trace produces, for all
// six tools, with both the sequential and the sharded per-session pipeline.
// CI runs this under -race.
func TestIngestConformance(t *testing.T) {
	corpus := buildCorpus(t, 7)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			_, addr := startServer(t, ingest.Config{Shards: shards})
			for _, entry := range corpus {
				c, err := ingest.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.StreamTrace(entry.name, entry.log, 512)
				c.Close()
				if err != nil {
					t.Fatalf("%s: %v", entry.name, err)
				}
				if got != entry.want {
					t.Errorf("%s: live session report != offline replay:\n--- live ---\n%s--- offline ---\n%s",
						entry.name, got, entry.want)
				}
			}
		})
	}
}

// TestIngest64Sessions is the acceptance run: 64 concurrent sessions against
// one server, every returned report byte-identical to its offline replay,
// with a correct aggregate afterwards. CI runs this under -race.
func TestIngest64Sessions(t *testing.T) {
	corpus := buildCorpus(t, 7)
	srv, addr := startServer(t, ingest.Config{MaxSessions: 16})

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entry := corpus[i%len(corpus)]
			c, err := ingest.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			// Vary the chunking per session: framing is transport, so it
			// must not affect the report.
			got, err := c.StreamTrace(fmt.Sprintf("c%d-%s", i, entry.name), entry.log, 64+i*17)
			if err != nil {
				errs[i] = err
				return
			}
			if got != entry.want {
				errs[i] = fmt.Errorf("report != offline replay for %s", entry.name)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	if t.Failed() {
		return
	}

	agg := srv.Aggregate()
	if agg.Sessions != n || agg.Reported != n || agg.Failed != 0 {
		t.Errorf("aggregate = %d sessions / %d reported / %d failed, want %d/%d/0",
			agg.Sessions, agg.Reported, agg.Failed, n, n)
	}
	var events int64
	for _, entry := range corpus {
		ev, err := scenario.CountEvents(entry.log)
		if err != nil {
			t.Fatal(err)
		}
		// 64 sessions cycle the corpus; entry i%len serves ceil/floor share.
		events += ev * int64((n-1-indexOf(corpus, entry))/len(corpus)+1)
	}
	if agg.Events != events {
		t.Errorf("aggregate events = %d, want %d", agg.Events, events)
	}
}

func indexOf(corpus []corpusEntry, e corpusEntry) int {
	for i := range corpus {
		if corpus[i].name == e.name {
			return i
		}
	}
	return -1
}
