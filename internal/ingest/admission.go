package ingest

// Overload survival: bounded admission, the pressure signal, the degradation
// ladder and the adaptive event sampler. The paper's premise is always-on
// analysis of production servers; what that demands of the daemon is that it
// trades analysis coverage for survival under pressure — and says exactly
// what it traded — instead of parking clients forever on a full semaphore.
//
// The moving parts, from the outside in:
//
//   - Admission (Server.admit): an optional token bucket paces session
//     arrivals (Config.AdmitRate/AdmitBurst); past the bucket, the connection
//     is rejected immediately with a typed busy error frame
//     (tracelog.ErrBusy) and a retry-after hint. The MaxSessions slot wait is
//     queue-with-deadline: bounded by Config.AdmitTimeout and IdleTimeout
//     (whichever is tighter) and always interruptible by Shutdown — a waiter
//     can no longer outlive the server.
//   - Pressure (Server.pressureLevel): a 0..3 level computed from live slot
//     occupancy and the waiter count; a session that had to park for its own
//     slot is full pressure outright. Level 0 is the no-overload fast path on
//     which every degradation mechanism below is inert, which is what keeps
//     zero-pressure reports byte-identical to a server without any of this.
//   - Ladder (shedSpecs): under Config.DegradationLadder, sessions admitted
//     at level >= 1 shed the single-shard tools (highlevel), level >= 2 also
//     the broadcast tools (the lock-order detector). Block-routed tools —
//     lockset, djit, hybrid, memcheck, the paper's core detectors — are never
//     shed.
//   - Sampler (sampler, replaySampled): under Config.AdaptiveSampling, a
//     session admitted under pressure decodes in ingest rather than through
//     Pipeline.ReplayLog, dropping a deterministic per-block fraction of
//     memory-access events before dispatch. Only OpAccess is ever sampled:
//     lock, allocation, sync, segment and thread events always pass, so the
//     happens-before and lockset machinery stays sound and sampling can only
//     miss warnings, never invent them. The exact sampled-out count is
//     carried on the session, into its report header, and into the aggregate.
import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// Pressure levels. The thresholds are over MaxSessions slot occupancy; any
// parked waiter means demand already exceeds capacity, which is the strongest
// overload evidence available before a queue even forms.
const (
	pressureNone = iota
	pressureLow  // >= 3/4 of slots busy
	pressureHigh // >= 7/8 of slots busy
	pressureFull // all slots busy, or connections waiting for one
)

// pressureLevel samples the server's live overload state.
func (s *Server) pressureLevel() int {
	c := cap(s.sem)
	use := len(s.sem)
	level := pressureNone
	switch {
	case s.slotWaiters.Load() > 0 || use >= c:
		level = pressureFull
	case use*8 >= c*7:
		level = pressureHigh
	case use*4 >= c*3:
		level = pressureLow
	}
	if s.met != nil {
		s.met.pressure.Set(int64(level))
	}
	return level
}

// rejectError is an admission refusal on its way to the client as a typed
// busy error frame.
type rejectError struct {
	reason     string // metric label: "rate", "slots", "shutdown"
	msg        string
	retryAfter time.Duration
}

func (e *rejectError) Error() string { return "ingest: admission rejected: " + e.msg }

// tokenBucket paces session admission. Plain mutex + monotonic clock — a
// session admission is a heavyweight event (a whole pipeline spins up behind
// it), so a lock here costs nothing measurable.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take consumes cost tokens, or reports how long until that many accrue. An
// ordinary admission costs one token; admission under pipeline backlog costs
// more (see admit), which tightens the sustained rate without a second knob.
func (b *tokenBucket) take(now time.Time, cost float64) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	wait := time.Duration((cost - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// admit runs the admission path for one session connection: the rate gate
// first (the cheap refusal, before any slot state is touched), then the slot
// gate. A nil error means the caller holds a MaxSessions slot; waited
// reports whether it had to park for one — direct evidence that demand
// exceeded capacity at admission, which serveConn treats as a full-pressure
// floor (the occupancy probe alone can miss it: by the time an ex-waiter
// probes, its own waiter count is gone and a slot may already have freed).
func (s *Server) admit() (waited bool, err error) {
	if s.bucket != nil {
		// Queue-load feedback: when any live session pipeline is backed up
		// past the tighten threshold, an admission costs double — the
		// sustained rate halves while the backlog lasts, without a second
		// knob. Slot occupancy says how many sessions run; queue load says
		// the ones running are not keeping up, which is the overload that
		// admitting faster can only deepen.
		cost := 1.0
		if s.maxQueueLoad() >= queueLoadTighten {
			cost = 2
		}
		if ok, retry := s.bucket.take(time.Now(), cost); !ok {
			reason := "rate"
			if cost > 1 {
				reason = "rate-queue"
			}
			return false, &rejectError{
				reason:     reason,
				msg:        fmt.Sprintf("admission rate %.3g/s exceeded", s.cfg.AdmitRate),
				retryAfter: retry,
			}
		}
	}
	return s.acquireSlot()
}

// acquireSlot takes a MaxSessions slot, queue-with-deadline. The wait is
// bounded by AdmitTimeout and by IdleTimeout (a parked waiter is an idle
// connection holding nothing — it gets no more patience than a stalled
// stream), and is always interruptible by Shutdown; with neither timeout
// configured the legacy delay-not-drop behaviour remains, minus the ability
// to outlive the server.
func (s *Server) acquireSlot() (waited bool, err error) {
	waitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		if s.met != nil {
			s.met.slotWaitNs.Observe(int64(time.Since(waitStart)))
		}
		return false, nil
	default:
	}
	s.slotWaiters.Add(1)
	if s.met != nil {
		s.met.slotWaiters.Add(1)
	}
	defer func() {
		s.slotWaiters.Add(-1)
		if s.met != nil {
			s.met.slotWaiters.Add(-1)
			s.met.slotWaitNs.Observe(int64(time.Since(waitStart)))
		}
	}()
	var deadline <-chan time.Time
	if d := s.slotWaitBound(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case s.sem <- struct{}{}:
		return true, nil
	case <-deadline:
		return true, &rejectError{
			reason:     "slots",
			msg:        fmt.Sprintf("no analysis slot within %s (%d in use)", s.slotWaitBound(), cap(s.sem)),
			retryAfter: s.retryAfter(),
		}
	case <-s.shutdown:
		return true, &rejectError{reason: "shutdown", msg: "server shutting down"}
	}
}

// slotWaitBound is the tightest configured bound on a slot wait; 0 means
// unbounded (until shutdown).
func (s *Server) slotWaitBound() time.Duration {
	d := s.cfg.AdmitTimeout
	if t := s.cfg.IdleTimeout; t > 0 && (d <= 0 || t < d) {
		d = t
	}
	return d
}

// retryAfter is the backoff hint attached to slot rejections.
func (s *Server) retryAfter() time.Duration {
	if s.cfg.RetryAfter > 0 {
		return s.cfg.RetryAfter
	}
	return time.Second
}

// reject answers a refused connection: the typed busy frame (or a plain
// error frame for a shutdown refusal), the metric, and — for busy
// rejections — a bounded drain of whatever the client had already pipelined.
// Without the drain a client mid-way through streaming its trace would block
// on transport flow control and never reach the response read; discarding
// its remaining input lets it complete the exchange and read the busy frame.
func (s *Server) reject(conn net.Conn, fw *tracelog.FrameWriter, rej *rejectError) {
	if s.met != nil {
		s.met.admissionRejects.With(rej.reason).Inc()
	}
	if rej.reason == "shutdown" {
		fw.Error(rej.msg)
		return
	}
	fw.Error(tracelog.BusyMessage(rej.msg, rej.retryAfter))
	conn.SetReadDeadline(time.Now().Add(rejectDrainTimeout))
	io.Copy(io.Discard, conn)
}

// rejectDrainTimeout bounds how long a rejected connection may keep
// trickling input before the server abandons the drain. A well-behaved
// client closes right after reading the busy frame, ending the drain at EOF
// long before this.
const rejectDrainTimeout = 5 * time.Second

// shedSpecs applies the degradation ladder to one session's tool registry.
// The order encodes the paper's priorities: the auxiliary detectors go
// first (level >= 1 sheds single-shard tools — highlevel; level >= 2 also
// broadcast tools — the lock-order detector), while block-routed tools
// (lockset, djit, hybrid, memcheck) are never shed. A registry that would
// shed to nothing is kept whole: analysing with the only configured tools
// beats admitting a session that analyses nothing.
func shedSpecs(specs []trace.ToolSpec, level int) (kept []trace.ToolSpec, shed []string) {
	if level < pressureLow {
		return specs, nil
	}
	for _, spec := range specs {
		drop := spec.Routing == trace.RouteSingle ||
			(level >= pressureHigh && spec.Routing == trace.RouteBroadcast)
		if drop {
			shed = append(shed, spec.Name)
		} else {
			kept = append(kept, spec)
		}
	}
	if len(kept) == 0 {
		return specs, nil
	}
	return kept, shed
}

// samplerRecheck is how many events pass between pressure re-probes: cheap
// enough to track a changing overload level, coarse enough to stay invisible
// per event.
const samplerRecheck = 4096

// queueLoadTighten is the pipeline backlog fraction past which the overload
// machinery tightens: the sampler sheds another quarter of access events, and
// admission (admit) doubles the token cost of each new session.
const queueLoadTighten = 0.75

// keepPctFor maps the overload state to the percentage of memory-access
// events a session keeps. Slot pressure sets the floor; a backed-up session
// pipeline (queue load from engine.Pipeline.QueueLoad) tightens it further.
func keepPctFor(level int, queueLoad float64) int {
	pct := 100
	switch level {
	case pressureHigh:
		pct = 75
	case pressureFull:
		pct = 50
	}
	if queueLoad >= queueLoadTighten && pct > 25 {
		pct -= 25
	}
	return pct
}

// sampler is one session's adaptive access-event sampler. Dropping is
// deterministic per block (trace.Shard over the block ID), so every access
// to a kept block is analysed — the per-block candidate-set and
// happens-before state a detector builds is complete or absent, never torn.
type sampler struct {
	level     func() int     // live server pressure probe
	queueLoad func() float64 // live session pipeline backlog probe
	keepPct   int
	dropped   int64
	sinceOut  int // events since the last pressure re-probe
}

// newSampler seeds the keep percentage from the pressure level serveConn
// observed at admission (which includes the waited-for-slot floor — a live
// probe here would miss it), then re-probes live pressure as the session
// runs.
func newSampler(initial int, level func() int, queueLoad func() float64) *sampler {
	sam := &sampler{level: level, queueLoad: queueLoad}
	sam.keepPct = keepPctFor(initial, queueLoad())
	return sam
}

// keep decides one event's fate and re-probes the pressure level every
// samplerRecheck events, so a session that outlives the overload ramps back
// to full coverage (and vice versa).
func (sam *sampler) keep(ev *tracelog.Event) bool {
	if sam.sinceOut++; sam.sinceOut >= samplerRecheck {
		sam.sinceOut = 0
		sam.keepPct = keepPctFor(sam.level(), sam.queueLoad())
	}
	if ev.Op != tracelog.OpAccess || sam.keepPct >= 100 {
		return true
	}
	return trace.Shard(ev.Access.Block, 100) < sam.keepPct
}

// replaySampled is the sampling counterpart of Pipeline.ReplayLog: ingest
// owns the decode loop so the sampler can drop events before dispatch while
// counting them exactly. It returns the number of events the stream carried
// (sent = analysed + sam.dropped); the error contract matches ReplayLog.
func replaySampled(pipe engine.Pipeline, r io.Reader, sam *sampler) (int64, error) {
	dec := tracelog.NewDecoder(r)
	var ev tracelog.Event
	for {
		err := dec.Next(&ev)
		if err == io.EOF {
			return dec.Events(), nil
		}
		if err != nil {
			return dec.Events(), err
		}
		if sam.keep(&ev) {
			ev.Deliver(pipe)
		} else {
			sam.dropped++
		}
	}
}
