package ingest

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestPressureLevel pins the occupancy thresholds and the waiter override.
func TestPressureLevel(t *testing.T) {
	s := &Server{sem: make(chan struct{}, 8)}
	fill := func(n int) {
		for len(s.sem) < n {
			s.sem <- struct{}{}
		}
	}
	if got := s.pressureLevel(); got != pressureNone {
		t.Errorf("empty server pressure = %d, want none", got)
	}
	fill(6) // 3/4 of 8
	if got := s.pressureLevel(); got != pressureLow {
		t.Errorf("6/8 slots pressure = %d, want low", got)
	}
	fill(7) // 7/8
	if got := s.pressureLevel(); got != pressureHigh {
		t.Errorf("7/8 slots pressure = %d, want high", got)
	}
	fill(8)
	if got := s.pressureLevel(); got != pressureFull {
		t.Errorf("8/8 slots pressure = %d, want full", got)
	}
	// A parked waiter is full pressure regardless of occupancy.
	drained := &Server{sem: make(chan struct{}, 8)}
	drained.slotWaiters.Add(1)
	if got := drained.pressureLevel(); got != pressureFull {
		t.Errorf("pressure with a waiter = %d, want full", got)
	}
}

// TestShedSpecs pins the ladder order: single-shard tools go at low
// pressure, broadcast tools at high, block-routed tools never — and a
// registry that would shed to nothing is kept whole.
func TestShedSpecs(t *testing.T) {
	specs := []trace.ToolSpec{
		{Name: "lockset", Routing: trace.RouteBlock},
		{Name: "deadlock", Routing: trace.RouteBroadcast},
		{Name: "highlevel", Routing: trace.RouteSingle},
	}
	names := func(specs []trace.ToolSpec) string {
		var out []string
		for _, spec := range specs {
			out = append(out, spec.Name)
		}
		return strings.Join(out, ",")
	}

	kept, shed := shedSpecs(specs, pressureNone)
	if names(kept) != "lockset,deadlock,highlevel" || shed != nil {
		t.Errorf("level 0: kept=%s shed=%v, want everything kept", names(kept), shed)
	}
	kept, shed = shedSpecs(specs, pressureLow)
	if names(kept) != "lockset,deadlock" || strings.Join(shed, ",") != "highlevel" {
		t.Errorf("level 1: kept=%s shed=%v, want highlevel shed", names(kept), shed)
	}
	kept, shed = shedSpecs(specs, pressureFull)
	if names(kept) != "lockset" || strings.Join(shed, ",") != "deadlock,highlevel" {
		t.Errorf("level 3: kept=%s shed=%v, want only lockset kept", names(kept), shed)
	}
	onlyAux := []trace.ToolSpec{{Name: "highlevel", Routing: trace.RouteSingle}}
	kept, shed = shedSpecs(onlyAux, pressureFull)
	if names(kept) != "highlevel" || shed != nil {
		t.Errorf("all-would-shed registry: kept=%s shed=%v, want kept whole", names(kept), shed)
	}
}

// TestKeepPctFor pins the sampling schedule over pressure and queue load.
func TestKeepPctFor(t *testing.T) {
	for _, tc := range []struct {
		level     int
		queueLoad float64
		want      int
	}{
		{pressureNone, 0, 100},
		{pressureLow, 0, 100},
		{pressureHigh, 0, 75},
		{pressureFull, 0, 50},
		{pressureNone, 0.9, 75}, // backed-up pipeline tightens the keep rate
		{pressureFull, 0.9, 25},
	} {
		if got := keepPctFor(tc.level, tc.queueLoad); got != tc.want {
			t.Errorf("keepPctFor(%d, %.1f) = %d, want %d", tc.level, tc.queueLoad, got, tc.want)
		}
	}
}

// TestTokenBucket pins refill arithmetic against an injected clock.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(2, 2) // 2 tokens/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(now, 1); !ok {
			t.Fatalf("take %d within burst refused", i+1)
		}
	}
	ok, retry := b.take(now, 1)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry != 500*time.Millisecond {
		t.Errorf("retry hint = %v, want 500ms (one token at 2/s)", retry)
	}
	if ok, _ := b.take(now.Add(500*time.Millisecond), 1); !ok {
		t.Error("take after the hinted refill refused")
	}
	// The hint never degenerates below a millisecond.
	tight := newTokenBucket(1e6, 1)
	tight.take(now, 1)
	if _, retry := tight.take(now, 1); retry < time.Millisecond {
		t.Errorf("retry hint = %v, want >= 1ms", retry)
	}
}

// TestDegradedHeader pins the honesty annotation: absent for a full-coverage
// session (byte-identity depends on it), exact counts otherwise.
func TestDegradedHeader(t *testing.T) {
	if got := degradedHeader(0, nil); got != "" {
		t.Errorf("zero-degradation header = %q, want empty", got)
	}
	if got := degradedHeader(41, nil); got != "== degraded: sampled-out=41 event(s)\n" {
		t.Errorf("sampled-only header = %q", got)
	}
	if got := degradedHeader(0, []string{"highlevel", "deadlock"}); got != "== degraded: tools-shed=highlevel,deadlock\n" {
		t.Errorf("shed-only header = %q", got)
	}
	if got := degradedHeader(7, []string{"highlevel"}); got != "== degraded: sampled-out=7 event(s) tools-shed=highlevel\n" {
		t.Errorf("combined header = %q", got)
	}
}

// TestSnapshotErrorRecorded pins the snapshot-error bugfix: a failed
// incremental snapshot is counted and kept on the session, and the
// "snapshots" query discloses it.
func TestSnapshotErrorRecorded(t *testing.T) {
	sess := &Session{ID: 9, Name: "snapfail"}
	sess.noteSnapshotError(errors.New("quiesce failed"))
	sess.noteSnapshotError(errors.New("quiesce failed again"))
	n, last := sess.SnapshotErrs()
	if n != 2 || last == nil || last.Error() != "quiesce failed again" {
		t.Errorf("SnapshotErrs = (%d, %v), want (2, quiesce failed again)", n, last)
	}
	text := sess.FormatSnapshots()
	if !strings.Contains(text, "(2 failed, last: quiesce failed again)") {
		t.Errorf("snapshots listing hides the failures:\n%s", text)
	}
}
