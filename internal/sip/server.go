package sip

import (
	"fmt"
	"sort"

	"repro/internal/cppmodel"
	"repro/internal/libc"
	"repro/internal/vm"
)

// sortedKeys returns a map's keys in sorted order, for deterministic guest
// iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pattern selects the server's concurrency architecture.
type Pattern uint8

// Concurrency patterns.
const (
	// ThreadPerRequest spawns one worker thread per message — the pattern of
	// the application under test (§3.3, Fig. 10). Ownership passes to the
	// worker via thread creation, which the thread-segment refinement
	// understands.
	ThreadPerRequest Pattern = iota
	// ThreadPool uses a fixed pool of workers fed by a message queue — the
	// planned architecture of §4.2.3 (Fig. 11), whose ownership transfer the
	// stock lock-set algorithm does not understand.
	ThreadPool
)

func (p Pattern) String() string {
	if p == ThreadPerRequest {
		return "thread-per-request"
	}
	return "thread-pool"
}

// Bugs gates the §4.1 true-bug catalogue. Every flag defaults to the state
// the paper's experiments ran with (see PaperBugs).
type Bugs struct {
	// DeadlockMonitorRace seeds the race inside the application's own
	// timed-lock deadlock detection (§4.1 "One of the first reported data
	// races was in the application's deadlock detection code"). The paper
	// disabled that code for further experiments, so PaperBugs leaves it
	// off.
	DeadlockMonitorRace bool
	// InitOrderRace starts the stats flusher before the routing table is
	// initialised (§4.1.1).
	InitOrderRace bool
	// ShutdownRace destroys the statistics object while a background thread
	// still uses it (§4.1.1).
	ShutdownRace bool
	// RefReturn enables the Fig. 7 returned-reference bug.
	RefReturn bool
	// LibcStatic formats log timestamps through the non-thread-safe libc
	// functions without a lock (§4.1.3).
	LibcStatic bool
	// BenignCounter bumps an unprotected hit counter per request — a benign
	// race ("or just a benign race", §4.1).
	BenignCounter bool
	// GaugeRace maintains the active-call gauge without the dialog lock —
	// another of the paper's "lot of real defects" (§4.1).
	GaugeRace bool
	// TimerRace makes the retransmission timer read transaction state
	// without the table lock (§4.1's pattern of partially locked
	// subsystems).
	TimerRace bool
}

// PaperBugs returns the bug configuration of the paper's Fig. 5/6 runs: all
// real bugs present except the deadlock-monitor race, which was disabled
// after its discovery.
func PaperBugs() Bugs {
	return Bugs{
		InitOrderRace: true,
		ShutdownRace:  true,
		RefReturn:     true,
		LibcStatic:    true,
		BenignCounter: true,
		GaugeRace:     true,
		TimerRace:     true,
	}
}

// NoBugs returns a fully fixed configuration (for differential tests).
func NoBugs() Bugs { return Bugs{} }

// Config parameterises the server.
type Config struct {
	Pattern Pattern
	// Workers is the pool size for ThreadPool (default 4).
	Workers int
	// Domains the proxy routes for (default two example domains).
	Domains []string
	// RefreshInterval is the domain refresher period in virtual ticks.
	RefreshInterval int64
	// FlushInterval is the stats flusher period in virtual ticks.
	FlushInterval int64
	// LockTimeout is the application-level deadlock-detection timeout.
	LockTimeout int64
	// TimerInterval is the transaction retransmission-timer period.
	TimerInterval int64
	Bugs          Bugs
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if len(c.Domains) == 0 {
		c.Domains = []string{"a.example.com", "b.example.com"}
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 40
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 60
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 200
	}
	if c.TimerInterval <= 0 {
		c.TimerInterval = 50
	}
	return c
}

// statsClass is the StatsRegistry class shared by all servers (built once).
var statsClass = cppmodel.NewClass("StatsRegistry", "stats.h",
	cppmodel.Field{Name: "invites", Size: 4},
	cppmodel.Field{Name: "registers", Size: 4},
	cppmodel.Field{Name: "byes", Size: 4},
	cppmodel.Field{Name: "options", Size: 4},
	cppmodel.Field{Name: "acks", Size: 4},
	cppmodel.Field{Name: "errors", Size: 4},
	cppmodel.Field{Name: "flushes", Size: 4})

func init() {
	// The registry destructor clears its counters — field writes that race
	// with a still-running flusher when the shutdown order is wrong.
	statsClass.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "invites", 0)
		o.Store(t, "flushes", 0)
	}
}

// Server is the SIP proxy/registrar under test.
type Server struct {
	v   *vm.VM
	rt  *cppmodel.Runtime
	cls *Classes
	lc  *libc.Libc
	cfg Config

	inQ  *vm.Queue
	outQ *vm.Queue

	regMu    *vm.Mutex
	dialogMu *vm.Mutex
	transMu  *vm.Mutex
	statsMu  *vm.Mutex
	logMu    *vm.Mutex

	bindings     map[string]*binding
	dialogs      map[string]*dialog
	transactions map[string]*cppmodel.Object

	stats      *cppmodel.Object
	shutFlag   *vm.Block
	gauge      *vm.Block
	hitCounter *vm.Block
	routeReady *vm.Block
	monitor    *vm.Block
	logBuf     *vm.Block

	domains *DomainDataManager
	caps    *cppmodel.CowString // capability string, init once, read shared

	listener     *vm.Thread
	poolWorkers  []*vm.Thread
	jobs         *vm.Queue
	refresher    *vm.Thread
	flusher      *vm.Thread
	timer        *vm.Thread
	refresherCtl *vm.Queue
	flusherCtl   *vm.Queue
	timerCtl     *vm.Queue

	handled   int
	responses int
	stopped   bool
}

type binding struct {
	obj     *cppmodel.Object
	contact *cppmodel.CowString
	hdrs    []*headerField
	user    string
}

type dialog struct {
	obj    *cppmodel.Object
	trans  *cppmodel.Object
	callID *cppmodel.CowString
	from   *cppmodel.CowString
	to     *cppmodel.CowString
	hdrs   []*headerField
}

// headerField is a parsed header retained by a dialog or binding: a
// polymorphic object plus its value string.
type headerField struct {
	obj   *cppmodel.Object
	value *cppmodel.CowString
	name  string
}

// packet is what the listener hands to workers: the wire bytes plus a guest
// buffer the listener initialised (the "message data" of Fig. 10/11).
type packet struct {
	raw string
	buf *vm.Block
}

// NewServer creates a server bound to a VM and C++ runtime. Call Start from
// the guest main thread before injecting traffic.
func NewServer(v *vm.VM, rt *cppmodel.Runtime, lc *libc.Libc, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		v:            v,
		rt:           rt,
		cls:          NewClasses(),
		lc:           lc,
		cfg:          cfg,
		bindings:     make(map[string]*binding),
		dialogs:      make(map[string]*dialog),
		transactions: make(map[string]*cppmodel.Object),
	}
}

// Classes exposes the server's class hierarchy (for tests).
func (s *Server) Classes() *Classes { return s.cls }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Handled returns the number of processed requests.
func (s *Server) Handled() int { return s.handled }

// Responses returns the server's response queue; drain it from a sink
// thread.
func (s *Server) Responses() *vm.Queue { return s.outQ }

// Start initialises server state and spawns the background and worker
// threads. It must run on the guest main thread.
func (s *Server) Start(t *vm.Thread) {
	pop := t.Func("Server::start", "server.cpp", 52)
	defer pop()
	s.inQ = s.v.NewQueue("sip-in", 64)
	s.outQ = s.v.NewQueue("sip-out", 0)
	s.regMu = s.v.NewMutex("registrarMu")
	s.dialogMu = s.v.NewMutex("dialogMu")
	s.transMu = s.v.NewMutex("transactionMu")
	s.statsMu = s.v.NewMutex("statsMu")
	s.logMu = s.v.NewMutex("logMu")
	s.refresherCtl = s.v.NewQueue("refresher-ctl", 1)
	s.flusherCtl = s.v.NewQueue("flusher-ctl", 1)
	s.timerCtl = s.v.NewQueue("timer-ctl", 1)

	s.stats = s.rt.New(t, statsClass)
	s.shutFlag = t.Alloc(4, "shutdown-flag")
	s.gauge = t.Alloc(4, "gauge-active-calls")
	s.hitCounter = t.Alloc(4, "benign-hitcounter")
	s.routeReady = t.Alloc(4, "routes-ready")
	s.monitor = t.Alloc(8, "monitor-stats")
	s.logBuf = t.Alloc(64, "log-buffer")
	s.caps = s.rt.NewCowString(t, "INVITE,ACK,BYE,CANCEL,OPTIONS,REGISTER")

	if s.cfg.Bugs.InitOrderRace {
		// BUG (§4.1.1): the flusher starts before the routing table is
		// ready; it polls routeReady while main is still writing it.
		s.flusher = t.Go("stats-flusher", s.runFlusher)
		s.domains = NewDomainDataManager(t, s.cls, s.rt, s.cfg.Domains, s.cfg.Bugs.RefReturn)
		t.SetLine(81)
		s.routeReady.Store32(t, 0, 1)
	} else {
		s.domains = NewDomainDataManager(t, s.cls, s.rt, s.cfg.Domains, s.cfg.Bugs.RefReturn)
		s.routeReady.Store32(t, 0, 1)
		s.flusher = t.Go("stats-flusher", s.runFlusher)
	}
	s.refresher = t.Go("domain-refresher", s.runRefresher)
	s.timer = t.Go("retransmit-timer", s.runTimer)

	switch s.cfg.Pattern {
	case ThreadPerRequest:
		s.listener = t.Go("listener", s.runListenerPerRequest)
	case ThreadPool:
		s.jobs = s.v.NewQueue("sip-jobs", 0)
		s.listener = t.Go("listener", s.runListenerPool)
		for i := 0; i < s.cfg.Workers; i++ {
			s.poolWorkers = append(s.poolWorkers, t.Go(fmt.Sprintf("pool-%d", i), s.runPoolWorker))
		}
	}
}

// Inject delivers one wire-format message to the server.
func (s *Server) Inject(t *vm.Thread, raw string) {
	s.inQ.Put(t, raw)
}

// Stop shuts the server down: drains workers, stops background threads and
// destroys long-lived state. With Bugs.ShutdownRace the statistics object is
// destroyed while the flusher may still be using it (§4.1.1).
func (s *Server) Stop(t *vm.Thread) {
	pop := t.Func("Server::stop", "server.cpp", 130)
	defer pop()
	if s.stopped {
		return
	}
	s.stopped = true
	s.inQ.Close(t)
	t.Join(s.listener)
	for _, w := range s.poolWorkers {
		t.Join(w)
	}

	if s.cfg.Bugs.ShutdownRace {
		// BUG (§4.1.1): "a data structure was destroyed before a thread
		// using it terminated" — the stats object dies while the flusher is
		// possibly mid-flush, with only a plain flag telling it to stop.
		t.SetLine(140)
		s.shutFlag.Store32(t, 0, 1)
		t.SetLine(141)
		s.rt.Delete(t, s.stats)
		s.flusherCtl.Close(t)
		t.Join(s.flusher)
	} else {
		s.flusherCtl.Close(t)
		t.Join(s.flusher)
		s.rt.Delete(t, s.stats)
	}
	s.refresherCtl.Close(t)
	t.Join(s.refresher)
	s.timerCtl.Close(t)
	t.Join(s.timer)

	// Tear down leftover dialogs and bindings (destructor family from the
	// stopping thread). Iterate in sorted order: guest execution must be
	// deterministic for a given seed.
	for _, id := range sortedKeys(s.dialogs) {
		s.destroyDialog(t, s.dialogs[id])
		delete(s.dialogs, id)
	}
	for _, u := range sortedKeys(s.bindings) {
		b := s.bindings[u]
		b.contact.Release(t)
		s.rt.Delete(t, b.obj)
		for _, h := range b.hdrs {
			h.value.Release(t)
			s.rt.Delete(t, h.obj)
		}
		delete(s.bindings, u)
	}
	for _, branch := range sortedKeys(s.transactions) {
		s.rt.Delete(t, s.transactions[branch])
		delete(s.transactions, branch)
	}
	s.domains.Shutdown(t)
	s.caps.Release(t)
	s.outQ.Close(t)
}

// ---- background threads ----

func (s *Server) runFlusher(t *vm.Thread) {
	pop := t.Func("StatsFlusher::run", "stats.cpp", 30)
	defer pop()
	for {
		// Init-order bug: poll the routing-ready flag with a plain read.
		s.routeReady.Load32(t, 0)
		if s.cfg.Bugs.ShutdownRace {
			// Shutdown bug: the "please stop" signal is a plain flag.
			t.SetLine(36)
			if s.shutFlag.Load32(t, 0) != 0 {
				return
			}
		}
		if _, ok := s.flusherCtl.GetTimeout(t, s.cfg.FlushInterval); ok || s.flusherCtl.Closed() {
			return
		}
		s.statsMu.Lock(t)
		t.SetLine(39)
		total := s.stats.Load(t, "invites") + s.stats.Load(t, "registers") +
			s.stats.Load(t, "byes") + s.stats.Load(t, "options")
		s.stats.Store(t, "flushes", s.stats.Load(t, "flushes")+1)
		s.statsMu.Unlock(t)
		s.log(t, fmt.Sprintf("flush total=%d", total), 44)
	}
}

func (s *Server) runRefresher(t *vm.Thread) {
	pop := t.Func("DomainRefresher::run", "modules.cpp", 380)
	defer pop()
	for {
		if _, ok := s.refresherCtl.GetTimeout(t, s.cfg.RefreshInterval); ok || s.refresherCtl.Closed() {
			return
		}
		s.domains.Refresh(t)
	}
}

// runTimer is the transaction retransmission timer: it periodically walks
// the transaction table and updates retransmission state. With the TimerRace
// bug the status read happens before taking the table lock.
func (s *Server) runTimer(t *vm.Thread) {
	pop := t.Func("RetransmitTimer::run", "timer.cpp", 22)
	defer pop()
	for {
		if _, ok := s.timerCtl.GetTimeout(t, s.cfg.TimerInterval); ok || s.timerCtl.Closed() {
			return
		}
		if s.cfg.Bugs.TimerRace {
			// BUG: refresh transaction status without the table lock.
			for _, branch := range sortedKeys(s.transactions) {
				obj := s.transactions[branch]
				t.SetLine(31)
				obj.Store(t, "lastStatus", obj.Load(t, "lastStatus"))
				break // touching one is enough to be wrong
			}
		}
		s.transMu.Lock(t)
		for _, branch := range sortedKeys(s.transactions) {
			obj := s.transactions[branch]
			obj.VCall(t, "onTimer", func() {
				t.SetLine(40)
				obj.Store(t, "retransmits", obj.Load(t, "retransmits")+1)
			})
		}
		s.transMu.Unlock(t)
	}
}

// ---- listeners / workers ----

// runListenerPerRequest implements Fig. 10: the listener initialises the
// packet buffer and passes ownership to a freshly created worker thread.
func (s *Server) runListenerPerRequest(t *vm.Thread) {
	pop := t.Func("Listener::run", "listener.cpp", 20)
	defer pop()
	var workers []*vm.Thread
	n := 0
	for {
		msg, ok := s.inQ.Get(t)
		if !ok {
			break
		}
		p := s.makePacket(t, msg.(string))
		n++
		w := t.Go(fmt.Sprintf("req-%d", n), func(wt *vm.Thread) {
			s.handlePacket(wt, p)
		})
		workers = append(workers, w)
	}
	for _, w := range workers {
		t.Join(w)
	}
}

// runListenerPool implements Fig. 11: the listener initialises the packet
// buffer AFTER the pool threads were created and passes it through the job
// queue — the ownership transfer the stock detector cannot see.
func (s *Server) runListenerPool(t *vm.Thread) {
	pop := t.Func("Listener::run", "listener.cpp", 20)
	defer pop()
	for {
		msg, ok := s.inQ.Get(t)
		if !ok {
			break
		}
		p := s.makePacket(t, msg.(string))
		s.jobs.Put(t, p)
	}
	s.jobs.Close(t)
}

func (s *Server) runPoolWorker(t *vm.Thread) {
	pop := t.Func("PoolWorker::run", "pool.cpp", 15)
	defer pop()
	for {
		job, ok := s.jobs.Get(t)
		if !ok {
			return
		}
		s.handlePacket(t, job.(*packet))
	}
}

// makePacket initialises the shared message buffer ("setup data").
func (s *Server) makePacket(t *vm.Thread, raw string) *packet {
	pop := t.Func("Listener::readPacket", "listener.cpp", 44)
	defer pop()
	buf := t.Alloc(16, "packet-buffer")
	buf.Store32(t, 0, uint32(len(raw)))
	buf.Store64(t, 8, uint64(t.Now()))
	return &packet{raw: raw, buf: buf}
}

// ---- request handling ----

func (s *Server) handlePacket(t *vm.Thread, p *packet) {
	pop := t.Func("Server::handleRequest", "server.cpp", 200)
	defer pop()

	// "process data" (Fig. 10/11): read the buffer the listener wrote and
	// stamp it processed — the first write that trips the stock detector
	// when ownership travelled through a queue instead of a thread create.
	p.buf.Load32(t, 0)
	p.buf.Load64(t, 8)
	t.SetLine(204)
	p.buf.Store32(t, 0, 1)

	if s.cfg.Bugs.BenignCounter {
		// Benign race: monotonic hit counter, statistics only.
		t.SetLine(206)
		s.hitCounter.Store32(t, 0, s.hitCounter.Load32(t, 0)+1)
	}

	msg, err := Parse(p.raw)
	if err != nil {
		s.bumpStat(t, "errors")
		s.respondRaw(t, NewResponse(400, "Bad Request").Serialize())
		return
	}
	logLines := map[Method]int{REGISTER: 215, INVITE: 216, ACK: 217, BYE: 218, CANCEL: 219, OPTIONS: 220}
	s.log(t, string(msg.Method)+" "+msg.CallID(), logLines[msg.Method])

	mo := s.newMessageObject(t, msg)
	switch msg.Method {
	case REGISTER:
		s.handleRegister(t, msg, mo)
	case INVITE:
		s.handleInvite(t, msg, mo)
	case ACK:
		s.handleAck(t, msg, mo)
	case BYE:
		s.handleBye(t, msg, mo)
	case CANCEL:
		s.handleCancel(t, msg, mo)
	case OPTIONS:
		s.handleOptions(t, msg, mo)
	}
	s.deleteMessageObject(t, mo)
	s.handled++
}

// messageObject bundles the polymorphic request object with its header
// strings.
type messageObject struct {
	obj    *cppmodel.Object
	callID *cppmodel.CowString
	from   *cppmodel.CowString
	to     *cppmodel.CowString
}

func (s *Server) newMessageObject(t *vm.Thread, msg *Message) *messageObject {
	pop := t.Func("MessageFactory::create", "factory.cpp", 31)
	defer pop()
	obj := s.rt.New(t, s.cls.ForMethod(msg.Method))
	obj.Store(t, "kind", uint64(len(msg.Method)))
	obj.Store(t, "recvTime", uint64(t.Now()))
	seq, _ := msg.CSeq()
	obj.Store(t, "cseq", uint64(seq))
	return &messageObject{
		obj:    obj,
		callID: s.rt.NewCowString(t, msg.CallID()),
		from:   s.rt.NewCowString(t, msg.From()),
		to:     s.rt.NewCowString(t, msg.To()),
	}
}

func (s *Server) deleteMessageObject(t *vm.Thread, mo *messageObject) {
	pop := t.Func("MessageFactory::destroy", "factory.cpp", 60)
	defer pop()
	mo.callID.Release(t)
	mo.from.Release(t)
	mo.to.Release(t)
	s.rt.Delete(t, mo.obj)
}

// bindingHeaderFields materialises the header objects a registrar binding
// retains.
func (s *Server) bindingHeaderFields(t *vm.Thread, msg *Message, contact string) []*headerField {
	pop := t.Func("Registrar::parseBinding", "registrar.cpp", 60)
	defer pop()
	mk := func(line int, cls *cppmodel.Class, name, val string) *headerField {
		t.SetLine(line)
		h := &headerField{obj: s.rt.New(t, cls), value: s.rt.NewCowString(t, val), name: name}
		h.obj.Store(t, "hash", uint64(len(val)))
		return h
	}
	return []*headerField{
		mk(62, s.cls.ViaHeader, "Via", msg.Header("Via")),
		mk(63, s.cls.CallIDHeader, "Call-ID", msg.CallID()),
		mk(64, s.cls.ContactHeader, "Contact", contact),
		mk(65, s.cls.UAHeader, "User-Agent", "softphone/1.0"),
	}
}

func (s *Server) handleRegister(t *vm.Thread, msg *Message, mo *messageObject) {
	pop := t.Func("Registrar::handleRegister", "registrar.cpp", 80)
	defer pop()
	user := UserOf(msg.From())
	contact := msg.Header("Contact")
	if contact == "" {
		contact = msg.From()
	}

	// The registrar validates the home domain through the routing data —
	// the same Fig. 7 path the proxy uses.
	if gw, ok := s.domains.Route(t, DomainOf(msg.From())); ok {
		gw.Release(t)
	}

	nb := &binding{
		obj:     s.rt.New(t, s.cls.Binding),
		contact: s.rt.NewCowString(t, contact),
		user:    user,
	}
	nb.obj.Store(t, "expires", 3600)
	nb.hdrs = s.bindingHeaderFields(t, msg, contact)

	s.lockGuarded(t, s.regMu)
	old := s.bindings[user]
	s.bindings[user] = nb
	nb.obj.VCall(t, "activate", nil)
	s.regMu.Unlock(t)

	if old != nil {
		// Audit-log the replaced contact — strings created by the ORIGINAL
		// registering worker, copied here without any common lock: the
		// Fig. 8 access mix.
		t.SetLine(97)
		audit := old.contact.Copy(t)
		audit.Release(t)
		for i, h := range old.hdrs {
			t.SetLine(99 + i)
			v := h.value.Copy(t)
			v.Release(t)
		}
		// Delete the old binding outside the critical section ("keep the
		// lock hot path short") — the §4.2.1 destructor pattern.
		t.SetLine(104)
		s.rt.Delete(t, old.obj)
		for _, h := range old.hdrs {
			h.value.Release(t)
			s.rt.Delete(t, h.obj)
		}
		old.contact.Release(t)
	}
	s.bumpStat(t, "registers")
	s.respond(t, msg, 200, "OK")
}

// parseHeaderFields materialises the retained header objects for a dialog or
// binding — the HeaderFieldImpl instances a real stack allocates per
// transaction.
func (s *Server) parseHeaderFields(t *vm.Thread, msg *Message) []*headerField {
	pop := t.Func("HeaderParser::parseAll", "headers.cpp", 70)
	defer pop()
	if s.cfg.Bugs.LibcStatic {
		// Via parameter splitting through strtok's static cursor (§4.1.3).
		s.lc.Strtok(t, msg.Header("Via"), "/; ")
		s.lc.Strtok(t, "", "/; ")
	}
	names := []string{"Via", "From", "To", "Call-ID", "CSeq", "Contact"}
	out := make([]*headerField, 0, len(names))
	for i, cls := range s.cls.DialogHeaders() {
		name := names[i]
		val := msg.Header(name)
		if val == "" {
			val = "-"
		}
		t.SetLine(74 + i)
		h := &headerField{
			obj:   s.rt.New(t, cls),
			value: s.rt.NewCowString(t, val),
			name:  name,
		}
		h.obj.Store(t, "hash", uint64(len(val)))
		h.obj.Store(t, "parsed", 1)
		out = append(out, h)
	}
	return out
}

func (s *Server) handleInvite(t *vm.Thread, msg *Message, mo *messageObject) {
	pop := t.Func("Proxy::handleInvite", "proxy.cpp", 120)
	defer pop()

	gw, ok := s.domains.Route(t, DomainOf(msg.To()))
	if ok {
		gw.Get(t) // forward target
		gw.Release(t)
	}

	d := &dialog{
		obj:    s.rt.New(t, s.cls.InviteDialog),
		trans:  s.rt.New(t, s.cls.ServerTransaction),
		callID: mo.callID.Copy(t),
		from:   mo.from.Copy(t),
		to:     mo.to.Copy(t),
		hdrs:   s.parseHeaderFields(t, msg),
	}
	seq, _ := msg.CSeq()
	d.obj.Store(t, "state", 1) // proceeding
	d.obj.Store(t, "remoteSeq", uint64(seq))
	d.trans.Store(t, "state", 1)
	d.trans.Store(t, "lastStatus", 180)

	s.lockGuarded(t, s.dialogMu)
	s.dialogs[msg.CallID()] = d
	s.dialogMu.Unlock(t)

	s.transMu.Lock(t)
	s.transactions[msg.CallID()] = d.trans
	s.transMu.Unlock(t)

	if s.cfg.Bugs.GaugeRace {
		// BUG: active-call gauge maintained outside the dialog lock.
		t.SetLine(150)
		s.gauge.Store32(t, 0, s.gauge.Load32(t, 0)+1)
	}
	s.bumpStat(t, "invites")
	s.respond(t, msg, 180, "Ringing")
	s.respond(t, msg, 200, "OK")
}

func (s *Server) handleAck(t *vm.Thread, msg *Message, mo *messageObject) {
	pop := t.Func("Proxy::handleAck", "proxy.cpp", 170)
	defer pop()
	s.lockGuarded(t, s.dialogMu)
	d := s.dialogs[msg.CallID()]
	if d != nil {
		d.obj.VCall(t, "onAck", func() {
			d.obj.Store(t, "state", 2) // confirmed
			d.obj.Store(t, "lastActivity", uint64(t.Now()))
		})
	}
	s.dialogMu.Unlock(t)
	if d != nil {
		// Caller-id for the access log, copied outside the dialog lock: the
		// string rep belongs to the INVITE worker.
		t.SetLine(183)
		who := d.from.Copy(t)
		who.Release(t)
	}
	s.bumpStat(t, "acks")
}

func (s *Server) handleBye(t *vm.Thread, msg *Message, mo *messageObject) {
	pop := t.Func("Proxy::handleBye", "proxy.cpp", 210)
	defer pop()
	s.lockGuarded(t, s.dialogMu)
	d := s.dialogs[msg.CallID()]
	delete(s.dialogs, msg.CallID())
	s.dialogMu.Unlock(t)

	if d != nil {
		// Call-detail record built from the dialog's strings after the lock
		// was dropped (Fig. 8 mix again, one site per copied field).
		t.SetLine(219)
		cdrFrom := d.from.Copy(t)
		t.SetLine(220)
		cdrTo := d.to.Copy(t)
		cdrFrom.Release(t)
		cdrTo.Release(t)
		for i, h := range d.hdrs {
			t.SetLine(224 + i)
			v := h.value.Copy(t)
			v.Release(t)
		}
		s.destroyDialog(t, d)
		if s.cfg.Bugs.GaugeRace {
			t.SetLine(233)
			s.gauge.Store32(t, 0, s.gauge.Load32(t, 0)-1)
		}
	}
	s.bumpStat(t, "byes")
	s.respond(t, msg, 200, "OK")
}

// destroyDialog deletes the dialog and transaction objects — typically from
// a thread other than the one that created them (§4.2.1's FP family). The
// transaction is unlinked from the retransmission table under the lock but
// deleted outside it.
func (s *Server) destroyDialog(t *vm.Thread, d *dialog) {
	pop := t.Func("Proxy::destroyDialog", "proxy.cpp", 240)
	defer pop()
	d.obj.VCall(t, "onTerminate", nil)
	s.transMu.Lock(t)
	for _, branch := range sortedKeys(s.transactions) {
		if s.transactions[branch] == d.trans {
			delete(s.transactions, branch)
			break
		}
	}
	s.transMu.Unlock(t)
	s.rt.Delete(t, d.obj)
	s.rt.Delete(t, d.trans)
	for _, h := range d.hdrs {
		h.value.Release(t)
		s.rt.Delete(t, h.obj)
	}
	d.callID.Release(t)
	d.from.Release(t)
	d.to.Release(t)
}

func (s *Server) handleCancel(t *vm.Thread, msg *Message, mo *messageObject) {
	pop := t.Func("Proxy::handleCancel", "proxy.cpp", 260)
	defer pop()
	s.lockGuarded(t, s.dialogMu)
	d := s.dialogs[msg.CallID()]
	delete(s.dialogs, msg.CallID())
	s.dialogMu.Unlock(t)
	if d != nil {
		s.destroyDialog(t, d)
		if s.cfg.Bugs.GaugeRace {
			t.SetLine(272)
			s.gauge.Store32(t, 0, s.gauge.Load32(t, 0)-1)
		}
		s.respond(t, msg, 487, "Request Terminated")
	} else {
		s.respond(t, msg, 481, "Transaction Does Not Exist")
	}
}

func (s *Server) handleOptions(t *vm.Thread, msg *Message, mo *messageObject) {
	pop := t.Func("Proxy::handleOptions", "proxy.cpp", 300)
	defer pop()
	// Capability string: initialised once by main, copied by every worker
	// without a lock (read-mostly shared rep).
	t.SetLine(303)
	caps := s.caps.Copy(t)
	capsVal := caps.Get(t)
	caps.Release(t)
	s.bumpStat(t, "options")
	resp := NewResponse(200, "OK")
	resp.SetHeader("Allow", capsVal)
	resp.SetHeader("Call-ID", msg.CallID())
	s.respondRaw(t, resp.Serialize())
}

// ---- helpers ----

// lockGuarded is the application's deadlock-monitored lock acquisition
// (§3.3): a timed lock with bookkeeping. The bookkeeping itself is the §4.1
// seeded race when Bugs.DeadlockMonitorRace is on.
func (s *Server) lockGuarded(t *vm.Thread, m *vm.Mutex) {
	if !s.cfg.Bugs.DeadlockMonitorRace {
		m.Lock(t)
		return
	}
	pop := t.Func("DeadlockMonitor::lock", "dlmon.cpp", 25)
	defer pop()
	// Racy bookkeeping: plain read-modify-write of shared counters.
	s.monitor.Store32(t, 0, s.monitor.Load32(t, 0)+1)
	for !m.LockTimeout(t, s.cfg.LockTimeout) {
		t.SetLine(31)
		s.monitor.Store32(t, 4, s.monitor.Load32(t, 4)+1) // suspected deadlocks
	}
	s.monitor.Store32(t, 0, s.monitor.Load32(t, 0)-1)
}

func (s *Server) bumpStat(t *vm.Thread, field string) {
	pop := t.Func("StatsRegistry::bump", "stats.cpp", 80)
	defer pop()
	s.statsMu.Lock(t)
	s.stats.Store(t, field, s.stats.Load(t, field)+1)
	s.statsMu.Unlock(t)
}

func (s *Server) respond(t *vm.Thread, req *Message, status int, reason string) {
	pop := t.Func("Transport::respond", "transport.cpp", 50)
	defer pop()
	ro := s.rt.New(t, s.cls.Response)
	ro.Store(t, "status", uint64(status))
	resp := NewResponse(status, reason)
	resp.SetHeader("Call-ID", req.CallID())
	resp.SetHeader("From", req.From())
	resp.SetHeader("To", req.To())
	resp.SetHeader("CSeq", req.Header("CSeq"))
	s.respondRaw(t, resp.Serialize())
	s.rt.Delete(t, ro)
}

func (s *Server) respondRaw(t *vm.Thread, raw string) {
	s.outQ.Put(t, raw)
	s.responses++
}

// log writes an entry to the shared log buffer. Timestamp formatting goes
// through libc's static buffers — unlocked when the LibcStatic bug is on.
func (s *Server) log(t *vm.Thread, what string, line int) {
	pop := t.Func("Logger::log", "logger.cpp", line)
	defer pop()
	if s.cfg.Bugs.LibcStatic {
		s.lc.Localtime(t, t.Now()) // static tm buffer, no lock
		s.logMu.Lock(t)
	} else {
		s.logMu.Lock(t)
		s.lc.Localtime(t, t.Now()) // serialised by the log lock
	}
	s.logBuf.Write(t, 0, 32)
	s.logMu.Unlock(t)
	_ = what
}
