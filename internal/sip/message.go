// Package sip implements the system under test of the paper's evaluation: a
// signalling (SIP proxy/registrar) server in the spirit of the 500 kLOC
// commercial VoIP application of §3.3, shrunk to its concurrency-relevant
// skeleton. It runs as a guest program on internal/vm, builds its domain
// objects through internal/cppmodel (polymorphic messages, transactions,
// dialogs, bindings, copy-on-write strings) and contains the paper's §4.1
// true-bug catalogue behind configuration switches.
package sip

import (
	"fmt"
	"strconv"
	"strings"
)

// Method is a SIP request method.
type Method string

// Supported methods.
const (
	INVITE   Method = "INVITE"
	ACK      Method = "ACK"
	BYE      Method = "BYE"
	CANCEL   Method = "CANCEL"
	OPTIONS  Method = "OPTIONS"
	REGISTER Method = "REGISTER"
)

// Methods lists all supported methods.
var Methods = []Method{INVITE, ACK, BYE, CANCEL, OPTIONS, REGISTER}

// Message is a parsed SIP message (request or response).
type Message struct {
	// Request fields.
	Method Method
	URI    string
	// Response fields.
	Status int
	Reason string

	headerOrder []string
	headers     map[string][]string
	Body        string
}

// NewRequest builds a request message.
func NewRequest(m Method, uri string) *Message {
	return &Message{Method: m, URI: uri, headers: make(map[string][]string)}
}

// NewResponse builds a response message.
func NewResponse(status int, reason string) *Message {
	return &Message{Status: status, Reason: reason, headers: make(map[string][]string)}
}

// IsRequest reports whether the message is a request.
func (m *Message) IsRequest() bool { return m.Method != "" }

// AddHeader appends a header value.
func (m *Message) AddHeader(name, value string) *Message {
	key := canonicalHeader(name)
	if _, ok := m.headers[key]; !ok {
		m.headerOrder = append(m.headerOrder, key)
	}
	m.headers[key] = append(m.headers[key], value)
	return m
}

// SetHeader replaces a header.
func (m *Message) SetHeader(name, value string) *Message {
	key := canonicalHeader(name)
	if _, ok := m.headers[key]; !ok {
		m.headerOrder = append(m.headerOrder, key)
	}
	m.headers[key] = []string{value}
	return m
}

// Header returns the first value of a header ("" when absent).
func (m *Message) Header(name string) string {
	vs := m.headers[canonicalHeader(name)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// HeaderValues returns all values of a header.
func (m *Message) HeaderValues(name string) []string {
	return m.headers[canonicalHeader(name)]
}

// HeaderNames returns the header names in first-seen order.
func (m *Message) HeaderNames() []string {
	return append([]string(nil), m.headerOrder...)
}

// CallID is a convenience accessor.
func (m *Message) CallID() string { return m.Header("Call-ID") }

// From is a convenience accessor.
func (m *Message) From() string { return m.Header("From") }

// To is a convenience accessor.
func (m *Message) To() string { return m.Header("To") }

// CSeq parses the CSeq header, returning sequence and method.
func (m *Message) CSeq() (int, Method) {
	parts := strings.Fields(m.Header("CSeq"))
	if len(parts) != 2 {
		return 0, ""
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, ""
	}
	return n, Method(parts[1])
}

// Serialize renders the message in wire format.
func (m *Message) Serialize() string {
	var b strings.Builder
	if m.IsRequest() {
		fmt.Fprintf(&b, "%s %s SIP/2.0\r\n", m.Method, m.URI)
	} else {
		fmt.Fprintf(&b, "SIP/2.0 %d %s\r\n", m.Status, m.Reason)
	}
	for _, name := range m.headerOrder {
		for _, v := range m.headers[name] {
			fmt.Fprintf(&b, "%s: %s\r\n", name, v)
		}
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n%s", len(m.Body), m.Body)
	return b.String()
}

// Parse decodes a wire-format message. It accepts both \r\n and \n line
// endings.
func Parse(raw string) (*Message, error) {
	raw = strings.ReplaceAll(raw, "\r\n", "\n")
	head, body, _ := strings.Cut(raw, "\n\n")
	lines := strings.Split(head, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("sip: empty message")
	}
	msg, err := parseStartLine(strings.TrimSpace(lines[0]))
	if err != nil {
		return nil, err
	}
	declaredLen := -1
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("sip: malformed header line %d: %q", i+2, line)
		}
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		if name == "" {
			return nil, fmt.Errorf("sip: empty header name on line %d", i+2)
		}
		if canonicalHeader(name) == "Content-Length" {
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sip: bad Content-Length %q", value)
			}
			declaredLen = n
			continue
		}
		msg.AddHeader(name, value)
	}
	if declaredLen >= 0 && declaredLen <= len(body) {
		body = body[:declaredLen]
	}
	msg.Body = body
	if msg.IsRequest() {
		if msg.CallID() == "" {
			return nil, fmt.Errorf("sip: request without Call-ID")
		}
		if msg.From() == "" || msg.To() == "" {
			return nil, fmt.Errorf("sip: request without From/To")
		}
	}
	return msg, nil
}

func parseStartLine(line string) (*Message, error) {
	if strings.HasPrefix(line, "SIP/2.0 ") {
		rest := strings.TrimPrefix(line, "SIP/2.0 ")
		code, reason, _ := strings.Cut(rest, " ")
		status, err := strconv.Atoi(code)
		if err != nil || status < 100 || status > 699 {
			return nil, fmt.Errorf("sip: bad status line %q", line)
		}
		return NewResponse(status, reason), nil
	}
	parts := strings.Fields(line)
	if len(parts) != 3 || parts[2] != "SIP/2.0" {
		return nil, fmt.Errorf("sip: bad request line %q", line)
	}
	method := Method(parts[0])
	if !validMethod(method) {
		return nil, fmt.Errorf("sip: unknown method %q", parts[0])
	}
	if !strings.HasPrefix(parts[1], "sip:") {
		return nil, fmt.Errorf("sip: bad request URI %q", parts[1])
	}
	return NewRequest(method, parts[1]), nil
}

func validMethod(m Method) bool {
	for _, k := range Methods {
		if m == k {
			return true
		}
	}
	return false
}

// canonicalHeader normalises header capitalisation (Call-ID, CSeq, Via, ...).
func canonicalHeader(name string) string {
	switch strings.ToLower(name) {
	case "call-id":
		return "Call-ID"
	case "cseq":
		return "CSeq"
	case "content-length":
		return "Content-Length"
	}
	parts := strings.Split(strings.ToLower(name), "-")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "-")
}

// UserOf extracts the user part of a sip: URI ("sip:alice@host" -> "alice").
func UserOf(uri string) string {
	s := strings.TrimPrefix(uri, "sip:")
	user, _, ok := strings.Cut(s, "@")
	if !ok {
		return s
	}
	return user
}

// DomainOf extracts the host part of a sip: URI ("sip:alice@host" -> "host").
func DomainOf(uri string) string {
	s := strings.TrimPrefix(uri, "sip:")
	_, host, ok := strings.Cut(s, "@")
	if !ok {
		return s
	}
	if i := strings.IndexAny(host, ";:"); i >= 0 {
		host = host[:i]
	}
	return host
}
