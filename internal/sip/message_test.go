package sip

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRequest(t *testing.T) {
	raw := "INVITE sip:bob@b.example.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP client.a.example.com\r\n" +
		"From: sip:alice@a.example.com\r\n" +
		"To: sip:bob@b.example.com\r\n" +
		"Call-ID: abc123@client\r\n" +
		"CSeq: 1 INVITE\r\n" +
		"Contact: sip:alice@client.a.example.com\r\n" +
		"Content-Length: 8\r\n\r\nv=0 o=-x"
	m, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !m.IsRequest() || m.Method != INVITE {
		t.Errorf("method = %v", m.Method)
	}
	if m.URI != "sip:bob@b.example.com" {
		t.Errorf("uri = %q", m.URI)
	}
	if m.CallID() != "abc123@client" {
		t.Errorf("callid = %q", m.CallID())
	}
	seq, method := m.CSeq()
	if seq != 1 || method != INVITE {
		t.Errorf("cseq = %d %v", seq, method)
	}
	if m.Body != "v=0 o=-x" {
		t.Errorf("body = %q", m.Body)
	}
}

func TestParseResponse(t *testing.T) {
	raw := "SIP/2.0 200 OK\r\nCall-ID: x@y\r\nContent-Length: 0\r\n\r\n"
	m, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.IsRequest() || m.Status != 200 || m.Reason != "OK" {
		t.Errorf("status = %d %q", m.Status, m.Reason)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOO sip:x SIP/2.0\r\nCall-ID: a\r\nFrom: b\r\nTo: c\r\n\r\n", // unknown method
		"INVITE bob SIP/2.0\r\nCall-ID: a\r\n\r\n",                    // bad URI
		"INVITE sip:bob@x SIP/2.0\r\nFrom: a\r\nTo: b\r\n\r\n",        // missing Call-ID
		"INVITE sip:bob@x SIP/2.0\r\nCall-ID: a\r\n\r\n",              // missing From/To
		"SIP/2.0 abc OK\r\n\r\n",                                      // bad status
		"SIP/2.0 99 Weird\r\n\r\n",                                    // out-of-range status
		"INVITE sip:bob@x SIP/2.0\r\nNoColonHere\r\n\r\n",             // malformed header
		"INVITE sip:bob@x SIP/2.0\r\nContent-Length: -4\r\n\r\n",      // bad length
		"INVITE sip:bob@x\r\n\r\n",                                    // bad request line
	}
	for _, raw := range bad {
		if _, err := Parse(raw); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", raw)
		}
	}
}

func TestHeaderCanonicalisation(t *testing.T) {
	m := NewRequest(OPTIONS, "sip:x")
	m.SetHeader("call-id", "a")
	m.SetHeader("CSEQ", "1 OPTIONS")
	m.SetHeader("content-type", "application/sdp")
	if m.Header("Call-ID") != "a" {
		t.Error("call-id canonicalisation failed")
	}
	if m.Header("CSeq") != "1 OPTIONS" {
		t.Error("cseq canonicalisation failed")
	}
	if m.Header("Content-Type") != "application/sdp" {
		t.Error("hyphenated canonicalisation failed")
	}
}

func TestMultiValueHeaders(t *testing.T) {
	m := NewRequest(INVITE, "sip:x@y")
	m.AddHeader("Via", "hop1")
	m.AddHeader("Via", "hop2")
	if got := m.HeaderValues("Via"); len(got) != 2 || got[0] != "hop1" || got[1] != "hop2" {
		t.Errorf("via values = %v", got)
	}
	wire := m.Serialize()
	if strings.Count(wire, "Via:") != 2 {
		t.Errorf("serialized Via count wrong:\n%s", wire)
	}
}

func TestRoundTripProperty(t *testing.T) {
	methods := Methods
	prop := func(mIdx uint8, user, host string, seq uint16, body string) bool {
		user = sanitizeToken(user)
		host = sanitizeToken(host)
		if user == "" {
			user = "u"
		}
		if host == "" {
			host = "h"
		}
		body = strings.Map(func(r rune) rune {
			if r == '\r' || r == '\n' {
				return '.'
			}
			return r
		}, body)
		method := methods[int(mIdx)%len(methods)]
		m := NewRequest(method, fmt.Sprintf("sip:%s@%s", user, host))
		m.SetHeader("Via", "SIP/2.0/UDP somewhere")
		m.SetHeader("From", fmt.Sprintf("sip:%s@%s", user, host))
		m.SetHeader("To", fmt.Sprintf("sip:peer@%s", host))
		m.SetHeader("Call-ID", fmt.Sprintf("%s-%d@x", user, seq))
		m.SetHeader("CSeq", fmt.Sprintf("%d %s", seq, method))
		m.Body = body

		parsed, err := Parse(m.Serialize())
		if err != nil {
			return false
		}
		return parsed.Method == m.Method &&
			parsed.URI == m.URI &&
			parsed.CallID() == m.CallID() &&
			parsed.From() == m.From() &&
			parsed.To() == m.To() &&
			parsed.Body == m.Body
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitizeToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() > 12 {
		return b.String()[:12]
	}
	return b.String()
}

func TestUserAndDomainOf(t *testing.T) {
	cases := []struct {
		uri, user, domain string
	}{
		{"sip:alice@a.example.com", "alice", "a.example.com"},
		{"sip:bob@h;transport=udp", "bob", "h"},
		{"sip:host.only", "host.only", "host.only"},
		{"sip:x@h:5060", "x", "h"},
	}
	for _, c := range cases {
		if got := UserOf(c.uri); got != c.user {
			t.Errorf("UserOf(%q) = %q, want %q", c.uri, got, c.user)
		}
		if got := DomainOf(c.uri); got != c.domain {
			t.Errorf("DomainOf(%q) = %q, want %q", c.uri, got, c.domain)
		}
	}
}

func TestContentLengthTruncation(t *testing.T) {
	raw := "OPTIONS sip:h SIP/2.0\r\nFrom: a\r\nTo: b\r\nCall-ID: c\r\nContent-Length: 3\r\n\r\nabcdef"
	m, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Body != "abc" {
		t.Errorf("body = %q, want %q", m.Body, "abc")
	}
}
