package sip

import (
	"repro/internal/cppmodel"
	"repro/internal/vm"
)

// Classes bundles the server's C++ class hierarchy — the polymorphic object
// families whose construction, virtual dispatch and (cross-thread)
// destruction generate the access patterns of §4.2. One instance is shared
// by a Server and its tests.
type Classes struct {
	MessageBase *cppmodel.Class
	Request     *cppmodel.Class
	Invite      *cppmodel.Class
	Ack         *cppmodel.Class
	Bye         *cppmodel.Class
	Cancel      *cppmodel.Class
	Options     *cppmodel.Class
	Register    *cppmodel.Class
	Response    *cppmodel.Class

	TransactionBase   *cppmodel.Class
	ServerTransaction *cppmodel.Class

	DialogBase   *cppmodel.Class
	InviteDialog *cppmodel.Class

	Binding    *cppmodel.Class
	DomainData *cppmodel.Class

	HeaderBase    *cppmodel.Class
	ViaHeader     *cppmodel.Class
	FromHeader    *cppmodel.Class
	ToHeader      *cppmodel.Class
	CallIDHeader  *cppmodel.Class
	CSeqHeader    *cppmodel.Class
	ContactHeader *cppmodel.Class
	UAHeader      *cppmodel.Class

	byMethod map[Method]*cppmodel.Class
}

// NewClasses builds the hierarchy. The base classes carry destructor bodies
// that reset their own fields — the compiler-generated-plus-user destructor
// writes that, together with the vptr rewrites, form the §4.2.1 false
// positive family.
func NewClasses() *Classes {
	c := &Classes{}
	c.MessageBase = cppmodel.NewClass("MessageBase", "message.h",
		cppmodel.Field{Name: "kind", Size: 4},
		cppmodel.Field{Name: "recvTime", Size: 8})
	c.MessageBase.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "kind", 0)
	}
	c.Request = c.MessageBase.Derive("SIPRequest", "request.h",
		cppmodel.Field{Name: "cseq", Size: 4})
	c.Invite = c.Request.Derive("InviteRequest", "invite.h",
		cppmodel.Field{Name: "sdpLen", Size: 4})
	c.Ack = c.Request.Derive("AckRequest", "ack.h")
	c.Bye = c.Request.Derive("ByeRequest", "bye.h")
	c.Cancel = c.Request.Derive("CancelRequest", "cancel.h")
	c.Options = c.Request.Derive("OptionsRequest", "options.h")
	c.Register = c.Request.Derive("RegisterRequest", "register.h",
		cppmodel.Field{Name: "expires", Size: 4})
	c.Response = c.MessageBase.Derive("SIPResponse", "response.h",
		cppmodel.Field{Name: "status", Size: 4})

	c.TransactionBase = cppmodel.NewClass("TransactionBase", "transaction.h",
		cppmodel.Field{Name: "state", Size: 4},
		cppmodel.Field{Name: "retransmits", Size: 4})
	c.TransactionBase.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "state", 0) // terminated
	}
	c.ServerTransaction = c.TransactionBase.Derive("ServerTransaction", "transaction.h",
		cppmodel.Field{Name: "lastStatus", Size: 4})
	c.ServerTransaction.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "lastStatus", 0)
	}

	c.DialogBase = cppmodel.NewClass("DialogBase", "dialog.h",
		cppmodel.Field{Name: "state", Size: 4},
		cppmodel.Field{Name: "lastActivity", Size: 8})
	c.DialogBase.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "state", 0) // dead
	}
	c.InviteDialog = c.DialogBase.Derive("InviteDialog", "dialog.h",
		cppmodel.Field{Name: "localSeq", Size: 4},
		cppmodel.Field{Name: "remoteSeq", Size: 4})
	c.InviteDialog.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "remoteSeq", 0)
	}

	c.Binding = cppmodel.NewClass("Binding", "registrar.h",
		cppmodel.Field{Name: "expires", Size: 4},
		cppmodel.Field{Name: "flags", Size: 4})
	c.Binding.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "flags", 0)
	}
	c.DomainData = cppmodel.NewClass("DomainData", "domains.h",
		cppmodel.Field{Name: "priority", Size: 4},
		cppmodel.Field{Name: "failovers", Size: 4})

	// Parsed header fields are polymorphic objects too (HeaderFieldImpl
	// hierarchy): they live inside dialogs and bindings and are destroyed by
	// whichever worker tears the parent down.
	c.HeaderBase = cppmodel.NewClass("HeaderFieldBase", "headers.h",
		cppmodel.Field{Name: "hash", Size: 4},
		cppmodel.Field{Name: "parsed", Size: 4})
	c.HeaderBase.Dtor = func(t *vm.Thread, o *cppmodel.Object) {
		o.Store(t, "parsed", 0)
	}
	c.ViaHeader = c.HeaderBase.Derive("ViaHeader", "headers.h",
		cppmodel.Field{Name: "branch", Size: 4})
	c.FromHeader = c.HeaderBase.Derive("FromHeader", "headers.h",
		cppmodel.Field{Name: "tag", Size: 4})
	c.ToHeader = c.HeaderBase.Derive("ToHeader", "headers.h",
		cppmodel.Field{Name: "tag", Size: 4})
	c.CallIDHeader = c.HeaderBase.Derive("CallIDHeader", "headers.h",
		cppmodel.Field{Name: "host", Size: 4})
	c.CSeqHeader = c.HeaderBase.Derive("CSeqHeader", "headers.h",
		cppmodel.Field{Name: "seq", Size: 4})
	c.ContactHeader = c.HeaderBase.Derive("ContactHeader", "headers.h",
		cppmodel.Field{Name: "expires", Size: 4})
	c.UAHeader = c.HeaderBase.Derive("UserAgentHeader", "headers.h",
		cppmodel.Field{Name: "vendor", Size: 4})

	c.byMethod = map[Method]*cppmodel.Class{
		INVITE:   c.Invite,
		ACK:      c.Ack,
		BYE:      c.Bye,
		CANCEL:   c.Cancel,
		OPTIONS:  c.Options,
		REGISTER: c.Register,
	}
	return c
}

// DialogHeaders returns the header classes a dialog retains, in order.
func (c *Classes) DialogHeaders() []*cppmodel.Class {
	return []*cppmodel.Class{c.ViaHeader, c.FromHeader, c.ToHeader, c.CallIDHeader, c.CSeqHeader, c.ContactHeader}
}

// ForMethod returns the request class for a method.
func (c *Classes) ForMethod(m Method) *cppmodel.Class {
	if cls, ok := c.byMethod[m]; ok {
		return cls
	}
	return c.Request
}
