package sip

import (
	"fmt"

	"repro/internal/cppmodel"
	"repro/internal/vm"
)

// DomainDataManager owns the per-domain routing data. It contains the
// paper's Fig. 7 bug behind a switch: getDomainData() takes the guarding
// mutex only for the duration of RETURNING the reference —
//
//	map<string,DomainData*> & ServerModulesManagerImpl::getDomainData()
//	{
//	    MutexPtr mut(m_pMutex); // Guard
//	    return m_DomainData;
//	}
//
// — so callers iterate the live map unguarded while the refresher thread
// mutates it under the lock. "This bug requires to rewrite the function and
// all functions that use it" (§4.1.2); the fixed variant (RefReturn=false)
// holds the lock across the iteration.
type DomainDataManager struct {
	rt        *cppmodel.Runtime
	mu        *vm.Mutex
	data      *cppmodel.Map
	entries   map[string]*domainEntry
	refReturn bool // Fig. 7 bug enabled
	refreshes int
}

type domainEntry struct {
	obj     *cppmodel.Object
	gateway *cppmodel.CowString
}

// NewDomainDataManager builds routing data for the given domains. Call from
// the main thread during server initialisation.
func NewDomainDataManager(t *vm.Thread, cls *Classes, rt *cppmodel.Runtime, domains []string, refReturnBug bool) *DomainDataManager {
	m := &DomainDataManager{
		rt:        rt,
		mu:        t.VM().NewMutex("domainMu"),
		data:      rt.NewMap("domain-map"),
		entries:   make(map[string]*domainEntry),
		refReturn: refReturnBug,
	}
	for i, d := range domains {
		obj := rt.New(t, cls.DomainData)
		obj.Store(t, "priority", uint64(i+1))
		gw := rt.NewCowString(t, "gw."+d)
		m.entries[d] = &domainEntry{obj: obj, gateway: gw}
		m.data.Put(t, d, d)
	}
	return m
}

// getDomainData is the Fig. 7 getter: the guard protects only the return.
func (m *DomainDataManager) getDomainData(t *vm.Thread) *cppmodel.Map {
	pop := t.Func("ServerModulesManagerImpl::getDomainData", "modules.cpp", 211)
	defer pop()
	m.mu.Lock(t)
	m.mu.Unlock(t) // MutexPtr guard goes out of scope with the return
	return m.data
}

// Route picks the best-priority domain entry for the target domain and
// returns a COPY of its gateway string. With the Fig. 7 bug the iteration
// and the priority reads run without the lock.
func (m *DomainDataManager) Route(t *vm.Thread, domain string) (*cppmodel.CowString, bool) {
	pop := t.Func("ServerModulesManagerImpl::route", "modules.cpp", 240)
	defer pop()
	var found *domainEntry
	scan := func() {
		m.data.ForEach(t, func(k string, _ any) {
			e := m.entries[k]
			e.obj.Load(t, "priority") // compare priorities
			if k == domain {
				found = e
			}
		})
	}
	if m.refReturn {
		dd := m.getDomainData(t)
		_ = dd
		scan() // iterating the returned reference WITHOUT the guard
	} else {
		m.mu.Lock(t)
		scan()
		m.mu.Unlock(t)
	}
	if found == nil {
		return nil, false
	}
	// The gateway string is copied after the guard is gone in both variants:
	// the string itself is reference counted, which is safe on real hardware
	// (bus-locked counts) but confuses the original bus-lock model.
	t.SetLine(262)
	return found.gateway.Copy(t), true
}

// Refresh is called periodically by the refresher thread: it updates
// priorities and rewrites map nodes under the lock.
func (m *DomainDataManager) Refresh(t *vm.Thread) {
	pop := t.Func("ServerModulesManagerImpl::refreshDomains", "modules.cpp", 300)
	defer pop()
	m.refreshes++
	m.mu.Lock(t)
	i := 0
	for _, k := range m.data.Keys() {
		e := m.entries[k]
		e.obj.Store(t, "priority", uint64((m.refreshes+i)%5+1))
		e.obj.Store(t, "failovers", uint64(m.refreshes))
		m.data.Put(t, k, k) // rewrite the node, as a real refresh would
		i++
	}
	m.mu.Unlock(t)
}

// Shutdown deletes the domain objects (from whatever thread runs shutdown).
func (m *DomainDataManager) Shutdown(t *vm.Thread) {
	pop := t.Func("ServerModulesManagerImpl::shutdown", "modules.cpp", 340)
	defer pop()
	m.mu.Lock(t)
	keys := m.data.Keys()
	m.mu.Unlock(t)
	for _, k := range keys {
		e := m.entries[k]
		e.gateway.Release(t)
		m.rt.Delete(t, e.obj) // deleted outside the guard, by the stopper
		m.data.Delete(t, k)
		delete(m.entries, k)
	}
}

// Refreshes returns how many refresh cycles ran (test helper).
func (m *DomainDataManager) Refreshes() int { return m.refreshes }

func (m *DomainDataManager) String() string {
	return fmt.Sprintf("DomainDataManager(%d domains, refReturn=%v)", len(m.entries), m.refReturn)
}
