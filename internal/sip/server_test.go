package sip

import (
	"strings"
	"testing"

	"repro/internal/cppmodel"
	"repro/internal/libc"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/vm"
)

// serve runs the server with the given config, feeds it messages from a
// client thread, and returns the server plus the collected responses.
func serve(t *testing.T, seed int64, cfg Config, det *lockset.Config, msgs []string) (*Server, []string, *report.Collector) {
	t.Helper()
	v := vm.New(vm.Options{Seed: seed, Quantum: 3})
	var col *report.Collector
	if det != nil {
		col = report.NewCollector(v, nil)
		v.AddTool(lockset.New(*det, col))
	}
	rt := cppmodel.NewRuntime(cppmodel.Options{
		ForceNew:        true,
		AnnotateDeletes: det != nil && det.Destruct,
	})
	var srv *Server
	var responses []string
	err := v.Run(func(main *vm.Thread) {
		lc := libc.New(main)
		srv = NewServer(v, rt, lc, cfg)
		srv.Start(main)
		sink := main.Go("sink", func(th *vm.Thread) {
			for {
				r, ok := srv.Responses().Get(th)
				if !ok {
					return
				}
				responses = append(responses, r.(string))
			}
		})
		client := main.Go("client", func(th *vm.Thread) {
			for _, m := range msgs {
				srv.Inject(th, m)
				th.Sleep(300)
			}
		})
		main.Join(client)
		srv.Stop(main)
		main.Join(sink)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return srv, responses, col
}

func request(method Method, callID, user string, seq int) string {
	m := NewRequest(method, "sip:peer@a.example.com")
	m.SetHeader("Via", "SIP/2.0/UDP client")
	m.SetHeader("From", "sip:"+user+"@a.example.com")
	m.SetHeader("To", "sip:peer@a.example.com")
	m.SetHeader("Call-ID", callID)
	m.SetHeader("CSeq", formatCSeq(seq, method))
	m.SetHeader("Contact", "sip:"+user+"@client")
	return m.Serialize()
}

func formatCSeq(seq int, m Method) string {
	return strings.TrimSpace(strings.Join([]string{itoa(seq), string(m)}, " "))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestRegisterCreatesBinding(t *testing.T) {
	srv, responses, _ := serve(t, 1, Config{Bugs: NoBugs()}, nil, []string{
		request(REGISTER, "r1", "alice", 1),
	})
	if srv.Handled() != 1 {
		t.Errorf("handled = %d, want 1", srv.Handled())
	}
	if len(responses) != 1 || !strings.Contains(responses[0], "200 OK") {
		t.Errorf("responses = %v, want one 200 OK", responses)
	}
}

func TestCallFlowCreatesAndDestroysDialog(t *testing.T) {
	srv, responses, _ := serve(t, 1, Config{Bugs: NoBugs()}, nil, []string{
		request(INVITE, "call1", "alice", 1),
		request(ACK, "call1", "alice", 1),
		request(BYE, "call1", "alice", 2),
	})
	if srv.Handled() != 3 {
		t.Fatalf("handled = %d, want 3", srv.Handled())
	}
	// INVITE -> 180 + 200; BYE -> 200.
	var ok200, ringing int
	for _, r := range responses {
		if strings.Contains(r, "180 Ringing") {
			ringing++
		}
		if strings.Contains(r, "200 OK") {
			ok200++
		}
	}
	if ringing != 1 || ok200 != 2 {
		t.Errorf("ringing=%d ok=%d, want 1 and 2", ringing, ok200)
	}
}

func TestCancelWithoutDialog(t *testing.T) {
	_, responses, _ := serve(t, 1, Config{Bugs: NoBugs()}, nil, []string{
		request(CANCEL, "nope", "alice", 1),
	})
	if len(responses) != 1 || !strings.Contains(responses[0], "481") {
		t.Errorf("responses = %v, want 481", responses)
	}
}

func TestMalformedGets400(t *testing.T) {
	_, responses, _ := serve(t, 1, Config{Bugs: NoBugs()}, nil, []string{
		"GARBAGE\r\n\r\n",
	})
	if len(responses) != 1 || !strings.Contains(responses[0], "400") {
		t.Errorf("responses = %v, want 400", responses)
	}
}

func TestOptionsAdvertisesCapabilities(t *testing.T) {
	_, responses, _ := serve(t, 1, Config{Bugs: NoBugs()}, nil, []string{
		request(OPTIONS, "opt1", "alice", 1),
	})
	if len(responses) != 1 || !strings.Contains(responses[0], "INVITE,ACK,BYE") {
		t.Errorf("responses = %v, want Allow capabilities", responses)
	}
}

func TestNoBugsNoDetectableTrueRaces(t *testing.T) {
	// With the whole §4.1 catalogue fixed and the strongest detector
	// configuration, only the known FP families may remain — and DR plus
	// HWLC remove those, so the run must be almost silent. Allow the
	// benign/other families zero here because BenignCounter is off.
	det := lockset.ConfigHWLCDR()
	cfgBugs := Config{Bugs: NoBugs()}
	_, _, col := serve(t, 1, cfgBugs, &det, []string{
		request(REGISTER, "r1", "alice", 1),
		request(INVITE, "c1", "alice", 1),
		request(ACK, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
		request(OPTIONS, "o1", "alice", 1),
	})
	if col.Locations() != 0 {
		t.Errorf("bug-free server under HWLC+DR reported %d locations:\n%s",
			col.Locations(), col.Format())
	}
}

func TestBugsProduceWarnings(t *testing.T) {
	det := lockset.ConfigHWLCDR()
	_, _, col := serve(t, 1, Config{Bugs: PaperBugs()}, &det, []string{
		request(REGISTER, "r1", "alice", 1),
		request(INVITE, "c1", "alice", 1),
		request(ACK, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
	})
	if col.Locations() == 0 {
		t.Error("seeded bugs produced no warnings under HWLC+DR")
	}
}

func TestDeadlockMonitorRaceDetected(t *testing.T) {
	// §4.1: "One of the first reported data races was in the application's
	// deadlock detection code."
	det := lockset.ConfigHWLCDR()
	bugs := NoBugs()
	bugs.DeadlockMonitorRace = true
	_, _, col := serve(t, 1, Config{Bugs: bugs}, &det, []string{
		request(REGISTER, "r1", "alice", 1),
		request(REGISTER, "r2", "bob", 1),
		request(INVITE, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
	})
	if !strings.Contains(col.Format(), "DeadlockMonitor::lock") {
		t.Errorf("deadlock-monitor race not reported:\n%s", col.Format())
	}
}

func TestThreadPoolModeProcessesAll(t *testing.T) {
	cfg := Config{Pattern: ThreadPool, Workers: 3, Bugs: NoBugs()}
	srv, responses, _ := serve(t, 1, cfg, nil, []string{
		request(REGISTER, "r1", "alice", 1),
		request(INVITE, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
		request(OPTIONS, "o1", "alice", 1),
	})
	if srv.Handled() != 4 {
		t.Errorf("handled = %d, want 4", srv.Handled())
	}
	if len(responses) < 4 {
		t.Errorf("responses = %d, want >= 4", len(responses))
	}
}

func TestReRegisterReplacesBinding(t *testing.T) {
	srv, responses, _ := serve(t, 1, Config{Bugs: NoBugs()}, nil, []string{
		request(REGISTER, "r1", "alice", 1),
		request(REGISTER, "r2", "alice", 2),
	})
	if srv.Handled() != 2 {
		t.Errorf("handled = %d", srv.Handled())
	}
	if len(responses) != 2 {
		t.Errorf("responses = %d, want 2", len(responses))
	}
}

func TestServerDeterministic(t *testing.T) {
	msgs := []string{
		request(REGISTER, "r1", "alice", 1),
		request(INVITE, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
	}
	det := lockset.ConfigOriginal()
	_, _, col1 := serve(t, 9, Config{Bugs: PaperBugs()}, &det, msgs)
	_, _, col2 := serve(t, 9, Config{Bugs: PaperBugs()}, &det, msgs)
	if col1.Locations() != col2.Locations() {
		t.Errorf("same seed, different locations: %d vs %d", col1.Locations(), col2.Locations())
	}
}

func TestTimerRaceDetected(t *testing.T) {
	det := lockset.ConfigHWLCDR()
	bugs := NoBugs()
	bugs.TimerRace = true
	_, _, col := serve(t, 1, Config{Bugs: bugs, TimerInterval: 20}, &det, []string{
		request(INVITE, "c1", "alice", 1),
		request(ACK, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
	})
	if !strings.Contains(col.Format(), "RetransmitTimer::run") {
		t.Errorf("timer race not reported:\n%s", col.Format())
	}
}

func TestTimerMaintainsRetransmits(t *testing.T) {
	// Without bugs, the timer must tick transactions under the lock with no
	// warnings at all.
	det := lockset.ConfigHWLCDR()
	_, _, col := serve(t, 1, Config{Bugs: NoBugs(), TimerInterval: 10}, &det, []string{
		request(INVITE, "c1", "alice", 1),
		request(ACK, "c1", "alice", 1),
		request(BYE, "c1", "alice", 2),
	})
	if col.Locations() != 0 {
		t.Errorf("bug-free timer run reported:\n%s", col.Format())
	}
}
