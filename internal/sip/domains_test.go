package sip

import (
	"testing"

	"repro/internal/cppmodel"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/vm"
)

func domainsFixture(t *testing.T, seed int64, refReturn bool, det *lockset.Config,
	body func(main *vm.Thread, m *DomainDataManager)) *report.Collector {
	t.Helper()
	v := vm.New(vm.Options{Seed: seed, Quantum: 3})
	var col *report.Collector
	if det != nil {
		col = report.NewCollector(v, nil)
		v.AddTool(lockset.New(*det, col))
	}
	rt := cppmodel.NewRuntime(cppmodel.Options{ForceNew: true})
	if err := v.Run(func(main *vm.Thread) {
		m := NewDomainDataManager(main, NewClasses(), rt, []string{"a.example.com", "b.example.com"}, refReturn)
		body(main, m)
		m.Shutdown(main)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return col
}

func TestRouteFindsDomain(t *testing.T) {
	domainsFixture(t, 1, false, nil, func(main *vm.Thread, m *DomainDataManager) {
		gw, ok := m.Route(main, "a.example.com")
		if !ok {
			t.Fatal("route for known domain not found")
		}
		if got := gw.Get(main); got != "gw.a.example.com" {
			t.Errorf("gateway = %q", got)
		}
		gw.Release(main)
		if _, ok := m.Route(main, "unknown.example.com"); ok {
			t.Error("route for unknown domain should fail")
		}
	})
}

func TestRefreshUpdatesPriorities(t *testing.T) {
	domainsFixture(t, 1, false, nil, func(main *vm.Thread, m *DomainDataManager) {
		m.Refresh(main)
		m.Refresh(main)
		if m.Refreshes() != 2 {
			t.Errorf("refreshes = %d, want 2", m.Refreshes())
		}
	})
}

func TestFig7BugDetectedOnlyWhenPresent(t *testing.T) {
	// Concurrent Route (workers) vs Refresh (refresher): with the Fig. 7 bug
	// the iteration runs unguarded and races; with the fixed getter the run
	// is silent.
	scenario := func(main *vm.Thread, m *DomainDataManager) {
		refresher := main.Go("refresher", func(th *vm.Thread) {
			for i := 0; i < 4; i++ {
				m.Refresh(th)
				th.Sleep(3)
			}
		})
		workers := make([]*vm.Thread, 2)
		for i := range workers {
			workers[i] = main.Go("worker", func(th *vm.Thread) {
				for j := 0; j < 4; j++ {
					if gw, ok := m.Route(th, "a.example.com"); ok {
						gw.Release(th)
					}
					th.Sleep(2)
				}
			})
		}
		main.Join(refresher)
		for _, w := range workers {
			main.Join(w)
		}
	}
	det := lockset.ConfigHWLCDR()
	colBuggy := domainsFixture(t, 1, true, &det, scenario)
	if colBuggy.Locations() == 0 {
		t.Error("Fig. 7 returned-reference bug not reported")
	}
	colFixed := domainsFixture(t, 1, false, &det, scenario)
	if colFixed.Locations() != 0 {
		t.Errorf("fixed getter still reported:\n%s", colFixed.Format())
	}
}

func TestClassesHierarchy(t *testing.T) {
	c := NewClasses()
	if !c.Invite.IsA(c.Request) || !c.Invite.IsA(c.MessageBase) {
		t.Error("InviteRequest must derive from SIPRequest and MessageBase")
	}
	if !c.Response.IsA(c.MessageBase) || c.Response.IsA(c.Request) {
		t.Error("SIPResponse derives from MessageBase only")
	}
	for _, m := range Methods {
		if c.ForMethod(m) == nil {
			t.Errorf("no class for method %s", m)
		}
	}
	if c.ForMethod("UNKNOWN") != c.Request {
		t.Error("unknown methods fall back to SIPRequest")
	}
	if len(c.DialogHeaders()) != 6 {
		t.Errorf("dialog headers = %d, want 6", len(c.DialogHeaders()))
	}
	for _, h := range c.DialogHeaders() {
		if !h.IsA(c.HeaderBase) {
			t.Errorf("header class %s must derive from HeaderFieldBase", h.Name)
		}
	}
}
