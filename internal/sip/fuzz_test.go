package sip

import (
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		"INVITE sip:bob@b.example.com SIP/2.0\r\nFrom: a\r\nTo: b\r\nCall-ID: c\r\n\r\n",
		"SIP/2.0 200 OK\r\n\r\n",
		"REGISTER sip:h SIP/2.0\r\nFrom: sip:x@h\r\nTo: sip:x@h\r\nCall-ID: id\r\nContact: sip:x@c\r\nExpires: 3600\r\n\r\n",
		"GARBAGE",
		"INVITE sip:x SIP/2.0\r\nContent-Length: 99\r\n\r\nshort",
		"OPTIONS sip:h SIP/2.0\r\nVia: a\r\nVia: b\r\nFrom: f\r\nTo: t\r\nCall-ID: c\r\n\r\n",
		"BYE sip:x@y SIP/2.0\nFrom: f\nTo: t\nCall-ID: c\nCSeq: 2 BYE\n\n",
		"",
		"\r\n\r\n",
		"INVITE sip:x SIP/2.0\r\n: novalue\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		m, err := Parse(raw)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted messages must re-serialise to something that parses to an
		// equivalent message.
		again, err := Parse(m.Serialize())
		if err != nil {
			t.Fatalf("serialise/reparse failed: %v\noriginal: %q\nwire: %q", err, raw, m.Serialize())
		}
		if again.Method != m.Method || again.Status != m.Status {
			t.Fatalf("round trip changed identity: %v/%d vs %v/%d", m.Method, m.Status, again.Method, again.Status)
		}
		if again.CallID() != m.CallID() || again.Body != m.Body {
			t.Fatalf("round trip changed content: %q/%q vs %q/%q", m.CallID(), m.Body, again.CallID(), again.Body)
		}
	})
}

func FuzzUserDomainOf(f *testing.F) {
	for _, s := range []string{"sip:a@b", "sip:x", "a@b@c", "", "sip:u@h;p=1", "sip:u@h:5060"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, uri string) {
		u := UserOf(uri)
		d := DomainOf(uri)
		if strings.ContainsAny(d, ";:") {
			t.Fatalf("DomainOf(%q) = %q retains parameters", uri, d)
		}
		_ = u
	})
}
