// Package segments maintains the thread-segment graph of Fig. 2 and answers
// happens-before queries between segments under a configurable edge mask.
//
// The VM splits thread timelines at create/join and at higher-level
// synchronisation operations (queue put/get, condition signal/wait, semaphore
// post/wait) and announces each new segment with its incoming edges. A Graph
// built with trace.MaskHelgrind sees only program order and create/join —
// what Helgrind plus the Visual Threads improvement understands — while
// trace.MaskFull additionally honours the higher-level edges (the paper's
// future-work extension that removes the Fig. 11 ownership-transfer false
// positives).
package segments

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

type segment struct {
	thread trace.ThreadID
	thIdx  int32  // dense index of thread — the vc component it owns
	clock  uint32 // this thread's logical clock at segment start
	vc     vclock.VC
}

// Graph is a thread-segment happens-before structure. Segment and thread IDs
// are remapped onto dense indices so lookups on the access hot path (the
// EXCLUSIVE-state ownership-transfer query) are array loads rather than map
// probes, and the per-segment vector clocks are indexed by dense thread
// number, keeping them as short as the number of threads actually seen.
// It is not safe for concurrent use; the VM delivers events sequentially.
type Graph struct {
	mask     trace.EdgeMask
	segIx    trace.Dense // SegmentID -> index into segs
	thIx     trace.Dense // ThreadID -> index into perTh and vc components
	segs     []segment
	perTh    []uint32 // last issued clock per dense thread
	segCount int
}

// NewGraph creates a segment graph honouring the given edge kinds.
func NewGraph(mask trace.EdgeMask) *Graph {
	return &Graph{mask: mask}
}

// Mask returns the edge mask the graph honours.
func (g *Graph) Mask() trace.EdgeMask { return g.mask }

// Len returns the number of segments recorded.
func (g *Graph) Len() int { return g.segCount }

// Add records a new segment from a trace.SegmentStart event. Edges whose
// kind is excluded by the mask are ignored, which weakens — never breaks —
// the happens-before relation the graph reports.
func (g *Graph) Add(ss *trace.SegmentStart) {
	ti := g.thIx.Index(int32(ss.Thread))
	for len(g.perTh) <= ti {
		g.perTh = append(g.perTh, 0)
	}
	clock := g.perTh[ti] + 1
	g.perTh[ti] = clock
	vc := vclock.New(g.thIx.Cap() - 1)
	for _, e := range ss.In {
		if !g.mask.Has(e.Kind) {
			continue
		}
		if fi := g.segIx.Lookup(int32(e.From)); fi >= 0 {
			from := &g.segs[fi]
			vc = vc.Join(from.vc)
			// The predecessor segment itself happened: include its own tick.
			if from.clock > vc.Get(int(from.thIdx)) {
				vc = vc.Set(int(from.thIdx), from.clock)
			}
		}
	}
	vc = vc.Set(ti, clock)
	si := g.segIx.Index(int32(ss.Seg))
	for len(g.segs) <= si {
		g.segs = append(g.segs, segment{})
	}
	g.segs[si] = segment{thread: ss.Thread, thIdx: int32(ti), clock: clock, vc: vc}
	g.segCount++
}

// HappensBefore reports whether segment a fully happens-before segment b;
// that is, every event in a is ordered before every event in b. Equal
// segments are not ordered before themselves.
func (g *Graph) HappensBefore(a, b trace.SegmentID) bool {
	if a == b {
		return false
	}
	ai := g.segIx.Lookup(int32(a))
	bi := g.segIx.Lookup(int32(b))
	if ai < 0 || bi < 0 {
		return false
	}
	sa := &g.segs[ai]
	return g.segs[bi].vc.Get(int(sa.thIdx)) >= sa.clock
}

// Ordered reports whether the two segments are ordered either way.
func (g *Graph) Ordered(a, b trace.SegmentID) bool {
	return a == b || g.HappensBefore(a, b) || g.HappensBefore(b, a)
}

// Thread returns the thread a segment belongs to (0 when unknown).
func (g *Graph) Thread(s trace.SegmentID) trace.ThreadID {
	if si := g.segIx.Lookup(int32(s)); si >= 0 {
		return g.segs[si].thread
	}
	return 0
}
