// Package segments maintains the thread-segment graph of Fig. 2 and answers
// happens-before queries between segments under a configurable edge mask.
//
// The VM splits thread timelines at create/join and at higher-level
// synchronisation operations (queue put/get, condition signal/wait, semaphore
// post/wait) and announces each new segment with its incoming edges. A Graph
// built with trace.MaskHelgrind sees only program order and create/join —
// what Helgrind plus the Visual Threads improvement understands — while
// trace.MaskFull additionally honours the higher-level edges (the paper's
// future-work extension that removes the Fig. 11 ownership-transfer false
// positives).
package segments

import (
	"repro/internal/trace"
	"repro/internal/vclock"
)

type segment struct {
	thread trace.ThreadID
	clock  uint32    // this thread's logical clock at segment start
	vc     vclock.VC // knowledge of all threads at segment start
}

// Graph is a thread-segment happens-before structure. It is not safe for
// concurrent use; the VM delivers events sequentially.
type Graph struct {
	mask     trace.EdgeMask
	segs     map[trace.SegmentID]*segment
	perTh    map[trace.ThreadID]uint32 // last issued clock per thread
	segCount int
}

// NewGraph creates a segment graph honouring the given edge kinds.
func NewGraph(mask trace.EdgeMask) *Graph {
	return &Graph{
		mask:  mask,
		segs:  make(map[trace.SegmentID]*segment),
		perTh: make(map[trace.ThreadID]uint32),
	}
}

// Mask returns the edge mask the graph honours.
func (g *Graph) Mask() trace.EdgeMask { return g.mask }

// Len returns the number of segments recorded.
func (g *Graph) Len() int { return g.segCount }

// Add records a new segment from a trace.SegmentStart event. Edges whose
// kind is excluded by the mask are ignored, which weakens — never breaks —
// the happens-before relation the graph reports.
func (g *Graph) Add(ss *trace.SegmentStart) {
	clock := g.perTh[ss.Thread] + 1
	g.perTh[ss.Thread] = clock
	vc := vclock.New(0)
	for _, e := range ss.In {
		if !g.mask.Has(e.Kind) {
			continue
		}
		if from, ok := g.segs[e.From]; ok {
			vc = vc.Join(from.vc)
			// The predecessor segment itself happened: include its own tick.
			vc = vc.Set(int(from.thread), maxU32(vc.Get(int(from.thread)), from.clock))
		}
	}
	vc = vc.Set(int(ss.Thread), clock)
	g.segs[ss.Seg] = &segment{thread: ss.Thread, clock: clock, vc: vc}
	g.segCount++
}

// HappensBefore reports whether segment a fully happens-before segment b;
// that is, every event in a is ordered before every event in b. Equal
// segments are not ordered before themselves.
func (g *Graph) HappensBefore(a, b trace.SegmentID) bool {
	if a == b {
		return false
	}
	sa, oka := g.segs[a]
	sb, okb := g.segs[b]
	if !oka || !okb {
		return false
	}
	return sb.vc.Get(int(sa.thread)) >= sa.clock
}

// Ordered reports whether the two segments are ordered either way.
func (g *Graph) Ordered(a, b trace.SegmentID) bool {
	return a == b || g.HappensBefore(a, b) || g.HappensBefore(b, a)
}

// Thread returns the thread a segment belongs to (0 when unknown).
func (g *Graph) Thread(s trace.SegmentID) trace.ThreadID {
	if seg, ok := g.segs[s]; ok {
		return seg.thread
	}
	return 0
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
