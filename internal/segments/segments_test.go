package segments

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func seg(id trace.SegmentID, th trace.ThreadID, in ...trace.SegmentEdge) *trace.SegmentStart {
	return &trace.SegmentStart{Seg: id, Thread: th, In: in}
}

func TestCreateJoinOrdering(t *testing.T) {
	g := NewGraph(trace.MaskHelgrind)
	// Fig. 2: main TS1, create -> child TS3 + main TS2, join -> main TS4.
	g.Add(seg(1, 1))
	g.Add(seg(3, 2, trace.SegmentEdge{From: 1, Kind: trace.Create}))
	g.Add(seg(2, 1, trace.SegmentEdge{From: 1, Kind: trace.Program}))
	g.Add(seg(4, 1,
		trace.SegmentEdge{From: 2, Kind: trace.Program},
		trace.SegmentEdge{From: 3, Kind: trace.Join}))

	cases := []struct {
		a, b trace.SegmentID
		want bool
	}{
		{1, 2, true},  // program order
		{1, 3, true},  // create edge
		{1, 4, true},  // transitive
		{3, 4, true},  // join edge
		{2, 3, false}, // concurrent: parent after create vs child
		{3, 2, false},
		{4, 1, false}, // no backwards ordering
		{2, 4, true},
	}
	for _, c := range cases {
		if got := g.HappensBefore(c.a, c.b); got != c.want {
			t.Errorf("HappensBefore(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if g.Ordered(2, 3) {
		t.Error("2 and 3 must be concurrent")
	}
	if !g.Ordered(1, 4) {
		t.Error("1 and 4 must be ordered")
	}
}

func TestMaskFiltersQueueEdges(t *testing.T) {
	build := func(mask trace.EdgeMask) *Graph {
		g := NewGraph(mask)
		g.Add(seg(1, 1))                                                  // producer pre-put
		g.Add(seg(2, 2))                                                  // consumer pre-get
		g.Add(seg(3, 1, trace.SegmentEdge{From: 1, Kind: trace.Program})) // producer post-put
		g.Add(seg(4, 2,
			trace.SegmentEdge{From: 2, Kind: trace.Program},
			trace.SegmentEdge{From: 1, Kind: trace.Queue})) // consumer post-get
		return g
	}
	helgrind := build(trace.MaskHelgrind)
	if helgrind.HappensBefore(1, 4) {
		t.Error("Helgrind mask must ignore queue edges (Fig. 11 false positive)")
	}
	full := build(trace.MaskFull)
	if !full.HappensBefore(1, 4) {
		t.Error("full mask must honour queue edges")
	}
}

func TestSelfNotOrdered(t *testing.T) {
	g := NewGraph(trace.MaskFull)
	g.Add(seg(1, 1))
	if g.HappensBefore(1, 1) {
		t.Error("a segment must not happen-before itself")
	}
	if !g.Ordered(1, 1) {
		t.Error("a segment is trivially ordered with itself")
	}
}

func TestUnknownSegments(t *testing.T) {
	g := NewGraph(trace.MaskFull)
	if g.HappensBefore(5, 6) {
		t.Error("unknown segments must not be ordered")
	}
	if g.Thread(5) != 0 {
		t.Error("unknown segment thread must be 0")
	}
}

// TestChainProperty builds random fork chains and checks that program order
// is always transitively respected and that happens-before is antisymmetric.
func TestChainProperty(t *testing.T) {
	prop := func(lengths []uint8) bool {
		g := NewGraph(trace.MaskHelgrind)
		id := trace.SegmentID(1)
		var prev trace.SegmentID
		var chain []trace.SegmentID
		n := len(lengths)%20 + 2
		for i := 0; i < n; i++ {
			if prev == 0 {
				g.Add(seg(id, 1))
			} else {
				g.Add(seg(id, 1, trace.SegmentEdge{From: prev, Kind: trace.Program}))
			}
			chain = append(chain, id)
			prev = id
			id++
		}
		for i := 0; i < len(chain); i++ {
			for j := i + 1; j < len(chain); j++ {
				if !g.HappensBefore(chain[i], chain[j]) {
					return false
				}
				if g.HappensBefore(chain[j], chain[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDiamondForkJoin(t *testing.T) {
	// main forks two children; both join back. Children concurrent with each
	// other; everything ordered with pre-fork and post-join.
	g := NewGraph(trace.MaskHelgrind)
	g.Add(seg(1, 1))                                                  // main pre-fork
	g.Add(seg(2, 2, trace.SegmentEdge{From: 1, Kind: trace.Create}))  // child A
	g.Add(seg(3, 1, trace.SegmentEdge{From: 1, Kind: trace.Program})) // main between forks
	g.Add(seg(4, 3, trace.SegmentEdge{From: 3, Kind: trace.Create}))  // child B
	g.Add(seg(5, 1, trace.SegmentEdge{From: 3, Kind: trace.Program})) // main after forks
	g.Add(seg(6, 1,
		trace.SegmentEdge{From: 5, Kind: trace.Program},
		trace.SegmentEdge{From: 2, Kind: trace.Join})) // joined A
	g.Add(seg(7, 1,
		trace.SegmentEdge{From: 6, Kind: trace.Program},
		trace.SegmentEdge{From: 4, Kind: trace.Join})) // joined B

	if g.Ordered(2, 4) {
		t.Error("children must be concurrent")
	}
	for _, s := range []trace.SegmentID{2, 4} {
		if !g.HappensBefore(1, s) {
			t.Errorf("pre-fork must order before child %d", s)
		}
		if !g.HappensBefore(s, 7) {
			t.Errorf("child %d must order before post-join", s)
		}
	}
	if !g.HappensBefore(2, 6) {
		t.Error("child A must order before its join segment")
	}
	if g.HappensBefore(4, 6) {
		t.Error("child B must not order before A's join segment")
	}
}

// TestRandomDAGMatchesReference builds random segment DAGs and checks
// HappensBefore against plain BFS reachability over the masked edges — the
// vector-clock implementation must agree with the graph-theoretic truth.
func TestRandomDAGMatchesReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nThreads := 2 + rng.Intn(3)
		perThread := 2 + rng.Intn(5)
		g := NewGraph(trace.MaskHelgrind)

		type node struct {
			id trace.SegmentID
			in []trace.SegmentEdge
		}
		var nodes []node
		id := trace.SegmentID(1)
		last := make([]trace.SegmentID, nThreads+1)
		// Interleave thread timelines; occasionally add a cross edge of a
		// random kind (only Create/Join count under the mask).
		for round := 0; round < perThread; round++ {
			for th := 1; th <= nThreads; th++ {
				var in []trace.SegmentEdge
				if last[th] != 0 {
					in = append(in, trace.SegmentEdge{From: last[th], Kind: trace.Program})
				}
				if rng.Intn(3) == 0 {
					src := 1 + rng.Intn(nThreads)
					if last[src] != 0 && src != th {
						kinds := []trace.EdgeKind{trace.Create, trace.Join, trace.Queue, trace.Cond}
						in = append(in, trace.SegmentEdge{From: last[src], Kind: kinds[rng.Intn(len(kinds))]})
					}
				}
				nodes = append(nodes, node{id: id, in: in})
				g.Add(&trace.SegmentStart{Seg: id, Thread: trace.ThreadID(th), In: in})
				last[th] = id
				id++
			}
		}
		// Reference reachability over masked edges.
		succ := make(map[trace.SegmentID][]trace.SegmentID)
		for _, n := range nodes {
			for _, e := range n.in {
				if trace.MaskHelgrind.Has(e.Kind) {
					succ[e.From] = append(succ[e.From], n.id)
				}
			}
		}
		reaches := func(a, b trace.SegmentID) bool {
			if a == b {
				return false
			}
			seen := map[trace.SegmentID]bool{a: true}
			stack := []trace.SegmentID{a}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, nxt := range succ[cur] {
					if nxt == b {
						return true
					}
					if !seen[nxt] {
						seen[nxt] = true
						stack = append(stack, nxt)
					}
				}
			}
			return false
		}
		for _, a := range nodes {
			for _, b := range nodes {
				if g.HappensBefore(a.id, b.id) != reaches(a.id, b.id) {
					t.Logf("seed %d: HB(%d,%d)=%v, reference=%v", seed, a.id, b.id,
						g.HappensBefore(a.id, b.id), reaches(a.id, b.id))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
