package libc

import (
	"testing"

	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/vm"
)

func TestLocaltimeDecodes(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	if err := v.Run(func(main *vm.Thread) {
		lc := New(main)
		tm := lc.Localtime(main, 3661) // 01:01:01
		if tm.Hour != 1 || tm.Min != 1 || tm.Sec != 1 {
			t.Errorf("tm = %+v, want 01:01:01", tm)
		}
		if got := lc.Asctime(main); got != "01:01:01" {
			t.Errorf("asctime = %q", got)
		}
		if got := lc.Ctime(main, 7322); got != "02:02:02" {
			t.Errorf("ctime = %q", got)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStrtokTokenises(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	if err := v.Run(func(main *vm.Thread) {
		lc := New(main)
		var tokens []string
		for tok := lc.Strtok(main, "a,b,,c", ","); tok != ""; tok = lc.Strtok(main, "", ",") {
			tokens = append(tokens, tok)
		}
		if len(tokens) != 3 || tokens[0] != "a" || tokens[1] != "b" || tokens[2] != "c" {
			t.Errorf("tokens = %v", tokens)
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestConcurrentLocaltimeIsRacy(t *testing.T) {
	// §4.1.3: localtime from two threads without a lock must be reported.
	v := vm.New(vm.Options{Seed: 1})
	col := report.NewCollector(v, nil)
	v.AddTool(lockset.New(lockset.ConfigHWLCDR(), col))
	if err := v.Run(func(main *vm.Thread) {
		lc := New(main)
		w := func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				lc.Localtime(th, int64(i)*100)
			}
		}
		a := main.Go("a", w)
		b := main.Go("b", w)
		main.Join(a)
		main.Join(b)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col.Locations() == 0 {
		t.Error("concurrent localtime not reported")
	}
}

func TestLockedLocaltimeIsSilent(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	col := report.NewCollector(v, nil)
	v.AddTool(lockset.New(lockset.ConfigHWLCDR(), col))
	if err := v.Run(func(main *vm.Thread) {
		lc := New(main)
		m := v.NewMutex("timeMu")
		w := func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				m.Lock(th)
				lc.Localtime(th, int64(i)*100)
				m.Unlock(th)
			}
		}
		a := main.Go("a", w)
		b := main.Go("b", w)
		main.Join(a)
		main.Join(b)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col.Locations() != 0 {
		t.Errorf("locked localtime reported:\n%s", col.Format())
	}
}

func TestConcurrentStrtokSurvives(t *testing.T) {
	// Concurrent strtok is undefined behaviour in C; the simulation must
	// stay memory-safe (garbage results are fine) and be reported as racy.
	for seed := int64(0); seed < 10; seed++ {
		v := vm.New(vm.Options{Seed: seed})
		col := report.NewCollector(v, nil)
		v.AddTool(lockset.New(lockset.ConfigHWLCDR(), col))
		if err := v.Run(func(main *vm.Thread) {
			lc := New(main)
			w := func(s string) func(*vm.Thread) {
				return func(th *vm.Thread) {
					for tok := lc.Strtok(th, s, ","); tok != ""; tok = lc.Strtok(th, "", ",") {
						th.Yield()
					}
				}
			}
			a := main.Go("a", w("one,two,three,four"))
			b := main.Go("b", w("x,y"))
			main.Join(a)
			main.Join(b)
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
