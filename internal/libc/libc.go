// Package libc simulates the thread-unsafe C library functions called out in
// §4.1.3 of the paper: functions that keep their results in static buffers
// ("The four functions asctime(), ctime(), gmtime() and localtime() return a
// pointer to static data and hence are NOT thread-safe"), plus strtok's
// static cursor. Concurrent use from guest threads is a genuine data race
// that the detectors must find.
package libc

import (
	"fmt"
	"strings"

	"repro/internal/vm"
)

// struct tm field offsets inside the static buffer.
const (
	tmOffSec  = 0
	tmOffMin  = 4
	tmOffHour = 8
	tmOffMday = 12
	tmOffMon  = 16
	tmOffYear = 20
	tmSize    = 24
)

// Libc is one process-wide instance of the simulated C library. Allocate it
// once from the main thread before spawning workers, as a real process's
// static storage is set up before main.
type Libc struct {
	tmBuf     *vm.Block // shared static struct tm (localtime/gmtime)
	ascBuf    *vm.Block // static char[26] for asctime/ctime
	strtokSt  *vm.Block // strtok's static cursor
	strtokS   string
	strtokPos int
}

// New allocates the C library's static storage.
func New(t *vm.Thread) *Libc {
	return &Libc{
		tmBuf:    t.Alloc(tmSize, "libc-static-tm"),
		ascBuf:   t.Alloc(32, "libc-static-asctime"),
		strtokSt: t.Alloc(8, "libc-static-strtok"),
	}
}

// Tm is the decoded broken-down time.
type Tm struct {
	Sec, Min, Hour, Mday, Mon, Year int
}

// Localtime converts a unix-ish timestamp into broken-down time by WRITING
// the static buffer and reading it back — the §4.1.3 race when called from
// multiple threads.
func (lc *Libc) Localtime(t *vm.Thread, unix int64) Tm {
	pop := t.Func("localtime", "time.c", 87)
	defer pop()
	sec := int(unix % 60)
	min := int((unix / 60) % 60)
	hour := int((unix / 3600) % 24)
	day := int(unix/86400) % 28
	mon := int(unix/2419200) % 12
	year := 70 + int(unix/29030400)
	lc.tmBuf.Store32(t, tmOffSec, uint32(sec))
	lc.tmBuf.Store32(t, tmOffMin, uint32(min))
	lc.tmBuf.Store32(t, tmOffHour, uint32(hour))
	lc.tmBuf.Store32(t, tmOffMday, uint32(day+1))
	lc.tmBuf.Store32(t, tmOffMon, uint32(mon))
	lc.tmBuf.Store32(t, tmOffYear, uint32(year))
	return Tm{
		Sec:  int(lc.tmBuf.Load32(t, tmOffSec)),
		Min:  int(lc.tmBuf.Load32(t, tmOffMin)),
		Hour: int(lc.tmBuf.Load32(t, tmOffHour)),
		Mday: int(lc.tmBuf.Load32(t, tmOffMday)),
		Mon:  int(lc.tmBuf.Load32(t, tmOffMon)),
		Year: int(lc.tmBuf.Load32(t, tmOffYear)),
	}
}

// Asctime formats the static tm buffer into the static string buffer —
// reads of one static plus writes of another.
func (lc *Libc) Asctime(t *vm.Thread) string {
	pop := t.Func("asctime", "time.c", 143)
	defer pop()
	tm := Tm{
		Sec:  int(lc.tmBuf.Load32(t, tmOffSec)),
		Min:  int(lc.tmBuf.Load32(t, tmOffMin)),
		Hour: int(lc.tmBuf.Load32(t, tmOffHour)),
	}
	lc.ascBuf.Write(t, 0, 26)
	return fmt.Sprintf("%02d:%02d:%02d", tm.Hour, tm.Min, tm.Sec)
}

// Ctime is localtime followed by asctime, as in C.
func (lc *Libc) Ctime(t *vm.Thread, unix int64) string {
	pop := t.Func("ctime", "time.c", 151)
	defer pop()
	lc.Localtime(t, unix)
	return lc.Asctime(t)
}

// Strtok tokenises using a static cursor: pass the string on the first call
// and "" to continue — the classic non-reentrant API.
func (lc *Libc) Strtok(t *vm.Thread, s, sep string) string {
	pop := t.Func("strtok", "string.c", 310)
	defer pop()
	if s != "" {
		lc.strtokSt.Store64(t, 0, uint64(len(s)))
		lc.strtokS = s
		lc.strtokPos = 0
	} else {
		lc.strtokSt.Load64(t, 0)
	}
	// Concurrent unsynchronised use can leave the static cursor pointing
	// into a different (shorter) string — undefined behaviour in C. Keep the
	// simulation memory-safe: clamp, return garbage instead of crashing.
	if lc.strtokPos > len(lc.strtokS) {
		lc.strtokPos = len(lc.strtokS)
	}
	for lc.strtokPos < len(lc.strtokS) && strings.ContainsRune(sep, rune(lc.strtokS[lc.strtokPos])) {
		lc.strtokPos++
	}
	if lc.strtokPos >= len(lc.strtokS) {
		lc.strtokSt.Store64(t, 0, 0)
		return ""
	}
	start := lc.strtokPos
	for lc.strtokPos < len(lc.strtokS) && !strings.ContainsRune(sep, rune(lc.strtokS[lc.strtokPos])) {
		lc.strtokPos++
	}
	lc.strtokSt.Store64(t, 0, uint64(lc.strtokPos))
	if start > lc.strtokPos || lc.strtokPos > len(lc.strtokS) {
		return ""
	}
	return lc.strtokS[start:lc.strtokPos]
}
