package core

import (
	"strings"
	"testing"

	"repro/internal/deadlock"
	"repro/internal/highlevel"
	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/memcheck"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// fullRegistry is the acceptance configuration: three race detectors and all
// three auxiliary checkers in one registry.
func fullRegistry(cfg lockset.Config) []trace.ToolSpec {
	return []trace.ToolSpec{
		lockset.Spec(cfg),
		vectorclock.Spec(vectorclock.DefaultConfig()),
		hybrid.Spec(hybrid.Config{}),
		deadlock.Spec(deadlock.Config{}),
		memcheck.Spec(memcheck.Config{}),
		highlevel.Spec(highlevel.Config{}),
	}
}

// kitchenSink triggers every tool: an unlocked counter race, an ABBA lock
// inversion, a use-after-free and a lock-granularity view split.
func kitchenSink(main *vm.Thread) {
	v := main.VM()
	m1, m2 := v.NewMutex("A"), v.NewMutex("B")
	gate := v.NewSemaphore("gate", 0)
	counter := main.Alloc(4, "counter")
	pair := main.Alloc(8, "pair")
	a := main.Go("a", func(t *vm.Thread) {
		defer t.Func("workerA", "multi.cpp", 10)()
		m1.Lock(t)
		m2.Lock(t)
		pair.Store32(t, 0, 1)
		pair.Store32(t, 4, 1)
		m2.Unlock(t)
		m1.Unlock(t)
		counter.Store32(t, 0, counter.Load32(t, 0)+1)
		gate.Post(t)
	})
	b := main.Go("b", func(t *vm.Thread) {
		defer t.Func("workerB", "multi.cpp", 20)()
		counter.Store32(t, 0, 7) // pre-gate: unordered with a's accesses
		gate.Wait(t)
		m2.Lock(t)
		m1.Lock(t) // ABBA inversion
		pair.Store32(t, 0, 2)
		m1.Unlock(t)
		m2.Unlock(t)
		m2.Lock(t)
		m1.Lock(t)
		pair.Store32(t, 4, 2) // second half in a separate critical section
		m1.Unlock(t)
		m2.Unlock(t)
		counter.Store32(t, 0, counter.Load32(t, 0)+1)
	})
	main.Join(a)
	main.Join(b)
	stale := main.Alloc(8, "stale")
	stale.Free(main)
	stale.Load32(main, 0) // use after free
}

// TestRunMultiToolDeterminism is the acceptance criterion: a single core.Run
// executes lockset + DJIT + hybrid + deadlock + memcheck + highlevel
// concurrently in the sharded engine, and the merged report is byte-identical
// across shard counts 1/4/8 to the sequential single-pass result — under all
// three paper configurations.
func TestRunMultiToolDeterminism(t *testing.T) {
	for name, cfg := range map[string]lockset.Config{
		"Original": lockset.ConfigOriginal(),
		"HWLC":     lockset.ConfigHWLC(),
		"HWLC+DR":  lockset.ConfigHWLCDR(),
	} {
		seq, err := Run(Options{Seed: 5, Tools: fullRegistry(cfg)}, kitchenSink)
		if err != nil || seq.Err != nil {
			t.Fatalf("%s sequential: %v / %v", name, err, seq.Err)
		}
		want := seq.Report()
		toolsSeen := map[string]bool{}
		for _, w := range seq.Collector.Sites() {
			toolsSeen[w.Tool] = true
		}
		for _, tool := range []string{"djit", "helgrind-deadlock", "memcheck", "highlevel"} {
			if !toolsSeen[tool] {
				t.Errorf("%s: tool %s reported nothing; kitchenSink no longer exercises it", name, tool)
			}
		}
		for _, shards := range []int{1, 4, 8} {
			par, err := Run(Options{Seed: 5, Tools: fullRegistry(cfg), Parallel: shards}, kitchenSink)
			if err != nil || par.Err != nil {
				t.Fatalf("%s parallel-%d: %v / %v", name, shards, err, par.Err)
			}
			if got := par.Report(); got != want {
				t.Errorf("%s: parallel-%d report differs from sequential single pass\n--- sequential ---\n%s\n--- parallel ---\n%s",
					name, shards, want, got)
			}
		}
	}
}

// TestRunMultiToolDetectorPointers: the pinned aux instances stay reachable
// for their dynamic counters even when the run is sharded; per-shard
// detectors do not (there is no single instance to return).
func TestRunMultiToolDetectorPointers(t *testing.T) {
	seq, err := Run(Options{Seed: 5, Tools: fullRegistry(lockset.ConfigHWLCDR())}, kitchenSink)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seq.LocksetDetector == nil || seq.DeadlockDetector == nil || seq.MemcheckDetector == nil || seq.HighLevelDetector == nil {
		t.Error("sequential run must surface every single-instance detector")
	}
	if seq.DeadlockDetector.Cycles() == 0 {
		t.Error("ABBA inversion not counted by the deadlock detector")
	}
	if seq.MemcheckDetector.Errors() == 0 {
		t.Error("use-after-free not counted by memcheck")
	}
	if seq.HighLevelDetector.Violations() == 0 {
		t.Error("view split not counted by the view-consistency checker")
	}
	par, err := Run(Options{Seed: 5, Tools: fullRegistry(lockset.ConfigHWLCDR()), Parallel: 4}, kitchenSink)
	if err != nil {
		t.Fatalf("Run parallel: %v", err)
	}
	if par.LocksetDetector != nil || par.MemcheckDetector != nil {
		t.Error("sharded block-routed detectors must not pretend to have a single instance")
	}
	if par.DeadlockDetector == nil || par.DeadlockDetector.Cycles() == 0 {
		t.Error("pinned deadlock instance must stay reachable under Parallel > 1")
	}
	if par.HighLevelDetector == nil || par.HighLevelDetector.Violations() == 0 {
		t.Error("pinned highlevel instance must stay reachable under Parallel > 1")
	}
}

// TestRunLocksetDefaultingIsExplicit is the regression test for the fragile
// zero-value detection: only the exact zero lockset.Config defaults to
// HWLC+DR. A config that sets ANY field — even one that leaves Bus, Mask and
// Destruct zero — is intentional and must not be clobbered.
func TestRunLocksetDefaultingIsExplicit(t *testing.T) {
	res, err := Run(Options{Seed: 1}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := res.LocksetDetector.Config()
	if got.Bus != lockset.BusRWLock || !got.Destruct {
		t.Errorf("zero config must default to HWLC+DR, got %+v", got)
	}

	// All-zero except ThreadSegments: previously clobbered to HWLC+DR
	// because Bus==BusNone && Mask==0 && !Destruct matched.
	res, err = Run(Options{Seed: 1, Lockset: lockset.Config{ThreadSegments: true}}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got = res.LocksetDetector.Config()
	if got.Bus != lockset.BusNone || got.Destruct {
		t.Errorf("explicit BusNone config was clobbered to %+v", got)
	}

	// Same for a config expressing only a custom tool name.
	res, err = Run(Options{Seed: 1, Lockset: lockset.Config{Tool: "bare"}}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.LocksetDetector.Config(); got.Bus != lockset.BusNone || got.Tool != "bare" {
		t.Errorf("named minimal config was clobbered to %+v", got)
	}
}

// TestRunDJITDefaultingIsExplicit mirrors the lockset regression test for the
// happens-before detector: only the exact zero vectorclock.Config defaults to
// standard DJIT. A partial config — LockEdges off, a custom granule — is
// intentional and must not be clobbered to DefaultConfig.
func TestRunDJITDefaultingIsExplicit(t *testing.T) {
	djitOf := func(opt Options) vectorclock.Config {
		spec := opt.djitSpec()
		det, ok := spec.Factory(report.NewCollector(nil, nil)).(*vectorclock.Detector)
		if !ok {
			t.Fatalf("djit spec factory built a %T, want *vectorclock.Detector", det)
		}
		return det.Config()
	}
	if got := djitOf(Options{}); !got.LockEdges || !got.FirstRaceOnly {
		t.Errorf("zero config must default to standard DJIT, got %+v", got)
	}
	// Granule set, Tool empty, LockEdges false: previously clobbered to
	// DefaultConfig because Tool=="" && !LockEdges matched.
	if got := djitOf(Options{DJIT: vectorclock.Config{Granule: 8}}); got.LockEdges || got.FirstRaceOnly || got.Granule != 8 {
		t.Errorf("explicit lock-edge-free config was clobbered to %+v", got)
	}
	if got := djitOf(Options{DJIT: vectorclock.Config{Edges: trace.MaskHelgrind}}); got.LockEdges || got.Edges != trace.MaskHelgrind {
		t.Errorf("explicit edge-mask config was clobbered to %+v", got)
	}
}

func TestParseTools(t *testing.T) {
	specs, err := Options{}.ParseTools("all")
	if err != nil {
		t.Fatalf("ParseTools(all): %v", err)
	}
	if len(specs) != len(ToolNames) {
		t.Errorf("all = %d specs, want %d", len(specs), len(ToolNames))
	}
	specs, err = Options{}.ParseTools("lockset, deadlock")
	if err != nil || len(specs) != 2 {
		t.Fatalf("two-tool parse: %v, %d specs", err, len(specs))
	}
	if specs[0].Routing != trace.RouteBlock || specs[1].Routing != trace.RouteBroadcast {
		t.Errorf("routing classes wrong: %v %v", specs[0].Routing, specs[1].Routing)
	}
	if _, err := (Options{}).ParseTools("lockset,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown tool must be rejected with its name, got %v", err)
	}
	// The lockset spec honours the receiver's configuration.
	specs, err = Options{Lockset: lockset.ConfigOriginal()}.ParseTools("lockset")
	if err != nil {
		t.Fatalf("ParseTools: %v", err)
	}
	if specs[0].Name != "helgrind" {
		t.Errorf("lockset spec name = %q", specs[0].Name)
	}
}

// TestRunToolsOverridesDeprecatedFields: a non-empty Tools registry wins over
// the legacy selector fields.
func TestRunToolsOverridesDeprecatedFields(t *testing.T) {
	res, err := Run(Options{
		Seed:     1,
		Detector: DetectorDJIT, // ignored
		Memcheck: true,         // ignored
		Tools:    []trace.ToolSpec{lockset.Spec(lockset.ConfigHWLCDR())},
	}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, w := range res.Collector.Sites() {
		if w.Tool != "helgrind" {
			t.Errorf("unexpected tool %q in report; Tools should fully define the registry", w.Tool)
		}
	}
	if res.LocksetDetector == nil {
		t.Error("lockset instance not surfaced")
	}
}
