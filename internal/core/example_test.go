package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lockset"
	"repro/internal/vm"
)

// ExampleRun checks a small program with an unprotected counter and prints
// the number of distinct race locations found.
func ExampleRun() {
	res, err := core.Run(core.Options{Seed: 1}, func(main *vm.Thread) {
		counter := main.Alloc(4, "counter")
		worker := func(t *vm.Thread) {
			defer t.Func("worker", "main.cpp", 12)()
			for i := 0; i < 5; i++ {
				counter.Store32(t, 0, counter.Load32(t, 0)+1)
			}
		}
		a := main.Go("a", worker)
		b := main.Go("b", worker)
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("locations:", res.Locations())
	// Output:
	// locations: 1
}

// ExampleRun_busLockModels contrasts the paper's two bus-lock emulations on
// the Fig. 8 reference-counter pattern: a plain read followed by a
// bus-locked increment from two threads.
func ExampleRun_busLockModels() {
	program := func(main *vm.Thread) {
		refcount := main.Alloc(4, "refcount")
		copyString := func(t *vm.Thread) {
			defer t.Func("string::copy", "string.h", 240)()
			refcount.Load32(t, 0)         // leak check: plain read
			refcount.AtomicAdd32(t, 0, 1) // LOCK-prefixed increment
		}
		w := main.Go("worker", copyString)
		main.Sleep(5)
		copyString(main)
		main.Join(w)
	}
	for _, opt := range []struct {
		name string
		o    core.Options
	}{
		{"original", core.OptionsOriginal()},
		{"hwlc", core.OptionsHWLC()},
	} {
		opt.o.Seed = 1
		res, err := core.Run(opt.o, program)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d location(s)\n", opt.name, res.Locations())
	}
	// Output:
	// original: 1 location(s)
	// hwlc: 0 location(s)
}

// ExampleRun_properLocking shows that a consistently locked program stays
// silent under the strictest configuration.
func ExampleRun_properLocking() {
	res, err := core.Run(core.Options{Lockset: lockset.ConfigHWLCDR(), Seed: 1}, func(main *vm.Thread) {
		mu := main.VM().NewMutex("mu")
		data := main.Alloc(8, "data")
		worker := func(t *vm.Thread) {
			for i := 0; i < 5; i++ {
				mu.Lock(t)
				data.Store64(t, 0, uint64(i))
				mu.Unlock(t)
			}
		}
		a := main.Go("a", worker)
		b := main.Go("b", worker)
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("locations:", res.Locations())
	// Output:
	// locations: 0
}
