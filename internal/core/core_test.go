package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lockset"
	"repro/internal/vm"
)

func racyProgram(main *vm.Thread) {
	b := main.Alloc(4, "counter")
	w := func(t *vm.Thread) {
		for i := 0; i < 5; i++ {
			b.Store32(t, 0, b.Load32(t, 0)+1)
		}
	}
	a := main.Go("a", w)
	c := main.Go("b", w)
	main.Join(a)
	main.Join(c)
}

func TestRunDefaultLockset(t *testing.T) {
	res, err := Run(Options{Seed: 1}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("guest: %v", res.Err)
	}
	if res.Locations() == 0 {
		t.Error("racy program reported no locations")
	}
	if res.LocksetDetector == nil {
		t.Error("lockset detector should be set")
	}
	if !strings.Contains(res.Report(), "Possible data race") {
		t.Errorf("report missing race text:\n%s", res.Report())
	}
}

func TestRunDJITAndHybrid(t *testing.T) {
	for _, kind := range []DetectorKind{DetectorDJIT, DetectorHybrid} {
		res, err := Run(Options{Detector: kind, Seed: 1}, racyProgram)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Locations() == 0 {
			t.Errorf("%v reported no locations for a racy program", kind)
		}
	}
}

func TestRunDetectorNone(t *testing.T) {
	res, err := Run(Options{Detector: DetectorNone, Seed: 1}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Locations() != 0 {
		t.Error("DetectorNone must not report")
	}
	if res.Steps == 0 {
		t.Error("program did not execute")
	}
}

func TestRunWithSuppressions(t *testing.T) {
	sup := `
{
   mute-counter
   Race
   ...
}
`
	res, err := Run(Options{Seed: 1, Suppressions: sup}, racyProgram)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Locations() != 0 {
		t.Errorf("catch-all suppression left %d locations", res.Locations())
	}
	if res.Collector.SuppressedSites() == 0 {
		t.Error("no sites recorded as suppressed")
	}
}

func TestRunBadSuppressions(t *testing.T) {
	if _, err := Run(Options{Suppressions: "{"}, racyProgram); err == nil {
		t.Error("bad suppressions should fail Run")
	}
}

func TestRunGuestDeadlockSurfaced(t *testing.T) {
	res, err := Run(Options{Seed: 1, Deadlocks: true}, func(main *vm.Thread) {
		v := main.VM()
		m1, m2 := v.NewMutex("A"), v.NewMutex("B")
		a := main.Go("a", func(t *vm.Thread) {
			m1.Lock(t)
			t.Sleep(10)
			m2.Lock(t)
		})
		b := main.Go("b", func(t *vm.Thread) {
			m2.Lock(t)
			t.Sleep(10)
			m1.Lock(t)
		})
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var dl *vm.DeadlockError
	if !errors.As(res.Err, &dl) {
		t.Fatalf("guest err = %v, want DeadlockError", res.Err)
	}
	// The lock-order tool must have flagged the cycle before the hang.
	if res.DeadlockDetector.Cycles() == 0 {
		t.Error("lock-order cycle not reported")
	}
}

func TestRunMemcheck(t *testing.T) {
	res, err := Run(Options{Seed: 1, Memcheck: true}, func(main *vm.Thread) {
		b := main.Alloc(8, "x")
		b.Free(main)
		b.Load32(main, 0)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.MemcheckDetector.Errors() == 0 {
		t.Error("use-after-free not caught")
	}
}

func TestPaperConfigConstructors(t *testing.T) {
	if OptionsOriginal().Lockset.Bus != lockset.BusSingleMutex {
		t.Error("OptionsOriginal bus model wrong")
	}
	if OptionsHWLC().Lockset.Bus != lockset.BusRWLock || OptionsHWLC().Lockset.Destruct {
		t.Error("OptionsHWLC config wrong")
	}
	if !OptionsHWLCDR().Lockset.Destruct {
		t.Error("OptionsHWLCDR must honour destructor annotations")
	}
}

func TestDetectorComparisonE12(t *testing.T) {
	// E12: on the §4.3 program, the lock-set detector finds the discipline
	// violation in schedules where happens-before detectors may not.
	prog := func(ordered bool) func(*vm.Thread) {
		return func(main *vm.Thread) {
			v := main.VM()
			b := main.Alloc(4, "x")
			m := v.NewMutex("m")
			sem := v.NewSemaphore("order", 0)
			first := main.Go("unlocked", func(t *vm.Thread) {
				b.Store32(t, 0, 1)
				if ordered {
					sem.Post(t)
				}
			})
			second := main.Go("locked", func(t *vm.Thread) {
				if ordered {
					sem.Wait(t)
				}
				m.Lock(t)
				b.Store32(t, 0, 2)
				m.Unlock(t)
			})
			main.Join(first)
			main.Join(second)
		}
	}
	// Ordered variant: DJIT silent (sem edge), lock-set still warns when the
	// unlocked write lands second... here it lands first, so Eraser's
	// delayed lock-set initialisation ALSO misses it — the §4.3 false
	// negative — while the unordered variant is caught by both.
	djit, err := Run(Options{Detector: DetectorDJIT, Seed: 1}, prog(true))
	if err != nil {
		t.Fatal(err)
	}
	if djit.Locations() != 0 {
		t.Errorf("DJIT reported a semaphore-ordered pair:\n%s", djit.Report())
	}
	ls, err := Run(Options{Seed: 2}, prog(false))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := Run(Options{Detector: DetectorDJIT, Seed: 2}, prog(false))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Locations() == 0 && hb.Locations() == 0 {
		t.Error("unordered unlocked writes missed by both detectors")
	}
}

func TestRunHighLevelDetector(t *testing.T) {
	res, err := Run(Options{Seed: 1, HighLevel: true, Detector: DetectorNone}, func(main *vm.Thread) {
		v := main.VM()
		mu := v.NewMutex("mu")
		pair := main.Alloc(8, "pair")
		w := main.Go("writer", func(th *vm.Thread) {
			defer th.Func("setA", "x.cpp", 1)()
			mu.Lock(th)
			pair.Store32(th, 0, 1)
			mu.Unlock(th)
			th.PopFrame()
			th.PushFrame("setB", "x.cpp", 2)
			mu.Lock(th)
			pair.Store32(th, 4, 2)
			mu.Unlock(th)
		})
		r := main.Go("reader", func(th *vm.Thread) {
			defer th.Func("getBoth", "x.cpp", 3)()
			mu.Lock(th)
			pair.Load32(th, 0)
			pair.Load32(th, 4)
			mu.Unlock(th)
		})
		main.Join(w)
		main.Join(r)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.HighLevelDetector == nil || res.HighLevelDetector.Violations() == 0 {
		t.Error("high-level race not detected through core.Run")
	}
}

// abbaProgram mixes lock-order inversion (aux deadlock tool, sequential
// path) with unlocked counter races (race detector, engine path under
// Parallel), to exercise the merged report.
func abbaProgram(main *vm.Thread) {
	v := main.VM()
	m1, m2 := v.NewMutex("A"), v.NewMutex("B")
	gate := v.NewSemaphore("gate", 0)
	b := main.Alloc(4, "counter")
	a := main.Go("a", func(t *vm.Thread) {
		m1.Lock(t)
		m2.Lock(t)
		b.Store32(t, 0, b.Load32(t, 0)+1)
		m2.Unlock(t)
		m1.Unlock(t)
		gate.Post(t)
	})
	c := main.Go("b", func(t *vm.Thread) {
		gate.Wait(t)
		m2.Lock(t)
		m1.Lock(t)
		m1.Unlock(t)
		m2.Unlock(t)
		b.Store32(t, 0, b.Load32(t, 0)+1)
	})
	main.Join(a)
	main.Join(c)
	b.Store32(main, 0, 0)
}

func TestRunParallelMatchesSequential(t *testing.T) {
	for _, detector := range []DetectorKind{DetectorLockset, DetectorDJIT, DetectorHybrid} {
		seq, err := Run(Options{Seed: 5, Detector: detector, Deadlocks: true, Memcheck: true}, abbaProgram)
		if err != nil || seq.Err != nil {
			t.Fatalf("%s sequential: %v / %v", detector, err, seq.Err)
		}
		par, err := Run(Options{Seed: 5, Detector: detector, Deadlocks: true, Memcheck: true, Parallel: 4}, abbaProgram)
		if err != nil || par.Err != nil {
			t.Fatalf("%s parallel: %v / %v", detector, err, par.Err)
		}
		if par.Locations() != seq.Locations() {
			t.Errorf("%s: parallel locations = %d, sequential = %d", detector, par.Locations(), seq.Locations())
		}
		if got, want := par.Report(), seq.Report(); got != want {
			t.Errorf("%s: parallel report differs\n--- sequential ---\n%s\n--- parallel ---\n%s", detector, want, got)
		}
	}
}
