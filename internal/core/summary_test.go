package core

import (
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

// summaryGuest plants a deterministic memcheck workload: 8 blocks, of which
// 3 leak (24+16+8 = 48 bytes), one is used after free (2 accesses) and one is
// double-freed — 3 dynamic errors in total.
func summaryGuest(t *vm.Thread) {
	var leaked []*vm.Block
	for _, size := range []int{24, 16, 8} {
		leaked = append(leaked, t.Alloc(size, "leak"))
	}
	for _, b := range leaked {
		b.Write(t, 0, 4)
	}

	uaf := t.Alloc(32, "uaf")
	uaf.Write(t, 0, 4)
	uaf.Free(t)
	uaf.Read(t, 0, 4)  // error 1
	uaf.Write(t, 8, 4) // error 2

	dbl := t.Alloc(16, "double")
	dbl.Free(t)
	dbl.Free(t) // error 3

	for i := 0; i < 3; i++ {
		ok := t.Alloc(8, "ok")
		ok.Write(t, 0, 8)
		ok.Free(t)
	}
}

var wantMemcheckSummary = trace.ToolSummary{
	"errors":        3,
	"leaked-blocks": 3,
	"leaked-bytes":  48,
}

// TestMemcheckSummaryParallel is the regression test for the parallel-mode
// memcheck summary: Result.MemcheckDetector is nil whenever Parallel > 1
// (memcheck is sharded per block), and before Result.Summaries existed the
// end-of-run error/leak summary was silently lost. The summary must now be
// identical for every shard count.
func TestMemcheckSummaryParallel(t *testing.T) {
	for _, parallel := range []int{0, 1, 2, 4, 8} {
		res, err := Run(Options{Memcheck: true, Parallel: parallel, Seed: 1}, summaryGuest)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if res.Err != nil {
			t.Fatalf("parallel=%d: guest: %v", parallel, res.Err)
		}
		got := res.Summaries["memcheck"]
		if !reflect.DeepEqual(got, wantMemcheckSummary) {
			t.Errorf("parallel=%d: memcheck summary = %v, want %v", parallel, got, wantMemcheckSummary)
		}
		if parallel > 1 {
			if res.MemcheckDetector != nil {
				t.Errorf("parallel=%d: MemcheckDetector = %v, want nil (sharded)", parallel, res.MemcheckDetector)
			}
			continue
		}
		// Sequentially the single instance is also reachable directly and
		// must agree with its own summary.
		d := res.MemcheckDetector
		if d == nil {
			t.Fatalf("parallel=%d: MemcheckDetector nil", parallel)
		}
		if d.Errors() != 3 {
			t.Errorf("parallel=%d: Errors = %d, want 3", parallel, d.Errors())
		}
		if blocks, bytes := d.Leaks(); blocks != 3 || bytes != 48 {
			t.Errorf("parallel=%d: Leaks = (%d, %d), want (3, 48)", parallel, blocks, bytes)
		}
	}
}

// TestSummariesAllTools checks that the summary surface coexists with the
// full registry and that tools without counters simply do not appear.
func TestSummariesAllTools(t *testing.T) {
	opts := Options{Seed: 1}
	tools, err := opts.ParseTools("all")
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4} {
		res, err := Run(Options{Tools: tools, Parallel: parallel, Seed: 1}, summaryGuest)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		got := res.Summaries["memcheck"]
		if !reflect.DeepEqual(got, wantMemcheckSummary) {
			t.Errorf("parallel=%d: memcheck summary = %v, want %v", parallel, got, wantMemcheckSummary)
		}
		if _, ok := res.Summaries["helgrind-deadlock"]; ok {
			t.Errorf("parallel=%d: deadlock tool unexpectedly has a summary", parallel)
		}
	}
}
