// Package core is the library's public façade: it assembles the virtual
// machine, the tool registry and the report pipeline into a single entry
// point, mirroring the paper's debugging process (Fig. 3): instrument →
// execute on the VM → analyse the warnings.
//
// A minimal session:
//
//	res, err := core.Run(core.Options{}, func(t *vm.Thread) {
//	    v := t.VM()
//	    c := v.NewMutex("counter")
//	    b := t.Alloc(4, "counter")
//	    ...
//	})
//	fmt.Print(res.Report())
//
// Every analysis is a registered tool: the race detectors (lock-set, DJIT,
// hybrid) and the auxiliary checkers (lock-order deadlock detection,
// memcheck, view-consistency) all run concurrently over a single pass of the
// event stream, sequentially by default or sharded across Options.Parallel
// engine workers — with byte-identical reports either way. The paper's three
// evaluation configurations are available as OptionsOriginal, OptionsHWLC
// and OptionsHWLCDR.
package core

import (
	"fmt"
	"strings"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/highlevel"
	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/memcheck"
	"repro/internal/report"
	"repro/internal/suppress"
	"repro/internal/trace"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// DetectorKind selects the race-detection algorithm for the deprecated
// single-detector Options fields; prefer Options.Tools.
type DetectorKind uint8

// Available detectors.
const (
	// DetectorLockset is the Eraser/Helgrind lock-set algorithm with the
	// paper's improvements — the primary contribution.
	DetectorLockset DetectorKind = iota
	// DetectorDJIT is the pure happens-before baseline [6].
	DetectorDJIT
	// DetectorHybrid is the lock-set + happens-before hybrid [12].
	DetectorHybrid
	// DetectorNone runs without a race detector (for overhead baselines).
	DetectorNone
)

func (k DetectorKind) String() string {
	switch k {
	case DetectorLockset:
		return "lockset"
	case DetectorDJIT:
		return "djit"
	case DetectorHybrid:
		return "hybrid"
	default:
		return "none"
	}
}

// Options configures a checking run.
type Options struct {
	// Tools is the full tool registry for the run: every listed tool runs
	// concurrently over one pass of the event stream (see trace.ToolSpec and
	// the Spec constructors in the detector packages). When Tools is empty,
	// the deprecated selector fields below are converted into the
	// equivalent registry — one race detector plus the requested auxiliary
	// tools.
	Tools []trace.ToolSpec
	// Detector selects the algorithm (default DetectorLockset).
	// Deprecated: list the detector in Tools instead.
	Detector DetectorKind
	// Lockset configures the lock-set detector. The zero value (and only
	// the zero value — see lockset.Config.IsZero) defaults to the paper's
	// strongest configuration, HWLC+DR.
	Lockset lockset.Config
	// DJIT configures the happens-before detector when selected.
	DJIT vectorclock.Config
	// Hybrid configures the hybrid detector when selected.
	Hybrid hybrid.Config
	// Deadlocks attaches the lock-order-graph deadlock tool.
	// Deprecated: list deadlock.Spec in Tools instead.
	Deadlocks bool
	// Memcheck attaches the use-after-free tool.
	// Deprecated: list memcheck.Spec in Tools instead.
	Memcheck bool
	// HighLevel attaches the view-consistency checker for high-level data
	// races ([1], discussed in the paper's §2.1).
	// Deprecated: list highlevel.Spec in Tools instead.
	HighLevel bool
	// Suppressions holds suppression rules in the Valgrind-like format
	// accepted by internal/suppress.
	Suppressions string
	// Seed drives the deterministic scheduler.
	Seed int64
	// Quantum is the scheduling quantum (1 = preempt at every operation).
	Quantum int
	// MaxSteps bounds the run.
	MaxSteps int64
	// Parallel > 1 runs the registered tools sharded across that many
	// workers of the analysis engine (internal/engine), consuming the VM
	// event stream live: block-routed tools get an instance per shard,
	// broadcast and single-shard tools run as pinned instances inside the
	// engine. The merged report is byte-identical to the sequential
	// single-pass result.
	Parallel int
}

// OptionsOriginal mirrors the paper's first experimental configuration.
func OptionsOriginal() Options { return Options{Lockset: lockset.ConfigOriginal()} }

// OptionsHWLC mirrors the corrected-bus-lock configuration.
func OptionsHWLC() Options { return Options{Lockset: lockset.ConfigHWLC()} }

// OptionsHWLCDR mirrors the full HWLC+DR configuration.
func OptionsHWLCDR() Options { return Options{Lockset: lockset.ConfigHWLCDR()} }

// locksetSpec resolves the lock-set configuration: only the explicit zero
// value defaults to the paper's best.
func (opt Options) locksetSpec() trace.ToolSpec {
	cfg := opt.Lockset
	if cfg.IsZero() {
		cfg = lockset.ConfigHWLCDR()
	}
	return lockset.Spec(cfg)
}

// djitSpec resolves the happens-before configuration: only the explicit zero
// value (vectorclock.Config.IsZero) defaults to standard DJIT; any partially
// set config is taken as intentional and passed through verbatim.
func (opt Options) djitSpec() trace.ToolSpec {
	cfg := opt.DJIT
	if cfg.IsZero() {
		cfg = vectorclock.DefaultConfig()
	}
	return vectorclock.Spec(cfg)
}

// toolSpecs resolves Options into the effective registry: Tools verbatim
// when set, otherwise the deprecated selector fields adapted.
func (opt Options) toolSpecs() ([]trace.ToolSpec, error) {
	if len(opt.Tools) > 0 {
		return opt.Tools, nil
	}
	var specs []trace.ToolSpec
	switch opt.Detector {
	case DetectorLockset:
		specs = append(specs, opt.locksetSpec())
	case DetectorDJIT:
		specs = append(specs, opt.djitSpec())
	case DetectorHybrid:
		specs = append(specs, hybrid.Spec(opt.Hybrid))
	case DetectorNone:
		// No race detector.
	default:
		return nil, fmt.Errorf("core: unknown detector %d", opt.Detector)
	}
	if opt.Deadlocks {
		specs = append(specs, deadlock.Spec(deadlock.Config{}))
	}
	if opt.Memcheck {
		specs = append(specs, memcheck.Spec(memcheck.Config{}))
	}
	if opt.HighLevel {
		specs = append(specs, highlevel.Spec(highlevel.Config{}))
	}
	return specs, nil
}

// ToolNames lists the names accepted by ParseTools.
var ToolNames = []string{"lockset", "djit", "hybrid", "deadlock", "memcheck", "highlevel"}

// ParseTools converts a comma-separated tool list — e.g.
// "lockset,djit,deadlock", or "all" for every known tool — into registry
// specs, using the receiver's per-tool configurations (Lockset, DJIT,
// Hybrid) for the detectors that have one. The result is suitable for
// Options.Tools or engine.Options.Tools.
func (opt Options) ParseTools(list string) ([]trace.ToolSpec, error) {
	var specs []trace.ToolSpec
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "":
			continue
		case "all":
			all, err := opt.ParseTools(strings.Join(ToolNames, ","))
			if err != nil {
				return nil, err
			}
			specs = append(specs, all...)
		case "lockset":
			specs = append(specs, opt.locksetSpec())
		case "djit":
			specs = append(specs, opt.djitSpec())
		case "hybrid":
			specs = append(specs, hybrid.Spec(opt.Hybrid))
		case "deadlock":
			specs = append(specs, deadlock.Spec(deadlock.Config{}))
		case "memcheck":
			specs = append(specs, memcheck.Spec(memcheck.Config{}))
		case "highlevel":
			specs = append(specs, highlevel.Spec(highlevel.Config{}))
		default:
			return nil, fmt.Errorf("core: unknown tool %q (known: %s, all)", name, strings.Join(ToolNames, ", "))
		}
	}
	return specs, nil
}

// ToolFactory validates a -tools list once and returns a constructor that
// builds a fresh registry per call — the shape long-running consumers need
// (the ingest server instantiates the registry once per session). The
// receiver's per-tool configurations apply exactly as in ParseTools.
func (opt Options) ToolFactory(list string) (func() []trace.ToolSpec, error) {
	if _, err := opt.ParseTools(list); err != nil {
		return nil, err
	}
	return func() []trace.ToolSpec {
		specs, _ := opt.ParseTools(list) // validated above
		return specs
	}, nil
}

// Result is the outcome of a checking run.
type Result struct {
	// Collector holds the deduplicated warnings of every registered tool,
	// merged in global first-seen order.
	Collector *report.Collector
	// VM is the machine the program ran on (stacks and blocks resolve
	// against it).
	VM *vm.VM
	// Err is the guest execution error, if any (including deadlock), or the
	// first tool panic caught by the pipeline.
	Err error
	// Steps is the number of guest operations executed.
	Steps int64
	// Summaries holds the per-tool end-of-run counter rollups of every
	// registered tool implementing trace.Summarizer, keyed by tool report
	// name. Unlike the *Detector fields below, the summaries are
	// shard-count-independent: under Parallel > 1 the engine sums the
	// counters of all shard instances, so e.g. memcheck's error and leak
	// totals are identical between sequential and parallel runs.
	Summaries map[string]trace.ToolSummary
	// LocksetDetector is set when exactly one lock-set detector instance ran
	// (for its dynamic counters). It is nil under Parallel > 1, where the
	// detector exists once per engine shard.
	LocksetDetector *lockset.Detector
	// DeadlockDetector is set when the lock-order tool ran (it is a pinned
	// single instance even under Parallel > 1).
	DeadlockDetector *deadlock.Detector
	// MemcheckDetector is set when memcheck ran sequentially. It is nil
	// under Parallel > 1, where memcheck is sharded per block; use
	// Summaries["memcheck"] for the error and leak totals, which survive
	// sharding.
	MemcheckDetector *memcheck.Detector
	// HighLevelDetector is set when the view-consistency checker ran.
	HighLevelDetector *highlevel.Detector
}

// Locations returns the number of distinct reported locations.
func (r *Result) Locations() int { return r.Collector.Locations() }

// Report renders the warnings in Helgrind-like format.
func (r *Result) Report() string { return r.Collector.Format() }

// pipeline is engine.Pipeline: the shared surface of engine.Engine and
// engine.Sequential. Both consume the live stream as a trace.Sink and finish
// the same way.
type pipeline = engine.Pipeline

// Run executes the guest program under the configured tools. The returned
// error covers configuration problems only; guest failures (panic, deadlock,
// step limit) are reported in Result.Err so that warnings collected up to
// that point remain accessible.
func Run(opt Options, body func(*vm.Thread)) (*Result, error) {
	specs, err := opt.toolSpecs()
	if err != nil {
		return nil, err
	}
	machine := vm.New(vm.Options{Seed: opt.Seed, Quantum: opt.Quantum, MaxSteps: opt.MaxSteps})

	var sup report.Suppressor
	if opt.Suppressions != "" {
		f, err := suppress.ParseString(opt.Suppressions)
		if err != nil {
			return nil, fmt.Errorf("core: bad suppressions: %w", err)
		}
		sup = f
	}
	res := &Result{VM: machine}

	// Both paths run the same registry over one pass of the stream; the only
	// difference is whether events fan out to shard workers or are delivered
	// inline. Reports are byte-identical between the two.
	var pipe pipeline
	if len(specs) > 0 {
		eopt := engine.Options{Tools: specs, Resolver: machine, Suppressor: sup}
		if opt.Parallel > 1 {
			eopt.Shards = opt.Parallel
		}
		pipe, err = engine.NewPipeline(eopt)
		if err != nil {
			return nil, fmt.Errorf("core: engine: %w", err)
		}
		machine.AddTool(pipe)
	}

	res.Err = machine.Run(body)
	res.Steps = machine.Steps()
	if pipe == nil {
		res.Collector = report.NewCollector(machine, sup)
		return res, nil
	}
	merged, cerr := pipe.Close()
	if cerr != nil && res.Err == nil {
		res.Err = cerr
	}
	res.Collector = merged
	res.Summaries = pipe.Summaries()
	// Surface the concrete detector instances for their dynamic counters —
	// only where exactly one instance exists (sharded tools have one per
	// worker under Parallel > 1).
	for _, spec := range specs {
		insts := pipe.Tool(spec.Name)
		if len(insts) != 1 {
			continue
		}
		switch det := insts[0].(type) {
		case *lockset.Detector:
			if res.LocksetDetector == nil {
				res.LocksetDetector = det
			}
		case *deadlock.Detector:
			if res.DeadlockDetector == nil {
				res.DeadlockDetector = det
			}
		case *memcheck.Detector:
			if res.MemcheckDetector == nil {
				res.MemcheckDetector = det
			}
		case *highlevel.Detector:
			if res.HighLevelDetector == nil {
				res.HighLevelDetector = det
			}
		}
	}
	return res, nil
}

// Tool re-exports for convenience so that callers can attach custom sinks.
type Tool = trace.Sink
