// Package core is the library's public façade: it assembles the virtual
// machine, the detectors and the report pipeline into a single entry point,
// mirroring the paper's debugging process (Fig. 3): instrument → execute on
// the VM → analyse the warnings.
//
// A minimal session:
//
//	res, err := core.Run(core.Options{}, func(t *vm.Thread) {
//	    v := t.VM()
//	    c := v.NewMutex("counter")
//	    b := t.Alloc(4, "counter")
//	    ...
//	})
//	fmt.Print(res.Report())
//
// Detector selection, bus-lock model, destructor annotations, thread-segment
// edges, suppressions and auxiliary tools (lock-order deadlock detection,
// memcheck) are all options. The paper's three evaluation configurations are
// available as OptionsOriginal, OptionsHWLC and OptionsHWLCDR.
package core

import (
	"fmt"

	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/highlevel"
	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/memcheck"
	"repro/internal/report"
	"repro/internal/suppress"
	"repro/internal/trace"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// DetectorKind selects the race-detection algorithm.
type DetectorKind uint8

// Available detectors.
const (
	// DetectorLockset is the Eraser/Helgrind lock-set algorithm with the
	// paper's improvements — the primary contribution.
	DetectorLockset DetectorKind = iota
	// DetectorDJIT is the pure happens-before baseline [6].
	DetectorDJIT
	// DetectorHybrid is the lock-set + happens-before hybrid [12].
	DetectorHybrid
	// DetectorNone runs without a race detector (for overhead baselines).
	DetectorNone
)

func (k DetectorKind) String() string {
	switch k {
	case DetectorLockset:
		return "lockset"
	case DetectorDJIT:
		return "djit"
	case DetectorHybrid:
		return "hybrid"
	default:
		return "none"
	}
}

// Options configures a checking run.
type Options struct {
	// Detector selects the algorithm (default DetectorLockset).
	Detector DetectorKind
	// Lockset configures the lock-set detector (defaults to the paper's
	// strongest configuration, HWLC+DR).
	Lockset lockset.Config
	// DJIT configures the happens-before detector when selected.
	DJIT vectorclock.Config
	// Hybrid configures the hybrid detector when selected.
	Hybrid hybrid.Config
	// Deadlocks attaches the lock-order-graph deadlock tool.
	Deadlocks bool
	// Memcheck attaches the use-after-free tool.
	Memcheck bool
	// HighLevel attaches the view-consistency checker for high-level data
	// races ([1], discussed in the paper's §2.1).
	HighLevel bool
	// Suppressions holds suppression rules in the Valgrind-like format
	// accepted by internal/suppress.
	Suppressions string
	// Seed drives the deterministic scheduler.
	Seed int64
	// Quantum is the scheduling quantum (1 = preempt at every operation).
	Quantum int
	// MaxSteps bounds the run.
	MaxSteps int64
	// Parallel > 1 runs the race detector sharded across that many workers
	// of the analysis engine (internal/engine), consuming the VM event
	// stream live. Auxiliary tools (deadlocks, memcheck, high-level races)
	// warn from broadcast events and therefore stay on the sequential path;
	// their collector shares the engine's event sequence so the final
	// merged report preserves the global first-seen order.
	Parallel int
}

// OptionsOriginal mirrors the paper's first experimental configuration.
func OptionsOriginal() Options { return Options{Lockset: lockset.ConfigOriginal()} }

// OptionsHWLC mirrors the corrected-bus-lock configuration.
func OptionsHWLC() Options { return Options{Lockset: lockset.ConfigHWLC()} }

// OptionsHWLCDR mirrors the full HWLC+DR configuration.
func OptionsHWLCDR() Options { return Options{Lockset: lockset.ConfigHWLCDR()} }

// Result is the outcome of a checking run.
type Result struct {
	// Collector holds the deduplicated warnings.
	Collector *report.Collector
	// VM is the machine the program ran on (stacks and blocks resolve
	// against it).
	VM *vm.VM
	// Err is the guest execution error, if any (including deadlock).
	Err error
	// Steps is the number of guest operations executed.
	Steps int64
	// LocksetDetector is set when the lock-set detector ran inline (for its
	// dynamic counters). It is nil under Parallel > 1, where the detector
	// exists once per engine shard.
	LocksetDetector *lockset.Detector
	// DeadlockDetector is set when the lock-order tool ran.
	DeadlockDetector *deadlock.Detector
	// MemcheckDetector is set when memcheck ran.
	MemcheckDetector *memcheck.Detector
	// HighLevelDetector is set when the view-consistency checker ran.
	HighLevelDetector *highlevel.Detector
}

// Locations returns the number of distinct reported locations.
func (r *Result) Locations() int { return r.Collector.Locations() }

// Report renders the warnings in Helgrind-like format.
func (r *Result) Report() string { return r.Collector.Format() }

// Run executes the guest program under the configured tools. The returned
// error covers configuration problems only; guest failures (panic, deadlock,
// step limit) are reported in Result.Err so that warnings collected up to
// that point remain accessible.
func Run(opt Options, body func(*vm.Thread)) (*Result, error) {
	if opt.Lockset.Bus == lockset.BusNone && opt.Lockset.Mask == 0 && !opt.Lockset.Destruct {
		// Zero-value lockset config: default to the paper's best.
		opt.Lockset = lockset.ConfigHWLCDR()
	}
	machine := vm.New(vm.Options{Seed: opt.Seed, Quantum: opt.Quantum, MaxSteps: opt.MaxSteps})

	var sup report.Suppressor
	if opt.Suppressions != "" {
		f, err := suppress.ParseString(opt.Suppressions)
		if err != nil {
			return nil, fmt.Errorf("core: bad suppressions: %w", err)
		}
		sup = f
	}
	col := report.NewCollector(machine, sup)
	res := &Result{Collector: col, VM: machine}

	// Resolve the race-detector factory first: with Parallel > 1 it is
	// instantiated once per engine shard instead of once inline.
	var factory engine.Factory
	switch opt.Detector {
	case DetectorLockset:
		factory = lockset.Factory(opt.Lockset)
	case DetectorDJIT:
		cfg := opt.DJIT
		if cfg.Tool == "" && !cfg.LockEdges {
			cfg = vectorclock.DefaultConfig()
		}
		factory = vectorclock.Factory(cfg)
	case DetectorHybrid:
		cfg := opt.Hybrid
		factory = func(c *report.Collector) trace.Sink { return hybrid.New(cfg, c) }
	case DetectorNone:
		// No race detector.
	default:
		return nil, fmt.Errorf("core: unknown detector %d", opt.Detector)
	}

	var eng *engine.Engine
	if factory != nil && opt.Parallel > 1 {
		var err error
		eng, err = engine.New(engine.Options{
			Shards:     opt.Parallel,
			Factory:    factory,
			Resolver:   machine,
			Suppressor: sup,
		})
		if err != nil {
			return nil, fmt.Errorf("core: engine: %w", err)
		}
		// The engine must see (and sequence-number) every event before the
		// auxiliary tools do, so the aux collector's sites interleave with
		// the engine shards' in global first-seen order after the merge.
		machine.AddTool(eng)
		col.SetSequencer(func() uint64 { return uint64(eng.Events()) })
	} else if factory != nil {
		det := factory(col)
		if ld, ok := det.(*lockset.Detector); ok {
			res.LocksetDetector = ld
		}
		machine.AddTool(det)
	}
	if opt.Deadlocks {
		res.DeadlockDetector = deadlock.New(deadlock.Config{}, col)
		machine.AddTool(res.DeadlockDetector)
	}
	if opt.Memcheck {
		res.MemcheckDetector = memcheck.New(memcheck.Config{}, col)
		machine.AddTool(res.MemcheckDetector)
	}
	if opt.HighLevel {
		res.HighLevelDetector = highlevel.New(highlevel.Config{}, col)
		machine.AddTool(res.HighLevelDetector)
	}

	res.Err = machine.Run(body)
	res.Steps = machine.Steps()
	if res.HighLevelDetector != nil {
		res.HighLevelDetector.Finish()
	}
	if eng != nil {
		merged, err := eng.Close()
		if err != nil && res.Err == nil {
			res.Err = err
		}
		res.Collector = report.Merge(machine, sup, merged, col)
	}
	return res, nil
}

// Tool re-exports for convenience so that callers can attach custom sinks.
type Tool = trace.Sink
