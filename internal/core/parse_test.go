package core

import (
	"strings"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/trace"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// ---- ParseTools error paths ----

func TestParseToolsUnknownName(t *testing.T) {
	for _, list := range []string{"nonsense", "lockset,nonsense", "all,nonsense"} {
		_, err := Options{}.ParseTools(list)
		if err == nil {
			t.Errorf("ParseTools(%q): no error for unknown tool", list)
			continue
		}
		if !strings.Contains(err.Error(), "nonsense") || !strings.Contains(err.Error(), "known:") {
			t.Errorf("ParseTools(%q): error %q does not name the bad tool and the known set", list, err)
		}
	}
}

func TestParseToolsEmpty(t *testing.T) {
	for _, list := range []string{"", ",", " , "} {
		specs, err := Options{}.ParseTools(list)
		if err != nil {
			t.Errorf("ParseTools(%q): %v", list, err)
		}
		if len(specs) != 0 {
			t.Errorf("ParseTools(%q) = %d specs, want 0", list, len(specs))
		}
	}
}

func TestParseToolsAll(t *testing.T) {
	specs, err := Options{}.ParseTools("all")
	if err != nil {
		t.Fatalf("ParseTools(all): %v", err)
	}
	if len(specs) != len(ToolNames) {
		t.Fatalf("ParseTools(all) = %d specs, want %d", len(specs), len(ToolNames))
	}
	// Per-tool configurations flow into the expansion.
	opt := Options{Lockset: lockset.Config{Tool: "custom-helgrind", Bus: lockset.BusRWLock}}
	specs, err = opt.ParseTools("lockset,deadlock")
	if err != nil {
		t.Fatalf("ParseTools: %v", err)
	}
	if specs[0].Name != "custom-helgrind" {
		t.Errorf("configured lockset name not honoured: got %q", specs[0].Name)
	}
}

// TestParseToolsDuplicate: ParseTools happily returns duplicate names (the
// registry is a list), and the duplicate is rejected by engine validation —
// identically for sequential and sharded runs.
func TestParseToolsDuplicate(t *testing.T) {
	specs, err := Options{}.ParseTools("lockset,lockset")
	if err != nil {
		t.Fatalf("ParseTools: %v", err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs, want 2", len(specs))
	}
	for _, parallel := range []int{1, 4} {
		_, err := Run(Options{Tools: specs, Parallel: parallel}, func(main *vm.Thread) {})
		if err == nil || !strings.Contains(err.Error(), "duplicate tool name") {
			t.Errorf("Run(parallel=%d) with duplicate tools: err = %v, want duplicate-name error", parallel, err)
		}
	}
}

// ---- deprecated-field adapters (Options.Detector / Deadlocks / ...) ----

func TestToolSpecsAdaptersDetectorKinds(t *testing.T) {
	cases := []struct {
		kind    DetectorKind
		name    string
		routing trace.Routing
	}{
		{DetectorLockset, "helgrind", trace.RouteBlock},
		{DetectorDJIT, "djit", trace.RouteBlock},
		{DetectorHybrid, "hybrid", trace.RouteBlock},
	}
	for _, c := range cases {
		specs, err := Options{Detector: c.kind}.toolSpecs()
		if err != nil {
			t.Fatalf("%v: %v", c.kind, err)
		}
		if len(specs) != 1 || specs[0].Name != c.name || specs[0].Routing != c.routing {
			t.Errorf("%v: got %d specs, first %q/%v; want 1 spec %q/%v",
				c.kind, len(specs), specs[0].Name, specs[0].Routing, c.name, c.routing)
		}
	}

	specs, err := Options{Detector: DetectorNone}.toolSpecs()
	if err != nil || len(specs) != 0 {
		t.Errorf("DetectorNone: specs %d err %v, want 0 specs, nil", len(specs), err)
	}

	if _, err := (Options{Detector: DetectorKind(99)}).toolSpecs(); err == nil {
		t.Error("unknown DetectorKind accepted")
	}
}

func TestToolSpecsAdaptersAuxFlags(t *testing.T) {
	specs, err := Options{Detector: DetectorNone, Deadlocks: true, Memcheck: true, HighLevel: true}.toolSpecs()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]trace.Routing{
		"helgrind-deadlock": trace.RouteBroadcast,
		"memcheck":          trace.RouteBlock,
		"highlevel":         trace.RouteSingle,
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for _, sp := range specs {
		r, ok := want[sp.Name]
		if !ok {
			t.Errorf("unexpected spec %q", sp.Name)
			continue
		}
		if sp.Routing != r {
			t.Errorf("%q routing = %v, want %v", sp.Name, sp.Routing, r)
		}
	}
}

// TestToolSpecsToolsOverridesDeprecated: a non-empty Tools registry wins
// over every deprecated selector field.
func TestToolSpecsToolsOverridesDeprecated(t *testing.T) {
	opt := Options{
		Tools:     []trace.ToolSpec{hybrid.Spec(hybrid.Config{Tool: "only-me"})},
		Detector:  DetectorDJIT,
		Deadlocks: true,
		Memcheck:  true,
	}
	specs, err := opt.toolSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "only-me" {
		t.Fatalf("Tools not taken verbatim: %d specs, first %q", len(specs), specs[0].Name)
	}
}

// TestToolSpecsConfigDefaulting: only the zero-value detector configs are
// upgraded to the canonical defaults; explicit partial configs pass through.
func TestToolSpecsConfigDefaulting(t *testing.T) {
	// Zero lockset config → paper's strongest (HWLC+DR: rwlock bus, destruct).
	spec := Options{}.locksetSpec()
	if spec.Name != "helgrind" {
		t.Errorf("default lockset name %q", spec.Name)
	}
	// Explicit partial config must NOT be upgraded.
	partial := Options{Lockset: lockset.Config{Tool: "bare"}}.locksetSpec()
	if partial.Name != "bare" {
		t.Errorf("explicit lockset config clobbered: name %q", partial.Name)
	}
	// Same contract for DJIT.
	dj := Options{DJIT: vectorclock.Config{Tool: "dj2"}}.djitSpec()
	if dj.Name != "dj2" {
		t.Errorf("explicit djit config clobbered: name %q", dj.Name)
	}
}
