// Package vclock implements vector clocks (Lamport [7] / DJIT [6]) used by
// the thread-segment graph and the happens-before detectors.
//
// Despite the similar name, this package is only the DATATYPE: a growable
// vector of per-thread logical clocks with join/compare operations. The
// DJIT-style happens-before race DETECTOR built on top of it lives in
// internal/vectorclock.
package vclock

// VC is a vector clock: one logical clock per thread, indexed by ThreadID.
// Index 0 is unused (thread IDs start at 1). The zero value is the bottom
// clock.
type VC []uint32

// New returns a clock with capacity for n threads.
func New(n int) VC { return make(VC, n+1) }

// Get returns the component for thread t (0 if out of range).
func (v VC) Get(t int) uint32 {
	if t < len(v) {
		return v[t]
	}
	return 0
}

// Set sets the component for thread t, growing the clock if needed, and
// returns the possibly-reallocated clock.
func (v VC) Set(t int, c uint32) VC {
	v = v.grow(t)
	v[t] = c
	return v
}

// Tick increments the component for thread t and returns the clock.
func (v VC) Tick(t int) VC {
	v = v.grow(t)
	v[t]++
	return v
}

func (v VC) grow(t int) VC {
	if t < len(v) {
		return v
	}
	nv := make(VC, t+1)
	copy(nv, v)
	return nv
}

// Join merges other into v (componentwise max) and returns the clock.
func (v VC) Join(other VC) VC {
	if len(other) > len(v) {
		v = v.grow(len(other) - 1)
	}
	for i, c := range other {
		if c > v[i] {
			v[i] = c
		}
	}
	return v
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	nv := make(VC, len(v))
	copy(nv, v)
	return nv
}

// CopyInto copies src into dst, reusing dst's storage when it is large
// enough, and returns the result. The hot-path replacement for Clone
// wherever a previous clock of the same object can donate its array (lock
// clocks on release, pooled message clocks): steady state copies without
// allocating.
func CopyInto(dst, src VC) VC {
	if cap(dst) >= len(src) {
		dst = dst[:len(src)]
		copy(dst, src)
		return dst
	}
	return src.Clone()
}

// Clear zeroes every component in place, keeping the storage. A cleared
// clock is semantically the bottom clock — Get reads 0, LEQ skips zero
// components, Join treats it as the identity — so callers can reset a clock
// without surrendering its array to the garbage collector.
func (v VC) Clear() {
	for i := range v {
		v[i] = 0
	}
}

// Bottom reports whether every component is zero (the nil clock is bottom).
func (v VC) Bottom() bool {
	for _, c := range v {
		if c != 0 {
			return false
		}
	}
	return true
}

// LEQ reports whether v happens-before-or-equals other (componentwise <=).
func (v VC) LEQ(other VC) bool {
	for i, c := range v {
		if c == 0 {
			continue
		}
		if i >= len(other) || c > other[i] {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock is ordered before the other.
func (v VC) Concurrent(other VC) bool {
	return !v.LEQ(other) && !other.LEQ(v)
}

// Epoch is a compact (thread, clock) pair identifying a single event, in the
// style of FastTrack. It represents the event at which thread T's clock was C.
type Epoch struct {
	T int32
	C uint32
}

// Zero reports whether the epoch is unset.
func (e Epoch) Zero() bool { return e.T == 0 && e.C == 0 }

// HappensBefore reports whether the epoch's event happens-before the state
// described by the clock (i.e. the clock has seen the event).
func (e Epoch) HappensBefore(v VC) bool {
	return e.C <= v.Get(int(e.T))
}
