package vclock

import (
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	v := New(3)
	v = v.Tick(1).Tick(1).Tick(2)
	if v.Get(1) != 2 || v.Get(2) != 1 || v.Get(3) != 0 {
		t.Errorf("clock = %v, want [_,2,1,0]", v)
	}
	w := New(3).Tick(3)
	j := v.Clone().Join(w)
	if j.Get(1) != 2 || j.Get(3) != 1 {
		t.Errorf("join = %v", j)
	}
}

func TestLEQAndConcurrent(t *testing.T) {
	a := VC{}.Set(1, 1)
	b := VC{}.Set(1, 2).Set(2, 1)
	if !a.LEQ(b) {
		t.Error("a should be <= b")
	}
	if b.LEQ(a) {
		t.Error("b should not be <= a")
	}
	c := VC{}.Set(2, 5)
	if !a.Concurrent(c) {
		t.Error("a and c should be concurrent")
	}
}

func TestEpoch(t *testing.T) {
	v := VC{}.Set(2, 7)
	e := Epoch{T: 2, C: 7}
	if !e.HappensBefore(v) {
		t.Error("epoch at exactly the clock must happen-before")
	}
	e2 := Epoch{T: 2, C: 8}
	if e2.HappensBefore(v) {
		t.Error("future epoch must not happen-before")
	}
	var zero Epoch
	if !zero.Zero() {
		t.Error("zero epoch misdetected")
	}
}

func TestGrowOutOfRange(t *testing.T) {
	var v VC
	v = v.Set(10, 3)
	if v.Get(10) != 3 || v.Get(99) != 0 {
		t.Errorf("grow/set failed: %v", v)
	}
}

func clip(raw []uint8, n int) VC {
	v := New(n)
	for i, x := range raw {
		if i >= n {
			break
		}
		v[i+1] = uint32(x)
	}
	return v
}

func TestJoinLattice(t *testing.T) {
	// Join is the least upper bound: commutative, associative, idempotent,
	// and both operands are <= the join.
	prop := func(ra, rb, rc []uint8) bool {
		a, b, c := clip(ra, 6), clip(rb, 6), clip(rc, 6)
		ab := a.Clone().Join(b)
		ba := b.Clone().Join(a)
		for i := range ab {
			if ab.Get(i) != ba.Get(i) {
				return false
			}
		}
		abc1 := a.Clone().Join(b).Join(c)
		abc2 := a.Clone().Join(b.Clone().Join(c))
		for i := 0; i < 7; i++ {
			if abc1.Get(i) != abc2.Get(i) {
				return false
			}
		}
		aa := a.Clone().Join(a)
		for i := range aa {
			if aa.Get(i) != a.Get(i) {
				return false
			}
		}
		return a.LEQ(ab) && b.LEQ(ab)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLEQPartialOrder(t *testing.T) {
	// Reflexive, antisymmetric (up to equality), transitive.
	prop := func(ra, rb, rc []uint8) bool {
		a, b, c := clip(ra, 6), clip(rb, 6), clip(rc, 6)
		if !a.LEQ(a) {
			return false
		}
		if a.LEQ(b) && b.LEQ(c) && !a.LEQ(c) {
			return false
		}
		if a.LEQ(b) && b.LEQ(a) {
			for i := 0; i < 7; i++ {
				if a.Get(i) != b.Get(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
