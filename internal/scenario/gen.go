package scenario

import (
	"fmt"
	"math/rand"
)

// GenConfig parameterises Generate.
type GenConfig struct {
	// Seed drives every random choice; equal seeds yield equal scenarios.
	Seed int64
	// Kinds lists the bugs to plant, in order. Nil derives a deterministic
	// set from the seed: scenario seed i always includes catalog entry
	// (i-1) mod 7 — so any 7 consecutive seeds cover the whole catalog —
	// plus a random selection of extra kinds.
	Kinds []BugKind
}

// Generate builds a scenario from the configuration. The result depends only
// on cfg: the same config always yields the same program structure, and the
// VM then guarantees the same (program, scheduler seed) pair always yields
// the same event stream.
func Generate(cfg GenConfig) *Scenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Scenario{Seed: cfg.Seed}

	// Shared benign resources: a few mutex-guarded records plus, sometimes,
	// a read-only record behind an rwlock. Every critical section touches
	// the record's full field set, which keeps view consistency trivially
	// satisfied (see the package comment on schedule independence).
	nRes := 2 + rng.Intn(2)
	for i := 0; i < nRes; i++ {
		s.resources = append(s.resources, resource{fields: 1 + rng.Intn(3)})
	}
	if rng.Intn(2) == 0 {
		s.resources = append(s.resources, resource{fields: 1 + rng.Intn(2), readOnly: true})
	}
	var mutexRes, roRes []int
	for i, r := range s.resources {
		if r.readOnly {
			roRes = append(roRes, i)
		} else {
			mutexRes = append(mutexRes, i)
		}
	}

	// Benign worker scripts.
	nWorkers := 2 + rng.Intn(2)
	for w := 0; w < nWorkers; w++ {
		nOps := 5 + rng.Intn(6)
		var script []op
		for j := 0; j < nOps; j++ {
			switch pick := rng.Intn(10); {
			case pick < 3:
				script = append(script, op{kind: opLockedWriteUnit, res: mutexRes[rng.Intn(len(mutexRes))]})
			case pick < 5:
				script = append(script, op{kind: opLockedReadUnit, res: mutexRes[rng.Intn(len(mutexRes))]})
			case pick < 6 && len(mutexRes) >= 2:
				// Two locks, always in ascending resource order: a global
				// lock order, so the benign workload never contributes a
				// cycle to the lock-order graph.
				a, b := rng.Intn(len(mutexRes)), rng.Intn(len(mutexRes))
				if a == b {
					b = (b + 1) % len(mutexRes)
				}
				if a > b {
					a, b = b, a
				}
				script = append(script, op{kind: opLockedPair, res: mutexRes[a], res2: mutexRes[b]})
			case pick < 7 && len(roRes) > 0:
				script = append(script, op{kind: opRWRead, res: roRes[rng.Intn(len(roRes))]})
			case pick < 9:
				script = append(script, op{kind: opYield})
			default:
				script = append(script, op{kind: opSleep, ticks: 1 + int64(rng.Intn(4))})
			}
		}
		s.scripts = append(s.scripts, script)
	}

	// One producer/consumer queue between the first two workers, with puts
	// and gets balanced so the consumer never blocks forever. Messages carry
	// no shared-memory payload: an unlocked ownership handoff through a
	// queue would be a (deliberate, Fig. 10/11) lock-set false positive,
	// which belongs in the bug catalog, not the benign workload.
	if nWorkers >= 2 && rng.Intn(2) == 0 {
		s.queues = 1
		msgs := 1 + rng.Intn(3)
		for m := 0; m < msgs; m++ {
			pi := rng.Intn(len(s.scripts[0]) + 1)
			s.scripts[0] = append(s.scripts[0][:pi], append([]op{{kind: opQueuePut, queue: 0}}, s.scripts[0][pi:]...)...)
			gi := rng.Intn(len(s.scripts[1]) + 1)
			s.scripts[1] = append(s.scripts[1][:gi], append([]op{{kind: opQueueGet, queue: 0}}, s.scripts[1][gi:]...)...)
		}
	}

	// Planted bugs: at most one instance of each kind per scenario, so that
	// expectations match warnings unambiguously (lock-order warnings carry
	// no block tag).
	kinds := cfg.Kinds
	if kinds == nil {
		forced := BugKind(((cfg.Seed-1)%numBugKinds + numBugKinds) % numBugKinds)
		include := map[BugKind]bool{forced: true}
		for _, k := range Kinds() {
			if !include[k] && rng.Intn(4) == 0 {
				include[k] = true
			}
		}
		for _, k := range Kinds() {
			if include[k] {
				kinds = append(kinds, k)
			}
		}
	} else {
		seen := map[BugKind]bool{}
		var dedup []BugKind
		for _, k := range kinds {
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, k)
			}
		}
		kinds = dedup
	}
	for i, k := range kinds {
		s.Bugs = append(s.Bugs, Bug{Index: i, Kind: k, Tag: fmt.Sprintf("bug%d-%s", i, k.Family())})
	}
	return s
}
