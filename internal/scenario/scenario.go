// Package scenario generates concurrent guest programs with known ground
// truth and differentially tests every analysis tool against them.
//
// The paper's evaluation rests on a handful of bugs seeded into one SIP
// server; this package turns that methodology into a machine: a seeded,
// reproducible random generator builds guest programs over the full VM API
// (threads, mutexes, rwlocks, condition variables, semaphores, message
// queues, heap blocks) and plants bugs from a fixed catalog — data races in
// lock-set- and happens-before-visible variants, lock-order deadlocks, lost
// signals, use-after-free/double-free and high-level (view-consistency)
// races. Every planted bug records which tools must report it (and, for the
// differential variants, which tools must stay silent), and every scenario
// has a bug-free control variant whose report must be empty under all tools.
//
// The conformance harness (conformance.go) runs each generated program
// through the whole tool registry under every pipeline shape — sequential
// and sharded, live and offline-replay — and asserts that the reports are
// byte-identical across shapes, that no planted bug is missed, and that the
// control variant is clean. Failures print the generator and scheduler seeds,
// so any finding is reproducible with cmd/scenariogen.
//
// Bug constructions are deliberately schedule-independent: each planted bug
// is built so its expected tools report it under EVERY scheduler seed (e.g.
// racing accesses are write/write so the lock-set delayed-initialisation
// cannot hide them, lock-order threads are serialised so the cycle is in the
// order graph without ever deadlocking the run).
package scenario

import (
	"fmt"

	"repro/internal/trace"
)

// BugKind enumerates the catalog of plantable bugs.
type BugKind uint8

// The bug catalog.
const (
	// BugRaceWW is a plain data race: two concurrent threads write the same
	// word with no common lock and no ordering. Visible to the lock-set,
	// happens-before and hybrid detectors under every schedule.
	BugRaceWW BugKind = iota
	// BugRaceLocksetOnly is a lock-discipline violation hidden from
	// happens-before tools: the two unlocked writes are ordered by a
	// semaphore handoff. Helgrind's lock-set (MaskHelgrind ignores semaphore
	// edges) reports it; DJIT and the hybrid (MaskFull) must stay silent —
	// the §4.3 "schedule hides the race from happens-before" family made
	// deterministic.
	BugRaceLocksetOnly
	// BugLostSignal is a lost condition-variable wakeup: the producer
	// signals before the consumer waits (enforced by a semaphore, so the
	// signal is lost under every schedule), the consumer's timed wait
	// expires, and both sides then touch the payload without the bound
	// mutex. The corrupting write/write pair is unordered and unlocked, so
	// all three race detectors must report it.
	BugLostSignal
	// BugLockOrder is a lock-order inversion: one thread takes A then B, a
	// later (serialised, so the run itself can never deadlock) thread takes
	// B then A. The lock-order graph tool must report the cycle.
	BugLockOrder
	// BugUseAfterFree frees a block in a worker and reads it from the
	// joining thread. Memcheck must report the invalid access; the race
	// detectors ignore freed blocks.
	BugUseAfterFree
	// BugDoubleFree frees the same block twice (serialised by join).
	// Memcheck must report the invalid free.
	BugDoubleFree
	// BugHighLevel is the paper's §2.1 high-level race: thread A updates two
	// fields of a record in one critical section (treating them as a unit),
	// thread B updates each field in its own critical section. Every access
	// is locked — only the view-consistency checker can see it.
	BugHighLevel

	numBugKinds = 7
)

// Kinds returns the full catalog, in declaration order.
func Kinds() []BugKind {
	out := make([]BugKind, numBugKinds)
	for i := range out {
		out[i] = BugKind(i)
	}
	return out
}

func (k BugKind) String() string { return k.Family() }

// Family is the short warning-family name recorded in manifests and reports.
func (k BugKind) Family() string {
	switch k {
	case BugRaceWW:
		return "race-ww"
	case BugRaceLocksetOnly:
		return "race-lockset-only"
	case BugLostSignal:
		return "lost-signal"
	case BugLockOrder:
		return "lock-order"
	case BugUseAfterFree:
		return "use-after-free"
	case BugDoubleFree:
		return "double-free"
	case BugHighLevel:
		return "highlevel-split"
	default:
		return fmt.Sprintf("bug-kind-%d", uint8(k))
	}
}

// KindByFamily is the inverse of Family; ok is false for unknown names.
func KindByFamily(name string) (BugKind, bool) {
	for _, k := range Kinds() {
		if k.Family() == name {
			return k, true
		}
	}
	return 0, false
}

// Expectation names one warning a planted bug must (or must not) produce:
// the reporting tool, the warning kind and — when the bug lives in a heap
// block — the allocation tag that identifies the block in the report.
type Expectation struct {
	Tool string
	Kind trace.Kind
	// BlockTag, when non-empty, restricts the match to warnings whose block
	// resolves to this allocation tag. Lock-order warnings carry no block
	// and match on (Tool, Kind) alone.
	BlockTag string
}

func (e Expectation) String() string {
	if e.BlockTag == "" {
		return fmt.Sprintf("%s/%s", e.Tool, e.Kind.Category())
	}
	return fmt.Sprintf("%s/%s on %q", e.Tool, e.Kind.Category(), e.BlockTag)
}

// Bug is one planted bug instance within a scenario.
type Bug struct {
	// Index is the bug's position within the scenario (stable across
	// variants); Tag is the allocation-tag prefix of every block the bug
	// owns, "bug<Index>-<family>".
	Index int
	Kind  BugKind
	Tag   string
}

// Expected returns the warnings the bug's buggy variant must produce. The
// canonical tool names match the Spec defaults of the detector packages
// (see AllTools).
func (b Bug) Expected() []Expectation {
	switch b.Kind {
	case BugRaceWW, BugLostSignal:
		return []Expectation{
			{Tool: ToolLockset, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolDJIT, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolHybrid, Kind: trace.KindRace, BlockTag: b.Tag},
		}
	case BugRaceLocksetOnly:
		return []Expectation{
			{Tool: ToolLockset, Kind: trace.KindRace, BlockTag: b.Tag},
		}
	case BugLockOrder:
		return []Expectation{
			{Tool: ToolDeadlock, Kind: trace.KindDeadlock},
		}
	case BugUseAfterFree:
		return []Expectation{
			{Tool: ToolMemcheck, Kind: trace.KindUseAfterFree, BlockTag: b.Tag},
		}
	case BugDoubleFree:
		return []Expectation{
			{Tool: ToolMemcheck, Kind: trace.KindInvalidFree, BlockTag: b.Tag},
		}
	case BugHighLevel:
		return []Expectation{
			{Tool: ToolHighLevel, Kind: trace.KindHighLevel, BlockTag: b.Tag},
		}
	default:
		return nil
	}
}

// Absent returns the differential assertions: tools that must NOT warn about
// this bug's blocks even in the buggy variant. (Tools neither expected nor
// absent-listed are still covered: CheckBuggy rejects any warning that no
// planted bug accounts for.)
func (b Bug) Absent() []Expectation {
	switch b.Kind {
	case BugRaceLocksetOnly:
		// The semaphore orders the writes, so happens-before-based tools
		// must stay silent — this is the differential heart of the catalog.
		return []Expectation{
			{Tool: ToolDJIT, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolHybrid, Kind: trace.KindRace, BlockTag: b.Tag},
		}
	case BugUseAfterFree, BugDoubleFree:
		// Race detectors ignore freed blocks (§4.2.1: freed memory is the
		// memory checker's business).
		return []Expectation{
			{Tool: ToolLockset, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolDJIT, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolHybrid, Kind: trace.KindRace, BlockTag: b.Tag},
		}
	case BugHighLevel:
		// Every access is locked; only view consistency may fire.
		return []Expectation{
			{Tool: ToolLockset, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolDJIT, Kind: trace.KindRace, BlockTag: b.Tag},
			{Tool: ToolHybrid, Kind: trace.KindRace, BlockTag: b.Tag},
		}
	default:
		return nil
	}
}

// opKind enumerates the benign workload operations a worker script can hold.
type opKind uint8

const (
	// opLockedWriteUnit locks the resource mutex and writes every field —
	// the whole "unit", so view-consistency stays trivially satisfied.
	opLockedWriteUnit opKind = iota
	// opLockedReadUnit locks the resource mutex and reads every field.
	opLockedReadUnit
	// opLockedPair takes two resource mutexes in ascending index order (a
	// globally consistent order, so the lock-order graph stays acyclic) and
	// updates both units.
	opLockedPair
	// opRWRead takes a read-only resource's rwlock in read mode and reads
	// every field.
	opRWRead
	// opQueuePut posts one message to a queue.
	opQueuePut
	// opQueueGet takes one message from a queue (blocking; the generator
	// balances puts and gets so this always completes).
	opQueueGet
	// opYield is an explicit preemption point.
	opYield
	// opSleep advances virtual time.
	opSleep
)

// op is one step of a benign worker script.
type op struct {
	kind  opKind
	res   int   // resource index (opLocked*, opRWRead)
	res2  int   // second resource (opLockedPair; > res)
	queue int   // queue index (opQueuePut/Get)
	ticks int64 // opSleep duration
}

// resource is one shared, mutex-guarded record in the benign workload.
type resource struct {
	fields   int  // 4-byte fields; every critical section touches all of them
	readOnly bool // guarded by an rwlock, written only during main's init
}

// Scenario is one generated guest program: a benign concurrent workload plus
// a set of planted bugs, each with a buggy and a control (fixed) variant.
type Scenario struct {
	// Seed is the generator seed; Name is "s<seed>".
	Seed int64

	resources []resource
	queues    int
	scripts   [][]op // one per benign worker
	Bugs      []Bug
}

// Name returns the scenario's stable identifier.
func (s *Scenario) Name() string { return fmt.Sprintf("s%d", s.Seed) }

// Workers returns the number of benign worker threads.
func (s *Scenario) Workers() int { return len(s.scripts) }

// Resources returns the number of shared benign resources.
func (s *Scenario) Resources() int { return len(s.resources) }

// Families returns the planted bug families, in plant order.
func (s *Scenario) Families() []string {
	out := make([]string, len(s.Bugs))
	for i, b := range s.Bugs {
		out[i] = b.Kind.Family()
	}
	return out
}

// HasKind reports whether the scenario plants a bug of the given kind.
func (s *Scenario) HasKind(k BugKind) bool {
	for _, b := range s.Bugs {
		if b.Kind == k {
			return true
		}
	}
	return false
}
