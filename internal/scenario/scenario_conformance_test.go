package scenario

import (
	"fmt"
	"testing"
)

// The differential conformance suite: every generated scenario runs through
// all six tools under every pipeline shape — {sequential, 4-shard, 8-shard}
// × {live, offline-replay} — across several scheduler seeds, asserting
//
//	(a) the rendered report is byte-identical across all six shapes,
//	(b) every planted bug is reported by its expected tool(s) and invisible
//	    to its absent-listed tools (zero catalog false negatives), and
//	(c) the bug-free control variant produces zero warnings.
//
// A failure prints the generator and scheduler seeds; reproduce any case
// with
//
//	go run ./cmd/scenariogen -seed <gen-seed> -sched <sched-seed> -report

const (
	conformanceScenarios = 21 // ≥ 3 × catalog size: every kind forced thrice
	conformanceSeeds     = 3  // scheduler seeds per scenario
)

var conformanceShards = []int{1, 4, 8}

func conformanceCorpus() []*Scenario {
	out := make([]*Scenario, 0, conformanceScenarios)
	for seed := int64(1); seed <= conformanceScenarios; seed++ {
		out = append(out, Generate(GenConfig{Seed: seed}))
	}
	return out
}

func TestConformanceMatrix(t *testing.T) {
	for _, s := range conformanceCorpus() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for sched := int64(1); sched <= conformanceSeeds; sched++ {
				repro := fmt.Sprintf("reproduce: go run ./cmd/scenariogen -seed %d -sched %d -report", s.Seed, sched)

				// Buggy variant: determinism + planted-bug contract.
				m, err := RunMatrix(s, true, sched, conformanceShards)
				if err != nil {
					t.Fatalf("sched %d buggy: %v\n%s", sched, err, repro)
				}
				if diff := m.Mismatch(); diff != "" {
					t.Fatalf("sched %d buggy: %s\n%s", sched, diff, repro)
				}
				if fails := CheckBuggy(m.Canonical, m.Resolver, s); len(fails) > 0 {
					t.Errorf("sched %d buggy (bugs %v):\n  %v\n%s", sched, s.Families(), fails, repro)
				}

				// Control variant: determinism + zero warnings.
				mc, err := RunMatrix(s, false, sched, conformanceShards)
				if err != nil {
					t.Fatalf("sched %d control: %v\n%s", sched, err, repro)
				}
				if diff := mc.Mismatch(); diff != "" {
					t.Fatalf("sched %d control: %s\n%s", sched, diff, repro)
				}
				if fails := CheckControl(mc.Canonical); len(fails) > 0 {
					t.Errorf("sched %d control:\n  %v\n%s", sched, fails, repro)
				}
			}
		})
	}
}

// TestConformanceTally aggregates the expected-vs-found counts per warning
// family over the whole corpus — the suite's headline numbers (recorded in
// CHANGES.md). Every family must score found == expected.
func TestConformanceTally(t *testing.T) {
	totals := make(map[string]*FamilyTally)
	var order []string
	for _, s := range conformanceCorpus() {
		res, err := RunLive(s, true, 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, tally := range TallyFamilies(res.Collector, res.VM, s) {
			agg, ok := totals[tally.Family]
			if !ok {
				agg = &FamilyTally{Family: tally.Family}
				totals[tally.Family] = agg
				order = append(order, tally.Family)
			}
			agg.Expected += tally.Expected
			agg.Found += tally.Found
		}
	}
	for _, fam := range order {
		agg := totals[fam]
		t.Logf("family %-18s expected %3d found %3d", agg.Family, agg.Expected, agg.Found)
		if agg.Found != agg.Expected {
			t.Errorf("family %s: found %d of %d expected warnings", agg.Family, agg.Found, agg.Expected)
		}
	}
	if len(order) < numBugKinds {
		t.Errorf("corpus covers %d families, want all %d", len(order), numBugKinds)
	}
}
