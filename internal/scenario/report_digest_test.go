package scenario

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The committed report-digest file pins the *rendered output* of the full
// six-tool registry over the golden corpus, across every pipeline shape:
// {sequential, 4-shard} × {live, offline} × {buggy, control}. Where the
// trace manifest pins the generator and the encoding, this file pins the
// detectors themselves — an internal state-layout change (dense indices,
// epoch fast paths, slab-backed shadow, transition-memoised lock-sets) that
// altered a single report byte fails here with the shape and scenario named.
//
// A legitimate detector-output change regenerates the file with
//
//	UPDATE_GOLDEN_REPORTS=1 go test -run TestGoldenReportDigests ./internal/scenario/
const reportDigestFile = "testdata/golden/reports.sha256"

// goldenReportDigests computes the digest of every (scenario, variant,
// shape) cell over the committed corpus. Live shapes re-execute the scenario
// at the manifest seeds; offline shapes replay the committed trace bytes.
func goldenReportDigests(t *testing.T) map[string]string {
	t.Helper()
	m, err := LoadManifest(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, want := range m.Scenarios {
		s := Generate(GenConfig{Seed: want.GenSeed})
		for _, buggy := range []bool{true, false} {
			variant := "buggy"
			traceFile := want.Name + ".trace"
			if !buggy {
				variant = "control"
				traceFile = want.Name + ".control.trace"
			}
			log, err := os.ReadFile(filepath.Join(goldenDir, traceFile))
			if err != nil {
				t.Fatalf("%s: %v", want.Name, err)
			}
			recVM, _, err := Record(s, buggy, want.SchedSeed)
			if err != nil {
				t.Fatalf("%s: %v", want.Name, err)
			}
			for _, shards := range []int{1, 4} {
				res, err := RunLive(s, buggy, want.SchedSeed, shards)
				if err != nil {
					t.Fatalf("%s: live: %v", want.Name, err)
				}
				out[fmt.Sprintf("%s.%s.live-%d", want.Name, variant, shards)] = Digest([]byte(res.Report()))

				col, err := RunOffline(recVM, log, shards)
				if err != nil {
					t.Fatalf("%s: offline: %v", want.Name, err)
				}
				out[fmt.Sprintf("%s.%s.offline-%d", want.Name, variant, shards)] = Digest([]byte(col.Format()))
			}
		}
	}
	return out
}

// TestGoldenReportDigests verifies every rendered report against the
// committed digest file, or regenerates it under UPDATE_GOLDEN_REPORTS=1.
func TestGoldenReportDigests(t *testing.T) {
	got := goldenReportDigests(t)

	if os.Getenv("UPDATE_GOLDEN_REPORTS") != "" {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s  %s\n", got[k], k)
		}
		if err := os.WriteFile(reportDigestFile, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d cells)", reportDigestFile, len(got))
		return
	}

	f, err := os.Open(reportDigestFile)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN_REPORTS=1)", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("bad digest line %q", sc.Text())
		}
		want[fields[1]] = fields[0]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("digest file lists %d cells, corpus produced %d", len(want), len(got))
	}
	for cell, wd := range want {
		gd, ok := got[cell]
		if !ok {
			t.Errorf("%s: missing from this run", cell)
			continue
		}
		if gd != wd {
			t.Errorf("%s: report digest changed: committed %s, got %s — detector output is no longer byte-identical", cell, wd, gd)
		}
	}
	for cell := range got {
		if _, ok := want[cell]; !ok {
			t.Errorf("%s: not in committed digest file (regenerate with UPDATE_GOLDEN_REPORTS=1)", cell)
		}
	}
}
