package scenario

import (
	"fmt"

	"repro/internal/vm"
)

// This file turns a Scenario into an executable guest program. Two variants
// share one structure: Body(true) plants the bugs, Body(false) is the
// control with every bug replaced by its fixed counterpart (same threads,
// same objects, same benign traffic). Thread-creation and allocation order
// is independent of the variant and of the scheduler seed, so block IDs,
// lock IDs and allocation tags are stable and warnings can be attributed to
// bugs by tag.
//
// Every access site records a distinct simulated source line (the VM has no
// program counter), so warnings from different planted bugs never fold into
// one deduplicated report site.

// bugObjs holds the guest objects owned by one planted bug.
type bugObjs struct {
	blk  *vm.Block
	mu   *vm.Mutex // fix lock / cond mutex / unit lock / lock-order first
	mu2  *vm.Mutex // lock-order second
	sem  *vm.Semaphore
	cond *vm.Cond
}

// newBugObjs creates the bug's guest objects. Called from main before any
// thread is spawned, in bug order, so IDs are deterministic.
func newBugObjs(main *vm.Thread, b Bug) *bugObjs {
	v := main.VM()
	o := &bugObjs{}
	switch b.Kind {
	case BugRaceWW:
		o.blk = main.Alloc(4, b.Tag)
		o.mu = v.NewMutex(b.Tag + "-mu")
	case BugRaceLocksetOnly:
		o.blk = main.Alloc(4, b.Tag)
		o.mu = v.NewMutex(b.Tag + "-mu")
		o.sem = v.NewSemaphore(b.Tag+"-sem", 0)
	case BugLostSignal:
		o.blk = main.Alloc(4, b.Tag)
		o.mu = v.NewMutex(b.Tag + "-mu")
		o.cond = v.NewCond(b.Tag+"-cond", o.mu)
		o.sem = v.NewSemaphore(b.Tag+"-sem", 0)
	case BugLockOrder:
		o.mu = v.NewMutex(b.Tag + "-A")
		o.mu2 = v.NewMutex(b.Tag + "-B")
	case BugUseAfterFree, BugDoubleFree:
		o.blk = main.Alloc(4, b.Tag)
	case BugHighLevel:
		o.blk = main.Alloc(8, b.Tag)
		o.mu = v.NewMutex(b.Tag + "-mu")
	}
	return o
}

// Body returns the guest program for the buggy or control variant.
func (s *Scenario) Body(buggy bool) func(*vm.Thread) {
	file := s.Name() + ".go"
	return func(main *vm.Thread) {
		v := main.VM()
		defer main.Func("main", file, 1)()

		// Benign shared state, initialised by main before any spawn (the
		// create edge orders these writes before every worker access).
		blocks := make([]*vm.Block, len(s.resources))
		mus := make([]*vm.Mutex, len(s.resources))
		rws := make([]*vm.RWMutex, len(s.resources))
		for i, r := range s.resources {
			blocks[i] = main.Alloc(r.fields*4, fmt.Sprintf("res%d", i))
			if r.readOnly {
				rws[i] = v.NewRWMutex(fmt.Sprintf("rw%d", i))
			} else {
				mus[i] = v.NewMutex(fmt.Sprintf("mu%d", i))
			}
			main.SetLine(10 + i)
			for f := 0; f < r.fields; f++ {
				blocks[i].Store32(main, f*4, uint32(i*8+f))
			}
		}
		queues := make([]*vm.Queue, s.queues)
		for i := range queues {
			queues[i] = v.NewQueue(fmt.Sprintf("q%d", i), 0)
		}
		objs := make([]*bugObjs, len(s.Bugs))
		for i, b := range s.Bugs {
			objs[i] = newBugObjs(main, b)
		}

		// Benign workers.
		workers := make([]*vm.Thread, len(s.scripts))
		for w := range s.scripts {
			w := w
			workers[w] = main.Go(fmt.Sprintf("worker%d", w), func(t *vm.Thread) {
				defer t.Func(fmt.Sprintf("worker%d", w), file, 100+w*100)()
				s.runScript(t, w, blocks, mus, rws, queues)
			})
		}

		// Concurrent bug threads.
		var bugThreads []*vm.Thread
		for i, b := range s.Bugs {
			if b.Kind != BugLockOrder {
				bugThreads = append(bugThreads, s.spawnBug(main, b, objs[i], buggy)...)
			}
		}

		// The lock-order bug runs serialised (A to completion, then B): the
		// inverted acquisition order is in the graph, but the run itself can
		// never deadlock under any schedule.
		for i, b := range s.Bugs {
			if b.Kind == BugLockOrder {
				s.runLockOrder(main, b, objs[i], buggy)
			}
		}

		for _, t := range workers {
			main.Join(t)
		}
		for _, t := range bugThreads {
			main.Join(t)
		}

		// Post-join epilogues (the use-after-free read and double free
		// happen on main, strictly ordered after the freeing thread).
		for i, b := range s.Bugs {
			s.bugEpilogue(main, b, objs[i], buggy)
		}

		// Final cleanup: every block freed exactly once across both
		// variants (the memcheck bugs manage their own block's lifetime).
		main.SetLine(50)
		for _, blk := range blocks {
			blk.Free(main)
		}
		for i, b := range s.Bugs {
			switch b.Kind {
			case BugRaceWW, BugRaceLocksetOnly, BugLostSignal, BugHighLevel:
				objs[i].blk.Free(main)
			}
		}
	}
}

// runScript interprets one benign worker script.
func (s *Scenario) runScript(t *vm.Thread, w int, blocks []*vm.Block, mus []*vm.Mutex, rws []*vm.RWMutex, queues []*vm.Queue) {
	writeUnit := func(res int) {
		for f := 0; f < s.resources[res].fields; f++ {
			blocks[res].Store32(t, f*4, uint32(w*64+f))
		}
	}
	readUnit := func(res int) {
		for f := 0; f < s.resources[res].fields; f++ {
			blocks[res].Load32(t, f*4)
		}
	}
	for j, o := range s.scripts[w] {
		t.SetLine(100 + w*100 + j)
		switch o.kind {
		case opLockedWriteUnit:
			mus[o.res].Lock(t)
			writeUnit(o.res)
			mus[o.res].Unlock(t)
		case opLockedReadUnit:
			mus[o.res].Lock(t)
			readUnit(o.res)
			mus[o.res].Unlock(t)
		case opLockedPair:
			mus[o.res].Lock(t)
			mus[o.res2].Lock(t)
			writeUnit(o.res)
			writeUnit(o.res2)
			mus[o.res2].Unlock(t)
			mus[o.res].Unlock(t)
		case opRWRead:
			rws[o.res].RLock(t)
			readUnit(o.res)
			rws[o.res].RUnlock(t)
		case opQueuePut:
			queues[o.queue].Put(t, j)
		case opQueueGet:
			queues[o.queue].Get(t)
		case opYield:
			t.Yield()
		case opSleep:
			t.Sleep(o.ticks)
		}
	}
}

// spawnBug starts the bug's concurrent threads and returns them for joining.
func (s *Scenario) spawnBug(main *vm.Thread, b Bug, o *bugObjs, buggy bool) []*vm.Thread {
	file := s.Name() + ".go"
	base := 1000 + b.Index*20
	name := func(side string) string { return fmt.Sprintf("%s-%s", b.Tag, side) }

	switch b.Kind {
	case BugRaceWW:
		// Two concurrent unlocked writers (the control takes the fix lock).
		body := func(val uint32, line int, side string) func(*vm.Thread) {
			return func(t *vm.Thread) {
				defer t.Func(name(side), file, line)()
				if !buggy {
					o.mu.Lock(t)
				}
				t.SetLine(line + 1)
				o.blk.Store32(t, 0, val)
				t.SetLine(line + 2)
				o.blk.Store32(t, 0, val+1)
				if !buggy {
					o.mu.Unlock(t)
				}
			}
		}
		return []*vm.Thread{
			main.Go(name("a"), body(1, base, "a")),
			main.Go(name("b"), body(10, base+5, "b")),
		}

	case BugRaceLocksetOnly:
		// Unlocked writes ordered by a semaphore handoff: the lock-set
		// detector (which ignores semaphore edges) reports, happens-before
		// tools must not.
		a := main.Go(name("a"), func(t *vm.Thread) {
			defer t.Func(name("a"), file, base)()
			if !buggy {
				o.mu.Lock(t)
			}
			t.SetLine(base + 1)
			o.blk.Store32(t, 0, 1)
			if !buggy {
				o.mu.Unlock(t)
			}
			t.SetLine(base + 2)
			o.sem.Post(t)
		})
		b2 := main.Go(name("b"), func(t *vm.Thread) {
			defer t.Func(name("b"), file, base+5)()
			o.sem.Wait(t)
			if !buggy {
				o.mu.Lock(t)
			}
			t.SetLine(base + 6)
			o.blk.Store32(t, 0, 2)
			if !buggy {
				o.mu.Unlock(t)
			}
		})
		return []*vm.Thread{a, b2}

	case BugLostSignal:
		// The producer signals before the consumer waits (the semaphore
		// enforces the loss under every schedule); the consumer's timed
		// wait expires and, in the buggy variant, both sides then touch the
		// payload outside the bound mutex.
		a := main.Go(name("a"), func(t *vm.Thread) {
			defer t.Func(name("a"), file, base)()
			if buggy {
				t.SetLine(base + 1)
				o.cond.Signal(t)
				t.SetLine(base + 2)
				o.sem.Post(t)
				t.SetLine(base + 3)
				o.blk.Store32(t, 0, 1)
			} else {
				o.mu.Lock(t)
				t.SetLine(base + 1)
				o.blk.Store32(t, 0, 1)
				o.mu.Unlock(t)
				t.SetLine(base + 2)
				o.cond.Signal(t)
				t.SetLine(base + 3)
				o.sem.Post(t)
			}
		})
		b2 := main.Go(name("b"), func(t *vm.Thread) {
			defer t.Func(name("b"), file, base+10)()
			o.sem.Wait(t)
			o.mu.Lock(t)
			t.SetLine(base + 11)
			o.cond.WaitTimeout(t, 20)
			if buggy {
				o.mu.Unlock(t)
				t.SetLine(base + 12)
				o.blk.Store32(t, 0, 2)
			} else {
				t.SetLine(base + 12)
				o.blk.Store32(t, 0, 2)
				o.mu.Unlock(t)
			}
		})
		return []*vm.Thread{a, b2}

	case BugUseAfterFree:
		// The worker writes and (buggy) frees; main reads after the join —
		// see bugEpilogue.
		a := main.Go(name("a"), func(t *vm.Thread) {
			defer t.Func(name("a"), file, base)()
			t.SetLine(base + 1)
			o.blk.Store32(t, 0, 7)
			if buggy {
				t.SetLine(base + 2)
				o.blk.Free(t)
			}
		})
		return []*vm.Thread{a}

	case BugDoubleFree:
		a := main.Go(name("a"), func(t *vm.Thread) {
			defer t.Func(name("a"), file, base)()
			t.SetLine(base + 1)
			o.blk.Store32(t, 0, 7)
			t.SetLine(base + 2)
			o.blk.Free(t)
		})
		return []*vm.Thread{a}

	case BugHighLevel:
		// A treats the two fields as one atomic unit; B (buggy) updates
		// them in separate critical sections. Every access is locked.
		a := main.Go(name("a"), func(t *vm.Thread) {
			defer t.Func(name("a"), file, base)()
			o.mu.Lock(t)
			t.SetLine(base + 1)
			o.blk.Store32(t, 0, 1)
			t.SetLine(base + 2)
			o.blk.Store32(t, 4, 2)
			o.mu.Unlock(t)
		})
		b2 := main.Go(name("b"), func(t *vm.Thread) {
			defer t.Func(name("b"), file, base+5)()
			if buggy {
				o.mu.Lock(t)
				t.SetLine(base + 6)
				o.blk.Store32(t, 0, 3)
				o.mu.Unlock(t)
				o.mu.Lock(t)
				t.SetLine(base + 7)
				o.blk.Store32(t, 4, 4)
				o.mu.Unlock(t)
			} else {
				o.mu.Lock(t)
				t.SetLine(base + 6)
				o.blk.Store32(t, 0, 3)
				t.SetLine(base + 7)
				o.blk.Store32(t, 4, 4)
				o.mu.Unlock(t)
			}
		})
		return []*vm.Thread{a, b2}
	}
	return nil
}

// runLockOrder runs the serialised lock-order bug inline on main.
func (s *Scenario) runLockOrder(main *vm.Thread, b Bug, o *bugObjs, buggy bool) {
	file := s.Name() + ".go"
	base := 1000 + b.Index*20
	pair := func(first, second *vm.Mutex, line int, side string) func(*vm.Thread) {
		return func(t *vm.Thread) {
			defer t.Func(fmt.Sprintf("%s-%s", b.Tag, side), file, line)()
			first.Lock(t)
			t.SetLine(line + 1)
			second.Lock(t)
			second.Unlock(t)
			first.Unlock(t)
		}
	}
	ta := main.Go(b.Tag+"-a", pair(o.mu, o.mu2, base, "a"))
	main.Join(ta)
	var tb *vm.Thread
	if buggy {
		tb = main.Go(b.Tag+"-b", pair(o.mu2, o.mu, base+5, "b"))
	} else {
		tb = main.Go(b.Tag+"-b", pair(o.mu, o.mu2, base+5, "b"))
	}
	main.Join(tb)
}

// bugEpilogue runs the post-join part of a bug on main.
func (s *Scenario) bugEpilogue(main *vm.Thread, b Bug, o *bugObjs, buggy bool) {
	base := 1000 + b.Index*20
	switch b.Kind {
	case BugUseAfterFree:
		main.SetLine(base + 10)
		o.blk.Load32(main, 0) // buggy: reads freed memory
		if !buggy {
			main.SetLine(base + 11)
			o.blk.Free(main)
		}
	case BugDoubleFree:
		if buggy {
			main.SetLine(base + 10)
			o.blk.Free(main) // second free
		}
	}
}
