package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// The committed golden corpus (testdata/golden) pins the generator and the
// trace encoding. VerifyCorpus is the same routine cmd/scenariogen -verify
// runs from CI, so the in-suite test and the CI step can never drift apart.
// A legitimate generator or encoding change regenerates the corpus with
//
//	go run ./cmd/scenariogen -count 7 -out internal/scenario/testdata/golden

const goldenDir = "testdata/golden"

// TestGoldenCorpusIntegrity regenerates every golden scenario, compares it
// against the manifest digests and the committed trace files, re-checks the
// planted-bug expectations, and requires the corpus to cover the catalog.
func TestGoldenCorpusIntegrity(t *testing.T) {
	problems, err := VerifyCorpus(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}

	m, err := LoadManifest(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, entry := range m.Scenarios {
		for _, fam := range entry.Families {
			covered[fam] = true
		}
	}
	for _, k := range Kinds() {
		if !covered[k.Family()] {
			t.Errorf("golden corpus does not cover family %s", k.Family())
		}
	}
}

// TestGoldenCorpusReplay replays the committed trace files (not regenerated
// bytes) through the offline pipeline and re-checks ground truth: planted
// bugs found, controls clean.
func TestGoldenCorpusReplay(t *testing.T) {
	m, err := LoadManifest(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range m.Scenarios {
		s := Generate(GenConfig{Seed: want.GenSeed})
		// Resolve stacks/blocks against a fresh identical run.
		recVM, _, err := Record(s, true, want.SchedSeed)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		log, err := os.ReadFile(filepath.Join(goldenDir, want.Name+".trace"))
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		col, err := RunOffline(recVM, log, 1)
		if err != nil {
			t.Fatalf("%s: offline replay: %v", want.Name, err)
		}
		if fails := CheckBuggy(col, recVM, s); len(fails) > 0 {
			t.Errorf("%s (committed trace): %v", want.Name, fails)
		}

		ctlVM, _, err := Record(s, false, want.SchedSeed)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		ctlLog, err := os.ReadFile(filepath.Join(goldenDir, want.Name+".control.trace"))
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		ctlCol, err := RunOffline(ctlVM, ctlLog, 1)
		if err != nil {
			t.Fatalf("%s: offline replay: %v", want.Name, err)
		}
		if fails := CheckControl(ctlCol); len(fails) > 0 {
			t.Errorf("%s (committed control trace): %v", want.Name, fails)
		}
	}
}
