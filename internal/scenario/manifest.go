package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The golden-corpus manifest: one schema and one verification routine,
// shared by cmd/scenariogen (-out / -verify) and the in-suite golden tests,
// so the CI integrity step and the test suite can never drift apart.

// ManifestEntry describes one committed golden scenario.
type ManifestEntry struct {
	Name          string   `json:"name"`
	GenSeed       int64    `json:"gen_seed"`
	SchedSeed     int64    `json:"sched_seed"`
	Families      []string `json:"families"`
	Events        int64    `json:"events"`
	SHA256Buggy   string   `json:"sha256_buggy"`
	SHA256Control string   `json:"sha256_control"`
}

// Manifest is the corpus index (manifest.json).
type Manifest struct {
	Scenarios []ManifestEntry `json:"scenarios"`
}

// Digest returns the hex SHA-256 of a trace.
func Digest(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// RecordEntry regenerates both variants of the scenario at the given
// scheduler seed and returns the manifest entry plus the raw trace bytes.
func RecordEntry(s *Scenario, sched int64) (ManifestEntry, []byte, []byte, error) {
	_, buggy, err := Record(s, true, sched)
	if err != nil {
		return ManifestEntry{}, nil, nil, err
	}
	_, control, err := Record(s, false, sched)
	if err != nil {
		return ManifestEntry{}, nil, nil, err
	}
	events, err := CountEvents(buggy)
	if err != nil {
		return ManifestEntry{}, nil, nil, err
	}
	return ManifestEntry{
		Name:          s.Name(),
		GenSeed:       s.Seed,
		SchedSeed:     sched,
		Families:      s.Families(),
		Events:        events,
		SHA256Buggy:   Digest(buggy),
		SHA256Control: Digest(control),
	}, buggy, control, nil
}

// MarshalManifest renders the manifest in the committed on-disk form
// (indented JSON, trailing newline).
func MarshalManifest(m *Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// LoadManifest reads and parses dir/manifest.json.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("bad manifest: %w", err)
	}
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("manifest lists no scenarios")
	}
	return &m, nil
}

// VerifyCorpus checks a corpus directory against its manifest: every entry
// is regenerated and compared against the manifest digests AND the
// committed trace files (a tampered or bit-rotted file fails even if the
// manifest was regenerated alongside it), and the planted-bug expectations
// are re-checked against a live run. It returns the list of problems, empty
// when the corpus is intact.
func VerifyCorpus(dir string) ([]string, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	badf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, want := range m.Scenarios {
		s := Generate(GenConfig{Seed: want.GenSeed})
		got, buggy, control, err := RecordEntry(s, want.SchedSeed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", want.Name, err)
		}
		if want.SHA256Buggy != got.SHA256Buggy {
			badf("%s: buggy digest mismatch: manifest %s, regenerated %s", want.Name, want.SHA256Buggy, got.SHA256Buggy)
		}
		if want.SHA256Control != got.SHA256Control {
			badf("%s: control digest mismatch: manifest %s, regenerated %s", want.Name, want.SHA256Control, got.SHA256Control)
		}
		if want.Events != got.Events {
			badf("%s: events mismatch: manifest %d, regenerated %d", want.Name, want.Events, got.Events)
		}
		if fmt.Sprint(want.Families) != fmt.Sprint(got.Families) {
			badf("%s: families mismatch: manifest %v, regenerated %v", want.Name, want.Families, got.Families)
		}
		for _, f := range []struct {
			name  string
			bytes []byte
		}{{want.Name + ".trace", buggy}, {want.Name + ".control.trace", control}} {
			onDisk, err := os.ReadFile(filepath.Join(dir, f.name))
			if err != nil {
				badf("%s: %v", want.Name, err)
				continue
			}
			if Digest(onDisk) != Digest(f.bytes) {
				badf("%s: committed %s differs from regenerated trace", want.Name, f.name)
			}
		}
		res, err := RunLive(s, true, want.SchedSeed, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", want.Name, err)
		}
		for _, fail := range CheckBuggy(res.Collector, res.VM, s) {
			badf("%s: %s", want.Name, fail)
		}
	}
	return problems, nil
}
