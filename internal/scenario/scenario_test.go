package scenario

import (
	"bytes"
	"testing"
)

// TestGenerateDeterministic: equal seeds produce equal scenarios and equal
// recorded event streams; different seeds produce different programs.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := Generate(GenConfig{Seed: seed})
		b := Generate(GenConfig{Seed: seed})
		if a.Workers() != b.Workers() || a.Resources() != b.Resources() || len(a.Bugs) != len(b.Bugs) {
			t.Fatalf("seed %d: structure differs between generations", seed)
		}
		for variant, buggy := range map[string]bool{"buggy": true, "control": false} {
			_, la, err := Record(a, buggy, 1)
			if err != nil {
				t.Fatalf("seed %d %s: record: %v", seed, variant, err)
			}
			_, lb, err := Record(b, buggy, 1)
			if err != nil {
				t.Fatalf("seed %d %s: record: %v", seed, variant, err)
			}
			if !bytes.Equal(la, lb) {
				t.Fatalf("seed %d %s: recorded streams differ between identical scenarios", seed, variant)
			}
		}
	}
}

// TestForcedKindCoverage: any 7 consecutive derived-seed scenarios cover the
// whole catalog.
func TestForcedKindCoverage(t *testing.T) {
	seen := make(map[BugKind]bool)
	for seed := int64(1); seed <= 7; seed++ {
		s := Generate(GenConfig{Seed: seed})
		if len(s.Bugs) == 0 {
			t.Fatalf("seed %d: no bugs planted", seed)
		}
		for _, b := range s.Bugs {
			seen[b.Kind] = true
		}
	}
	for _, k := range Kinds() {
		if !seen[k] {
			t.Errorf("catalog kind %s not planted by seeds 1..7", k.Family())
		}
	}
}

// TestExplicitKinds: an explicit kind list is planted verbatim (deduplicated)
// and each bug knows its expectations.
func TestExplicitKinds(t *testing.T) {
	s := Generate(GenConfig{Seed: 42, Kinds: []BugKind{BugRaceWW, BugLockOrder, BugRaceWW}})
	if len(s.Bugs) != 2 {
		t.Fatalf("got %d bugs, want 2 (duplicate deduplicated)", len(s.Bugs))
	}
	if s.Bugs[0].Kind != BugRaceWW || s.Bugs[1].Kind != BugLockOrder {
		t.Fatalf("unexpected kinds: %v", s.Families())
	}
	for _, b := range s.Bugs {
		if len(b.Expected()) == 0 {
			t.Errorf("bug %s has no expectations", b.Tag)
		}
	}
}

// TestFamilyRoundTrip: Family and KindByFamily are inverses.
func TestFamilyRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, ok := KindByFamily(k.Family())
		if !ok || got != k {
			t.Errorf("KindByFamily(%q) = %v, %v; want %v, true", k.Family(), got, ok, k)
		}
	}
	if _, ok := KindByFamily("no-such-family"); ok {
		t.Error("KindByFamily accepted an unknown family")
	}
}

// TestControlRunsClean: the control variant of every catalog bug, planted
// alone, executes without guest errors and with zero warnings.
func TestControlRunsClean(t *testing.T) {
	for _, k := range Kinds() {
		s := Generate(GenConfig{Seed: 99, Kinds: []BugKind{k}})
		res, err := RunLive(s, false, 1, 1)
		if err != nil {
			t.Fatalf("%s control: %v", k.Family(), err)
		}
		if fails := CheckControl(res.Collector); len(fails) > 0 {
			t.Errorf("%s control: %v", k.Family(), fails)
		}
	}
}

// TestBuggySingleKind: every catalog bug, planted alone, is reported by its
// expected tools and invisible to its absent-listed tools.
func TestBuggySingleKind(t *testing.T) {
	for _, k := range Kinds() {
		s := Generate(GenConfig{Seed: 99, Kinds: []BugKind{k}})
		res, err := RunLive(s, true, 1, 1)
		if err != nil {
			t.Fatalf("%s buggy: %v", k.Family(), err)
		}
		if fails := CheckBuggy(res.Collector, res.VM, s); len(fails) > 0 {
			t.Errorf("%s buggy:\n  %v\nreport:\n%s", k.Family(), fails, res.Report())
		}
	}
}

// TestScheduleRobustness backs the catalog's central claim: every bug
// construction is schedule-independent, so its expected tools report it (and
// the control stays clean) under EVERY scheduler seed, not just the matrix's
// fixed ones. 25 seeds per kind, sequential pipeline only (shape equivalence
// is TestConformanceMatrix's job).
func TestScheduleRobustness(t *testing.T) {
	const seeds = 25
	for _, k := range Kinds() {
		s := Generate(GenConfig{Seed: 7, Kinds: []BugKind{k}})
		for sched := int64(1); sched <= seeds; sched++ {
			res, err := RunLive(s, true, sched, 1)
			if err != nil {
				t.Fatalf("%s sched %d buggy: %v", k.Family(), sched, err)
			}
			if fails := CheckBuggy(res.Collector, res.VM, s); len(fails) > 0 {
				t.Errorf("%s sched %d buggy: %v", k.Family(), sched, fails)
			}
			ctl, err := RunLive(s, false, sched, 1)
			if err != nil {
				t.Fatalf("%s sched %d control: %v", k.Family(), sched, err)
			}
			if fails := CheckControl(ctl.Collector); len(fails) > 0 {
				t.Errorf("%s sched %d control: %v", k.Family(), sched, fails)
			}
		}
	}
}
