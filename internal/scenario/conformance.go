package scenario

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/deadlock"
	"repro/internal/engine"
	"repro/internal/highlevel"
	"repro/internal/hybrid"
	"repro/internal/lockset"
	"repro/internal/memcheck"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vectorclock"
	"repro/internal/vm"
)

// Canonical report names of the six registered tools (the Spec defaults of
// the detector packages). Expectations are phrased against these.
const (
	ToolLockset   = "helgrind"
	ToolDJIT      = "djit"
	ToolHybrid    = "hybrid"
	ToolDeadlock  = "helgrind-deadlock"
	ToolMemcheck  = "memcheck"
	ToolHighLevel = "highlevel"
)

// AllTools returns the full six-tool registry the conformance suite runs:
// the paper's strongest lock-set configuration (HWLC+DR), the DJIT
// happens-before baseline, the hybrid, and the three auxiliary checkers.
// Every call returns fresh specs; instances never share state.
func AllTools() []trace.ToolSpec {
	return []trace.ToolSpec{
		lockset.Spec(lockset.ConfigHWLCDR()),
		vectorclock.Spec(vectorclock.DefaultConfig()),
		hybrid.Spec(hybrid.Config{}),
		deadlock.Spec(deadlock.Config{}),
		memcheck.Spec(memcheck.Config{}),
		highlevel.Spec(highlevel.Config{}),
	}
}

// Record executes the scenario variant once with only the trace recorder
// attached and returns the machine (for stack/block resolution) plus the
// encoded binary log — the offline half of every pipeline shape, and the
// bytes cmd/scenariogen writes into the golden corpus.
func Record(s *Scenario, buggy bool, schedSeed int64) (*vm.VM, []byte, error) {
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	v := vm.New(vm.Options{Seed: schedSeed})
	v.AddTool(rec)
	if err := v.Run(s.Body(buggy)); err != nil {
		return nil, nil, fmt.Errorf("scenario %s (sched %d): guest: %w", s.Name(), schedSeed, err)
	}
	if err := rec.Flush(); err != nil {
		return nil, nil, err
	}
	return v, buf.Bytes(), nil
}

// RunLive executes the scenario variant live under the full registry through
// core.Run: sequentially for shards <= 1, otherwise across that many engine
// workers consuming the VM stream.
func RunLive(s *Scenario, buggy bool, schedSeed int64, shards int) (*core.Result, error) {
	res, err := core.Run(core.Options{
		Tools:    AllTools(),
		Seed:     schedSeed,
		Parallel: shards,
	}, s.Body(buggy))
	if err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, fmt.Errorf("scenario %s (sched %d, %d shards): guest: %w", s.Name(), schedSeed, shards, res.Err)
	}
	return res, nil
}

// RunOffline replays a recorded log through the full registry, sequentially
// for shards <= 1, otherwise through the sharded engine.
func RunOffline(res trace.Resolver, log []byte, shards int) (*report.Collector, error) {
	pipe, err := engine.NewPipeline(engine.Options{Tools: AllTools(), Resolver: res, Shards: shards})
	if err != nil {
		return nil, err
	}
	if _, err := pipe.ReplayLog(bytes.NewReader(log)); err != nil {
		pipe.Close()
		return nil, err
	}
	return pipe.Close()
}

// MatrixResult is the outcome of one scenario variant run through every
// pipeline shape at one scheduler seed.
type MatrixResult struct {
	// Formats maps shape name ("live-seq", "offline-shard4", ...) to the
	// fully rendered report. All values must be byte-identical.
	Formats map[string]string
	// Order lists the shape names in run order (Formats is a map).
	Order []string
	// Canonical is the collector of the first live run; Resolver resolves
	// its stacks and blocks.
	Canonical *report.Collector
	Resolver  trace.Resolver
}

// Mismatch compares all reports and returns "" when they are byte-identical,
// otherwise a description naming the first differing pair.
func (m *MatrixResult) Mismatch() string {
	if len(m.Order) == 0 {
		return ""
	}
	ref := m.Order[0]
	for _, name := range m.Order[1:] {
		if m.Formats[name] != m.Formats[ref] {
			return fmt.Sprintf("report mismatch between %s and %s:\n--- %s ---\n%s\n--- %s ---\n%s",
				ref, name, ref, m.Formats[ref], name, m.Formats[name])
		}
	}
	return ""
}

// RunMatrix runs one scenario variant through {sequential, shards...} ×
// {live, offline} under the full registry at one scheduler seed.
func RunMatrix(s *Scenario, buggy bool, schedSeed int64, shardCounts []int) (*MatrixResult, error) {
	m := &MatrixResult{Formats: make(map[string]string)}
	add := func(name, format string) {
		m.Formats[name] = format
		m.Order = append(m.Order, name)
	}
	shapeName := func(prefix string, shards int) string {
		if shards <= 1 {
			return prefix + "-seq"
		}
		return fmt.Sprintf("%s-shard%d", prefix, shards)
	}

	for _, shards := range shardCounts {
		res, err := RunLive(s, buggy, schedSeed, shards)
		if err != nil {
			return nil, err
		}
		add(shapeName("live", shards), res.Report())
		if m.Canonical == nil {
			m.Canonical = res.Collector
			m.Resolver = res.VM
		}
	}

	recVM, log, err := Record(s, buggy, schedSeed)
	if err != nil {
		return nil, err
	}
	for _, shards := range shardCounts {
		col, err := RunOffline(recVM, log, shards)
		if err != nil {
			return nil, err
		}
		add(shapeName("offline", shards), col.Format())
	}
	return m, nil
}

// CountEvents decodes a log just to count its events.
func CountEvents(log []byte) (int64, error) {
	return tracelog.Replay(bytes.NewReader(log), trace.BaseSink{})
}

// CheckBuggy verifies the planted-bug contract against a buggy-variant
// report: every expected warning present, every differential absence
// honoured, and every reported site attributable to a planted bug (the
// benign workload must stay clean even in the buggy variant). It returns a
// list of human-readable failures, empty on success.
func CheckBuggy(col *report.Collector, res trace.Resolver, s *Scenario) []string {
	var fails []string
	sites := col.Sites()
	tagOf := func(w *report.Warning) string {
		if blk := res.BlockInfo(w.Block); blk != nil {
			return blk.Tag
		}
		return ""
	}

	for _, b := range s.Bugs {
		for _, e := range b.Expected() {
			found := false
			for _, w := range sites {
				if w.Tool == e.Tool && w.Kind == e.Kind && (e.BlockTag == "" || tagOf(w) == e.BlockTag) {
					found = true
					break
				}
			}
			if !found {
				fails = append(fails, fmt.Sprintf("false negative: %s not reported for planted bug %s", e, b.Tag))
			}
		}
		for _, e := range b.Absent() {
			for _, w := range sites {
				if w.Tool == e.Tool && w.Kind == e.Kind && tagOf(w) == e.BlockTag {
					fails = append(fails, fmt.Sprintf("differential violation: %s reported, but bug %s must be invisible to %s", e, b.Tag, e.Tool))
					break
				}
			}
		}
	}

	bugTags := make(map[string]bool, len(s.Bugs))
	for _, b := range s.Bugs {
		bugTags[b.Tag] = true
	}
	hasLockOrder := s.HasKind(BugLockOrder)
	for _, w := range sites {
		tag := tagOf(w)
		if bugTags[tag] {
			continue
		}
		if tag == "" && w.Kind == trace.KindDeadlock && hasLockOrder {
			continue
		}
		fails = append(fails, fmt.Sprintf("stray warning %s/%s on tag %q: not attributable to any planted bug", w.Tool, w.Kind.Category(), tag))
	}
	return fails
}

// CheckControl verifies the control-variant contract: no warnings at all.
func CheckControl(col *report.Collector) []string {
	if col.Locations() == 0 {
		return nil
	}
	var fails []string
	for _, w := range col.Sites() {
		fails = append(fails, fmt.Sprintf("control variant warning: %s/%s (state %q)", w.Tool, w.Kind.Category(), w.State))
	}
	return fails
}

// FoundByFamily tallies, per planted-bug family, how many of the bug's
// expected warnings were found in the report — the expected-vs-found summary
// cmd/scenariogen prints and CHANGES.md records.
type FamilyTally struct {
	Family   string
	Expected int
	Found    int
}

// TallyFamilies computes the per-family expected-vs-found counts for one
// buggy-variant report.
func TallyFamilies(col *report.Collector, res trace.Resolver, s *Scenario) []FamilyTally {
	sites := col.Sites()
	tagOf := func(w *report.Warning) string {
		if blk := res.BlockInfo(w.Block); blk != nil {
			return blk.Tag
		}
		return ""
	}
	byFam := make(map[string]*FamilyTally)
	var order []string
	for _, b := range s.Bugs {
		fam := b.Kind.Family()
		t, ok := byFam[fam]
		if !ok {
			t = &FamilyTally{Family: fam}
			byFam[fam] = t
			order = append(order, fam)
		}
		for _, e := range b.Expected() {
			t.Expected++
			for _, w := range sites {
				if w.Tool == e.Tool && w.Kind == e.Kind && (e.BlockTag == "" || tagOf(w) == e.BlockTag) {
					t.Found++
					break
				}
			}
		}
	}
	out := make([]FamilyTally, 0, len(order))
	for _, fam := range order {
		out = append(out, *byFam[fam])
	}
	return out
}
