package scenario

import (
	"repro/internal/trace"
	"repro/internal/tracelog"
	"repro/internal/vm"
)

// CaptureMetadata dumps the recording VM's interned stack table and block
// descriptors into the wire metadata a resolving ingest client sends
// alongside its trace (tracelog.FrameMetadata). Streaming this with the
// recorded log lets a live server render the session report with exactly the
// stack/block resolution an offline replay gets by holding the VM itself.
func CaptureMetadata(v *vm.VM) *tracelog.Metadata {
	md := &tracelog.Metadata{
		Stacks: make(map[trace.StackID][]trace.Frame),
		Blocks: make(map[trace.BlockID]trace.Block),
	}
	st := v.Stacks()
	for id := trace.StackID(1); int(id) < st.Len(); id++ {
		md.Stacks[id] = st.Frames(id)
	}
	for id := trace.BlockID(1); ; id++ {
		blk := v.BlockInfo(id)
		if blk == nil {
			break
		}
		md.Blocks[id] = *blk
	}
	return md
}

// Resolver builds a trace.Resolver over captured metadata — the offline
// counterpart of the table resolver a server accumulates from metadata
// frames, for computing reference reports that must render byte-identically
// to live session reports. A nil metadata yields a nil resolver.
func Resolver(md *tracelog.Metadata) trace.Resolver {
	if md.Empty() {
		return nil
	}
	r := tracelog.NewTableResolver()
	r.AddMetadata(md)
	return r
}
