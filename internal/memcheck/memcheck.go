// Package memcheck implements a minimal memory-checking tool: accesses to
// freed guest blocks and double frees. The paper leans on this capability in
// §4.2.1: the destructor annotation marks deleted memory exclusive, which is
// sound because "accesses to released memory blocks" are the province of
// ordinary memory checkers — this tool closes that loop.
package memcheck

import (
	"repro/internal/report"
	"repro/internal/trace"
)

// Config parameterises the tool.
type Config struct {
	// Tool is the report name; defaults to "memcheck".
	Tool string
}

// Detector is the memcheck tool.
type Detector struct {
	trace.BaseSink
	cfg Config
	col trace.Reporter
	// freed maps a freed block to the base address it had when freed. The
	// base is recorded here, not re-read from the double free's descriptor:
	// the log decoder evicts a block from its table at the first free (the
	// table must stay bounded by the live set), so a second free of the same
	// ID arrives carrying only the bare ID.
	freed  map[trace.BlockID]trace.Addr
	live   map[trace.BlockID]uint32 // allocated, not yet freed → size
	errors int
}

// Spec registers the tool with the analysis engine's tool registry. Memcheck
// is block-routed — and therefore truly sharded: its entire state is the
// per-block freed flag, and both of its warnings (use after free, double
// free) arise from events carrying that block. An instance never needs to
// see any other block's events, so partitioning by block hash is exact.
func Spec(cfg Config) trace.ToolSpec {
	if cfg.Tool == "" {
		cfg.Tool = "memcheck"
	}
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a memcheck tool writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	if cfg.Tool == "" {
		cfg.Tool = "memcheck"
	}
	return &Detector{
		cfg:   cfg,
		col:   col,
		freed: make(map[trace.BlockID]trace.Addr),
		live:  make(map[trace.BlockID]uint32),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Errors returns the number of dynamic invalid accesses observed.
func (d *Detector) Errors() int { return d.errors }

// Leaks returns the end-of-run leak summary: blocks allocated but never
// freed, and their total byte size. Only meaningful once the stream has
// ended.
func (d *Detector) Leaks() (blocks int, bytes int64) {
	for _, size := range d.live {
		blocks++
		bytes += int64(size)
	}
	return blocks, bytes
}

// SummaryCounts implements trace.Summarizer. Every counter is per-block
// state, so summing instances over the engine's disjoint block partitions
// reproduces the sequential totals exactly — this is how parallel runs keep
// the end-of-run memcheck summary that Result.MemcheckDetector (one instance
// per shard, hence nil) cannot provide.
func (d *Detector) SummaryCounts() trace.ToolSummary {
	blocks, bytes := d.Leaks()
	return trace.ToolSummary{
		"errors":        int64(d.errors),
		"leaked-blocks": int64(blocks),
		"leaked-bytes":  bytes,
	}
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	d.live[b.ID] = b.Size
}

// Free implements trace.Sink.
func (d *Detector) Free(b *trace.Block, t trace.ThreadID, stack trace.StackID) {
	if base, dup := d.freed[b.ID]; dup {
		d.errors++
		d.col.Add(report.Warning{
			Tool:   d.cfg.Tool,
			Kind:   report.KindInvalidFree,
			Thread: t,
			Addr:   base, // recorded at first free; see the freed field
			Block:  b.ID,
			Stack:  stack,
			State:  "block already freed",
		})
		return
	}
	d.freed[b.ID] = b.Base
	delete(d.live, b.ID)
}

// Access implements trace.Sink.
func (d *Detector) Access(a *trace.Access) {
	if _, freed := d.freed[a.Block]; !freed {
		return
	}
	d.errors++
	d.col.Add(report.Warning{
		Tool:   d.cfg.Tool,
		Kind:   report.KindUseAfterFree,
		Thread: a.Thread,
		Addr:   a.Addr,
		Block:  a.Block,
		Off:    a.Off,
		Size:   a.Size,
		Access: a.Kind,
		Stack:  a.Stack,
		State:  "use after free",
	})
}

var (
	_ trace.Sink       = (*Detector)(nil)
	_ trace.Summarizer = (*Detector)(nil)
)
