// Package memcheck implements a minimal memory-checking tool: accesses to
// freed guest blocks and double frees. The paper leans on this capability in
// §4.2.1: the destructor annotation marks deleted memory exclusive, which is
// sound because "accesses to released memory blocks" are the province of
// ordinary memory checkers — this tool closes that loop.
package memcheck

import (
	"repro/internal/report"
	"repro/internal/trace"
)

// Config parameterises the tool.
type Config struct {
	// Tool is the report name; defaults to "memcheck".
	Tool string
}

// blkState is one block's lifecycle record. The base address is captured
// when the block is freed, not re-read from the double free's descriptor:
// the log decoder evicts a block from its table at the first free (the
// table must stay bounded by the live set), so a second free of the same
// ID arrives carrying only the bare ID.
type blkState struct {
	base   trace.Addr
	size   uint32
	status uint8
}

const (
	blkUnseen uint8 = iota
	blkLive
	blkFreed
)

// Detector is the memcheck tool. Block state lives in a flat slice behind a
// dense remapper, so the per-access freed check is an array load. Unlike the
// race detectors, no slot is ever evicted: a freed block's record must
// outlive the block forever to catch double frees and use after free.
type Detector struct {
	trace.BaseSink
	cfg    Config
	col    trace.Reporter
	blkIx  trace.Dense
	blocks []blkState
	errors int
}

// Spec registers the tool with the analysis engine's tool registry. Memcheck
// is block-routed — and therefore truly sharded: its entire state is the
// per-block freed flag, and both of its warnings (use after free, double
// free) arise from events carrying that block. An instance never needs to
// see any other block's events, so partitioning by block hash is exact.
func Spec(cfg Config) trace.ToolSpec {
	if cfg.Tool == "" {
		cfg.Tool = "memcheck"
	}
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a memcheck tool writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	if cfg.Tool == "" {
		cfg.Tool = "memcheck"
	}
	return &Detector{cfg: cfg, col: col}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Errors returns the number of dynamic invalid accesses observed.
func (d *Detector) Errors() int { return d.errors }

// Leaks returns the end-of-run leak summary: blocks allocated but never
// freed, and their total byte size. Only meaningful once the stream has
// ended.
func (d *Detector) Leaks() (blocks int, bytes int64) {
	for i := range d.blocks {
		if d.blocks[i].status == blkLive {
			blocks++
			bytes += int64(d.blocks[i].size)
		}
	}
	return blocks, bytes
}

// SummaryCounts implements trace.Summarizer. Every counter is per-block
// state, so summing instances over the engine's disjoint block partitions
// reproduces the sequential totals exactly — this is how parallel runs keep
// the end-of-run memcheck summary that Result.MemcheckDetector (one instance
// per shard, hence nil) cannot provide.
func (d *Detector) SummaryCounts() trace.ToolSummary {
	blocks, bytes := d.Leaks()
	return trace.ToolSummary{
		"errors":        int64(d.errors),
		"leaked-blocks": int64(blocks),
		"leaked-bytes":  bytes,
	}
}

func (d *Detector) block(id trace.BlockID) *blkState {
	bi := d.blkIx.Index(int32(id))
	for len(d.blocks) <= bi {
		d.blocks = append(d.blocks, blkState{})
	}
	return &d.blocks[bi]
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	s := d.block(b.ID)
	s.status = blkLive
	s.size = b.Size
}

// Free implements trace.Sink.
func (d *Detector) Free(b *trace.Block, t trace.ThreadID, stack trace.StackID) {
	s := d.block(b.ID)
	if s.status == blkFreed {
		d.errors++
		d.col.Add(report.Warning{
			Tool:   d.cfg.Tool,
			Kind:   report.KindInvalidFree,
			Thread: t,
			Addr:   s.base, // recorded at first free; see blkState
			Block:  b.ID,
			Stack:  stack,
			State:  "block already freed",
		})
		return
	}
	s.status = blkFreed
	s.base = b.Base
}

// Access implements trace.Sink.
func (d *Detector) Access(a *trace.Access) {
	bi := d.blkIx.Lookup(int32(a.Block))
	if bi < 0 || d.blocks[bi].status != blkFreed {
		return
	}
	d.errors++
	d.col.Add(report.Warning{
		Tool:   d.cfg.Tool,
		Kind:   report.KindUseAfterFree,
		Thread: a.Thread,
		Addr:   a.Addr,
		Block:  a.Block,
		Off:    a.Off,
		Size:   a.Size,
		Access: a.Kind,
		Stack:  a.Stack,
		State:  "use after free",
	})
}

var (
	_ trace.Sink       = (*Detector)(nil)
	_ trace.Summarizer = (*Detector)(nil)
)
