package memcheck

import (
	"testing"

	"repro/internal/report"
	"repro/internal/vm"
)

func run(t *testing.T, body func(*vm.Thread)) (*Detector, *report.Collector) {
	t.Helper()
	v := vm.New(vm.Options{Seed: 1})
	col := report.NewCollector(v, nil)
	d := New(Config{}, col)
	v.AddTool(d)
	if err := v.Run(body); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return d, col
}

func TestUseAfterFree(t *testing.T) {
	d, col := run(t, func(main *vm.Thread) {
		b := main.Alloc(8, "x")
		b.Store32(main, 0, 1)
		b.Free(main)
		b.Load32(main, 0) // UAF
	})
	if d.Errors() != 1 {
		t.Errorf("errors = %d, want 1", d.Errors())
	}
	if got := col.CountByKind()[report.KindUseAfterFree]; got != 1 {
		t.Errorf("UAF warnings = %d, want 1", got)
	}
}

func TestDoubleFree(t *testing.T) {
	_, col := run(t, func(main *vm.Thread) {
		b := main.Alloc(8, "x")
		b.Free(main)
		b.Free(main)
	})
	if got := col.CountByKind()[report.KindInvalidFree]; got != 1 {
		t.Errorf("invalid-free warnings = %d, want 1", got)
	}
}

func TestCleanProgramSilent(t *testing.T) {
	d, col := run(t, func(main *vm.Thread) {
		for i := 0; i < 10; i++ {
			b := main.Alloc(16, "x")
			b.Store64(main, 0, uint64(i))
			b.Load64(main, 0)
			b.Free(main)
		}
	})
	if d.Errors() != 0 || col.Locations() != 0 {
		t.Errorf("clean program reported %d errors:\n%s", d.Errors(), col.Format())
	}
}

func TestDtorUseAfterDeleteCaught(t *testing.T) {
	// §4.2.1's soundness argument: if a guest accesses the object after
	// delete (free), the memory checker flags it even though the race
	// detector was told the memory is exclusively owned.
	d, _ := run(t, func(main *vm.Thread) {
		obj := main.Alloc(16, "obj:Session")
		obj.Store64(main, 0, 0xC0FFEE)
		obj.Free(main)
		w := main.Go("stale-user", func(th *vm.Thread) {
			obj.Load64(th, 0) // dangling access from another thread
		})
		main.Join(w)
	})
	if d.Errors() == 0 {
		t.Error("dangling access after delete not caught")
	}
}

func TestLeakSummary(t *testing.T) {
	d, _ := run(t, func(main *vm.Thread) {
		leak1 := main.Alloc(24, "leak")
		leak2 := main.Alloc(8, "leak")
		leak1.Store32(main, 0, 1)
		leak2.Store32(main, 0, 1)
		ok := main.Alloc(16, "ok")
		ok.Free(main)
		dbl := main.Alloc(4, "double")
		dbl.Free(main)
		dbl.Free(main) // double free: must not resurrect the block as live
	})
	if blocks, bytes := d.Leaks(); blocks != 2 || bytes != 32 {
		t.Errorf("Leaks = (%d, %d), want (2, 32)", blocks, bytes)
	}
	sum := d.SummaryCounts()
	if sum["errors"] != 1 || sum["leaked-blocks"] != 2 || sum["leaked-bytes"] != 32 {
		t.Errorf("SummaryCounts = %v, want errors=1 leaked-blocks=2 leaked-bytes=32", sum)
	}
}

func TestNoLeaksCleanRun(t *testing.T) {
	d, _ := run(t, func(main *vm.Thread) {
		b := main.Alloc(64, "x")
		b.Store64(main, 0, 1)
		b.Free(main)
	})
	if blocks, bytes := d.Leaks(); blocks != 0 || bytes != 0 {
		t.Errorf("Leaks = (%d, %d), want (0, 0)", blocks, bytes)
	}
}
