// Package lockset implements the paper's core contribution: the Eraser
// lock-set algorithm [14] as implemented in Helgrind, extended with
//
//   - the memory-location state machine of Fig. 1 (NEW → EXCLUSIVE →
//     SHARED / SHARED-MODIFIED, warnings only in SHARED-MODIFIED),
//   - thread segments from Visual Threads [5] (Fig. 2): EXCLUSIVE ownership
//     transfers between happens-before-ordered segments,
//   - read-write-lock awareness (locks "held in any mode" vs. "held in write
//     mode", §2.3.2),
//   - both hardware bus-lock emulations (§3.1/§4.2.2): the original single
//     pseudo-mutex model and the corrected read-write-lock model (HWLC),
//   - the automatic destructor annotation (§3.1/§4.2.1): the HG_DESTRUCT
//     client request marks an object exclusive to the deleting thread (DR).
//
// The three detector configurations evaluated in Fig. 5/6 — Original, HWLC
// and HWLC+DR — are exposed as constructors.
package lockset

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/segments"
	"repro/internal/trace"
)

// BusModel selects how the x86 LOCK prefix (hardware bus lock) is emulated.
type BusModel uint8

// Bus-lock emulation models.
const (
	// BusNone ignores bus-locked accesses entirely (ablation).
	BusNone BusModel = iota
	// BusSingleMutex is the original Helgrind model: a pseudo-mutex is held
	// (in both modes) exactly for the duration of a LOCK-prefixed
	// instruction. Plain reads never hold it, so mixed plain-read /
	// atomic-write locations (COW string reference counters) are reported.
	BusSingleMutex
	// BusRWLock is the paper's correction (HWLC): the bus lock is a
	// read-write lock held for reading by EVERY read access and for writing
	// by bus-locked writes. Locations whose writes are all atomic then keep
	// the bus lock in their candidate set and stop being reported.
	BusRWLock
)

func (m BusModel) String() string {
	switch m {
	case BusNone:
		return "none"
	case BusSingleMutex:
		return "single-mutex"
	default:
		return "rwlock"
	}
}

// Config parameterises the detector.
type Config struct {
	// Tool is the name used in reports; defaults to "helgrind".
	Tool string
	// Bus selects the bus-lock emulation.
	Bus BusModel
	// Destruct honours HG_DESTRUCT client requests (the DR improvement).
	Destruct bool
	// ThreadSegments enables the Visual Threads segment refinement. When
	// false, EXCLUSIVE ownership is per-thread, as in original Eraser.
	ThreadSegments bool
	// Mask selects which segment edges count for happens-before. Helgrind
	// understands program order and create/join (trace.MaskHelgrind);
	// trace.MaskFull adds queue/cond/sem edges — the future-work extension
	// that removes the Fig. 11 thread-pool false positives.
	Mask trace.EdgeMask
	// Granule is the shadow-state granularity in bytes (default 4).
	Granule int
}

// IsZero reports whether c is the zero configuration — no field set at all.
// core.Run replaces only the zero value with the paper's strongest default
// (HWLC+DR); a configuration with any field set explicitly (Tool, Granule,
// ThreadSegments, ...) is taken at face value, so an intentionally minimal
// detector — e.g. Config{Tool: "bare"} — is never silently upgraded.
func (c Config) IsZero() bool { return c == Config{} }

func (c Config) withDefaults() Config {
	if c.Tool == "" {
		c.Tool = "helgrind"
	}
	if c.Mask == 0 {
		c.Mask = trace.MaskHelgrind
	}
	if c.Granule <= 0 {
		c.Granule = 4
	}
	return c
}

// ConfigOriginal is the stock Helgrind configuration of the paper's first
// experimental run (Fig. 6 column "Original").
func ConfigOriginal() Config {
	return Config{Bus: BusSingleMutex, Destruct: false, ThreadSegments: true}
}

// ConfigHWLC adds the corrected hardware bus lock (Fig. 6 column "HWLC").
func ConfigHWLC() Config {
	return Config{Bus: BusRWLock, Destruct: false, ThreadSegments: true}
}

// ConfigHWLCDR additionally honours the destructor annotation (Fig. 6 column
// "HWLC+DR").
func ConfigHWLCDR() Config {
	return Config{Bus: BusRWLock, Destruct: true, ThreadSegments: true}
}

// state is the Fig. 1 state machine.
type state uint8

const (
	stNew state = iota
	stExclusive
	stSharedRead
	stSharedMod
)

func (s state) String() string {
	switch s {
	case stNew:
		return "new"
	case stExclusive:
		return "exclusive"
	case stSharedRead:
		return "shared RO"
	default:
		return "shared modified"
	}
}

// gran is the per-granule shadow state.
type gran struct {
	st       state
	ownerTh  trace.ThreadID
	ownerSeg trace.SegmentID
	set      SetID
	benign   bool
}

// threadLocks tracks one thread's four interned lock-set variants (any/write
// mode, with/without the bus pseudo-lock). The sets are maintained
// incrementally: acquire and release walk a single memoised transition edge
// per variant in the SetTable instead of re-sorting and re-interning the held
// set, so steady-state lock traffic — including the broadcast path of the
// parallel engine, where every shard observes every lock event — costs a few
// map hits and no allocation.
type threadLocks struct {
	init         bool
	curSeg       trace.SegmentID
	anyMode      SetID
	anyPlusBus   SetID
	writeMode    SetID
	writePlusBus SetID
}

// Detector is the lock-set race detector tool. Per-thread and per-block state
// lives in flat slices indexed through dense ID remappers; block shadow
// arrays are slab-recycled when the block is freed, so shadow memory tracks
// the live heap rather than the allocation history.
type Detector struct {
	trace.BaseSink
	cfg     Config
	sets    *SetTable
	graph   *segments.Graph
	col     trace.Reporter
	thIx    trace.Dense
	blkIx   trace.Dense
	threads []threadLocks
	shadow  [][]gran
	slab    trace.Slab[gran]
	races   int // dynamic race reports, pre-dedup
}

// Factory returns a constructor building an independent detector per
// collector — the shape the parallel engine wants for its per-shard
// detectors. Each instance owns all of its state (set table, segment graph,
// shadow memory), so instances never share mutable state.
//
// Deprecated: register the detector through Spec instead; Factory remains
// for single-tool engine callers.
func Factory(cfg Config) func(col *report.Collector) trace.Sink {
	return func(col *report.Collector) trace.Sink { return New(cfg, col) }
}

// Spec registers the detector with the analysis engine's tool registry. The
// detector is block-routed: its warning-producing shadow state is per heap
// block and warnings arise only from block-carrying events, while the
// thread/lock/segment state it also keeps is derived purely from broadcast
// events and therefore evolves identically in every shard.
func Spec(cfg Config) trace.ToolSpec {
	cfg = cfg.withDefaults()
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a detector writing to the given collector.
func New(cfg Config, col trace.Reporter) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:   cfg,
		sets:  NewSetTable(),
		graph: segments.NewGraph(cfg.Mask),
		col:   col,
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Sets exposes the lock-set intern table (for tests and diagnostics).
func (d *Detector) Sets() *SetTable { return d.sets }

// DynamicRaces returns the number of dynamic (pre-deduplication) race
// reports.
func (d *Detector) DynamicRaces() int { return d.races }

func (d *Detector) thread(id trace.ThreadID) *threadLocks {
	ti := d.thIx.Index(int32(id))
	for len(d.threads) <= ti {
		d.threads = append(d.threads, threadLocks{})
	}
	tl := &d.threads[ti]
	if !tl.init {
		// The zero SetID is the empty set, which is right for any/write mode,
		// but the plus-bus variants start at {bus}.
		tl.init = true
		tl.anyPlusBus = d.sets.Add(EmptySet, trace.BusLock)
		tl.writePlusBus = tl.anyPlusBus
	}
	return tl
}

// Acquire implements trace.Sink. Re-acquiring a held lock with a different
// kind reclassifies it, matching the last-kind-wins semantics of tracking
// held locks in a map: a downgrade to read mode drops it from the write-mode
// set.
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	tl := d.thread(t)
	tl.anyMode = d.sets.Add(tl.anyMode, l)
	tl.anyPlusBus = d.sets.Add(tl.anyMode, trace.BusLock)
	if k == trace.Mutex || k == trace.WLock {
		tl.writeMode = d.sets.Add(tl.writeMode, l)
	} else {
		tl.writeMode = d.sets.Remove(tl.writeMode, l)
	}
	tl.writePlusBus = d.sets.Add(tl.writeMode, trace.BusLock)
}

// Release implements trace.Sink.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, _ trace.LockKind, _ trace.StackID) {
	tl := d.thread(t)
	tl.anyMode = d.sets.Remove(tl.anyMode, l)
	tl.anyPlusBus = d.sets.Add(tl.anyMode, trace.BusLock)
	tl.writeMode = d.sets.Remove(tl.writeMode, l)
	tl.writePlusBus = d.sets.Add(tl.writeMode, trace.BusLock)
}

// Segment implements trace.Sink.
func (d *Detector) Segment(ss *trace.SegmentStart) {
	d.graph.Add(ss)
	d.thread(ss.Thread).curSeg = ss.Seg
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	n := (int(b.Size) + d.cfg.Granule - 1) / d.cfg.Granule
	bi := d.blkIx.Index(int32(b.ID))
	for len(d.shadow) <= bi {
		d.shadow = append(d.shadow, nil)
	}
	d.shadow[bi] = d.slab.Get(n)
}

// Free implements trace.Sink. Freed memory is unaddressable; races on it are
// the memcheck tool's business (§4.2.1). The block's shadow cells go back to
// the slab and its dense slot is recycled — the VM never reuses block IDs, so
// an evicted block can never be accessed again.
func (d *Detector) Free(b *trace.Block, _ trace.ThreadID, _ trace.StackID) {
	if bi := d.blkIx.Evict(int32(b.ID)); bi >= 0 {
		d.slab.Put(d.shadow[bi])
		d.shadow[bi] = nil
	}
}

// heldSets returns the effective (any-mode, write-mode) lock-sets for an
// access, applying the configured bus-lock model.
func (d *Detector) heldSets(tl *threadLocks, a *trace.Access) (anyM, wrM SetID) {
	anyM, wrM = tl.anyMode, tl.writeMode
	switch d.cfg.Bus {
	case BusSingleMutex:
		// The pseudo-mutex is held (in both modes) only during the
		// LOCK-prefixed instruction itself.
		if a.Atomic {
			anyM, wrM = tl.anyPlusBus, tl.writePlusBus
		}
	case BusRWLock:
		// Every read holds the bus lock in read mode; only bus-locked
		// writes hold it in write mode.
		anyM = tl.anyPlusBus
		if a.Atomic {
			wrM = tl.writePlusBus
		}
	}
	return anyM, wrM
}

// Access implements trace.Sink: the Eraser state machine with thread
// segments.
func (d *Detector) Access(a *trace.Access) {
	bi := d.blkIx.Lookup(int32(a.Block))
	if bi < 0 {
		return
	}
	sh := d.shadow[bi]
	tl := d.thread(a.Thread)
	anyM, wrM := d.heldSets(tl, a)
	lo := int(a.Off) / d.cfg.Granule
	hi := int(a.Off+a.Size-1) / d.cfg.Granule
	for gi := lo; gi <= hi && gi < len(sh); gi++ {
		d.step(&sh[gi], a, gi, anyM, wrM)
	}
}

// step advances one granule through the Fig. 1 state machine.
func (d *Detector) step(g *gran, a *trace.Access, gi int, anyM, wrM SetID) {
	if g.benign {
		return
	}
	switch g.st {
	case stNew:
		g.st = stExclusive
		g.ownerTh = a.Thread
		g.ownerSeg = a.Seg

	case stExclusive:
		if g.ownerTh == a.Thread {
			// Same thread: ownership follows program order.
			g.ownerSeg = a.Seg
			return
		}
		if d.cfg.ThreadSegments && d.graph.HappensBefore(g.ownerSeg, a.Seg) {
			// Visual Threads refinement: non-overlapping segments keep the
			// location exclusive; the new segment becomes the owner.
			g.ownerTh = a.Thread
			g.ownerSeg = a.Seg
			return
		}
		// Concurrent access by another thread: enter a shared state and
		// initialise the lock-set with the locks held now (delayed
		// initialisation — the §4.3 false-negative source).
		if a.Kind == trace.Read {
			g.st = stSharedRead
			g.set = d.sets.Intersect(Universe, anyM)
			return
		}
		g.st = stSharedMod
		g.set = d.sets.Intersect(Universe, wrM)
		if g.set == EmptySet {
			d.report(g, a, gi, stExclusive)
		}

	case stSharedRead:
		if a.Kind == trace.Read {
			g.set = d.sets.Intersect(g.set, anyM)
			return
		}
		prevSet := g.set
		g.st = stSharedMod
		g.set = d.sets.Intersect(g.set, wrM)
		if g.set == EmptySet {
			d.reportWithSet(g, a, gi, stSharedRead, prevSet)
		}

	case stSharedMod:
		if a.Kind == trace.Read {
			g.set = d.sets.Intersect(g.set, anyM)
		} else {
			g.set = d.sets.Intersect(g.set, wrM)
		}
		if g.set == EmptySet {
			d.report(g, a, gi, stSharedMod)
		}
	}
}

// Request implements trace.Sink: client requests (Fig. 4).
func (d *Detector) Request(r *trace.Request) {
	bi := d.blkIx.Lookup(int32(r.Block))
	if bi < 0 {
		return
	}
	sh := d.shadow[bi]
	lo := int(r.Off) / d.cfg.Granule
	hi := int(r.Off+r.Size-1) / d.cfg.Granule
	if r.Size == 0 {
		hi = lo - 1
	}
	for gi := lo; gi <= hi && gi < len(sh); gi++ {
		g := &sh[gi]
		switch r.Kind {
		case trace.ReqDestruct:
			if !d.cfg.Destruct {
				continue
			}
			// Mark the object's memory exclusively owned by the deleting
			// thread. Accesses by other threads during destruction are
			// still detected, because they re-enter the shared states.
			g.st = stExclusive
			g.ownerTh = r.Thread
			g.ownerSeg = d.thread(r.Thread).curSeg
			g.set = EmptySet
		case trace.ReqBenign:
			g.benign = true
		case trace.ReqCleanMemory:
			*g = gran{}
		}
	}
}

func (d *Detector) report(g *gran, a *trace.Access, gi int, prev state) {
	d.reportWithSet(g, a, gi, prev, g.set)
}

func (d *Detector) reportWithSet(g *gran, a *trace.Access, gi int, prev state, prevSet SetID) {
	d.races++
	// Every violating access reports; the collector deduplicates per call
	// stack, which matches how Helgrind output is triaged (and suppressed)
	// in practice — by stack pattern, one "location" per distinct site.
	stateDesc := prev.String()
	switch {
	case prev == stExclusive:
		stateDesc = fmt.Sprintf("exclusive to thread %d", g.ownerTh)
	case prevSet == EmptySet:
		stateDesc += ", no locks"
	default:
		stateDesc += fmt.Sprintf(", %d candidate lock(s)", d.sets.Size(prevSet))
	}
	d.col.Add(report.Warning{
		Tool:   d.cfg.Tool,
		Kind:   report.KindRace,
		Thread: a.Thread,
		Addr:   a.Addr,
		Block:  a.Block,
		Off:    a.Off,
		Size:   a.Size,
		Access: a.Kind,
		Stack:  a.Stack,
		State:  stateDesc,
	})
}

var _ trace.Sink = (*Detector)(nil)
