package lockset

import (
	"testing"

	"repro/internal/trace"
)

func TestAddRemoveMatchIntern(t *testing.T) {
	st := NewSetTable()
	base := st.Intern([]trace.LockID{3, 7})

	if got, want := st.Add(base, 5), st.Intern([]trace.LockID{3, 5, 7}); got != want {
		t.Errorf("Add({3,7},5) = %d, want %d", got, want)
	}
	if got := st.Add(base, 7); got != base {
		t.Errorf("Add({3,7},7) = %d, want identity %d", got, base)
	}
	if got, want := st.Remove(base, 3), st.Intern([]trace.LockID{7}); got != want {
		t.Errorf("Remove({3,7},3) = %d, want %d", got, want)
	}
	if got := st.Remove(base, 99); got != base {
		t.Errorf("Remove({3,7},99) = %d, want identity %d", got, base)
	}
	if got := st.Remove(st.Intern([]trace.LockID{4}), 4); got != EmptySet {
		t.Errorf("Remove({4},4) = %d, want EmptySet", got)
	}
	if got := st.Add(EmptySet, 9); got != st.Intern([]trace.LockID{9}) {
		t.Errorf("Add(∅,9) did not intern {9}")
	}
	if got := st.Add(Universe, 9); got != Universe {
		t.Errorf("Add(Universe,9) = %d, want Universe", got)
	}

	// Round trip: walking acquires then releases returns to the start.
	id := EmptySet
	for _, l := range []trace.LockID{8, 2, 5} {
		id = st.Add(id, l)
	}
	for _, l := range []trace.LockID{5, 8, 2} {
		id = st.Remove(id, l)
	}
	if id != EmptySet {
		t.Errorf("acquire/release round trip landed on %d, want EmptySet", id)
	}
}

// TestZeroAllocSetTable pins the steady-state allocation behaviour the hot
// path depends on: interning a set already in the table, and re-walking a
// cached Add/Remove transition edge, must not allocate. (The name matches the
// CI allocation-budget test pattern.)
func TestZeroAllocSetTable(t *testing.T) {
	st := NewSetTable()
	locks := []trace.LockID{31, 4, 15, 9}
	id := st.Intern(locks)
	st.Add(id, 26)    // warm the edge caches
	st.Remove(id, 15) // before measuring

	if allocs := testing.AllocsPerRun(100, func() {
		if st.Intern(locks) != id {
			t.Fatal("intern result changed")
		}
	}); allocs != 0 {
		t.Errorf("Intern on a known set allocated %.1f per call, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		st.Add(id, 26)
		st.Remove(id, 15)
	}); allocs != 0 {
		t.Errorf("cached Add/Remove allocated %.1f per call, want 0", allocs)
	}

	// A genuinely new set is allowed to allocate (durable copy + key + table
	// growth) but must be found alloc-free ever after.
	fresh := []trace.LockID{100, 200, 300}
	st.Intern(fresh)
	if allocs := testing.AllocsPerRun(100, func() {
		st.Intern(fresh)
	}); allocs != 0 {
		t.Errorf("re-Intern of a new set allocated %.1f per call, want 0", allocs)
	}
}

func TestInternLargeSetFallback(t *testing.T) {
	st := NewSetTable()
	big := make([]trace.LockID, internScratch+8)
	for i := range big {
		big[i] = trace.LockID(len(big) - i) // reversed, exercises the sort
	}
	id := st.Intern(big)
	got := st.Locks(id)
	if len(got) != len(big) {
		t.Fatalf("large set size %d, want %d", len(got), len(big))
	}
	for i, l := range got {
		if l != trace.LockID(i+1) {
			t.Fatalf("large set[%d] = %d, want %d", i, l, i+1)
		}
	}
	if st.Intern(big) != id {
		t.Error("large set did not re-intern to the same ID")
	}
}
