package lockset

import (
	"sort"

	"repro/internal/trace"
)

// SetID identifies an interned lock-set. Helgrind interns lock-sets so that
// per-location shadow state is a single word and intersections can be
// memoised; we reproduce that design.
type SetID int32

// Universe is the lock-set containing every lock — the initial C(v) of the
// Eraser algorithm ("initialize C(v) to the set of all locks").
const Universe SetID = -1

// EmptySet is the interned ID of the empty lock-set.
const EmptySet SetID = 0

// internScratch bounds the stack-backed scratch used by Intern. Sets larger
// than this (a thread holding >16 locks at once) take a heap-allocated slow
// path; every workload in the paper stays far under it.
const internScratch = 16

// SetTable interns lock-sets and memoises intersections and single-lock
// transitions. Steady-state interning — the same set observed again, the same
// (set, +lock) acquire edge, the same (set, -lock) release edge — performs no
// allocation and no sorting: probes run off stack scratch, and transition
// edges collapse to one map hit.
type SetTable struct {
	sets   [][]trace.LockID
	index  map[string]SetID
	cache  map[[2]SetID]SetID // (a,b) -> a∩b, a<b
	add    map[setEdge]SetID  // (id,+l) -> id∪{l}
	remove map[setEdge]SetID  // (id,-l) -> id∖{l}
}

// setEdge keys a single-lock transition from an interned set.
type setEdge struct {
	id SetID
	l  trace.LockID
}

// NewSetTable creates a table with the empty set pre-interned as ID 0.
func NewSetTable() *SetTable {
	st := &SetTable{
		index:  make(map[string]SetID),
		cache:  make(map[[2]SetID]SetID),
		add:    make(map[setEdge]SetID),
		remove: make(map[setEdge]SetID),
	}
	st.sets = append(st.sets, nil)
	st.index[""] = EmptySet
	return st
}

// Intern returns the ID for the given set of locks. The input need not be
// sorted and may contain duplicates. A set already in the table is found
// without allocating: the sort/dedupe scratch and the key probe both live on
// the stack, and the map is probed with a byte-slice key the compiler does
// not materialise as a string. Only a genuinely new set copies to the heap.
func (st *SetTable) Intern(locks []trace.LockID) SetID {
	if len(locks) == 0 {
		return EmptySet
	}
	var buf [internScratch]trace.LockID
	var sorted []trace.LockID
	if len(locks) <= len(buf) {
		sorted = buf[:len(locks)]
		copy(sorted, locks)
		insertionSort(sorted)
	} else {
		// Kept out of line: sort.Slice takes its argument as an interface,
		// and sharing the variable would leak buf to the heap on every call.
		sorted = sortedHeapCopy(locks)
	}
	uniq := sorted[:1]
	for _, l := range sorted[1:] {
		if l != uniq[len(uniq)-1] {
			uniq = append(uniq, l)
		}
	}
	var kbuf [internScratch * 4]byte
	var key []byte
	if len(uniq) <= internScratch {
		key = appendSetKey(kbuf[:0], uniq)
	} else {
		key = appendSetKey(make([]byte, 0, len(uniq)*4), uniq)
	}
	if id, ok := st.index[string(key)]; ok {
		return id
	}
	return st.internNew(key, uniq)
}

// internNew installs a set that missed the index probe, making the durable
// copies the table owns.
func (st *SetTable) internNew(key []byte, uniq []trace.LockID) SetID {
	id := SetID(len(st.sets))
	st.sets = append(st.sets, append([]trace.LockID(nil), uniq...))
	st.index[string(key)] = id
	return id
}

// Add returns the interned id∪{l}. The first traversal of an acquire edge
// computes and caches it; thereafter the edge is a single map hit, so
// steady-state lock-set maintenance never sorts or probes the index. The
// universe absorbs every lock.
func (st *SetTable) Add(id SetID, l trace.LockID) SetID {
	if id == Universe {
		return Universe
	}
	e := setEdge{id, l}
	if r, ok := st.add[e]; ok {
		return r
	}
	r := st.addSlow(id, l)
	st.add[e] = r
	return r
}

func (st *SetTable) addSlow(id SetID, l trace.LockID) SetID {
	if st.Contains(id, l) {
		return id
	}
	old := st.sets[id]
	merged := make([]trace.LockID, 0, len(old)+1)
	i := sort.Search(len(old), func(i int) bool { return old[i] >= l })
	merged = append(merged, old[:i]...)
	merged = append(merged, l)
	merged = append(merged, old[i:]...)
	return st.Intern(merged)
}

// Remove returns the interned id∖{l}; the inverse edge cache of Add. Removing
// from the universe is not representable and must not be reached — detector
// held-sets grow from empty, never from the universe.
func (st *SetTable) Remove(id SetID, l trace.LockID) SetID {
	if id == Universe {
		return Universe
	}
	e := setEdge{id, l}
	if r, ok := st.remove[e]; ok {
		return r
	}
	r := st.removeSlow(id, l)
	st.remove[e] = r
	return r
}

func (st *SetTable) removeSlow(id SetID, l trace.LockID) SetID {
	if !st.Contains(id, l) {
		return id
	}
	old := st.sets[id]
	pruned := make([]trace.LockID, 0, len(old)-1)
	for _, x := range old {
		if x != l {
			pruned = append(pruned, x)
		}
	}
	return st.Intern(pruned)
}

// Locks returns the locks in an interned set (sorted). The universe has no
// explicit representation and returns nil.
func (st *SetTable) Locks(id SetID) []trace.LockID {
	if id < 0 || int(id) >= len(st.sets) {
		return nil
	}
	return st.sets[id]
}

// Size returns the cardinality of the set (-1 for the universe).
func (st *SetTable) Size(id SetID) int {
	if id == Universe {
		return -1
	}
	return len(st.Locks(id))
}

// Intersect returns the interned intersection of two sets. The universe is
// the identity element.
func (st *SetTable) Intersect(a, b SetID) SetID {
	if a == Universe {
		return b
	}
	if b == Universe {
		return a
	}
	if a == b {
		return a
	}
	if a == EmptySet || b == EmptySet {
		return EmptySet
	}
	key := [2]SetID{a, b}
	if a > b {
		key = [2]SetID{b, a}
	}
	if id, ok := st.cache[key]; ok {
		return id
	}
	sa, sb := st.sets[a], st.sets[b]
	var out []trace.LockID
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			out = append(out, sa[i])
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	id := st.Intern(out)
	st.cache[key] = id
	return id
}

// Contains reports whether the set contains the lock. The universe contains
// everything.
func (st *SetTable) Contains(id SetID, l trace.LockID) bool {
	if id == Universe {
		return true
	}
	locks := st.Locks(id)
	i := sort.Search(len(locks), func(i int) bool { return locks[i] >= l })
	return i < len(locks) && locks[i] == l
}

// Len returns the number of interned sets.
func (st *SetTable) Len() int { return len(st.sets) }

func appendSetKey(b []byte, sorted []trace.LockID) []byte {
	for _, l := range sorted {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return b
}

func sortedHeapCopy(locks []trace.LockID) []trace.LockID {
	sorted := append([]trace.LockID(nil), locks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

func insertionSort(s []trace.LockID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
