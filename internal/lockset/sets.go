package lockset

import (
	"sort"

	"repro/internal/trace"
)

// SetID identifies an interned lock-set. Helgrind interns lock-sets so that
// per-location shadow state is a single word and intersections can be
// memoised; we reproduce that design.
type SetID int32

// Universe is the lock-set containing every lock — the initial C(v) of the
// Eraser algorithm ("initialize C(v) to the set of all locks").
const Universe SetID = -1

// EmptySet is the interned ID of the empty lock-set.
const EmptySet SetID = 0

// SetTable interns lock-sets and memoises intersections.
type SetTable struct {
	sets  [][]trace.LockID
	index map[string]SetID
	cache map[[2]SetID]SetID
}

// NewSetTable creates a table with the empty set pre-interned as ID 0.
func NewSetTable() *SetTable {
	st := &SetTable{
		index: make(map[string]SetID),
		cache: make(map[[2]SetID]SetID),
	}
	st.sets = append(st.sets, nil)
	st.index[""] = EmptySet
	return st
}

// Intern returns the ID for the given set of locks. The input need not be
// sorted and may contain duplicates.
func (st *SetTable) Intern(locks []trace.LockID) SetID {
	if len(locks) == 0 {
		return EmptySet
	}
	sorted := append([]trace.LockID(nil), locks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	uniq := sorted[:1]
	for _, l := range sorted[1:] {
		if l != uniq[len(uniq)-1] {
			uniq = append(uniq, l)
		}
	}
	key := setKey(uniq)
	if id, ok := st.index[key]; ok {
		return id
	}
	id := SetID(len(st.sets))
	st.sets = append(st.sets, uniq)
	st.index[key] = id
	return id
}

// Locks returns the locks in an interned set (sorted). The universe has no
// explicit representation and returns nil.
func (st *SetTable) Locks(id SetID) []trace.LockID {
	if id < 0 || int(id) >= len(st.sets) {
		return nil
	}
	return st.sets[id]
}

// Size returns the cardinality of the set (-1 for the universe).
func (st *SetTable) Size(id SetID) int {
	if id == Universe {
		return -1
	}
	return len(st.Locks(id))
}

// Intersect returns the interned intersection of two sets. The universe is
// the identity element.
func (st *SetTable) Intersect(a, b SetID) SetID {
	if a == Universe {
		return b
	}
	if b == Universe {
		return a
	}
	if a == b {
		return a
	}
	if a == EmptySet || b == EmptySet {
		return EmptySet
	}
	key := [2]SetID{a, b}
	if a > b {
		key = [2]SetID{b, a}
	}
	if id, ok := st.cache[key]; ok {
		return id
	}
	sa, sb := st.sets[a], st.sets[b]
	var out []trace.LockID
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch {
		case sa[i] == sb[j]:
			out = append(out, sa[i])
			i++
			j++
		case sa[i] < sb[j]:
			i++
		default:
			j++
		}
	}
	id := st.Intern(out)
	st.cache[key] = id
	return id
}

// Contains reports whether the set contains the lock. The universe contains
// everything.
func (st *SetTable) Contains(id SetID, l trace.LockID) bool {
	if id == Universe {
		return true
	}
	locks := st.Locks(id)
	i := sort.Search(len(locks), func(i int) bool { return locks[i] >= l })
	return i < len(locks) && locks[i] == l
}

// Len returns the number of interned sets.
func (st *SetTable) Len() int { return len(st.sets) }

func setKey(sorted []trace.LockID) string {
	b := make([]byte, 0, len(sorted)*4)
	for _, l := range sorted {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}
