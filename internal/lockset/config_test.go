package lockset

import (
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vm"
)

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Tool != "helgrind" || cfg.Mask != trace.MaskHelgrind || cfg.Granule != 4 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestConfigIsZero(t *testing.T) {
	if !(Config{}).IsZero() {
		t.Error("zero value must report IsZero")
	}
	for _, c := range []Config{
		{ThreadSegments: true},
		{Tool: "bare"},
		{Granule: 8},
		{Bus: BusSingleMutex},
		{Mask: trace.MaskFull},
		{Destruct: true},
		ConfigOriginal(),
	} {
		if c.IsZero() {
			t.Errorf("%+v must not report IsZero: any set field marks the config intentional", c)
		}
	}
}

func TestPaperConfigs(t *testing.T) {
	o := ConfigOriginal()
	if o.Bus != BusSingleMutex || o.Destruct || !o.ThreadSegments {
		t.Errorf("Original = %+v", o)
	}
	h := ConfigHWLC()
	if h.Bus != BusRWLock || h.Destruct {
		t.Errorf("HWLC = %+v", h)
	}
	d := ConfigHWLCDR()
	if d.Bus != BusRWLock || !d.Destruct {
		t.Errorf("HWLC+DR = %+v", d)
	}
}

func TestBusModelStrings(t *testing.T) {
	if BusNone.String() != "none" || BusSingleMutex.String() != "single-mutex" || BusRWLock.String() != "rwlock" {
		t.Error("BusModel strings wrong")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[state]string{
		stNew: "new", stExclusive: "exclusive",
		stSharedRead: "shared RO", stSharedMod: "shared modified",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("state %d = %q, want %q", st, st.String(), s)
		}
	}
}

func TestBusNoneAblation(t *testing.T) {
	// With the bus lock ignored entirely, even all-atomic counters are
	// reported: the ablation shows why SOME bus-lock model is needed.
	cfg := Config{Bus: BusNone, ThreadSegments: true}
	_, col := run(t, 1, cfg, func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "refcount")
		w := func(th *vm.Thread) { b.AtomicAdd32(th, 0, 1) }
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() == 0 {
		t.Error("BusNone should report all-atomic counters (no bus lock protects them)")
	}
}

func TestDynamicRacesCountsOccurrences(t *testing.T) {
	d, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		w := func(th *vm.Thread) {
			defer th.Func("w", "f.cpp", 1)()
			for i := 0; i < 10; i++ {
				b.Store32(th, 0, 1)
			}
		}
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if d.DynamicRaces() <= col.Locations() {
		t.Errorf("dynamic races (%d) should exceed deduplicated locations (%d)",
			d.DynamicRaces(), col.Locations())
	}
}

func TestWarningFormatMatchesFig9Structure(t *testing.T) {
	// The rendered warning must carry the Fig. 9 elements: the header line,
	// the innermost "at" frame, the block provenance and the previous state.
	v := vm.New(vm.Options{Seed: 1})
	col := report.NewCollector(v, nil)
	v.AddTool(New(ConfigOriginal(), col))
	err := v.Run(func(main *vm.Thread) {
		b := main.Alloc(21, "string-rep") // "a block of size 21", as in Fig. 9
		w := func(th *vm.Thread) {
			defer th.Func("std::string::_Rep::_M_grab", "basic_string.h", 650)()
			b.Load32(th, 8)
			b.AtomicAdd32(th, 8, 1)
		}
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := col.Format()
	for _, want := range []string{
		"Possible data race write variable at 0x",
		"at std::string::_Rep::_M_grab (basic_string.h:650)",
		"is 8 bytes inside a block of size 21 (string-rep) alloc'd by thread 1",
		"Previous state: shared RO, no locks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGranuleConfig(t *testing.T) {
	// With an 8-byte granule, two adjacent 4-byte fields share shadow state;
	// with a 4-byte granule they are independent. A race on field 0 only:
	cfg4 := ConfigOriginal()
	prog := func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(8, "x")
		m := v.NewMutex("m")
		a := main.Go("racer", func(th *vm.Thread) {
			defer th.Func("racer", "g.cpp", 1)()
			b.Store32(th, 0, 1) // unlocked
		})
		c := main.Go("locked", func(th *vm.Thread) {
			defer th.Func("locked", "g.cpp", 2)()
			m.Lock(th)
			b.Store32(th, 4, 2) // locked, adjacent field
			m.Unlock(th)
		})
		main.Join(a)
		main.Join(c)
		b.Store32(main, 4, 3) // main writes field 4 after joins (ordered)
	}
	_, col4 := run(t, 1, cfg4, prog)
	cfg8 := ConfigOriginal()
	cfg8.Granule = 8
	_, col8 := run(t, 1, cfg8, prog)
	// Coarser granularity can only see MORE conflicts (false sharing).
	if col8.Locations() < col4.Locations() {
		t.Errorf("8-byte granule (%d) reported fewer than 4-byte (%d)",
			col8.Locations(), col4.Locations())
	}
}

func TestDestructRequestIgnoredWhenDisabled(t *testing.T) {
	// A detector with Destruct=false must treat HG_DESTRUCT as a no-op.
	prog := func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(8, "obj")
		m := v.NewMutex("m")
		m2 := v.NewMutex("m2")
		a := main.Go("a", func(th *vm.Thread) {
			m.Lock(th)
			b.Load64(th, 0)
			m.Unlock(th)
		})
		c := main.Go("b", func(th *vm.Thread) {
			m2.Lock(th)
			b.Load64(th, 0)
			m2.Unlock(th)
		})
		main.Join(a)
		main.Join(c)
		d := main.Go("deleter", func(th *vm.Thread) {
			b.Request(th, trace.ReqDestruct, 0, 8)
			b.Store64(th, 0, 0xDEAD)
		})
		main.Join(d)
	}
	_, colOff := run(t, 1, ConfigHWLC(), prog) // Destruct disabled
	if colOff.Locations() == 0 {
		t.Error("HG_DESTRUCT must be inert when the configuration ignores it")
	}
	_, colOn := run(t, 1, ConfigHWLCDR(), prog)
	if colOn.Locations() != 0 {
		t.Errorf("HG_DESTRUCT honoured config still reported:\n%s", colOn.Format())
	}
}
