package lockset

import (
	"testing"
	"testing/quick"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vm"
)

// run executes a guest program under a fresh VM with a lock-set detector in
// the given configuration and returns the detector and collector.
func run(t *testing.T, seed int64, cfg Config, body func(*vm.Thread, *vm.VM)) (*Detector, *report.Collector) {
	t.Helper()
	v := vm.New(vm.Options{Seed: seed})
	col := report.NewCollector(v, nil)
	d := New(cfg, col)
	v.AddTool(d)
	if err := v.Run(func(th *vm.Thread) { body(th, v) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return d, col
}

func TestNoRaceSingleThread(t *testing.T) {
	_, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(16, "x")
		for i := 0; i < 10; i++ {
			b.Store32(main, 0, uint32(i))
			b.Load32(main, 0)
		}
	})
	if col.Locations() != 0 {
		t.Errorf("single-thread program reported %d race locations:\n%s", col.Locations(), col.Format())
	}
}

func TestRaceUnprotectedCounter(t *testing.T) {
	_, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "counter")
		w := func(th *vm.Thread) {
			for i := 0; i < 5; i++ {
				b.Store32(th, 0, b.Load32(th, 0)+1)
			}
		}
		a := main.Go("a", w)
		bth := main.Go("b", w)
		main.Join(a)
		main.Join(bth)
	})
	if col.Locations() == 0 {
		t.Error("unprotected shared counter not reported")
	}
}

func TestNoRaceProperlyLocked(t *testing.T) {
	_, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "counter")
		m := v.NewMutex("m")
		w := func(th *vm.Thread) {
			for i := 0; i < 5; i++ {
				m.Lock(th)
				b.Store32(th, 0, b.Load32(th, 0)+1)
				m.Unlock(th)
			}
		}
		a := main.Go("a", w)
		bth := main.Go("b", w)
		main.Join(a)
		main.Join(bth)
	})
	if col.Locations() != 0 {
		t.Errorf("properly locked counter reported:\n%s", col.Format())
	}
}

func TestInitThenReadSharedIsSilent(t *testing.T) {
	// Fig. 1: one thread initialises, others only read — no warning even
	// without locks (the read-shared refinement).
	_, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "config")
		b.Store32(main, 0, 7)
		b.Store32(main, 0, 8) // multiple init writes are fine
		reader := func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				b.Load32(th, 0)
			}
		}
		a := main.Go("a", reader)
		c := main.Go("b", reader)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() != 0 {
		t.Errorf("init-then-read-shared pattern reported:\n%s", col.Format())
	}
}

func TestWriteAfterReadSharedReports(t *testing.T) {
	// Fig. 1: a write in SHARED state moves to SHARED-MODIFIED and reports
	// when no common lock protects the location.
	_, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		b.Store32(main, 0, 1)
		r := main.Go("reader", func(th *vm.Thread) { b.Load32(th, 0) })
		main.Join(r)
		w := main.Go("writer", func(th *vm.Thread) { b.Store32(th, 0, 2) })
		main.Join(w)
		// After the join the memory would be exclusive again only via thread
		// segments; the reader made it shared, and the writer is ordered
		// after it, so thread segments keep this silent.
	})
	// With thread segments the create/join ordering makes every access
	// ordered: expect silence.
	if col.Locations() != 0 {
		t.Errorf("segment-ordered accesses reported:\n%s", col.Format())
	}
}

func TestThreadSegmentsSuppressHandoff(t *testing.T) {
	// Fig. 2 / Fig. 10: init -> create -> child works -> join -> reuse.
	// With segments: silent. Without (plain Eraser): the child's access in
	// a shared state has no locks -> report.
	prog := func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(8, "job")
		b.Store32(main, 0, 1) // init
		w := main.Go("worker", func(th *vm.Thread) {
			b.Store32(th, 0, b.Load32(th, 0)+1) // process
		})
		main.Join(w)
		b.Store32(main, 0, 99) // reuse after join
	}
	cfgSeg := ConfigOriginal()
	_, colSeg := run(t, 1, cfgSeg, prog)
	if colSeg.Locations() != 0 {
		t.Errorf("thread-per-request handoff reported with segments enabled:\n%s", colSeg.Format())
	}

	cfgNoSeg := ConfigOriginal()
	cfgNoSeg.ThreadSegments = false
	_, colNoSeg := run(t, 1, cfgNoSeg, prog)
	if colNoSeg.Locations() == 0 {
		t.Error("plain Eraser (no segments) should report the handoff pattern")
	}
}

// cowCopy simulates the libstdc++ string copy of Fig. 8/9: a plain read of
// the reference counter (the _M_is_leaked check) followed by a bus-locked
// increment (_M_grab).
func cowCopy(th *vm.Thread, refcnt *vm.AtomicI32) {
	defer th.Func("std::string::_Rep::_M_grab", "basic_string.h", 650)()
	refcnt.Load(th)   // plain read: leak check
	refcnt.Add(th, 1) // LOCK-prefixed increment
}

func TestFig8StringRefcountBusLockModels(t *testing.T) {
	prog := func(main *vm.Thread, v *vm.VM) {
		rep := main.Alloc(12, "string-rep")
		refcnt := vm.AtomicI32At(rep, 0)
		refcnt.Store(main, 1) // construction in main (exclusive)
		w := main.Go("worker", func(th *vm.Thread) {
			cowCopy(th, refcnt) // line 10 of Fig. 8
		})
		main.Sleep(5)
		cowCopy(main, refcnt) // line 22 of Fig. 8 — the reported conflict
		main.Join(w)
	}

	// Original model: the refcount mixes plain reads (no bus mutex) with
	// LOCKed writes -> the candidate set empties -> false positive.
	_, colOrig := run(t, 1, ConfigOriginal(), prog)
	if colOrig.Locations() == 0 {
		t.Error("original bus-lock model should report the COW string refcount")
	}

	// HWLC: every read holds the bus rwlock for reading, every write here is
	// bus-locked -> the bus lock stays in the set -> no warning.
	_, colHWLC := run(t, 1, ConfigHWLC(), prog)
	if colHWLC.Locations() != 0 {
		t.Errorf("HWLC model should silence the COW string refcount:\n%s", colHWLC.Format())
	}
}

func TestHWLCStillReportsPlainWriteRaces(t *testing.T) {
	// The rwlock bus model must not blanket-suppress: a location written with
	// PLAIN writes by two threads is still racy.
	_, col := run(t, 1, ConfigHWLC(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "plain")
		w := func(th *vm.Thread) { b.Store32(th, 0, 1) }
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() == 0 {
		t.Error("HWLC must still report plain-write races")
	}
}

func TestMixedAtomicAndPlainWriteStillReportedUnderHWLC(t *testing.T) {
	// If even one write is plain, the bus lock leaves the write set and the
	// location is reported — HWLC only certifies all-atomic writers.
	_, col := run(t, 1, ConfigHWLC(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "mixed")
		a := main.Go("atomicwriter", func(th *vm.Thread) { b.AtomicAdd32(th, 0, 1) })
		p := main.Go("plainwriter", func(th *vm.Thread) { b.Store32(th, 0, 5) })
		main.Join(a)
		main.Join(p)
	})
	if col.Locations() == 0 {
		t.Error("mixed atomic/plain writers should still be reported under HWLC")
	}
}

func TestDestructAnnotationSilencesDtorWrites(t *testing.T) {
	// §4.2.1: object shared between threads (vptr read by many), destructor
	// rewrites the vptr. Without DR: report. With DR: silent.
	prog := func(main *vm.Thread, v *vm.VM) {
		obj := main.Alloc(16, "obj:Derived")
		m := v.NewMutex("objlock")
		obj.Store64(main, 0, fakeVptr) // construction writes vptr
		// Two workers use the object under different locks so the vptr
		// read set empties without warnings (reads in SHARED don't warn).
		m2 := v.NewMutex("otherlock")
		w1 := main.Go("w1", func(th *vm.Thread) {
			m.Lock(th)
			obj.Load64(th, 0) // virtual call reads vptr
			m.Unlock(th)
		})
		w2 := main.Go("w2", func(th *vm.Thread) {
			m2.Lock(th)
			obj.Load64(th, 0)
			m2.Unlock(th)
		})
		main.Join(w1)
		main.Join(w2)
		// A third thread deletes the object: destructor chain rewrites vptr.
		del := main.Go("deleter", func(th *vm.Thread) {
			obj.Request(th, trace.ReqDestruct, 0, obj.Size())
			defer th.Func("Derived::~Derived", "obj.cpp", 42)()
			obj.Store64(th, 0, 0xBa5e) // vptr rewrite to base class
			obj.Store64(th, 0, 0xDead)
		})
		main.Join(del)
	}
	cfgNoDR := ConfigHWLC()
	_, colNo := run(t, 1, cfgNoDR, prog)
	if colNo.Locations() == 0 {
		t.Error("destructor vptr writes should be reported without the DR annotation")
	}
	cfgDR := ConfigHWLCDR()
	_, colDR := run(t, 1, cfgDR, prog)
	if colDR.Locations() != 0 {
		t.Errorf("DR annotation should silence destructor vptr writes:\n%s", colDR.Format())
	}
}

func TestDestructAnnotationKeepsCrossThreadAccessVisible(t *testing.T) {
	// "Accesses by other threads during destruction are still detected."
	_, col := run(t, 1, ConfigHWLCDR(), func(main *vm.Thread, v *vm.VM) {
		obj := main.Alloc(16, "obj:Derived")
		obj.Store64(main, 0, 1)
		sem := v.NewSemaphore("sync", 0)
		intruder := main.Go("intruder", func(th *vm.Thread) {
			sem.Wait(th)
			obj.Store64(th, 8, 7) // concurrent write during destruction
		})
		del := main.Go("deleter", func(th *vm.Thread) {
			obj.Request(th, trace.ReqDestruct, 0, obj.Size())
			obj.Store64(th, 0, 2)
			sem.Post(th)
			th.Sleep(20)
			obj.Store64(th, 8, 3) // dtor body touches the field the intruder hit
		})
		main.Join(intruder)
		main.Join(del)
	})
	if col.Locations() == 0 {
		t.Error("concurrent access during destruction must still be reported under DR")
	}
}

func TestBenignRequestSuppresses(t *testing.T) {
	_, col := run(t, 1, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "hitcounter")
		b.Request(main, trace.ReqBenign, 0, 4)
		w := func(th *vm.Thread) { b.Store32(th, 0, b.Load32(th, 0)+1) }
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() != 0 {
		t.Errorf("benign-marked counter reported:\n%s", col.Format())
	}
}

func TestQueueEdgesExtensionFixesThreadPool(t *testing.T) {
	// Fig. 11: with a thread pool, ownership passes through the queue. Stock
	// Helgrind (MaskHelgrind) reports a false positive; the future-work
	// extension (MaskFull) keeps the data exclusive per segment.
	prog := func(main *vm.Thread, v *vm.VM) {
		q := v.NewQueue("jobs", 0)
		done := v.NewQueue("done", 0)
		worker := main.Go("pool-worker", func(th *vm.Thread) {
			for {
				msg, ok := q.Get(th)
				if !ok {
					return
				}
				blk := msg.(*vm.Block)
				blk.Store32(th, 0, blk.Load32(th, 0)*2) // process data
				done.Put(th, blk)
			}
		})
		// The pool thread exists BEFORE the data: create/join edges cannot
		// order these accesses.
		b := main.Alloc(8, "job-data")
		b.Store32(main, 0, 21) // setup data
		q.Put(main, b)
		r, _ := done.Get(main)
		got := r.(*vm.Block).Load32(main, 0)
		if got != 42 {
			panic("job not processed")
		}
		q.Close(main)
		main.Join(worker)
	}
	cfgStock := ConfigHWLCDR()
	_, colStock := run(t, 1, cfgStock, prog)
	if colStock.Locations() == 0 {
		t.Error("stock configuration should report the thread-pool handoff (Fig. 11)")
	}
	cfgExt := ConfigHWLCDR()
	cfgExt.Mask = trace.MaskFull
	_, colExt := run(t, 1, cfgExt, prog)
	if colExt.Locations() != 0 {
		t.Errorf("queue-edge extension should silence the thread-pool handoff:\n%s", colExt.Format())
	}
}

func TestSec43FalseNegativeScheduleDependence(t *testing.T) {
	// §4.3: T-unlocked writes first, T-locked second => no warning (lock-set
	// initialised with the lock held). Opposite order => warning. Sweep seeds
	// and require both outcomes to occur.
	outcome := func(seed int64) bool {
		_, col := run(t, seed, ConfigOriginal(), func(main *vm.Thread, v *vm.VM) {
			b := main.Alloc(4, "x")
			m := v.NewMutex("m")
			unlocked := main.Go("unlocked", func(th *vm.Thread) {
				th.Sleep(int64(seed % 7)) // schedule jitter
				b.Store32(th, 0, 1)
			})
			locked := main.Go("locked", func(th *vm.Thread) {
				th.Sleep(int64((seed + 3) % 7))
				m.Lock(th)
				b.Store32(th, 0, 2)
				m.Unlock(th)
			})
			main.Join(unlocked)
			main.Join(locked)
		})
		return col.Locations() > 0
	}
	var hit, miss int
	for seed := int64(0); seed < 40; seed++ {
		if outcome(seed) {
			hit++
		} else {
			miss++
		}
	}
	if hit == 0 {
		t.Error("no schedule detected the asymmetric-locking race (expected some hits)")
	}
	if miss == 0 {
		t.Error("every schedule detected the race (expected §4.3 false negatives in some orders)")
	}
}

func TestRWLockReaderWriterRules(t *testing.T) {
	// Readers under rdlock + writers under wrlock on the same rwlock: safe.
	_, col := run(t, 1, ConfigHWLC(), func(main *vm.Thread, v *vm.VM) {
		rw := v.NewRWMutex("table")
		b := main.Alloc(4, "entry")
		reader := func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				rw.RLock(th)
				b.Load32(th, 0)
				rw.RUnlock(th)
			}
		}
		writer := func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				rw.WLock(th)
				b.Store32(th, 0, uint32(i))
				rw.WUnlock(th)
			}
		}
		ths := []*vm.Thread{main.Go("r1", reader), main.Go("r2", reader), main.Go("w", writer)}
		for _, th := range ths {
			main.Join(th)
		}
	})
	if col.Locations() != 0 {
		t.Errorf("rwlock-protected accesses reported:\n%s", col.Format())
	}
}

func TestRWLockReadersOnlyInsufficientForWrites(t *testing.T) {
	// A thread writing under only a READ hold does not protect the write:
	// write-mode intersection empties.
	_, col := run(t, 1, ConfigHWLC(), func(main *vm.Thread, v *vm.VM) {
		rw := v.NewRWMutex("table")
		b := main.Alloc(4, "entry")
		w := func(th *vm.Thread) {
			rw.RLock(th)
			b.Store32(th, 0, 1) // write under read lock: wrong
			rw.RUnlock(th)
		}
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() == 0 {
		t.Error("writes under read-mode holds should be reported")
	}
}

func TestPoolReuseStaleShadowFalsePositive(t *testing.T) {
	// §4: the GNU container allocator reuses memory without free/malloc, so
	// shadow state survives and unrelated code inherits an empty lock-set.
	_, col := run(t, 1, ConfigHWLCDR(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(8, "pool-chunk")
		// First life: two threads race (real shared use, lock-set empties,
		// location reported and marked).
		w := func(th *vm.Thread) { b.Store32(th, 0, 1) }
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
		// "Free" into the pool and reuse WITHOUT resetting shadow state:
		// second life, single-threaded and perfectly safe — but offset 4
		// inherits SHARED state from the block's first life.
		d := main.Go("second-life", func(th *vm.Thread) {
			b.Store32(th, 4, 2)
		})
		main.Join(d)
		e := main.Go("third-life", func(th *vm.Thread) {
			b.Store32(th, 4, 3)
		})
		main.Join(e)
	})
	// Offset 0 is a real race; offset 4's "races" are the allocator FP family.
	if col.Locations() < 1 {
		t.Error("expected at least the real race on offset 0")
	}
	// With ReqCleanMemory (GLIBCPP_FORCE_NEW analogue) the second life is
	// clean.
	_, col2 := run(t, 1, ConfigHWLCDR(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(8, "pool-chunk")
		w := func(th *vm.Thread) { b.Store32(th, 0, 1) }
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
		b.Request(main, trace.ReqCleanMemory, 0, 8) // allocator resets shadow
		d := main.Go("second-life", func(th *vm.Thread) { b.Store32(th, 4, 2) })
		main.Join(d)
		e := main.Go("third-life", func(th *vm.Thread) { b.Store32(th, 4, 3) })
		main.Join(e)
	})
	if col2.Locations() > col.Locations() {
		t.Error("clean-memory request should not increase reported locations")
	}
}

func TestSetTableBasics(t *testing.T) {
	st := NewSetTable()
	a := st.Intern([]trace.LockID{3, 1, 2})
	b := st.Intern([]trace.LockID{1, 2, 3})
	if a != b {
		t.Error("permutations interned differently")
	}
	c := st.Intern([]trace.LockID{2, 3})
	got := st.Intersect(a, c)
	if locks := st.Locks(got); len(locks) != 2 || locks[0] != 2 || locks[1] != 3 {
		t.Errorf("intersection = %v, want [2 3]", locks)
	}
	if st.Intersect(Universe, a) != a {
		t.Error("universe must be the intersection identity")
	}
	if st.Intersect(a, EmptySet) != EmptySet {
		t.Error("empty set must absorb")
	}
	if !st.Contains(a, 2) || st.Contains(c, 1) {
		t.Error("Contains misbehaves")
	}
}

func TestSetTableIntersectionProperties(t *testing.T) {
	st := NewSetTable()
	norm := func(raw []uint8) []trace.LockID {
		out := make([]trace.LockID, 0, len(raw))
		for _, x := range raw {
			out = append(out, trace.LockID(x%16))
		}
		return out
	}
	// Commutativity, idempotence and subset ordering of interned intersections.
	prop := func(ra, rb []uint8) bool {
		a := st.Intern(norm(ra))
		b := st.Intern(norm(rb))
		ab := st.Intersect(a, b)
		ba := st.Intersect(b, a)
		if ab != ba {
			return false
		}
		if st.Intersect(a, a) != a {
			return false
		}
		for _, l := range st.Locks(ab) {
			if !st.Contains(a, l) || !st.Contains(b, l) {
				return false
			}
		}
		return st.Size(ab) <= st.Size(a) && st.Size(ab) <= st.Size(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// fakeVptr is a fake vtable pointer value used by destructor tests.
const fakeVptr uint64 = 0xC0FFEE
