package lockset

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/report"
	"repro/internal/vm"
)

// randomProgram describes a generated workload: per-thread access scripts
// over a set of variables, where each variable is either consistently
// guarded by its own mutex or consistently unguarded.
type randomProgram struct {
	seed      int64
	nVars     int
	nThreads  int
	unguarded int // index of the unguarded variable, -1 for none
	scripts   [][]accessOp
}

type accessOp struct {
	v     int
	write bool
}

// genProgram derives a random program from a PRNG seed.
func genProgram(seed int64, withBadVar bool) randomProgram {
	rng := rand.New(rand.NewSource(seed))
	p := randomProgram{
		seed:      seed,
		nVars:     2 + rng.Intn(4),
		nThreads:  2 + rng.Intn(3),
		unguarded: -1,
	}
	if withBadVar {
		p.unguarded = rng.Intn(p.nVars)
	}
	p.scripts = make([][]accessOp, p.nThreads)
	for t := range p.scripts {
		n := 4 + rng.Intn(12)
		for i := 0; i < n; i++ {
			p.scripts[t] = append(p.scripts[t], accessOp{
				v:     rng.Intn(p.nVars),
				write: rng.Intn(2) == 0,
			})
		}
	}
	if withBadVar {
		// Guarantee at least two threads WRITE the unguarded variable, so a
		// lock-discipline violation is certain on every schedule.
		p.scripts[0] = append(p.scripts[0], accessOp{v: p.unguarded, write: true})
		p.scripts[1] = append(p.scripts[1], accessOp{v: p.unguarded, write: true})
	}
	return p
}

// run executes the program under the given detector configuration and
// returns the number of reported locations.
func (p randomProgram) run(t *testing.T, cfg Config) int {
	t.Helper()
	v := vm.New(vm.Options{Seed: p.seed})
	col := report.NewCollector(v, nil)
	v.AddTool(New(cfg, col))
	err := v.Run(func(main *vm.Thread) {
		vars := make([]*vm.Block, p.nVars)
		locks := make([]*vm.Mutex, p.nVars)
		for i := range vars {
			vars[i] = main.Alloc(4, fmt.Sprintf("var%d", i))
			locks[i] = v.NewMutex(fmt.Sprintf("m%d", i))
		}
		threads := make([]*vm.Thread, p.nThreads)
		for ti := range threads {
			script := p.scripts[ti]
			threads[ti] = main.Go(fmt.Sprintf("t%d", ti), func(th *vm.Thread) {
				defer th.Func("worker", "prop.cpp", 1)()
				for oi, op := range script {
					th.SetLine(10 + op.v) // one site per variable
					guarded := op.v != p.unguarded
					if guarded {
						locks[op.v].Lock(th)
					}
					if op.write {
						vars[op.v].Store32(th, 0, uint32(oi))
					} else {
						vars[op.v].Load32(th, 0)
					}
					if guarded {
						locks[op.v].Unlock(th)
					}
				}
			})
		}
		for _, th := range threads {
			main.Join(th)
		}
	})
	if err != nil {
		t.Fatalf("seed %d: %v", p.seed, err)
	}
	return col.Locations()
}

func TestPropertyDisciplinedProgramsSilent(t *testing.T) {
	// Soundness of the no-warning direction: consistently locked programs
	// never produce lock-set warnings, under any configuration and schedule.
	configs := []Config{ConfigOriginal(), ConfigHWLC(), ConfigHWLCDR()}
	prop := func(seed int64) bool {
		p := genProgram(seed, false)
		for _, cfg := range configs {
			if p.run(t, cfg) != 0 {
				t.Logf("seed %d under %v reported a clean program", seed, cfg.Bus)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnguardedWriterAlwaysCaught(t *testing.T) {
	// Completeness on the observed path: a variable written unguarded by at
	// least two threads violates the discipline on EVERY schedule — the
	// lock-set approach "should find all possible data-races" of this form.
	prop := func(seed int64) bool {
		p := genProgram(seed, true)
		if p.run(t, ConfigHWLCDR()) == 0 {
			t.Logf("seed %d missed the unguarded variable", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDetectionIndependentOfSchedule(t *testing.T) {
	// The same generated program must be caught across many seeds (lock-set
	// detection of all-unlocked writers does not depend on the
	// interleaving, unlike §4.3's asymmetric case).
	base := genProgram(1234, true)
	for seed := int64(0); seed < 20; seed++ {
		p := base
		p.seed = seed
		if p.run(t, ConfigOriginal()) == 0 {
			t.Errorf("seed %d missed the unguarded variable", seed)
		}
	}
}

func TestPropertyMoreLocksNeverMoreWarnings(t *testing.T) {
	// Adding a global lock around EVERY access (on top of per-variable
	// locks) can only shrink the warning set: the candidate sets only grow.
	prop := func(seed int64) bool {
		p := genProgram(seed, true)
		baseline := p.run(t, ConfigHWLCDR())

		// Same program with a global lock wrapped around all accesses.
		v := vm.New(vm.Options{Seed: p.seed})
		col := report.NewCollector(v, nil)
		v.AddTool(New(ConfigHWLCDR(), col))
		err := v.Run(func(main *vm.Thread) {
			global := v.NewMutex("global")
			vars := make([]*vm.Block, p.nVars)
			for i := range vars {
				vars[i] = main.Alloc(4, fmt.Sprintf("var%d", i))
			}
			threads := make([]*vm.Thread, p.nThreads)
			for ti := range threads {
				script := p.scripts[ti]
				threads[ti] = main.Go(fmt.Sprintf("t%d", ti), func(th *vm.Thread) {
					for oi, op := range script {
						global.Lock(th)
						if op.write {
							vars[op.v].Store32(th, 0, uint32(oi))
						} else {
							vars[op.v].Load32(th, 0)
						}
						global.Unlock(th)
					}
				})
			}
			for _, th := range threads {
				main.Join(th)
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", p.seed, err)
		}
		return col.Locations() == 0 && baseline >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
