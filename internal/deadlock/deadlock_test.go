package deadlock

import (
	"testing"

	"repro/internal/report"
	"repro/internal/vm"
)

func run(t *testing.T, seed int64, body func(*vm.Thread, *vm.VM)) (*Detector, *report.Collector, error) {
	t.Helper()
	v := vm.New(vm.Options{Seed: seed})
	col := report.NewCollector(v, nil)
	d := New(Config{}, col)
	v.AddTool(d)
	err := v.Run(func(th *vm.Thread) { body(th, v) })
	return d, col, err
}

func TestDetectsABBAWithoutManifesting(t *testing.T) {
	// The threads take the locks in opposite orders but never actually
	// deadlock (serialised by a semaphore): the lock-order tool still
	// reports the potential cycle — its advantage over the application's
	// timeout-based monitor (§3.3).
	d, col, err := run(t, 1, func(main *vm.Thread, v *vm.VM) {
		m1 := v.NewMutex("A")
		m2 := v.NewMutex("B")
		turn := v.NewSemaphore("turn", 0)
		a := main.Go("a", func(th *vm.Thread) {
			m1.Lock(th)
			m2.Lock(th)
			m2.Unlock(th)
			m1.Unlock(th)
			turn.Post(th)
		})
		b := main.Go("b", func(th *vm.Thread) {
			turn.Wait(th) // strictly after thread a
			m2.Lock(th)
			m1.Lock(th)
			m1.Unlock(th)
			m2.Unlock(th)
		})
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		t.Fatalf("Run: %v (the run itself must not deadlock)", err)
	}
	if d.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1", d.Cycles())
	}
	if got := col.CountByKind()[report.KindDeadlock]; got != 1 {
		t.Errorf("deadlock warnings = %d, want 1", got)
	}
}

func TestNoCycleConsistentOrder(t *testing.T) {
	d, col, err := run(t, 1, func(main *vm.Thread, v *vm.VM) {
		m1 := v.NewMutex("A")
		m2 := v.NewMutex("B")
		w := func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				m1.Lock(th)
				m2.Lock(th)
				m2.Unlock(th)
				m1.Unlock(th)
			}
		}
		a := main.Go("a", w)
		b := main.Go("b", w)
		main.Join(a)
		main.Join(b)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Cycles() != 0 || col.Locations() != 0 {
		t.Errorf("consistent lock order reported a cycle:\n%s", col.Format())
	}
}

func TestThreeLockCycle(t *testing.T) {
	d, _, err := run(t, 1, func(main *vm.Thread, v *vm.VM) {
		a := v.NewMutex("A")
		b := v.NewMutex("B")
		c := v.NewMutex("C")
		pair := func(x, y *vm.Mutex) func(*vm.Thread) {
			return func(th *vm.Thread) {
				x.Lock(th)
				y.Lock(th)
				y.Unlock(th)
				x.Unlock(th)
			}
		}
		// A->B, B->C, C->A sequentially (no actual deadlock possible).
		t1 := main.Go("t1", pair(a, b))
		main.Join(t1)
		t2 := main.Go("t2", pair(b, c))
		main.Join(t2)
		t3 := main.Go("t3", pair(c, a))
		main.Join(t3)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1 (A->B->C->A)", d.Cycles())
	}
}

func TestCycleReportedOncePerShape(t *testing.T) {
	d, _, err := run(t, 1, func(main *vm.Thread, v *vm.VM) {
		m1 := v.NewMutex("A")
		m2 := v.NewMutex("B")
		inv := func(th *vm.Thread) {
			m2.Lock(th)
			m1.Lock(th)
			m1.Unlock(th)
			m2.Unlock(th)
		}
		fwd := func(th *vm.Thread) {
			m1.Lock(th)
			m2.Lock(th)
			m2.Unlock(th)
			m1.Unlock(th)
		}
		t1 := main.Go("t1", fwd)
		main.Join(t1)
		// Repeat the inversion several times: still one distinct cycle.
		for i := 0; i < 3; i++ {
			t2 := main.Go("t2", inv)
			main.Join(t2)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Cycles() != 1 {
		t.Errorf("cycles = %d, want 1 (deduplicated)", d.Cycles())
	}
}

func TestNestedSameLockOrderViaGate(t *testing.T) {
	// Gate-protected inversion: A->B under G in one thread, B->A under G in
	// another. The simple lock-order graph (like Helgrind's) still flags it;
	// this documents the known conservatism of the approach.
	d, _, err := run(t, 1, func(main *vm.Thread, v *vm.VM) {
		g := v.NewMutex("G")
		m1 := v.NewMutex("A")
		m2 := v.NewMutex("B")
		t1 := main.Go("t1", func(th *vm.Thread) {
			g.Lock(th)
			m1.Lock(th)
			m2.Lock(th)
			m2.Unlock(th)
			m1.Unlock(th)
			g.Unlock(th)
		})
		main.Join(t1)
		t2 := main.Go("t2", func(th *vm.Thread) {
			g.Lock(th)
			m2.Lock(th)
			m1.Lock(th)
			m1.Unlock(th)
			m2.Unlock(th)
			g.Unlock(th)
		})
		main.Join(t2)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Cycles() == 0 {
		t.Error("gate-protected inversion should still be flagged by the order graph")
	}
}
