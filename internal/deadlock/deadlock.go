// Package deadlock implements a lock-order-graph deadlock detector — the
// "race-checker also does dead-lock detection" capability the paper relies
// on to replace the application's own timed-lock monitor (§3.3).
//
// Whenever a thread acquires lock B while holding lock A, the edge A→B is
// added to a global lock-order graph. A cycle in that graph is a potential
// deadlock, reported even if the run never actually deadlocks — unlike the
// application-level timeout approach, which only fires when the deadlock
// manifests.
package deadlock

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
	"repro/internal/trace"
)

// Config parameterises the detector.
type Config struct {
	// Tool is the report name; defaults to "helgrind-deadlock".
	Tool string
}

// edgeInfo remembers the first observation of a lock-order edge.
type edgeInfo struct {
	stack  trace.StackID
	thread trace.ThreadID
}

// Detector is the lock-order tool.
type Detector struct {
	trace.BaseSink
	cfg      Config
	col      trace.Reporter
	held     map[trace.ThreadID][]trace.LockID // acquisition order per thread
	edges    map[trace.LockID]map[trace.LockID]edgeInfo
	reported map[string]bool
	cycles   int
}

// Spec registers the detector with the analysis engine's tool registry. The
// lock-order tool warns from broadcast events (acquire/contended) and keeps
// a single global lock-order graph, so it runs as one instance consuming the
// broadcast substream — which any one shard observes in full — and needs no
// block-carrying events at all.
func Spec(cfg Config) trace.ToolSpec {
	if cfg.Tool == "" {
		cfg.Tool = "helgrind-deadlock"
	}
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBroadcast,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a deadlock detector writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	if cfg.Tool == "" {
		cfg.Tool = "helgrind-deadlock"
	}
	return &Detector{
		cfg:      cfg,
		col:      col,
		held:     make(map[trace.ThreadID][]trace.LockID),
		edges:    make(map[trace.LockID]map[trace.LockID]edgeInfo),
		reported: make(map[string]bool),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Cycles returns the number of distinct lock-order cycles reported.
func (d *Detector) Cycles() int { return d.cycles }

// Acquire implements trace.Sink.
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, _ trace.LockKind, stack trace.StackID) {
	d.addEdges(t, l, stack)
	d.held[t] = append(d.held[t], l)
}

// Contended implements trace.Sink: a blocked attempt establishes the same
// ordering as a successful acquisition — and in an actual deadlock it is the
// only signal there will ever be.
func (d *Detector) Contended(t trace.ThreadID, l trace.LockID, stack trace.StackID) {
	d.addEdges(t, l, stack)
}

func (d *Detector) addEdges(t trace.ThreadID, l trace.LockID, stack trace.StackID) {
	for _, prev := range d.held[t] {
		if prev == l {
			continue
		}
		m, ok := d.edges[prev]
		if !ok {
			m = make(map[trace.LockID]edgeInfo)
			d.edges[prev] = m
		}
		if _, seen := m[l]; !seen {
			m[l] = edgeInfo{stack: stack, thread: t}
			d.checkCycle(prev, l, t, stack)
		}
	}
}

// Release implements trace.Sink.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, _ trace.LockKind, _ trace.StackID) {
	held := d.held[t]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == l {
			d.held[t] = append(held[:i], held[i+1:]...)
			return
		}
	}
}

// checkCycle looks for a path to -> ... -> from, which together with the new
// edge from->to forms a cycle, and reports it once per distinct cycle.
func (d *Detector) checkCycle(from, to trace.LockID, t trace.ThreadID, stack trace.StackID) {
	path := d.cyclePath(to, from)
	if path == nil {
		return
	}
	key := cycleKey(path)
	if d.reported[key] {
		return
	}
	d.reported[key] = true
	d.cycles++
	names := make([]string, len(path))
	for i, l := range path {
		names[i] = fmt.Sprintf("L%d", l)
	}
	d.col.Add(report.Warning{
		Tool:   d.cfg.Tool,
		Kind:   report.KindDeadlock,
		Thread: t,
		Stack:  stack,
		State:  fmt.Sprintf("lock order cycle: %s -> L%d", strings.Join(names, " -> "), to),
	})
}

var _ trace.Sink = (*Detector)(nil)

// cyclePath finds a path from src to dst in the edge graph (DFS), returning
// nil when none exists.
func (d *Detector) cyclePath(src, dst trace.LockID) []trace.LockID {
	visited := map[trace.LockID]bool{}
	var path []trace.LockID
	var dfs func(cur trace.LockID) bool
	dfs = func(cur trace.LockID) bool {
		if cur == dst {
			path = append(path, cur)
			return true
		}
		if visited[cur] {
			return false
		}
		visited[cur] = true
		next := make([]trace.LockID, 0, len(d.edges[cur]))
		for n := range d.edges[cur] {
			next = append(next, n)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, n := range next {
			if dfs(n) {
				path = append([]trace.LockID{cur}, path...)
				return true
			}
		}
		return false
	}
	if dfs(src) {
		return path
	}
	return nil
}

func cycleKey(path []trace.LockID) string {
	// Normalise rotation so the same cycle reported from different edges
	// deduplicates: rotate the smallest lock ID to the front.
	if len(path) == 0 {
		return ""
	}
	min := 0
	for i, l := range path {
		if l < path[min] {
			min = i
		}
	}
	rot := append(append([]trace.LockID{}, path[min:]...), path[:min]...)
	parts := make([]string, len(rot))
	for i, l := range rot {
		parts[i] = fmt.Sprint(l)
	}
	return strings.Join(parts, "->")
}
