package obs

import "testing"

// TestZeroAllocHotPaths turns the package doc's "hot-path writes allocate
// nothing" claim from prose into a pinned budget: every write reachable from
// the per-event instrumentation — counters, pre-resolved vector handles,
// gauges (including the SetMax high-watermark CAS loop) and histogram
// observes — must be allocation-free. CounterVec.With is deliberately
// absent: it locks and may allocate, which is why instrumented code resolves
// handles once at setup.
func TestZeroAllocHotPaths(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	vec := r.CounterVec("per_shard_total", "per shard", "shard")
	handle := vec.With("3") // resolved once, hammered below
	g := r.Gauge("queue_depth", "depth")
	gv := r.GaugeVec("queue_hwm", "hwm", "shard")
	ghandle := gv.With("3")
	h := r.Histogram("latency_ns", "latency", LatencyBuckets())

	var n int64
	cases := []struct {
		name string
		f    func()
	}{
		{"Counter.Inc", c.Inc},
		{"Counter.Add", func() { c.Add(17) }},
		{"CounterVec.handle.Inc", handle.Inc},
		{"Gauge.Set", func() { g.Set(n) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Gauge.SetMax", func() { n++; ghandle.SetMax(n) }},
		{"Histogram.Observe.first-bucket", func() { h.Observe(500) }},
		{"Histogram.Observe.inf-bucket", func() { h.Observe(1 << 40) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.f); allocs != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", tc.name, allocs)
		}
	}
}
