package obs

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // counters never go down; negative adds are dropped
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.SetMax(5) // below current: no-op
	if got := g.Value(); got != 7 {
		t.Errorf("gauge after SetMax(5) = %d, want 7", got)
	}
	g.SetMax(100)
	if got := g.Value(); got != 100 {
		t.Errorf("gauge after SetMax(100) = %d, want 100", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+10+11+99+100+5000 {
		t.Errorf("sum = %d", h.Sum())
	}
	// Cumulative buckets: <=10 holds {1,10}, <=100 additionally {11,99,100},
	// <=1000 nothing more, +Inf holds the 5000.
	want := "# HELP lat latency\n# TYPE lat histogram\n" +
		"lat_bucket{le=\"10\"} 2\n" +
		"lat_bucket{le=\"100\"} 5\n" +
		"lat_bucket{le=\"1000\"} 5\n" +
		"lat_bucket{le=\"+Inf\"} 6\n" +
		"lat_sum 5221\nlat_count 6\n"
	if got := r.Snapshot(); got != want {
		t.Errorf("snapshot:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSnapshotGolden pins the full deterministic exposition rendering:
// families sorted by name, series sorted by label value, HELP/TYPE chrome.
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Add(3)
	sv := r.GaugeVec("sessions", "sessions by state", "state")
	sv.With("streaming").Set(2)
	sv.With("reported").Set(5)
	fv := r.CounterVec("frames_total", "frames by kind", "kind")
	fv.With("events").Add(10)
	fv.With("hello").Inc()

	want := "# HELP frames_total frames by kind\n# TYPE frames_total counter\n" +
		"frames_total{kind=\"events\"} 10\n" +
		"frames_total{kind=\"hello\"} 1\n" +
		"# HELP sessions sessions by state\n# TYPE sessions gauge\n" +
		"sessions{state=\"reported\"} 5\n" +
		"sessions{state=\"streaming\"} 2\n" +
		"# HELP zz_total last family\n# TYPE zz_total counter\n" +
		"zz_total 3\n"
	if got := r.Snapshot(); got != want {
		t.Errorf("snapshot:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Deterministic: a second render is byte-identical.
	if r.Snapshot() != want {
		t.Error("second snapshot differs from the first")
	}

	series := r.Series()
	if series[`sessions{state="reported"}`] != 5 || series["zz_total"] != 3 {
		t.Errorf("Series() = %v", series)
	}
	if r.OneLine() != `frames_total{kind="events"}=10 frames_total{kind="hello"}=1 sessions{state="reported"}=5 sessions{state="streaming"}=2 zz_total=3` {
		t.Errorf("OneLine() = %q", r.OneLine())
	}
}

// TestRegistryIdempotent pins the get-or-create contract: same name and kind
// share state, a kind mismatch panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help")
	b := r.Counter("c", "help")
	if a != b {
		t.Error("re-registering the same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("c", "help")
}

// TestRegistryConcurrency hammers every metric type and the snapshot path
// from many goroutines; run under -race this pins the lock-free hot paths.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	g := r.Gauge("hwm", "watermark")
	h := r.Histogram("lat_ns", "latency", LatencyBuckets())
	vec := r.CounterVec("by_tool", "per tool", "tool")

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tool := vec.With(fmt.Sprintf("tool-%d", w%3))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.SetMax(int64(w*iters + i))
				h.Observe(int64(i))
				tool.Inc()
				if i%500 == 0 {
					_ = r.Snapshot() // concurrent reads must be safe
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if g.Value() != workers*iters-1 {
		t.Errorf("gauge max = %d, want %d", g.Value(), workers*iters-1)
	}
	var vecTotal int64
	for i := 0; i < 3; i++ {
		vecTotal += vec.With(fmt.Sprintf("tool-%d", i)).Value()
	}
	if vecTotal != workers*iters {
		t.Errorf("vec total = %d, want %d", vecTotal, workers*iters)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "1 when serving").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if got := string(buf[:n]); got != "# HELP up 1 when serving\n# TYPE up counter\nup 1\n" {
		t.Errorf("handler body:\n%s", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
}

// TestLabelEscaping pins that hostile label values cannot corrupt the
// exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "h", "k").With("a\"b\\c\nd").Inc()
	want := "# HELP c h\n# TYPE c counter\n" + `c{k="a\"b\\c\nd"} 1` + "\n"
	if got := r.Snapshot(); got != want {
		t.Errorf("snapshot = %q, want %q", got, want)
	}
}
