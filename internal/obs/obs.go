// Package obs is the daemon's self-observability layer: a zero-dependency,
// allocation-free metrics subsystem for the analysis server's own hot paths.
//
// The paper's analyzer watches production servers; at fleet scale the
// analyzer itself is a production server, and its admission waits, queue
// depths and warning rates have to be visible before overload survival or
// multi-process scale-out can be engineered (see ROADMAP). HBTM (PAPERS.md)
// makes the same argument for lightweight always-on runtime telemetry.
//
// Design constraints, in order:
//
//   - Hot-path writes are a single atomic add (Counter.Add, Gauge.Set,
//     Histogram.Observe) with no allocation, no lock, no map lookup:
//     instrumented code resolves its *Counter/*Gauge/*Histogram pointers
//     once, at construction, and hammers them afterwards. Labelled lookups
//     (CounterVec.With) take a lock and belong at setup or per-session
//     frequency, never per event.
//   - Reading is deterministic: Snapshot renders the registry in Prometheus
//     text exposition format with families sorted by name and series sorted
//     by label value, so two snapshots of equal state are byte-identical and
//     snapshots are diffable and testable against goldens.
//   - Instrumentation must be able to disappear: everything that accepts
//     metrics accepts nil, and the analysis output (reports) never depends on
//     whether metrics are attached — the ingest conformance suite pins
//     byte-identical reports with metrics on and off.
//
// All values are int64: event counts, byte counts, and durations in
// nanoseconds. Histograms are fixed-bucket with caller-chosen upper bounds
// (LatencyBuckets for ns latencies), cumulative in the Prometheus style.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only grow; negative n is a programming error and is
// ignored rather than corrupting the series.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 metric that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger — the high-watermark write
// used for queue-occupancy tracking. Lock-free; concurrent raisers converge
// on the maximum.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram over int64 observations
// (typically nanoseconds). Buckets are defined by ascending upper bounds; an
// implicit +Inf bucket catches everything beyond the last bound. Observe is
// a bounded linear scan plus three atomic adds — no allocation, no lock.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; counts[i] = observations <= bounds[i]
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// LatencyBuckets returns the default upper bounds for nanosecond latency
// histograms: 1µs to 10s, roughly half-decade steps. Returned fresh per call
// so callers can't corrupt a shared slice.
func LatencyBuckets() []int64 {
	return []int64{
		1_000,          // 1µs
		10_000,         // 10µs
		100_000,        // 100µs
		1_000_000,      // 1ms
		5_000_000,      // 5ms
		25_000_000,     // 25ms
		100_000_000,    // 100ms
		500_000_000,    // 500ms
		2_500_000_000,  // 2.5s
		10_000_000_000, // 10s
	}
}

// metric kind strings, doubling as the Prometheus TYPE annotation.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric family: all series (label values) of one name.
type family struct {
	name     string
	help     string
	kind     string
	labelKey string // "" for a single unlabelled series

	mu     sync.Mutex
	series map[string]any // label value ("" when unlabelled) -> *Counter|*Gauge|*Histogram
	bounds []int64        // histogram families only
}

// get returns the series for one label value, creating it on first use.
func (f *family) get(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[labelValue]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = new(Counter)
	case kindGauge:
		m = new(Gauge)
	case kindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Int64, len(f.bounds)+1)
		m = h
	}
	f.series[labelValue] = m
	return m
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct{ f *family }

// With returns the counter for the given label value, creating it on first
// use. It takes a lock — resolve once and keep the pointer on hot paths.
func (v *CounterVec) With(value string) *Counter { return v.f.get(value).(*Counter) }

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label value, creating it on first
// use. It takes a lock — resolve once and keep the pointer on hot paths.
func (v *GaugeVec) With(value string) *Gauge { return v.f.get(value).(*Gauge) }

// Registry holds named metric families and renders them deterministically.
// Registration is get-or-create: registering a name twice with the same kind
// returns the same family (so several pipelines can share one registry),
// while re-registering a name as a different kind panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register returns the named family, creating it with the given shape on
// first use and validating the shape afterwards.
func (r *Registry) register(name, help, kind, labelKey string, bounds []int64) *family {
	if name == "" {
		panic("obs: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || f.labelKey != labelKey {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q, was %s/%q",
				name, kind, labelKey, f.kind, f.labelKey))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labelKey: labelKey,
		series: make(map[string]any),
		bounds: append([]int64(nil), bounds...),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, "", nil).get("").(*Counter)
}

// CounterVec registers (or fetches) a counter family labelled by labelKey.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labelKey, nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, "", nil).get("").(*Gauge)
}

// GaugeVec registers (or fetches) a gauge family labelled by labelKey.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labelKey, nil)}
}

// Histogram registers (or fetches) an unlabelled fixed-bucket histogram with
// the given ascending upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	return r.register(name, help, kindHistogram, "", bounds).get("").(*Histogram)
}

// sortedFamilies returns the families sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns one family's (labelValue, metric) pairs sorted by
// label value.
func (f *family) sortedSeries() ([]string, []any) {
	f.mu.Lock()
	values := make([]string, 0, len(f.series))
	for v := range f.series {
		values = append(values, v)
	}
	sort.Strings(values)
	metrics := make([]any, len(values))
	for i, v := range values {
		metrics[i] = f.series[v]
	}
	f.mu.Unlock()
	return values, metrics
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// seriesName renders "name" or `name{key="value"}`.
func seriesName(name, key, value string) string {
	if key == "" {
		return name
	}
	return name + "{" + key + `="` + escapeLabel(value) + `"}`
}

// WriteTo renders the registry in Prometheus text exposition format:
// families sorted by name, series sorted by label value, one HELP and TYPE
// line per family. Values are read atomically per series (the snapshot is
// not a global atomic cut, which Prometheus scraping never requires).
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		values, metrics := f.sortedSeries()
		for i, v := range values {
			switch m := metrics[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, f.labelKey, v), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, f.labelKey, v), m.Value())
			case *Histogram:
				cum := int64(0)
				for bi, bound := range m.bounds {
					cum += m.counts[bi].Load()
					fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", f.name, bound, cum)
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
				fmt.Fprintf(&b, "%s_sum %d\n", f.name, m.Sum())
				fmt.Fprintf(&b, "%s_count %d\n", f.name, m.Count())
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Snapshot returns the deterministic text rendering (see WriteTo).
func (r *Registry) Snapshot() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// Series flattens the registry into series-name → value pairs — the form
// benchmark documents embed so telemetry rides alongside throughput numbers.
// Histograms contribute name_count, name_sum and cumulative name_bucket{le}
// entries.
func (r *Registry) Series() map[string]int64 {
	out := make(map[string]int64)
	for _, f := range r.sortedFamilies() {
		values, metrics := f.sortedSeries()
		for i, v := range values {
			switch m := metrics[i].(type) {
			case *Counter:
				out[seriesName(f.name, f.labelKey, v)] = m.Value()
			case *Gauge:
				out[seriesName(f.name, f.labelKey, v)] = m.Value()
			case *Histogram:
				cum := int64(0)
				for bi, bound := range m.bounds {
					cum += m.counts[bi].Load()
					out[fmt.Sprintf("%s_bucket{le=\"%d\"}", f.name, bound)] = cum
				}
				cum += m.counts[len(m.bounds)].Load()
				out[f.name+`_bucket{le="+Inf"}`] = cum
				out[f.name+"_sum"] = m.Sum()
				out[f.name+"_count"] = m.Count()
			}
		}
	}
	return out
}

// OneLine renders every counter and gauge as sorted "name=value" pairs on a
// single line, with histograms compressed to name_count and name_mean — the
// periodic stderr stats line for log-only deployments.
func (r *Registry) OneLine() string {
	var parts []string
	for _, f := range r.sortedFamilies() {
		values, metrics := f.sortedSeries()
		for i, v := range values {
			switch m := metrics[i].(type) {
			case *Counter:
				parts = append(parts, fmt.Sprintf("%s=%d", seriesName(f.name, f.labelKey, v), m.Value()))
			case *Gauge:
				parts = append(parts, fmt.Sprintf("%s=%d", seriesName(f.name, f.labelKey, v), m.Value()))
			case *Histogram:
				count := m.Count()
				mean := int64(0)
				if count > 0 {
					mean = m.Sum() / count
				}
				parts = append(parts, fmt.Sprintf("%s_count=%d", f.name, count),
					fmt.Sprintf("%s_mean=%d", f.name, mean))
			}
		}
	}
	return strings.Join(parts, " ")
}

// Handler returns an http.Handler serving the registry snapshot — the
// /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}
