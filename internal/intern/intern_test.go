package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestBytesCanonicalises(t *testing.T) {
	tab := NewTable()
	a := tab.Bytes([]byte("obj:InviteRequest"))
	b := tab.Bytes([]byte("obj:InviteRequest"))
	if a != b {
		t.Fatalf("Bytes returned different values: %q vs %q", a, b)
	}
	// Same backing storage, not merely equal content.
	if &a == &b {
		t.Fatal("test bug: comparing variable addresses")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	if got := tab.Bytes(nil); got != "" {
		t.Fatalf("Bytes(nil) = %q, want empty", got)
	}
}

func TestStringKeepsCanonicalCopy(t *testing.T) {
	tab := NewTable()
	first := "string-rep" + fmt.Sprint(1)[:0] // force a distinct allocation
	got := tab.String(first)
	if got != "string-rep" {
		t.Fatalf("String = %q", got)
	}
	second := tab.String("string" + "-rep")
	if second != first {
		t.Fatalf("second intern = %q, want the canonical copy", second)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestByteReuseSafe(t *testing.T) {
	tab := NewTable()
	buf := []byte("alpha")
	s := tab.Bytes(buf)
	copy(buf, "OMEGA") // caller reuses its buffer; the interned copy must not change
	if s != "alpha" {
		t.Fatalf("interned string mutated to %q", s)
	}
	if got := tab.Bytes([]byte("alpha")); got != "alpha" {
		t.Fatalf("lookup after buffer reuse = %q", got)
	}
}

// TestConcurrent hammers the table from many goroutines; run under -race.
func TestConcurrent(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	var wg sync.WaitGroup
	results := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, 0, 100)
			buf := make([]byte, 0, 16)
			for i := 0; i < 100; i++ {
				buf = append(buf[:0], fmt.Sprintf("tag-%d", i)...)
				out = append(out, tab.Bytes(buf))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	if tab.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tab.Len())
	}
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d interned %q, goroutine 0 interned %q", g, results[g][i], results[0][i])
			}
		}
	}
}

// TestZeroAllocHitPath pins the hot-path claim: a Bytes hit allocates
// nothing, so interning a repeated allocation tag is free.
func TestZeroAllocHitPath(t *testing.T) {
	tab := NewTable()
	buf := []byte("obj:InviteRequest")
	tab.Bytes(buf) // warm: first sight allocates the canonical copy
	var sink string
	allocs := testing.AllocsPerRun(1000, func() {
		sink = tab.Bytes(buf)
	})
	if allocs != 0 {
		t.Fatalf("Bytes hit path allocates %.2f/op, want 0", allocs)
	}
	s := "obj:InviteRequest"
	allocs = testing.AllocsPerRun(1000, func() {
		sink = tab.String(s)
	})
	if allocs != 0 {
		t.Fatalf("String hit path allocates %.2f/op, want 0", allocs)
	}
	_ = sink
}
