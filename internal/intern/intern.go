// Package intern is the process-wide string intern layer behind the
// zero-allocation hot paths: a sharded, append-only table that canonicalises
// the small vocabulary of strings a trace stream carries — allocation tags,
// stack-frame function and file names — so that every ingest session, every
// decoder and every metadata fragment in the process resolves against one
// copy of each distinct string instead of re-allocating it per session.
//
// The table is deliberately leaky, in the tradition of instrumentation
// string caches (cf. the appoptics CStringCache the ROADMAP cites): entries
// are never evicted, because the vocabulary is bounded by the instrumented
// binary (its tags and source locations), not by the event volume. A
// month-long stream of billions of events from the same binary interns a few
// thousand strings once and then never allocates again.
//
// Lookups take a shard read-lock only; the Bytes fast path performs zero
// allocations on a hit (the map index expression with a string-converted
// byte slice does not escape).
package intern

import (
	"hash/maphash"
	"sync"
)

// shardCount is the number of independent lock domains. Power of two so the
// hash folds with a mask. 64 keeps cross-session contention negligible at
// any plausible connection count while wasting little memory when idle.
const shardCount = 64

var seed = maphash.MakeSeed()

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

// Table is a sharded append-only string intern table. The zero value is not
// usable; use NewTable. Most callers want the package-level process-wide
// table via String and Bytes.
type Table struct {
	shards [shardCount]shard
}

// NewTable creates an empty intern table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]string)
	}
	return t
}

func (t *Table) shardOf(b []byte) *shard {
	return &t.shards[maphash.Bytes(seed, b)&(shardCount-1)]
}

func (t *Table) shardOfString(s string) *shard {
	return &t.shards[maphash.String(seed, s)&(shardCount-1)]
}

// Bytes returns the canonical string for the byte slice, interning it on
// first sight. On a hit it allocates nothing: the compiler recognises the
// map index with a converted byte slice and skips the string copy. The
// caller may reuse b afterwards.
func (t *Table) Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := t.shardOf(b)
	sh.mu.RLock()
	s, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b) // the one allocation, first sight only
	sh.mu.Lock()
	if prev, ok := sh.m[s]; ok {
		s = prev // lost the race; keep the established canonical copy
	} else {
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}

// String returns the canonical copy of s, interning it on first sight.
// Unlike Bytes it never copies the string data: s itself becomes the
// canonical entry when it is new, so interning an already-allocated string
// costs no allocation at all.
func (t *Table) String(s string) string {
	if s == "" {
		return ""
	}
	sh := t.shardOfString(s)
	sh.mu.RLock()
	got, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return got
	}
	sh.mu.Lock()
	if prev, ok := sh.m[s]; ok {
		s = prev
	} else {
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}

// Len returns the number of interned strings.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// global is the process-wide table shared by every decoder and every ingest
// session in the process.
var global = NewTable()

// Bytes interns b in the process-wide table; see Table.Bytes.
func Bytes(b []byte) string { return global.Bytes(b) }

// String interns s in the process-wide table; see Table.String.
func String(s string) string { return global.String(s) }

// Len returns the number of strings in the process-wide table.
func Len() int { return global.Len() }
