package vectorclock

import (
	"testing"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vm"
)

func run(t *testing.T, seed int64, cfg Config, body func(*vm.Thread, *vm.VM)) *report.Collector {
	t.Helper()
	v := vm.New(vm.Options{Seed: seed})
	col := report.NewCollector(v, nil)
	v.AddTool(New(cfg, col))
	if err := v.Run(func(th *vm.Thread) { body(th, v) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return col
}

func TestNoRaceSequential(t *testing.T) {
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(8, "x")
		b.Store32(main, 0, 1)
		w := main.Go("w", func(th *vm.Thread) { b.Store32(th, 0, 2) })
		main.Join(w)
		b.Store32(main, 0, 3)
	})
	if col.Locations() != 0 {
		t.Errorf("create/join ordered writes reported:\n%s", col.Format())
	}
}

func TestDetectsConcurrentWrites(t *testing.T) {
	// Two unsynchronised writers: at least one schedule interleaves them
	// discontiguously; DJIT must flag the pair as unordered regardless of
	// order because no sync event links the threads.
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		a := main.Go("a", func(th *vm.Thread) { b.Store32(th, 0, 1) })
		c := main.Go("b", func(th *vm.Thread) { b.Store32(th, 0, 2) })
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() == 0 {
		t.Error("concurrent unsynchronised writes not reported")
	}
}

func TestLockEdgesOrderAccesses(t *testing.T) {
	// Proper locking creates release->acquire edges: no report even though
	// no create/join orders the accesses.
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		m := v.NewMutex("m")
		w := func(th *vm.Thread) {
			for i := 0; i < 5; i++ {
				m.Lock(th)
				b.Store32(th, 0, b.Load32(th, 0)+1)
				m.Unlock(th)
			}
		}
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() != 0 {
		t.Errorf("lock-ordered accesses reported:\n%s", col.Format())
	}
}

func TestDJITMissesOrderedUnlockedPair(t *testing.T) {
	// The paper (§2.2): DJIT "detects data races on a subset of shared
	// locations that are reported by the lock-set approach and misses some
	// real data races". Construct accesses that a lock release->acquire on an
	// UNRELATED mutex happens to order: DJIT stays silent.
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		m := v.NewMutex("unrelated")
		sem := v.NewSemaphore("order", 0)
		a := main.Go("first", func(th *vm.Thread) {
			b.Store32(th, 0, 1) // unlocked write
			m.Lock(th)
			m.Unlock(th)
			sem.Post(th)
		})
		c := main.Go("second", func(th *vm.Thread) {
			sem.Wait(th) // strictly after 'first'
			m.Lock(th)
			m.Unlock(th)
			b.Store32(th, 0, 2) // unlocked write, but ordered via sem+lock
		})
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() != 0 {
		t.Errorf("happens-before-ordered unlocked writes should not be reported by DJIT:\n%s", col.Format())
	}
}

func TestQueueEdgesOrderThreadPool(t *testing.T) {
	// Fig. 11 workload: DJIT with full edges sees the put->get ordering.
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		q := v.NewQueue("jobs", 0)
		worker := main.Go("worker", func(th *vm.Thread) {
			msg, ok := q.Get(th)
			if !ok {
				return
			}
			blk := msg.(*vm.Block)
			blk.Store32(th, 0, blk.Load32(th, 0)*2)
		})
		b := main.Alloc(4, "job")
		b.Store32(main, 0, 21)
		q.Put(main, b)
		main.Join(worker)
	})
	if col.Locations() != 0 {
		t.Errorf("queue-ordered handoff reported by DJIT with full edges:\n%s", col.Format())
	}
}

func TestQueueEdgeDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Edges = trace.MaskHelgrind // drop queue edges
	col := run(t, 1, cfg, func(main *vm.Thread, v *vm.VM) {
		q := v.NewQueue("jobs", 0)
		worker := main.Go("worker", func(th *vm.Thread) {
			msg, ok := q.Get(th)
			if !ok {
				return
			}
			blk := msg.(*vm.Block)
			blk.Store32(th, 0, blk.Load32(th, 0)*2)
		})
		b := main.Alloc(4, "job")
		b.Store32(main, 0, 21)
		q.Put(main, b)
		main.Join(worker)
	})
	if col.Locations() == 0 {
		t.Error("without queue edges the handoff must look racy to DJIT")
	}
}

func TestReadSharedNoFalsePositive(t *testing.T) {
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "cfg")
		b.Store32(main, 0, 7)
		r := func(th *vm.Thread) { b.Load32(th, 0) }
		a := main.Go("a", r)
		c := main.Go("b", r)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() != 0 {
		t.Errorf("read-shared reported:\n%s", col.Format())
	}
}

func TestWriteAfterConcurrentReadsReported(t *testing.T) {
	col := run(t, 1, DefaultConfig(), func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		b.Store32(main, 0, 7)
		sem := v.NewSemaphore("hold", 0)
		r := main.Go("reader", func(th *vm.Thread) {
			b.Load32(th, 0)
			sem.Wait(th) // keep thread alive so no join edge helps
		})
		w := main.Go("writer", func(th *vm.Thread) {
			th.Sleep(5)
			b.Store32(th, 0, 9) // concurrent with the read
			sem.Post(th)
		})
		main.Join(r)
		main.Join(w)
	})
	if col.Locations() == 0 {
		t.Error("write concurrent with a read not reported")
	}
}

func TestFirstRaceOnlyFoldsPerLocation(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	col := report.NewCollector(v, nil)
	d := New(DefaultConfig(), col)
	v.AddTool(d)
	err := v.Run(func(main *vm.Thread) {
		b := main.Alloc(4, "x")
		w := func(th *vm.Thread) {
			for i := 0; i < 10; i++ {
				b.Store32(th, 0, 1)
			}
		}
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.DynamicRaces() == 0 {
		t.Fatal("expected dynamic races")
	}
	if col.Locations() > 2 {
		t.Errorf("first-race-only should fold to at most one site per stack, got %d", col.Locations())
	}
}
