// Package vectorclock implements a DJIT-style happens-before race detector
// [6] — the comparison baseline discussed in §2.2 of the paper.
//
// Each thread carries a vector clock; lock releases/acquires, thread
// create/join, queue put/get, condition signal/wait and semaphore post/wait
// transfer clocks. A race is two conflicting accesses (same location, at
// least one write) that are unordered by the resulting happens-before
// relation. Unlike the lock-set algorithm, DJIT reports only *apparent*
// races on the observed execution: it misses lock-discipline violations that
// happened to be ordered by the schedule (the paper's point that DJIT
// "detects data races on a subset of shared locations that are reported by
// the lock-set approach").
//
// As the paper notes for [12], treating condition signal->wait as
// happens-before is not sound in general; the Cond edge can be disabled via
// Config.Edges to study that difference.
//
// Despite the similar name, this package is the DETECTOR; the underlying
// vector-clock DATATYPE (join, tick, compare) lives in internal/vclock and
// is shared with the thread-segment graph (internal/segments).
package vectorclock

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Config parameterises the detector.
type Config struct {
	// Tool is the report name; defaults to "djit".
	Tool string
	// Edges selects which synchronisation edges establish happens-before.
	// Defaults to trace.MaskFull. Program/Create/Join are always honoured.
	Edges trace.EdgeMask
	// LockEdges enables release->acquire edges on mutexes and rwlocks
	// (standard DJIT behaviour). Defaults to true via NewDetector.
	LockEdges bool
	// Granule is the shadow granularity in bytes (default 4).
	Granule int
	// FirstRaceOnly mirrors DJIT's "detects only the first apparent data
	// race" per location.
	FirstRaceOnly bool
}

func (c Config) withDefaults() Config {
	if c.Tool == "" {
		c.Tool = "djit"
	}
	if c.Edges == 0 {
		c.Edges = trace.MaskFull
	}
	if c.Granule <= 0 {
		c.Granule = 4
	}
	return c
}

// IsZero reports whether c is the zero configuration — no field set at all.
// Callers that want "unset defaults to standard DJIT" semantics (core.Run)
// must test IsZero rather than sniffing individual fields, so that an
// intentional partial config (say, LockEdges off to study pure program-order
// edges) is honoured rather than silently replaced.
func (c Config) IsZero() bool { return c == Config{} }

// DefaultConfig returns the standard DJIT configuration.
func DefaultConfig() Config {
	return Config{LockEdges: true, FirstRaceOnly: true}.withDefaults()
}

// access records one side of a potential conflict.
type access struct {
	epoch vclock.Epoch
	stack trace.StackID
}

// shadowCell is the per-granule shadow: the last write epoch and, per
// thread, the last read epoch (compacted: a full VC plus one stack).
// readsClean means the read clock holds no reads newer than the last write,
// which lets repeated writes at one epoch skip the read-set scan entirely.
type shadowCell struct {
	lastWrite  access
	reads      vclock.VC
	lastRead   access
	reported   bool
	readsClean bool
}

// Detector is the vector-clock race detector tool. All per-ID state lives in
// flat slices behind dense remappers (threads, locks, condition/semaphore
// objects, segments, blocks); vector-clock components are indexed by dense
// thread number so clocks stay as short as the thread count. Lock and
// message clocks recycle their arrays instead of cloning fresh ones, and
// block shadow is slab-backed and returned on free.
type Detector struct {
	trace.BaseSink
	cfg     Config
	col     trace.Reporter
	thIx    trace.Dense
	lkIx    trace.Dense
	syIx    trace.Dense
	segIx   trace.Dense
	blkIx   trace.Dense
	threads []vclock.VC
	locks   []vclock.VC
	syncs   []vclock.VC
	segVC   []vclock.VC // clocks captured at segment starts
	msgs    map[int64]vclock.VC
	msgPool []vclock.VC // retired message clocks, reused on the next put
	shadow  [][]shadowCell
	slab    trace.Slab[shadowCell]
	races   int
}

// Factory returns a constructor building an independent detector per
// collector, for use as a per-shard detector in the parallel engine. Each
// instance owns its clocks and shadow memory outright.
//
// Deprecated: register the detector through Spec instead; Factory remains
// for single-tool engine callers.
func Factory(cfg Config) func(col *report.Collector) trace.Sink {
	return func(col *report.Collector) trace.Sink { return New(cfg, col) }
}

// Spec registers the detector with the analysis engine's tool registry. Like
// the lock-set detector it is block-routed: vector clocks are driven purely
// by broadcast synchronisation events, shadow cells are per block, and every
// warning arises from a memory access.
func Spec(cfg Config) trace.ToolSpec {
	cfg = cfg.withDefaults()
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a DJIT detector writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:  cfg,
		col:  col,
		msgs: make(map[int64]vclock.VC),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// DynamicRaces returns the dynamic (pre-dedup) race count.
func (d *Detector) DynamicRaces() int { return d.races }

// tIdx returns the dense index for a thread, initialising its clock (one
// self-tick) on first sight. Thread clocks — and every clock derived from
// them — are component-indexed by this dense number, not the raw ThreadID.
func (d *Detector) tIdx(t trace.ThreadID) int {
	ti := d.thIx.Index(int32(t))
	for len(d.threads) <= ti {
		d.threads = append(d.threads, nil)
	}
	if d.threads[ti] == nil {
		d.threads[ti] = vclock.New(ti).Tick(ti)
	}
	return ti
}

func growVCs(s []vclock.VC, i int) []vclock.VC {
	for len(s) <= i {
		s = append(s, nil)
	}
	return s
}

// ThreadStart implements trace.Sink: the child inherits the parent's clock
// (create edge); both tick.
func (d *Detector) ThreadStart(t, parent trace.ThreadID) {
	ti := d.tIdx(t)
	if parent != 0 {
		pi := d.tIdx(parent)
		d.threads[ti] = d.threads[ti].Join(d.threads[pi])
		d.threads[pi] = d.threads[pi].Tick(pi)
	}
	d.threads[ti] = d.threads[ti].Tick(ti)
}

// Segment implements trace.Sink. Join and (optionally) queue/cond/sem edges
// are delivered as segment edges; DJIT folds them into the thread clock.
func (d *Detector) Segment(ss *trace.SegmentStart) {
	ti := d.tIdx(ss.Thread)
	me := d.threads[ti]
	for _, e := range ss.In {
		switch e.Kind {
		case trace.Program, trace.Create:
			// Program order is implicit; Create handled in ThreadStart.
		case trace.Join:
			if si := d.segIx.Lookup(int32(e.From)); si >= 0 && d.segVC[si] != nil {
				me = me.Join(d.segVC[si])
			}
		case trace.Queue, trace.Cond, trace.Sem:
			if !d.cfg.Edges.Has(e.Kind) {
				continue
			}
			if si := d.segIx.Lookup(int32(e.From)); si >= 0 && d.segVC[si] != nil {
				me = me.Join(d.segVC[si])
			}
		}
	}
	me = me.Tick(ti)
	d.threads[ti] = me
	si := d.segIx.Index(int32(ss.Seg))
	d.segVC = growVCs(d.segVC, si)
	d.segVC[si] = vclock.CopyInto(d.segVC[si], me)
}

// ThreadExit implements trace.Sink: capture the final clock so joins can
// synchronise with it (the last segment VC is already recorded).
func (d *Detector) ThreadExit(t trace.ThreadID) {}

// Acquire implements trace.Sink: acquire joins the lock's clock into the
// thread (release->acquire edge).
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	if !d.cfg.LockEdges {
		return
	}
	if li := d.lkIx.Lookup(int32(l)); li >= 0 && d.locks[li] != nil {
		ti := d.tIdx(t)
		d.threads[ti] = d.threads[ti].Join(d.locks[li])
	}
}

// Release implements trace.Sink: the lock's clock becomes the releaser's
// (reusing the lock's previous clock storage); the releaser ticks.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	if !d.cfg.LockEdges {
		return
	}
	ti := d.tIdx(t)
	me := d.threads[ti]
	li := d.lkIx.Index(int32(l))
	d.locks = growVCs(d.locks, li)
	d.locks[li] = vclock.CopyInto(d.locks[li], me)
	d.threads[ti] = me.Tick(ti)
}

// Sync implements trace.Sink: message-precise queue edges (put VC joined at
// the matching get). Message clocks cycle through a pool: a clock retired by
// a get donates its array to the next put.
func (d *Detector) Sync(ev *trace.SyncEvent) {
	switch ev.Op {
	case trace.QueuePut:
		if d.cfg.Edges.Has(trace.Queue) {
			ti := d.tIdx(ev.Thread)
			var mv vclock.VC
			if n := len(d.msgPool); n > 0 {
				mv = d.msgPool[n-1]
				d.msgPool = d.msgPool[:n-1]
			}
			d.msgs[ev.Msg] = vclock.CopyInto(mv, d.threads[ti])
		}
	case trace.QueueGet:
		if d.cfg.Edges.Has(trace.Queue) {
			if mv, ok := d.msgs[ev.Msg]; ok {
				ti := d.tIdx(ev.Thread)
				d.threads[ti] = d.threads[ti].Join(mv)
				delete(d.msgs, ev.Msg)
				d.msgPool = append(d.msgPool, mv)
			}
		}
	case trace.CondSignal, trace.CondBroadcast:
		if d.cfg.Edges.Has(trace.Cond) {
			ti := d.tIdx(ev.Thread)
			me := d.threads[ti]
			si := d.syIx.Index(int32(ev.Obj))
			d.syncs = growVCs(d.syncs, si)
			d.syncs[si] = d.syncs[si].Join(me)
			d.threads[ti] = me.Tick(ti)
		}
	case trace.CondWaitDone:
		if d.cfg.Edges.Has(trace.Cond) {
			if si := d.syIx.Lookup(int32(ev.Obj)); si >= 0 && d.syncs[si] != nil {
				ti := d.tIdx(ev.Thread)
				d.threads[ti] = d.threads[ti].Join(d.syncs[si])
			}
		}
	case trace.SemPost:
		if d.cfg.Edges.Has(trace.Sem) {
			ti := d.tIdx(ev.Thread)
			me := d.threads[ti]
			si := d.syIx.Index(int32(ev.Obj))
			d.syncs = growVCs(d.syncs, si)
			d.syncs[si] = d.syncs[si].Join(me)
			d.threads[ti] = me.Tick(ti)
		}
	case trace.SemWaitDone:
		if d.cfg.Edges.Has(trace.Sem) {
			if si := d.syIx.Lookup(int32(ev.Obj)); si >= 0 && d.syncs[si] != nil {
				ti := d.tIdx(ev.Thread)
				d.threads[ti] = d.threads[ti].Join(d.syncs[si])
			}
		}
	}
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	n := (int(b.Size) + d.cfg.Granule - 1) / d.cfg.Granule
	bi := d.blkIx.Index(int32(b.ID))
	for len(d.shadow) <= bi {
		d.shadow = append(d.shadow, nil)
	}
	d.shadow[bi] = d.slab.Get(n)
}

// Free implements trace.Sink: the shadow cells return to the slab and the
// dense slot is recycled (block IDs are never reused).
func (d *Detector) Free(b *trace.Block, _ trace.ThreadID, _ trace.StackID) {
	if bi := d.blkIx.Evict(int32(b.ID)); bi >= 0 {
		d.slab.Put(d.shadow[bi])
		d.shadow[bi] = nil
	}
}

// Access implements trace.Sink: the happens-before check, with FastTrack-
// style same-epoch fast paths. A read repeated at the thread's current epoch
// is already in the shadow; a write repeated at its own epoch with a clean
// read clock cannot change state. Both skip the stores — never the race
// checks, so the dynamic race count is exactly what the slow path produces.
func (d *Detector) Access(a *trace.Access) {
	bi := d.blkIx.Lookup(int32(a.Block))
	if bi < 0 {
		return
	}
	sh := d.shadow[bi]
	ti := d.tIdx(a.Thread)
	me := d.threads[ti]
	epoch := vclock.Epoch{T: int32(ti), C: me.Get(ti)}
	lo := int(a.Off) / d.cfg.Granule
	hi := int(a.Off+a.Size-1) / d.cfg.Granule
	for gi := lo; gi <= hi && gi < len(sh); gi++ {
		c := &sh[gi]
		if a.Kind == trace.Read {
			if !c.lastWrite.epoch.Zero() && !c.lastWrite.epoch.HappensBefore(me) {
				d.report(c, a, c.lastWrite.stack)
			}
			if c.lastRead.epoch == epoch {
				// Same-epoch read: the read clock already carries it.
				c.lastRead.stack = a.Stack
				continue
			}
			c.reads = c.reads.Set(ti, epoch.C)
			c.readsClean = false
			c.lastRead = access{epoch: epoch, stack: a.Stack}
			continue
		}
		if c.readsClean && c.lastWrite.epoch == epoch {
			// Same-epoch write with no intervening reads: nothing to check,
			// nothing to store.
			c.lastWrite.stack = a.Stack
			continue
		}
		// Write: must be ordered after the last write and after all reads.
		if !c.lastWrite.epoch.Zero() && !c.lastWrite.epoch.HappensBefore(me) {
			d.report(c, a, c.lastWrite.stack)
		} else if !c.reads.LEQ(me) {
			d.report(c, a, c.lastRead.stack)
		}
		c.lastWrite = access{epoch: epoch, stack: a.Stack}
		c.reads.Clear()
		c.readsClean = true
	}
}

func (d *Detector) report(c *shadowCell, a *trace.Access, prevStack trace.StackID) {
	d.races++
	if d.cfg.FirstRaceOnly && c.reported {
		return
	}
	c.reported = true
	d.col.Add(report.Warning{
		Tool:      d.cfg.Tool,
		Kind:      report.KindRace,
		Thread:    a.Thread,
		Addr:      a.Addr,
		Block:     a.Block,
		Off:       a.Off,
		Size:      a.Size,
		Access:    a.Kind,
		Stack:     a.Stack,
		PrevStack: prevStack,
		State:     fmt.Sprintf("unordered with previous access by vector-clock"),
	})
}

var _ trace.Sink = (*Detector)(nil)
