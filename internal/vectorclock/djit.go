// Package vectorclock implements a DJIT-style happens-before race detector
// [6] — the comparison baseline discussed in §2.2 of the paper.
//
// Each thread carries a vector clock; lock releases/acquires, thread
// create/join, queue put/get, condition signal/wait and semaphore post/wait
// transfer clocks. A race is two conflicting accesses (same location, at
// least one write) that are unordered by the resulting happens-before
// relation. Unlike the lock-set algorithm, DJIT reports only *apparent*
// races on the observed execution: it misses lock-discipline violations that
// happened to be ordered by the schedule (the paper's point that DJIT
// "detects data races on a subset of shared locations that are reported by
// the lock-set approach").
//
// As the paper notes for [12], treating condition signal->wait as
// happens-before is not sound in general; the Cond edge can be disabled via
// Config.Edges to study that difference.
//
// Despite the similar name, this package is the DETECTOR; the underlying
// vector-clock DATATYPE (join, tick, compare) lives in internal/vclock and
// is shared with the thread-segment graph (internal/segments).
package vectorclock

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Config parameterises the detector.
type Config struct {
	// Tool is the report name; defaults to "djit".
	Tool string
	// Edges selects which synchronisation edges establish happens-before.
	// Defaults to trace.MaskFull. Program/Create/Join are always honoured.
	Edges trace.EdgeMask
	// LockEdges enables release->acquire edges on mutexes and rwlocks
	// (standard DJIT behaviour). Defaults to true via NewDetector.
	LockEdges bool
	// Granule is the shadow granularity in bytes (default 4).
	Granule int
	// FirstRaceOnly mirrors DJIT's "detects only the first apparent data
	// race" per location.
	FirstRaceOnly bool
}

func (c Config) withDefaults() Config {
	if c.Tool == "" {
		c.Tool = "djit"
	}
	if c.Edges == 0 {
		c.Edges = trace.MaskFull
	}
	if c.Granule <= 0 {
		c.Granule = 4
	}
	return c
}

// IsZero reports whether c is the zero configuration — no field set at all.
// Callers that want "unset defaults to standard DJIT" semantics (core.Run)
// must test IsZero rather than sniffing individual fields, so that an
// intentional partial config (say, LockEdges off to study pure program-order
// edges) is honoured rather than silently replaced.
func (c Config) IsZero() bool { return c == Config{} }

// DefaultConfig returns the standard DJIT configuration.
func DefaultConfig() Config {
	return Config{LockEdges: true, FirstRaceOnly: true}.withDefaults()
}

// access records one side of a potential conflict.
type access struct {
	epoch vclock.Epoch
	stack trace.StackID
}

// shadowCell is the per-granule shadow: the last write epoch and, per
// thread, the last read epoch (compacted: a full VC plus one stack).
type shadowCell struct {
	lastWrite access
	reads     vclock.VC
	lastRead  access
	reported  bool
}

// Detector is the vector-clock race detector tool.
type Detector struct {
	trace.BaseSink
	cfg     Config
	col     trace.Reporter
	threads map[trace.ThreadID]vclock.VC
	locks   map[trace.LockID]vclock.VC
	syncs   map[trace.SyncID]vclock.VC
	msgs    map[int64]vclock.VC
	segVC   map[trace.SegmentID]vclock.VC // clocks captured at segment starts
	shadow  map[trace.BlockID][]shadowCell
	freed   map[trace.BlockID]bool
	races   int
}

// Factory returns a constructor building an independent detector per
// collector, for use as a per-shard detector in the parallel engine. Each
// instance owns its clocks and shadow memory outright.
//
// Deprecated: register the detector through Spec instead; Factory remains
// for single-tool engine callers.
func Factory(cfg Config) func(col *report.Collector) trace.Sink {
	return func(col *report.Collector) trace.Sink { return New(cfg, col) }
}

// Spec registers the detector with the analysis engine's tool registry. Like
// the lock-set detector it is block-routed: vector clocks are driven purely
// by broadcast synchronisation events, shadow cells are per block, and every
// warning arises from a memory access.
func Spec(cfg Config) trace.ToolSpec {
	cfg = cfg.withDefaults()
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a DJIT detector writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:     cfg,
		col:     col,
		threads: make(map[trace.ThreadID]vclock.VC),
		locks:   make(map[trace.LockID]vclock.VC),
		syncs:   make(map[trace.SyncID]vclock.VC),
		msgs:    make(map[int64]vclock.VC),
		segVC:   make(map[trace.SegmentID]vclock.VC),
		shadow:  make(map[trace.BlockID][]shadowCell),
		freed:   make(map[trace.BlockID]bool),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// DynamicRaces returns the dynamic (pre-dedup) race count.
func (d *Detector) DynamicRaces() int { return d.races }

func (d *Detector) vc(t trace.ThreadID) vclock.VC {
	v, ok := d.threads[t]
	if !ok {
		v = vclock.New(int(t)).Tick(int(t))
		d.threads[t] = v
	}
	return v
}

// ThreadStart implements trace.Sink: the child inherits the parent's clock
// (create edge); both tick.
func (d *Detector) ThreadStart(t, parent trace.ThreadID) {
	child := d.vc(t)
	if parent != 0 {
		p := d.vc(parent)
		child = child.Join(p)
		d.threads[parent] = p.Tick(int(parent))
	}
	d.threads[t] = child.Tick(int(t))
}

// Segment implements trace.Sink. Join and (optionally) queue/cond/sem edges
// are delivered as segment edges; DJIT folds them into the thread clock.
func (d *Detector) Segment(ss *trace.SegmentStart) {
	me := d.vc(ss.Thread)
	for _, e := range ss.In {
		switch e.Kind {
		case trace.Program, trace.Create:
			// Program order is implicit; Create handled in ThreadStart.
		case trace.Join:
			if src, ok := d.segVC[e.From]; ok {
				me = me.Join(src)
			}
		case trace.Queue, trace.Cond, trace.Sem:
			if !d.cfg.Edges.Has(e.Kind) {
				continue
			}
			if src, ok := d.segVC[e.From]; ok {
				me = me.Join(src)
			}
		}
	}
	me = me.Tick(int(ss.Thread))
	d.threads[ss.Thread] = me
	d.segVC[ss.Seg] = me.Clone()
}

// ThreadExit implements trace.Sink: capture the final clock so joins can
// synchronise with it (the last segment VC is already recorded).
func (d *Detector) ThreadExit(t trace.ThreadID) {}

// Acquire implements trace.Sink: acquire joins the lock's clock into the
// thread (release->acquire edge).
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	if !d.cfg.LockEdges {
		return
	}
	if lv, ok := d.locks[l]; ok {
		d.threads[t] = d.vc(t).Join(lv)
	}
}

// Release implements trace.Sink: the lock's clock becomes the releaser's;
// the releaser ticks.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	if !d.cfg.LockEdges {
		return
	}
	me := d.vc(t)
	d.locks[l] = me.Clone()
	d.threads[t] = me.Tick(int(t))
}

// Sync implements trace.Sink: message-precise queue edges (put VC joined at
// the matching get).
func (d *Detector) Sync(ev *trace.SyncEvent) {
	switch ev.Op {
	case trace.QueuePut:
		if d.cfg.Edges.Has(trace.Queue) {
			d.msgs[ev.Msg] = d.vc(ev.Thread).Clone()
		}
	case trace.QueueGet:
		if d.cfg.Edges.Has(trace.Queue) {
			if mv, ok := d.msgs[ev.Msg]; ok {
				d.threads[ev.Thread] = d.vc(ev.Thread).Join(mv)
				delete(d.msgs, ev.Msg)
			}
		}
	case trace.CondSignal, trace.CondBroadcast:
		if d.cfg.Edges.Has(trace.Cond) {
			me := d.vc(ev.Thread)
			cv := d.syncs[ev.Obj]
			d.syncs[ev.Obj] = cv.Join(me)
			d.threads[ev.Thread] = me.Tick(int(ev.Thread))
		}
	case trace.CondWaitDone:
		if d.cfg.Edges.Has(trace.Cond) {
			if cv, ok := d.syncs[ev.Obj]; ok {
				d.threads[ev.Thread] = d.vc(ev.Thread).Join(cv)
			}
		}
	case trace.SemPost:
		if d.cfg.Edges.Has(trace.Sem) {
			me := d.vc(ev.Thread)
			sv := d.syncs[ev.Obj]
			d.syncs[ev.Obj] = sv.Join(me)
			d.threads[ev.Thread] = me.Tick(int(ev.Thread))
		}
	case trace.SemWaitDone:
		if d.cfg.Edges.Has(trace.Sem) {
			if sv, ok := d.syncs[ev.Obj]; ok {
				d.threads[ev.Thread] = d.vc(ev.Thread).Join(sv)
			}
		}
	}
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	n := (int(b.Size) + d.cfg.Granule - 1) / d.cfg.Granule
	d.shadow[b.ID] = make([]shadowCell, n)
}

// Free implements trace.Sink.
func (d *Detector) Free(b *trace.Block, _ trace.ThreadID, _ trace.StackID) {
	d.freed[b.ID] = true
}

// Access implements trace.Sink: the happens-before check.
func (d *Detector) Access(a *trace.Access) {
	sh, ok := d.shadow[a.Block]
	if !ok || d.freed[a.Block] {
		return
	}
	me := d.vc(a.Thread)
	epoch := vclock.Epoch{T: int32(a.Thread), C: me.Get(int(a.Thread))}
	lo := int(a.Off) / d.cfg.Granule
	hi := int(a.Off+a.Size-1) / d.cfg.Granule
	for gi := lo; gi <= hi && gi < len(sh); gi++ {
		c := &sh[gi]
		if a.Kind == trace.Read {
			if !c.lastWrite.epoch.Zero() && !c.lastWrite.epoch.HappensBefore(me) {
				d.report(c, a, c.lastWrite.stack)
			}
			c.reads = c.reads.Set(int(a.Thread), epoch.C)
			c.lastRead = access{epoch: epoch, stack: a.Stack}
			continue
		}
		// Write: must be ordered after the last write and after all reads.
		if !c.lastWrite.epoch.Zero() && !c.lastWrite.epoch.HappensBefore(me) {
			d.report(c, a, c.lastWrite.stack)
		} else if !c.reads.LEQ(me) {
			d.report(c, a, c.lastRead.stack)
		}
		c.lastWrite = access{epoch: epoch, stack: a.Stack}
		c.reads = nil
	}
}

func (d *Detector) report(c *shadowCell, a *trace.Access, prevStack trace.StackID) {
	d.races++
	if d.cfg.FirstRaceOnly && c.reported {
		return
	}
	c.reported = true
	d.col.Add(report.Warning{
		Tool:      d.cfg.Tool,
		Kind:      report.KindRace,
		Thread:    a.Thread,
		Addr:      a.Addr,
		Block:     a.Block,
		Off:       a.Off,
		Size:      a.Size,
		Access:    a.Kind,
		Stack:     a.Stack,
		PrevStack: prevStack,
		State:     fmt.Sprintf("unordered with previous access by vector-clock"),
	})
}

var _ trace.Sink = (*Detector)(nil)
