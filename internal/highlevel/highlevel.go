// Package highlevel implements the view-consistency check of Artho,
// Havelund & Biere ("High-level data races", [1] in the paper), which the
// paper's §2.1 motivates with the date-of-birth/age example: even when every
// single access to a shared structure is protected by a lock, the program
// can reach inconsistent states if related fields are updated in separate
// critical sections.
//
// A *view* is the set of shared locations a thread accesses within one
// critical section of a lock. Views of one thread that are maximal under set
// inclusion express which fields the thread treats as an atomic unit; a
// second thread is *view consistent* with them if its own views intersect
// each maximal view in a chain (totally ordered by inclusion). A violation
// means one thread splits a unit that another thread treats as atomic —
// exactly the setter-pair of the paper's example.
package highlevel

import (
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/trace"
)

// Config parameterises the detector.
type Config struct {
	// Tool is the report name; defaults to "highlevel".
	Tool string
	// Granule is the location granularity in bytes (default 4).
	Granule int
	// MinViewSize ignores maximal views smaller than this many locations
	// (default 2 — a one-variable view cannot be split).
	MinViewSize int
}

func (c Config) withDefaults() Config {
	if c.Tool == "" {
		c.Tool = "highlevel"
	}
	if c.Granule <= 0 {
		c.Granule = 4
	}
	if c.MinViewSize <= 0 {
		c.MinViewSize = 2
	}
	return c
}

type varKey struct {
	block trace.BlockID
	gran  uint32
}

type view struct {
	vars  map[varKey]struct{}
	stack trace.StackID // acquisition site
	addr  trace.Addr    // representative address (first access)
	block trace.BlockID
}

// viewKey canonicalises a view's variable set into a binary string usable as
// a dedup map key: the varKeys sorted and appended into the caller-owned
// scratch buffers, which are returned for reuse. On the common path — the
// view was seen before — probing seen[string(key)] with the returned bytes
// is allocation-free (the compiler elides the conversion in a map lookup),
// so only genuinely new views pay for a key string.
func viewKey(v *view, scratchKeys []varKey, scratchBuf []byte) ([]varKey, []byte) {
	keys := scratchKeys[:0]
	for k := range v.vars {
		keys = append(keys, k)
	}
	// Insertion sort: views hold a handful of variables, and sort.Slice's
	// closure would allocate on every Release.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && varKeyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	buf := scratchBuf[:0]
	for _, k := range keys {
		buf = append(buf,
			byte(k.block), byte(k.block>>8), byte(k.block>>16), byte(k.block>>24),
			byte(k.gran), byte(k.gran>>8), byte(k.gran>>16), byte(k.gran>>24))
	}
	return keys, buf
}

func varKeyLess(a, b varKey) bool {
	if a.block != b.block {
		return a.block < b.block
	}
	return a.gran < b.gran
}

// Detector is the view-consistency tool. Call Finish after the run to
// perform the analysis (core.Run does this automatically).
type Detector struct {
	trace.BaseSink
	cfg      Config
	col      trace.Reporter
	open     map[trace.ThreadID]map[trace.LockID]*view
	views    map[trace.LockID]map[trace.ThreadID][]*view
	viewKeys map[trace.LockID]map[trace.ThreadID]map[string]bool
	finished bool
	reports  int

	// Free list plus per-Release scratch. Critical sections open and close
	// once per Acquire/Release pair, but distinct views per (lock, thread)
	// are bounded by program structure — so recycling the duplicates keeps
	// the steady-state event path allocation-free.
	pool       []*view
	scratchKey []varKey
	scratchBuf []byte
}

// Spec registers the detector with the analysis engine's tool registry. View
// consistency is inherently cross-block: one critical section's view spans
// every location the thread touches while holding the lock, regardless of
// which heap block it lives in, so no block partition preserves the
// analysis. The tool therefore runs as a single instance that the engine
// feeds the complete stream (broadcast events plus every block event),
// pinned to one shard. Its warnings are emitted by the end-of-stream Finish
// pass, which the engine sequences after every stream event.
func Spec(cfg Config) trace.ToolSpec {
	cfg = cfg.withDefaults()
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteSingle,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a view-consistency detector writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	return &Detector{
		cfg:      cfg.withDefaults(),
		col:      col,
		open:     make(map[trace.ThreadID]map[trace.LockID]*view),
		views:    make(map[trace.LockID]map[trace.ThreadID][]*view),
		viewKeys: make(map[trace.LockID]map[trace.ThreadID]map[string]bool),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// Violations returns the number of reported view inconsistencies.
func (d *Detector) Violations() int { return d.reports }

// Acquire implements trace.Sink: opens a fresh view for the critical
// section.
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, _ trace.LockKind, stack trace.StackID) {
	m, ok := d.open[t]
	if !ok {
		m = make(map[trace.LockID]*view)
		d.open[t] = m
	}
	if n := len(d.pool); n > 0 {
		v := d.pool[n-1]
		d.pool = d.pool[:n-1]
		clear(v.vars)
		*v = view{vars: v.vars, stack: stack}
		m[l] = v
		return
	}
	m[l] = &view{vars: make(map[varKey]struct{}), stack: stack}
}

// Release implements trace.Sink: finalises the critical section's view.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, _ trace.LockKind, _ trace.StackID) {
	m := d.open[t]
	v, ok := m[l]
	if !ok {
		return
	}
	delete(m, l)
	if len(v.vars) == 0 {
		d.pool = append(d.pool, v)
		return
	}
	byThread, ok := d.views[l]
	if !ok {
		byThread = make(map[trace.ThreadID][]*view)
		d.views[l] = byThread
		d.viewKeys[l] = make(map[trace.ThreadID]map[string]bool)
	}
	seen := d.viewKeys[l][t]
	if seen == nil {
		seen = make(map[string]bool)
		d.viewKeys[l][t] = seen
	}
	keys, buf := viewKey(v, d.scratchKey, d.scratchBuf)
	d.scratchKey, d.scratchBuf = keys, buf
	if seen[string(buf)] {
		d.pool = append(d.pool, v)
		return // identical view already recorded
	}
	seen[string(buf)] = true
	byThread[t] = append(byThread[t], v)
}

// Access implements trace.Sink: adds the location to every critical section
// the thread currently has open.
func (d *Detector) Access(a *trace.Access) {
	m := d.open[a.Thread]
	if len(m) == 0 {
		return
	}
	lo := a.Off / uint32(d.cfg.Granule)
	hi := (a.Off + a.Size - 1) / uint32(d.cfg.Granule)
	for _, v := range m {
		if len(v.vars) == 0 {
			v.addr = a.Addr
			v.block = a.Block
		}
		for g := lo; g <= hi; g++ {
			v.vars[varKey{block: a.Block, gran: g}] = struct{}{}
		}
	}
}

// Finish runs the view-consistency analysis over all recorded views. It is
// idempotent.
func (d *Detector) Finish() {
	if d.finished {
		return
	}
	d.finished = true
	locks := make([]trace.LockID, 0, len(d.views))
	for l := range d.views {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
	for _, l := range locks {
		byThread := d.views[l]
		threads := make([]trace.ThreadID, 0, len(byThread))
		for t := range byThread {
			threads = append(threads, t)
		}
		sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
		for _, t1 := range threads {
			maximal := maximalViews(byThread[t1])
			for _, t2 := range threads {
				if t1 == t2 {
					continue
				}
				for _, m := range maximal {
					if len(m.vars) < d.cfg.MinViewSize {
						continue
					}
					if bad := violates(m, byThread[t2]); bad != nil {
						d.report(l, m, bad)
					}
				}
			}
		}
	}
}

// maximalViews returns the views not strictly contained in another view of
// the same thread.
func maximalViews(vs []*view) []*view {
	var out []*view
	for i, v := range vs {
		maximal := true
		for j, w := range vs {
			if i != j && subset(v.vars, w.vars) && len(v.vars) < len(w.vars) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, v)
		}
	}
	return out
}

// violates checks whether the other thread's views intersect m in a chain;
// it returns one offending view when they do not.
func violates(m *view, others []*view) *view {
	type inter struct {
		set map[varKey]struct{}
		src *view
	}
	var inters []inter
	for _, o := range others {
		x := intersect(m.vars, o.vars)
		if len(x) > 0 {
			inters = append(inters, inter{set: x, src: o})
		}
	}
	for i := 0; i < len(inters); i++ {
		for j := i + 1; j < len(inters); j++ {
			a, b := inters[i], inters[j]
			if !subset(a.set, b.set) && !subset(b.set, a.set) {
				return b.src
			}
		}
	}
	return nil
}

func subset(a, b map[varKey]struct{}) bool {
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func intersect(a, b map[varKey]struct{}) map[varKey]struct{} {
	out := make(map[varKey]struct{})
	for k := range a {
		if _, ok := b[k]; ok {
			out[k] = struct{}{}
		}
	}
	return out
}

func (d *Detector) report(l trace.LockID, m, bad *view) {
	d.reports++
	d.col.Add(report.Warning{
		Tool:      d.cfg.Tool,
		Kind:      report.KindHighLevel,
		Addr:      m.addr,
		Block:     m.block,
		Stack:     m.stack,
		PrevStack: bad.stack,
		State: fmt.Sprintf("lock L%d: a view of %d variable(s) is split inconsistently by another thread",
			l, len(m.vars)),
	})
}

var _ trace.Sink = (*Detector)(nil)
