package highlevel

import (
	"testing"

	"repro/internal/report"
	"repro/internal/vm"
)

// person builds the §2.1 example structure: date-of-birth and age protected
// by one mutex.
type person struct {
	blk *vm.Block
	mu  *vm.Mutex
}

func newPerson(t *vm.Thread) *person {
	return &person{blk: t.Alloc(8, "person"), mu: t.VM().NewMutex("personMu")}
}

// setSplit updates the two dependent fields in SEPARATE critical sections —
// the buggy setter pair of the paper's example.
func (p *person) setSplit(t *vm.Thread, dob, age uint32) {
	defer t.Func("Person::setDateOfBirth", "person.cpp", 20)()
	p.mu.Lock(t)
	p.blk.Store32(t, 0, dob)
	p.mu.Unlock(t)
	t.PopFrame()
	t.PushFrame("Person::setAge", "person.cpp", 30)
	p.mu.Lock(t)
	p.blk.Store32(t, 4, age)
	p.mu.Unlock(t)
}

// setAtomic updates both fields in one critical section — the fix.
func (p *person) setAtomic(t *vm.Thread, dob, age uint32) {
	defer t.Func("Person::set", "person.cpp", 40)()
	p.mu.Lock(t)
	p.blk.Store32(t, 0, dob)
	p.blk.Store32(t, 4, age)
	p.mu.Unlock(t)
}

// readBoth reads the pair as a unit.
func (p *person) readBoth(t *vm.Thread) (uint32, uint32) {
	defer t.Func("Person::snapshot", "person.cpp", 50)()
	p.mu.Lock(t)
	dob := p.blk.Load32(t, 0)
	age := p.blk.Load32(t, 4)
	p.mu.Unlock(t)
	return dob, age
}

func run(t *testing.T, body func(*vm.Thread, *person)) (*Detector, *report.Collector) {
	t.Helper()
	v := vm.New(vm.Options{Seed: 1})
	col := report.NewCollector(v, nil)
	d := New(Config{}, col)
	v.AddTool(d)
	if err := v.Run(func(main *vm.Thread) {
		p := newPerson(main)
		body(main, p)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	d.Finish()
	return d, col
}

func TestDateOfBirthAgeExample(t *testing.T) {
	// The paper's example: writer updates dob and age separately, reader
	// snapshots both. Every access is locked — no low-level race — but the
	// view {dob,age} is split: a high-level data race.
	d, col := run(t, func(main *vm.Thread, p *person) {
		w := main.Go("writer", func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				p.setSplit(th, uint32(1980+i), uint32(40+i))
			}
		})
		r := main.Go("reader", func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				p.readBoth(th)
			}
		})
		main.Join(w)
		main.Join(r)
	})
	if d.Violations() == 0 {
		t.Error("split setter pair not reported as a high-level race")
	}
	if got := col.CountByKind()[report.KindHighLevel]; got == 0 {
		t.Errorf("no high-level warnings in the collector: %s", col.Summary())
	}
}

func TestAtomicUpdateIsConsistent(t *testing.T) {
	d, _ := run(t, func(main *vm.Thread, p *person) {
		w := main.Go("writer", func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				p.setAtomic(th, uint32(1980+i), uint32(40+i))
			}
		})
		r := main.Go("reader", func(th *vm.Thread) {
			for i := 0; i < 3; i++ {
				p.readBoth(th)
			}
		})
		main.Join(w)
		main.Join(r)
	})
	if d.Violations() != 0 {
		t.Errorf("atomic setter reported %d violations", d.Violations())
	}
}

func TestSingleThreadNeverViolates(t *testing.T) {
	d, _ := run(t, func(main *vm.Thread, p *person) {
		p.setSplit(main, 1980, 40)
		p.readBoth(main)
	})
	if d.Violations() != 0 {
		t.Errorf("single thread reported %d violations", d.Violations())
	}
}

func TestDisjointFieldsAreConsistent(t *testing.T) {
	// Threads touching disjoint fields under the same lock: chains hold.
	d, _ := run(t, func(main *vm.Thread, p *person) {
		a := main.Go("a", func(th *vm.Thread) {
			p.mu.Lock(th)
			p.blk.Store32(th, 0, 1)
			p.mu.Unlock(th)
		})
		b := main.Go("b", func(th *vm.Thread) {
			p.mu.Lock(th)
			p.blk.Store32(th, 4, 2)
			p.mu.Unlock(th)
		})
		main.Join(a)
		main.Join(b)
	})
	if d.Violations() != 0 {
		t.Errorf("disjoint accesses reported %d violations", d.Violations())
	}
}

func TestSubsetViewsAreConsistent(t *testing.T) {
	// Reader takes {dob,age}, writer also takes {dob,age} sometimes and
	// {dob} other times: {dob} ⊆ {dob,age} is a chain — consistent.
	d, _ := run(t, func(main *vm.Thread, p *person) {
		w := main.Go("writer", func(th *vm.Thread) {
			p.setAtomic(th, 1980, 40)
			p.mu.Lock(th)
			p.blk.Store32(th, 0, 1981) // dob only: subset view
			p.mu.Unlock(th)
		})
		r := main.Go("reader", func(th *vm.Thread) {
			p.readBoth(th)
		})
		main.Join(w)
		main.Join(r)
	})
	if d.Violations() != 0 {
		t.Errorf("subset views reported %d violations", d.Violations())
	}
}

func TestFinishIdempotent(t *testing.T) {
	d, col := run(t, func(main *vm.Thread, p *person) {
		w := main.Go("writer", func(th *vm.Thread) { p.setSplit(th, 1980, 40) })
		r := main.Go("reader", func(th *vm.Thread) { p.readBoth(th) })
		main.Join(w)
		main.Join(r)
	})
	before := col.Occurrences()
	d.Finish()
	d.Finish()
	if col.Occurrences() != before {
		t.Error("Finish is not idempotent")
	}
}
