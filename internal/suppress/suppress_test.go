package suppress

import (
	"testing"

	"repro/internal/trace"
)

const sample = `
# COW string refcount in libstdc++, cf. Fig. 9
{
   cow-string-grab
   Helgrind:Race
   fun:std::string::_Rep::_M_grab*
   fun:std::string::string
   ...
}
{
   third-party-lib
   *:*
   fun:libthird_*
}
`

func frames(names ...string) []trace.Frame {
	// Innermost LAST, as the VM records them.
	out := make([]trace.Frame, len(names))
	for i, n := range names {
		out[len(names)-1-i] = trace.Frame{Fn: n}
	}
	return out
}

func TestParse(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(f.Rules))
	}
	r := f.Rules[0]
	if r.Name != "cow-string-grab" || r.Kind != "Race" || len(r.Frames) != 3 {
		t.Errorf("rule = %+v", r)
	}
}

func TestMatchInnermostOut(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Stack: innermost _M_grab, then string ctor, then main.
	if !f.Suppressed("Race", frames("std::string::_Rep::_M_grab(alloc,alloc)", "std::string::string", "main")) {
		t.Error("matching stack not suppressed")
	}
	// Wrong innermost frame.
	if f.Suppressed("Race", frames("std::string::assign", "std::string::string", "main")) {
		t.Error("non-matching stack suppressed")
	}
	// Kind mismatch.
	if f.Suppressed("deadlock", frames("std::string::_Rep::_M_grab", "std::string::string")) {
		t.Error("kind mismatch suppressed")
	}
}

func TestWildcardRule(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.Suppressed("possible data race", frames("libthird_init", "main")) {
		t.Error("wildcard kind+frame rule should match")
	}
	if f.Suppressed("possible data race", frames("ourcode", "libthird_init")) {
		t.Error("rule must anchor at the innermost frame")
	}
}

func TestEllipsis(t *testing.T) {
	f, err := ParseString(`
{
   deep
   Race
   fun:inner
   ...
   fun:outer
}
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !f.Suppressed("Race", frames("inner", "mid1", "mid2", "outer")) {
		t.Error("ellipsis should skip middle frames")
	}
	if !f.Suppressed("Race", frames("inner", "outer")) {
		t.Error("ellipsis should match zero frames")
	}
	if f.Suppressed("Race", frames("inner", "mid")) {
		t.Error("missing outer frame should not match")
	}
}

func TestHitsCounting(t *testing.T) {
	f, err := ParseString(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := frames("std::string::_Rep::_M_grab", "std::string::string")
	f.Suppressed("Race", st)
	f.Suppressed("Race", st)
	if f.Hits()["cow-string-grab"] != 2 {
		t.Errorf("hits = %v, want cow-string-grab:2", f.Hits())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"{\n noname",            // unterminated
		"}",                     // stray close
		"{\n}",                  // missing name
		"orphan line",           // content outside rule
		"{\n x\n Race\n bad\n}", // unknown directive
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestGlobPattern(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a*c", "abbbc", true},
		{"a*c", "ac", true},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*", "anything", true},
		{"std::*::_M_grab*", "std::string::_M_grab(x)", true},
	}
	for _, c := range cases {
		if got := matchPattern(c.pat, c.s); got != c.want {
			t.Errorf("matchPattern(%q,%q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestNilFileNeverSuppresses(t *testing.T) {
	var f *File
	if f.Suppressed("Race", frames("x")) {
		t.Error("nil file must not suppress")
	}
}

func FuzzMatchPattern(f *testing.F) {
	f.Add("a*c", "abc")
	f.Add("*", "")
	f.Add("a?c*", "axcyz")
	f.Add("**a**", "bba")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, pat, s string) {
		if len(pat) > 64 || len(s) > 256 {
			t.Skip()
		}
		got := matchPattern(pat, s)
		want := refMatch(pat, s)
		if got != want {
			t.Fatalf("matchPattern(%q, %q) = %v, reference = %v", pat, s, got, want)
		}
	})
}

// refMatch is a simple dynamic-programming reference for glob matching.
func refMatch(pat, s string) bool {
	dp := make([][]bool, len(pat)+1)
	for i := range dp {
		dp[i] = make([]bool, len(s)+1)
	}
	dp[0][0] = true
	for i := 1; i <= len(pat); i++ {
		if pat[i-1] == '*' {
			dp[i][0] = dp[i-1][0]
		}
	}
	for i := 1; i <= len(pat); i++ {
		for j := 1; j <= len(s); j++ {
			switch pat[i-1] {
			case '*':
				dp[i][j] = dp[i-1][j] || dp[i][j-1]
			case '?':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && pat[i-1] == s[j-1]
			}
		}
	}
	return dp[len(pat)][len(s)]
}
