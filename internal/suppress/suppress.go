// Package suppress implements Valgrind-style suppression files (§2.3.1):
// named rules matching a warning kind and a call-stack pattern, used to mute
// known false positives or findings in unmodifiable third-party code.
//
// The accepted format is a simplified Valgrind suppression syntax:
//
//	{
//	   <rule name>
//	   Helgrind:Race
//	   fun:std::string::_Rep::_M_grab*
//	   fun:std::string::string
//	   ...
//	}
//
// Each fun: line matches one stack frame from the innermost outwards; "..."
// matches any number of frames; "*" in a pattern matches any suffix. A rule
// matches when all its frame patterns are satisfied in order.
package suppress

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Rule is one suppression entry.
type Rule struct {
	Name   string
	Kind   string   // warning kind pattern, e.g. "Race" or "*"
	Frames []string // fun: patterns, innermost first; "..." wildcard allowed
}

// File is a parsed suppression file. One File may be shared by concurrent
// consumers (the parallel engine hands the same File to every shard
// collector): matching reads only immutable rule data, and the hit counters
// are mutex-protected.
type File struct {
	Rules []Rule
	mu    sync.Mutex
	hits  map[string]int
}

// Parse reads rules from r.
func Parse(r io.Reader) (*File, error) {
	f := &File{hits: make(map[string]int)}
	sc := bufio.NewScanner(r)
	var cur *Rule
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == "{":
			if cur != nil {
				return nil, fmt.Errorf("suppress: line %d: nested rule", lineNo)
			}
			cur = &Rule{}
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("suppress: line %d: '}' outside rule", lineNo)
			}
			if cur.Name == "" {
				return nil, fmt.Errorf("suppress: line %d: rule without a name", lineNo)
			}
			f.Rules = append(f.Rules, *cur)
			cur = nil
		default:
			if cur == nil {
				return nil, fmt.Errorf("suppress: line %d: content outside rule", lineNo)
			}
			switch {
			case cur.Name == "":
				cur.Name = line
			case cur.Kind == "":
				k := line
				if i := strings.IndexByte(k, ':'); i >= 0 {
					k = k[i+1:] // drop the tool prefix ("Helgrind:")
				}
				cur.Kind = k
			case line == "...":
				cur.Frames = append(cur.Frames, "...")
			case strings.HasPrefix(line, "fun:"):
				cur.Frames = append(cur.Frames, strings.TrimPrefix(line, "fun:"))
			default:
				return nil, fmt.Errorf("suppress: line %d: unrecognised line %q", lineNo, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("suppress: unterminated rule %q", cur.Name)
	}
	return f, nil
}

// ParseString parses rules from a string.
func ParseString(s string) (*File, error) { return Parse(strings.NewReader(s)) }

// Suppressed implements report.Suppressor: it reports whether any rule
// matches the warning kind and resolved stack (innermost frame first in the
// matching order, i.e. the last frame of the slice).
func (f *File) Suppressed(kind string, frames []trace.Frame) bool {
	if f == nil {
		return false
	}
	names := make([]string, 0, len(frames))
	for i := len(frames) - 1; i >= 0; i-- { // innermost first
		names = append(names, frames[i].Fn)
	}
	for i := range f.Rules {
		r := &f.Rules[i]
		if !matchPattern(r.Kind, kind) && !matchPattern(strings.ToLower(r.Kind), strings.ToLower(kind)) {
			continue
		}
		if matchFrames(r.Frames, names) {
			f.mu.Lock()
			f.hits[r.Name]++
			f.mu.Unlock()
			return true
		}
	}
	return false
}

// Hits returns per-rule match counts (useful for pruning stale rules).
func (f *File) Hits() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.hits))
	for k, v := range f.hits {
		out[k] = v
	}
	return out
}

// matchFrames matches patterns against frame names, supporting the "..."
// skip-any wildcard.
func matchFrames(patterns, names []string) bool {
	var match func(pi, ni int) bool
	match = func(pi, ni int) bool {
		if pi == len(patterns) {
			return true // all patterns satisfied; extra outer frames are fine
		}
		if patterns[pi] == "..." {
			if match(pi+1, ni) {
				return true
			}
			for k := ni; k < len(names); k++ {
				if match(pi+1, k) {
					return true
				}
			}
			return false
		}
		if ni >= len(names) {
			return false
		}
		if !matchPattern(patterns[pi], names[ni]) {
			return false
		}
		return match(pi+1, ni+1)
	}
	return match(0, 0)
}

// matchPattern implements glob matching with '*' (any run) and '?' (any one).
func matchPattern(pat, s string) bool {
	var match func(p, t string) bool
	match = func(p, t string) bool {
		for len(p) > 0 {
			switch p[0] {
			case '*':
				for p = p[1:]; len(p) > 0 && p[0] == '*'; p = p[1:] {
				}
				if len(p) == 0 {
					return true
				}
				for i := 0; i <= len(t); i++ {
					if match(p, t[i:]) {
						return true
					}
				}
				return false
			case '?':
				if len(t) == 0 {
					return false
				}
				p, t = p[1:], t[1:]
			default:
				if len(t) == 0 || p[0] != t[0] {
					return false
				}
				p, t = p[1:], t[1:]
			}
		}
		return len(t) == 0
	}
	return match(pat, s)
}
