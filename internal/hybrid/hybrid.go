// Package hybrid implements a lock-set / happens-before hybrid race detector
// in the style of O'Callahan & Choi [12], one of the comparison points of
// §2.2. A location is reported only when (a) the lock-set discipline is
// violated — no common lock protects it — AND (b) the two conflicting
// accesses are not ordered by the happens-before relation built from
// synchronisation events.
//
// The hybrid therefore reports a subset of the pure lock-set findings
// (fewer false positives from deliberate lock-free ordering) while retaining
// more schedule robustness than pure happens-before: an ordered-but-
// unlocked pair is remembered as "suspicious" by its lock-set and still
// reported if any later schedule breaks the ordering.
package hybrid

import (
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Config parameterises the hybrid detector.
type Config struct {
	// Tool is the report name; defaults to "hybrid".
	Tool string
	// Bus selects the bus-lock model (shared with the lock-set component).
	Bus lockset.BusModel
	// Edges selects the happens-before edges honoured. Default MaskFull.
	Edges trace.EdgeMask
	// Granule is the shadow granularity (default 4).
	Granule int
}

func (c Config) withDefaults() Config {
	if c.Tool == "" {
		c.Tool = "hybrid"
	}
	if c.Edges == 0 {
		c.Edges = trace.MaskFull
	}
	if c.Granule <= 0 {
		c.Granule = 4
	}
	return c
}

type cell struct {
	// Lock-set side.
	set    lockset.SetID
	inited bool
	// Happens-before side.
	lastWrite vclock.Epoch
	writeStk  trace.StackID
	reads     vclock.VC
	readStk   trace.StackID
	reported  bool
}

// Detector is the hybrid tool.
type Detector struct {
	trace.BaseSink
	cfg     Config
	col     trace.Reporter
	sets    *lockset.SetTable
	threads map[trace.ThreadID]*threadState
	locks   map[trace.LockID]vclock.VC
	syncs   map[trace.SyncID]vclock.VC
	msgs    map[int64]vclock.VC
	segVC   map[trace.SegmentID]vclock.VC
	shadow  map[trace.BlockID][]cell
	freed   map[trace.BlockID]bool
}

type threadState struct {
	vc     vclock.VC
	held   map[trace.LockID]trace.LockKind
	anyM   lockset.SetID
	wrM    lockset.SetID
	anyBus lockset.SetID
	wrBus  lockset.SetID
}

// Spec registers the detector with the analysis engine's tool registry. The
// hybrid is block-routed for the same reason as its two parents: lock-sets
// and vector clocks are derived from broadcast events, shadow cells are per
// block, and warnings arise only from memory accesses.
func Spec(cfg Config) trace.ToolSpec {
	cfg = cfg.withDefaults()
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a hybrid detector writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:     cfg,
		col:     col,
		sets:    lockset.NewSetTable(),
		threads: make(map[trace.ThreadID]*threadState),
		locks:   make(map[trace.LockID]vclock.VC),
		syncs:   make(map[trace.SyncID]vclock.VC),
		msgs:    make(map[int64]vclock.VC),
		segVC:   make(map[trace.SegmentID]vclock.VC),
		shadow:  make(map[trace.BlockID][]cell),
		freed:   make(map[trace.BlockID]bool),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

func (d *Detector) thread(t trace.ThreadID) *threadState {
	ts, ok := d.threads[t]
	if !ok {
		ts = &threadState{
			vc:   vclock.New(int(t)).Tick(int(t)),
			held: make(map[trace.LockID]trace.LockKind),
		}
		ts.recompute(d.sets)
		d.threads[t] = ts
	}
	return ts
}

func (ts *threadState) recompute(sets *lockset.SetTable) {
	var anyM, wrM []trace.LockID
	for l, k := range ts.held {
		anyM = append(anyM, l)
		if k == trace.Mutex || k == trace.WLock {
			wrM = append(wrM, l)
		}
	}
	ts.anyM = sets.Intern(anyM)
	ts.wrM = sets.Intern(wrM)
	ts.anyBus = sets.Intern(append(anyM, trace.BusLock))
	ts.wrBus = sets.Intern(append(wrM, trace.BusLock))
}

// ThreadStart implements trace.Sink.
func (d *Detector) ThreadStart(t, parent trace.ThreadID) {
	child := d.thread(t)
	if parent != 0 {
		p := d.thread(parent)
		child.vc = child.vc.Join(p.vc)
		p.vc = p.vc.Tick(int(parent))
	}
	child.vc = child.vc.Tick(int(t))
}

// Segment implements trace.Sink.
func (d *Detector) Segment(ss *trace.SegmentStart) {
	ts := d.thread(ss.Thread)
	for _, e := range ss.In {
		switch e.Kind {
		case trace.Join:
			if src, ok := d.segVC[e.From]; ok {
				ts.vc = ts.vc.Join(src)
			}
		case trace.Queue, trace.Cond, trace.Sem:
			if d.cfg.Edges.Has(e.Kind) {
				if src, ok := d.segVC[e.From]; ok {
					ts.vc = ts.vc.Join(src)
				}
			}
		}
	}
	ts.vc = ts.vc.Tick(int(ss.Thread))
	d.segVC[ss.Seg] = ts.vc.Clone()
}

// Acquire implements trace.Sink.
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	ts := d.thread(t)
	ts.held[l] = k
	ts.recompute(d.sets)
	if lv, ok := d.locks[l]; ok {
		ts.vc = ts.vc.Join(lv)
	}
}

// Release implements trace.Sink.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, _ trace.LockKind, _ trace.StackID) {
	ts := d.thread(t)
	delete(ts.held, l)
	ts.recompute(d.sets)
	d.locks[l] = ts.vc.Clone()
	ts.vc = ts.vc.Tick(int(t))
}

// Sync implements trace.Sink.
func (d *Detector) Sync(ev *trace.SyncEvent) {
	ts := d.thread(ev.Thread)
	switch ev.Op {
	case trace.QueuePut:
		if d.cfg.Edges.Has(trace.Queue) {
			d.msgs[ev.Msg] = ts.vc.Clone()
		}
	case trace.QueueGet:
		if d.cfg.Edges.Has(trace.Queue) {
			if mv, ok := d.msgs[ev.Msg]; ok {
				ts.vc = ts.vc.Join(mv)
				delete(d.msgs, ev.Msg)
			}
		}
	case trace.CondSignal, trace.CondBroadcast:
		if d.cfg.Edges.Has(trace.Cond) {
			d.syncs[ev.Obj] = d.syncs[ev.Obj].Join(ts.vc)
			ts.vc = ts.vc.Tick(int(ev.Thread))
		}
	case trace.CondWaitDone:
		if d.cfg.Edges.Has(trace.Cond) {
			if cv, ok := d.syncs[ev.Obj]; ok {
				ts.vc = ts.vc.Join(cv)
			}
		}
	case trace.SemPost:
		if d.cfg.Edges.Has(trace.Sem) {
			d.syncs[ev.Obj] = d.syncs[ev.Obj].Join(ts.vc)
			ts.vc = ts.vc.Tick(int(ev.Thread))
		}
	case trace.SemWaitDone:
		if d.cfg.Edges.Has(trace.Sem) {
			if sv, ok := d.syncs[ev.Obj]; ok {
				ts.vc = ts.vc.Join(sv)
			}
		}
	}
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	n := (int(b.Size) + d.cfg.Granule - 1) / d.cfg.Granule
	d.shadow[b.ID] = make([]cell, n)
}

// Free implements trace.Sink.
func (d *Detector) Free(b *trace.Block, _ trace.ThreadID, _ trace.StackID) {
	d.freed[b.ID] = true
}

// Access implements trace.Sink: report only when the lock-set is empty AND
// the accesses are unordered.
func (d *Detector) Access(a *trace.Access) {
	sh, ok := d.shadow[a.Block]
	if !ok || d.freed[a.Block] {
		return
	}
	ts := d.thread(a.Thread)
	anyM, wrM := ts.anyM, ts.wrM
	switch d.cfg.Bus {
	case lockset.BusSingleMutex:
		if a.Atomic {
			anyM, wrM = ts.anyBus, ts.wrBus
		}
	case lockset.BusRWLock:
		anyM = ts.anyBus
		if a.Atomic {
			wrM = ts.wrBus
		}
	}
	epoch := vclock.Epoch{T: int32(a.Thread), C: ts.vc.Get(int(a.Thread))}
	lo := int(a.Off) / d.cfg.Granule
	hi := int(a.Off+a.Size-1) / d.cfg.Granule
	for gi := lo; gi <= hi && gi < len(sh); gi++ {
		c := &sh[gi]
		// Lock-set side: intersect with the mode-appropriate set.
		eff := anyM
		if a.Kind == trace.Write {
			eff = wrM
		}
		if !c.inited {
			c.set = eff
			c.inited = true
		} else {
			c.set = d.sets.Intersect(c.set, eff)
		}
		disciplineBroken := c.set == lockset.EmptySet

		// Happens-before side.
		var unordered bool
		var prevStack trace.StackID
		if a.Kind == trace.Read {
			if !c.lastWrite.Zero() && !c.lastWrite.HappensBefore(ts.vc) {
				unordered = true
				prevStack = c.writeStk
			}
			c.reads = c.reads.Set(int(a.Thread), epoch.C)
			c.readStk = a.Stack
		} else {
			if !c.lastWrite.Zero() && !c.lastWrite.HappensBefore(ts.vc) {
				unordered = true
				prevStack = c.writeStk
			} else if !c.reads.LEQ(ts.vc) {
				unordered = true
				prevStack = c.readStk
			}
			c.lastWrite = epoch
			c.writeStk = a.Stack
			c.reads = nil
		}

		if disciplineBroken && unordered && !c.reported {
			c.reported = true
			d.col.Add(report.Warning{
				Tool:      d.cfg.Tool,
				Kind:      report.KindRace,
				Thread:    a.Thread,
				Addr:      a.Addr,
				Block:     a.Block,
				Off:       a.Off,
				Size:      a.Size,
				Access:    a.Kind,
				Stack:     a.Stack,
				PrevStack: prevStack,
				State:     "no common lock and unordered by happens-before",
			})
		}
	}
}

var _ trace.Sink = (*Detector)(nil)
