// Package hybrid implements a lock-set / happens-before hybrid race detector
// in the style of O'Callahan & Choi [12], one of the comparison points of
// §2.2. A location is reported only when (a) the lock-set discipline is
// violated — no common lock protects it — AND (b) the two conflicting
// accesses are not ordered by the happens-before relation built from
// synchronisation events.
//
// The hybrid therefore reports a subset of the pure lock-set findings
// (fewer false positives from deliberate lock-free ordering) while retaining
// more schedule robustness than pure happens-before: an ordered-but-
// unlocked pair is remembered as "suspicious" by its lock-set and still
// reported if any later schedule breaks the ordering.
package hybrid

import (
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Config parameterises the hybrid detector.
type Config struct {
	// Tool is the report name; defaults to "hybrid".
	Tool string
	// Bus selects the bus-lock model (shared with the lock-set component).
	Bus lockset.BusModel
	// Edges selects the happens-before edges honoured. Default MaskFull.
	Edges trace.EdgeMask
	// Granule is the shadow granularity (default 4).
	Granule int
}

func (c Config) withDefaults() Config {
	if c.Tool == "" {
		c.Tool = "hybrid"
	}
	if c.Edges == 0 {
		c.Edges = trace.MaskFull
	}
	if c.Granule <= 0 {
		c.Granule = 4
	}
	return c
}

type cell struct {
	// Lock-set side.
	set    lockset.SetID
	inited bool
	// Happens-before side. readsClean marks the read clock as holding
	// nothing newer than the last write, so repeated writes at one epoch
	// skip the read-set scan.
	lastWrite  vclock.Epoch
	writeStk   trace.StackID
	reads      vclock.VC
	lastRead   vclock.Epoch
	readStk    trace.StackID
	reported   bool
	readsClean bool
}

// Detector is the hybrid tool. Like its two parents, per-ID state sits in
// flat slices behind dense remappers, lock-sets are maintained incrementally
// through memoised transition edges, vector-clock components are indexed by
// dense thread number, and block shadow is slab-recycled on free.
type Detector struct {
	trace.BaseSink
	cfg     Config
	col     trace.Reporter
	sets    *lockset.SetTable
	thIx    trace.Dense
	lkIx    trace.Dense
	syIx    trace.Dense
	segIx   trace.Dense
	blkIx   trace.Dense
	threads []threadState
	locks   []vclock.VC
	syncs   []vclock.VC
	segVC   []vclock.VC
	msgs    map[int64]vclock.VC
	msgPool []vclock.VC
	shadow  [][]cell
	slab    trace.Slab[cell]
}

type threadState struct {
	init   bool
	vc     vclock.VC
	anyM   lockset.SetID
	wrM    lockset.SetID
	anyBus lockset.SetID
	wrBus  lockset.SetID
}

// Spec registers the detector with the analysis engine's tool registry. The
// hybrid is block-routed for the same reason as its two parents: lock-sets
// and vector clocks are derived from broadcast events, shadow cells are per
// block, and warnings arise only from memory accesses.
func Spec(cfg Config) trace.ToolSpec {
	cfg = cfg.withDefaults()
	return trace.ToolSpec{
		Name:    cfg.Tool,
		Routing: trace.RouteBlock,
		Factory: func(col trace.Reporter) trace.Sink { return New(cfg, col) },
	}
}

// New creates a hybrid detector writing to col.
func New(cfg Config, col trace.Reporter) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{
		cfg:  cfg,
		col:  col,
		sets: lockset.NewSetTable(),
		msgs: make(map[int64]vclock.VC),
	}
}

// ToolName implements trace.Sink.
func (d *Detector) ToolName() string { return d.cfg.Tool }

// tIdx returns the dense index for a thread, initialising its clock and
// lock-set variants on first sight.
func (d *Detector) tIdx(t trace.ThreadID) int {
	ti := d.thIx.Index(int32(t))
	for len(d.threads) <= ti {
		d.threads = append(d.threads, threadState{})
	}
	ts := &d.threads[ti]
	if !ts.init {
		ts.init = true
		ts.vc = vclock.New(ti).Tick(ti)
		ts.anyBus = d.sets.Add(lockset.EmptySet, trace.BusLock)
		ts.wrBus = ts.anyBus
	}
	return ti
}

func growVCs(s []vclock.VC, i int) []vclock.VC {
	for len(s) <= i {
		s = append(s, nil)
	}
	return s
}

// ThreadStart implements trace.Sink.
func (d *Detector) ThreadStart(t, parent trace.ThreadID) {
	ti := d.tIdx(t)
	if parent != 0 {
		pi := d.tIdx(parent)
		d.threads[ti].vc = d.threads[ti].vc.Join(d.threads[pi].vc)
		d.threads[pi].vc = d.threads[pi].vc.Tick(pi)
	}
	d.threads[ti].vc = d.threads[ti].vc.Tick(ti)
}

// Segment implements trace.Sink.
func (d *Detector) Segment(ss *trace.SegmentStart) {
	ti := d.tIdx(ss.Thread)
	ts := &d.threads[ti]
	for _, e := range ss.In {
		switch e.Kind {
		case trace.Join:
			if si := d.segIx.Lookup(int32(e.From)); si >= 0 && d.segVC[si] != nil {
				ts.vc = ts.vc.Join(d.segVC[si])
			}
		case trace.Queue, trace.Cond, trace.Sem:
			if d.cfg.Edges.Has(e.Kind) {
				if si := d.segIx.Lookup(int32(e.From)); si >= 0 && d.segVC[si] != nil {
					ts.vc = ts.vc.Join(d.segVC[si])
				}
			}
		}
	}
	ts.vc = ts.vc.Tick(ti)
	si := d.segIx.Index(int32(ss.Seg))
	d.segVC = growVCs(d.segVC, si)
	d.segVC[si] = vclock.CopyInto(d.segVC[si], ts.vc)
}

// Acquire implements trace.Sink: the held sets advance by one memoised
// transition edge per variant, and the lock's clock joins the thread's.
func (d *Detector) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, _ trace.StackID) {
	ti := d.tIdx(t)
	ts := &d.threads[ti]
	ts.anyM = d.sets.Add(ts.anyM, l)
	ts.anyBus = d.sets.Add(ts.anyM, trace.BusLock)
	if k == trace.Mutex || k == trace.WLock {
		ts.wrM = d.sets.Add(ts.wrM, l)
	} else {
		ts.wrM = d.sets.Remove(ts.wrM, l)
	}
	ts.wrBus = d.sets.Add(ts.wrM, trace.BusLock)
	if li := d.lkIx.Lookup(int32(l)); li >= 0 && d.locks[li] != nil {
		ts.vc = ts.vc.Join(d.locks[li])
	}
}

// Release implements trace.Sink.
func (d *Detector) Release(t trace.ThreadID, l trace.LockID, _ trace.LockKind, _ trace.StackID) {
	ti := d.tIdx(t)
	ts := &d.threads[ti]
	ts.anyM = d.sets.Remove(ts.anyM, l)
	ts.anyBus = d.sets.Add(ts.anyM, trace.BusLock)
	ts.wrM = d.sets.Remove(ts.wrM, l)
	ts.wrBus = d.sets.Add(ts.wrM, trace.BusLock)
	li := d.lkIx.Index(int32(l))
	d.locks = growVCs(d.locks, li)
	d.locks[li] = vclock.CopyInto(d.locks[li], ts.vc)
	ts.vc = ts.vc.Tick(ti)
}

// Sync implements trace.Sink.
func (d *Detector) Sync(ev *trace.SyncEvent) {
	ti := d.tIdx(ev.Thread)
	ts := &d.threads[ti]
	switch ev.Op {
	case trace.QueuePut:
		if d.cfg.Edges.Has(trace.Queue) {
			var mv vclock.VC
			if n := len(d.msgPool); n > 0 {
				mv = d.msgPool[n-1]
				d.msgPool = d.msgPool[:n-1]
			}
			d.msgs[ev.Msg] = vclock.CopyInto(mv, ts.vc)
		}
	case trace.QueueGet:
		if d.cfg.Edges.Has(trace.Queue) {
			if mv, ok := d.msgs[ev.Msg]; ok {
				ts.vc = ts.vc.Join(mv)
				delete(d.msgs, ev.Msg)
				d.msgPool = append(d.msgPool, mv)
			}
		}
	case trace.CondSignal, trace.CondBroadcast:
		if d.cfg.Edges.Has(trace.Cond) {
			si := d.syIx.Index(int32(ev.Obj))
			d.syncs = growVCs(d.syncs, si)
			d.syncs[si] = d.syncs[si].Join(ts.vc)
			ts.vc = ts.vc.Tick(ti)
		}
	case trace.CondWaitDone:
		if d.cfg.Edges.Has(trace.Cond) {
			if si := d.syIx.Lookup(int32(ev.Obj)); si >= 0 && d.syncs[si] != nil {
				ts.vc = ts.vc.Join(d.syncs[si])
			}
		}
	case trace.SemPost:
		if d.cfg.Edges.Has(trace.Sem) {
			si := d.syIx.Index(int32(ev.Obj))
			d.syncs = growVCs(d.syncs, si)
			d.syncs[si] = d.syncs[si].Join(ts.vc)
			ts.vc = ts.vc.Tick(ti)
		}
	case trace.SemWaitDone:
		if d.cfg.Edges.Has(trace.Sem) {
			if si := d.syIx.Lookup(int32(ev.Obj)); si >= 0 && d.syncs[si] != nil {
				ts.vc = ts.vc.Join(d.syncs[si])
			}
		}
	}
}

// Alloc implements trace.Sink.
func (d *Detector) Alloc(b *trace.Block) {
	n := (int(b.Size) + d.cfg.Granule - 1) / d.cfg.Granule
	bi := d.blkIx.Index(int32(b.ID))
	for len(d.shadow) <= bi {
		d.shadow = append(d.shadow, nil)
	}
	d.shadow[bi] = d.slab.Get(n)
}

// Free implements trace.Sink: the shadow cells return to the slab and the
// dense slot is recycled (block IDs are never reused).
func (d *Detector) Free(b *trace.Block, _ trace.ThreadID, _ trace.StackID) {
	if bi := d.blkIx.Evict(int32(b.ID)); bi >= 0 {
		d.slab.Put(d.shadow[bi])
		d.shadow[bi] = nil
	}
}

// Access implements trace.Sink: report only when the lock-set is empty AND
// the accesses are unordered. Same-epoch repeats skip the redundant shadow
// stores and the read-set scan, never the race decision itself.
func (d *Detector) Access(a *trace.Access) {
	bi := d.blkIx.Lookup(int32(a.Block))
	if bi < 0 {
		return
	}
	sh := d.shadow[bi]
	ti := d.tIdx(a.Thread)
	ts := &d.threads[ti]
	anyM, wrM := ts.anyM, ts.wrM
	switch d.cfg.Bus {
	case lockset.BusSingleMutex:
		if a.Atomic {
			anyM, wrM = ts.anyBus, ts.wrBus
		}
	case lockset.BusRWLock:
		anyM = ts.anyBus
		if a.Atomic {
			wrM = ts.wrBus
		}
	}
	epoch := vclock.Epoch{T: int32(ti), C: ts.vc.Get(ti)}
	lo := int(a.Off) / d.cfg.Granule
	hi := int(a.Off+a.Size-1) / d.cfg.Granule
	for gi := lo; gi <= hi && gi < len(sh); gi++ {
		c := &sh[gi]
		// Lock-set side: intersect with the mode-appropriate set.
		eff := anyM
		if a.Kind == trace.Write {
			eff = wrM
		}
		if !c.inited {
			c.set = eff
			c.inited = true
		} else {
			c.set = d.sets.Intersect(c.set, eff)
		}
		disciplineBroken := c.set == lockset.EmptySet

		// Happens-before side.
		var unordered bool
		var prevStack trace.StackID
		if a.Kind == trace.Read {
			if !c.lastWrite.Zero() && !c.lastWrite.HappensBefore(ts.vc) {
				unordered = true
				prevStack = c.writeStk
			}
			if c.lastRead == epoch {
				c.readStk = a.Stack
			} else {
				c.reads = c.reads.Set(ti, epoch.C)
				c.lastRead = epoch
				c.readsClean = false
				c.readStk = a.Stack
			}
		} else {
			if !c.lastWrite.Zero() && !c.lastWrite.HappensBefore(ts.vc) {
				unordered = true
				prevStack = c.writeStk
			} else if !c.readsClean && !c.reads.LEQ(ts.vc) {
				unordered = true
				prevStack = c.readStk
			}
			c.lastWrite = epoch
			c.writeStk = a.Stack
			if !c.readsClean {
				c.reads.Clear()
				c.readsClean = true
			}
		}

		if disciplineBroken && unordered && !c.reported {
			c.reported = true
			d.col.Add(report.Warning{
				Tool:      d.cfg.Tool,
				Kind:      report.KindRace,
				Thread:    a.Thread,
				Addr:      a.Addr,
				Block:     a.Block,
				Off:       a.Off,
				Size:      a.Size,
				Access:    a.Kind,
				Stack:     a.Stack,
				PrevStack: prevStack,
				State:     "no common lock and unordered by happens-before",
			})
		}
	}
}

var _ trace.Sink = (*Detector)(nil)
