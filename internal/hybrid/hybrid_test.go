package hybrid

import (
	"testing"

	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/vm"
)

func run(t *testing.T, seed int64, cfg Config, body func(*vm.Thread, *vm.VM)) *report.Collector {
	t.Helper()
	v := vm.New(vm.Options{Seed: seed})
	col := report.NewCollector(v, nil)
	v.AddTool(New(cfg, col))
	if err := v.Run(func(th *vm.Thread) { body(th, v) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return col
}

func TestReportsUnlockedUnorderedWrites(t *testing.T) {
	col := run(t, 1, Config{}, func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		a := main.Go("a", func(th *vm.Thread) { b.Store32(th, 0, 1) })
		c := main.Go("b", func(th *vm.Thread) { b.Store32(th, 0, 2) })
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() == 0 {
		t.Error("unlocked unordered writes not reported")
	}
}

func TestSilentWhenLocked(t *testing.T) {
	col := run(t, 1, Config{}, func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "x")
		m := v.NewMutex("m")
		w := func(th *vm.Thread) {
			m.Lock(th)
			b.Store32(th, 0, 1)
			m.Unlock(th)
		}
		a := main.Go("a", w)
		c := main.Go("b", w)
		main.Join(a)
		main.Join(c)
	})
	if col.Locations() != 0 {
		t.Errorf("locked writes reported:\n%s", col.Format())
	}
}

func TestSilentWhenOrderedWithoutLocks(t *testing.T) {
	// The hybrid's advantage over pure lock-set: deliberately lock-free but
	// queue-ordered handoff is silent (no false positive), while pure
	// lock-set with the Helgrind mask reports it.
	prog := func(main *vm.Thread, v *vm.VM) {
		q := v.NewQueue("q", 0)
		w := main.Go("worker", func(th *vm.Thread) {
			msg, _ := q.Get(th)
			blk := msg.(*vm.Block)
			blk.Store32(th, 0, 2)
		})
		b := main.Alloc(4, "x")
		b.Store32(main, 0, 1)
		q.Put(main, b)
		main.Join(w)
	}
	col := run(t, 1, Config{}, prog)
	if col.Locations() != 0 {
		t.Errorf("queue-ordered handoff reported by hybrid:\n%s", col.Format())
	}

	// Cross-check: the pure lock-set detector with the stock mask reports it.
	v := vm.New(vm.Options{Seed: 1})
	lcol := report.NewCollector(v, nil)
	v.AddTool(lockset.New(lockset.ConfigHWLCDR(), lcol))
	if err := v.Run(func(th *vm.Thread) { prog(th, v) }); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lcol.Locations() == 0 {
		t.Error("pure lock-set should report the same handoff (it is the Fig. 11 FP)")
	}
}

func TestBusLockModelIntegration(t *testing.T) {
	// COW-string-style refcount under the rwlock bus model: atomic writes
	// keep the bus lock in the set, so the discipline is not broken.
	prog := func(main *vm.Thread, v *vm.VM) {
		b := main.Alloc(4, "refcnt")
		sem := v.NewSemaphore("keepalive", 0)
		a := main.Go("a", func(th *vm.Thread) {
			b.Load32(th, 0)
			b.AtomicAdd32(th, 0, 1)
			sem.Wait(th)
		})
		c := main.Go("b", func(th *vm.Thread) {
			th.Sleep(3)
			b.Load32(th, 0)
			b.AtomicAdd32(th, 0, 1)
			sem.Post(th)
		})
		main.Join(a)
		main.Join(c)
	}
	col := run(t, 1, Config{Bus: lockset.BusRWLock}, prog)
	if col.Locations() != 0 {
		t.Errorf("atomic refcount reported under rwlock bus model:\n%s", col.Format())
	}
	colOrig := run(t, 1, Config{Bus: lockset.BusSingleMutex}, prog)
	if colOrig.Locations() == 0 {
		t.Error("single-mutex bus model should report the refcount (discipline broken and unordered)")
	}
}
