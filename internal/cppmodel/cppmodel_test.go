package cppmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/vm"
)

func newVMWithDetector(seed int64, cfg lockset.Config) (*vm.VM, *report.Collector) {
	v := vm.New(vm.Options{Seed: seed})
	col := report.NewCollector(v, nil)
	v.AddTool(lockset.New(cfg, col))
	return v, col
}

func testHierarchy() (*Class, *Class, *Class) {
	base := NewClass("MessageBase", "message.h", Field{Name: "kind", Size: 4})
	req := base.Derive("SIPRequest", "request.h", Field{Name: "methodLen", Size: 4})
	inv := req.Derive("InviteRequest", "invite.h", Field{Name: "sdpLen", Size: 4})
	return base, req, inv
}

func TestLayoutAndFields(t *testing.T) {
	base, req, inv := testHierarchy()
	if base.Size() != VptrSize+4 {
		t.Errorf("base size = %d, want %d", base.Size(), VptrSize+4)
	}
	if !inv.IsA(base) || !inv.IsA(req) || !inv.IsA(inv) {
		t.Error("IsA hierarchy broken")
	}
	if req.IsA(inv) {
		t.Error("base must not IsA derived")
	}
	v := vm.New(vm.Options{Seed: 1})
	rt := NewRuntime(Options{})
	err := v.Run(func(main *vm.Thread) {
		obj := rt.New(main, inv)
		obj.Store(main, "kind", 3)
		obj.Store(main, "methodLen", 6)
		obj.Store(main, "sdpLen", 120)
		if obj.Load(main, "kind") != 3 || obj.Load(main, "methodLen") != 6 || obj.Load(main, "sdpLen") != 120 {
			t.Error("field round-trip failed")
		}
		if obj.FieldOff("kind") >= obj.FieldOff("methodLen") ||
			obj.FieldOff("methodLen") >= obj.FieldOff("sdpLen") {
			t.Error("derived fields must append after base fields")
		}
		rt.Delete(main, obj)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rt.Stats().ObjectsNew != 1 || rt.Stats().ObjectsDeleted != 1 {
		t.Errorf("stats = %+v", rt.Stats())
	}
}

func TestCtorDtorChainOrder(t *testing.T) {
	var order []string
	base := NewClass("B", "b.h")
	base.Ctor = func(t *vm.Thread, o *Object) { order = append(order, "ctor-B") }
	base.Dtor = func(t *vm.Thread, o *Object) { order = append(order, "dtor-B") }
	der := base.Derive("D", "d.h")
	der.Ctor = func(t *vm.Thread, o *Object) { order = append(order, "ctor-D") }
	der.Dtor = func(t *vm.Thread, o *Object) { order = append(order, "dtor-D") }

	v := vm.New(vm.Options{Seed: 1})
	rt := NewRuntime(Options{})
	if err := v.Run(func(main *vm.Thread) {
		obj := rt.New(main, der)
		rt.Delete(main, obj)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"ctor-B", "ctor-D", "dtor-D", "dtor-B"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// sharedObjectScenario builds the destructor-FP situation of §4.2.1: an
// object whose vptr is read by several threads under different locks and
// which is deleted by a thread other than its creator.
func sharedObjectScenario(rt *Runtime, cls *Class) func(*vm.Thread) {
	return func(main *vm.Thread) {
		v := main.VM()
		m1 := v.NewMutex("users")
		m2 := v.NewMutex("other")
		obj := rt.New(main, cls)
		w1 := main.Go("w1", func(th *vm.Thread) {
			m1.Lock(th)
			obj.VCall(th, "process", nil)
			m1.Unlock(th)
		})
		w2 := main.Go("w2", func(th *vm.Thread) {
			m2.Lock(th)
			obj.VCall(th, "process", nil)
			m2.Unlock(th)
		})
		main.Join(w1)
		main.Join(w2)
		del := main.Go("deleter", func(th *vm.Thread) {
			rt.Delete(th, obj)
		})
		main.Join(del)
	}
}

func TestDtorVptrFalsePositiveAndAnnotation(t *testing.T) {
	_, _, inv := testHierarchy()

	// Without annotation: the deleter's vptr rewrites are flagged.
	v1, col1 := newVMWithDetector(1, lockset.ConfigHWLC())
	rtPlain := NewRuntime(Options{AnnotateDeletes: false})
	if err := v1.Run(sharedObjectScenario(rtPlain, inv)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col1.Locations() == 0 {
		t.Error("unannotated delete of a shared object should be reported")
	}

	// With annotation: silent.
	v2, col2 := newVMWithDetector(1, lockset.ConfigHWLCDR())
	rtAnn := NewRuntime(Options{AnnotateDeletes: true})
	if err := v2.Run(sharedObjectScenario(rtAnn, inv)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col2.Locations() != 0 {
		t.Errorf("annotated delete still reported:\n%s", col2.Format())
	}
	if rtAnn.Stats().Annotated != 1 {
		t.Errorf("annotated = %d, want 1", rtAnn.Stats().Annotated)
	}
}

func TestAnnotationCoverageThirdParty(t *testing.T) {
	// §3.1: classes without source available do not emit the annotation even
	// under an annotated build, so their deletions still produce warnings.
	_, _, inv := testHierarchy()
	third := NewClass("libthird::Handle", "third_party.h")

	v, col := newVMWithDetector(1, lockset.ConfigHWLCDR())
	rt := NewRuntime(Options{
		AnnotateDeletes: true,
		SourceAvailable: func(c *Class) bool { return c != third },
	})
	if err := v.Run(func(main *vm.Thread) {
		sharedObjectScenario(rt, inv)(main)   // annotated: silent
		sharedObjectScenario(rt, third)(main) // third-party: reported
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col.Locations() == 0 {
		t.Error("third-party (unannotated) delete should still be reported")
	}
	for _, w := range col.Sites() {
		frames := v.Stack(w.Stack)
		found := false
		for _, f := range frames {
			if f.Fn == "libthird::Handle::~Handle" {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected warning outside third-party dtor:\n%s", report.FormatWarning(w, v))
		}
	}
}

func TestCowStringSemantics(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	rt := NewRuntime(Options{})
	if err := v.Run(func(main *vm.Thread) {
		s := rt.NewCowString(main, "hello")
		c := s.Copy(main)
		if !c.SharedWith(s) {
			t.Error("copy must share the rep")
		}
		if s.Refcount() != 2 {
			t.Errorf("refcount = %d, want 2", s.Refcount())
		}
		if c.Get(main) != "hello" || c.Len(main) != 5 {
			t.Error("contents wrong after copy")
		}
		c.Mutate(main, "world") // shared: must detach
		if c.SharedWith(s) {
			t.Error("mutate on shared rep must detach")
		}
		if s.Get(main) != "hello" || c.Get(main) != "world" {
			t.Error("COW detach corrupted contents")
		}
		if s.Refcount() != 1 {
			t.Errorf("source refcount = %d, want 1 after detach", s.Refcount())
		}
		s.Mutate(main, "inplace") // sole owner: in place
		if s.Get(main) != "inplace" {
			t.Error("in-place mutate failed")
		}
		s.Release(main)
		c.Release(main)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCowStringCrossThreadBusLockFP(t *testing.T) {
	// The full Fig. 8 program against the real CowString implementation.
	prog := func(rt *Runtime) func(*vm.Thread) {
		return func(main *vm.Thread) {
			text := rt.NewCowString(main, "contents")
			worker := main.Go("worker", func(th *vm.Thread) {
				cp := text.Copy(th) // line 10: std::string text = *arg
				cp.Release(th)
			})
			main.Sleep(10)
			cp := text.Copy(main) // line 22: reported conflict
			cp.Release(main)
			main.Join(worker)
			text.Release(main)
		}
	}
	v1, col1 := newVMWithDetector(1, lockset.ConfigOriginal())
	if err := v1.Run(prog(NewRuntime(Options{}))); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col1.Locations() == 0 {
		t.Error("original model must report the Fig. 8 string copy")
	}
	// The warning must point into _M_grab, as in Fig. 9.
	var inGrab bool
	for _, w := range col1.Sites() {
		for _, f := range v1.Stack(w.Stack) {
			if f.Fn == "std::string::_Rep::_M_grab" {
				inGrab = true
			}
		}
	}
	if !inGrab {
		t.Error("warning should point into std::string::_Rep::_M_grab (Fig. 9)")
	}

	v2, col2 := newVMWithDetector(1, lockset.ConfigHWLC())
	if err := v2.Run(prog(NewRuntime(Options{}))); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if col2.Locations() != 0 {
		t.Errorf("HWLC must silence the Fig. 8 string copy:\n%s", col2.Format())
	}
}

func TestPoolAllocatorReuse(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	pool := NewPoolAllocator(false)
	if err := v.Run(func(main *vm.Thread) {
		a := pool.Alloc(main, 24, "x")
		pool.Free(main, a)
		b := pool.Alloc(main, 20, "y") // same size class -> recycled
		if b != a {
			t.Error("same-size-class alloc after free should recycle")
		}
		c := pool.Alloc(main, 100, "z")
		if c == a {
			t.Error("different size class must not recycle the chunk")
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pool.Reuses() != 1 {
		t.Errorf("reuses = %d, want 1", pool.Reuses())
	}
}

func TestPoolAllocatorForceNew(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	pool := NewPoolAllocator(true)
	if err := v.Run(func(main *vm.Thread) {
		a := pool.Alloc(main, 24, "x")
		pool.Free(main, a)
		if !a.Freed() {
			t.Error("ForceNew free must release to the VM")
		}
		b := pool.Alloc(main, 24, "x")
		if b == a {
			t.Error("ForceNew must not recycle")
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pool.Reuses() != 0 {
		t.Errorf("reuses = %d, want 0 under ForceNew", pool.Reuses())
	}
}

func TestAllocatorReuseFalsePositive(t *testing.T) {
	// E11: pool reuse carries shadow state into an innocent second life.
	scenario := func(forceNew bool) int {
		v, col := newVMWithDetector(1, lockset.ConfigHWLCDR())
		rt := NewRuntime(Options{ForceNew: forceNew})
		if err := v.Run(func(main *vm.Thread) {
			vec := rt.NewVector("vec-node")
			// First life: nodes become shared across two CONCURRENT reader
			// threads under a proper lock (no warnings, but the shadow state
			// ends up SHARED with lock-set {m}).
			m := v.NewMutex("veclock")
			for i := 0; i < 4; i++ {
				vec.PushBack(main, i)
			}
			reader := func(th *vm.Thread) {
				m.Lock(th)
				for i := 0; i < vec.Len(); i++ {
					vec.At(th, i)
				}
				m.Unlock(th)
			}
			w1 := main.Go("w1", reader)
			w2 := main.Go("w2", reader)
			main.Join(w1)
			main.Join(w2)
			vec.Clear(main) // nodes go back to the pool, shadow survives
			// Second life: a different, single-threaded structure reuses the
			// chunks. Writes intersect the stale lock-set -> FP (pool mode).
			w3 := main.Go("second-life", func(th *vm.Thread) {
				vec2 := rt.NewVector("vec-node-2")
				for i := 0; i < 4; i++ {
					vec2.PushBack(th, i)
				}
			})
			main.Join(w3)
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return col.Locations()
	}
	pooled := scenario(false)
	forced := scenario(true)
	if pooled == 0 {
		t.Error("pooled reuse should produce the allocator FP family")
	}
	if forced != 0 {
		t.Errorf("GLIBCPP_FORCE_NEW analogue should remove allocator FPs, got %d", forced)
	}
}

func TestMapOperations(t *testing.T) {
	v := vm.New(vm.Options{Seed: 1})
	rt := NewRuntime(Options{})
	if err := v.Run(func(main *vm.Thread) {
		m := rt.NewMap("domain-map")
		m.Put(main, "a.example.com", 1)
		m.Put(main, "b.example.com", 2)
		m.Put(main, "a.example.com", 3) // update
		if m.Len() != 2 {
			t.Errorf("len = %d, want 2", m.Len())
		}
		if got, ok := m.Get(main, "a.example.com"); !ok || got.(int) != 3 {
			t.Errorf("get = %v/%v, want 3/true", got, ok)
		}
		var seen []string
		m.ForEach(main, func(k string, _ any) { seen = append(seen, k) })
		if len(seen) != 2 || seen[0] != "a.example.com" {
			t.Errorf("ForEach order = %v", seen)
		}
		if !m.Delete(main, "b.example.com") || m.Delete(main, "missing") {
			t.Error("delete misbehaves")
		}
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDoubleDeleteReachesMemcheckPath(t *testing.T) {
	// Deleting twice must route to the allocator so the memcheck tool can
	// observe the double free (under ForceNew, where frees are visible).
	v := vm.New(vm.Options{Seed: 1})
	rt := NewRuntime(Options{ForceNew: true})
	base := NewClass("X", "x.h")
	var freeEvents int
	v.AddTool(&freeCounter{n: &freeEvents})
	if err := v.Run(func(main *vm.Thread) {
		obj := rt.New(main, base)
		rt.Delete(main, obj)
		rt.Delete(main, obj)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if freeEvents != 2 {
		t.Errorf("free events = %d, want 2", freeEvents)
	}
}

type freeCounter struct {
	trace.BaseSink
	n *int
}

func (f *freeCounter) ToolName() string { return "freecounter" }
func (f *freeCounter) Free(*trace.Block, trace.ThreadID, trace.StackID) {
	*f.n++
}

func TestCtorDtorFramesNestLikeCxx(t *testing.T) {
	// Real C++ stacks nest: Derived::Derived calls Base::Base, ~Derived
	// calls ~Base. The recorded stack at the BASE level must contain the
	// derived frame outside it.
	base := NewClass("B", "b.h")
	mid := base.Derive("M", "m.h")
	der := mid.Derive("D", "d.h")
	v := vm.New(vm.Options{Seed: 1})
	rec := &stackProbe{vm: v}
	v.AddTool(rec)
	rt := NewRuntime(Options{ForceNew: true})
	if err := v.Run(func(main *vm.Thread) {
		obj := rt.New(main, der)
		rt.Delete(main, obj)
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// First vptr write is the ROOT level of construction: stack must be
	// [D::D, M::M, B::B] from outermost to innermost.
	if len(rec.stacks) < 6 {
		t.Fatalf("expected >= 6 vptr writes, got %d", len(rec.stacks))
	}
	first := rec.stacks[0]
	if len(first) != 3 || first[0] != "D::D" || first[1] != "M::M" || first[2] != "B::B" {
		t.Errorf("ctor root-level stack = %v, want [D::D M::M B::B]", first)
	}
	// First destructor write is the DERIVED level: [D::~D] only.
	dtorFirst := rec.stacks[3]
	if len(dtorFirst) != 1 || dtorFirst[0] != "D::~D" {
		t.Errorf("dtor first stack = %v, want [D::~D]", dtorFirst)
	}
	// Last destructor write is the root inside the chain: [D::~D, M::~M, B::~B].
	dtorLast := rec.stacks[5]
	if len(dtorLast) != 3 || dtorLast[2] != "B::~B" {
		t.Errorf("dtor last stack = %v, want nested to B::~B", dtorLast)
	}
}

// stackProbe records the function names of every write access stack.
type stackProbe struct {
	trace.BaseSink
	vm     *vm.VM
	stacks [][]string
}

func (p *stackProbe) ToolName() string { return "stackprobe" }
func (p *stackProbe) Access(a *trace.Access) {
	if a.Kind != trace.Write {
		return
	}
	frames := p.vm.Stack(a.Stack)
	names := make([]string, len(frames))
	for i, f := range frames {
		names[i] = f.Fn
	}
	p.stacks = append(p.stacks, names)
}

func TestCowStringRefcountProperty(t *testing.T) {
	// Random copy/release sequences: the refcount always equals the number
	// of live handles, and the rep is released exactly when it reaches zero.
	prop := func(ops []uint8) bool {
		v := vm.New(vm.Options{Seed: 7})
		rt := NewRuntime(Options{ForceNew: true})
		ok := true
		if err := v.Run(func(main *vm.Thread) {
			handles := []*CowString{rt.NewCowString(main, "x")}
			for _, op := range ops {
				switch {
				case op%3 != 0 && len(handles) > 0: // copy (twice as likely)
					src := handles[int(op)%len(handles)]
					handles = append(handles, src.Copy(main))
				case len(handles) > 1: // release one
					idx := int(op) % len(handles)
					handles[idx].Release(main)
					handles = append(handles[:idx], handles[idx+1:]...)
				}
				if len(handles) > 0 && int(handles[0].Refcount()) != len(handles) {
					ok = false
					return
				}
			}
			rep := handles[0].rep
			for _, h := range handles {
				h.Release(main)
			}
			if !rep.block.Freed() {
				ok = false // last release must free under ForceNew
			}
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
