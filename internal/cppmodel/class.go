// Package cppmodel simulates the C++ runtime behaviours that cause the
// paper's language-specific false positives:
//
//   - polymorphic objects whose constructor/destructor chains rewrite the
//     vptr at every inheritance level (§4.2.1, the destructor FP family),
//   - the automatic delete-site annotation produced by the ELSA-based
//     instrumentation pass (§3.1, Fig. 4),
//   - the GNU libstdc++ copy-on-write string with its bus-locked reference
//     counter (§4.2.2, Fig. 8/9),
//   - the pooled container allocator that recycles memory without telling
//     the tools (§4, the GLIBCPP_FORCE_NEW issue).
//
// Guest code builds class descriptors once and instantiates objects through
// a Runtime, which carries the instrumentation configuration (whether delete
// sites are annotated, which translation units have source available, and
// the allocator mode).
package cppmodel

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/vm"
)

// VptrSize is the size of the vtable pointer slot at offset 0.
const VptrSize = 8

// Field declares one member variable of a class.
type Field struct {
	Name string
	Size int
}

// Class is a C++ class descriptor. Build roots with NewClass and derived
// classes with Derive; layout follows the common ABI: the base subobject
// (including the vptr at offset 0) comes first, derived fields append.
type Class struct {
	Name string
	Base *Class
	File string // simulated source file for stack frames
	Line int

	// Ctor and Dtor are optional user bodies run after the compiler-
	// generated parts (vptr store) of each chain level.
	Ctor func(t *vm.Thread, obj *Object)
	Dtor func(t *vm.Thread, obj *Object)

	size    int
	offsets map[string]fieldInfo
	vtable  uint64
	depth   int
}

type fieldInfo struct {
	off  int
	size int
}

var vtableCounter uint64

// NewClass creates a root class with the given fields.
func NewClass(name, file string, fields ...Field) *Class {
	c := &Class{
		Name:    name,
		File:    file,
		Line:    1,
		size:    VptrSize,
		offsets: make(map[string]fieldInfo),
	}
	vtableCounter++
	c.vtable = vtableCounter
	c.addFields(fields)
	return c
}

// Derive creates a subclass appending the given fields after the base
// subobject.
func (base *Class) Derive(name, file string, fields ...Field) *Class {
	c := &Class{
		Name:    name,
		Base:    base,
		File:    file,
		Line:    1,
		size:    base.size,
		offsets: make(map[string]fieldInfo),
		depth:   base.depth + 1,
	}
	vtableCounter++
	c.vtable = vtableCounter
	c.addFields(fields)
	return c
}

func (c *Class) addFields(fields []Field) {
	for _, f := range fields {
		if f.Size <= 0 {
			f.Size = 8
		}
		// 4-byte align every field so granules do not straddle members.
		c.size = (c.size + 3) &^ 3
		c.offsets[f.Name] = fieldInfo{off: c.size, size: f.Size}
		c.size += f.Size
	}
}

// Size returns the object size in bytes, including inherited fields.
func (c *Class) Size() int { return c.size }

// IsA reports whether c is other or derives from it.
func (c *Class) IsA(other *Class) bool {
	for k := c; k != nil; k = k.Base {
		if k == other {
			return true
		}
	}
	return false
}

// chain returns the inheritance chain, root first.
func (c *Class) chain() []*Class {
	var out []*Class
	for k := c; k != nil; k = k.Base {
		out = append(out, k)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// field resolves a field by name anywhere in the hierarchy.
func (c *Class) field(name string) (fieldInfo, bool) {
	for k := c; k != nil; k = k.Base {
		if fi, ok := k.offsets[name]; ok {
			return fi, true
		}
	}
	return fieldInfo{}, false
}

// Object is an instance of a Class living in guest memory.
type Object struct {
	Class *Class
	Block *vm.Block
	rt    *Runtime
	alive bool
}

// Options configures the instrumentation and allocator behaviour of a
// Runtime — the build-process switches of §3.2/§3.3.
type Options struct {
	// AnnotateDeletes enables the automatic delete-site annotation (the DR
	// improvement). It corresponds to routing the build through the
	// ELSA-based instrumentation wrapper.
	AnnotateDeletes bool
	// SourceAvailable reports whether the translation unit defining the
	// class was instrumented. Parts without source (third-party libraries)
	// do not emit the annotation even when AnnotateDeletes is on (§3.1:
	// "Parts of the program where the source code is not available will not
	// benefit from this annotation"). nil means everything has source.
	SourceAvailable func(c *Class) bool
	// ForceNew disables pooled-allocator recycling, like the
	// GLIBCPP_FORCE_NEW environment variable (§4).
	ForceNew bool
}

// Runtime instantiates objects and strings on a VM with the configured
// instrumentation.
type Runtime struct {
	opt   Options
	pool  *PoolAllocator
	stats RuntimeStats
}

// RuntimeStats counts runtime activity (for tests and the harness).
type RuntimeStats struct {
	ObjectsNew     int
	ObjectsDeleted int
	Annotated      int
}

// NewRuntime creates a runtime with the given instrumentation options.
func NewRuntime(opt Options) *Runtime {
	return &Runtime{opt: opt, pool: NewPoolAllocator(opt.ForceNew)}
}

// Options returns the runtime's instrumentation options.
func (rt *Runtime) Options() Options { return rt.opt }

// Stats returns activity counters.
func (rt *Runtime) Stats() RuntimeStats { return rt.stats }

// Pool returns the runtime's pooled allocator.
func (rt *Runtime) Pool() *PoolAllocator { return rt.pool }

// New constructs an object of class c: the memory is allocated and the
// constructor chain runs root-first, each level storing its vtable pointer
// before the user constructor body — exactly the writes the race detector
// sees from a real C++ program. As in real C++, each constructor invokes its
// base constructor from within its own frame, so the recorded stacks nest
// (Derived::Derived -> Base::Base).
func (rt *Runtime) New(t *vm.Thread, c *Class) *Object {
	blk := rt.pool.Alloc(t, c.size, "obj:"+c.Name)
	obj := &Object{Class: c, Block: blk, rt: rt, alive: true}
	rt.construct(t, obj, c)
	rt.stats.ObjectsNew++
	return obj
}

func (rt *Runtime) construct(t *vm.Thread, obj *Object, k *Class) {
	pop := t.Func(k.Name+"::"+ctorName(k.Name), k.File, k.Line)
	defer pop()
	if k.Base != nil {
		rt.construct(t, obj, k.Base)
	}
	obj.Block.Store64(t, 0, k.vtable) // compiler-generated vptr store
	if k.Ctor != nil {
		k.Ctor(t, obj)
	}
}

// Delete destroys the object: optionally the delete-site annotation fires
// (Fig. 4), then the destructor chain runs most-derived-first, each level
// rewriting the vptr so the destructor "sees only the properties of its
// class" (§3.1) — the writes behind the destructor FP family.
func (rt *Runtime) Delete(t *vm.Thread, obj *Object) {
	if !obj.alive {
		// Deleting twice is a guest bug; fall through so memcheck sees the
		// double free.
		rt.pool.Free(t, obj.Block)
		return
	}
	obj.alive = false
	if rt.opt.AnnotateDeletes && rt.sourceAvailable(obj.Class) {
		// The annotation pass wraps the operand of `delete` in
		// ca_deletor_single, which issues VALGRIND_HG_DESTRUCT (Fig. 4).
		pop := t.Func(fmt.Sprintf("ca_deletor_single<%s>", obj.Class.Name), "annotate.h", 12)
		obj.Block.Request(t, trace.ReqDestruct, 0, obj.Class.size)
		pop()
		rt.stats.Annotated++
	}
	rt.destruct(t, obj, obj.Class)
	rt.stats.ObjectsDeleted++
	rt.pool.Free(t, obj.Block)
}

// destruct runs one destructor level and recurses into the base, mirroring
// the real call chain (~Derived calls ~Base from within its own frame).
func (rt *Runtime) destruct(t *vm.Thread, obj *Object, k *Class) {
	pop := t.Func(k.Name+"::~"+ctorName(k.Name), k.File, k.Line+1)
	defer pop()
	obj.Block.Store64(t, 0, k.vtable) // vptr rewrite for this level
	if k.Dtor != nil {
		k.Dtor(t, obj)
	}
	if k.Base != nil {
		rt.destruct(t, obj, k.Base)
	}
}

func (rt *Runtime) sourceAvailable(c *Class) bool {
	if rt.opt.SourceAvailable == nil {
		return true
	}
	return rt.opt.SourceAvailable(c)
}

// ctorName strips namespaces for the frame name (Foo::Foo).
func ctorName(name string) string {
	for i := len(name) - 1; i > 0; i-- {
		if name[i] == ':' {
			return name[i+1:]
		}
	}
	return name
}

// Alive reports whether the object has not been deleted.
func (o *Object) Alive() bool { return o.alive }

// fieldOrFail resolves a field or fails the guest.
func (o *Object) fieldOrFail(t *vm.Thread, name string) fieldInfo {
	fi, ok := o.Class.field(name)
	if !ok {
		panic(fmt.Sprintf("cppmodel: class %s has no field %q", o.Class.Name, name))
	}
	return fi
}

// Load reads a member variable (as uint64, regardless of declared size).
func (o *Object) Load(t *vm.Thread, name string) uint64 {
	fi := o.fieldOrFail(t, name)
	if fi.size >= 8 {
		return o.Block.Load64(t, fi.off)
	}
	return uint64(o.Block.Load32(t, fi.off))
}

// Store writes a member variable.
func (o *Object) Store(t *vm.Thread, name string, v uint64) {
	fi := o.fieldOrFail(t, name)
	if fi.size >= 8 {
		o.Block.Store64(t, fi.off, v)
	} else {
		o.Block.Store32(t, fi.off, uint32(v))
	}
}

// VCall simulates a virtual call: a read of the vptr slot (the access that
// puts the vptr granule into a shared state when many threads call virtual
// methods) followed by the handler body.
func (o *Object) VCall(t *vm.Thread, method string, body func()) {
	pop := t.Func(o.Class.Name+"::"+method, o.Class.File, o.Class.Line+2)
	o.Block.Load64(t, 0) // vtable dispatch
	if body != nil {
		body()
	}
	pop()
}

// FieldOff exposes a field's offset for binding vm.AtomicI32 or vm.Cell.
func (o *Object) FieldOff(name string) int {
	fi, ok := o.Class.field(name)
	if !ok {
		panic(fmt.Sprintf("cppmodel: class %s has no field %q", o.Class.Name, name))
	}
	return fi.off
}
