package cppmodel

import "repro/internal/vm"

// PoolAllocator models the GNU libstdc++ default container allocator: freed
// chunks go to a per-size free list and are handed out again WITHOUT any
// malloc/free the analysis tools could observe. Shadow state from a chunk's
// previous life therefore survives into its next life — the allocator
// false-positive family of §4 ("Memory is reused internally and accesses to
// the reused memory regions are reported as data races ... as Helgrind does
// not know anything about them").
//
// ForceNew (the GLIBCPP_FORCE_NEW environment variable) bypasses the pool:
// every allocation and free goes to the VM heap, resetting shadow state.
type PoolAllocator struct {
	forceNew bool
	pools    map[int][]*vm.Block
	// Counters for tests and the harness.
	allocs   int
	reuses   int
	releases int
}

// NewPoolAllocator creates an allocator; forceNew disables recycling.
func NewPoolAllocator(forceNew bool) *PoolAllocator {
	return &PoolAllocator{forceNew: forceNew, pools: make(map[int][]*vm.Block)}
}

// ForceNew reports whether pooling is disabled.
func (p *PoolAllocator) ForceNew() bool { return p.forceNew }

// Alloc returns a chunk of at least size bytes. Pooled chunks keep their
// original tag and shadow state.
func (p *PoolAllocator) Alloc(t *vm.Thread, size int, tag string) *vm.Block {
	p.allocs++
	cls := sizeClass(size)
	if !p.forceNew {
		if free := p.pools[cls]; len(free) > 0 {
			blk := free[len(free)-1]
			p.pools[cls] = free[:len(free)-1]
			p.reuses++
			return blk
		}
	}
	return t.Alloc(cls, tag)
}

// Free returns the chunk to the pool (or to the VM under ForceNew).
func (p *PoolAllocator) Free(t *vm.Thread, blk *vm.Block) {
	p.releases++
	if p.forceNew {
		blk.Free(t)
		return
	}
	cls := sizeClass(blk.Size())
	p.pools[cls] = append(p.pools[cls], blk)
}

// Reuses returns how many allocations were served from the pool.
func (p *PoolAllocator) Reuses() int { return p.reuses }

// Allocs returns the total allocation count.
func (p *PoolAllocator) Allocs() int { return p.allocs }

// sizeClass rounds a request up to its pool size class (16-byte steps, like
// the libstdc++ power-of-two-ish free lists, simplified).
func sizeClass(size int) int {
	if size <= 0 {
		size = 1
	}
	return (size + 15) &^ 15
}
