package cppmodel

import (
	"repro/internal/vm"
)

// Rep layout offsets (mirroring libstdc++'s std::string::_Rep header).
const (
	repOffRefcount = 0 // 4 bytes, modified with LOCK-prefixed instructions
	repOffLength   = 4 // 4 bytes
	repOffCapacity = 8 // 4 bytes
	repSize        = 12
)

// StringRep is the shared representation behind one or more CowStrings —
// libstdc++'s _Rep. The reference counter is incremented/decremented with
// bus-locked instructions but *read* with plain loads (the _M_is_leaked /
// _M_is_shared checks), the exact mix that confuses the original Helgrind
// bus-lock model (Fig. 8/9).
type StringRep struct {
	block  *vm.Block
	refcnt *vm.AtomicI32
	data   string
}

// CowString is a copy-on-write string handle (GNU libstdc++ std::string
// before C++11).
type CowString struct {
	rt  *Runtime
	rep *StringRep
}

// NewCowString constructs a string with a fresh representation. The rep is
// allocated through the pooled allocator, as the real one is.
func (rt *Runtime) NewCowString(t *vm.Thread, s string) *CowString {
	pop := t.Func("std::string::string(char const*)", "basic_string.h", 104)
	defer pop()
	blk := rt.pool.Alloc(t, repSize, "string-rep")
	rep := &StringRep{block: blk, refcnt: vm.AtomicI32At(blk, repOffRefcount)}
	rep.refcnt.Store(t, 1) // construction: plain store, memory still exclusive
	blk.Store32(t, repOffLength, uint32(len(s)))
	blk.Store32(t, repOffCapacity, uint32(len(s)))
	rep.data = s
	return &CowString{rt: rt, rep: rep}
}

// Copy produces a new handle sharing the representation: the libstdc++ copy
// constructor path through _Rep::_M_grab — a PLAIN read of the refcount (the
// leak check) followed by a bus-locked increment.
func (cs *CowString) Copy(t *vm.Thread) *CowString {
	pop := t.Func("std::string::string(std::string const&)", "basic_string.h", 240)
	defer pop()
	popGrab := t.Func("std::string::_Rep::_M_grab", "basic_string.h", 650)
	cs.rep.refcnt.Load(t)   // _M_is_leaked(): plain read
	cs.rep.refcnt.Add(t, 1) // LOCK-prefixed increment
	popGrab()
	return &CowString{rt: cs.rt, rep: cs.rep}
}

// Get returns the string contents: reads of the length field plus the data.
func (cs *CowString) Get(t *vm.Thread) string {
	cs.rep.block.Load32(t, repOffLength)
	return cs.rep.data
}

// Len returns the length (reading the length field).
func (cs *CowString) Len(t *vm.Thread) int {
	return int(cs.rep.block.Load32(t, repOffLength))
}

// Equal compares contents (reads both lengths and data).
func (cs *CowString) Equal(t *vm.Thread, other *CowString) bool {
	return cs.Get(t) == other.Get(t)
}

// Mutate implements copy-on-write assignment: a PLAIN read of the refcount
// (the uniqueness check), then either an in-place update (sole owner) or a
// bus-locked detach plus a fresh representation.
func (cs *CowString) Mutate(t *vm.Thread, s string) {
	pop := t.Func("std::string::_M_mutate", "basic_string.h", 480)
	defer pop()
	if cs.rep.refcnt.Load(t) > 1 { // _M_is_shared(): plain read
		cs.release(t)
		blk := cs.rt.pool.Alloc(t, repSize, "string-rep")
		rep := &StringRep{block: blk, refcnt: vm.AtomicI32At(blk, repOffRefcount)}
		rep.refcnt.Store(t, 1)
		blk.Store32(t, repOffLength, uint32(len(s)))
		blk.Store32(t, repOffCapacity, uint32(len(s)))
		rep.data = s
		cs.rep = rep
		return
	}
	cs.rep.block.Store32(t, repOffLength, uint32(len(s)))
	cs.rep.data = s
}

// Release destroys this handle (the std::string destructor): a bus-locked
// decrement; the last owner returns the rep to the allocator.
func (cs *CowString) Release(t *vm.Thread) {
	pop := t.Func("std::string::~string", "basic_string.h", 520)
	defer pop()
	cs.release(t)
	cs.rep = nil
}

func (cs *CowString) release(t *vm.Thread) {
	popDisp := t.Func("std::string::_Rep::_M_dispose", "basic_string.h", 680)
	defer popDisp()
	if cs.rep.refcnt.Add(t, -1) == 0 {
		cs.rt.pool.Free(t, cs.rep.block)
	}
}

// SharedWith reports whether two handles share a representation (test
// helper; no guest accesses).
func (cs *CowString) SharedWith(other *CowString) bool { return cs.rep == other.rep }

// Refcount returns the current reference count without guest accesses (test
// helper).
func (cs *CowString) Refcount() int32 { return cs.rep.refcnt.Peek() }
