package cppmodel

import (
	"sort"

	"repro/internal/vm"
)

// Vector is a std::vector-like container whose element nodes come from the
// pooled allocator. Element values live on the Go side; each element has a
// guest node so the tools see per-element accesses (and pool reuse).
type Vector struct {
	rt    *Runtime
	tag   string
	elems []velem
}

type velem struct {
	blk *vm.Block
	v   any
}

// NewVector creates a vector whose nodes are tagged tag.
func (rt *Runtime) NewVector(tag string) *Vector {
	return &Vector{rt: rt, tag: tag}
}

// PushBack appends an element (allocates and writes its node).
func (v *Vector) PushBack(t *vm.Thread, val any) {
	blk := v.rt.pool.Alloc(t, 8, v.tag)
	blk.Store64(t, 0, uint64(len(v.elems)+1))
	v.elems = append(v.elems, velem{blk: blk, v: val})
}

// At reads element i.
func (v *Vector) At(t *vm.Thread, i int) any {
	e := v.elems[i]
	e.blk.Load64(t, 0)
	return e.v
}

// Len returns the element count without guest accesses.
func (v *Vector) Len() int { return len(v.elems) }

// Clear releases every node back to the allocator.
func (v *Vector) Clear(t *vm.Thread) {
	for _, e := range v.elems {
		v.rt.pool.Free(t, e.blk)
	}
	v.elems = nil
}

// Map is a std::map<string, T>-like container with one pooled node per
// entry. Iteration reads every node — which is what makes the Fig. 7
// returned-reference bug visible: callers iterating the map without the
// guarding mutex race against mutators.
type Map struct {
	rt      *Runtime
	tag     string
	entries map[string]*mentry
}

type mentry struct {
	blk *vm.Block
	v   any
}

// NewMap creates a map whose entry nodes are tagged tag.
func (rt *Runtime) NewMap(tag string) *Map {
	return &Map{rt: rt, tag: tag, entries: make(map[string]*mentry)}
}

// Put inserts or updates a key (allocating a node on insert, writing it on
// update).
func (m *Map) Put(t *vm.Thread, key string, val any) {
	if e, ok := m.entries[key]; ok {
		e.blk.Store64(t, 0, uint64(len(key)))
		e.v = val
		return
	}
	blk := m.rt.pool.Alloc(t, 16, m.tag)
	blk.Store64(t, 0, uint64(len(key)))
	blk.Store64(t, 8, uint64(len(m.entries)+1))
	m.entries[key] = &mentry{blk: blk, v: val}
}

// Get looks a key up (reading its node when present).
func (m *Map) Get(t *vm.Thread, key string) (any, bool) {
	e, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	e.blk.Load64(t, 0)
	return e.v, true
}

// Delete removes a key, returning its node to the allocator.
func (m *Map) Delete(t *vm.Thread, key string) bool {
	e, ok := m.entries[key]
	if !ok {
		return false
	}
	m.rt.pool.Free(t, e.blk)
	delete(m.entries, key)
	return true
}

// Len returns the entry count without guest accesses.
func (m *Map) Len() int { return len(m.entries) }

// ForEach iterates in sorted key order, reading every node. This is the
// access pattern of iterating a std::map by reference — racy when performed
// without the map's guarding lock (Fig. 7).
func (m *Map) ForEach(t *vm.Thread, f func(key string, val any)) {
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := m.entries[k]
		e.blk.Load64(t, 0)
		f(k, e.v)
	}
}

// Keys returns the sorted keys without guest accesses (harness helper).
func (m *Map) Keys() []string {
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
