package engine

import "repro/internal/report"

// ShardStat describes one shard's share of the work.
type ShardStat struct {
	Shard  int
	Events int64 // events processed by this shard (broadcasts count once per shard)
}

// Close flushes the partial batches, joins the shard workers and merges the
// per-shard collectors into one deterministic result (see report.Merge).
// The error reports the first detector panic caught by a shard's SafeSink;
// the merged collector is valid either way and holds everything collected
// up to the failure. Close is idempotent; dispatching after Close is a
// no-op.
func (e *Engine) Close() (*report.Collector, error) {
	if e.closed {
		return e.merged, e.err
	}
	e.closed = true
	for _, s := range e.shards {
		if len(s.pending) > 0 {
			s.ch <- s.pending
			s.pending = nil
		}
		close(s.ch)
	}
	cols := make([]*report.Collector, len(e.shards))
	for i, s := range e.shards {
		<-s.done
		cols[i] = s.col
		if err := s.sink.Err(); err != nil && e.err == nil {
			e.err = err
		}
	}
	e.merged = report.Merge(e.opt.Resolver, e.opt.Suppressor, cols...)
	return e.merged, e.err
}

// Stats returns per-shard event counts. Valid after Close.
func (e *Engine) Stats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{Shard: i, Events: s.events}
	}
	return out
}
