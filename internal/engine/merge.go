package engine

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/trace"
)

// ShardStat describes one shard's share of the work.
type ShardStat struct {
	Shard  int
	Events int64 // events processed by this shard (broadcasts count once per shard)
}

// Close flushes the partial batches, joins the shard workers, runs the
// end-of-stream passes of tools implementing trace.Finisher, and merges the
// per-instance collectors into one deterministic result (see report.Merge):
// the merged order is the global first-seen order across every tool and
// shard. The error reports the first tool panic caught by an instance's
// SafeSink; the merged collector is valid either way and holds everything
// collected up to the failure.
//
// A mid-stream failure (a ReplayLog decode error) is different: the analysed
// events are only a prefix of the intended stream, so Close joins the
// workers, returns a nil collector and reports the stream error — never a
// partial merged report. Close is idempotent: a second call returns exactly
// the first call's collector and error. Dispatching after Close is a no-op.
func (e *Engine) Close() (*report.Collector, error) {
	if e.closed {
		return e.merged, e.err
	}
	e.closed = true
	e.flushMetrics()
	for _, s := range e.shards {
		if s.pending != nil && len(s.pending.ev) > 0 && e.streamErr == nil {
			s.ch <- s.pending
			if e.met != nil {
				e.met.BatchesFlushed.Inc()
			}
		}
		s.pending = nil
		close(s.ch)
	}
	for _, s := range e.shards {
		<-s.done
	}
	// The workers have joined, so instance state is safe to touch from here.
	if e.streamErr != nil {
		e.err = fmt.Errorf("engine: stream failed after %d events: %w", e.seq, e.streamErr)
		return nil, e.err
	}
	// Finish-phase warnings are stamped one past the last stream sequence:
	// they sort after every stream warning regardless of which shard hosts
	// the finishing tool, exactly as in the Sequential pipeline.
	for _, ti := range e.insts {
		*ti.cur = e.seq + 1
		ti.sink.Finish()
	}
	cols := make([]*report.Collector, len(e.insts))
	for i, ti := range e.insts {
		cols[i] = ti.col
		if err := ti.sink.Err(); err != nil && e.err == nil {
			e.err = err
		}
	}
	e.merged = report.Merge(e.opt.Resolver, e.opt.Suppressor, cols...)
	return e.merged, e.err
}

// Tool returns the live instances of the named registered tool — one per
// shard for block-routed tools, exactly one for pinned tools, none for an
// unknown name. The instances are unwrapped from their SafeSinks. Only
// valid after Close: until the workers have joined, instance state is owned
// by the shard goroutines.
func (e *Engine) Tool(name string) []trace.Sink {
	if !e.closed {
		return nil
	}
	var out []trace.Sink
	for _, ti := range e.insts {
		if ti.name == name {
			out = append(out, ti.sink.Unwrap())
		}
	}
	return out
}

// Summaries returns the per-tool counter rollups of every instance
// implementing trace.Summarizer, summed per tool name — the shard-count-
// independent surface for dynamic counters like memcheck's error and leak
// totals. Only valid after Close: until the workers have joined, instance
// state is owned by the shard goroutines.
func (e *Engine) Summaries() map[string]trace.ToolSummary {
	if !e.closed || e.streamErr != nil {
		// Counters of a failed stream cover only a prefix: as misleading as
		// a partial merged report, and suppressed the same way.
		return nil
	}
	return summarize(e.insts)
}

// summarize sums SummaryCounts per tool name across instances. Shared by
// Engine and Sequential so both surfaces are computed identically.
func summarize(insts []*toolInst) map[string]trace.ToolSummary {
	out := make(map[string]trace.ToolSummary)
	for _, ti := range insts {
		sum, ok := ti.sink.Unwrap().(trace.Summarizer)
		if !ok {
			continue
		}
		s := out[ti.name]
		if s == nil {
			s = make(trace.ToolSummary)
			out[ti.name] = s
		}
		s.Merge(sum.SummaryCounts())
	}
	return out
}

// ToolTimes returns the cumulative wall time spent inside each tool's event
// handlers, keyed by tool name and summed across shard instances. Nil unless
// Options.ToolTime was set; only valid after Close — instance counters are
// owned by the shard goroutines until the workers have joined.
func (e *Engine) ToolTimes() map[string]int64 {
	if !e.opt.ToolTime || !e.closed {
		return nil
	}
	return toolTimes(e.insts)
}

// toolTimes sums handler nanoseconds per tool name across instances. Shared
// by Engine and Sequential, like summarize.
func toolTimes(insts []*toolInst) map[string]int64 {
	out := make(map[string]int64, len(insts))
	for _, ti := range insts {
		out[ti.name] += ti.ns
	}
	return out
}

// Stats returns per-shard event counts. Valid after Close.
func (e *Engine) Stats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{Shard: i, Events: s.events}
	}
	return out
}
