package engine

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
)

// This file is the snapshot lifecycle: a mid-stream, non-perturbing checkpoint
// of the whole pipeline. Snapshot produces the exact merged report a Close at
// this point in the stream would have produced (minus end-of-stream Finisher
// passes, which must not run early — they may mutate tool state), while the
// live run continues untouched: the final report of a run with any number of
// interleaved snapshots is byte-identical to a snapshot-free run. The ingest
// server builds its periodic incremental session reports on this.

// Snapshot quiesces the pipeline at the current stream position and returns
// the deterministic merged report of everything analysed so far.
//
// For the sharded engine this is a per-shard barrier: the dispatcher flushes
// its partial batches, sends a quiesce marker down every shard channel, and
// waits until all workers have drained their queues up to the marker and
// parked. With every delivery quiescent, each instance collector is deep-
// copied through its trace.Snapshotter capability; the workers then resume.
// The copies are merged exactly as Close merges the originals, so snapshot
// ordering follows the same global first-seen order — a snapshot manifest is
// always a prefix of the final manifest (report.PrefixConsistent).
//
// Snapshot must be called from the dispatching goroutine (the same one
// delivering events), between events — the Engine's usual single-dispatcher
// contract. Tool warnings from trace.Finisher passes are absent from
// snapshots by design: Finish runs only in Close.
//
// After Close, Snapshot returns an error. After a mid-stream failure it
// returns the stream error and no collector — a snapshot of a failed prefix
// would be as misleading as a partial final report.
func (e *Engine) Snapshot() (*report.Collector, error) {
	if e.closed {
		return nil, fmt.Errorf("engine: Snapshot after Close")
	}
	if e.streamErr != nil {
		return nil, fmt.Errorf("engine: stream failed after %d events: %w", e.seq, e.streamErr)
	}
	// Quiesce: marker after the flushed partial batches, then wait for every
	// worker to drain up to it and park.
	e.flushMetrics()
	var quiesceStart time.Time
	if e.met != nil {
		quiesceStart = time.Now()
	}
	e.snapWG.Add(len(e.shards))
	for _, s := range e.shards {
		if len(s.pending.ev) > 0 {
			s.ch <- s.pending
			s.pending = e.newBatch()
			if e.met != nil {
				e.met.BatchesFlushed.Inc()
			}
		}
		s.ch <- nil
	}
	e.snapWG.Wait()
	if e.met != nil {
		e.met.SnapshotQuiesceNs.Observe(int64(time.Since(quiesceStart)))
	}
	// All workers parked: instance state is safe to read from here.
	cols := make([]*report.Collector, len(e.insts))
	for i, ti := range e.insts {
		cols[i] = snapshotCollector(ti.col)
	}
	// Resume: one gate token per parked worker (the gate is buffered to the
	// shard count, so this never blocks).
	for range e.shards {
		e.snapGate <- struct{}{}
	}
	return report.Merge(e.opt.Resolver, e.opt.Suppressor, cols...), nil
}

// Snapshot returns the deterministic merged report of everything analysed so
// far, without ending the stream — the Sequential counterpart of
// Engine.Snapshot, with the same contract. Delivery is inline, so no quiesce
// is needed: between events the collectors are already at rest.
func (s *Sequential) Snapshot() (*report.Collector, error) {
	if s.closed {
		return nil, fmt.Errorf("engine: Snapshot after Close")
	}
	if s.streamErr != nil {
		return nil, fmt.Errorf("engine: stream failed after %d events: %w", s.seq, s.streamErr)
	}
	s.flushMetrics()
	var cloneStart time.Time
	if s.met != nil {
		cloneStart = time.Now()
	}
	cols := make([]*report.Collector, len(s.insts))
	for i, ti := range s.insts {
		cols[i] = snapshotCollector(ti.col)
	}
	if s.met != nil {
		s.met.SnapshotQuiesceNs.Observe(int64(time.Since(cloneStart)))
	}
	return report.Merge(s.opt.Resolver, s.opt.Suppressor, cols...), nil
}

// snapshotCollector checkpoints one instance collector through the
// trace.Snapshotter capability (report.Collector always provides it).
func snapshotCollector(col *report.Collector) *report.Collector {
	return trace.Snapshotter(col).SnapshotReport().(*report.Collector)
}
