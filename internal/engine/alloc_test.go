package engine_test

import (
	"runtime/debug"
	"testing"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// nopTool ignores every event — dispatch overhead with zero analysis cost,
// isolating the engine's own allocation behaviour.
type nopTool struct{ trace.BaseSink }

func nopSpecs() []trace.ToolSpec {
	return []trace.ToolSpec{
		{Name: "nop-block", Routing: trace.RouteBlock, Factory: func(trace.Reporter) trace.Sink { return nopTool{} }},
		{Name: "nop-bcast", Routing: trace.RouteBroadcast, Factory: func(trace.Reporter) trace.Sink { return nopTool{} }},
	}
}

// TestZeroAllocDispatch pins the tentpole claim for the dispatch side: once
// the batch pool and edge arenas are warmed, pushing a full event stream
// through the pipeline — batching, routing, channel handoff, worker delivery
// — allocates nothing, sequential and sharded alike. GC is disabled during
// the measurement so it cannot drain the sync.Pool mid-run (AllocsPerRun
// already pins GOMAXPROCS to 1, putting workers and dispatcher on one P).
func TestZeroAllocDispatch(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items at random; budget enforced by the non-race CI step")
	}
	s := scenario.Generate(scenario.GenConfig{Seed: 3})
	_, log, err := scenario.Record(s, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	events := decodeEvents(t, log)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, shards := range []int{1, 4} {
		// Small batches and a shallow queue so the pool reaches steady state
		// (every circulating batch allocated, arenas at full size) within the
		// warm-up passes; the default 512×8 shape needs hundreds of passes of
		// this stream before its last batch is pooled.
		pipe, err := engine.NewPipeline(engine.Options{Tools: nopSpecs(), Shards: shards, BatchSize: 32, QueueDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		push := func() {
			for i := range events {
				events[i].Deliver(pipe)
			}
		}
		for i := 0; i < 30; i++ { // warm: grow batch pool and per-batch edge arenas
			push()
		}
		allocs := testing.AllocsPerRun(10, push)
		if perEvent := allocs / float64(len(events)); perEvent != 0 {
			t.Errorf("shards=%d: %.4f allocs/event (%.1f allocs per %d-event pass), want 0",
				shards, perEvent, allocs, len(events))
		}
		if _, err := pipe.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroAllocDetectorPath budgets the full analysis path, not just
// dispatch: the complete six-tool registry — lock-set, DJIT, hybrid,
// deadlock, memcheck, high-level — run end to end over a recorded stream,
// including pipeline construction, detector state growth, end-of-stream
// passes and the merged report. The dense-index/slab/epoch state layout keeps
// the whole run at ≤ 1 allocation per event, sequential and 4-shard alike
// (the steady-state figure is far lower; see the BENCH files — this test pins
// the budget that the CI bench-regression gate also enforces, with the fixed
// costs of a fresh pipeline amortised over only one small trace).
func TestZeroAllocDetectorPath(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments every access; budget enforced by the non-race CI step")
	}
	// The perfbench workload, scaled down: a few thousand events is enough to
	// amortise the fixed pipeline/detector construction the budget includes,
	// where the ~100-event conformance scenarios are not.
	w := harness.PerfWorkload{Threads: 2, Iters: 200, Slots: 16, Blocks: 16, Seed: 1}
	_, log, err := w.RecordTrace()
	if err != nil {
		t.Fatal(err)
	}
	events := decodeEvents(t, log)

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, shards := range []int{1, 4} {
		run := func() {
			pipe, err := engine.NewPipeline(engine.Options{Tools: scenario.AllTools(), Shards: shards, BatchSize: 32, QueueDepth: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i := range events {
				events[i].Deliver(pipe)
			}
			if _, err := pipe.Close(); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm shared state (interned strings, pooled buffers)
		allocs := testing.AllocsPerRun(5, run)
		if perEvent := allocs / float64(len(events)); perEvent > 1.0 {
			t.Errorf("shards=%d: %.3f allocs/event (%.0f allocs per %d-event run), budget 1.0",
				shards, perEvent, allocs, len(events))
		}
	}
}
