package engine_test

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// BenchmarkPipelineOverhead isolates the engine's own cost from detector
// cost: a no-op sink per shard means everything measured is decode +
// dispatch + channel traffic.
func BenchmarkPipelineOverhead(b *testing.B) {
	const events = 1_200_000
	log := buildSyntheticTrace(b, events)
	b.Run("decode-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tracelog.Replay(bytes.NewReader(log), trace.BaseSink{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/events, "ns/event")
	})
	b.Run("dispatch-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := engine.New(engine.Options{Shards: 4, Factory: func(*report.Collector) trace.Sink { return trace.BaseSink{} }})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/events, "ns/event")
	})
}
