package engine

import (
	"strconv"

	"repro/internal/obs"
)

// Metrics is the engine's self-observability surface: process-wide counters
// the dispatch and snapshot hot paths feed when Options.Metrics is set. One
// Metrics may be shared by any number of pipelines (the ingest server shares
// one across every session), since every field is concurrency-safe; nil
// disables instrumentation entirely.
//
// Instrumentation never touches collectors or tool state, so reports are
// byte-identical with metrics attached or not — the ingest obs-conformance
// test pins this — and the hot-path cost is kept off the allocation profile:
// the per-event work is one local increment, folded into the shared counters
// every metricsFlushEvery events and at every batch, snapshot and close
// boundary.
type Metrics struct {
	// EventsDecoded counts source events dispatched into pipelines (each
	// event once, however many shards it fans out to).
	EventsDecoded *obs.Counter
	// BatchesFlushed counts event batches handed to shard channels,
	// including the partial batches flushed by Snapshot and Close.
	BatchesFlushed *obs.Counter
	// QueueHWM records, per shard index, the high watermark of channel
	// occupancy (in batches) observed at enqueue time — the saturation
	// signal for QueueDepth tuning.
	QueueHWM *obs.GaugeVec
	// SnapshotQuiesceNs observes the latency of each snapshot quiesce: from
	// barrier emission to every worker parked (sharded), or the inline
	// clone time (sequential).
	SnapshotQuiesceNs *obs.Histogram
	// ToolPanics counts panics absorbed by instance SafeSinks.
	ToolPanics *obs.Counter
}

// NewMetrics registers the engine metric families on reg and returns the
// resolved handles. Idempotent per registry: a second call returns handles
// onto the same series.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		EventsDecoded:  reg.Counter("engine_events_decoded_total", "Source events decoded and dispatched into analysis pipelines."),
		BatchesFlushed: reg.Counter("engine_batches_flushed_total", "Event batches flushed to shard channels."),
		QueueHWM:       reg.GaugeVec("engine_shard_queue_hwm_batches", "High watermark of per-shard channel occupancy, in batches.", "shard"),
		SnapshotQuiesceNs: reg.Histogram("engine_snapshot_quiesce_ns",
			"Latency of pipeline snapshot quiesce (barrier to all workers parked), nanoseconds.", obs.LatencyBuckets()),
		ToolPanics: reg.Counter("engine_tool_panics_total", "Tool panics absorbed by SafeSink isolation."),
	}
}

// metricsFlushEvery is how many locally-counted events accumulate before
// being folded into the shared EventsDecoded counter: one atomic add per
// this many events keeps the instrumented dispatch path within benchmark
// noise of the uninstrumented one.
const metricsFlushEvery = 1024

// shardQueueGauges resolves the per-shard high-watermark gauges once, so the
// enqueue path never performs a labelled lookup.
func shardQueueGauges(m *Metrics, shards int) []*obs.Gauge {
	if m == nil {
		return nil
	}
	out := make([]*obs.Gauge, shards)
	for i := range out {
		out[i] = m.QueueHWM.With(strconv.Itoa(i))
	}
	return out
}
