package engine_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/engine"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// decodeEvents decodes a whole log into retained events for stepwise
// delivery. Segment.In points into a buffer the decoder reuses between
// events (copy-on-retain contract), so retained events get their own copy.
func decodeEvents(t *testing.T, log []byte) []tracelog.Event {
	t.Helper()
	dec := tracelog.NewDecoder(bytes.NewReader(log))
	var out []tracelog.Event
	for {
		var ev tracelog.Event
		err := dec.Next(&ev)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Op == tracelog.OpSegment {
			ev.Segment.In = append([]trace.SegmentEdge(nil), ev.Segment.In...)
		}
		out = append(out, ev)
	}
}

// TestSnapshotDeterminism is the snapshot lifecycle's acceptance invariant:
// taking mid-stream snapshots at N arbitrary points never changes the final
// report — byte-identical to a snapshot-free run — for the full six-tool
// registry, on both the sequential and the sharded pipeline (1/4/8 shards),
// and every snapshot manifest is a prefix-consistent subset of the final
// manifest. CI runs this under -race, which additionally exercises the
// quiesce barrier against the shard workers.
func TestSnapshotDeterminism(t *testing.T) {
	for _, genSeed := range []int64{1, 4, 6} {
		s := scenario.Generate(scenario.GenConfig{Seed: genSeed})
		v, log, err := scenario.Record(s, true, 1)
		if err != nil {
			t.Fatal(err)
		}
		events := decodeEvents(t, log)
		n := len(events)
		snapshotAt := map[int]bool{1: true, n / 5: true, n / 3: true, n / 2: true, n - 1: true}

		for _, shards := range []int{1, 4, 8} {
			name := fmt.Sprintf("seed%d-shards%d", genSeed, shards)

			// Snapshot-free baseline.
			base, err := engine.NewPipeline(engine.Options{Tools: scenario.AllTools(), Shards: shards, Resolver: v})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := base.ReplayLog(bytes.NewReader(log)); err != nil {
				t.Fatalf("%s: baseline replay: %v", name, err)
			}
			baseCol, err := base.Close()
			if err != nil {
				t.Fatalf("%s: baseline close: %v", name, err)
			}
			want, wantManifest := baseCol.Format(), baseCol.Manifest()
			if baseCol.Locations() == 0 {
				t.Fatalf("%s: baseline found no warnings; the scenario is too tame for this test", name)
			}

			// Same stream with interleaved snapshots.
			pipe, err := engine.NewPipeline(engine.Options{Tools: scenario.AllTools(), Shards: shards, Resolver: v})
			if err != nil {
				t.Fatal(err)
			}
			var manifests []string
			for i := range events {
				events[i].Deliver(pipe)
				if snapshotAt[i+1] {
					snap, err := pipe.Snapshot()
					if err != nil {
						t.Fatalf("%s: snapshot at event %d: %v", name, i+1, err)
					}
					manifests = append(manifests, snap.Manifest())
				}
			}
			col, err := pipe.Close()
			if err != nil {
				t.Fatalf("%s: close: %v", name, err)
			}
			if got := col.Format(); got != want {
				t.Errorf("%s: final report differs after %d mid-stream snapshots:\n--- with snapshots ---\n%s--- baseline ---\n%s",
					name, len(manifests), got, want)
			}
			for i, m := range manifests {
				if err := report.PrefixConsistent(m, wantManifest); err != nil {
					t.Errorf("%s: snapshot %d not prefix-consistent: %v", name, i+1, err)
				}
			}
			// The last snapshot (one event before the end) must have seen
			// at least part of the stream's findings — an all-empty snapshot
			// set would make this test vacuous.
			if manifests[len(manifests)-1] == "" && wantManifest != "" {
				// Not an error per se (the final event could carry every
				// first warning), but with these scenarios it means the
				// snapshot points are wrong.
				t.Errorf("%s: last snapshot empty while final has %d site(s)", name, baseCol.Locations())
			}
		}
	}
}

// TestSnapshotContracts pins the error surface: snapshots are refused after
// Close and after a mid-stream failure, an early snapshot of an untouched
// pipeline is empty, and repeated snapshots at one quiesce point agree.
func TestSnapshotContracts(t *testing.T) {
	s := scenario.Generate(scenario.GenConfig{Seed: 2})
	_, log, err := scenario.Record(s, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		name := fmt.Sprintf("shards%d", shards)
		pipe, err := engine.NewPipeline(engine.Options{Tools: scenario.AllTools(), Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := pipe.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot of idle pipeline: %v", name, err)
		}
		if snap.Locations() != 0 {
			t.Errorf("%s: idle snapshot has %d sites", name, snap.Locations())
		}
		if _, err := pipe.ReplayLog(bytes.NewReader(log)); err != nil {
			t.Fatal(err)
		}
		a, err := pipe.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		b, err := pipe.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if a.Format() != b.Format() {
			t.Errorf("%s: back-to-back snapshots differ", name)
		}
		if _, err := pipe.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.Snapshot(); err == nil {
			t.Errorf("%s: Snapshot after Close succeeded", name)
		}

		// A truncated stream marks the run failed: no snapshot either.
		torn, err := engine.NewPipeline(engine.Options{Tools: scenario.AllTools(), Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := torn.ReplayLog(bytes.NewReader(log[:len(log)/2])); err == nil {
			t.Fatalf("%s: truncated replay succeeded", name)
		}
		if _, err := torn.Snapshot(); err == nil {
			t.Errorf("%s: Snapshot of a failed stream succeeded", name)
		}
		torn.Close()
	}
}
