package engine_test

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/lockset"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// TestEngineMetrics pins the engine's self-observability series: the decoded
// event count is exact across snapshot and close boundaries (despite the
// batched hot-path accumulation), batch and quiesce activity is visible, and
// an absorbed tool panic lands on the panics counter.
func TestEngineMetrics(t *testing.T) {
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	const nBlocks = 40
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		rec.Alloc(&trace.Block{ID: b, Base: trace.Addr(0x1000 * uint64(b)), Size: 16, Tag: "t"})
	}
	for b := trace.BlockID(1); b <= nBlocks; b++ {
		rec.Access(&trace.Access{Thread: 1, Seg: 1, Block: b, Size: 4, Kind: trace.Write, Stack: trace.StackID(b)})
	}
	rec.Flush()
	log := buf.Bytes()

	for _, shards := range []int{1, 4} {
		reg := obs.NewRegistry()
		met := engine.NewMetrics(reg)
		pipe, err := engine.NewPipeline(engine.Options{
			Shards:    shards,
			BatchSize: 8, // small batches so several flushes happen
			Tools: []trace.ToolSpec{{
				Name:    "panicky",
				Routing: trace.RouteBlock,
				Factory: func(col trace.Reporter) trace.Sink {
					return &panicSink{col: col, poison: trace.BlockID(3)}
				},
			}},
			Metrics: met,
		})
		if err != nil {
			t.Fatalf("shards=%d: NewPipeline: %v", shards, err)
		}
		events, err := pipe.ReplayLog(bytes.NewReader(log))
		if err != nil {
			t.Fatalf("shards=%d: ReplayLog: %v", shards, err)
		}
		if _, err := pipe.Snapshot(); err != nil {
			t.Fatalf("shards=%d: Snapshot: %v", shards, err)
		}
		// The snapshot boundary must have folded the batched count in full.
		if got := met.EventsDecoded.Value(); got != events {
			t.Errorf("shards=%d: events_decoded after snapshot = %d, want %d", shards, got, events)
		}
		if _, err := pipe.Close(); err == nil {
			t.Fatalf("shards=%d: Close must report the tool panic", shards)
		}
		if got := met.EventsDecoded.Value(); got != events {
			t.Errorf("shards=%d: events_decoded after close = %d, want %d", shards, got, events)
		}
		if got := met.ToolPanics.Value(); got != 1 {
			t.Errorf("shards=%d: tool_panics = %d, want 1", shards, got)
		}
		if got := met.SnapshotQuiesceNs.Count(); got != 1 {
			t.Errorf("shards=%d: quiesce observations = %d, want 1", shards, got)
		}
		if shards > 1 && met.BatchesFlushed.Value() == 0 {
			t.Errorf("shards=%d: no batches counted", shards)
		}
	}
}

// TestEngineMetricsSharedAcrossPipelines pins the aggregation contract: one
// Metrics attached to several pipelines sums their work, the way the ingest
// daemon shares one across every session.
func TestEngineMetricsSharedAcrossPipelines(t *testing.T) {
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	rec.Alloc(&trace.Block{ID: 1, Base: 0x1000, Size: 16, Tag: "t"})
	rec.Access(&trace.Access{Thread: 1, Seg: 1, Block: 1, Size: 4, Kind: trace.Write, Stack: 1})
	rec.Flush()
	log := buf.Bytes()

	reg := obs.NewRegistry()
	met := engine.NewMetrics(reg)
	var total int64
	for i := 0; i < 3; i++ {
		pipe, err := engine.NewPipeline(engine.Options{
			Factory: lockset.Factory(lockset.ConfigHWLC()),
			Metrics: met,
		})
		if err != nil {
			t.Fatal(err)
		}
		n, err := pipe.ReplayLog(bytes.NewReader(log))
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if _, err := pipe.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := met.EventsDecoded.Value(); got != total {
		t.Errorf("events_decoded = %d, want %d across 3 pipelines", got, total)
	}
}

// TestEngineMetricsConformance pins the hard observability requirement:
// attaching a metrics registry must not change a single output byte, for the
// sequential and the sharded pipeline alike.
func TestEngineMetricsConformance(t *testing.T) {
	log, v := recordSIP(t)
	for _, shards := range []int{1, 4} {
		run := func(met *engine.Metrics) string {
			t.Helper()
			pipe, err := engine.NewPipeline(engine.Options{
				Shards:   shards,
				Tools:    []trace.ToolSpec{lockset.Spec(lockset.ConfigHWLC())},
				Resolver: v,
				Metrics:  met,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := pipe.ReplayLog(bytes.NewReader(log)); err != nil {
				t.Fatal(err)
			}
			if _, err := pipe.Snapshot(); err != nil {
				t.Fatal(err)
			}
			col, err := pipe.Close()
			if err != nil {
				t.Fatal(err)
			}
			return col.Format()
		}
		plain := run(nil)
		instrumented := run(engine.NewMetrics(obs.NewRegistry()))
		if plain != instrumented {
			t.Errorf("shards=%d: report changed when metrics attached", shards)
		}
		if plain == "" {
			t.Fatalf("shards=%d: empty report; workload is broken", shards)
		}
	}
}
