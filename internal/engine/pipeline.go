package engine

import (
	"io"

	"repro/internal/report"
	"repro/internal/trace"
)

// Pipeline is the surface shared by Engine and Sequential: a live event sink
// that can also replay recorded logs, finished by Close into a merged
// deterministic report. Everything that runs the tool registry over a stream
// — core.Run, the offline replay paths, the ingest server's per-session
// pipelines — programs against this interface and picks the sharded or the
// inline implementation per run.
type Pipeline interface {
	trace.Sink
	// ReplayLog decodes a recorded binary log once and streams it through
	// the pipeline, returning the number of events dispatched. A decode
	// error marks the run failed: Close then returns the error and no
	// partial merged report.
	ReplayLog(r io.Reader) (int64, error)
	// Events returns the number of events dispatched so far.
	Events() int64
	// QueueLoad reports the pipeline's current dispatch backlog as a
	// fraction of capacity in [0, 1]: the fullest shard queue for the
	// sharded engine, always 0 for the inline sequential pipeline (delivery
	// is synchronous, there is no queue). Unlike the engine_queue_hwm
	// gauges, which only ratchet up, this is a live signal — the ingest
	// server's adaptive sampler keys off it. Call from the dispatching
	// goroutine.
	QueueLoad() float64
	// Snapshot quiesces the pipeline between events and returns the
	// deterministic merged report of everything analysed so far, without
	// ending the stream or perturbing the final report (see Engine.Snapshot
	// for the full contract). It must be called from the dispatching
	// goroutine.
	Snapshot() (*report.Collector, error)
	// Close ends the stream, runs end-of-stream passes and returns the
	// merged deterministic report (see Engine.Close for the full contract).
	Close() (*report.Collector, error)
	// Tool returns the live instances of the named registered tool. Only
	// valid after Close.
	Tool(name string) []trace.Sink
	// Summaries returns the per-tool counter rollups, summed across shard
	// instances. Only valid after Close.
	Summaries() map[string]trace.ToolSummary
	// ToolTimes returns the wall time spent inside each tool's handlers,
	// keyed by tool name and summed across shard instances. Nil unless
	// Options.ToolTime was set. Only valid after Close.
	ToolTimes() map[string]int64
}

var (
	_ Pipeline = (*Engine)(nil)
	_ Pipeline = (*Sequential)(nil)
)

// NewPipeline creates the sharded engine when opt.Shards > 1 and the inline
// single-pass Sequential otherwise. Both produce byte-identical reports from
// the same stream; the choice is purely a throughput decision.
func NewPipeline(opt Options) (Pipeline, error) {
	if opt.Shards > 1 {
		return New(opt)
	}
	return NewSequential(opt)
}
