package engine

import (
	"fmt"
	"io"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// Sequential is the single-goroutine counterpart of Engine: the same tool
// registry, the same per-tool collectors with global sequence stamping, the
// same end-of-stream Finisher pass and the same deterministic merge — but
// every event is delivered inline to every tool on the caller's goroutine,
// with no routing at all. It defines the reference output the sharded engine
// must reproduce byte for byte, and it is what core.Run uses when
// parallelism is off: one pass over the stream feeds all registered tools.
//
// Sequential implements trace.Sink, so it attaches to a live VM with
// AddTool; recorded logs go through ReplayLog. Routing classes are ignored —
// sequentially, every tool simply sees the full ordered stream.
type Sequential struct {
	opt       Options
	insts     []*toolInst
	seq       uint64 // events delivered
	cur       uint64 // sequence the collectors stamp with (seq, or seq+1 in Close)
	closed    bool
	merged    *report.Collector
	err       error
	streamErr error // first mid-stream failure (e.g. a ReplayLog decode error)

	// Instrumentation (nil-gated); see the Engine fields of the same names.
	met        *Metrics
	metPending int64
}

// NewSequential creates the single-pass multi-tool pipeline. Shards,
// BatchSize and QueueDepth are ignored; the tool registry rules are the same
// as New's.
func NewSequential(opt Options) (*Sequential, error) {
	opt = opt.withDefaults()
	if err := validateTools(opt.Tools); err != nil {
		return nil, err
	}
	s := &Sequential{opt: opt, met: opt.Metrics}
	for _, spec := range opt.Tools {
		s.insts = append(s.insts, newToolInst(spec, opt, &s.cur))
	}
	return s, nil
}

// Events returns the number of events delivered so far.
func (s *Sequential) Events() int64 { return int64(s.seq) }

// QueueLoad is always 0: inline delivery has no dispatch queue to back up.
func (s *Sequential) QueueLoad() float64 { return 0 }

// ReplayLog decodes a recorded binary log once and delivers every event to
// every tool. Call Close afterwards to obtain the merged report.
//
// A decode error (corrupt or truncated log) marks the whole run failed, with
// the same contract as Engine.ReplayLog: Close will return the error instead
// of a partial merged report.
func (s *Sequential) ReplayLog(r io.Reader) (int64, error) {
	dec := tracelog.NewDecoder(r)
	var ev tracelog.Event
	for {
		err := dec.Next(&ev)
		if err == io.EOF {
			return dec.Events(), nil
		}
		if err != nil {
			if s.streamErr == nil {
				s.streamErr = err
			}
			return dec.Events(), err
		}
		ev.Deliver(s)
	}
}

// Close runs the end-of-stream passes of tools implementing trace.Finisher
// and merges the per-tool collectors deterministically, mirroring
// Engine.Close — including the error contracts: a tool panic still yields
// the merged collector, while a mid-stream failure yields a nil collector
// and a stable error, never a partial merged report. Close is idempotent;
// delivering events after Close is a no-op.
func (s *Sequential) Close() (*report.Collector, error) {
	if s.closed {
		return s.merged, s.err
	}
	s.closed = true
	s.flushMetrics()
	if s.streamErr != nil {
		s.err = fmt.Errorf("engine: stream failed after %d events: %w", s.seq, s.streamErr)
		return nil, s.err
	}
	s.cur = s.seq + 1 // Finish-phase warnings sort after every stream event
	cols := make([]*report.Collector, len(s.insts))
	for i, ti := range s.insts {
		ti.sink.Finish()
		cols[i] = ti.col
		if err := ti.sink.Err(); err != nil && s.err == nil {
			s.err = err
		}
	}
	s.merged = report.Merge(s.opt.Resolver, s.opt.Suppressor, cols...)
	return s.merged, s.err
}

// Summaries returns the per-tool counter rollups of every instance
// implementing trace.Summarizer (see Engine.Summaries — the two surfaces are
// computed identically, so sequential and sharded runs report the same
// totals). Only valid after Close.
func (s *Sequential) Summaries() map[string]trace.ToolSummary {
	if !s.closed || s.streamErr != nil {
		return nil
	}
	return summarize(s.insts)
}

// Tool returns the live instance of the named registered tool (always
// exactly one sequentially), unwrapped from its SafeSink; nil for an
// unknown name.
func (s *Sequential) Tool(name string) []trace.Sink {
	var out []trace.Sink
	for _, ti := range s.insts {
		if ti.name == name {
			out = append(out, ti.sink.Unwrap())
		}
	}
	return out
}

// deliver bumps the global sequence and hands the event callback to every
// tool in registration order.
func (s *Sequential) deliver(fn func(trace.Sink)) {
	if s.closed {
		return
	}
	s.seq++
	if s.met != nil {
		s.metPending++
		if s.metPending >= metricsFlushEvery {
			s.met.EventsDecoded.Add(s.metPending)
			s.metPending = 0
		}
	}
	s.cur = s.seq
	if s.opt.ToolTime {
		for _, ti := range s.insts {
			t0 := time.Now()
			fn(ti.sink)
			ti.ns += time.Since(t0).Nanoseconds()
		}
		return
	}
	for _, ti := range s.insts {
		fn(ti.sink)
	}
}

// ToolTimes returns the cumulative wall time spent inside each tool's event
// handlers, keyed by tool name. Nil unless Options.ToolTime was set; only
// valid after Close.
func (s *Sequential) ToolTimes() map[string]int64 {
	if !s.opt.ToolTime || !s.closed {
		return nil
	}
	return toolTimes(s.insts)
}

// flushMetrics folds the locally-batched event count into the shared
// counter, mirroring Engine.flushMetrics.
func (s *Sequential) flushMetrics() {
	if s.met != nil && s.metPending > 0 {
		s.met.EventsDecoded.Add(s.metPending)
		s.metPending = 0
	}
}

// ToolName implements trace.Sink.
func (s *Sequential) ToolName() string { return "engine-sequential" }

// Access implements trace.Sink.
func (s *Sequential) Access(a *trace.Access) {
	s.deliver(func(t trace.Sink) { t.Access(a) })
}

// Acquire implements trace.Sink.
func (s *Sequential) Acquire(t trace.ThreadID, l trace.LockID, k trace.LockKind, st trace.StackID) {
	s.deliver(func(snk trace.Sink) { snk.Acquire(t, l, k, st) })
}

// Release implements trace.Sink.
func (s *Sequential) Release(t trace.ThreadID, l trace.LockID, k trace.LockKind, st trace.StackID) {
	s.deliver(func(snk trace.Sink) { snk.Release(t, l, k, st) })
}

// Contended implements trace.Sink.
func (s *Sequential) Contended(t trace.ThreadID, l trace.LockID, st trace.StackID) {
	s.deliver(func(snk trace.Sink) { snk.Contended(t, l, st) })
}

// Alloc implements trace.Sink.
func (s *Sequential) Alloc(b *trace.Block) {
	s.deliver(func(t trace.Sink) { t.Alloc(b) })
}

// Free implements trace.Sink.
func (s *Sequential) Free(b *trace.Block, t trace.ThreadID, st trace.StackID) {
	s.deliver(func(snk trace.Sink) { snk.Free(b, t, st) })
}

// Segment implements trace.Sink. No copy is needed: delivery is inline, so
// the usual Sink contract (tools do not retain the slice) already holds.
func (s *Sequential) Segment(ss *trace.SegmentStart) {
	s.deliver(func(t trace.Sink) { t.Segment(ss) })
}

// Sync implements trace.Sink.
func (s *Sequential) Sync(ev *trace.SyncEvent) {
	s.deliver(func(t trace.Sink) { t.Sync(ev) })
}

// Request implements trace.Sink.
func (s *Sequential) Request(r *trace.Request) {
	s.deliver(func(t trace.Sink) { t.Request(r) })
}

// ThreadStart implements trace.Sink.
func (s *Sequential) ThreadStart(t, parent trace.ThreadID) {
	s.deliver(func(snk trace.Sink) { snk.ThreadStart(t, parent) })
}

// ThreadExit implements trace.Sink.
func (s *Sequential) ThreadExit(t trace.ThreadID) {
	s.deliver(func(snk trace.Sink) { snk.ThreadExit(t) })
}

var _ trace.Sink = (*Sequential)(nil)
