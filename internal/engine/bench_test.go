package engine_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/lockset"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracelog"
)

// buildSyntheticTrace emits a valid trace of at least the requested number
// of events directly through the Recorder (no VM in the loop): T threads
// performing lock-protected transactions of 16 accesses spread over many
// blocks. The access/synchronisation mix (~11% broadcast events) is what a
// server workload with modest critical sections looks like, and the block
// fan-out gives the shard hash something to distribute.
func buildSyntheticTrace(tb testing.TB, minEvents int64) []byte {
	tb.Helper()
	var buf bytes.Buffer
	rec := tracelog.NewRecorder(&buf)
	const (
		threads   = 8
		blocks    = 512
		blockSize = 64
	)
	for t := trace.ThreadID(1); t <= threads; t++ {
		rec.ThreadStart(t, 0)
		rec.Segment(&trace.SegmentStart{Seg: trace.SegmentID(t), Thread: t})
	}
	for b := trace.BlockID(1); b <= blocks; b++ {
		rec.Alloc(&trace.Block{ID: b, Base: trace.Addr(0x10000 * uint64(b)), Size: blockSize, Tag: "bench"})
	}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 11 }
	for rec.Events() < minEvents {
		r := next()
		th := trace.ThreadID(1 + r%threads)
		lock := trace.LockID(1 + (r>>4)%4)
		rec.Acquire(th, lock, trace.Mutex, 0)
		for i := 0; i < 16; i++ {
			r := next()
			b := trace.BlockID(1 + r%blocks)
			off := uint32((r >> 16) % (blockSize / 4) * 4)
			kind := trace.Read
			if (r>>9)%4 == 0 {
				kind = trace.Write
			}
			rec.Access(&trace.Access{
				Thread: th, Seg: trace.SegmentID(th), Block: b,
				Addr: trace.Addr(0x10000*uint64(b)) + trace.Addr(off),
				Off:  off, Size: 4, Kind: kind,
				Stack: trace.StackID(1 + r%97),
			})
		}
		rec.Release(th, lock, trace.Mutex, 0)
	}
	if err := rec.Flush(); err != nil {
		tb.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// BenchmarkParallelReplay compares sequential tracelog.Replay against the
// sharded engine on a >1M-event synthetic trace with the full HWLC+DR
// detector. The headline number is ns/event; the target is >1.5x at 4
// workers over sequential.
//
// The comparison is only meaningful with GOMAXPROCS >= shards: on a
// single-CPU host the workers merely time-slice one core, so the benchmark
// degenerates to measuring the engine's dispatch overhead (sequential wins
// there by construction — sharding adds work, parallel hardware pays it
// back). See BenchmarkPipelineOverhead for the overhead decomposition.
func BenchmarkParallelReplay(b *testing.B) {
	const events = 1_200_000
	log := buildSyntheticTrace(b, events)
	cfg := lockset.ConfigHWLCDR()

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := report.NewCollector(nil, nil)
			if _, err := tracelog.Replay(bytes.NewReader(log), lockset.New(cfg, col)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/events, "ns/event")
	})
	for _, shards := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := engine.New(engine.Options{Shards: shards, Factory: lockset.Factory(cfg)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.ReplayLog(bytes.NewReader(log)); err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/events, "ns/event")
		})
	}
}
